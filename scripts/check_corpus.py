#!/usr/bin/env python3
"""Validate the checked-in fuzz corpus under tests/corpus/.

Every corpus input must be named `<slug>-<sha256[:12]>` where the hash prefix
is the SHA-256 of the file's content. Content-addressed names make corpus
diffs reviewable (a renamed-but-unchanged input is visibly a no-op) and catch
inputs that were edited in place without being re-hashed.

Exit status: 0 when every file checks out, 1 otherwise.
"""
from __future__ import annotations

import hashlib
import pathlib
import re
import sys

NAME_RE = re.compile(r"^[a-z0-9][a-z0-9-]*-([0-9a-f]{12})$")


def check(corpus_root: pathlib.Path) -> int:
    if not corpus_root.is_dir():
        print(f"corpus root not found: {corpus_root}", file=sys.stderr)
        return 1
    failures = 0
    total = 0
    for path in sorted(corpus_root.rglob("*")):
        if not path.is_file():
            continue
        total += 1
        rel = path.relative_to(corpus_root)
        m = NAME_RE.match(path.name)
        if not m:
            print(f"BAD NAME  {rel}: want <slug>-<sha256[:12]>", file=sys.stderr)
            failures += 1
            continue
        digest = hashlib.sha256(path.read_bytes()).hexdigest()[:12]
        if digest != m.group(1):
            print(
                f"BAD HASH  {rel}: name says {m.group(1)}, content is {digest}",
                file=sys.stderr,
            )
            failures += 1
    if total == 0:
        print(f"corpus root is empty: {corpus_root}", file=sys.stderr)
        return 1
    if failures:
        print(f"{failures}/{total} corpus inputs failed validation",
              file=sys.stderr)
        return 1
    print(f"{total} corpus inputs OK")
    return 0


def main() -> int:
    root = (
        pathlib.Path(sys.argv[1])
        if len(sys.argv) > 1
        else pathlib.Path(__file__).resolve().parent.parent / "tests" / "corpus"
    )
    return check(root)


if __name__ == "__main__":
    sys.exit(main())
