#!/usr/bin/env python3
"""Schema check for the observability outputs of tbd_analyze.

Usage:
    check_obs_output.py TRACE.json MANIFEST.json

Validates the Chrome trace and the run manifest written by
`tbd_analyze --trace-out TRACE.json --metrics-out MANIFEST.json` (the tier-1
smoke step in scripts/tier1.sh): both files must be well-formed JSON, every
complete ("X") trace event must carry the fields Perfetto needs, every
analysis pipeline stage must have produced at least one span, and the
manifest must carry the documented schema-1 keys with a live metrics
snapshot. Exits non-zero with a message on the first violation.
"""
import json
import sys

# Every stage of the tbd_analyze pipeline must appear in the trace: loading,
# per-server analysis (calibration + the detector's internal stages), and
# reporting. The detector stage names are shared with the simulation path.
REQUIRED_STAGES = {
    "analyze.load_logs",
    "analyze.server",
    "analyze.calibrate",
    "analyze.report",
    "detector.load_calc",
    "detector.throughput_calc",
    "detector.fit_n_star",
    "detector.classify",
    "detector.episodes",
}

MANIFEST_KEYS = {
    "schema_version",
    "tool",
    "git",
    "threads",
    "config",
    "metrics",
    "span_rollup",
    "spans_dropped",
}


def fail(msg):
    print(f"check_obs_output: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_trace(path):
    with open(path) as f:
        trace = json.load(f)
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: traceEvents missing or empty")
    spans = [e for e in events if e.get("ph") == "X"]
    if not spans:
        fail(f"{path}: no complete ('X') span events")
    for e in spans:
        for field in ("name", "ts", "dur", "pid", "tid"):
            if field not in e:
                fail(f"{path}: span event missing '{field}': {e}")
        if "depth" not in e.get("args", {}):
            fail(f"{path}: span event missing args.depth: {e}")
        if e["ts"] < 0 or e["dur"] < 0:
            fail(f"{path}: negative ts/dur: {e}")
    names = {e["name"] for e in spans}
    missing = REQUIRED_STAGES - names
    if missing:
        fail(f"{path}: pipeline stages without spans: {sorted(missing)}")
    return names


def check_manifest(path, span_names):
    with open(path) as f:
        manifest = json.load(f)
    missing = MANIFEST_KEYS - manifest.keys()
    if missing:
        fail(f"{path}: manifest keys missing: {sorted(missing)}")
    if manifest["schema_version"] != 1:
        fail(f"{path}: schema_version {manifest['schema_version']} != 1")
    if not manifest["git"]:
        fail(f"{path}: empty git describe")
    if manifest["threads"] < 1:
        fail(f"{path}: threads {manifest['threads']} < 1")
    metrics = manifest["metrics"]
    for section in ("counters", "gauges", "histograms"):
        if section not in metrics:
            fail(f"{path}: metrics.{section} missing")
    counters = metrics["counters"]
    if counters.get("tbd_analyze_records_total", 0) <= 0:
        fail(f"{path}: tbd_analyze_records_total not positive: {counters}")
    pool_tasks = counters.get("tbd_pool_tasks_total", 0) + counters.get(
        "tbd_pool_tasks_inline_total", 0
    )
    if pool_tasks <= 0:
        fail(f"{path}: no pool tasks recorded: {counters}")
    rollup = manifest["span_rollup"]
    missing = span_names - rollup.keys()
    if missing:
        fail(f"{path}: span_rollup missing stages: {sorted(missing)}")
    for name, entry in rollup.items():
        if entry["count"] < 1 or entry["total_us"] < entry["max_us"]:
            fail(f"{path}: inconsistent rollup for {name}: {entry}")


def main():
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    trace_path, manifest_path = sys.argv[1], sys.argv[2]
    span_names = check_trace(trace_path)
    check_manifest(manifest_path, span_names)
    print(f"check_obs_output: OK ({trace_path}, {manifest_path})")


if __name__ == "__main__":
    main()
