#!/usr/bin/env python3
"""Schema check for the observability outputs of tbd_analyze / tbd_timeline.

Usage:
    check_obs_output.py TRACE.json MANIFEST.json
    check_obs_output.py --timeline TIMELINE.json [--require-crossing]
    check_obs_output.py --attribution ATTRIBUTION.ndjson
    check_obs_output.py --events EVENTS.ndjson
    check_obs_output.py --scrape URL
    check_obs_output.py --statusz URL
    check_obs_output.py --threadz URL
    check_obs_output.py --profile PROFILE.folded

Modes compose; each named file is validated and the script exits non-zero
with a message on the first violation.

* TRACE/MANIFEST (legacy positional mode): the Chrome trace and run manifest
  written by `tbd_analyze --trace-out --metrics-out` — well-formed JSON,
  every complete ("X") event carries the fields Perfetto needs, every
  pipeline stage produced at least one span, and the manifest carries the
  documented schema-1 keys with a live metrics snapshot.

* --timeline: the flight-recorder timeline written by
  `tbd_timeline --timeline-out` — every tid's B/E stream forms a properly
  matched stack, every tid is named via thread_name metadata, and every flow
  event ("s"/"t"/"f") resolves: one start and one finish per flow id, each
  point landing inside a slice on its tid. With --require-crossing, at least
  one flow point on a "server N" lane must fall inside a congestion-episode
  band ("X" event) on the matching "server N episodes" track — the
  acceptance check that a rendered transaction visibly crosses an episode.

* --attribution: the NDJSON written by `--attribution-out` — schema-1 meta
  line, known band names, per-band transaction counts summing to the total,
  latency fractions within [0, 1], and per-server microsecond splits that
  never exceed their band's summed latency.

* --events: the live-telemetry event log written by `tbd_watch
  --events-out` — schema-1 meta record at seq 0, every subsequent line one
  of interval_sealed / episode_open / episode_close with its documented
  fields, and seq strictly monotonic from 1 (the determinism contract:
  any gap or reorder means two emitters raced on the log).

* --scrape: fetch URL (a live `tbd_watch --listen` /metrics endpoint or a
  `--prom-out` file via file://) and parse it as Prometheus text
  exposition — legal metric/label names, escaped label values, one TYPE
  line per family, and at least one per-stream `tbd_stream_*` series
  carrying a stream="..." label.

* --statusz: fetch a live /statusz document — schema-1, tool identity,
  git/pid/uptime, the process-stats block, the profiler block, and (when
  the "streams" source is registered, as tbd_watch does) a per-stream
  freshness list whose seal_lag_us is never negative.

* --threadz: fetch a live /threadz document — schema-1, pool.workers has
  exactly pool.threads entries, every worker carries the documented slot
  fields, and the slow-task leaderboard is sorted longest-first.

* --profile: a folded-stack profile written by `--profile-out` — every
  line is "thread;frame;...;frame N" (the count split on the LAST space:
  demangled C++ frames contain spaces), counts are positive integers, and
  lines are sorted and unique (the fold_stacks determinism contract).
"""
import argparse
import bisect
import json
import re
import sys
import urllib.request

# Every stage of the tbd_analyze pipeline must appear in the trace: loading,
# per-server analysis (calibration + the detector's internal stages), and
# reporting. The detector stage names are shared with the simulation path.
REQUIRED_STAGES = {
    "analyze.load_logs",
    "analyze.server",
    "analyze.calibrate",
    "analyze.report",
    "detector.load_tput_sweep",
    "detector.fit_n_star",
    "detector.classify",
    "detector.episodes",
}

MANIFEST_KEYS = {
    "schema_version",
    "tool",
    "git",
    "threads",
    "config",
    "metrics",
    "span_rollup",
    "spans_dropped",
}

LANE_RE = re.compile(r"^server (\d+)( ·\d+)?$")
EPISODE_TRACK_RE = re.compile(r"^server (\d+) episodes$")
BAND_RE = re.compile(r"^p(\d+(\.\d+)?|max)$")

# Field contract for each event-log record kind (src/obs/event_log.cpp).
EVENT_FIELDS = {
    "interval_sealed": {
        "stream": str,
        "index": int,
        "t_us": int,
        "load": (int, float),
        "tput": (int, float),
        "state": str,
    },
    "episode_open": {"stream": str, "index": int, "t_us": int},
    "episode_close": {
        "stream": str,
        "start_us": int,
        "duration_us": int,
        "peak_load": (int, float),
        "freeze": bool,
    },
}
INTERVAL_STATES = {"idle", "normal", "congested", "frozen"}

# Prometheus text exposition grammar (src/obs/metrics.cpp sanitizers).
PROM_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
PROM_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
PROM_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})? (?P<value>\S+)$"
)
# One label pair inside the braces: value escapes are \\ \" \n only.
PROM_PAIR_RE = re.compile(
    r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\["\\n])*)"(?:,|$)'
)


def fail(msg):
    print(f"check_obs_output: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_trace(path):
    with open(path) as f:
        trace = json.load(f)
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: traceEvents missing or empty")
    spans = [e for e in events if e.get("ph") == "X"]
    if not spans:
        fail(f"{path}: no complete ('X') span events")
    for e in spans:
        for field in ("name", "ts", "dur", "pid", "tid"):
            if field not in e:
                fail(f"{path}: span event missing '{field}': {e}")
        if "depth" not in e.get("args", {}):
            fail(f"{path}: span event missing args.depth: {e}")
        if e["ts"] < 0 or e["dur"] < 0:
            fail(f"{path}: negative ts/dur: {e}")
    names = {e["name"] for e in spans}
    missing = REQUIRED_STAGES - names
    if missing:
        fail(f"{path}: pipeline stages without spans: {sorted(missing)}")
    return names


def check_manifest(path, span_names):
    with open(path) as f:
        manifest = json.load(f)
    missing = MANIFEST_KEYS - manifest.keys()
    if missing:
        fail(f"{path}: manifest keys missing: {sorted(missing)}")
    if manifest["schema_version"] != 1:
        fail(f"{path}: schema_version {manifest['schema_version']} != 1")
    if not manifest["git"]:
        fail(f"{path}: empty git describe")
    if manifest["threads"] < 1:
        fail(f"{path}: threads {manifest['threads']} < 1")
    metrics = manifest["metrics"]
    for section in ("counters", "gauges", "histograms"):
        if section not in metrics:
            fail(f"{path}: metrics.{section} missing")
    counters = metrics["counters"]
    if counters.get("tbd_analyze_records_total", 0) <= 0:
        fail(f"{path}: tbd_analyze_records_total not positive: {counters}")
    pool_tasks = counters.get("tbd_pool_tasks_total", 0) + counters.get(
        "tbd_pool_tasks_inline_total", 0
    )
    if pool_tasks <= 0:
        fail(f"{path}: no pool tasks recorded: {counters}")
    rollup = manifest["span_rollup"]
    missing = span_names - rollup.keys()
    if missing:
        fail(f"{path}: span_rollup missing stages: {sorted(missing)}")
    for name, entry in rollup.items():
        if entry["count"] < 1 or entry["total_us"] < entry["max_us"]:
            fail(f"{path}: inconsistent rollup for {name}: {entry}")


def check_timeline(path, require_crossing):
    with open(path) as f:
        timeline = json.load(f)
    events = timeline.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: traceEvents missing or empty")

    # tid -> lane name from thread_name metadata.
    lane_name = {}
    for e in events:
        if e.get("ph") == "M" and e.get("name") == "thread_name":
            lane_name[e["tid"]] = e["args"]["name"]

    # Walk each tid's B/E stream in file order (the file is sorted by ts with
    # correct intra-ts order); every B must be closed by a later E and stacks
    # must nest. Closed slices are collected for flow binding.
    stacks = {}  # tid -> list of (name, ts)
    slices = {}  # tid -> list of (start, end)
    episodes = {}  # server -> list of (start, end) from "server N episodes"
    flow_events = {}  # id -> list of (ph, tid, ts)
    for e in events:
        ph = e.get("ph")
        tid = e.get("tid")
        if ph in ("B", "E", "X", "s", "t", "f") and tid not in lane_name:
            fail(f"{path}: tid {tid} has no thread_name metadata: {e}")
        if ph == "B":
            stacks.setdefault(tid, []).append((e.get("name", "?"), e["ts"]))
        elif ph == "E":
            stack = stacks.get(tid)
            if not stack:
                fail(f"{path}: unmatched 'E' on tid {tid}: {e}")
            name, start = stack.pop()
            if e["ts"] < start:
                fail(f"{path}: slice '{name}' on tid {tid} ends before start")
            slices.setdefault(tid, []).append((start, e["ts"]))
        elif ph == "X":
            m = EPISODE_TRACK_RE.match(lane_name[tid])
            if m:
                episodes.setdefault(int(m.group(1)), []).append(
                    (e["ts"], e["ts"] + e["dur"])
                )
        elif ph in ("s", "t", "f"):
            if "id" not in e:
                fail(f"{path}: flow event without id: {e}")
            if ph == "f" and e.get("bp") != "e":
                fail(f"{path}: flow finish without bp='e': {e}")
            flow_events.setdefault(e["id"], []).append((ph, tid, e["ts"]))
    leftovers = {t: s for t, s in stacks.items() if s}
    if leftovers:
        fail(f"{path}: unclosed 'B' events: {leftovers}")
    if not any(slices.values()):
        fail(f"{path}: no visit slices")

    # Binding is a coverage question, so collapse each tid's slices into
    # sorted disjoint intervals once and bisect per flow point — the naive
    # any() scan is O(flows x slices) and stalls on multi-minute captures.
    def merge(intervals):
        merged = []
        for start, end in sorted(intervals):
            if merged and start <= merged[-1][1]:
                merged[-1][1] = max(merged[-1][1], end)
            else:
                merged.append([start, end])
        return merged

    coverage = {tid: merge(iv) for tid, iv in slices.items()}
    episode_cover = {server: merge(iv) for server, iv in episodes.items()}

    def covered(merged, ts):
        i = bisect.bisect_right(merged, [ts, float("inf")]) - 1
        return i >= 0 and merged[i][1] >= ts

    crossing = False
    for fid, points in flow_events.items():
        phases = [p[0] for p in points]
        if phases.count("s") != 1 or phases.count("f") != 1:
            fail(f"{path}: flow {fid} needs exactly one 's' and one 'f': {phases}")
        if phases[0] != "s" or phases[-1] != "f":
            fail(f"{path}: flow {fid} out of order: {phases}")
        for ph, tid, ts in points:
            if not covered(coverage.get(tid, []), ts):
                fail(f"{path}: flow {fid} point ({ph}) at ts={ts} binds to no "
                     f"slice on tid {tid} ({lane_name.get(tid)})")
            m = LANE_RE.match(lane_name[tid])
            if m and covered(episode_cover.get(int(m.group(1)), []), ts):
                crossing = True
    if not flow_events:
        fail(f"{path}: no flow events")
    if require_crossing and not crossing:
        fail(f"{path}: no transaction flow crosses a congestion episode")
    return len(flow_events), crossing


def check_attribution(path):
    with open(path) as f:
        lines = [json.loads(line) for line in f if line.strip()]
    if not lines:
        fail(f"{path}: empty attribution file")
    meta = lines[0]
    if meta.get("type") != "meta":
        fail(f"{path}: first record is not 'meta': {meta}")
    if meta.get("schema_version") != 1:
        fail(f"{path}: schema_version {meta.get('schema_version')} != 1")
    quantiles = meta.get("band_quantiles")
    cutoffs = meta.get("cutoffs_us")
    if not isinstance(quantiles, list) or not isinstance(cutoffs, list):
        fail(f"{path}: meta missing band_quantiles/cutoffs_us")
    if len(quantiles) != len(cutoffs):
        fail(f"{path}: {len(quantiles)} quantiles but {len(cutoffs)} cutoffs")

    bands = {}
    for rec in lines[1:]:
        kind = rec.get("type")
        if kind == "band":
            name = rec["band"]
            if not BAND_RE.match(name):
                fail(f"{path}: unknown band name '{name}'")
            if name in bands:
                fail(f"{path}: duplicate band '{name}'")
            if rec["txns"] < 0 or rec["latency_us"] < 0:
                fail(f"{path}: negative band totals: {rec}")
            bands[name] = rec
        elif kind == "band_server":
            band = bands.get(rec["band"])
            if band is None:
                fail(f"{path}: band_server before its band record: {rec}")
            frac = rec["latency_frac"]
            if not 0.0 <= frac <= 1.0:
                fail(f"{path}: latency_frac {frac} outside [0, 1]: {rec}")
            total = (
                rec["queue_in_episode_us"]
                + rec["queue_out_episode_us"]
                + rec["service_in_episode_us"]
                + rec["service_out_episode_us"]
            )
            if min(
                rec["queue_in_episode_us"],
                rec["queue_out_episode_us"],
                rec["service_in_episode_us"],
                rec["service_out_episode_us"],
            ) < 0:
                fail(f"{path}: negative split: {rec}")
            if total > band["latency_us"] * (1 + 1e-6) + 1e-3:
                fail(f"{path}: server split {total} exceeds band latency "
                     f"{band['latency_us']}: {rec}")
        else:
            fail(f"{path}: unknown record type: {rec}")
    if len(bands) != len(quantiles) + 1:
        fail(f"{path}: {len(bands)} bands, expected {len(quantiles) + 1}")
    if sum(b["txns"] for b in bands.values()) != meta.get("txns"):
        fail(f"{path}: band txns do not sum to meta txns {meta.get('txns')}")
    return len(bands)


def check_events(path):
    with open(path) as f:
        raw = [line.rstrip("\n") for line in f if line.strip()]
    if not raw:
        fail(f"{path}: empty event log")
    try:
        lines = [json.loads(line) for line in raw]
    except json.JSONDecodeError as err:
        fail(f"{path}: malformed NDJSON line: {err}")
    meta = lines[0]
    if meta.get("type") != "meta":
        fail(f"{path}: first record is not 'meta': {meta}")
    if meta.get("seq") != 0:
        fail(f"{path}: meta record seq {meta.get('seq')} != 0")
    if meta.get("schema_version") != 1:
        fail(f"{path}: schema_version {meta.get('schema_version')} != 1")

    expected_seq = 1
    kinds = {}
    open_streams = set()
    for rec in lines[1:]:
        kind = rec.get("type")
        fields = EVENT_FIELDS.get(kind)
        if fields is None:
            fail(f"{path}: unknown event type: {rec}")
        if rec.get("seq") != expected_seq:
            fail(f"{path}: seq {rec.get('seq')} != expected {expected_seq} "
                 f"(monotonicity broken): {rec}")
        expected_seq += 1
        for field, kind_ok in fields.items():
            if field not in rec:
                fail(f"{path}: {kind} missing '{field}': {rec}")
            value = rec[field]
            # bool is an int subclass; only 'freeze' may be one.
            if isinstance(value, bool) and kind_ok is not bool:
                fail(f"{path}: {kind}.{field} is bool, wants {kind_ok}: {rec}")
            if not isinstance(value, kind_ok):
                fail(f"{path}: {kind}.{field} has wrong type: {rec}")
        extra = rec.keys() - fields.keys() - {"type", "seq"}
        if extra:
            fail(f"{path}: {kind} carries undocumented fields {extra}: {rec}")
        if kind == "interval_sealed":
            if rec["state"] not in INTERVAL_STATES:
                fail(f"{path}: unknown interval state: {rec}")
        elif kind == "episode_open":
            if rec["stream"] in open_streams:
                fail(f"{path}: episode_open while one is open: {rec}")
            open_streams.add(rec["stream"])
        elif kind == "episode_close":
            if rec["stream"] not in open_streams:
                fail(f"{path}: episode_close without a matching open: {rec}")
            open_streams.discard(rec["stream"])
            if rec["duration_us"] <= 0 or rec["peak_load"] < 0:
                fail(f"{path}: degenerate episode: {rec}")
        kinds[kind] = kinds.get(kind, 0) + 1
    if not kinds.get("interval_sealed"):
        fail(f"{path}: no interval_sealed events")
    return expected_seq - 1, kinds


def fetch(url):
    if "://" not in url:
        url = "file://" + url  # allow files directly
    with urllib.request.urlopen(url, timeout=10) as resp:
        return resp.read().decode()


def check_statusz(url):
    try:
        doc = json.loads(fetch(url))
    except json.JSONDecodeError as err:
        fail(f"{url}: statusz is not valid JSON: {err}")
    if doc.get("schema_version") != 1:
        fail(f"{url}: schema_version {doc.get('schema_version')} != 1")
    for key in ("tool", "git", "pid", "uptime_seconds", "process", "profiler"):
        if key not in doc:
            fail(f"{url}: statusz missing '{key}'")
    if not doc["tool"] or not doc["git"]:
        fail(f"{url}: empty tool/git identity")
    if doc["pid"] <= 0 or doc["uptime_seconds"] < 0:
        fail(f"{url}: implausible pid/uptime: {doc['pid']}/{doc['uptime_seconds']}")
    process = doc["process"]
    for key in ("rss_bytes", "max_rss_bytes", "cpu_user_seconds",
                "cpu_system_seconds", "threads", "open_fds"):
        if key not in process:
            fail(f"{url}: process stats missing '{key}'")
    if process["rss_bytes"] <= 0 or process["threads"] < 1:
        fail(f"{url}: implausible process stats: {process}")
    profiler = doc["profiler"]
    for key in ("running", "mode", "hz", "samples", "dropped", "duration_us"):
        if key not in profiler:
            fail(f"{url}: profiler block missing '{key}'")
    streams = doc.get("streams")
    if streams is not None:
        if not isinstance(streams, list) or not streams:
            fail(f"{url}: streams source present but not a non-empty list")
        for entry in streams:
            for key in ("stream", "records", "ingest_watermark_us",
                        "sealed_through_us", "seal_lag_us", "open_intervals"):
                if key not in entry:
                    fail(f"{url}: stream entry missing '{key}': {entry}")
            if entry["seal_lag_us"] < 0:
                fail(f"{url}: negative seal_lag_us: {entry}")
    return doc["tool"], len(streams) if streams else 0


def check_threadz(url):
    try:
        doc = json.loads(fetch(url))
    except json.JSONDecodeError as err:
        fail(f"{url}: threadz is not valid JSON: {err}")
    if doc.get("schema_version") != 1:
        fail(f"{url}: schema_version {doc.get('schema_version')} != 1")
    for key in ("watchdog_running", "stalls_detected", "pool", "slow_tasks"):
        if key not in doc:
            fail(f"{url}: threadz missing '{key}'")
    pool = doc["pool"]
    workers = pool.get("workers")
    if not isinstance(workers, list) or len(workers) != pool.get("threads"):
        fail(f"{url}: pool.workers length != pool.threads: {pool}")
    for i, worker in enumerate(workers):
        for key in ("slot", "name", "running", "stalled", "task_index",
                    "task_elapsed_us", "tasks", "busy_us"):
            if key not in worker:
                fail(f"{url}: worker missing '{key}': {worker}")
        if worker["slot"] != i or not worker["name"]:
            fail(f"{url}: worker slot/name inconsistent at {i}: {worker}")
    slow = doc["slow_tasks"]
    for prev, cur in zip(slow, slow[1:]):
        if prev["duration_us"] < cur["duration_us"]:
            fail(f"{url}: slow_tasks not sorted longest-first: {slow}")
    return pool.get("threads"), doc["stalls_detected"]


def check_profile(path):
    with open(path) as f:
        lines = f.read().splitlines()
    if not lines:
        fail(f"{path}: empty folded profile")
    total = 0
    prev = None
    for lineno, line in enumerate(lines, 1):
        # Split on the LAST space: demangled C++ frames contain spaces
        # ("tbd::f(int, int)"), so anything naive mis-parses the count.
        cut = line.rfind(" ")
        if cut <= 0:
            fail(f"{path}:{lineno}: no count on folded line: {line!r}")
        stack, count_text = line[:cut], line[cut + 1:]
        if not count_text.isdigit() or int(count_text) < 1:
            fail(f"{path}:{lineno}: bad sample count: {line!r}")
        if ";" not in stack:
            fail(f"{path}:{lineno}: no thread;frame separator: {line!r}")
        if any(not part for part in stack.split(";")):
            fail(f"{path}:{lineno}: empty frame in stack: {line!r}")
        if prev is not None and stack <= prev:
            fail(f"{path}:{lineno}: folded lines not sorted+unique: {line!r}")
        prev = stack
        total += int(count_text)
    return len(lines), total


def check_scrape(url):
    text = fetch(url)
    if not text.endswith("\n"):
        fail(f"{url}: exposition does not end with a newline")
    typed = set()
    series = 0
    stream_series = 0
    last_family = None
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(" ", 3)
            if len(parts) < 4 or parts[1] not in ("TYPE", "HELP"):
                fail(f"{url}:{lineno}: malformed comment line: {line!r}")
            if parts[1] == "TYPE":
                if not PROM_NAME_RE.match(parts[2]):
                    fail(f"{url}:{lineno}: bad metric name: {line!r}")
                if parts[3] not in ("counter", "gauge", "histogram", "summary",
                                    "untyped"):
                    fail(f"{url}:{lineno}: bad metric type: {line!r}")
                if parts[2] in typed:
                    fail(f"{url}:{lineno}: duplicate TYPE for {parts[2]} "
                         f"(families must be contiguous)")
                typed.add(parts[2])
                last_family = parts[2]
            continue
        m = PROM_SAMPLE_RE.match(line)
        if not m:
            fail(f"{url}:{lineno}: unparseable sample line: {line!r}")
        name = m.group("name")
        family_ok = last_family is not None and name.startswith(last_family)
        if not family_ok:
            fail(f"{url}:{lineno}: sample '{name}' outside its TYPE'd family "
             f"(last TYPE: {last_family})")
        labels_src = m.group("labels")
        labels = {}
        if labels_src is not None:
            consumed = 0
            for pair in PROM_PAIR_RE.finditer(labels_src):
                if pair.start() != consumed:
                    break
                consumed = pair.end()
                labels[pair.group("key")] = pair.group("value")
            if consumed != len(labels_src):
                fail(f"{url}:{lineno}: malformed label block: {line!r}")
        try:
            float(m.group("value"))
        except ValueError:
            fail(f"{url}:{lineno}: non-numeric sample value: {line!r}")
        series += 1
        if name.startswith("tbd_stream_") and "stream" in labels:
            stream_series += 1
    if series == 0:
        fail(f"{url}: no sample lines")
    if stream_series == 0:
        fail(f"{url}: no per-stream tbd_stream_* series with a stream label")
    return series, stream_series


def main():
    parser = argparse.ArgumentParser(add_help=True)
    parser.add_argument("trace", nargs="?", help="tbd_analyze span trace JSON")
    parser.add_argument("manifest", nargs="?", help="run manifest JSON")
    parser.add_argument("--timeline", help="flight-recorder timeline JSON")
    parser.add_argument("--attribution", help="attribution NDJSON")
    parser.add_argument("--events", help="tbd_watch event-log NDJSON")
    parser.add_argument(
        "--scrape", help="Prometheus exposition URL or file path"
    )
    parser.add_argument("--statusz", help="/statusz URL or file path")
    parser.add_argument("--threadz", help="/threadz URL or file path")
    parser.add_argument("--profile", help="folded-stack profile file")
    parser.add_argument(
        "--require-crossing",
        action="store_true",
        help="fail unless a flow crosses a congestion episode",
    )
    args = parser.parse_args()
    if bool(args.trace) != bool(args.manifest):
        parser.error("TRACE and MANIFEST must be given together")
    if not any((args.trace, args.timeline, args.attribution, args.events,
                args.scrape, args.statusz, args.threadz, args.profile)):
        parser.error("nothing to check")

    checked = []
    if args.trace:
        span_names = check_trace(args.trace)
        check_manifest(args.manifest, span_names)
        checked += [args.trace, args.manifest]
    if args.timeline:
        flows, crossing = check_timeline(args.timeline, args.require_crossing)
        checked.append(
            f"{args.timeline} ({flows} flows{', crossing' if crossing else ''})"
        )
    if args.attribution:
        bands = check_attribution(args.attribution)
        checked.append(f"{args.attribution} ({bands} bands)")
    if args.events:
        count, kinds = check_events(args.events)
        summary = ", ".join(f"{k}={v}" for k, v in sorted(kinds.items()))
        checked.append(f"{args.events} ({count} events: {summary})")
    if args.scrape:
        series, stream_series = check_scrape(args.scrape)
        checked.append(
            f"{args.scrape} ({series} series, {stream_series} per-stream)"
        )
    if args.statusz:
        tool, streams = check_statusz(args.statusz)
        checked.append(f"{args.statusz} ({tool}, {streams} streams)")
    if args.threadz:
        threads, stalls = check_threadz(args.threadz)
        checked.append(f"{args.threadz} ({threads} workers, {stalls} stalls)")
    if args.profile:
        stacks, samples = check_profile(args.profile)
        checked.append(f"{args.profile} ({stacks} stacks, {samples} samples)")
    print(f"check_obs_output: OK ({', '.join(checked)})")


if __name__ == "__main__":
    main()
