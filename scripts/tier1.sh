#!/usr/bin/env bash
# Tier-1 gate: configure, build, run the full test suite, then re-check the
# parallel sweep path under ThreadSanitizer, the observability layer under
# AddressSanitizer, and the tbd_analyze observability outputs against the
# checked-in schema.
#
#   scripts/tier1.sh            # from the repo root
#
# The sanitizer stages build only their standalone test binary (see
# tests/CMakeLists.txt) in separate build trees so the instrumented objects
# never mix with the normal ones. sweep_test runs with TBD_THREADS=4 so the
# thread pool actually spins up workers; obs_test exercises the striped
# metric shards and span ring buffers where a lifetime bug would hide.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: build =="
cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)"

echo "== tier-1: ctest =="
ctest --test-dir build --output-on-failure

echo "== tier-1: sweep under ThreadSanitizer =="
if cmake -B build-tsan -S . -DTBD_SANITIZE=thread >/dev/null \
    && cmake --build build-tsan -j "$(nproc)" --target sweep_test; then
  TBD_THREADS=4 ./build-tsan/tests/sweep_test
else
  # Toolchains without libtsan (some minimal containers) can't run this
  # stage; the functional suite above still gates the change.
  echo "warning: ThreadSanitizer build unavailable; skipped TSan stage" >&2
fi

echo "== tier-1: obs under AddressSanitizer =="
if cmake -B build-asan -S . -DTBD_SANITIZE=address >/dev/null \
    && cmake --build build-asan -j "$(nproc)" --target obs_test; then
  TBD_THREADS=4 ./build-asan/tests/obs_test
else
  # Same escape hatch as TSan: minimal toolchains may lack libasan.
  echo "warning: AddressSanitizer build unavailable; skipped ASan stage" >&2
fi

echo "== tier-1: observability smoke =="
obs_tmp="$(mktemp -d)"
trap 'rm -rf "$obs_tmp"' EXIT
./build/tools/tbd_analyze --width 50 \
  --trace-out "$obs_tmp/trace.json" \
  --metrics-out "$obs_tmp/manifest.json" \
  scripts/testdata/tiny_log.csv >/dev/null
python3 scripts/check_obs_output.py "$obs_tmp/trace.json" \
  "$obs_tmp/manifest.json"

echo "== tier-1: OK =="
