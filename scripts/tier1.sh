#!/usr/bin/env bash
# Tier-1 gate: configure, build, run the full test suite, then re-check the
# parallel sweep path under ThreadSanitizer, the observability layer under
# AddressSanitizer, and the tbd_analyze observability outputs against the
# checked-in schema.
#
#   scripts/tier1.sh            # from the repo root
#
# The sanitizer stages build only their standalone test binary (see
# tests/CMakeLists.txt) in separate build trees so the instrumented objects
# never mix with the normal ones. sweep_test runs with TBD_THREADS=4 so the
# thread pool actually spins up workers; obs_test exercises the striped
# metric shards and span ring buffers where a lifetime bug would hide.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: build =="
cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)"

echo "== tier-1: ctest =="
ctest --test-dir build --output-on-failure

echo "== tier-1: sweep under ThreadSanitizer =="
if cmake -B build-tsan -S . -DTBD_SANITIZE=thread >/dev/null \
    && cmake --build build-tsan -j "$(nproc)" --target sweep_test; then
  TBD_THREADS=4 ./build-tsan/tests/sweep_test
else
  # Toolchains without libtsan (some minimal containers) can't run this
  # stage; the functional suite above still gates the change.
  echo "warning: ThreadSanitizer build unavailable; skipped TSan stage" >&2
fi

echo "== tier-1: obs under AddressSanitizer =="
if cmake -B build-asan -S . -DTBD_SANITIZE=address >/dev/null \
    && cmake --build build-asan -j "$(nproc)" --target obs_test; then
  TBD_THREADS=4 ./build-asan/tests/obs_test
else
  # Same escape hatch as TSan: minimal toolchains may lack libasan.
  echo "warning: AddressSanitizer build unavailable; skipped ASan stage" >&2
fi

echo "== tier-1: corpus + correctness harness under ASan/UBSan =="
# The fuzz corpus is content-addressed; a stale or hand-renamed seed fails
# fast here before the replay stage would silently cover less than it claims.
python3 scripts/check_corpus.py
# Replay every checked-in corpus input through the structure-aware fuzz
# harnesses, and run the seeded differential-oracle and metamorphic suites,
# all instrumented with AddressSanitizer + UBSan. g++ has no libFuzzer, so
# the replay drivers (plain main() over tests/corpus/) are the portable gate;
# a clang toolchain can additionally build the <name>_fuzz targets to explore.
if cmake -B build-fuzz -S . -DTBD_FUZZ=ON \
      -DTBD_SANITIZE=address+undefined >/dev/null \
    && cmake --build build-fuzz -j "$(nproc)" \
        --target fuzz_csv_replay fuzz_tbdr_replay fuzz_tbdr2_replay \
        fuzz_capture_replay \
        differential_oracle_test metamorphic_test \
        serve_test serve_equivalence_test; then
  ctest --test-dir build-fuzz --output-on-failure \
    -R 'corpus_replay_|differential_oracle_test|metamorphic_test'
  # The serve daemon's protocol-torture, back-pressure, and byte-equivalence
  # suites rerun instrumented: hostile frames and mid-frame disconnects are
  # exactly where a lifetime bug in the ingest/pump handoff would hide.
  TBD_THREADS=4 ./build-fuzz/tests/serve_test
  for threads in 1 4; do
    TBD_THREADS=$threads ./build-fuzz/tests/serve_equivalence_test
  done
else
  echo "warning: ASan/UBSan build unavailable; skipped correctness-harness stage" >&2
fi

echo "== tier-1: TBD_OBS=OFF build =="
# The observability layer must compile out cleanly: spans become no-ops,
# the profiler becomes a stub, and nothing downstream (flight recorder
# included) may notice.
cmake -B build-obsoff -S . -DTBD_OBS=OFF >/dev/null
cmake --build build-obsoff -j "$(nproc)" --target tbd_timeline tbd_watch \
  tbd_analyze
# Compile-out proof: --profile-out on an OBS=OFF binary must degrade to a
# "compiled out" warning, not a profile and not a failure.
./build-obsoff/tools/tbd_watch --width 50 --nstar 3 --speed max \
  --profile-out /dev/null scripts/testdata/tiny_log.csv 2>&1 >/dev/null \
  | grep -q "compiled out"

echo "== tier-1: observability smoke =="
obs_tmp="$(mktemp -d)"
trap 'rm -rf "$obs_tmp"' EXIT
./build/tools/tbd_analyze --width 50 \
  --trace-out "$obs_tmp/trace.json" \
  --metrics-out "$obs_tmp/manifest.json" \
  scripts/testdata/tiny_log.csv >/dev/null
python3 scripts/check_obs_output.py "$obs_tmp/trace.json" \
  "$obs_tmp/manifest.json"

echo "== tier-1: flight-recorder smoke =="
# The burst in tiny_log.csv saturates server 0 well past N*=3; the rendered
# timeline must show at least one transaction flow crossing the resulting
# congestion-episode band, and the attribution NDJSON must satisfy its
# schema. Both artifacts must be identical at 1 and 4 pool threads.
TBD_THREADS=1 ./build/tools/tbd_timeline --width 50 --nstar 3 \
  --timeline-out "$obs_tmp/timeline.json" \
  --attribution-out "$obs_tmp/attribution.ndjson" \
  scripts/testdata/tiny_log.csv >/dev/null
TBD_THREADS=4 ./build/tools/tbd_timeline --width 50 --nstar 3 \
  --timeline-out "$obs_tmp/timeline4.json" \
  --attribution-out "$obs_tmp/attribution4.ndjson" \
  scripts/testdata/tiny_log.csv >/dev/null
cmp "$obs_tmp/timeline.json" "$obs_tmp/timeline4.json"
cmp "$obs_tmp/attribution.ndjson" "$obs_tmp/attribution4.ndjson"
python3 scripts/check_obs_output.py \
  --timeline "$obs_tmp/timeline.json" --require-crossing \
  --attribution "$obs_tmp/attribution.ndjson"

echo "== tier-1: ingestion smoke =="
# CSV -> TBDR -> CSV must round-trip byte-identically (the canonical CSV on
# both sides comes from the same batched writer), and tbd_analyze must
# produce the same report from either encoding of the same log. The
# "loaded ..." line names the input file, so it is filtered before cmp.
./build/tools/tbd_convert scripts/testdata/tiny_log.csv \
  "$obs_tmp/tiny.tbdr" >/dev/null
./build/tools/tbd_convert "$obs_tmp/tiny.tbdr" \
  "$obs_tmp/tiny_roundtrip.csv" >/dev/null
./build/tools/tbd_convert scripts/testdata/tiny_log.csv \
  "$obs_tmp/tiny_canonical.csv" >/dev/null
cmp "$obs_tmp/tiny_roundtrip.csv" "$obs_tmp/tiny_canonical.csv"
# Same gates for the segmented v2 format: CSV -> v2 -> CSV byte-identical,
# and a v1 -> v2 -> v1 binary round-trip (v1 is bijective, so equal v1 bytes
# prove v2 lost nothing).
./build/tools/tbd_convert scripts/testdata/tiny_log.csv \
  "$obs_tmp/tiny.tbd2" >/dev/null
./build/tools/tbd_convert "$obs_tmp/tiny.tbd2" \
  "$obs_tmp/tiny_v2_roundtrip.csv" >/dev/null
cmp "$obs_tmp/tiny_v2_roundtrip.csv" "$obs_tmp/tiny_canonical.csv"
./build/tools/tbd_convert "$obs_tmp/tiny.tbdr" "$obs_tmp/tiny_v1v2.tbd2" \
  >/dev/null
./build/tools/tbd_convert "$obs_tmp/tiny_v1v2.tbd2" \
  "$obs_tmp/tiny_v1v2v1.tbdr" >/dev/null
cmp "$obs_tmp/tiny.tbdr" "$obs_tmp/tiny_v1v2v1.tbdr"
./build/tools/tbd_analyze --width 50 scripts/testdata/tiny_log.csv \
  | grep -v '^loaded ' > "$obs_tmp/report_csv.txt"
./build/tools/tbd_analyze --width 50 "$obs_tmp/tiny.tbdr" \
  | grep -v '^loaded ' > "$obs_tmp/report_bin.txt"
cmp "$obs_tmp/report_csv.txt" "$obs_tmp/report_bin.txt"
./build/tools/tbd_analyze --width 50 "$obs_tmp/tiny.tbd2" \
  | grep -v '^loaded ' > "$obs_tmp/report_v2.txt"
cmp "$obs_tmp/report_csv.txt" "$obs_tmp/report_v2.txt"
# The sharded CSV loader must be order-preserving: identical analysis at any
# thread count.
TBD_THREADS=1 ./build/tools/tbd_analyze --width 50 \
  scripts/testdata/tiny_log.csv > "$obs_tmp/report_t1.txt"
TBD_THREADS=4 ./build/tools/tbd_analyze --width 50 \
  scripts/testdata/tiny_log.csv > "$obs_tmp/report_t4.txt"
cmp "$obs_tmp/report_t1.txt" "$obs_tmp/report_t4.txt"

echo "== tier-1: live-telemetry smoke =="
# tbd_watch must replay the golden TBDR log into an event log byte-identical
# to the checked-in golden (and to itself at any pool width), and its live
# endpoints must serve a parseable Prometheus exposition with per-stream
# labels plus the episode ring as JSON. An exit code of 3 would mean the
# sealing lag dropped stragglers — impossible on this log with the default
# 5 s lag, so plain set -e catches it.
TBD_THREADS=1 ./build/tools/tbd_watch --width 50 --nstar 3 --speed max \
  --events-out "$obs_tmp/events_t1.ndjson" "$obs_tmp/tiny.tbdr" >/dev/null
TBD_THREADS=4 ./build/tools/tbd_watch --width 50 --nstar 3 --speed max \
  --events-out "$obs_tmp/events_t4.ndjson" "$obs_tmp/tiny.tbdr" >/dev/null
cmp "$obs_tmp/events_t1.ndjson" "$obs_tmp/events_t4.ndjson"
cmp "$obs_tmp/events_t1.ndjson" scripts/testdata/tiny_log_events.golden.ndjson
python3 scripts/check_obs_output.py --events "$obs_tmp/events_t1.ndjson"
# Live scrape: port 0 lets the kernel pick; the tool prints the bound URL.
# Wall-mode profiling covers the replay and the linger window (the replay
# is milliseconds; only wall mode sees the mostly-idle serving threads),
# and the folded profile is written at natural exit — so this run is
# waited on, never killed.
./build/tools/tbd_watch --width 50 --nstar 3 --speed max \
  --listen 127.0.0.1:0 --linger 8 \
  --profile-out "$obs_tmp/watch.folded" --profile-mode wall --profile-hz 251 \
  --stall-ms 30000 \
  "$obs_tmp/tiny.tbdr" > "$obs_tmp/watch_live.out" 2>&1 &
watch_pid=$!
watch_url=""
for _ in $(seq 50); do
  watch_url="$(grep -o 'http://[^ ]*' "$obs_tmp/watch_live.out" | head -1)" \
    || true
  [ -n "$watch_url" ] && break
  sleep 0.1
done
[ -n "$watch_url" ] || { cat "$obs_tmp/watch_live.out" >&2; exit 1; }
python3 scripts/check_obs_output.py --scrape "${watch_url}metrics" \
  --statusz "${watch_url}statusz" --threadz "${watch_url}threadz"
python3 - "$watch_url" <<'PY'
import json, sys, urllib.request
url = sys.argv[1]
episodes = json.load(urllib.request.urlopen(url + "episodes", timeout=10))
assert episodes["schema_version"] == 1, episodes
assert len(episodes["episodes"]) >= 1, episodes
assert urllib.request.urlopen(url + "healthz", timeout=10).read() == b"ok\n"
profilez = json.load(urllib.request.urlopen(url + "profilez", timeout=10))
assert profilez["schema_version"] == 1, profilez
assert profilez["running"] and profilez["mode"] == "wall", profilez
print(f"live scrape: OK ({len(episodes['episodes'])} episodes, "
      f"{profilez['samples']} profile samples)")
PY
wait "$watch_pid"  # natural exit (status 0) writes the folded profile
python3 scripts/check_obs_output.py --profile "$obs_tmp/watch.folded"

echo "== tier-1: serve smoke =="
# The live daemon must reproduce the tbd_watch golden byte-for-byte: tbd_send
# runs tbd_watch's calibration pass, tbd_serve runs the same detectors, and
# one connection is one ordered strand — so the shared journal is
# byte-identical to the checked-in golden at any pool width. The meta
# overrides make the journal's leading record match the tbd_watch one.
for threads in 1 4; do
  TBD_THREADS=$threads ./build/tools/tbd_serve --listen 127.0.0.1:0 \
    --no-http --events-out "$obs_tmp/serve_events_t$threads.ndjson" \
    --events-meta tool=tbd_watch --events-meta width_ms=50 \
    --events-meta lag_ms=5000 --events-meta speed=max \
    > "$obs_tmp/serve_t$threads.out" 2>&1 &
  serve_pid=$!
  serve_port=""
  for _ in $(seq 50); do
    serve_port="$(grep -o 'tcp://[^ ]*' "$obs_tmp/serve_t$threads.out" \
      | sed 's#.*:##; s#/##')" || true
    [ -n "$serve_port" ] && break
    sleep 0.1
  done
  [ -n "$serve_port" ] || { cat "$obs_tmp/serve_t$threads.out" >&2; exit 1; }
  ./build/tools/tbd_send --connect "127.0.0.1:$serve_port" --width 50 \
    --nstar 3 scripts/testdata/tiny_log.csv >/dev/null
  kill -TERM "$serve_pid"
  wait "$serve_pid"
  cmp "$obs_tmp/serve_events_t$threads.ndjson" \
    scripts/testdata/tiny_log_events.golden.ndjson
done
# Two senders replaying concurrently into one live daemon: the shared journal
# interleaves by arrival order, but each stream's private journal is owned by
# one connection — so the per-stream files must be byte-identical between
# TBD_THREADS=1 and =4 no matter how the senders raced. The live endpoints
# must serve labeled metrics, the stream table, and the episode ring.
for threads in 1 4; do
  mkdir -p "$obs_tmp/serve_streams_t$threads"
  TBD_THREADS=$threads ./build/tools/tbd_serve --listen 127.0.0.1:0 \
    --http 127.0.0.1:0 --events-dir "$obs_tmp/serve_streams_t$threads" \
    > "$obs_tmp/serve_live_t$threads.out" 2>&1 &
  serve_pid=$!
  serve_port=""
  serve_url=""
  for _ in $(seq 50); do
    serve_port="$(grep -o 'tcp://[^ ]*' "$obs_tmp/serve_live_t$threads.out" \
      | sed 's#.*:##; s#/##')" || true
    serve_url="$(grep -o 'http://[^ ]*' \
      "$obs_tmp/serve_live_t$threads.out" | head -1)" || true
    [ -n "$serve_port" ] && [ -n "$serve_url" ] && break
    sleep 0.1
  done
  [ -n "$serve_port" ] && [ -n "$serve_url" ] \
    || { cat "$obs_tmp/serve_live_t$threads.out" >&2; exit 1; }
  ./build/tools/tbd_send --connect "127.0.0.1:$serve_port" --width 50 \
    --nstar 3 scripts/testdata/tiny_log.csv >/dev/null &
  send_a=$!
  ./build/tools/tbd_send --connect "127.0.0.1:$serve_port" --width 50 \
    --nstar 3 --stream-prefix alt scripts/testdata/tiny_log.csv >/dev/null &
  send_b=$!
  wait "$send_a" "$send_b"
  python3 scripts/check_obs_output.py --scrape "${serve_url}metrics" \
    --statusz "${serve_url}statusz"
  python3 - "$serve_url" <<'PY'
import json, sys, urllib.request
url = sys.argv[1]
episodes = json.load(urllib.request.urlopen(url + "episodes", timeout=10))
assert episodes["schema_version"] == 1, episodes
assert len(episodes["episodes"]) >= 2, episodes  # one per replayed copy
statusz = json.loads(urllib.request.urlopen(url + "statusz", timeout=10).read())
serve = statusz["serve"]
assert serve["streams_total"] == 4, serve
assert serve["protocol_errors"] == 0, serve
assert all(q["dropped"] == 0 for q in serve["queues"]), serve
print(f"serve scrape: OK ({len(episodes['episodes'])} episodes, "
      f"{serve['streams_total']} streams)")
PY
  kill -TERM "$serve_pid"
  wait "$serve_pid"
done
for stream in server0 server1 alt0 alt1; do
  cmp "$obs_tmp/serve_streams_t1/$stream.ndjson" \
    "$obs_tmp/serve_streams_t4/$stream.ndjson"
done

echo "== tier-1: crash-recovery smoke =="
# The flight-recorder capture path: tbd_watch mirrors the live replay into a
# TBDR v2 segment log (small segments so the tiny log spans several). A
# crash mid-write is simulated by truncating the tail — the decoder must
# recover every sealed segment, warn about the dropped tail, and the
# recovered prefix must analyze identically at any pool width.
./build/tools/tbd_watch --width 50 --nstar 3 --speed max \
  --record-out "$obs_tmp/capture.tbd2" --record-segment 16 \
  "$obs_tmp/tiny.tbdr" >/dev/null
# The intact capture holds the same records as the source log. The recorder
# mirrors the replay's departure-ordered merge while the source CSV keeps
# its input order, so compare the sorted record sets, not raw bytes.
./build/tools/tbd_convert "$obs_tmp/capture.tbd2" \
  "$obs_tmp/capture_rt.csv" >/dev/null
tail -n +2 "$obs_tmp/capture_rt.csv" | sort > "$obs_tmp/capture_sorted.csv"
tail -n +2 "$obs_tmp/tiny_canonical.csv" | sort \
  | cmp - "$obs_tmp/capture_sorted.csv"
# Kill -9 mid-segment: chop 10 bytes off the tail. 77 records at 16 per
# segment = 4 sealed segments + a 13-record tail; the cut lands inside the
# tail's payload, so exactly 64 records must survive.
capture_bytes=$(wc -c < "$obs_tmp/capture.tbd2")
head -c "$((capture_bytes - 10))" "$obs_tmp/capture.tbd2" \
  > "$obs_tmp/capture_cut.tbd2"
TBD_THREADS=1 ./build/tools/tbd_analyze --width 50 \
  "$obs_tmp/capture_cut.tbd2" > "$obs_tmp/recover_t1.txt" \
  2> "$obs_tmp/recover_warn.txt"
TBD_THREADS=4 ./build/tools/tbd_analyze --width 50 \
  "$obs_tmp/capture_cut.tbd2" > "$obs_tmp/recover_t4.txt" 2>/dev/null
cmp "$obs_tmp/recover_t1.txt" "$obs_tmp/recover_t4.txt"
grep -q 'recovered 4 sealed segments; dropped tail:' \
  "$obs_tmp/recover_warn.txt"
grep -q '^loaded 64 records ' "$obs_tmp/recover_t1.txt"

echo "== tier-1: profiler overhead gate =="
# bench_streaming exits nonzero if the 97 Hz profiler arm costs >= 1% on
# push_batch. Run from the temp dir so the checked-in bench_out/ summary is
# not rewritten by a gate run.
cmake --build build -j "$(nproc)" --target bench_streaming
mkdir -p "$obs_tmp/bench_out"
(cd "$obs_tmp" && "$OLDPWD/build/bench/bench_streaming" >/dev/null)

echo "== tier-1: columnar equivalence =="
# The columnar (SoA) pipeline is the default ingest-to-detector path; the
# row (AoS) path stays as the reference. Reports from both layouts, over
# both encodings of the same log, must be byte-identical at 1 and 4 pool
# threads. The "loaded ..." line names the input file, so it is filtered
# before cmp when comparing across encodings.
for threads in 1 4; do
  TBD_THREADS=$threads ./build/tools/tbd_analyze --width 50 --layout aos \
    scripts/testdata/tiny_log.csv > "$obs_tmp/report_aos_t$threads.txt"
  TBD_THREADS=$threads ./build/tools/tbd_analyze --width 50 --layout soa \
    scripts/testdata/tiny_log.csv > "$obs_tmp/report_soa_t$threads.txt"
  cmp "$obs_tmp/report_aos_t$threads.txt" "$obs_tmp/report_soa_t$threads.txt"
  TBD_THREADS=$threads ./build/tools/tbd_analyze --width 50 --layout aos \
    "$obs_tmp/tiny.tbdr" | grep -v '^loaded ' > "$obs_tmp/report_aos_bin.txt"
  TBD_THREADS=$threads ./build/tools/tbd_analyze --width 50 --layout soa \
    "$obs_tmp/tiny.tbdr" | grep -v '^loaded ' > "$obs_tmp/report_soa_bin.txt"
  cmp "$obs_tmp/report_aos_bin.txt" "$obs_tmp/report_soa_bin.txt"
  grep -v '^loaded ' "$obs_tmp/report_soa_t$threads.txt" \
    | cmp - "$obs_tmp/report_soa_bin.txt"
done

echo "== tier-1: OK =="
