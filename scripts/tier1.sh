#!/usr/bin/env bash
# Tier-1 gate: configure, build, run the full test suite, then re-check the
# parallel sweep path under ThreadSanitizer.
#
#   scripts/tier1.sh            # from the repo root
#
# The TSan stage builds only the standalone sweep_test binary (see
# tests/CMakeLists.txt) in a separate build tree so the instrumented objects
# never mix with the normal ones, and runs it with TBD_THREADS=4 so the
# thread pool actually spins up workers.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: build =="
cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)"

echo "== tier-1: ctest =="
ctest --test-dir build --output-on-failure

echo "== tier-1: sweep under ThreadSanitizer =="
if cmake -B build-tsan -S . -DTBD_SANITIZE=thread >/dev/null \
    && cmake --build build-tsan -j "$(nproc)" --target sweep_test; then
  TBD_THREADS=4 ./build-tsan/tests/sweep_test
else
  # Toolchains without libtsan (some minimal containers) can't run this
  # stage; the functional suite above still gates the change.
  echo "warning: ThreadSanitizer build unavailable; skipped TSan stage" >&2
fi

echo "== tier-1: OK =="
