#include "transient/speedstep.h"

#include <gtest/gtest.h>

namespace tbd::transient {
namespace {

using namespace tbd::literals;

ntier::Server::Config db_cfg() {
  ntier::Server::Config cfg;
  cfg.name = "db";
  cfg.cores = 1;
  cfg.worker_threads = 50;
  return cfg;
}

SpeedStepConfig fast_control() {
  SpeedStepConfig cfg = dell_bios_config();
  cfg.control_interval = 10_ms;  // quick ticks for unit tests
  return cfg;
}

TEST(SpeedStepTest, TableIIPstates) {
  const auto states = xeon_pstates();
  ASSERT_EQ(states.size(), 5u);
  EXPECT_EQ(states[0].name, "P0");
  EXPECT_DOUBLE_EQ(states[0].mhz, 2261.0);
  EXPECT_EQ(states[4].name, "P8");
  EXPECT_DOUBLE_EQ(states[4].mhz, 1197.0);
  // The paper: lowest P-state is nearly half the clock of the highest.
  EXPECT_NEAR(states[4].mhz / states[0].mhz, 0.53, 0.01);
}

TEST(SpeedStepTest, StartsAtSlowestState) {
  sim::Engine engine;
  ntier::Server server{engine, db_cfg()};
  SpeedStepModel gov{engine, server, fast_control()};
  EXPECT_EQ(gov.current_state(), 4);
  EXPECT_NEAR(server.clock_ratio(), 1197.0 / 2261.0, 1e-9);
}

TEST(SpeedStepTest, StepsUpOneStatePerIntervalUnderLoad) {
  sim::Engine engine;
  ntier::Server server{engine, db_cfg()};
  SpeedStepModel gov{engine, server, fast_control()};
  // Saturate the server: a huge job keeps utilization at 100%.
  server.compute(10'000'000.0, [] {});
  engine.run_until(TimePoint::from_micros(15'000));  // one tick
  EXPECT_EQ(gov.current_state(), 3);  // one step, not a jump to P0
  engine.run_until(TimePoint::from_micros(55'000));
  EXPECT_EQ(gov.current_state(), 0);  // reached P0 after enough ticks
}

TEST(SpeedStepTest, StepsDownWhenIdle) {
  sim::Engine engine;
  ntier::Server server{engine, db_cfg()};
  auto cfg = fast_control();
  cfg.initial_state = 0;  // start fast
  SpeedStepModel gov{engine, server, cfg};
  engine.run_until(TimePoint::from_micros(100'000));
  EXPECT_EQ(gov.current_state(), 4);  // drifted to the power-saving state
}

TEST(SpeedStepTest, HoldsStateInHysteresisBand) {
  sim::Engine engine;
  ntier::Server server{engine, db_cfg()};
  auto cfg = fast_control();
  cfg.policy = GovernorPolicy::kUtilizationThreshold;
  cfg.initial_state = 2;
  cfg.up_threshold = 0.90;
  cfg.down_threshold = 0.10;
  SpeedStepModel gov{engine, server, cfg};
  // ~50% utilization: alternate work and idle every tick.
  for (int i = 0; i < 10; ++i) {
    engine.schedule_at(TimePoint::from_micros(i * 10'000), [&] {
      const double ratio = server.clock_ratio();
      server.compute(5'000.0 * ratio, [] {});
    });
  }
  engine.run_until(TimePoint::from_micros(100'000));
  EXPECT_EQ(gov.current_state(), 2);
}

TEST(SpeedStepTest, TransitionsAreLogged) {
  sim::Engine engine;
  ntier::Server server{engine, db_cfg()};
  SpeedStepModel gov{engine, server, fast_control()};
  server.compute(10'000'000.0, [] {});
  engine.run_until(TimePoint::from_micros(60'000));
  const auto& log = gov.log();
  ASSERT_GE(log.size(), 5u);  // initial + 4 up-steps
  EXPECT_EQ(log.front().state, 4);
  EXPECT_EQ(log.back().state, 0);
  for (std::size_t i = 1; i < log.size(); ++i) {
    EXPECT_GE(log[i].at.micros(), log[i - 1].at.micros());
  }
}

TEST(SpeedStepTest, ResidencySumsToOne) {
  sim::Engine engine;
  ntier::Server server{engine, db_cfg()};
  SpeedStepModel gov{engine, server, fast_control()};
  server.compute(10'000'000.0, [] {});
  engine.run_until(TimePoint::from_micros(200'000));
  const auto res = gov.state_residency(TimePoint::origin(),
                                       TimePoint::from_micros(200'000));
  double total = 0.0;
  for (double r : res) total += r;
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GT(res[0], 0.5);  // most time at P0 once ramped up
}

TEST(SpeedStepTest, GovernorLagLeavesSlowClockDuringBurst) {
  // The mismatch mechanism of Section IV-C in miniature: a burst arriving at
  // P8 is served at roughly half speed until the governor reacts.
  sim::Engine engine;
  ntier::Server server{engine, db_cfg()};
  auto cfg = fast_control();
  cfg.control_interval = 50_ms;  // sluggish relative to the burst
  SpeedStepModel gov{engine, server, cfg};
  TimePoint done;
  server.compute(20'000.0, [&] { done = engine.now(); });  // 20ms of work
  // run_until, not run_all: the governor's periodic task re-arms forever.
  engine.run_until(TimePoint::from_micros(45'000));
  // At P0 this would take 20ms; at P8 (0.53x) it takes ~37.8ms. The first
  // governor tick lands at 50ms, after the job finished: full P8 penalty.
  EXPECT_NEAR(done.millis_f(), 20.0 / (1197.0 / 2261.0), 0.5);
}

}  // namespace
}  // namespace tbd::transient
