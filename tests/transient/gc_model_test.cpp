#include "transient/gc_model.h"

#include <gtest/gtest.h>

namespace tbd::transient {
namespace {

using namespace tbd::literals;

ntier::Server::Config server_cfg() {
  ntier::Server::Config cfg;
  cfg.name = "app";
  cfg.cores = 1;
  cfg.worker_threads = 10;
  return cfg;
}

GcConfig deterministic(CollectorKind kind) {
  GcConfig cfg = kind == CollectorKind::kSerialStopTheWorld ? jdk15_config()
                                                            : jdk16_config();
  cfg.pause_cv = 0.0;  // exact pause lengths for timing assertions
  cfg.young_gen_bytes = 1000.0;
  cfg.major_every_bytes = 10'000.0;
  return cfg;
}

TEST(GcModelTest, MinorGcTriggersAtYoungGenBudget) {
  sim::Engine engine;
  ntier::Server server{engine, server_cfg()};
  GcModel gc{engine, server, deterministic(CollectorKind::kSerialStopTheWorld),
             Rng{1}};
  gc.on_alloc(999.0);
  EXPECT_EQ(gc.minor_collections(), 0u);
  gc.on_alloc(1.0);
  EXPECT_EQ(gc.minor_collections(), 1u);
  EXPECT_TRUE(server.paused());
  engine.run_all();
  EXPECT_FALSE(server.paused());
  ASSERT_EQ(gc.log().size(), 1u);
  EXPECT_FALSE(gc.log()[0].major);
  EXPECT_EQ((gc.log()[0].end - gc.log()[0].start).micros(),
            deterministic(CollectorKind::kSerialStopTheWorld)
                .serial_minor_pause.micros());
}

TEST(GcModelTest, MajorGcAtTenuredBudget) {
  sim::Engine engine;
  ntier::Server server{engine, server_cfg()};
  GcModel gc{engine, server, deterministic(CollectorKind::kSerialStopTheWorld),
             Rng{1}};
  for (int i = 0; i < 10; ++i) {
    gc.on_alloc(1000.0);
    engine.run_all();  // let each collection finish
  }
  EXPECT_EQ(gc.major_collections(), 1u);
  EXPECT_EQ(gc.minor_collections(), 9u);
  bool found_major = false;
  const double major_ms = deterministic(CollectorKind::kSerialStopTheWorld)
                              .serial_major_pause.millis_f();
  for (const auto& e : gc.log()) {
    if (e.major) {
      found_major = true;
      EXPECT_NEAR((e.end - e.start).millis_f(), major_ms, 1e-9);
    }
  }
  EXPECT_TRUE(found_major);
}

TEST(GcModelTest, SerialCollectorFreezesRequests) {
  sim::Engine engine;
  ntier::Server server{engine, server_cfg()};
  GcModel gc{engine, server, deterministic(CollectorKind::kSerialStopTheWorld),
             Rng{1}};
  TimePoint done;
  server.compute(1000.0, [&] { done = engine.now(); });
  engine.schedule_at(TimePoint::from_micros(500),
                     [&] { gc.on_alloc(2000.0); });  // trigger a minor pause
  engine.run_all();
  const auto pause = deterministic(CollectorKind::kSerialStopTheWorld)
                         .serial_minor_pause.micros();
  EXPECT_NEAR(done.micros(), 1000 + static_cast<double>(pause), 5);
}

TEST(GcModelTest, ParallelCollectorPausesBriefly) {
  sim::Engine engine;
  ntier::Server server{engine, server_cfg()};
  GcModel gc{engine, server,
             deterministic(CollectorKind::kParallelConcurrent), Rng{1}};
  TimePoint done;
  server.compute(1000.0, [&] { done = engine.now(); });
  engine.schedule_at(TimePoint::from_micros(500),
                     [&] { gc.on_alloc(2000.0); });
  engine.run_all();
  // 4ms flip pause, then the concurrent phase steals 0.4 cores for 30ms:
  // remaining 500us of work at 0.6 cores ~ 833us.
  EXPECT_LT(done.micros(), 7000);
  EXPECT_GT(done.micros(), 1000 + 4000 - 5);
}

TEST(GcModelTest, AllocationsDuringGcDeferred) {
  sim::Engine engine;
  ntier::Server server{engine, server_cfg()};
  GcModel gc{engine, server, deterministic(CollectorKind::kSerialStopTheWorld),
             Rng{1}};
  gc.on_alloc(1500.0);  // triggers, resets counter
  EXPECT_EQ(gc.minor_collections(), 1u);
  gc.on_alloc(1500.0);  // lands while collecting: no re-trigger
  EXPECT_EQ(gc.minor_collections(), 1u);
  engine.run_all();
  // The deferred allocation triggers the next cycle on the next alloc.
  gc.on_alloc(1.0);
  EXPECT_EQ(gc.minor_collections(), 2u);
}

TEST(GcModelTest, PauseJitterVariesButStaysPositive) {
  sim::Engine engine;
  ntier::Server server{engine, server_cfg()};
  GcConfig cfg = deterministic(CollectorKind::kSerialStopTheWorld);
  cfg.pause_cv = 0.2;
  GcModel gc{engine, server, cfg, Rng{7}};
  for (int i = 0; i < 20; ++i) {
    gc.on_alloc(1001.0);
    engine.run_all();
  }
  ASSERT_GE(gc.log().size(), 20u);
  bool varied = false;
  for (std::size_t i = 1; i < gc.log().size(); ++i) {
    const auto d0 = gc.log()[i - 1].end - gc.log()[i - 1].start;
    const auto d1 = gc.log()[i].end - gc.log()[i].start;
    EXPECT_GT(d1.micros(), 0);
    if (d0 != d1) varied = true;
  }
  EXPECT_TRUE(varied);
}

TEST(GcModelTest, PresetsMatchPaperCollectors) {
  EXPECT_EQ(jdk15_config().collector, CollectorKind::kSerialStopTheWorld);
  EXPECT_EQ(jdk16_config().collector, CollectorKind::kParallelConcurrent);
  // JDK 1.5 stop-the-world pauses dwarf the JDK 1.6 flip pauses.
  EXPECT_GT(jdk15_config().serial_minor_pause.micros(),
            jdk16_config().parallel_minor_pause.micros() * 5);
}

}  // namespace
}  // namespace tbd::transient
