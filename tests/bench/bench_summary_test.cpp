// Pins the bench_summary.json format (schema_version 8): header scalars,
// per-bench entry merging, and BenchArgs flag parsing. Compiles
// bench/bench_util.cpp directly into this binary (the bench helpers are not
// a library target).
#include "bench_util.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

namespace tbd::benchx {
namespace {

std::string summary_path() { return out_dir() + "/bench_summary.json"; }

std::string read_file(const std::string& path) {
  std::ifstream in{path};
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::size_t count_occurrences(const std::string& text,
                              const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t at = text.find(needle); at != std::string::npos;
       at = text.find(needle, at + needle.size())) {
    ++n;
  }
  return n;
}

class BenchSummaryTest : public ::testing::Test {
 protected:
  void SetUp() override { std::remove(summary_path().c_str()); }
  void TearDown() override { std::remove(summary_path().c_str()); }
};

TEST_F(BenchSummaryTest, WritesSchemaHeaderAndEntry) {
  {
    BenchSummary summary{"unit_bench"};
    summary.set("metric", 1.5);
  }  // destructor writes
  const std::string text = read_file(summary_path());
  EXPECT_NE(text.find("\"schema_version\": 8"), std::string::npos) << text;
  EXPECT_NE(text.find("\"git\": \""), std::string::npos) << text;
  EXPECT_NE(text.find("\"unit_bench\": {"), std::string::npos) << text;
  EXPECT_NE(text.find("\"metric\": 1.5"), std::string::npos) << text;
  EXPECT_NE(text.find("\"wall_s\": "), std::string::npos) << text;
  EXPECT_NE(text.find("\"threads\": "), std::string::npos) << text;
  // Header precedes the entries.
  EXPECT_LT(text.find("\"schema_version\""), text.find("\"unit_bench\""));
}

TEST_F(BenchSummaryTest, MergeKeepsOtherEntriesAndOneHeader) {
  {
    BenchSummary a{"bench_a"};
    a.set("x", 1.0);
  }
  {
    BenchSummary b{"bench_b"};
    b.set("y", 2.0);
  }
  const std::string text = read_file(summary_path());
  EXPECT_NE(text.find("\"bench_a\": {"), std::string::npos) << text;
  EXPECT_NE(text.find("\"bench_b\": {"), std::string::npos) << text;
  EXPECT_NE(text.find("\"x\": 1"), std::string::npos) << text;
  // The header scalars are rewritten, not duplicated, on every merge.
  EXPECT_EQ(count_occurrences(text, "\"schema_version\""), 1u) << text;
  EXPECT_EQ(count_occurrences(text, "\"git\""), 1u) << text;
}

TEST_F(BenchSummaryTest, RerunReplacesOwnEntry) {
  {
    BenchSummary a{"bench_a"};
    a.set("x", 1.0);
  }
  {
    BenchSummary again{"bench_a"};
    again.set("x", 3.0);
  }
  const std::string text = read_file(summary_path());
  EXPECT_EQ(count_occurrences(text, "\"bench_a\""), 1u) << text;
  EXPECT_NE(text.find("\"x\": 3"), std::string::npos) << text;
  EXPECT_EQ(text.find("\"x\": 1,"), std::string::npos) << text;
}

TEST_F(BenchSummaryTest, FinishIsIdempotent) {
  BenchSummary summary{"unit_bench"};
  summary.set("metric", 1.0);
  summary.finish();
  summary.set("late", 9.0);  // after finish: not written again
  summary.finish();
  const std::string text = read_file(summary_path());
  EXPECT_NE(text.find("\"metric\": 1"), std::string::npos) << text;
  EXPECT_EQ(text.find("\"late\""), std::string::npos) << text;
}

TEST(BenchArgsTest, ParsesFullAndObservabilityFlags) {
  const char* argv[] = {"bench", "--full", "--metrics-out", "/tmp/m.json"};
  const auto args =
      BenchArgs::parse(4, const_cast<char**>(argv));
  EXPECT_TRUE(args.full);
  EXPECT_EQ(args.metrics_out, "/tmp/m.json");
  EXPECT_TRUE(args.trace_out.empty());
  EXPECT_EQ(args.run_duration(Duration::seconds(2)), Duration::seconds(180));

  const char* argv2[] = {"bench"};
  const auto quick = BenchArgs::parse(1, const_cast<char**>(argv2));
  EXPECT_FALSE(quick.full);
  EXPECT_EQ(quick.run_duration(Duration::seconds(2)), Duration::seconds(2));
}

}  // namespace
}  // namespace tbd::benchx
