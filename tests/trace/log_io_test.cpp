#include "trace/log_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <string>

namespace tbd::trace {
namespace {

class LogIoTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "/tbd_log_io_test.csv";
  void TearDown() override { std::remove(path_.c_str()); }
};

RequestRecord rec(ServerIndex s, ClassId c, std::int64_t a, std::int64_t d,
                  TxnId txn) {
  RequestRecord r;
  r.server = s;
  r.class_id = c;
  r.arrival = TimePoint::from_micros(a);
  r.departure = TimePoint::from_micros(d);
  r.txn = txn;
  return r;
}

TEST_F(LogIoTest, RoundTrip) {
  RequestLog log{rec(0, 3, 1000, 2500, 42), rec(5, 1, 7, 9, 43)};
  ASSERT_TRUE(save_request_log_csv(path_, log));
  const auto loaded = load_request_log_csv(path_);
  ASSERT_TRUE(loaded.ok);
  ASSERT_EQ(loaded.records.size(), 2u);
  EXPECT_EQ(loaded.skipped_lines, 1u);  // the header
  EXPECT_EQ(loaded.records[0].server, 0u);
  EXPECT_EQ(loaded.records[0].class_id, 3u);
  EXPECT_EQ(loaded.records[0].arrival.micros(), 1000);
  EXPECT_EQ(loaded.records[0].departure.micros(), 2500);
  EXPECT_EQ(loaded.records[0].txn, 42u);
  EXPECT_EQ(loaded.records[1].server, 5u);
}

TEST_F(LogIoTest, SkipsCommentsAndMalformedLines) {
  {
    std::ofstream out{path_};
    out << "# a comment\n";
    out << "0,1,100,200,7\n";
    out << "not,a,valid,line,x\n";
    out << "\n";
    out << "1,2,300,400,8\n";
    out << "2,2,500,400,9\n";  // departure < arrival: rejected
  }
  const auto loaded = load_request_log_csv(path_);
  ASSERT_TRUE(loaded.ok);
  EXPECT_EQ(loaded.records.size(), 2u);
  EXPECT_EQ(loaded.skipped_lines, 4u);
}

TEST_F(LogIoTest, ToleratesSpaces) {
  {
    std::ofstream out{path_};
    out << " 0 , 1 , 100 , 200 , 7\n";
  }
  const auto loaded = load_request_log_csv(path_);
  ASSERT_EQ(loaded.records.size(), 1u);
  EXPECT_EQ(loaded.records[0].departure.micros(), 200);
}

TEST_F(LogIoTest, MissingFileReportsNotOk) {
  const auto loaded = load_request_log_csv("/nonexistent/dir/file.csv");
  EXPECT_FALSE(loaded.ok);
  EXPECT_TRUE(loaded.records.empty());
}

TEST_F(LogIoTest, EmptyLogRoundTrips) {
  ASSERT_TRUE(save_request_log_csv(path_, {}));
  const auto loaded = load_request_log_csv(path_);
  EXPECT_TRUE(loaded.ok);
  EXPECT_TRUE(loaded.records.empty());
}

TEST_F(LogIoTest, ReportsFirstMalformedLine) {
  {
    std::ofstream out{path_};
    out << "# comment\n";
    out << "server,class,arrival_us,departure_us,txn\n";  // header: not bad
    out << "0,1,100,200,7\n";
    out << "gar bage line that is definitely not a record\n";  // line 4
    out << "2,2,500,400,9\n";  // departure < arrival: also malformed
  }
  const auto loaded = load_request_log_csv(path_);
  ASSERT_TRUE(loaded.ok);
  EXPECT_EQ(loaded.records.size(), 1u);
  EXPECT_EQ(loaded.skipped_lines, 4u);
  EXPECT_EQ(loaded.first_bad_line, 4u);
  EXPECT_EQ(loaded.first_bad_text, "gar bage line that is definitely not a record");
}

TEST_F(LogIoTest, DepartureBeforeArrivalIsTheFirstBadLine) {
  {
    std::ofstream out{path_};
    out << "server,class,arrival_us,departure_us,txn\n";
    out << "2,2,500,400,9\n";  // line 2: departure < arrival
  }
  const auto loaded = load_request_log_csv(path_);
  EXPECT_EQ(loaded.first_bad_line, 2u);
  EXPECT_EQ(loaded.first_bad_text, "2,2,500,400,9");
}

TEST_F(LogIoTest, CleanFileReportsNoBadLine) {
  ASSERT_TRUE(save_request_log_csv(path_, {rec(0, 3, 1000, 2500, 42)}));
  const auto loaded = load_request_log_csv(path_);
  EXPECT_EQ(loaded.first_bad_line, 0u);
  EXPECT_TRUE(loaded.first_bad_text.empty());
}

TEST_F(LogIoTest, TruncatesLongBadLines) {
  {
    std::ofstream out{path_};
    out << "x" << std::string(200, 'y') << "\n";
  }
  const auto loaded = load_request_log_csv(path_);
  EXPECT_EQ(loaded.first_bad_line, 1u);
  EXPECT_EQ(loaded.first_bad_text.size(), 80u);
}

// The batched writer's output is pinned byte for byte: downstream tooling
// cmp-compares canonical CSVs across conversions and thread counts.
TEST_F(LogIoTest, SaveOutputIsByteIdenticalGolden) {
  RequestLog log{rec(0, 3, 1000, 2500, 42), rec(5, 1, 7, 9, 43),
                 rec(2, 0, 0, 0, 0)};
  ASSERT_TRUE(save_request_log_csv(path_, log));
  std::ifstream in{path_, std::ios::binary};
  std::string text{std::istreambuf_iterator<char>{in}, {}};
  EXPECT_EQ(text,
            "server,class,arrival_us,departure_us,txn\n"
            "0,3,1000,2500,42\n"
            "5,1,7,9,43\n"
            "2,0,0,0,0\n");
}

// A save large enough to cross the writer's internal flush boundary must
// still round-trip every record.
TEST_F(LogIoTest, LargeSaveRoundTrips) {
  RequestLog log;
  for (std::int64_t i = 0; i < 20'000; ++i) {
    log.push_back(rec(static_cast<ServerIndex>(i % 7), 1, i * 10, i * 10 + 5,
                      static_cast<TxnId>(i)));
  }
  ASSERT_TRUE(save_request_log_csv(path_, log));
  const auto loaded = load_request_log_csv(path_);
  ASSERT_EQ(loaded.records.size(), log.size());
  EXPECT_EQ(loaded.records.back().arrival.micros(), log.back().arrival.micros());
}

// --- sharded loader ---------------------------------------------------------

void expect_same_result(const LogIoResult& a, const LogIoResult& b) {
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.skipped_lines, b.skipped_lines);
  EXPECT_EQ(a.first_bad_line, b.first_bad_line);
  EXPECT_EQ(a.first_bad_text, b.first_bad_text);
  ASSERT_EQ(a.records.size(), b.records.size());
  if (!a.records.empty()) {
    EXPECT_EQ(std::memcmp(a.records.data(), b.records.data(),
                          a.records.size() * sizeof(RequestRecord)),
              0);
  }
}

TEST_F(LogIoTest, ShardedMatchesSequentialAtAnyShardCount) {
  {
    std::ofstream out{path_};
    out << "# comment\n";
    out << "server,class,arrival_us,departure_us,txn\n";
    for (int i = 0; i < 997; ++i) {
      out << i % 5 << "," << i % 3 << "," << i * 100 << "," << i * 100 + 50
          << "," << i << "\n";
    }
    out << "broken line\n";
    out << "4,1,10,20,30\n";
  }
  const auto seq = load_request_log_csv(path_);
  ASSERT_TRUE(seq.ok);
  ASSERT_EQ(seq.records.size(), 998u);
  EXPECT_EQ(seq.first_bad_line, 1000u);
  for (const int shards : {1, 2, 3, 7, 16, 64}) {
    SCOPED_TRACE(shards);
    expect_same_result(load_request_log_csv_sharded(path_, shards), seq);
  }
}

TEST_F(LogIoTest, ShardedHandlesMissingTrailingNewline) {
  {
    std::ofstream out{path_};
    out << "0,1,100,200,7\n";
    out << "1,2,300,400,8";  // no trailing newline
  }
  const auto seq = load_request_log_csv(path_);
  ASSERT_EQ(seq.records.size(), 2u);
  for (const int shards : {1, 2, 5}) {
    SCOPED_TRACE(shards);
    expect_same_result(load_request_log_csv_sharded(path_, shards), seq);
  }
}

TEST_F(LogIoTest, ShardedHandlesEmptyAndCommentOnlyFiles) {
  {
    std::ofstream out{path_};
  }
  expect_same_result(load_request_log_csv_sharded(path_, 4),
                     load_request_log_csv(path_));
  {
    std::ofstream out{path_, std::ios::trunc};
    out << "# only\n# comments\n";
  }
  expect_same_result(load_request_log_csv_sharded(path_, 4),
                     load_request_log_csv(path_));
}

TEST_F(LogIoTest, ShardedMissingFileReportsNotOk) {
  const auto loaded = load_request_log_csv_sharded("/nonexistent/f.csv", 4);
  EXPECT_FALSE(loaded.ok);
  EXPECT_EQ(loaded.error, "cannot open file");
}

// The buffer-level parser is the shared core of both file loaders; it must
// classify exactly like them without touching the filesystem.
TEST_F(LogIoTest, ParseBufferMatchesFileLoader) {
  const std::string text =
      "server,class,arrival_us,departure_us,txn\n"
      "0,3,1000,2500,42\n"
      "# comment\n"
      "not,a,valid,line,at all\n"
      "5,1,7,9,43\n";
  {
    std::ofstream out{path_};
    out << text;
  }
  const auto from_file = load_request_log_csv_sharded(path_, 3);
  for (int shards : {1, 2, 3, 7}) {
    const auto from_buffer = parse_request_log_csv(text, shards);
    EXPECT_TRUE(from_buffer.ok);
    ASSERT_EQ(from_buffer.records.size(), from_file.records.size());
    EXPECT_EQ(std::memcmp(from_buffer.records.data(), from_file.records.data(),
                          from_file.records.size() * sizeof(RequestRecord)),
              0);
    EXPECT_EQ(from_buffer.skipped_lines, from_file.skipped_lines);
    EXPECT_EQ(from_buffer.first_bad_line, from_file.first_bad_line);
    EXPECT_EQ(from_buffer.first_bad_text, from_file.first_bad_text);
  }
}

TEST_F(LogIoTest, ToCsvMatchesSavedFileBytes) {
  RequestLog log{rec(0, 3, 1000, 2500, 42), rec(5, 1, 7, 9, 43)};
  ASSERT_TRUE(save_request_log_csv(path_, log));
  std::ifstream in{path_, std::ios::binary};
  const std::string file_bytes{std::istreambuf_iterator<char>{in}, {}};
  EXPECT_EQ(request_log_to_csv(log), file_bytes);
}

TEST_F(LogIoTest, ParseBufferOfToCsvIsIdentity) {
  RequestLog log{rec(0, 3, 1000, 2500, 42), rec(5, 1, 7, 9, 43),
                 rec(4'000'000'000u, 255, 0, 0, ~0ull)};
  const auto parsed = parse_request_log_csv(request_log_to_csv(log), 2);
  ASSERT_TRUE(parsed.ok);
  ASSERT_EQ(parsed.records.size(), log.size());
  EXPECT_EQ(std::memcmp(parsed.records.data(), log.data(),
                        log.size() * sizeof(RequestRecord)),
            0);
}

TEST_F(LogIoTest, AutoFrontDoorReadsCsv) {
  RequestLog log{rec(0, 3, 1000, 2500, 42)};
  ASSERT_TRUE(save_request_log_csv(path_, log));
  const auto loaded = load_request_log(path_);
  ASSERT_TRUE(loaded.ok);
  ASSERT_EQ(loaded.records.size(), 1u);
  EXPECT_EQ(loaded.records[0].txn, 42u);
}

}  // namespace
}  // namespace tbd::trace
