#include "trace/log_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace tbd::trace {
namespace {

class LogIoTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "/tbd_log_io_test.csv";
  void TearDown() override { std::remove(path_.c_str()); }
};

RequestRecord rec(ServerIndex s, ClassId c, std::int64_t a, std::int64_t d,
                  TxnId txn) {
  RequestRecord r;
  r.server = s;
  r.class_id = c;
  r.arrival = TimePoint::from_micros(a);
  r.departure = TimePoint::from_micros(d);
  r.txn = txn;
  return r;
}

TEST_F(LogIoTest, RoundTrip) {
  RequestLog log{rec(0, 3, 1000, 2500, 42), rec(5, 1, 7, 9, 43)};
  ASSERT_TRUE(save_request_log_csv(path_, log));
  const auto loaded = load_request_log_csv(path_);
  ASSERT_TRUE(loaded.ok);
  ASSERT_EQ(loaded.records.size(), 2u);
  EXPECT_EQ(loaded.skipped_lines, 1u);  // the header
  EXPECT_EQ(loaded.records[0].server, 0u);
  EXPECT_EQ(loaded.records[0].class_id, 3u);
  EXPECT_EQ(loaded.records[0].arrival.micros(), 1000);
  EXPECT_EQ(loaded.records[0].departure.micros(), 2500);
  EXPECT_EQ(loaded.records[0].txn, 42u);
  EXPECT_EQ(loaded.records[1].server, 5u);
}

TEST_F(LogIoTest, SkipsCommentsAndMalformedLines) {
  {
    std::ofstream out{path_};
    out << "# a comment\n";
    out << "0,1,100,200,7\n";
    out << "not,a,valid,line,x\n";
    out << "\n";
    out << "1,2,300,400,8\n";
    out << "2,2,500,400,9\n";  // departure < arrival: rejected
  }
  const auto loaded = load_request_log_csv(path_);
  ASSERT_TRUE(loaded.ok);
  EXPECT_EQ(loaded.records.size(), 2u);
  EXPECT_EQ(loaded.skipped_lines, 4u);
}

TEST_F(LogIoTest, ToleratesSpaces) {
  {
    std::ofstream out{path_};
    out << " 0 , 1 , 100 , 200 , 7\n";
  }
  const auto loaded = load_request_log_csv(path_);
  ASSERT_EQ(loaded.records.size(), 1u);
  EXPECT_EQ(loaded.records[0].departure.micros(), 200);
}

TEST_F(LogIoTest, MissingFileReportsNotOk) {
  const auto loaded = load_request_log_csv("/nonexistent/dir/file.csv");
  EXPECT_FALSE(loaded.ok);
  EXPECT_TRUE(loaded.records.empty());
}

TEST_F(LogIoTest, EmptyLogRoundTrips) {
  ASSERT_TRUE(save_request_log_csv(path_, {}));
  const auto loaded = load_request_log_csv(path_);
  EXPECT_TRUE(loaded.ok);
  EXPECT_TRUE(loaded.records.empty());
}

}  // namespace
}  // namespace tbd::trace
