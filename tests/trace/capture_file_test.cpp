#include "trace/capture_file.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "util/rng.h"

namespace tbd::trace {
namespace {

class CaptureFileTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "/tbd_capture_test.tbdc";
  void TearDown() override { std::remove(path_.c_str()); }
};

Message random_message(Rng& rng) {
  Message m;
  m.at = TimePoint::from_micros(static_cast<std::int64_t>(rng.next_u64() >> 20));
  m.src = static_cast<NodeId>(rng.uniform_index(8));
  m.dst = static_cast<NodeId>(rng.uniform_index(8));
  m.conn = static_cast<std::uint32_t>(rng.next_u64());
  m.kind = rng.bernoulli(0.5) ? MessageKind::kRequest : MessageKind::kResponse;
  m.class_id = static_cast<ClassId>(rng.uniform_index(24));
  m.bytes = static_cast<std::uint32_t>(rng.uniform_index(65536));
  m.txn = rng.next_u64();
  m.visit = rng.next_u64();
  m.parent_visit = rng.next_u64();
  return m;
}

TEST_F(CaptureFileTest, RoundTripPreservesEveryField) {
  Rng rng{99};
  std::vector<Message> messages;
  for (int i = 0; i < 1000; ++i) messages.push_back(random_message(rng));

  ASSERT_TRUE(save_capture(path_, messages));
  const auto loaded = load_capture(path_);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  ASSERT_EQ(loaded.messages.size(), messages.size());
  for (std::size_t i = 0; i < messages.size(); ++i) {
    const auto& a = messages[i];
    const auto& b = loaded.messages[i];
    EXPECT_EQ(a.at.micros(), b.at.micros());
    EXPECT_EQ(a.src, b.src);
    EXPECT_EQ(a.dst, b.dst);
    EXPECT_EQ(a.conn, b.conn);
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.class_id, b.class_id);
    EXPECT_EQ(a.bytes, b.bytes);
    EXPECT_EQ(a.txn, b.txn);
    EXPECT_EQ(a.visit, b.visit);
    EXPECT_EQ(a.parent_visit, b.parent_visit);
  }
}

TEST_F(CaptureFileTest, EmptyStreamRoundTrips) {
  ASSERT_TRUE(save_capture(path_, {}));
  const auto loaded = load_capture(path_);
  EXPECT_TRUE(loaded.ok);
  EXPECT_TRUE(loaded.messages.empty());
}

TEST_F(CaptureFileTest, RejectsBadMagic) {
  {
    std::ofstream out{path_, std::ios::binary};
    out << "NOPE" << std::string(12, '\0');
  }
  const auto loaded = load_capture(path_);
  EXPECT_FALSE(loaded.ok);
  EXPECT_EQ(loaded.error, "bad magic");
}

TEST_F(CaptureFileTest, RejectsTruncatedStream) {
  Rng rng{7};
  std::vector<Message> messages{random_message(rng), random_message(rng)};
  ASSERT_TRUE(save_capture(path_, messages));
  // Chop the last 10 bytes off.
  std::ifstream in{path_, std::ios::binary};
  std::string data{std::istreambuf_iterator<char>{in}, {}};
  in.close();
  std::ofstream out{path_, std::ios::binary | std::ios::trunc};
  out.write(data.data(), static_cast<std::streamsize>(data.size() - 10));
  out.close();

  const auto loaded = load_capture(path_);
  EXPECT_FALSE(loaded.ok);
  EXPECT_EQ(loaded.error, "truncated record stream");
}

TEST_F(CaptureFileTest, RejectsUnsupportedVersion) {
  ASSERT_TRUE(save_capture(path_, {}));
  std::ifstream in{path_, std::ios::binary};
  std::string data{std::istreambuf_iterator<char>{in}, {}};
  in.close();
  data[4] = 9;  // version field, little-endian u32 at offset 4
  std::ofstream out{path_, std::ios::binary | std::ios::trunc};
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  out.close();

  const auto loaded = load_capture(path_);
  EXPECT_FALSE(loaded.ok);
  EXPECT_EQ(loaded.error, "unsupported version");
}

// Trailing junk after the declared records means the count and the file size
// disagree: refuse rather than silently ignore the extra bytes.
TEST_F(CaptureFileTest, RejectsCountDisagreeingWithFileSize) {
  Rng rng{13};
  ASSERT_TRUE(save_capture(path_, {random_message(rng)}));
  {
    std::ofstream out{path_, std::ios::binary | std::ios::app};
    out << "junk";
  }
  const auto loaded = load_capture(path_);
  EXPECT_FALSE(loaded.ok);
  EXPECT_EQ(loaded.error, "record count disagrees with file size");
}

// A header count far beyond the payload must fail before any allocation.
TEST_F(CaptureFileTest, RejectsHeaderCountLargerThanFile) {
  Rng rng{17};
  ASSERT_TRUE(save_capture(path_, {random_message(rng)}));
  std::ifstream in{path_, std::ios::binary};
  std::string data{std::istreambuf_iterator<char>{in}, {}};
  in.close();
  data[11] = '\x7f';  // count's fourth byte: claims ~2^31 records
  std::ofstream out{path_, std::ios::binary | std::ios::trunc};
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  out.close();

  const auto loaded = load_capture(path_);
  EXPECT_FALSE(loaded.ok);
  EXPECT_EQ(loaded.error, "truncated record stream");
}

TEST_F(CaptureFileTest, MissingFileReportsError) {
  const auto loaded = load_capture("/nonexistent/file.tbdc");
  EXPECT_FALSE(loaded.ok);
  EXPECT_EQ(loaded.error, "cannot open file");
}

TEST_F(CaptureFileTest, EncodeMatchesSavedFileBytes) {
  Rng rng{23};
  std::vector<Message> messages;
  for (int i = 0; i < 50; ++i) messages.push_back(random_message(rng));
  ASSERT_TRUE(save_capture(path_, messages));
  std::ifstream in{path_, std::ios::binary};
  const std::string file_bytes{std::istreambuf_iterator<char>{in}, {}};
  EXPECT_EQ(encode_capture(messages), file_bytes);
}

TEST_F(CaptureFileTest, DecodeIsEncodeInverse) {
  Rng rng{29};
  std::vector<Message> messages{random_message(rng), random_message(rng)};
  const auto decoded = decode_capture(encode_capture(messages));
  ASSERT_TRUE(decoded.ok) << decoded.error;
  EXPECT_EQ(encode_capture(decoded.messages), encode_capture(messages));
}

TEST_F(CaptureFileTest, TruncatedStreamDiagnosticsPointAtFirstIncomplete) {
  Rng rng{31};
  std::vector<Message> messages{random_message(rng), random_message(rng)};
  auto bytes = encode_capture(messages);
  bytes.resize(bytes.size() - 10);  // message 1 loses its tail
  const auto decoded = decode_capture(bytes);
  EXPECT_EQ(decoded.error, "truncated record stream");
  EXPECT_EQ(decoded.error_record, 1u);
  EXPECT_EQ(decoded.error_offset, 16u + 53u);  // where message 1 starts
  EXPECT_EQ(decoded.header_count, 2u);
  EXPECT_EQ(decoded.input_size, bytes.size());
}

TEST_F(CaptureFileTest, SurplusPayloadDiagnosticsPointAtFirstExtraByte) {
  Rng rng{37};
  auto bytes = encode_capture({random_message(rng)});
  bytes += "junk";
  const auto decoded = decode_capture(bytes);
  EXPECT_EQ(decoded.error, "record count disagrees with file size");
  EXPECT_EQ(decoded.error_record, 1u);
  EXPECT_EQ(decoded.error_offset, 16u + 53u);  // first byte past message 0
  EXPECT_EQ(decoded.header_count, 1u);
}

TEST_F(CaptureFileTest, HeaderLevelDiagnostics) {
  const auto truncated = decode_capture(std::string_view{"TBDC\x01"});
  EXPECT_EQ(truncated.error, "truncated header");
  EXPECT_EQ(truncated.error_offset, 5u);  // end of data
  EXPECT_EQ(truncated.input_size, 5u);

  const auto magic = decode_capture(std::string(16, 'Z'));
  EXPECT_EQ(magic.error, "bad magic");
  EXPECT_EQ(magic.error_offset, 0u);

  auto versioned = encode_capture({});
  versioned[4] = 9;
  const auto version = decode_capture(versioned);
  EXPECT_EQ(version.error, "unsupported version");
  EXPECT_EQ(version.error_offset, 4u);
}

TEST_F(CaptureFileTest, FileSizeIsCompact) {
  Rng rng{11};
  std::vector<Message> messages;
  for (int i = 0; i < 100; ++i) messages.push_back(random_message(rng));
  ASSERT_TRUE(save_capture(path_, messages));
  std::ifstream in{path_, std::ios::binary | std::ios::ate};
  // 16-byte header + 53 bytes per record.
  EXPECT_EQ(in.tellg(), 16 + 100 * 53);
}

}  // namespace
}  // namespace tbd::trace
