#include "trace/request_log_file.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>

#include "trace/log_io.h"

namespace tbd::trace {
namespace {

class RequestLogFileTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "/tbd_request_log_test.tbdr";
  void TearDown() override { std::remove(path_.c_str()); }

  std::string read_bytes() const {
    std::ifstream in{path_, std::ios::binary};
    return {std::istreambuf_iterator<char>{in}, {}};
  }

  void write_bytes(const std::string& bytes) const {
    std::ofstream out{path_, std::ios::binary | std::ios::trunc};
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
};

RequestRecord rec(ServerIndex s, ClassId c, std::int64_t a, std::int64_t d,
                  TxnId txn) {
  RequestRecord r;
  r.server = s;
  r.class_id = c;
  r.arrival = TimePoint::from_micros(a);
  r.departure = TimePoint::from_micros(d);
  r.txn = txn;
  return r;
}

TEST_F(RequestLogFileTest, RoundTripPreservesEveryField) {
  RequestLog log{rec(0, 3, 1000, 2500, 42), rec(5, 1, -7, 9, 43),
                 rec(4'000'000'000u, 255, 0, 0, ~0ull)};
  ASSERT_TRUE(save_request_log_bin(path_, log));
  const auto loaded = load_request_log_bin(path_);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  ASSERT_EQ(loaded.records.size(), log.size());
  EXPECT_EQ(std::memcmp(loaded.records.data(), log.data(),
                        log.size() * sizeof(RequestRecord)),
            0);
}

TEST_F(RequestLogFileTest, EmptyLogRoundTrips) {
  ASSERT_TRUE(save_request_log_bin(path_, {}));
  const auto loaded = load_request_log_bin(path_);
  EXPECT_TRUE(loaded.ok) << loaded.error;
  EXPECT_TRUE(loaded.records.empty());
}

TEST_F(RequestLogFileTest, FileSizeIsHeaderPlusPackedRecords) {
  RequestLog log;
  for (int i = 0; i < 100; ++i) log.push_back(rec(1, 2, i, i + 1, i));
  ASSERT_TRUE(save_request_log_bin(path_, log));
  EXPECT_EQ(std::filesystem::file_size(path_), 16u + 32u * 100u);
}

TEST_F(RequestLogFileTest, LargeLogCrossesFlushAndDecodeChunks) {
  RequestLog log;
  for (std::int64_t i = 0; i < 200'000; ++i) {
    log.push_back(rec(static_cast<ServerIndex>(i % 5), 1, i * 3, i * 3 + 2,
                      static_cast<TxnId>(i)));
  }
  ASSERT_TRUE(save_request_log_bin(path_, log));
  const auto loaded = load_request_log_bin(path_);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  ASSERT_EQ(loaded.records.size(), log.size());
  EXPECT_EQ(std::memcmp(loaded.records.data(), log.data(),
                        log.size() * sizeof(RequestRecord)),
            0);
}

TEST_F(RequestLogFileTest, MissingFileReportsNotOk) {
  const auto loaded = load_request_log_bin("/nonexistent/dir/log.tbdr");
  EXPECT_FALSE(loaded.ok);
  EXPECT_EQ(loaded.error, "cannot open file");
}

TEST_F(RequestLogFileTest, RejectsTruncatedHeader) {
  write_bytes("TBDR\x01");
  const auto loaded = load_request_log_bin(path_);
  EXPECT_FALSE(loaded.ok);
  EXPECT_EQ(loaded.error, "truncated header");
}

TEST_F(RequestLogFileTest, RejectsBadMagic) {
  ASSERT_TRUE(save_request_log_bin(path_, {rec(0, 1, 10, 20, 1)}));
  auto bytes = read_bytes();
  bytes[0] = 'X';
  write_bytes(bytes);
  const auto loaded = load_request_log_bin(path_);
  EXPECT_FALSE(loaded.ok);
  EXPECT_EQ(loaded.error, "bad magic");
}

TEST_F(RequestLogFileTest, RejectsUnsupportedVersion) {
  ASSERT_TRUE(save_request_log_bin(path_, {rec(0, 1, 10, 20, 1)}));
  auto bytes = read_bytes();
  bytes[4] = 99;  // version field, little-endian u32 at offset 4
  write_bytes(bytes);
  const auto loaded = load_request_log_bin(path_);
  EXPECT_FALSE(loaded.ok);
  EXPECT_EQ(loaded.error, "unsupported version");
}

TEST_F(RequestLogFileTest, RejectsTruncatedRecordStream) {
  ASSERT_TRUE(save_request_log_bin(
      path_, {rec(0, 1, 10, 20, 1), rec(0, 1, 30, 40, 2)}));
  const auto bytes = read_bytes();
  write_bytes(bytes.substr(0, bytes.size() - 7));
  const auto loaded = load_request_log_bin(path_);
  EXPECT_FALSE(loaded.ok);
  EXPECT_EQ(loaded.error, "truncated record stream");
}

// A header claiming far more records than the file holds must fail the size
// check up front rather than allocating for the bogus count.
TEST_F(RequestLogFileTest, RejectsHeaderCountLargerThanFile) {
  ASSERT_TRUE(save_request_log_bin(path_, {rec(0, 1, 10, 20, 1)}));
  auto bytes = read_bytes();
  bytes[11] = '\x7f';  // count's high-ish byte: claims ~2^31 records
  write_bytes(bytes);
  const auto loaded = load_request_log_bin(path_);
  EXPECT_FALSE(loaded.ok);
  EXPECT_EQ(loaded.error, "truncated record stream");
}

TEST_F(RequestLogFileTest, RejectsHeaderCountSmallerThanFile) {
  ASSERT_TRUE(save_request_log_bin(
      path_, {rec(0, 1, 10, 20, 1), rec(0, 1, 30, 40, 2)}));
  auto bytes = read_bytes();
  bytes[8] = 1;  // count says 1 record, payload holds 2
  write_bytes(bytes);
  const auto loaded = load_request_log_bin(path_);
  EXPECT_FALSE(loaded.ok);
  EXPECT_EQ(loaded.error, "record count disagrees with file size");
}

TEST_F(RequestLogFileTest, SniffsMagic) {
  ASSERT_TRUE(save_request_log_bin(path_, {}));
  EXPECT_TRUE(sniff_request_log_bin(path_));
  write_bytes("server,class,arrival_us,departure_us,txn\n");
  EXPECT_FALSE(sniff_request_log_bin(path_));
  EXPECT_FALSE(sniff_request_log_bin("/nonexistent/log.tbdr"));
}

// The auto-detecting front door routes TBDR files to the binary reader and
// everything else to the sharded CSV reader.
TEST_F(RequestLogFileTest, AutoFrontDoorReadsBinary) {
  RequestLog log{rec(3, 2, 100, 300, 77)};
  ASSERT_TRUE(save_request_log_bin(path_, log));
  const auto loaded = load_request_log(path_);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  ASSERT_EQ(loaded.records.size(), 1u);
  EXPECT_EQ(loaded.records[0].txn, 77u);
  EXPECT_EQ(loaded.skipped_lines, 0u);
}

TEST_F(RequestLogFileTest, AutoFrontDoorPropagatesBinaryErrors) {
  write_bytes("TBDR");  // magic sniffs as binary, then header is truncated
  const auto loaded = load_request_log(path_);
  EXPECT_FALSE(loaded.ok);
  // The front door appends byte-offset diagnostics to the stable short code.
  EXPECT_EQ(loaded.error,
            "truncated header at byte offset 4, record 0, file size 4");
}

// --- Diagnostics: every binary-load error pins the failure to a byte
// offset, record index, and the header's claimed count. ---

TEST_F(RequestLogFileTest, TruncatedHeaderDiagnostics) {
  write_bytes("TBDR\x01");
  const auto loaded = load_request_log_bin(path_);
  EXPECT_FALSE(loaded.ok);
  EXPECT_EQ(loaded.error, "truncated header");
  EXPECT_EQ(loaded.error_offset, 5u);  // end of data
  EXPECT_EQ(loaded.error_record, 0u);
  EXPECT_EQ(loaded.header_count, 0u);  // never parsed
  EXPECT_EQ(loaded.input_size, 5u);
}

TEST_F(RequestLogFileTest, BadMagicDiagnostics) {
  ASSERT_TRUE(save_request_log_bin(path_, {rec(0, 1, 10, 20, 1)}));
  auto bytes = read_bytes();
  bytes[0] = 'X';
  write_bytes(bytes);
  const auto loaded = load_request_log_bin(path_);
  EXPECT_EQ(loaded.error, "bad magic");
  EXPECT_EQ(loaded.error_offset, 0u);
  EXPECT_EQ(loaded.input_size, bytes.size());
}

TEST_F(RequestLogFileTest, UnsupportedVersionDiagnostics) {
  ASSERT_TRUE(save_request_log_bin(path_, {rec(0, 1, 10, 20, 1)}));
  auto bytes = read_bytes();
  bytes[4] = 99;
  write_bytes(bytes);
  const auto loaded = load_request_log_bin(path_);
  EXPECT_EQ(loaded.error, "unsupported version");
  EXPECT_EQ(loaded.error_offset, 4u);  // version field
}

TEST_F(RequestLogFileTest, TruncatedStreamDiagnosticsPointAtFirstIncomplete) {
  ASSERT_TRUE(save_request_log_bin(
      path_, {rec(0, 1, 10, 20, 1), rec(0, 1, 30, 40, 2)}));
  const auto bytes = read_bytes();
  write_bytes(bytes.substr(0, bytes.size() - 7));  // record 1 loses 7 bytes
  const auto loaded = load_request_log_bin(path_);
  EXPECT_EQ(loaded.error, "truncated record stream");
  EXPECT_EQ(loaded.error_record, 1u);         // record 0 is whole, 1 is cut
  EXPECT_EQ(loaded.error_offset, 16u + 32u);  // where record 1 starts
  EXPECT_EQ(loaded.header_count, 2u);
  EXPECT_EQ(loaded.input_size, bytes.size() - 7);
}

TEST_F(RequestLogFileTest, SurplusPayloadDiagnosticsPointAtFirstExtraByte) {
  ASSERT_TRUE(save_request_log_bin(
      path_, {rec(0, 1, 10, 20, 1), rec(0, 1, 30, 40, 2)}));
  auto bytes = read_bytes();
  bytes[8] = 1;  // count says 1 record, payload holds 2
  write_bytes(bytes);
  const auto loaded = load_request_log_bin(path_);
  EXPECT_EQ(loaded.error, "record count disagrees with file size");
  EXPECT_EQ(loaded.error_record, 1u);
  EXPECT_EQ(loaded.error_offset, 16u + 32u);  // first byte past record 0
  EXPECT_EQ(loaded.header_count, 1u);
}

TEST_F(RequestLogFileTest, SuccessfulLoadFillsHeaderCountAndInputSize) {
  RequestLog log{rec(0, 1, 10, 20, 1), rec(0, 1, 30, 40, 2)};
  ASSERT_TRUE(save_request_log_bin(path_, log));
  const auto loaded = load_request_log_bin(path_);
  ASSERT_TRUE(loaded.ok);
  EXPECT_EQ(loaded.header_count, 2u);
  EXPECT_EQ(loaded.input_size, 16u + 2u * 32u);
  EXPECT_EQ(loaded.error_offset, 0u);
  EXPECT_EQ(loaded.error_record, 0u);
}

TEST_F(RequestLogFileTest, EncodeMatchesSavedFileBytes) {
  RequestLog log{rec(0, 3, 1000, 2500, 42), rec(5, 1, -7, 9, 43)};
  ASSERT_TRUE(save_request_log_bin(path_, log));
  EXPECT_EQ(encode_request_log_bin(log), read_bytes());
}

TEST_F(RequestLogFileTest, DecodeIsEncodeInverse) {
  RequestLog log{rec(4'000'000'000u, 255, -1, 0, ~0ull)};
  const auto decoded = decode_request_log_bin(encode_request_log_bin(log));
  ASSERT_TRUE(decoded.ok) << decoded.error;
  ASSERT_EQ(decoded.records.size(), 1u);
  EXPECT_EQ(std::memcmp(decoded.records.data(), log.data(),
                        sizeof(RequestRecord)),
            0);
  EXPECT_EQ(encode_request_log_bin(decoded.records),
            encode_request_log_bin(log));
}

TEST_F(RequestLogFileTest, DecodeEmptyBufferIsTruncatedHeader) {
  const auto decoded = decode_request_log_bin(std::string_view{});
  EXPECT_FALSE(decoded.ok);
  EXPECT_EQ(decoded.error, "truncated header");
  EXPECT_EQ(decoded.error_offset, 0u);
  EXPECT_EQ(decoded.input_size, 0u);
}

}  // namespace
}  // namespace tbd::trace
