// Unit tests for the columnar request-log container (trace/request_columns.h):
// the equal-length invariant across every mutator, lossless AoS<->SoA
// conversion, and view/subview row addressing. The adversarial round-trip
// coverage lives in tests/oracle (ColumnsRoundTripBitExact); these pin the
// container semantics directly.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "trace/request_columns.h"
#include "trace/records.h"

namespace tbd::trace {
namespace {

RequestRecord make_record(ServerIndex server, ClassId cls, std::int64_t arrival,
                          std::int64_t departure, TxnId txn) {
  RequestRecord r;
  r.server = server;
  r.class_id = cls;
  r.arrival = TimePoint::from_micros(arrival);
  r.departure = TimePoint::from_micros(departure);
  r.txn = txn;
  return r;
}

RequestLog sample_log() {
  return {make_record(0, 1, 1'000, 2'500, 42),
          make_record(1, 0, -500, 0, 43),
          make_record(2, 7, 0, 1, 44),
          make_record(0, 3, 10'000, 10'000, 45)};
}

void expect_same_rows(const RequestColumns& columns, const RequestLog& log) {
  ASSERT_EQ(columns.size(), log.size());
  ASSERT_EQ(columns.arrival_us.size(), log.size());
  ASSERT_EQ(columns.departure_us.size(), log.size());
  ASSERT_EQ(columns.server.size(), log.size());
  ASSERT_EQ(columns.class_id.size(), log.size());
  ASSERT_EQ(columns.txn.size(), log.size());
  for (std::size_t i = 0; i < log.size(); ++i) {
    EXPECT_EQ(columns.arrival_us[i], log[i].arrival.micros()) << "row " << i;
    EXPECT_EQ(columns.departure_us[i], log[i].departure.micros()) << "row " << i;
    EXPECT_EQ(columns.server[i], log[i].server) << "row " << i;
    EXPECT_EQ(columns.class_id[i], log[i].class_id) << "row " << i;
    EXPECT_EQ(columns.txn[i], log[i].txn) << "row " << i;
  }
}

TEST(RequestColumns, StartsEmpty) {
  RequestColumns columns;
  EXPECT_TRUE(columns.empty());
  EXPECT_EQ(columns.size(), 0u);
  EXPECT_TRUE(columns.view().empty());
  EXPECT_TRUE(columns.to_records().empty());
}

TEST(RequestColumns, PushBackScattersFields) {
  const auto log = sample_log();
  RequestColumns columns;
  for (const auto& r : log) columns.push_back(r);
  expect_same_rows(columns, log);
}

TEST(RequestColumns, FromRecordsToRecordsRoundTrips) {
  const auto log = sample_log();
  const auto columns = RequestColumns::from_records(log);
  expect_same_rows(columns, log);
  const auto back = columns.to_records();
  ASSERT_EQ(back.size(), log.size());
  EXPECT_EQ(std::memcmp(back.data(), log.data(),
                        log.size() * sizeof(RequestRecord)),
            0);
}

TEST(RequestColumns, RecordGathersRow) {
  const auto log = sample_log();
  const auto columns = RequestColumns::from_records(log);
  for (std::size_t i = 0; i < log.size(); ++i) {
    const auto r = columns.record(i);
    EXPECT_EQ(std::memcmp(&r, &log[i], sizeof(RequestRecord)), 0) << "row " << i;
  }
}

TEST(RequestColumns, AppendSpanConcatenates) {
  const auto log = sample_log();
  RequestColumns columns = RequestColumns::from_records(log);
  columns.append(std::span<const RequestRecord>{log});
  ASSERT_EQ(columns.size(), 2 * log.size());
  auto doubled = log;
  doubled.insert(doubled.end(), log.begin(), log.end());
  expect_same_rows(columns, doubled);
}

TEST(RequestColumns, AppendViewConcatenatesColumnWise) {
  const auto log = sample_log();
  const auto other = RequestColumns::from_records(log);
  RequestColumns columns;
  columns.append(other.view());
  columns.append(other.view());
  auto doubled = log;
  doubled.insert(doubled.end(), log.begin(), log.end());
  expect_same_rows(columns, doubled);
}

TEST(RequestColumns, ResizeAndClearKeepColumnsAligned) {
  RequestColumns columns = RequestColumns::from_records(sample_log());
  columns.resize(2);
  EXPECT_EQ(columns.size(), 2u);
  EXPECT_EQ(columns.txn.size(), 2u);
  columns.resize(5);
  EXPECT_EQ(columns.size(), 5u);
  EXPECT_EQ(columns.arrival_us[4], 0);
  EXPECT_EQ(columns.txn[4], 0u);
  columns.clear();
  EXPECT_TRUE(columns.empty());
  EXPECT_TRUE(columns.class_id.empty());
}

TEST(RequestColumns, SubviewAddressesRows) {
  const auto log = sample_log();
  const auto columns = RequestColumns::from_records(log);
  const auto sub = columns.view().subview(1, 2);
  ASSERT_EQ(sub.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    const auto r = sub.record(i);
    EXPECT_EQ(std::memcmp(&r, &log[i + 1], sizeof(RequestRecord)), 0)
        << "row " << i;
  }
}

TEST(RequestColumns, EqualityComparesAllColumns) {
  const auto a = RequestColumns::from_records(sample_log());
  auto b = a;
  EXPECT_EQ(a, b);
  b.txn[0] ^= 1;
  EXPECT_NE(a, b);
}

TEST(RequestColumns, ImplicitViewConversion) {
  const auto columns = RequestColumns::from_records(sample_log());
  const RequestColumnsView view = columns;  // operator RequestColumnsView
  EXPECT_EQ(view.size(), columns.size());
  EXPECT_EQ(view.arrival_us.data(), columns.arrival_us.data());
}

}  // namespace
}  // namespace tbd::trace
