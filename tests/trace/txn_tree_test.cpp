// Unit tests of transaction-tree assembly: concurrency profiles and the
// processor-sharing queue/service split, ground-truth nesting from request
// records, critical paths that switch tiers, and the reconstructed-visit
// flavour's edge cases (empty capture, unclosed parents, broken containment).
#include "trace/txn_tree.h"

#include <gtest/gtest.h>

#include <vector>

namespace tbd::trace {
namespace {

RequestRecord rec(ServerIndex server, std::int64_t arrival,
                  std::int64_t departure, TxnId txn, ClassId cls = 1) {
  return RequestRecord{.server = server,
                       .class_id = cls,
                       .arrival = TimePoint::from_micros(arrival),
                       .departure = TimePoint::from_micros(departure),
                       .txn = txn};
}

ReconstructedVisit vis(NodeId server, std::int64_t arrival,
                       std::int64_t departure, std::int64_t parent,
                       TxnId truth_txn = 0, std::uint64_t truth_visit = 0,
                       std::uint64_t truth_parent = 0) {
  ReconstructedVisit v;
  v.server = server;
  v.class_id = 1;
  v.arrival = TimePoint::from_micros(arrival);
  v.departure = departure < 0 ? TimePoint::max()
                              : TimePoint::from_micros(departure);
  v.parent = parent;
  v.truth_txn = truth_txn;
  v.truth_visit = truth_visit;
  v.truth_parent_visit = truth_parent;
  return v;
}

// ---- ConcurrencyProfile -----------------------------------------------------

TEST(ConcurrencyProfileTest, SingleRequestIsAllService) {
  const std::vector<RequestRecord> log{rec(0, 1000, 2000, 1)};
  const auto p = ConcurrencyProfile::build(log);
  EXPECT_EQ(p.concurrency_at(TimePoint::from_micros(1500)), 1);
  EXPECT_EQ(p.concurrency_at(TimePoint::from_micros(999)), 0);
  EXPECT_EQ(p.concurrency_at(TimePoint::from_micros(2000)), 0);
  const auto s =
      p.split(TimePoint::from_micros(1000), TimePoint::from_micros(2000));
  EXPECT_DOUBLE_EQ(s.queue_us, 0.0);
  EXPECT_DOUBLE_EQ(s.service_us, 1000.0);
}

TEST(ConcurrencyProfileTest, TwoConcurrentSplitHalfAndHalf) {
  // Both open on [0, 1000): k = 2, so each unit of dwell is 1/2 service and
  // 1/2 queue under processor sharing.
  const std::vector<RequestRecord> log{rec(0, 0, 1000, 1), rec(0, 0, 1000, 2)};
  const auto p = ConcurrencyProfile::build(log);
  EXPECT_EQ(p.concurrency_at(TimePoint::from_micros(500)), 2);
  const auto s = p.split(TimePoint::origin(), TimePoint::from_micros(1000));
  EXPECT_DOUBLE_EQ(s.queue_us, 500.0);
  EXPECT_DOUBLE_EQ(s.service_us, 500.0);
}

TEST(ConcurrencyProfileTest, DepartureBeforeArrivalAtSameInstant) {
  // Back-to-back visits sharing the boundary instant must not double-count:
  // [0, 100) then [100, 200) is k = 1 throughout.
  const std::vector<RequestRecord> log{rec(0, 0, 100, 1), rec(0, 100, 200, 2)};
  const auto p = ConcurrencyProfile::build(log);
  EXPECT_EQ(p.concurrency_at(TimePoint::from_micros(50)), 1);
  EXPECT_EQ(p.concurrency_at(TimePoint::from_micros(100)), 1);
  const auto s = p.split(TimePoint::origin(), TimePoint::from_micros(200));
  EXPECT_DOUBLE_EQ(s.queue_us, 0.0);
  EXPECT_DOUBLE_EQ(s.service_us, 200.0);
}

TEST(ConcurrencyProfileTest, SubrangeQueriesSumToWhole) {
  const std::vector<RequestRecord> log{rec(0, 0, 1000, 1), rec(0, 250, 750, 2),
                                       rec(0, 500, 1500, 3)};
  const auto p = ConcurrencyProfile::build(log);
  const auto whole = p.split(TimePoint::origin(), TimePoint::from_micros(1500));
  const auto a = p.split(TimePoint::origin(), TimePoint::from_micros(600));
  const auto b =
      p.split(TimePoint::from_micros(600), TimePoint::from_micros(1500));
  EXPECT_NEAR(a.queue_us + b.queue_us, whole.queue_us, 1e-9);
  EXPECT_NEAR(a.service_us + b.service_us, whole.service_us, 1e-9);
  // Queue + service together cover exactly the busy time.
  EXPECT_NEAR(whole.queue_us + whole.service_us, 1500.0, 1e-9);
}

TEST(ConcurrencyProfileTest, EmptyProfileIsZero) {
  const ConcurrencyProfile p;
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.concurrency_at(TimePoint::from_micros(10)), 0);
  const auto s = p.split(TimePoint::origin(), TimePoint::from_micros(100));
  EXPECT_DOUBLE_EQ(s.queue_us + s.service_us, 0.0);
}

// ---- assembly from request records ------------------------------------------

TEST(TxnTreeTest, NestsVisitsByTimeContainment) {
  // web [0, 10000] calls db [2000, 7000]; same txn.
  const std::vector<RequestRecord> log{rec(0, 0, 10000, 1, 1),
                                       rec(1, 2000, 7000, 1, 2)};
  const auto out = assemble_transactions(log);
  ASSERT_EQ(out.txns.size(), 1u);
  const TxnTree& t = out.txns[0];
  ASSERT_EQ(t.visits.size(), 2u);
  EXPECT_EQ(t.visits[0].server, 0u);
  EXPECT_EQ(t.visits[0].parent, -1);
  EXPECT_EQ(t.visits[1].server, 1u);
  EXPECT_EQ(t.visits[1].parent, 0);
  EXPECT_EQ(t.visits[1].depth, 1);
  ASSERT_EQ(t.visits[0].children.size(), 1u);
  EXPECT_EQ(t.visits[0].children[0], 1);
  EXPECT_EQ(t.latency().micros(), 10000);
  EXPECT_EQ(out.visits, 2u);
  EXPECT_EQ(out.orphan_visits, 0u);
}

TEST(TxnTreeTest, CriticalPathSwitchesTiers) {
  // web [0, 10000] with db child [2000, 7000]: the deepest active visit is
  // web on [0, 2000), db on [2000, 7000), web again on [7000, 10000).
  const std::vector<RequestRecord> log{rec(0, 0, 10000, 1, 1),
                                       rec(1, 2000, 7000, 1, 2)};
  const auto out = assemble_transactions(log);
  const TxnTree& t = out.txns[0];
  ASSERT_EQ(t.critical_path.size(), 3u);
  EXPECT_EQ(t.critical_path[0].visit, 0);
  EXPECT_EQ(t.critical_path[0].start.micros(), 0);
  EXPECT_EQ(t.critical_path[0].end.micros(), 2000);
  EXPECT_EQ(t.critical_path[1].visit, 1);
  EXPECT_EQ(t.critical_path[1].start.micros(), 2000);
  EXPECT_EQ(t.critical_path[1].end.micros(), 7000);
  EXPECT_EQ(t.critical_path[2].visit, 0);
  EXPECT_EQ(t.critical_path[2].start.micros(), 7000);
  EXPECT_EQ(t.critical_path[2].end.micros(), 10000);
  // Segments tile the response time exactly.
  std::int64_t covered = 0;
  for (const PathSegment& s : t.critical_path) {
    covered += (s.end - s.start).micros();
  }
  EXPECT_EQ(covered, t.latency().micros());
  EXPECT_EQ(t.critical_server(), 0u);  // web holds 5000 of 10000
}

TEST(TxnTreeTest, SelfTimeSplitExcludesChildCoveredTime) {
  // Lone transaction: everything on the critical path is service (k = 1
  // everywhere), and the web visit's self time excludes the db window.
  const std::vector<RequestRecord> log{rec(0, 0, 10000, 1, 1),
                                       rec(1, 2000, 7000, 1, 2)};
  const auto out = assemble_transactions(log);
  const TxnTree& t = out.txns[0];
  EXPECT_NEAR(t.visits[0].service_us, 5000.0, 1e-9);  // [0,2k) + [7k,10k)
  EXPECT_NEAR(t.visits[0].queue_us, 0.0, 1e-9);
  EXPECT_NEAR(t.visits[1].service_us, 5000.0, 1e-9);  // [2k,7k)
  EXPECT_NEAR(t.visits[1].queue_us, 0.0, 1e-9);
}

TEST(TxnTreeTest, ConcurrencyAtArrivalCountsTheQueueJoined) {
  // Second transaction arrives while the first is still open on server 0.
  const std::vector<RequestRecord> log{rec(0, 0, 1000, 1), rec(0, 500, 1500, 2)};
  const auto out = assemble_transactions(log);
  ASSERT_EQ(out.txns.size(), 2u);
  EXPECT_EQ(out.txns[0].visits[0].concurrency_at_arrival, 0);
  EXPECT_EQ(out.txns[1].visits[0].concurrency_at_arrival, 1);
}

TEST(TxnTreeTest, BrokenContainmentBecomesOrphanRoot) {
  // Same txn id but overlapping without nesting: the second visit cannot be
  // a child of the first, so it is kept as an orphan root.
  const std::vector<RequestRecord> log{rec(0, 0, 5000, 1), rec(1, 3000, 8000, 1)};
  const auto out = assemble_transactions(log);
  ASSERT_EQ(out.txns.size(), 1u);
  const TxnTree& t = out.txns[0];
  EXPECT_EQ(t.visits[1].parent, -1);
  EXPECT_TRUE(t.visits[1].orphan);
  EXPECT_EQ(out.orphan_visits, 1u);
  // Both roots contribute critical-path segments; latency spans both.
  EXPECT_EQ(t.latency().micros(), 8000);
}

TEST(TxnTreeTest, TransactionsOrderedByFirstArrival) {
  const std::vector<RequestRecord> log{rec(0, 5000, 6000, 9),
                                       rec(0, 1000, 2000, 4)};
  const auto out = assemble_transactions(log);
  ASSERT_EQ(out.txns.size(), 2u);
  EXPECT_EQ(out.txns[0].id, 4u);
  EXPECT_EQ(out.txns[1].id, 9u);
}

// ---- assembly from reconstructed visits -------------------------------------

TEST(TxnTreeVisitsTest, ZeroVisitCaptureRoundTrips) {
  const std::vector<ReconstructedVisit> none;
  for (const auto view : {VisitView::kBlackBox, VisitView::kGroundTruth}) {
    const auto out = assemble_transactions(none, view);
    EXPECT_TRUE(out.txns.empty());
    EXPECT_EQ(out.visits, 0u);
    EXPECT_EQ(out.orphan_visits, 0u);
    EXPECT_EQ(out.dropped_unclosed, 0u);
  }
  EXPECT_TRUE(logs_from_visits(none).empty());
}

TEST(TxnTreeVisitsTest, UnclosedParentDropsItAndOrphansChild) {
  // Visit 0 never closed (departure unobserved); its child must survive as
  // an orphan root rather than vanish or dangle.
  const std::vector<ReconstructedVisit> visits{
      vis(1, 0, -1, -1), vis(2, 2000, 7000, 0)};
  const auto out = assemble_transactions(visits, VisitView::kBlackBox);
  EXPECT_EQ(out.dropped_unclosed, 1u);
  EXPECT_EQ(out.orphan_visits, 1u);
  ASSERT_EQ(out.txns.size(), 1u);
  const TxnTree& t = out.txns[0];
  ASSERT_EQ(t.visits.size(), 1u);
  EXPECT_EQ(t.visits[0].parent, -1);
  EXPECT_TRUE(t.visits[0].orphan);
  EXPECT_EQ(t.visits[0].server, 1u);  // node 2 -> server 1
}

TEST(TxnTreeVisitsTest, BlackBoxFollowsReconstructedEdges) {
  const std::vector<ReconstructedVisit> visits{
      vis(1, 0, 10000, -1, /*truth_txn=*/7),
      vis(2, 2000, 7000, 0, 7)};
  const auto out = assemble_transactions(visits, VisitView::kBlackBox);
  ASSERT_EQ(out.txns.size(), 1u);
  EXPECT_EQ(out.txns[0].id, 7u);  // labeled with the carried truth txn
  ASSERT_EQ(out.txns[0].visits.size(), 2u);
  EXPECT_EQ(out.txns[0].visits[1].parent, 0);
}

TEST(TxnTreeVisitsTest, GroundTruthViewRepairsWrongBlackBoxEdge) {
  // Two concurrent transactions; the reconstructor guessed the db call of
  // txn 2 belongs to txn 1's web visit. The ground-truth view follows
  // truth_parent_visit instead and splits them correctly.
  const std::vector<ReconstructedVisit> visits{
      vis(1, 0, 10000, -1, /*txn=*/1, /*visit=*/11, /*parent=*/0),
      vis(1, 100, 9000, -1, /*txn=*/2, /*visit=*/21, /*parent=*/0),
      vis(2, 2000, 7000, /*guessed parent=*/0, /*txn=*/2, /*visit=*/22,
          /*parent=*/21)};
  const auto black = assemble_transactions(visits, VisitView::kBlackBox);
  ASSERT_EQ(black.txns.size(), 2u);
  EXPECT_EQ(black.txns[0].visits.size(), 2u);  // txn 1 stole the db visit

  const auto truth = assemble_transactions(visits, VisitView::kGroundTruth);
  ASSERT_EQ(truth.txns.size(), 2u);
  const TxnTree& t2 = truth.txns[1];
  EXPECT_EQ(t2.id, 2u);
  ASSERT_EQ(t2.visits.size(), 2u);
  EXPECT_EQ(t2.visits[1].parent, 0);
}

TEST(TxnTreeVisitsTest, TruthParentNeverCapturedBecomesOrphan) {
  // truth_parent_visit refers to a visit the tap never saw.
  const std::vector<ReconstructedVisit> visits{
      vis(2, 2000, 7000, -1, /*txn=*/3, /*visit=*/32, /*parent=*/31)};
  const auto out = assemble_transactions(visits, VisitView::kGroundTruth);
  ASSERT_EQ(out.txns.size(), 1u);
  EXPECT_TRUE(out.txns[0].visits[0].orphan);
  EXPECT_EQ(out.orphan_visits, 1u);
}

TEST(TxnTreeVisitsTest, LogsFromVisitsMapsNodeToServerIndex) {
  const std::vector<ReconstructedVisit> visits{
      vis(1, 0, 1000, -1, 1), vis(2, 100, 900, 0, 1), vis(1, 5000, -1, -1)};
  const auto logs = logs_from_visits(visits);
  ASSERT_EQ(logs.size(), 2u);
  ASSERT_EQ(logs.at(0).size(), 1u);  // node 1 -> server 0; unclosed skipped
  ASSERT_EQ(logs.at(1).size(), 1u);
  EXPECT_EQ(logs.at(0)[0].departure.micros(), 1000);
}

}  // namespace
}  // namespace tbd::trace
