#include "trace/sink.h"

#include <gtest/gtest.h>

namespace tbd::trace {
namespace {

Message msg(std::int64_t at_us, NodeId src, NodeId dst, std::uint32_t bytes) {
  Message m;
  m.at = TimePoint::from_micros(at_us);
  m.src = src;
  m.dst = dst;
  m.bytes = bytes;
  return m;
}

TEST(TraceSinkTest, RecordsMessagesWhenEnabled) {
  TraceSink sink{2, /*record_messages=*/true};
  sink.capture(msg(10, 0, 1, 100));
  sink.capture(msg(20, 1, 2, 50));
  ASSERT_EQ(sink.messages().size(), 2u);
  EXPECT_EQ(sink.messages()[0].at.micros(), 10);
  EXPECT_EQ(sink.total_messages_seen(), 2u);
}

TEST(TraceSinkTest, DropsMessagesWhenDisabled) {
  TraceSink sink{2, /*record_messages=*/false};
  sink.capture(msg(10, 0, 1, 100));
  EXPECT_TRUE(sink.messages().empty());
  EXPECT_EQ(sink.total_messages_seen(), 1u);  // counters still advance
}

TEST(TraceSinkTest, NetCountersTrackSrcAndDst) {
  TraceSink sink{2, false};
  sink.capture(msg(10, 0, 1, 100));  // client -> server 0: rx only
  sink.capture(msg(20, 1, 2, 60));   // server 0 -> server 1
  sink.capture(msg(30, 2, 1, 40));   // server 1 -> server 0
  EXPECT_EQ(sink.net_counters(0).bytes_received, 140u);
  EXPECT_EQ(sink.net_counters(0).bytes_sent, 60u);
  EXPECT_EQ(sink.net_counters(1).bytes_received, 60u);
  EXPECT_EQ(sink.net_counters(1).bytes_sent, 40u);
}

TEST(TraceSinkTest, ClientNodeHasNoCounters) {
  TraceSink sink{1, false};
  sink.capture(msg(10, 1, 0, 500));  // server -> client
  EXPECT_EQ(sink.net_counters(0).bytes_sent, 500u);
  // No crash, nothing tracked for node 0.
}

TEST(TraceSinkTest, VisitLogsPerServer) {
  TraceSink sink{2, false};
  sink.record_visit(RequestRecord{.server = 0,
                                  .class_id = 3,
                                  .arrival = TimePoint::from_micros(5),
                                  .departure = TimePoint::from_micros(15),
                                  .txn = 1});
  sink.record_visit(RequestRecord{.server = 1,
                                  .class_id = 4,
                                  .arrival = TimePoint::from_micros(6),
                                  .departure = TimePoint::from_micros(9),
                                  .txn = 1});
  EXPECT_EQ(sink.server_log(0).size(), 1u);
  EXPECT_EQ(sink.server_log(1).size(), 1u);
  EXPECT_EQ(sink.server_log(0)[0].class_id, 3u);
}

TEST(TraceSinkTest, TracksBytesSeenAndDrops) {
  TraceSink sink{2, /*record_messages=*/false};
  sink.capture(msg(10, 0, 1, 100));
  sink.capture(msg(20, 1, 2, 60));
  EXPECT_EQ(sink.total_bytes_seen(), 160u);
  EXPECT_EQ(sink.messages_dropped(), 2u);  // recording off: counted, not kept

  TraceSink keeping{2, /*record_messages=*/true};
  keeping.capture(msg(10, 0, 1, 100));
  EXPECT_EQ(keeping.total_bytes_seen(), 100u);
  EXPECT_EQ(keeping.messages_dropped(), 0u);
}

// Pins the contract documented on TraceSink::clear(): a windowed experiment
// resets between analysis windows, and each window's Table-I byte counts
// must cover that window only — so net counters and seen/bytes/dropped
// totals reset together with the message stream and request logs.
TEST(TraceSinkTest, ClearResetsCountersAndData) {
  TraceSink sink{1, true};
  sink.capture(msg(10, 0, 1, 100));
  sink.capture(msg(15, 1, 0, 40));
  sink.record_visit(RequestRecord{.server = 0,
                                  .class_id = 0,
                                  .arrival = TimePoint::from_micros(5),
                                  .departure = TimePoint::from_micros(15),
                                  .txn = 1});
  sink.clear();
  EXPECT_TRUE(sink.messages().empty());
  EXPECT_TRUE(sink.server_log(0).empty());
  EXPECT_EQ(sink.net_counters(0).bytes_received, 0u);
  EXPECT_EQ(sink.net_counters(0).bytes_sent, 0u);
  EXPECT_EQ(sink.total_messages_seen(), 0u);
  EXPECT_EQ(sink.total_bytes_seen(), 0u);
  EXPECT_EQ(sink.messages_dropped(), 0u);
  // Configuration survives: same server count, still recording messages.
  EXPECT_EQ(sink.num_servers(), 1u);
  sink.capture(msg(20, 0, 1, 70));
  EXPECT_EQ(sink.messages().size(), 1u);
  EXPECT_EQ(sink.net_counters(0).bytes_received, 70u);
  EXPECT_EQ(sink.total_messages_seen(), 1u);
  EXPECT_EQ(sink.total_bytes_seen(), 70u);
}

}  // namespace
}  // namespace tbd::trace
