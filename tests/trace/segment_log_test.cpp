#include "trace/segment_log.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <limits>
#include <string>

#include "trace/log_io.h"
#include "trace/request_log_file.h"
#include "trace/wire.h"
#include "util/rng.h"

namespace tbd::trace {
namespace {

class SegmentLogTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "/tbd_segment_log_test.tbd2";
  void TearDown() override { std::remove(path_.c_str()); }

  std::string read_bytes() const {
    std::ifstream in{path_, std::ios::binary};
    return {std::istreambuf_iterator<char>{in}, {}};
  }

  void write_bytes(const std::string& bytes) const {
    std::ofstream out{path_, std::ios::binary | std::ios::trunc};
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
};

RequestRecord rec(ServerIndex s, ClassId c, std::int64_t a, std::int64_t d,
                  TxnId txn) {
  RequestRecord r;
  r.server = s;
  r.class_id = c;
  r.arrival = TimePoint::from_micros(a);
  r.departure = TimePoint::from_micros(d);
  r.txn = txn;
  return r;
}

/// A departure-ordered log with epoch-magnitude timestamps — the shape a
/// real capture produces, and the one the chain seeds exist for.
RequestLog epoch_log(std::size_t n) {
  RequestLog log;
  std::int64_t t = 1'700'000'000'000'000;  // microseconds since the epoch
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t dep = t + static_cast<std::int64_t>(i) * 137;
    log.push_back(rec(static_cast<ServerIndex>(i % 3),
                      static_cast<ClassId>(i % 5),
                      dep - 1000 - static_cast<std::int64_t>(i % 700), dep,
                      900'000'000 + i));
  }
  return log;
}

void expect_same_records(const RequestColumns& got, const RequestLog& want) {
  const auto rows = got.to_records();
  ASSERT_EQ(rows.size(), want.size());
  if (!rows.empty()) {
    EXPECT_EQ(std::memcmp(rows.data(), want.data(),
                          want.size() * sizeof(RequestRecord)),
              0);
  }
}

TEST_F(SegmentLogTest, RoundTripPreservesEveryField) {
  const RequestLog log{rec(0, 3, 1000, 2500, 42), rec(5, 1, -7, 9, 43),
                       rec(4'000'000'000u, 255, 0, 0, ~0ull)};
  ASSERT_TRUE(save_request_log_v2(path_, log));
  const auto loaded = load_request_log_v2(path_);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  EXPECT_TRUE(loaded.warning.empty());
  EXPECT_EQ(loaded.segments, 1u);
  expect_same_records(loaded.records, log);
}

TEST_F(SegmentLogTest, EmptyLogRoundTripsAsHeaderOnlyFile) {
  ASSERT_TRUE(save_request_log_v2(path_, {}));
  EXPECT_EQ(read_bytes().size(), 8u);  // "TBDR" + u32 version, no segments
  const auto loaded = load_request_log_v2(path_);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  EXPECT_EQ(loaded.records.size(), 0u);
  EXPECT_EQ(loaded.segments, 0u);
}

TEST_F(SegmentLogTest, OneAndTwoRecordSegmentsExerciseTheSeedOnlyPaths) {
  // n == 1: departure carries one seed and an empty packed block; txn the
  // raw seed and an empty block. n == 2: both departure seeds, still no
  // delta-of-delta values.
  for (std::size_t n : {std::size_t{1}, std::size_t{2}}) {
    RequestLog log;
    for (std::size_t i = 0; i < n; ++i) {
      log.push_back(rec(7, 9, 50 + static_cast<std::int64_t>(i),
                        100 + static_cast<std::int64_t>(i) * 13, 1'000'000 + i));
    }
    const auto decoded = decode_request_log_v2(encode_request_log_v2(log));
    ASSERT_TRUE(decoded.ok) << decoded.error;
    expect_same_records(decoded.records, log);
  }
}

TEST_F(SegmentLogTest, EpochTimestampsRoundTripAcrossSegments) {
  const auto log = epoch_log(10'000);
  SegmentLogOptions options;
  options.segment_records = 1024;
  ASSERT_TRUE(save_request_log_v2(path_, log, options));
  const auto loaded = load_request_log_v2(path_);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  EXPECT_EQ(loaded.segments, 10u);  // ceil(10000 / 1024)
  expect_same_records(loaded.records, log);
}

TEST_F(SegmentLogTest, ExtremeValuesRoundTripViaWrappingChains) {
  constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
  constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
  const RequestLog log{rec(0xFFFFFFFFu, 0xFFFFFFFFu, kMin, kMax, 0),
                       rec(0, 0, kMax, kMin, ~0ull),
                       rec(1, 2, -1, 1, 0x8000'0000'0000'0000ull)};
  const auto decoded = decode_request_log_v2(encode_request_log_v2(log));
  ASSERT_TRUE(decoded.ok) << decoded.error;
  expect_same_records(decoded.records, log);
}

TEST_F(SegmentLogTest, SegmentCapacityDoesNotChangeDecodedRecords) {
  // Metamorphic: the capacity only changes the framing, never the content.
  const auto log = epoch_log(5'000);
  const auto baseline = decode_request_log_v2(encode_request_log_v2(log));
  ASSERT_TRUE(baseline.ok);
  for (std::size_t cap : {std::size_t{1}, std::size_t{7}, std::size_t{999},
                          std::size_t{5'000}, std::size_t{100'000}}) {
    SegmentLogOptions options;
    options.segment_records = cap;
    const auto decoded =
        decode_request_log_v2(encode_request_log_v2(log, options));
    ASSERT_TRUE(decoded.ok) << "cap " << cap << ": " << decoded.error;
    expect_same_records(decoded.records, log);
    EXPECT_EQ(decoded.segments, (log.size() + cap - 1) / cap) << "cap " << cap;
  }
}

TEST_F(SegmentLogTest, EncodeMatchesSavedFileBytes) {
  const auto log = epoch_log(100);
  ASSERT_TRUE(save_request_log_v2(path_, log));
  EXPECT_EQ(encode_request_log_v2(log), read_bytes());
}

TEST_F(SegmentLogTest, CompressesRealisticLogsWellBelowV1) {
  const auto log = epoch_log(50'000);
  const auto v1 = encode_request_log_bin(log);
  const auto v2 = encode_request_log_v2(log);
  // The acceptance bar is 2.5x on the bench log; this synthetic log with
  // jittered residence times lands well past 3x.
  EXPECT_GT(v1.size(), v2.size() * 5 / 2)
      << "v1 " << v1.size() << " vs v2 " << v2.size();
}

TEST_F(SegmentLogTest, SniffReportsVersionTwo) {
  ASSERT_TRUE(save_request_log_v2(path_, epoch_log(3)));
  EXPECT_TRUE(sniff_request_log_bin(path_));
  EXPECT_EQ(sniff_request_log_version(path_), 2u);
}

// ---- front-door dispatch ----------------------------------------------------

TEST_F(SegmentLogTest, FrontDoorsLoadV2RowsAndColumns) {
  const auto log = epoch_log(500);
  ASSERT_TRUE(save_request_log_v2(path_, log));
  const auto rows = load_request_log(path_);
  ASSERT_TRUE(rows.ok) << rows.error;
  EXPECT_TRUE(rows.warning.empty());
  ASSERT_EQ(rows.records.size(), log.size());
  EXPECT_EQ(std::memcmp(rows.records.data(), log.data(),
                        log.size() * sizeof(RequestRecord)),
            0);
  const auto cols = load_request_log_columns(path_);
  ASSERT_TRUE(cols.ok) << cols.error;
  expect_same_records(cols.records, log);
}

TEST_F(SegmentLogTest, FrontDoorFoldsV2Diagnostics) {
  // Mid-file corruption is fatal even through the recovering front door,
  // and the error gains v2 coordinates (byte offset, segment, file size).
  SegmentLogOptions options;
  options.segment_records = 5;
  ASSERT_TRUE(save_request_log_v2(path_, epoch_log(10), options));
  auto bytes = read_bytes();
  bytes[8 + 40 + 2] ^= 0x20;  // payload byte of segment 0 of 2
  write_bytes(bytes);
  const auto loaded = load_request_log(path_);
  EXPECT_FALSE(loaded.ok);
  EXPECT_EQ(loaded.error, "bad segment payload checksum at byte offset 40, "
                          "segment 0, file size " +
                              std::to_string(bytes.size()));
}

TEST_F(SegmentLogTest, FrontDoorRecoversTruncatedTailWithWarning) {
  const auto log = epoch_log(4'000);
  SegmentLogOptions options;
  options.segment_records = 1000;
  ASSERT_TRUE(save_request_log_v2(path_, log, options));
  const auto bytes = read_bytes();
  write_bytes(bytes.substr(0, bytes.size() - 100));  // cut into segment 3
  const auto loaded = load_request_log_columns(path_);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  EXPECT_EQ(loaded.records.size(), 3'000u);
  EXPECT_EQ(loaded.warning.substr(0, std::strlen("recovered 3 sealed segments"
                                                 "; dropped tail:")),
            "recovered 3 sealed segments; dropped tail:");
  RequestLog prefix{log.begin(), log.begin() + 3'000};
  expect_same_records(loaded.records, prefix);
}

// ---- validation and recovery ------------------------------------------------

TEST_F(SegmentLogTest, DecodeEmptyBufferIsTruncatedHeader) {
  const auto decoded = decode_request_log_v2(std::string_view{});
  EXPECT_FALSE(decoded.ok);
  EXPECT_EQ(decoded.error, "truncated header");
  EXPECT_EQ(decoded.error_offset, 0u);
}

TEST_F(SegmentLogTest, RejectsBadMagicAndVersion) {
  auto bytes = encode_request_log_v2(epoch_log(5));
  auto mutated = bytes;
  mutated[0] = 'X';
  auto decoded = decode_request_log_v2(mutated);
  EXPECT_EQ(decoded.error, "bad magic");
  EXPECT_EQ(decoded.error_offset, 0u);
  mutated = bytes;
  mutated[4] = 3;
  decoded = decode_request_log_v2(mutated);
  EXPECT_EQ(decoded.error, "unsupported version");
  EXPECT_EQ(decoded.error_offset, 4u);
}

TEST_F(SegmentLogTest, StrictModeFailsOnTruncatedTail) {
  auto bytes = encode_request_log_v2(epoch_log(100));
  bytes.resize(bytes.size() - 10);
  const auto decoded = decode_request_log_v2(bytes, DecodeMode::kStrict);
  EXPECT_FALSE(decoded.ok);
  EXPECT_EQ(decoded.error, "truncated segment payload");
  EXPECT_EQ(decoded.error_offset, 8u + 40u);  // file header + frame header
  EXPECT_EQ(decoded.records.size(), 0u);
}

TEST_F(SegmentLogTest, RecoverTailDropsAtMostOneUnsealedSegment) {
  // The contract the crash-recovery stage leans on: for EVERY truncation
  // point, the sealed prefix loads and the loss is bounded by one segment.
  const auto log = epoch_log(300);
  SegmentLogOptions options;
  options.segment_records = 100;
  const auto bytes = encode_request_log_v2(log, options);
  Rng rng{42};
  for (int i = 0; i < 50; ++i) {
    const std::size_t cut = 8 + rng.uniform_index(bytes.size() - 8);
    const auto decoded = decode_request_log_v2(bytes.substr(0, cut));
    ASSERT_TRUE(decoded.ok) << "cut " << cut << ": " << decoded.error;
    EXPECT_EQ(decoded.records.size() % 100, 0u) << "cut " << cut;
    EXPECT_GE(decoded.records.size() + 100, (cut - 8) / 12) << "cut " << cut;
    if (decoded.records.size() < log.size()) {
      EXPECT_FALSE(decoded.warning.empty()) << "cut " << cut;
      EXPECT_NE(decoded.warning.find("recovered"), std::string::npos);
      EXPECT_NE(decoded.warning.find("dropped tail"), std::string::npos);
    }
    RequestLog prefix{log.begin(),
                      log.begin() + static_cast<std::ptrdiff_t>(
                                        decoded.records.size())};
    expect_same_records(decoded.records, prefix);
  }
}

TEST_F(SegmentLogTest, HeaderCrcCatchesFrameCorruption) {
  auto bytes = encode_request_log_v2(epoch_log(50));
  bytes[8 + 20] ^= 0x10;  // inside min_arrival: only the header CRC sees it
  const auto strict = decode_request_log_v2(bytes, DecodeMode::kStrict);
  EXPECT_FALSE(strict.ok);
  EXPECT_EQ(strict.error, "bad segment header checksum");
  EXPECT_EQ(strict.error_offset, 8u + 36u);
  // Recovery treats a corrupt final frame exactly like a truncated one.
  const auto recovered = decode_request_log_v2(bytes);
  ASSERT_TRUE(recovered.ok);
  EXPECT_EQ(recovered.records.size(), 0u);
  EXPECT_EQ(recovered.warning,
            "recovered 0 sealed segments; dropped tail: bad segment header "
            "checksum at byte offset 44, segment 0");
}

TEST_F(SegmentLogTest, PayloadCrcCatchesPayloadCorruption) {
  auto bytes = encode_request_log_v2(epoch_log(50));
  bytes[bytes.size() - 1] ^= 0x01;
  const auto strict = decode_request_log_v2(bytes, DecodeMode::kStrict);
  EXPECT_FALSE(strict.ok);
  EXPECT_EQ(strict.error, "bad segment payload checksum");
  EXPECT_EQ(strict.error_offset, 8u + 32u);  // payload_crc field of segment 0
  EXPECT_EQ(strict.error_segment, 0u);
}

TEST_F(SegmentLogTest, CountVsPayloadSizeMismatchIsRejectedInTheScan) {
  const auto log = epoch_log(50);
  auto bytes = encode_request_log_v2(log);
  // Claim more records than the payload can possibly hold (5 bytes/record
  // floor), then re-seal the header CRC so only the size check can object.
  const std::uint32_t bogus = 1'000'000;
  std::memcpy(bytes.data() + 8 + 4, &bogus, 4);
  const std::uint32_t crc = wire::crc32c(bytes.data() + 8, 36);
  std::memcpy(bytes.data() + 8 + 36, &crc, 4);
  const auto decoded = decode_request_log_v2(bytes, DecodeMode::kStrict);
  EXPECT_FALSE(decoded.ok);
  EXPECT_EQ(decoded.error, "segment record count disagrees with payload size");
  EXPECT_EQ(decoded.error_offset, 8u + 4u);  // the count field
}

TEST_F(SegmentLogTest, MidFileCorruptionIsNeverRecovered) {
  const auto log = epoch_log(500);
  SegmentLogOptions options;
  options.segment_records = 100;
  auto bytes = encode_request_log_v2(log, options);
  bytes[8 + 40 + 5] ^= 0x40;  // payload byte of segment 0 of 5
  for (auto mode : {DecodeMode::kStrict, DecodeMode::kRecoverTail}) {
    const auto decoded = decode_request_log_v2(bytes, mode);
    EXPECT_FALSE(decoded.ok);
    EXPECT_EQ(decoded.error, "bad segment payload checksum");
    EXPECT_EQ(decoded.error_segment, 0u);
    EXPECT_TRUE(decoded.warning.empty());
    EXPECT_EQ(decoded.records.size(), 0u);
  }
}

TEST_F(SegmentLogTest, EmptySegmentFrameDecodesAsZeroRecords) {
  // The writer never emits count == 0 frames, but the format allows them:
  // header with an empty payload, CRCs sealed accordingly.
  std::string bytes = encode_request_log_v2(RequestLog{});  // file header only
  char frame[40];
  std::memset(frame, 0, sizeof frame);
  std::memcpy(frame, "TSEG", 4);  // count = 0, payload_bytes = 0
  const std::uint32_t payload_crc = wire::crc32c(nullptr, 0);
  std::memcpy(frame + 32, &payload_crc, 4);
  const std::uint32_t header_crc = wire::crc32c(frame, 36);
  std::memcpy(frame + 36, &header_crc, 4);
  bytes.append(frame, sizeof frame);
  const auto decoded = decode_request_log_v2(bytes, DecodeMode::kStrict);
  ASSERT_TRUE(decoded.ok) << decoded.error;
  EXPECT_EQ(decoded.records.size(), 0u);
  EXPECT_EQ(decoded.segments, 1u);
}

// ---- SegmentLogWriter -------------------------------------------------------

TEST_F(SegmentLogTest, WriterMatchesBatchEncoderByteForByte) {
  const auto log = epoch_log(2'500);
  SegmentLogOptions options;
  options.segment_records = 1000;
  SegmentLogWriter writer;
  ASSERT_TRUE(writer.open(path_, options));
  for (const auto& r : log) writer.append(r);
  ASSERT_TRUE(writer.close());
  EXPECT_EQ(writer.records_written(), log.size());
  EXPECT_EQ(writer.segments_sealed(), 3u);  // 1000 + 1000 + 500
  const auto bytes = read_bytes();
  EXPECT_EQ(writer.bytes_written(), bytes.size());
  EXPECT_EQ(bytes, encode_request_log_v2(log, options));
}

TEST_F(SegmentLogTest, WriterKilledMidSegmentLosesOnlyTheUnsealedTail) {
  // Simulates a crash: everything up to the last seal survives; the
  // in-memory pending records are gone. (The file is bit-exact with a
  // writer that was killed, because seal() flushes after every segment.)
  const auto log = epoch_log(2'345);
  SegmentLogOptions options;
  options.segment_records = 1000;
  SegmentLogWriter writer;
  ASSERT_TRUE(writer.open(path_, options));
  for (const auto& r : log) writer.append(r);
  // No close(): 345 records sit unsealed. Drop them like a SIGKILL would.
  EXPECT_EQ(writer.segments_sealed(), 2u);
  const auto killed = read_bytes();
  const auto decoded = decode_request_log_v2(killed);
  ASSERT_TRUE(decoded.ok) << decoded.error;
  EXPECT_TRUE(decoded.warning.empty());  // clean seal boundary, no tail
  EXPECT_EQ(decoded.records.size(), 2'000u);
  RequestLog prefix{log.begin(), log.begin() + 2'000};
  expect_same_records(decoded.records, prefix);
  ASSERT_TRUE(writer.close());
}

TEST_F(SegmentLogTest, WriterOpenFailureReportsFalse) {
  SegmentLogWriter writer;
  EXPECT_FALSE(writer.open("/nonexistent/dir/log.tbd2"));
  EXPECT_FALSE(writer.is_open());
}

// ---- CRC-32C ----------------------------------------------------------------

TEST(Crc32cTest, MatchesTheStandardTestVector) {
  // iSCSI/RFC 3720 check value for "123456789".
  EXPECT_EQ(wire::crc32c("123456789", 9), 0xE3069283u);
}

TEST(Crc32cTest, SoftwareAndDispatchedPathsAgree) {
  // On SSE4.2 hosts wire::crc32c dispatches to the hardware instruction;
  // both implementations claim the same polynomial, so they must agree on
  // arbitrary buffers and all alignments/lengths.
  Rng rng{7};
  std::string buf(1024, '\0');
  for (auto& c : buf) c = static_cast<char>(rng.uniform_index(256));
  for (std::size_t off = 0; off < 8; ++off) {
    for (std::size_t len : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                            std::size_t{8}, std::size_t{63}, std::size_t{512}}) {
      EXPECT_EQ(wire::crc32c(buf.data() + off, len),
                wire::detail::crc32c_sw(buf.data() + off, len, 0))
          << "off " << off << " len " << len;
    }
  }
}

}  // namespace
}  // namespace tbd::trace
