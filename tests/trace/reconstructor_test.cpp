// Unit tests of the black-box trace reconstructor on hand-built message
// streams: request/response matching per connection, time-containment
// nesting, the LIFO readiness heuristic, and scoring.
#include "trace/reconstructor.h"

#include <gtest/gtest.h>

#include <vector>

namespace tbd::trace {
namespace {

class StreamBuilder {
 public:
  /// Class id stamped on subsequently emitted messages.
  void msgs_class(ClassId cls) { cls_ = cls; }

  // Emits a request message; `visit` and `parent` carry ground truth.
  void req(std::int64_t at, NodeId src, NodeId dst, std::uint32_t conn,
           std::uint64_t visit, std::uint64_t parent, TxnId txn = 1) {
    msgs_.push_back(Message{.at = TimePoint::from_micros(at),
                            .src = src,
                            .dst = dst,
                            .conn = conn,
                            .kind = MessageKind::kRequest,
                            .class_id = cls_,
                            .txn = txn,
                            .visit = visit,
                            .parent_visit = parent});
  }
  void resp(std::int64_t at, NodeId src, NodeId dst, std::uint32_t conn,
            std::uint64_t visit, std::uint64_t parent, TxnId txn = 1) {
    msgs_.push_back(Message{.at = TimePoint::from_micros(at),
                            .src = src,
                            .dst = dst,
                            .conn = conn,
                            .kind = MessageKind::kResponse,
                            .class_id = cls_,
                            .txn = txn,
                            .visit = visit,
                            .parent_visit = parent});
  }
  [[nodiscard]] const std::vector<Message>& messages() const { return msgs_; }

 private:
  std::vector<Message> msgs_;
  ClassId cls_ = 0;
};

TEST(ReconstructorTest, SingleTierTransaction) {
  StreamBuilder b;
  b.req(100, 0, 1, 7, /*visit=*/1, /*parent=*/0);
  b.resp(200, 1, 0, 7, 1, 0);
  TraceReconstructor rec;
  rec.process(b.messages());
  ASSERT_EQ(rec.visits().size(), 1u);
  EXPECT_EQ(rec.visits()[0].parent, -1);
  EXPECT_EQ(rec.visits()[0].arrival.micros(), 100);
  EXPECT_EQ(rec.visits()[0].departure.micros(), 200);
  EXPECT_EQ(rec.stats().roots, 1u);
  EXPECT_EQ(rec.stats().visits, 1u);
  EXPECT_DOUBLE_EQ(rec.score_against_truth().edge_accuracy(), 1.0);
}

TEST(ReconstructorTest, NestedCallAttributedByContainment) {
  // Client -> A (visit 1), A -> B (visit 2 nested in 1).
  StreamBuilder b;
  b.req(100, 0, 1, 7, 1, 0);
  b.req(120, 1, 2, 8, 2, 1);
  b.resp(180, 2, 1, 8, 2, 1);
  b.resp(200, 1, 0, 7, 1, 0);
  TraceReconstructor rec;
  rec.process(b.messages());
  ASSERT_EQ(rec.visits().size(), 2u);
  EXPECT_EQ(rec.visits()[1].parent, 0);
  const auto acc = rec.score_against_truth();
  EXPECT_EQ(acc.child_visits, 1u);
  EXPECT_DOUBLE_EQ(acc.edge_accuracy(), 1.0);
  EXPECT_DOUBLE_EQ(acc.transaction_accuracy(), 1.0);
}

TEST(ReconstructorTest, SequentialChildrenShareParent) {
  StreamBuilder b;
  b.req(100, 0, 1, 7, 1, 0);
  b.req(110, 1, 2, 8, 2, 1);   // first query
  b.resp(130, 2, 1, 8, 2, 1);
  b.req(140, 1, 2, 8, 3, 1);   // second query reuses the connection
  b.resp(160, 2, 1, 8, 3, 1);
  b.resp(200, 1, 0, 7, 1, 0);
  TraceReconstructor rec;
  rec.process(b.messages());
  ASSERT_EQ(rec.visits().size(), 3u);
  EXPECT_EQ(rec.visits()[1].parent, 0);
  EXPECT_EQ(rec.visits()[2].parent, 0);
  EXPECT_DOUBLE_EQ(rec.score_against_truth().edge_accuracy(), 1.0);
}

TEST(ReconstructorTest, ConcurrentParentsDisambiguatedByReadiness) {
  // Two requests are open on server 1. P1 became ready at 140 (its first
  // child returned); P2 arrived at 150. Under the FIFO (earliest-ready)
  // default, the child call at 160 goes to P1 — which matches processor-
  // sharing order, and the ground truth here.
  StreamBuilder b;
  b.req(100, 0, 1, 7, 1, 0, /*txn=*/1);
  b.req(110, 1, 2, 9, 2, 1, 1);
  b.resp(140, 2, 1, 9, 2, 1, 1);  // P1 ready again at 140
  b.req(150, 0, 1, 8, 3, 0, /*txn=*/2);  // P2 ready at 150 (later)
  b.req(160, 1, 2, 9, 4, 1, 1);   // P1's second query (earliest ready)
  b.resp(170, 2, 1, 9, 4, 1, 1);
  b.resp(180, 1, 0, 7, 1, 0, 1);
  b.resp(200, 1, 0, 8, 3, 0, 2);
  TraceReconstructor rec;
  rec.process(b.messages());
  const auto acc = rec.score_against_truth();
  EXPECT_EQ(acc.child_visits, 2u);
  EXPECT_EQ(acc.correct_edges, 2u);
}

TEST(ReconstructorTest, BusyParentIsNotACandidate) {
  // P1 (earliest ready) issues the first child; while it is outstanding the
  // second child call can only belong to P2 — the busy parent is excluded.
  StreamBuilder b;
  b.req(100, 0, 1, 7, 1, 0, 1);   // P1 (earliest ready)
  b.req(105, 0, 1, 8, 2, 0, 2);   // P2
  b.req(110, 1, 2, 9, 3, 1, 1);   // P1's child, still outstanding
  b.req(120, 1, 2, 10, 4, 2, 2);  // must attach to P2 (P1 is busy)
  b.resp(130, 2, 1, 9, 3, 1, 1);
  b.resp(140, 2, 1, 10, 4, 2, 2);
  b.resp(150, 1, 0, 8, 2, 0, 2);
  b.resp(160, 1, 0, 7, 1, 0, 1);
  TraceReconstructor rec;
  rec.process(b.messages());
  const auto acc = rec.score_against_truth();
  EXPECT_EQ(acc.correct_edges, 2u);
}

TEST(ReconstructorTest, ClassMismatchExcludesParent) {
  // The only open visit on server 1 has class 5; a class-3 child call
  // cannot belong to it (message content reveals the interaction type).
  StreamBuilder b;
  b.msgs_class(5);
  b.req(100, 0, 1, 7, 1, 0, 1);
  b.msgs_class(3);
  b.req(120, 1, 2, 9, 9, 8, 2);  // truth parent (visit 8) was never captured
  b.resp(130, 2, 1, 9, 9, 8, 2);
  b.msgs_class(5);
  b.resp(200, 1, 0, 7, 1, 0, 1);
  TraceReconstructor rec;
  rec.process(b.messages());
  EXPECT_EQ(rec.stats().orphan_children, 1u);
  // The class-5 visit must NOT have been blamed.
  ASSERT_EQ(rec.visits().size(), 2u);
  EXPECT_EQ(rec.visits()[1].parent, -1);
}

TEST(ReconstructorTest, OrphanChildCounted) {
  StreamBuilder b;
  b.req(100, 1, 2, 9, 2, 1);  // child call with no open parent on server 1
  b.resp(120, 2, 1, 9, 2, 1);
  TraceReconstructor rec;
  rec.process(b.messages());
  EXPECT_EQ(rec.stats().orphan_children, 1u);
  EXPECT_DOUBLE_EQ(rec.score_against_truth().edge_accuracy(), 0.0);
}

TEST(ReconstructorTest, UnmatchedResponseCounted) {
  StreamBuilder b;
  b.resp(100, 1, 0, 7, 1, 0);
  TraceReconstructor rec;
  rec.process(b.messages());
  EXPECT_EQ(rec.stats().unmatched_responses, 1u);
  EXPECT_TRUE(rec.visits().empty());
}

TEST(ReconstructorTest, ChunkedProcessingMatchesSinglePass) {
  StreamBuilder b;
  b.req(100, 0, 1, 7, 1, 0);
  b.req(120, 1, 2, 8, 2, 1);
  b.resp(180, 2, 1, 8, 2, 1);
  b.resp(200, 1, 0, 7, 1, 0);

  TraceReconstructor whole;
  whole.process(b.messages());

  TraceReconstructor chunked;
  const auto& m = b.messages();
  chunked.process({m.data(), 2});
  chunked.process({m.data() + 2, 2});

  ASSERT_EQ(whole.visits().size(), chunked.visits().size());
  for (std::size_t i = 0; i < whole.visits().size(); ++i) {
    EXPECT_EQ(whole.visits()[i].parent, chunked.visits()[i].parent);
    EXPECT_EQ(whole.visits()[i].departure.micros(),
              chunked.visits()[i].departure.micros());
  }
}

TEST(ReconstructorTest, TransactionAccuracyCountsWholeTrees) {
  // Txn 1 reconstructs perfectly; txn 2 has an orphan edge.
  StreamBuilder b;
  b.req(100, 0, 1, 7, 1, 0, 1);
  b.req(110, 1, 2, 8, 2, 1, 1);
  b.resp(130, 2, 1, 8, 2, 1, 1);
  b.resp(140, 1, 0, 7, 1, 0, 1);
  b.req(500, 1, 2, 9, 10, 9, 2);  // child of a parent the tap never saw
  b.resp(520, 2, 1, 9, 10, 9, 2);
  TraceReconstructor rec;
  rec.process(b.messages());
  const auto acc = rec.score_against_truth();
  EXPECT_EQ(acc.transactions, 2u);
  EXPECT_EQ(acc.perfect_transactions, 1u);
  EXPECT_DOUBLE_EQ(acc.transaction_accuracy(), 0.5);
}

}  // namespace
}  // namespace tbd::trace
