// Sanity checks on the correctness-harness generators themselves: the
// differential and metamorphic suites are only as strong as the inputs, so
// pin that (a) generation is deterministic per seed, and (b) the adversarial
// shapes the configs promise actually occur at observable rates.
#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <string>

#include "testing/generators.h"
#include "util/rng.h"

namespace tbd::pt {
namespace {

TEST(Generators, RequestLogIsDeterministicPerSeed) {
  Rng a{42}, b{42}, c{43};
  const auto log_a = generate_request_log(a);
  const auto log_b = generate_request_log(b);
  const auto log_c = generate_request_log(c);
  ASSERT_EQ(log_a.size(), log_b.size());
  EXPECT_EQ(std::memcmp(log_a.data(), log_b.data(),
                        log_a.size() * sizeof(trace::RequestRecord)),
            0);
  EXPECT_FALSE(log_a.size() == log_c.size() &&
               std::memcmp(log_a.data(), log_c.data(),
                           log_a.size() * sizeof(trace::RequestRecord)) == 0);
}

TEST(Generators, RequestLogHonorsContractAndHitsEdgeShapes) {
  LogGenConfig config;
  config.max_records = 400;
  std::size_t zero_duration = 0, ties = 0, boundary = 0, outside = 0;
  std::set<std::int64_t> seen;
  const auto spec = grid_for(config);
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    Rng rng{seed};
    const auto log = generate_request_log(rng, config);
    ASSERT_GE(log.size(), config.min_records);
    ASSERT_LE(log.size(), config.max_records);
    for (const auto& r : log) {
      ASSERT_LE(r.arrival.micros(), r.departure.micros());
      if (r.arrival == r.departure) ++zero_duration;
      if (!seen.insert(r.arrival.micros()).second) ++ties;
      if ((r.arrival - spec.start).micros() % spec.width.micros() == 0)
        ++boundary;
      if (r.arrival < spec.start || r.departure >= spec.end()) ++outside;
    }
  }
  EXPECT_GT(zero_duration, 0u);
  EXPECT_GT(ties, 0u);
  EXPECT_GT(boundary, 0u);
  EXPECT_GT(outside, 0u);
}

TEST(Generators, TxnLogNestsProperly) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    Rng rng{seed};
    const auto log = generate_txn_log(rng);
    ASSERT_FALSE(log.empty());
    // Within a transaction, every non-root visit is strictly contained in
    // some other visit of the same transaction (time-containment nesting).
    for (const auto& r : log) {
      if (r.server == 0) continue;  // roots live on server 0
      bool contained = false;
      for (const auto& p : log) {
        if (p.txn != r.txn || &p == &r) continue;
        if (p.arrival <= r.arrival && r.departure <= p.departure) {
          contained = true;
          break;
        }
      }
      EXPECT_TRUE(contained) << "seed " << seed << " txn " << r.txn;
    }
  }
}

TEST(Generators, CsvTextIsDeterministicAndAdversarial) {
  Rng a{7}, b{7};
  ASSERT_EQ(generate_csv_text(a), generate_csv_text(b));

  bool saw_comment = false, saw_crlf = false, saw_padding = false,
       saw_no_final_newline = false;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    Rng rng{seed};
    const auto text = generate_csv_text(rng);
    if (text.find('#') != std::string::npos) saw_comment = true;
    if (text.find("\r\n") != std::string::npos) saw_crlf = true;
    if (text.find(" ,") != std::string::npos ||
        text.find(", ") != std::string::npos) {
      saw_padding = true;
    }
    if (!text.empty() && text.back() != '\n') saw_no_final_newline = true;
  }
  EXPECT_TRUE(saw_comment);
  EXPECT_TRUE(saw_crlf);
  EXPECT_TRUE(saw_padding);
  EXPECT_TRUE(saw_no_final_newline);
}

TEST(Generators, ServiceTableIsStrictlyPositive) {
  Rng rng{5};
  const auto table = generate_service_table(rng, 12);
  ASSERT_EQ(table.classes(), 12u);
  for (trace::ClassId c = 0; c < 12; ++c) {
    EXPECT_GT(table.service_us(c), 0.0) << "class " << c;
  }
}

}  // namespace
}  // namespace tbd::pt
