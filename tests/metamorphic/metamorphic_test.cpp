// Metamorphic invariants of the analysis pipeline: transformations of the
// input that must leave the output exactly unchanged (or change it in an
// exactly predictable way). Complements tests/oracle/ — no reference
// implementation is needed, just the relation — and, like that suite, runs
// at TBD_THREADS=1 and 4 via explicit ctest registrations.
//
//  * time-shift: translating every timestamp and the grid by the same delta
//    must reproduce the identical series (integer microsecond arithmetic);
//  * permutation: record order is not part of any contract;
//  * shard boundaries: every shard count parses a CSV buffer identically;
//  * encoding round-trips: CSV text and TBDR bytes are two lossless views
//    of the same records;
//  * streaming: push == push_batch under arbitrary chunking, and both equal
//    the batch sweep series over the sealed prefix.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "core/detector.h"
#include "core/fused_sweep.h"
#include "core/streaming_detector.h"
#include "core/streaming_telemetry.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "testing/generators.h"
#include "testing/oracles.h"
#include "trace/log_io.h"
#include "trace/request_columns.h"
#include "trace/request_log_file.h"
#include "util/rng.h"

namespace tbd {
namespace {

constexpr std::uint64_t kCases = 300;

bool bits_equal(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::bit_cast<std::uint64_t>(a[i]) != std::bit_cast<std::uint64_t>(b[i]))
      return false;
  }
  return true;
}

bool records_equal(const trace::RequestLog& a, const trace::RequestLog& b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(),
                                   a.size() * sizeof(trace::RequestRecord)) == 0);
}

pt::LogGenConfig base_config(Rng& rng) {
  pt::LogGenConfig config;
  config.max_records = 20 + rng.uniform_index(140);
  config.width_us = std::int64_t{20'000} << rng.uniform_index(3);
  config.horizon_us = config.width_us * (10 + rng.uniform_index(30));
  return config;
}

TEST(Metamorphic, TimeShiftInvariance) {
  for (std::uint64_t seed = 0; seed < kCases; ++seed) {
    Rng rng{seed};
    const auto config = base_config(rng);
    const auto spec = pt::grid_for(config);
    const auto log = pt::generate_request_log(rng, config);
    const auto table = pt::generate_service_table(rng, config.classes);
    const auto options = pt::generate_throughput_options(rng);
    const auto base = core::compute_load_throughput(log, spec, table, options);

    const std::int64_t delta =
        (rng.bernoulli(0.5) ? 1 : -1) *
        static_cast<std::int64_t>(rng.uniform_index(3'000'000'000));
    trace::RequestLog shifted = log;
    for (auto& r : shifted) {
      r.arrival = TimePoint::from_micros(r.arrival.micros() + delta);
      r.departure = TimePoint::from_micros(r.departure.micros() + delta);
    }
    core::IntervalSpec shifted_spec = spec;
    shifted_spec.start = TimePoint::from_micros(spec.start.micros() + delta);

    const auto moved =
        core::compute_load_throughput(shifted, shifted_spec, table, options);
    EXPECT_TRUE(bits_equal(base.load, moved.load)) << "seed " << seed;
    EXPECT_TRUE(bits_equal(base.throughput, moved.throughput))
        << "seed " << seed;
  }
}

TEST(Metamorphic, RecordPermutationInvariance) {
  for (std::uint64_t seed = 0; seed < kCases; ++seed) {
    Rng rng{seed + 10'000'000};
    const auto config = base_config(rng);
    const auto spec = pt::grid_for(config);
    auto log = pt::generate_request_log(rng, config);
    const auto table = pt::generate_service_table(rng, config.classes);
    const auto base = core::detect_bottlenecks(log, spec, table);

    // Fisher–Yates off the shared Rng keeps the case reproducible.
    for (std::size_t i = log.size(); i > 1; --i) {
      std::swap(log[i - 1], log[rng.uniform_index(i)]);
    }
    const auto shuffled = core::detect_bottlenecks(log, spec, table);

    EXPECT_TRUE(bits_equal(base.load, shuffled.load)) << "seed " << seed;
    EXPECT_TRUE(bits_equal(base.throughput, shuffled.throughput))
        << "seed " << seed;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(base.nstar.n_star),
              std::bit_cast<std::uint64_t>(shuffled.nstar.n_star))
        << "seed " << seed;
    EXPECT_EQ(base.states, shuffled.states) << "seed " << seed;
    ASSERT_EQ(base.episodes.size(), shuffled.episodes.size()) << "seed " << seed;
    for (std::size_t i = 0; i < base.episodes.size(); ++i) {
      EXPECT_EQ(base.episodes[i].start.micros(),
                shuffled.episodes[i].start.micros())
          << "seed " << seed;
      EXPECT_EQ(base.episodes[i].duration.micros(),
                shuffled.episodes[i].duration.micros())
          << "seed " << seed;
    }
  }
}

TEST(Metamorphic, ShardBoundaryInvariance) {
  for (std::uint64_t seed = 0; seed < kCases; ++seed) {
    Rng rng{seed + 20'000'000};
    const auto text = pt::generate_csv_text(rng);
    const auto reference = trace::parse_request_log_csv(text, 1);
    for (int shards = 2; shards <= 8; ++shards) {
      const auto sharded = trace::parse_request_log_csv(text, shards);
      EXPECT_TRUE(records_equal(reference.records, sharded.records))
          << "seed " << seed << " shards " << shards;
      EXPECT_EQ(reference.skipped_lines, sharded.skipped_lines)
          << "seed " << seed << " shards " << shards;
      EXPECT_EQ(reference.first_bad_line, sharded.first_bad_line)
          << "seed " << seed << " shards " << shards;
      EXPECT_EQ(reference.first_bad_text, sharded.first_bad_text)
          << "seed " << seed << " shards " << shards;
    }
  }
}

TEST(Metamorphic, CsvAndTbdrAreLosslessViewsOfTheSameRecords) {
  for (std::uint64_t seed = 0; seed < kCases; ++seed) {
    Rng rng{seed + 30'000'000};
    const auto config = base_config(rng);
    auto log = pt::generate_request_log(rng, config);
    // The CSV writer prints signed microseconds but the reader only accepts
    // unsigned fields, so pre-epoch records cannot survive text (they do
    // survive TBDR). Keep this property on the printable subset.
    std::erase_if(log, [](const trace::RequestRecord& r) {
      return r.arrival.micros() < 0;
    });

    const auto via_csv =
        trace::parse_request_log_csv(trace::request_log_to_csv(log), 3);
    ASSERT_TRUE(via_csv.ok);
    EXPECT_TRUE(records_equal(log, via_csv.records)) << "seed " << seed;

    const auto via_bin =
        trace::decode_request_log_bin(trace::encode_request_log_bin(log));
    ASSERT_TRUE(via_bin.ok) << via_bin.error;
    EXPECT_TRUE(records_equal(log, via_bin.records)) << "seed " << seed;
  }
}

TEST(Metamorphic, StreamingPushEqualsPushBatchEqualsBatchSweep) {
  for (std::uint64_t seed = 0; seed < kCases; ++seed) {
    Rng rng{seed + 40'000'000};
    auto config = base_config(rng);
    config.origin_us = 0;
    config.p_outside = 0.0;  // streaming drops pre-start arrivals' history
    config.p_spanning = 0.0;
    const auto spec = pt::grid_for(config);
    auto log = pt::generate_request_log(rng, config);
    std::sort(log.begin(), log.end(),
              [](const trace::RequestRecord& a, const trace::RequestRecord& b) {
                return a.departure < b.departure;
              });
    const auto table = pt::generate_service_table(rng, config.classes);

    core::StreamingDetector::Config stream_config;
    stream_config.width = spec.width;
    stream_config.lag = Duration::seconds(30);
    core::NStarResult nstar;
    nstar.n_star = rng.uniform(0.5, 8.0);
    nstar.tp_max = rng.uniform(100.0, 5000.0);
    nstar.converged = true;

    struct Emitted {
      std::vector<double> load, tput;
      std::vector<core::IntervalState> states;
    };
    const auto run = [&](auto feed) {
      core::StreamingDetector stream{spec.start, stream_config, nstar, table};
      Emitted out;
      stream.on_interval([&](std::size_t, double load, double tput,
                             core::IntervalState state) {
        out.load.push_back(load);
        out.tput.push_back(tput);
        out.states.push_back(state);
      });
      feed(stream);
      stream.finish();
      return out;
    };

    const auto loop = run([&](core::StreamingDetector& s) {
      for (const auto& r : log) s.push(r);
    });
    const auto whole = run(
        [&](core::StreamingDetector& s) { s.push_batch(log); });
    const auto chunked = run([&](core::StreamingDetector& s) {
      std::size_t i = 0;
      while (i < log.size()) {
        const std::size_t n = 1 + rng.uniform_index(7);
        const std::size_t end = std::min(i + n, log.size());
        s.push_batch(std::span{log}.subspan(i, end - i));
        i = end;
      }
    });

    EXPECT_TRUE(bits_equal(loop.load, whole.load)) << "seed " << seed;
    EXPECT_TRUE(bits_equal(loop.tput, whole.tput)) << "seed " << seed;
    EXPECT_EQ(loop.states, whole.states) << "seed " << seed;
    EXPECT_TRUE(bits_equal(loop.load, chunked.load)) << "seed " << seed;
    EXPECT_TRUE(bits_equal(loop.tput, chunked.tput)) << "seed " << seed;
    EXPECT_EQ(loop.states, chunked.states) << "seed " << seed;

    // The sealed prefix must agree with the batch sweep over the same grid:
    // the streaming cells accumulate the same integer-microsecond residence
    // and integer work units, so equality is bitwise, not approximate.
    // finish() seals only up to the last departure, so the stream may stop
    // short of the grid — every batch interval past it must be exactly empty.
    const auto batch = core::compute_load_throughput(log, spec, table);
    const std::size_t common = std::min(loop.load.size(), batch.load.size());
    for (std::size_t i = common; i < batch.load.size(); ++i) {
      EXPECT_EQ(batch.load[i], 0.0) << "seed " << seed << " interval " << i;
      EXPECT_EQ(batch.throughput[i], 0.0)
          << "seed " << seed << " interval " << i;
    }
    for (std::size_t i = 0; i < common; ++i) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(loop.load[i]),
                std::bit_cast<std::uint64_t>(batch.load[i]))
          << "seed " << seed << " interval " << i;
      EXPECT_EQ(std::bit_cast<std::uint64_t>(loop.tput[i]),
                std::bit_cast<std::uint64_t>(batch.throughput[i]))
          << "seed " << seed << " interval " << i;
    }
  }
}

// Interleaves push, push_batch over rows, columnar push_batch, and reset:
// after each reset the detector must behave exactly like a fresh one, and
// every feeding style (row-at-a-time, row chunks, column chunks) must emit
// identical intervals — all bit-equal to the batch sweep over the sealed
// prefix. Regression for the columnar buffer path: a reset that leaked open
// cells or a column append that disagreed with push would diverge here.
TEST(Metamorphic, StreamingInterleavedPushBatchResetMatchesBatchSweep) {
  for (std::uint64_t seed = 0; seed < kCases; ++seed) {
    Rng rng{seed + 50'000'000};
    auto config = base_config(rng);
    config.origin_us = 0;
    config.p_outside = 0.0;  // streaming drops pre-start arrivals' history
    config.p_spanning = 0.0;
    const auto spec = pt::grid_for(config);
    auto log = pt::generate_request_log(rng, config);
    std::sort(log.begin(), log.end(),
              [](const trace::RequestRecord& a, const trace::RequestRecord& b) {
                return a.departure < b.departure;
              });
    const auto table = pt::generate_service_table(rng, config.classes);
    const auto columns = trace::RequestColumns::from_records(log);

    core::StreamingDetector::Config stream_config;
    stream_config.width = spec.width;
    stream_config.lag = Duration::seconds(30);
    core::NStarResult nstar;
    nstar.n_star = rng.uniform(0.5, 8.0);
    nstar.tp_max = rng.uniform(100.0, 5000.0);
    nstar.converged = true;

    struct Emitted {
      std::vector<double> load, tput;
      std::vector<core::IntervalState> states;
    };
    core::StreamingDetector stream{spec.start, stream_config, nstar, table};
    Emitted out;
    stream.on_interval([&](std::size_t, double load, double tput,
                           core::IntervalState state) {
      out.load.push_back(load);
      out.tput.push_back(tput);
      out.states.push_back(state);
    });

    // A couple of warm-up rounds, each ended by reset(): feed a random
    // prefix through a random mix of styles, then rewind. Whatever these
    // rounds emitted is cleared away with the state.
    const int warmups = static_cast<int>(rng.uniform_index(3));
    for (int w = 0; w < warmups; ++w) {
      const std::size_t prefix = rng.uniform_index(log.size() + 1);
      std::size_t i = 0;
      while (i < prefix) {
        const std::size_t n =
            std::min(prefix - i, std::size_t{1} + rng.uniform_index(7));
        switch (rng.uniform_index(3)) {
          case 0:
            for (std::size_t k = i; k < i + n; ++k) stream.push(log[k]);
            break;
          case 1:
            stream.push_batch(std::span{log}.subspan(i, n));
            break;
          default:
            stream.push_batch(columns.view().subview(i, n));
            break;
        }
        i += n;
      }
      stream.reset(spec.start);
      out = Emitted{};
    }

    // The measured round: the full log, again through an interleaved mix.
    std::size_t i = 0;
    while (i < log.size()) {
      const std::size_t n =
          std::min(log.size() - i, std::size_t{1} + rng.uniform_index(7));
      switch (rng.uniform_index(3)) {
        case 0:
          for (std::size_t k = i; k < i + n; ++k) stream.push(log[k]);
          break;
        case 1:
          stream.push_batch(std::span{log}.subspan(i, n));
          break;
        default:
          stream.push_batch(columns.view().subview(i, n));
          break;
      }
      i += n;
    }
    stream.finish();

    // Sealed prefix == batch sweep, bit-for-bit; the grid's tail past the
    // last departure must be exactly empty.
    const auto batch = core::compute_load_throughput(log, spec, table);
    const std::size_t common = std::min(out.load.size(), batch.load.size());
    for (std::size_t k = common; k < batch.load.size(); ++k) {
      EXPECT_EQ(batch.load[k], 0.0) << "seed " << seed << " interval " << k;
      EXPECT_EQ(batch.throughput[k], 0.0)
          << "seed " << seed << " interval " << k;
    }
    for (std::size_t k = 0; k < common; ++k) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(out.load[k]),
                std::bit_cast<std::uint64_t>(batch.load[k]))
          << "seed " << seed << " interval " << k;
      EXPECT_EQ(std::bit_cast<std::uint64_t>(out.tput[k]),
                std::bit_cast<std::uint64_t>(batch.throughput[k]))
          << "seed " << seed << " interval " << k;
    }
  }
}

// The NDJSON event log is a *replayable* record of the detection: parsing
// the interval_sealed lines back (strtod inverts the %.17g rendering
// bit-exactly) and re-running classification/episode extraction over the
// parsed series must reconstruct the same episode list the batch pipeline
// computes on the same calibration — and the episode_close lines must carry
// exactly the episodes the detector reported.
TEST(Metamorphic, EventLogReplayReconstructsBatchEpisodes) {
  for (std::uint64_t seed = 0; seed < kCases; ++seed) {
    Rng rng{seed + 60'000'000};
    auto config = base_config(rng);
    config.origin_us = 0;
    config.p_outside = 0.0;  // streaming drops pre-start arrivals' history
    config.p_spanning = 0.0;
    const auto spec = pt::grid_for(config);
    auto log = pt::generate_request_log(rng, config);
    std::sort(log.begin(), log.end(),
              [](const trace::RequestRecord& a, const trace::RequestRecord& b) {
                return a.departure < b.departure;
              });
    const auto table = pt::generate_service_table(rng, config.classes);

    core::StreamingDetector::Config stream_config;
    stream_config.width = spec.width;
    stream_config.lag = Duration::seconds(30);
    core::NStarResult nstar;
    nstar.n_star = rng.uniform(0.5, 8.0);
    nstar.tp_max = rng.uniform(100.0, 5000.0);
    nstar.converged = true;

    core::StreamingDetector stream{spec.start, stream_config, nstar, table};
    obs::Registry registry;
    std::ostringstream text_out;
    obs::EventLog events{&text_out};
    core::StreamingTelemetry telemetry{stream, {"s0"}, registry, &events};
    stream.push_batch(log);
    stream.finish();

    // Parse the event text back into per-interval series + closed episodes.
    const auto field = [](const std::string& line, const char* key) {
      const auto pos = line.find(key);
      EXPECT_NE(pos, std::string::npos) << key << " in " << line;
      return line.c_str() + pos + std::strlen(key);
    };
    std::vector<double> load, tput;
    std::vector<core::IntervalState> states;
    std::vector<core::Episode> closed;
    std::istringstream lines{text_out.str()};
    std::string line;
    while (std::getline(lines, line)) {
      if (line.find("\"type\":\"interval_sealed\"") != std::string::npos) {
        load.push_back(std::strtod(field(line, "\"load\":"), nullptr));
        tput.push_back(std::strtod(field(line, "\"tput\":"), nullptr));
        const char* s = field(line, "\"state\":\"");
        if (std::strncmp(s, "idle", 4) == 0) {
          states.push_back(core::IntervalState::kIdle);
        } else if (std::strncmp(s, "normal", 6) == 0) {
          states.push_back(core::IntervalState::kNormal);
        } else if (std::strncmp(s, "congested", 9) == 0) {
          states.push_back(core::IntervalState::kCongested);
        } else {
          states.push_back(core::IntervalState::kFrozen);
        }
      } else if (line.find("\"type\":\"episode_close\"") !=
                 std::string::npos) {
        core::Episode e;
        e.start = TimePoint::from_micros(
            std::strtoll(field(line, "\"start_us\":"), nullptr, 10));
        e.duration = Duration::micros(
            std::strtoll(field(line, "\"duration_us\":"), nullptr, 10));
        e.peak_load = std::strtod(field(line, "\"peak_load\":"), nullptr);
        e.contains_freeze =
            std::strncmp(field(line, "\"freeze\":"), "true", 4) == 0;
        closed.push_back(e);
      }
    }
    ASSERT_EQ(load.size(), stream.intervals_emitted()) << "seed " << seed;

    // (1) The close events are exactly the detector's episode list.
    const auto& direct = stream.episodes();
    ASSERT_EQ(closed.size(), direct.size()) << "seed " << seed;
    for (std::size_t e = 0; e < closed.size(); ++e) {
      EXPECT_EQ(closed[e].start.micros(), direct[e].start.micros());
      EXPECT_EQ(closed[e].duration.micros(), direct[e].duration.micros());
      EXPECT_EQ(std::bit_cast<std::uint64_t>(closed[e].peak_load),
                std::bit_cast<std::uint64_t>(direct[e].peak_load))
          << "seed " << seed;
      EXPECT_EQ(closed[e].contains_freeze, direct[e].contains_freeze);
    }

    // (2) Re-running the batch classify/extract stages over the parsed
    // series reproduces the same episodes as batch detection on the same
    // calibration (over the common sealed prefix; the grid tail past the
    // last departure is exactly empty either way).
    const auto batch = core::compute_load_throughput(log, spec, table);
    const auto batch_states =
        core::classify_intervals(batch.load, batch.throughput, nstar, {});
    const std::size_t common = std::min(load.size(), batch.load.size());
    auto common_spec = spec;
    common_spec.count = common;
    const auto replayed = core::extract_episodes(
        std::span{states}.first(common), std::span{load}.first(common),
        common_spec);
    const auto batch_episodes = core::extract_episodes(
        std::span{batch_states}.first(common),
        std::span{batch.load}.first(common), common_spec);
    ASSERT_EQ(replayed.size(), batch_episodes.size()) << "seed " << seed;
    for (std::size_t e = 0; e < replayed.size(); ++e) {
      EXPECT_EQ(replayed[e].start.micros(), batch_episodes[e].start.micros());
      EXPECT_EQ(replayed[e].duration.micros(),
                batch_episodes[e].duration.micros());
      EXPECT_EQ(std::bit_cast<std::uint64_t>(replayed[e].peak_load),
                std::bit_cast<std::uint64_t>(batch_episodes[e].peak_load))
          << "seed " << seed;
      EXPECT_EQ(replayed[e].contains_freeze,
                batch_episodes[e].contains_freeze);
    }
  }
}

}  // namespace
}  // namespace tbd
