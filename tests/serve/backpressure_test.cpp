// Back-pressure soak: one firehose stream whose drain is artificially slow
// must hit its queue high-water mark and get its *connection* paused — while
// trickle streams on other connections keep ingesting and sealing on time.
// The mark bounds queued bytes; nothing is dropped; the stall surfaces in
// serve_status_json (the /statusz "serve" section).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "serve/client.h"
#include "serve/daemon.h"
#include "serve/frame.h"

namespace tbd::serve {
namespace {

constexpr std::size_t kHighWater = 64 * 1024;
constexpr std::size_t kFirehoseFrames = 600;
constexpr std::size_t kFirehoseBatch = 128;  // 4 KiB per DATA frame
constexpr std::size_t kTrickleBatches = 40;
constexpr std::size_t kTrickleBatch = 4;

HelloConfig hello_named(const std::string& name) {
  HelloConfig h;
  h.name = name;
  h.start_us = 0;
  h.width_us = 50'000;
  h.lag_us = 200'000;
  h.nstar = 5.0;
  h.tpmax = 1e6;
  h.service_us = {{0, 1000.0}};
  return h;
}

trace::RequestRecord rec(std::int64_t a, std::int64_t d) {
  trace::RequestRecord r;
  r.server = 0;
  r.class_id = 0;
  r.arrival = TimePoint::from_micros(a);
  r.departure = TimePoint::from_micros(d);
  return r;
}

bool eventually(const std::function<bool()>& pred, double timeout_s = 10.0) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_s));
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return true;
}

StreamSummary summary_of(const ServeDaemon& daemon, const std::string& name) {
  for (const auto& s : daemon.stream_summaries()) {
    if (s.name == name) return s;
  }
  return {};
}

TEST(ServeBackpressureTest, FirehoseIsCappedWhileTricklesKeepSealing) {
  obs::Registry registry;
  DaemonOptions options;
  options.expose_http = false;
  options.tick_ms = 2.0;
  options.registry = &registry;
  options.queue_high_water_bytes = kHighWater;
  // The throttle: draining a firehose frame costs ~1.5 ms, so the socket
  // outruns the pump and the queue must fill. Trickle frames drain free.
  options.drain_hook = [](const std::string& stream) {
    if (stream == "firehose") {
      std::this_thread::sleep_for(std::chrono::microseconds(1500));
    }
  };
  ServeDaemon daemon{options};
  ASSERT_TRUE(daemon.start()) << daemon.error();

  // Firehose: one connection blasting 600 x 4 KiB frames as fast as the
  // kernel accepts them. SendClient's blocking send() IS the back-pressure
  // path — when the daemon pauses the connection, this thread stalls.
  std::atomic<bool> firehose_done{false};
  std::thread firehose{[&] {
    SendClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", daemon.ingest_port()));
    ASSERT_TRUE(client.send_hello(0, hello_named("firehose")));
    std::vector<trace::RequestRecord> batch;
    std::int64_t t = 0;
    for (std::size_t f = 0; f < kFirehoseFrames; ++f) {
      batch.clear();
      for (std::size_t i = 0; i < kFirehoseBatch; ++i) {
        batch.push_back(rec(t, t + 1000));
        t += 100;
      }
      ASSERT_TRUE(client.send_records(0, batch)) << client.error();
    }
    ASSERT_TRUE(client.send_bye(0));
    ASSERT_TRUE(client.finish()) << client.error();
    firehose_done.store(true);
  }};

  // Trickles: four more connections, each pacing small batches for ~400 ms.
  std::vector<std::thread> trickles;
  for (int n = 0; n < 4; ++n) {
    trickles.emplace_back([&, n] {
      SendClient client;
      ASSERT_TRUE(client.connect("127.0.0.1", daemon.ingest_port()));
      const std::string name = "trickle" + std::to_string(n);
      ASSERT_TRUE(client.send_hello(0, hello_named(name)));
      std::int64_t t = 0;
      for (std::size_t b = 0; b < kTrickleBatches; ++b) {
        std::vector<trace::RequestRecord> batch;
        for (std::size_t i = 0; i < kTrickleBatch; ++i) {
          batch.push_back(rec(t, t + 1000));
          t += 10'000;  // 10 ms of trace time per record
        }
        ASSERT_TRUE(client.send_records(0, batch)) << client.error();
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
      ASSERT_TRUE(client.send_bye(0));
      ASSERT_TRUE(client.finish()) << client.error();
    });
  }

  // The firehose must hit the mark while it is still sending.
  EXPECT_TRUE(eventually([&] { return daemon.backpressure_pauses() >= 1; }))
      << "firehose never hit the high-water mark";

  // While the firehose is stalled, trickle streams keep ingesting AND keep
  // sealing — their detectors are not starved by the hot stream.
  if (!firehose_done.load()) {
    const auto before = summary_of(daemon, "trickle0");
    EXPECT_TRUE(eventually([&] {
      if (firehose_done.load()) return true;  // flood ended; soak point moot
      const auto now = summary_of(daemon, "trickle0");
      return now.records > before.records && now.intervals > before.intervals;
    }))
        << "trickle starved while the firehose was paused";
  }

  firehose.join();
  for (auto& t : trickles) t.join();
  ASSERT_TRUE(daemon.wait_idle(20.0));

  // Nothing lost, nothing dropped, everything finished.
  const auto fh = summary_of(daemon, "firehose");
  EXPECT_TRUE(fh.finished);
  EXPECT_EQ(fh.records, kFirehoseFrames * kFirehoseBatch);
  EXPECT_EQ(fh.dropped, 0u);
  for (int n = 0; n < 4; ++n) {
    const auto tr = summary_of(daemon, "trickle" + std::to_string(n));
    EXPECT_TRUE(tr.finished) << tr.name;
    EXPECT_EQ(tr.records, kTrickleBatches * kTrickleBatch) << tr.name;
    EXPECT_EQ(tr.dropped, 0u) << tr.name;
    EXPECT_GT(tr.intervals, 0u) << tr.name;
    EXPECT_EQ(tr.pauses, 0u) << tr.name;  // only the firehose was deferred
  }

  // The mark really caps per-stream queued bytes: the peak may overshoot by
  // at most one read chunk (64 KiB) of already-received frames.
  EXPECT_GE(fh.pauses, 1u);
  EXPECT_LE(fh.peak_queued_bytes, kHighWater + 128 * 1024);
  EXPECT_GE(daemon.backpressure_pauses(), fh.pauses);

  // The stall is visible in /statusz's "serve" section.
  const std::string status = daemon.serve_status_json();
  EXPECT_NE(status.find("\"queue_hwm_bytes\":" + std::to_string(kHighWater)),
            std::string::npos)
      << status;
  EXPECT_NE(status.find("\"deferred_reads\":"), std::string::npos) << status;
  EXPECT_NE(status.find("\"backpressure_pauses\":"), std::string::npos)
      << status;
  daemon.stop();
}

TEST(ServeBackpressureTest, PausedConnectionResumesBelowHalfMark) {
  // A single paused connection must resume (and complete) once the pump
  // drains it below HWM/2 — no wedged sockets, no timeout.
  obs::Registry registry;
  DaemonOptions options;
  options.expose_http = false;
  options.tick_ms = 2.0;
  options.registry = &registry;
  options.queue_high_water_bytes = 16 * 1024;
  std::atomic<int> throttled{40};  // first 40 frames drain slowly, then free
  options.drain_hook = [&](const std::string&) {
    if (throttled.fetch_sub(1) > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  };
  ServeDaemon daemon{options};
  ASSERT_TRUE(daemon.start()) << daemon.error();

  SendClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", daemon.ingest_port()));
  ASSERT_TRUE(client.send_hello(0, hello_named("bursty")));
  std::int64_t t = 0;
  for (std::size_t f = 0; f < 200; ++f) {
    std::vector<trace::RequestRecord> batch;
    for (std::size_t i = 0; i < 64; ++i) {
      batch.push_back(rec(t, t + 1000));
      t += 100;
    }
    ASSERT_TRUE(client.send_records(0, batch)) << client.error();
  }
  ASSERT_TRUE(client.send_bye(0));
  ASSERT_TRUE(client.finish()) << client.error();
  ASSERT_TRUE(daemon.wait_idle(20.0));

  const auto s = summary_of(daemon, "bursty");
  EXPECT_TRUE(s.finished);
  EXPECT_EQ(s.records, 200u * 64u);
  EXPECT_EQ(s.dropped, 0u);
  EXPECT_GE(daemon.backpressure_pauses(), 1u);
  EXPECT_EQ(s.queued_bytes, 0u);  // fully drained
  daemon.stop();
}

}  // namespace
}  // namespace tbd::serve
