#include "serve/frame.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

namespace tbd::serve {
namespace {

trace::RequestRecord rec(std::int64_t a, std::int64_t d,
                         trace::ClassId c = 0) {
  trace::RequestRecord r;
  r.server = 7;
  r.class_id = c;
  r.arrival = TimePoint::from_micros(a);
  r.departure = TimePoint::from_micros(d);
  r.txn = 42;
  return r;
}

HelloConfig sample_hello() {
  HelloConfig h;
  h.name = "server0";
  h.start_us = 1'000'000;
  h.width_us = 50'000;
  h.lag_us = 5'000'000;
  h.idle_seal_us = 2'000'000;
  h.nstar = 3.5;
  h.tpmax = 40.25;
  h.work_unit_us = 0.0;
  h.idle_load = 0.05;
  h.poi_tput_frac = 0.05;
  h.service_us = {{0, 1000.0}, {3, 0.0}, {5, 2500.5}};
  return h;
}

/// Parse exactly one frame out of `bytes` (must contain exactly one).
FrameParser::Result parse_one(const std::string& bytes) {
  FrameParser parser;
  parser.feed(bytes);
  auto result = parser.next();
  EXPECT_EQ(parser.buffered(), 0u);
  return result;
}

TEST(FrameCodecTest, HelloRoundTripsEveryField) {
  const HelloConfig in = sample_hello();
  const std::string bytes = encode_hello(9, in);
  const auto result = parse_one(bytes);
  ASSERT_EQ(result.status, FrameParser::Status::kFrame);
  EXPECT_EQ(result.header.type, FrameType::kHello);
  EXPECT_EQ(result.header.stream, 9);

  HelloConfig out;
  ASSERT_EQ(decode_hello(result.payload, out), "");
  EXPECT_EQ(out.name, in.name);
  EXPECT_EQ(out.start_us, in.start_us);
  EXPECT_EQ(out.width_us, in.width_us);
  EXPECT_EQ(out.lag_us, in.lag_us);
  EXPECT_EQ(out.idle_seal_us, in.idle_seal_us);
  // Doubles cross the wire as raw bit patterns: exact equality.
  EXPECT_EQ(out.nstar, in.nstar);
  EXPECT_EQ(out.tpmax, in.tpmax);
  EXPECT_EQ(out.work_unit_us, in.work_unit_us);
  EXPECT_EQ(out.idle_load, in.idle_load);
  EXPECT_EQ(out.poi_tput_frac, in.poi_tput_frac);
  EXPECT_EQ(out.service_us, in.service_us);
}

TEST(FrameCodecTest, RawRecordsRoundTrip) {
  std::vector<trace::RequestRecord> records = {rec(10, 20, 1), rec(15, 35, 2),
                                               rec(20, 50)};
  const std::string bytes = encode_raw_records(3, records);
  const auto result = parse_one(bytes);
  ASSERT_EQ(result.status, FrameParser::Status::kFrame);
  EXPECT_EQ(result.header.type, FrameType::kData);
  EXPECT_EQ(result.header.format,
            static_cast<std::uint8_t>(DataFormat::kRawRecords));
  EXPECT_EQ(result.payload.size(), records.size() * kRawRecordBytes);

  trace::RequestColumns cols;
  ASSERT_EQ(decode_raw_records(result.payload, cols), "");
  ASSERT_EQ(cols.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(cols.server[i], records[i].server);
    EXPECT_EQ(cols.class_id[i], records[i].class_id);
    EXPECT_EQ(cols.arrival_us[i], records[i].arrival.micros());
    EXPECT_EQ(cols.departure_us[i], records[i].departure.micros());
    EXPECT_EQ(cols.txn[i], records[i].txn);
  }
}

TEST(FrameCodecTest, ControlFramesRoundTrip) {
  auto hb = parse_one(encode_heartbeat());
  ASSERT_EQ(hb.status, FrameParser::Status::kFrame);
  EXPECT_EQ(hb.header.type, FrameType::kHeartbeat);
  EXPECT_TRUE(hb.payload.empty());

  auto bye = parse_one(encode_bye(12));
  ASSERT_EQ(bye.status, FrameParser::Status::kFrame);
  EXPECT_EQ(bye.header.type, FrameType::kBye);
  EXPECT_EQ(bye.header.stream, 12);

  auto err = parse_one(encode_error("duplicate stream id: server0"));
  ASSERT_EQ(err.status, FrameParser::Status::kFrame);
  EXPECT_EQ(err.header.type, FrameType::kError);
  EXPECT_EQ(err.payload, "duplicate stream id: server0");
}

TEST(FrameParserTest, ReassemblesFramesFedByteByByte) {
  std::string bytes = encode_hello(1, sample_hello());
  bytes += encode_raw_records(1, std::vector<trace::RequestRecord>{rec(1, 2)});
  bytes += encode_bye(1);

  FrameParser parser;
  std::vector<FrameType> seen;
  for (char c : bytes) {
    parser.feed(std::string_view{&c, 1});
    for (;;) {
      auto result = parser.next();
      if (result.status != FrameParser::Status::kFrame) {
        ASSERT_EQ(result.status, FrameParser::Status::kNeedMore);
        break;
      }
      seen.push_back(result.header.type);
    }
  }
  EXPECT_EQ(seen, (std::vector<FrameType>{FrameType::kHello, FrameType::kData,
                                          FrameType::kBye}));
  EXPECT_FALSE(parser.mid_frame());
}

TEST(FrameParserTest, MidFrameReportsPartialBuffer) {
  const std::string bytes = encode_bye(1);
  FrameParser parser;
  parser.feed(std::string_view{bytes.data(), bytes.size() - 1});
  EXPECT_EQ(parser.next().status, FrameParser::Status::kNeedMore);
  EXPECT_TRUE(parser.mid_frame());
  parser.feed(std::string_view{bytes.data() + bytes.size() - 1, 1});
  EXPECT_EQ(parser.next().status, FrameParser::Status::kFrame);
  EXPECT_FALSE(parser.mid_frame());
}

TEST(FrameParserTest, RejectsBadMagicAndStaysFailed) {
  FrameParser parser;
  parser.feed("GET / HTTP/1.1\r\n");
  auto result = parser.next();
  ASSERT_EQ(result.status, FrameParser::Status::kError);
  EXPECT_EQ(result.error, "bad frame magic");
  EXPECT_TRUE(parser.failed());
  // No resynchronization: valid bytes after the error are still rejected.
  parser.feed(encode_heartbeat());
  EXPECT_EQ(parser.next().status, FrameParser::Status::kError);
}

TEST(FrameParserTest, RejectsOversizedLengthFromHeaderAlone) {
  // A DATA header claiming 1 GiB must fail before any payload arrives.
  std::string header;
  header.push_back(static_cast<char>(0x54));  // magic lo
  header.push_back(static_cast<char>(0x46));  // magic hi
  header.push_back(2);                        // DATA
  header.push_back(0);                        // format raw
  header.append(2, '\0');                     // stream
  header.append(2, '\0');                     // reserved
  const std::uint32_t huge = 1u << 30;
  header.append(reinterpret_cast<const char*>(&huge), 4);

  FrameParser parser;
  parser.feed(header);
  auto result = parser.next();
  ASSERT_EQ(result.status, FrameParser::Status::kError);
  EXPECT_EQ(result.error, "oversized frame length");
}

TEST(FrameParserTest, ControlFramesHaveTighterCapThanData) {
  // 1 MiB is fine for DATA but far beyond the 4 KiB control cap.
  auto header_with = [](std::uint8_t type, std::uint32_t length) {
    std::string h;
    h.push_back(static_cast<char>(0x54));
    h.push_back(static_cast<char>(0x46));
    h.push_back(static_cast<char>(type));
    h.push_back(0);
    h.append(4, '\0');
    h.append(reinterpret_cast<const char*>(&length), 4);
    return h;
  };
  FrameParser data_parser;
  data_parser.feed(header_with(2, 1u << 20));
  EXPECT_EQ(data_parser.next().status, FrameParser::Status::kNeedMore);

  FrameParser bye_parser;
  bye_parser.feed(header_with(4, 1u << 20));
  EXPECT_EQ(bye_parser.next().status, FrameParser::Status::kError);
}

TEST(FrameParserTest, RejectsUnknownTypeReservedBitsAndBadFormat) {
  auto make = [](std::uint8_t type, std::uint8_t format,
                 std::uint16_t reserved) {
    std::string h;
    h.push_back(static_cast<char>(0x54));
    h.push_back(static_cast<char>(0x46));
    h.push_back(static_cast<char>(type));
    h.push_back(static_cast<char>(format));
    h.append(2, '\0');  // stream
    h.append(reinterpret_cast<const char*>(&reserved), 2);
    h.append(4, '\0');  // length 0
    return h;
  };
  FrameParser p1;
  p1.feed(make(9, 0, 0));
  EXPECT_EQ(p1.next().error, "bad frame type");
  FrameParser p2;
  p2.feed(make(2, 7, 0));
  EXPECT_EQ(p2.next().error, "bad data format");
  FrameParser p3;
  p3.feed(make(3, 0, 0xBEEF));
  EXPECT_EQ(p3.next().error, "bad frame: nonzero reserved field");
  FrameParser p4;
  p4.feed(make(3, 1, 0));
  EXPECT_EQ(p4.next().error, "bad frame: nonzero format on non-DATA frame");
}

TEST(HelloDecodeTest, RejectsMalformedPayloads) {
  const HelloConfig good = sample_hello();
  HelloConfig out;

  // Truncation at every byte boundary fails cleanly.
  const std::string full = encode_hello(0, good);
  const std::string payload = full.substr(kFrameHeaderBytes);
  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    HelloConfig t;
    EXPECT_NE(decode_hello(payload.substr(0, cut), t), "") << "cut=" << cut;
  }
  EXPECT_EQ(decode_hello(payload, out), "");

  auto reject = [&](auto mutate, const std::string& want) {
    HelloConfig h = sample_hello();
    mutate(h);
    HelloConfig parsed;
    const std::string p = encode_hello(0, h).substr(kFrameHeaderBytes);
    EXPECT_EQ(decode_hello(p, parsed), want);
  };
  reject([](HelloConfig& h) { h.name = "bad name"; },
         "bad hello: stream name has characters outside [A-Za-z0-9_.:-]");
  reject([](HelloConfig& h) { h.name = "../../etc/passwd"; },
         "bad hello: stream name has characters outside [A-Za-z0-9_.:-]");
  reject([](HelloConfig& h) { h.name.clear(); },
         "bad hello: stream name length out of range");
  reject([](HelloConfig& h) { h.width_us = 0; },
         "bad hello: width_us must be positive");
  reject([](HelloConfig& h) { h.lag_us = -1; },
         "bad hello: lag_us must be positive");
  reject([](HelloConfig& h) { h.nstar = 0.0; },
         "bad hello: nstar must be positive");
  reject([](HelloConfig& h) { h.service_us = {{1u << 20, 100.0}}; },
         "bad hello: class id too large");
  reject(
      [](HelloConfig& h) {
        h.work_unit_us = 0.0;
        h.service_us = {{0, 0.0}};
      },
      "bad hello: need work_unit_us or a positive service time");

  // Trailing garbage after a valid payload is rejected too.
  EXPECT_EQ(decode_hello(payload + "x", out), "bad hello: trailing bytes");
}

TEST(DataDecodeTest, RejectsRaggedRawPayload) {
  trace::RequestColumns cols;
  EXPECT_EQ(decode_raw_records(std::string(31, 'x'), cols),
            "bad data: payload not a whole number of 32-byte records");
  EXPECT_EQ(decode_raw_records(std::string(33, 'x'), cols),
            "bad data: payload not a whole number of 32-byte records");
  EXPECT_EQ(decode_raw_records("", cols), "");
  EXPECT_EQ(cols.size(), 0u);
}

}  // namespace
}  // namespace tbd::serve
