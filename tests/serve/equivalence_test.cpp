// The serve path must not change a single byte of the analysis: replaying a
// log through SendClient -> ServeDaemon has to produce exactly the event
// stream, episodes, and durable mirror that the same pushes produce
// in-process — and batch detect_bottlenecks on the same calibration. The
// binary registers twice in ctest (TBD_THREADS=1 and =4): the daemon drains
// DATA on the shared pool, so equality at both counts pins the
// one-connection-one-strand determinism contract.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <sys/stat.h>
#include <utility>
#include <vector>

#include "core/detector.h"
#include "core/streaming_detector.h"
#include "core/streaming_telemetry.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "serve/client.h"
#include "serve/daemon.h"
#include "serve/frame.h"
#include "trace/log_io.h"
#include "trace/request_log_file.h"
#include "trace/segment_log.h"

namespace tbd::serve {
namespace {

constexpr const char* kTestData = TBD_SOURCE_DIR "/scripts/testdata/";
constexpr double kNStarOverride = 3.0;  // same knob as the tier-1 smoke

std::string slurp(const std::string& path) {
  std::ifstream in{path};
  EXPECT_TRUE(in) << "cannot open " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string format_ms(std::int64_t us) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%g", static_cast<double>(us) / 1000.0);
  return buf;
}

/// A fresh scratch directory per test run — the t1 and t4 registrations of
/// this binary may execute concurrently under ctest -j.
struct Scratch {
  std::string root;
  Scratch() {
    std::string tmpl = ::testing::TempDir() + "serve_equiv_XXXXXX";
    std::vector<char> buf{tmpl.begin(), tmpl.end()};
    buf.push_back('\0');
    root = ::mkdtemp(buf.data());
    EXPECT_FALSE(root.empty());
    ::mkdir((root + "/events").c_str(), 0755);
    ::mkdir((root + "/records").c_str(), 0755);
  }
  [[nodiscard]] std::string path(const std::string& leaf) const {
    return root + "/" + leaf;
  }
};

/// The tbd_send calibration pass on tiny_log.csv, shared by every test:
/// per-server logs, the merged departure-order replay, and one frozen
/// HelloConfig per server.
struct Workload {
  std::map<trace::ServerIndex, trace::RequestLog> by_server;
  trace::RequestLog merged;
  TimePoint t_min = TimePoint::max();
  TimePoint t_max;
  std::vector<HelloConfig> hellos;                      // handle == index
  std::vector<std::vector<core::Episode>> batch_episodes;  // same order

  Workload() {
    const auto loaded =
        trace::load_request_log(std::string(kTestData) + "tiny_log.csv");
    EXPECT_TRUE(loaded.ok) << loaded.error;
    merged = loaded.records;
    for (const auto& r : merged) {
      by_server[r.server].push_back(r);
      t_min = std::min(t_min, r.arrival);
      t_max = std::max(t_max, r.departure);
    }
    std::stable_sort(merged.begin(), merged.end(),
                     [](const trace::RequestRecord& a,
                        const trace::RequestRecord& b) {
                       return a.departure < b.departure;
                     });

    const Duration width = Duration::millis(50);
    const auto spec = core::IntervalSpec::over(t_min, t_max, width);
    for (const auto& [server, log] : by_server) {
      const auto table = core::estimate_service_times(log);
      auto detection = core::detect_bottlenecks(log, spec, table);
      detection.nstar.n_star = kNStarOverride;
      detection.nstar.converged = true;

      const auto states = core::classify_intervals(
          detection.load, detection.throughput, detection.nstar, {});
      batch_episodes.push_back(
          core::extract_episodes(states, detection.load, spec));

      HelloConfig hello;
      hello.name = "server" + std::to_string(server);
      hello.start_us = t_min.micros();
      hello.width_us = width.micros();
      hello.lag_us = 5'000'000;
      hello.nstar = detection.nstar.n_star;
      hello.tpmax = detection.nstar.tp_max;
      hello.work_unit_us = 0.0;
      for (trace::ClassId c = 0; c < table.classes(); ++c) {
        hello.service_us.emplace_back(c, table.service_us(c));
      }
      hellos.push_back(std::move(hello));
    }
  }

  /// The replay as tbd_send frames it: maximal same-server runs of the
  /// merged departure order, capped at `batch` records per DATA frame.
  [[nodiscard]] std::vector<std::pair<std::uint16_t, trace::RequestLog>> runs(
      std::size_t batch) const {
    std::vector<std::uint16_t> handle_of;
    for (const auto& [server, log] : by_server) {
      if (server >= handle_of.size()) handle_of.resize(server + 1, 0);
      handle_of[server] = static_cast<std::uint16_t>(
          std::distance(by_server.begin(), by_server.find(server)));
    }
    std::vector<std::pair<std::uint16_t, trace::RequestLog>> out;
    for (const auto& r : merged) {
      const std::uint16_t handle = handle_of[r.server];
      if (out.empty() || out.back().first != handle ||
          out.back().second.size() >= batch) {
        out.emplace_back(handle, trace::RequestLog{});
      }
      out.back().second.push_back(r);
    }
    return out;
  }
};

/// What the daemon must reproduce: the same HELLO configs and push batches
/// run straight into StreamingDetector + StreamingTelemetry, single thread.
struct Reference {
  std::string shared_events;
  std::vector<std::string> mirror_events;               // per handle
  std::vector<std::vector<core::Episode>> episodes;     // per handle

  Reference(const Workload& wl, std::size_t batch) {
    obs::Registry registry;
    std::ostringstream shared_out;
    obs::EventLog::Options eo;
    eo.registry = &registry;
    const std::vector<std::pair<std::string, std::string>> shared_meta = {
        {"tool", "tbd_serve"}};
    obs::EventLog shared{&shared_out, eo, shared_meta};

    // Replicates ServeDaemon::make_stream from the same HelloConfig.
    struct Stream {
      std::unique_ptr<std::ostringstream> mirror_out;
      std::unique_ptr<obs::EventLog> mirror;
      std::unique_ptr<core::StreamingDetector> detector;
      std::unique_ptr<core::StreamingTelemetry> telemetry;
    };
    std::vector<Stream> streams;
    for (const auto& hello : wl.hellos) {
      Stream s;
      core::StreamingDetector::Config dc;
      dc.width = Duration::micros(hello.width_us);
      dc.lag = Duration::micros(hello.lag_us);
      dc.detector.idle_load = hello.idle_load;
      dc.detector.poi_tput_frac = hello.poi_tput_frac;
      dc.detector.throughput.work_unit_us = hello.work_unit_us;
      core::NStarResult nstar;
      nstar.n_star = hello.nstar;
      nstar.tp_max = hello.tpmax;
      nstar.converged = true;
      core::ServiceTimeTable table;
      for (const auto& [class_id, service] : hello.service_us) {
        table.set(class_id, service);
      }
      s.detector = std::make_unique<core::StreamingDetector>(
          TimePoint::from_micros(hello.start_us), dc, nstar, table);
      s.mirror_out = std::make_unique<std::ostringstream>();
      const std::vector<std::pair<std::string, std::string>> mirror_meta = {
          {"tool", "tbd_serve"},
          {"stream", hello.name},
          {"width_ms", format_ms(hello.width_us)},
          {"lag_ms", format_ms(hello.lag_us)}};
      s.mirror = std::make_unique<obs::EventLog>(s.mirror_out.get(), eo,
                                                 mirror_meta);
      s.telemetry = std::make_unique<core::StreamingTelemetry>(
          *s.detector, core::StreamingTelemetry::Options{hello.name},
          registry, &shared, s.mirror.get());
      streams.push_back(std::move(s));
    }

    for (const auto& [handle, records] : wl.runs(batch)) {
      auto& s = streams[handle];
      s.detector->push_batch(records);
      s.telemetry->add_records(records.size());
      s.telemetry->sync();
    }
    for (auto& s : streams) {  // BYE in handle order
      s.detector->finish();
      s.telemetry->sync();
      episodes.push_back(s.detector->episodes());
      mirror_events.push_back(s.mirror_out->str());
    }
    shared_events = shared_out.str();
  }
};

bool episodes_bitwise_equal(const std::vector<core::Episode>& a,
                            const std::vector<core::Episode>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].start.micros() != b[i].start.micros()) return false;
    if (a[i].duration.micros() != b[i].duration.micros()) return false;
    if (std::bit_cast<std::uint64_t>(a[i].peak_load) !=
        std::bit_cast<std::uint64_t>(b[i].peak_load)) {
      return false;
    }
    if (a[i].contains_freeze != b[i].contains_freeze) return false;
  }
  return true;
}

enum class Wire { kRaw, kV1, kV2 };

/// Replays the workload into a fresh daemon over one connection and returns
/// its summaries in handle order. The daemon journals to scratch.
std::vector<StreamSummary> replay(const Workload& wl, const Scratch& scratch,
                                  obs::Registry& registry, std::size_t batch,
                                  Wire wire, bool mirror_records) {
  DaemonOptions options;
  options.expose_http = false;
  options.tick_ms = 2.0;
  options.registry = &registry;
  options.events_path = scratch.path("events.ndjson");
  options.events_dir = scratch.path("events");
  if (mirror_records) options.record_dir = scratch.path("records");
  ServeDaemon daemon{options};
  EXPECT_TRUE(daemon.start()) << daemon.error();

  SendClient client;
  EXPECT_TRUE(client.connect("127.0.0.1", daemon.ingest_port()));
  for (std::size_t h = 0; h < wl.hellos.size(); ++h) {
    EXPECT_TRUE(client.send_hello(static_cast<std::uint16_t>(h),
                                  wl.hellos[h]))
        << client.error();
  }
  for (const auto& [handle, records] : wl.runs(batch)) {
    bool ok = false;
    switch (wire) {
      case Wire::kRaw:
        ok = client.send_records(handle, records);
        break;
      case Wire::kV1:
        ok = client.send_encoded(handle,
                                 trace::encode_request_log_bin(records));
        break;
      case Wire::kV2:
        ok = client.send_encoded(handle,
                                 trace::encode_request_log_v2(records));
        break;
    }
    EXPECT_TRUE(ok) << client.error();
  }
  for (std::size_t h = 0; h < wl.hellos.size(); ++h) {
    EXPECT_TRUE(client.send_bye(static_cast<std::uint16_t>(h)))
        << client.error();
  }
  EXPECT_TRUE(client.finish()) << client.error();
  EXPECT_TRUE(daemon.wait_idle(10.0));
  auto summaries = daemon.stream_summaries();
  daemon.stop();
  EXPECT_EQ(daemon.protocol_errors(), 0u);
  return summaries;
}

TEST(ServeEquivalenceTest, DaemonReplayMatchesDirectReferenceByteForByte) {
  const Workload wl;
  ASSERT_EQ(wl.hellos.size(), 2u);
  const std::size_t batch = 8;  // many small DATA frames
  const Reference ref{wl, batch};

  Scratch scratch;
  obs::Registry registry;
  const auto summaries =
      replay(wl, scratch, registry, batch, Wire::kRaw, /*mirror_records=*/true);

  // Shared journal: byte-identical to the in-process reference.
  EXPECT_EQ(slurp(scratch.path("events.ndjson")), ref.shared_events);

  // Per-stream mirrors: byte-identical too (and independent of how other
  // streams would interleave on other connections).
  ASSERT_EQ(summaries.size(), wl.hellos.size());
  std::size_t total_episodes = 0;
  for (std::size_t h = 0; h < summaries.size(); ++h) {
    const auto& s = summaries[h];
    EXPECT_EQ(s.name, wl.hellos[h].name);
    EXPECT_TRUE(s.finished);
    EXPECT_EQ(s.dropped, 0u);
    EXPECT_EQ(slurp(scratch.path("events/" + s.name + ".ndjson")),
              ref.mirror_events[h]);

    // Episodes: streaming == reference == batch detect_bottlenecks, bitwise.
    EXPECT_TRUE(episodes_bitwise_equal(s.episodes, ref.episodes[h]))
        << s.name;
    EXPECT_TRUE(episodes_bitwise_equal(s.episodes, wl.batch_episodes[h]))
        << s.name;
    total_episodes += s.episodes.size();
  }
  EXPECT_GE(total_episodes, 1u);  // the tiny log's burst must register

  // Durable mirror: decoding each stream's .tbd2 returns exactly the rows
  // pushed for it, in push order.
  for (std::size_t h = 0; h < summaries.size(); ++h) {
    const auto decoded = trace::load_request_log_v2(
        scratch.path("records/" + summaries[h].name + ".tbd2"),
        trace::DecodeMode::kStrict);
    ASSERT_TRUE(decoded.ok) << decoded.error;
    trace::RequestLog expect;
    for (const auto& [handle, records] : wl.runs(batch)) {
      if (handle != h) continue;
      expect.insert(expect.end(), records.begin(), records.end());
    }
    ASSERT_EQ(decoded.records.size(), expect.size());
    const auto view = decoded.records.view();
    for (std::size_t i = 0; i < expect.size(); ++i) {
      const auto r = view.record(i);
      EXPECT_EQ(r.server, expect[i].server);
      EXPECT_EQ(r.class_id, expect[i].class_id);
      EXPECT_EQ(r.arrival.micros(), expect[i].arrival.micros());
      EXPECT_EQ(r.departure.micros(), expect[i].departure.micros());
      EXPECT_EQ(r.txn, expect[i].txn);
    }
  }
}

TEST(ServeEquivalenceTest, EncodedWireFormatsMatchRawByteForByte) {
  // The same runs shipped as raw rows, TBDR v1 blobs, and TBDR v2 segment
  // logs must be indistinguishable downstream: identical shared journal
  // bytes, identical episodes.
  const Workload wl;
  const std::size_t batch = 16;
  const Reference ref{wl, batch};

  for (const Wire wire : {Wire::kRaw, Wire::kV1, Wire::kV2}) {
    Scratch scratch;
    obs::Registry registry;
    const auto summaries = replay(wl, scratch, registry, batch, wire,
                                  /*mirror_records=*/false);
    EXPECT_EQ(slurp(scratch.path("events.ndjson")), ref.shared_events)
        << "wire format " << static_cast<int>(wire);
    ASSERT_EQ(summaries.size(), ref.episodes.size());
    for (std::size_t h = 0; h < summaries.size(); ++h) {
      EXPECT_TRUE(
          episodes_bitwise_equal(summaries[h].episodes, ref.episodes[h]))
          << "wire format " << static_cast<int>(wire) << " stream "
          << summaries[h].name;
    }
  }
}

TEST(ServeEquivalenceTest, BatchSizeDoesNotChangeTheBytes) {
  // Framing is transport, not analysis: 1-record frames and one giant frame
  // produce the same journal as the 8-record reference.
  const Workload wl;
  const Reference ref{wl, 8};
  for (const std::size_t batch : {std::size_t{1}, std::size_t{100000}}) {
    Scratch scratch;
    obs::Registry registry;
    (void)replay(wl, scratch, registry, batch, Wire::kRaw,
                 /*mirror_records=*/false);
    EXPECT_EQ(slurp(scratch.path("events.ndjson")), ref.shared_events)
        << "batch " << batch;
  }
}

}  // namespace
}  // namespace tbd::serve
