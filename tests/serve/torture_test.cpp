// Protocol torture tests: every malformed or hostile input a connection can
// produce must end as a clean per-connection error — an ERROR frame, a
// closed socket, a bumped counter — while every OTHER connection and its
// streams keep working undisturbed.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "serve/client.h"
#include "serve/daemon.h"
#include "serve/frame.h"

namespace tbd::serve {
namespace {

HelloConfig hello_named(const std::string& name) {
  HelloConfig h;
  h.name = name;
  h.start_us = 0;
  h.width_us = 50'000;
  h.lag_us = 200'000;
  h.nstar = 5.0;
  h.tpmax = 1e6;
  h.service_us = {{0, 1000.0}};
  return h;
}

trace::RequestRecord rec(std::int64_t a, std::int64_t d) {
  trace::RequestRecord r;
  r.server = 0;
  r.class_id = 0;
  r.arrival = TimePoint::from_micros(a);
  r.departure = TimePoint::from_micros(d);
  return r;
}

/// A raw blocking socket to the daemon — for bytes SendClient refuses to
/// produce.
class RawConn {
 public:
  explicit RawConn(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ = ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                           sizeof addr) == 0;
  }
  ~RawConn() { close(); }

  [[nodiscard]] bool connected() const { return connected_; }

  void send_bytes(std::string_view bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n =
          ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
      if (n <= 0) return;  // peer closed mid-write: fine for torture input
      off += static_cast<std::size_t>(n);
    }
  }

  /// Reads until EOF; returns everything the daemon sent.
  std::string drain() {
    std::string out;
    char buf[4096];
    for (;;) {
      const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
      if (n <= 0) break;
      out.append(buf, static_cast<std::size_t>(n));
    }
    return out;
  }

  /// The message of the first ERROR frame in `bytes` ("" if none).
  static std::string error_in(const std::string& bytes) {
    FrameParser parser;
    parser.feed(bytes);
    for (;;) {
      auto result = parser.next();
      if (result.status != FrameParser::Status::kFrame) return "";
      if (result.header.type == FrameType::kError) {
        return std::string(result.payload);
      }
    }
  }

  /// Half-close: tells the daemon we are done sending, so it processes the
  /// tail and closes — after which drain() returns.
  void half_close() {
    if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
  }

  void close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

/// Daemon fixture: fresh registry, no HTTP, fast pump tick.
struct DaemonFixture {
  obs::Registry registry;
  DaemonOptions options;
  std::unique_ptr<ServeDaemon> daemon;

  explicit DaemonFixture(
      const std::function<void(DaemonOptions&)>& tweak = {}) {
    options.expose_http = false;
    options.tick_ms = 2.0;
    options.drain_grace_s = 2.0;
    options.registry = &registry;
    if (tweak) tweak(options);
    daemon = std::make_unique<ServeDaemon>(options);
    EXPECT_TRUE(daemon->start()) << daemon->error();
  }

  /// Spins until `pred` holds (the ingest/pump threads run on their own
  /// clocks) or the deadline passes.
  bool eventually(const std::function<bool()>& pred, double timeout_s = 5.0) {
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(timeout_s));
    while (!pred()) {
      if (std::chrono::steady_clock::now() > deadline) return false;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return true;
  }
};

/// Runs a well-formed replay on `survivor` while the torture happens, then
/// asserts it completed untouched.
void assert_survivor_clean(ServeDaemon& daemon, SendClient& survivor,
                           std::uint16_t handle) {
  std::vector<trace::RequestRecord> tail;
  for (std::int64_t t = 0; t < 500'000; t += 10'000) {
    tail.push_back(rec(t, t + 1000));
  }
  ASSERT_TRUE(survivor.send_records(handle, tail)) << survivor.error();
  ASSERT_TRUE(survivor.send_bye(handle)) << survivor.error();
  ASSERT_TRUE(survivor.finish()) << survivor.error();
  ASSERT_TRUE(daemon.wait_idle(5.0));
  bool found = false;
  for (const auto& s : daemon.stream_summaries()) {
    if (s.name != "survivor") continue;
    found = true;
    EXPECT_EQ(s.records, tail.size());
    EXPECT_EQ(s.dropped, 0u);
    EXPECT_TRUE(s.finished);
    EXPECT_GT(s.intervals, 0u);
  }
  EXPECT_TRUE(found);
}

TEST(ServeTortureTest, GarbageBeforeHelloGetsErrorFrameAndClose) {
  DaemonFixture fx;
  SendClient survivor;
  ASSERT_TRUE(survivor.connect("127.0.0.1", fx.daemon->ingest_port()));
  ASSERT_TRUE(survivor.send_hello(0, hello_named("survivor")));

  RawConn bad{fx.daemon->ingest_port()};
  ASSERT_TRUE(bad.connected());
  bad.send_bytes("GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
  const std::string reply = bad.drain();  // daemon closes after the ERROR
  EXPECT_EQ(RawConn::error_in(reply), "bad frame magic");
  EXPECT_GE(fx.daemon->protocol_errors(), 1u);

  assert_survivor_clean(*fx.daemon, survivor, 0);
}

TEST(ServeTortureTest, OversizedLengthPrefixRejectedFromHeader) {
  DaemonFixture fx;
  RawConn bad{fx.daemon->ingest_port()};
  ASSERT_TRUE(bad.connected());
  std::string header;
  header.push_back(static_cast<char>(0x54));
  header.push_back(static_cast<char>(0x46));
  header.push_back(2);  // DATA
  header.push_back(0);
  header.append(4, '\0');
  const std::uint32_t huge = 0xFFFFFFFFu;
  header.append(reinterpret_cast<const char*>(&huge), 4);
  bad.send_bytes(header);
  EXPECT_EQ(RawConn::error_in(bad.drain()), "oversized frame length");
  EXPECT_TRUE(fx.eventually([&] { return fx.daemon->protocol_errors() >= 1; }));
}

TEST(ServeTortureTest, TruncatedFrameThenDisconnectCountsMidFrameError) {
  DaemonFixture fx;
  {
    RawConn bad{fx.daemon->ingest_port()};
    ASSERT_TRUE(bad.connected());
    const std::string frame = encode_hello(0, hello_named("halfway"));
    bad.send_bytes(frame.substr(0, frame.size() / 2));
    // Disconnect mid-frame.
  }
  EXPECT_TRUE(fx.eventually([&] { return fx.daemon->protocol_errors() >= 1; }));
  // The half-sent HELLO never created a stream.
  EXPECT_TRUE(fx.daemon->stream_summaries().empty());
}

TEST(ServeTortureTest, MidFrameDisconnectStillFinishesEarlierStreams) {
  DaemonFixture fx;
  {
    RawConn conn{fx.daemon->ingest_port()};
    ASSERT_TRUE(conn.connected());
    conn.send_bytes(encode_hello(0, hello_named("abandoned")));
    std::vector<trace::RequestRecord> records;
    for (std::int64_t t = 0; t < 300'000; t += 10'000) {
      records.push_back(rec(t, t + 1000));
    }
    conn.send_bytes(encode_raw_records(0, records));
    conn.send_bytes(encode_heartbeat().substr(0, 5));  // half a header
  }
  // The records that made it through are processed and the stream is
  // finish()ed despite the dirty close.
  EXPECT_TRUE(fx.eventually([&] {
    for (const auto& s : fx.daemon->stream_summaries()) {
      if (s.name == "abandoned" && s.finished && s.records == 30) return true;
    }
    return false;
  }));
  EXPECT_GE(fx.daemon->protocol_errors(), 1u);
}

TEST(ServeTortureTest, DuplicateStreamIdAcrossConnectionsRejectsSecond) {
  DaemonFixture fx;
  SendClient survivor;
  ASSERT_TRUE(survivor.connect("127.0.0.1", fx.daemon->ingest_port()));
  ASSERT_TRUE(survivor.send_hello(0, hello_named("survivor")));

  RawConn dup{fx.daemon->ingest_port()};
  ASSERT_TRUE(dup.connected());
  dup.send_bytes(encode_hello(0, hello_named("survivor")));
  EXPECT_EQ(RawConn::error_in(dup.drain()),
            "duplicate stream id: survivor");

  // The name's owner is untouched and still works.
  assert_survivor_clean(*fx.daemon, survivor, 0);
}

TEST(ServeTortureTest, DuplicateHandleOnOneConnectionRejected) {
  DaemonFixture fx;
  RawConn conn{fx.daemon->ingest_port()};
  ASSERT_TRUE(conn.connected());
  conn.send_bytes(encode_hello(3, hello_named("a")));
  conn.send_bytes(encode_hello(3, hello_named("b")));
  EXPECT_EQ(RawConn::error_in(conn.drain()), "duplicate stream handle 3");
}

TEST(ServeTortureTest, DataBeforeHelloRejected) {
  DaemonFixture fx;
  RawConn conn{fx.daemon->ingest_port()};
  ASSERT_TRUE(conn.connected());
  conn.send_bytes(
      encode_raw_records(0, std::vector<trace::RequestRecord>{rec(0, 10)}));
  EXPECT_EQ(RawConn::error_in(conn.drain()),
            "unknown stream handle (DATA before HELLO?)");
}

TEST(ServeTortureTest, BadHelloPayloadRejectedWithStableMessage) {
  DaemonFixture fx;
  RawConn conn{fx.daemon->ingest_port()};
  ASSERT_TRUE(conn.connected());
  HelloConfig h = hello_named("ok");
  h.name = "../escape";
  conn.send_bytes(encode_hello(0, h));
  EXPECT_EQ(RawConn::error_in(conn.drain()),
            "bad hello: stream name has characters outside [A-Za-z0-9_.:-]");
}

TEST(ServeTortureTest, CorruptDataPayloadFailsOnPumpWithoutHurtingOthers) {
  DaemonFixture fx;
  SendClient survivor;
  ASSERT_TRUE(survivor.connect("127.0.0.1", fx.daemon->ingest_port()));
  ASSERT_TRUE(survivor.send_hello(0, hello_named("survivor")));

  RawConn bad{fx.daemon->ingest_port()};
  ASSERT_TRUE(bad.connected());
  bad.send_bytes(encode_hello(0, hello_named("corrupt")));
  // format=1 (encoded log) with garbage bytes: the frame parses fine, the
  // decode fails on the pump strand, and the error routes back through the
  // ingest thread as an ERROR frame.
  bad.send_bytes(encode_encoded_log(0, "this is not a TBDR stream"));
  EXPECT_EQ(RawConn::error_in(bad.drain()),
            "bad data: encoded payload without TBDR magic");
  EXPECT_TRUE(fx.eventually([&] { return fx.daemon->protocol_errors() >= 1; }));

  assert_survivor_clean(*fx.daemon, survivor, 0);
}

TEST(ServeTortureTest, ByeTwiceAndDataAfterByeRejected) {
  DaemonFixture fx;
  {
    RawConn conn{fx.daemon->ingest_port()};
    ASSERT_TRUE(conn.connected());
    conn.send_bytes(encode_hello(0, hello_named("once")));
    conn.send_bytes(encode_bye(0));
    conn.send_bytes(encode_bye(0));
    EXPECT_EQ(RawConn::error_in(conn.drain()), "duplicate BYE on stream once");
  }
  RawConn conn{fx.daemon->ingest_port()};
  ASSERT_TRUE(conn.connected());
  conn.send_bytes(encode_hello(0, hello_named("late")));
  conn.send_bytes(encode_bye(0));
  conn.send_bytes(
      encode_raw_records(0, std::vector<trace::RequestRecord>{rec(0, 10)}));
  EXPECT_EQ(RawConn::error_in(conn.drain()), "DATA after BYE on stream late");
}

TEST(ServeTortureTest, InterleavedSlowWritersBothComplete) {
  // Two connections dribbling bytes one at a time from separate threads:
  // the poll loop must reassemble both frame streams without confusing the
  // parsers or stalling on either.
  DaemonFixture fx;
  auto slow_replay = [&](const std::string& name) {
    RawConn conn{fx.daemon->ingest_port()};
    ASSERT_TRUE(conn.connected());
    std::string bytes = encode_hello(0, hello_named(name));
    std::vector<trace::RequestRecord> records;
    for (std::int64_t t = 0; t < 400'000; t += 10'000) {
      records.push_back(rec(t, t + 1000));
    }
    bytes += encode_raw_records(0, records);
    bytes += encode_bye(0);
    for (std::size_t i = 0; i < bytes.size(); ++i) {
      conn.send_bytes(std::string_view{bytes.data() + i, 1});
      if (i % 64 == 0) std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    conn.half_close();  // clean EOF after our BYE
    conn.drain();       // wait for the daemon to process the tail and close
  };
  std::thread t1{slow_replay, "slow_a"};
  std::thread t2{slow_replay, "slow_b"};
  t1.join();
  t2.join();
  ASSERT_TRUE(fx.daemon->wait_idle(5.0));
  std::size_t finished = 0;
  for (const auto& s : fx.daemon->stream_summaries()) {
    EXPECT_TRUE(s.finished) << s.name;
    EXPECT_EQ(s.records, 40u) << s.name;
    EXPECT_EQ(s.dropped, 0u) << s.name;
    ++finished;
  }
  EXPECT_EQ(finished, 2u);
  EXPECT_EQ(fx.daemon->protocol_errors(), 0u);
}

TEST(ServeTortureTest, IdleSealDeadlineSealsSilentStreamWithoutFinishing) {
  DaemonFixture fx{[](DaemonOptions& o) {
    o.default_idle_seal_us = 50'000;  // 50ms of wall-clock silence
  }};
  SendClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", fx.daemon->ingest_port()));
  HelloConfig h = hello_named("quiet");
  h.lag_us = 60'000'000;  // a huge lag: nothing seals on its own
  ASSERT_TRUE(client.send_hello(0, h));
  std::vector<trace::RequestRecord> records;
  for (std::int64_t t = 0; t < 300'000; t += 10'000) {
    records.push_back(rec(t, t + 1000));
  }
  ASSERT_TRUE(client.send_records(0, records));

  // ... then silence. The idle-seal clock must fire, seal the open cells,
  // and leave the stream alive (not finished).
  EXPECT_TRUE(fx.eventually([&] { return fx.daemon->idle_seals() >= 1; }));
  EXPECT_TRUE(fx.eventually([&] {
    for (const auto& s : fx.daemon->stream_summaries()) {
      if (s.name == "quiet") return s.open_intervals == 0 && !s.finished;
    }
    return false;
  }));
  ASSERT_TRUE(client.send_bye(0));
  ASSERT_TRUE(client.finish()) << client.error();
  ASSERT_TRUE(fx.daemon->wait_idle(5.0));
  for (const auto& s : fx.daemon->stream_summaries()) {
    if (s.name == "quiet") {
      EXPECT_TRUE(s.finished);
      EXPECT_EQ(s.records, records.size());
    }
  }
}

TEST(ServeTortureTest, IdleStreamEvictedAndNameReleased) {
  DaemonFixture fx{[](DaemonOptions& o) { o.evict_idle_us = 50'000; }};
  SendClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", fx.daemon->ingest_port()));
  ASSERT_TRUE(client.send_hello(0, hello_named("ghost")));
  ASSERT_TRUE(client.send_records(
      0, std::vector<trace::RequestRecord>{rec(0, 1000)}));

  EXPECT_TRUE(fx.eventually([&] { return fx.daemon->evicted_streams() >= 1; }));
  // The evicted name can be claimed again on a new connection.
  SendClient reuse;
  ASSERT_TRUE(reuse.connect("127.0.0.1", fx.daemon->ingest_port()));
  ASSERT_TRUE(reuse.send_hello(0, hello_named("ghost")));
  ASSERT_TRUE(reuse.send_bye(0));
  EXPECT_TRUE(reuse.finish()) << reuse.error();
}

TEST(ServeTortureTest, HeartbeatDefersEvictionButNotIdleSeal) {
  DaemonFixture fx{[](DaemonOptions& o) {
    o.evict_idle_us = 150'000;
    o.default_idle_seal_us = 40'000;
  }};
  SendClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", fx.daemon->ingest_port()));
  HelloConfig h = hello_named("beating");
  h.lag_us = 60'000'000;
  ASSERT_TRUE(client.send_hello(0, h));
  ASSERT_TRUE(client.send_records(
      0, std::vector<trace::RequestRecord>{rec(0, 100'000)}));

  // Heartbeat for ~400ms: eviction must not fire, the idle-seal must.
  for (int i = 0; i < 20; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ASSERT_TRUE(client.send_heartbeat());
  }
  EXPECT_EQ(fx.daemon->evicted_streams(), 0u);
  EXPECT_GE(fx.daemon->idle_seals(), 1u);
  ASSERT_TRUE(client.send_bye(0));
  EXPECT_TRUE(client.finish()) << client.error();
}

}  // namespace
}  // namespace tbd::serve
