#include "obs/manifest.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "util/thread_pool.h"

namespace tbd::obs {
namespace {

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(json_escape("a\tb"), "a\\tb");
  EXPECT_EQ(json_escape(std::string{"a\x01"
                                    "b"}),
            "a\\u0001b");
}

TEST(ManifestTest, GitDescribeIsNonEmpty) {
  ASSERT_NE(git_describe(), nullptr);
  EXPECT_NE(std::string{git_describe()}, "");
}

TEST(ManifestTest, JsonCarriesConfigMetricsAndRollup) {
  Registry reg;
  reg.counter("tbd_test_total").add(5);
  Tracer tracer;  // never enabled: rollup is empty, dropped 0
  RunInfo info;
  info.tool = "unit_test";
  info.config.emplace_back("width_ms", "50");
  info.config.emplace_back("note", "has \"quotes\"");
  const std::string json = run_manifest_json(info, reg, tracer);
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"tool\": \"unit_test\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"git\": \""), std::string::npos) << json;
  EXPECT_NE(json.find("\"threads\": "), std::string::npos) << json;
  EXPECT_NE(json.find("\"width_ms\": \"50\""), std::string::npos) << json;
  EXPECT_NE(json.find("has \\\"quotes\\\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"tbd_test_total\": 5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"span_rollup\": {}"), std::string::npos) << json;
  EXPECT_NE(json.find("\"spans_dropped\": 0"), std::string::npos) << json;
}

TEST(ManifestTest, RollupIncludesRecordedSpans) {
  auto& tracer = Tracer::global();
  tracer.disable();
  tracer.clear();
  tracer.enable();
  {
    TBD_SPAN("manifest.stage");
  }
  Registry reg;
  const std::string json = run_manifest_json(RunInfo{"t", {}}, reg, tracer);
  EXPECT_NE(json.find("\"manifest.stage\": {\"count\": 1"), std::string::npos)
      << json;
  tracer.disable();
  tracer.clear();
}

TEST(ManifestTest, WriteRunManifestRoundTrips) {
  Registry reg;
  Tracer tracer;
  const std::string path = ::testing::TempDir() + "tbd_manifest_test.json";
  ASSERT_TRUE(write_run_manifest(path, RunInfo{"t", {}}, reg, tracer));
  std::ifstream in{path};
  ASSERT_TRUE(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), run_manifest_json(RunInfo{"t", {}}, reg, tracer));
  std::remove(path.c_str());
}

TEST(ManifestTest, PublishPoolStatsRegistersPoolMetrics) {
  // Drive the shared pool once so the counters are live, then publish.
  std::vector<int> out(4, 0);
  shared_pool().parallel_for_indexed(out.size(),
                                     [&](std::size_t i) { out[i] = 1; });
  Registry reg;
  publish_pool_stats(reg);
  // Every index executed on exactly one of the two paths (pooled or
  // serial-inline; with TBD_THREADS=1 the pool fans nothing out and `jobs`
  // stays 0, so only the combined task count is portable).
  const auto tasks = reg.counter("tbd_pool_tasks_total").value() +
                     reg.counter("tbd_pool_tasks_inline_total").value();
  EXPECT_GE(tasks, out.size());
  EXPECT_GE(reg.gauge("tbd_pool_threads").value(), 1.0);
}

}  // namespace
}  // namespace tbd::obs
