#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace tbd::obs {
namespace {

TEST(CounterTest, AddAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add(3);
  c.inc();
  EXPECT_EQ(c.value(), 4u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(CounterTest, StripedWritesSumAcrossThreads) {
  Counter c;
  constexpr int kThreads = 4;
  constexpr int kIncs = 10'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kIncs; ++i) c.inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kIncs);
}

TEST(GaugeTest, SetAddAndHighWater) {
  Gauge g;
  g.set(2.5);
  g.add(1.0);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.update_max(2.0);  // below current: no change
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.update_max(10.0);
  EXPECT_DOUBLE_EQ(g.value(), 10.0);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

// Satellite regression: exact "le" edge behavior. A value equal to a bound
// lands in that bound's bucket; the first value past it lands in the next;
// values beyond the last bound land in the overflow bucket.
TEST(HistogramTest, BucketEdges) {
  Histogram h{{1.0, 2.0}};
  h.observe(1.0);        // == bound 0 -> bucket 0 (le semantics)
  h.observe(1.0000001);  // just past bound 0 -> bucket 1
  h.observe(2.0);        // == bound 1 -> bucket 1
  h.observe(2.5);        // past last bound -> overflow
  const auto snap = h.snapshot();
  ASSERT_EQ(snap.counts.size(), 3u);  // bounds.size() + 1
  EXPECT_EQ(snap.counts[0], 1u);
  EXPECT_EQ(snap.counts[1], 2u);
  EXPECT_EQ(snap.counts[2], 1u);
  EXPECT_EQ(snap.count, 4u);
  EXPECT_NEAR(snap.sum, 6.5000001, 1e-9);
  EXPECT_EQ(snap.bounds, (std::vector<double>{1.0, 2.0}));
}

TEST(HistogramTest, NegativeAndBelowFirstBoundGoToFirstBucket) {
  Histogram h{{0.0, 10.0}};
  h.observe(-5.0);
  h.observe(0.0);
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.counts[0], 2u);
  EXPECT_EQ(snap.count, 2u);
}

TEST(HistogramTest, ResetZeroesCountsAndSum) {
  Histogram h{{1.0}};
  h.observe(0.5);
  h.observe(5.0);
  h.reset();
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_DOUBLE_EQ(snap.sum, 0.0);
  for (const auto c : snap.counts) EXPECT_EQ(c, 0u);
}

TEST(HistogramTest, StripedObservationsAggregateAcrossThreads) {
  Histogram h{{10.0}};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < 1000; ++i) h.observe(1.0);
    });
  }
  for (auto& t : threads) t.join();
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 4000u);
  EXPECT_EQ(snap.counts[0], 4000u);
  EXPECT_NEAR(snap.sum, 4000.0, 1e-6);
}

TEST(RegistryTest, SameNameReturnsSameInstance) {
  Registry reg;
  Counter& a = reg.counter("c");
  Counter& b = reg.counter("c");
  EXPECT_EQ(&a, &b);
  Histogram& h1 = reg.histogram("h", {1.0, 2.0});
  Histogram& h2 = reg.histogram("h", {99.0});  // bounds ignored on reuse
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds(), (std::vector<double>{1.0, 2.0}));
}

TEST(RegistryTest, JsonSnapshotShape) {
  Registry reg;
  reg.counter("tbd_test_total").add(2);
  reg.gauge("tbd_test_gauge").set(1.5);
  reg.histogram("tbd_test_hist", {1.0}).observe(0.5);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"counters\": {\"tbd_test_total\": 2}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"tbd_test_gauge\": 1.5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"tbd_test_hist\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"counts\": [1, 0]"), std::string::npos) << json;
}

TEST(RegistryTest, PrometheusCumulativeBuckets) {
  Registry reg;
  auto& h = reg.histogram("lat", {1.0, 2.0});
  h.observe(0.5);
  h.observe(1.5);
  h.observe(9.0);
  const std::string prom = reg.to_prometheus();
  EXPECT_NE(prom.find("# TYPE lat histogram\n"), std::string::npos) << prom;
  EXPECT_NE(prom.find("lat_bucket{le=\"1\"} 1\n"), std::string::npos) << prom;
  EXPECT_NE(prom.find("lat_bucket{le=\"2\"} 2\n"), std::string::npos) << prom;
  EXPECT_NE(prom.find("lat_bucket{le=\"+Inf\"} 3\n"), std::string::npos)
      << prom;
  EXPECT_NE(prom.find("lat_count 3\n"), std::string::npos) << prom;
}

TEST(RegistryTest, ResetZeroesButKeepsReferences) {
  Registry reg;
  Counter& c = reg.counter("c");
  c.add(7);
  reg.gauge("g").set(3.0);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);  // same instance, zeroed
  EXPECT_DOUBLE_EQ(reg.gauge("g").value(), 0.0);
}

// ---- labeled families -------------------------------------------------------

TEST(LabelsTest, LabeledSeriesAreDistinctPerLabelSet) {
  Registry reg;
  Counter& a = reg.counter("tbd_x_total", {{"stream", "server0"}});
  Counter& b = reg.counter("tbd_x_total", {{"stream", "server1"}});
  Counter& plain = reg.counter("tbd_x_total");
  EXPECT_NE(&a, &b);
  EXPECT_NE(&a, &plain);
  // Same canonical label set -> same instance, regardless of pair order.
  Counter& a2 = reg.counter("tbd_x_total", {{"stream", "server0"}});
  EXPECT_EQ(&a, &a2);
  Gauge& g1 = reg.gauge("g", {{"b", "2"}, {"a", "1"}});
  Gauge& g2 = reg.gauge("g", {{"a", "1"}, {"b", "2"}});
  EXPECT_EQ(&g1, &g2);
}

TEST(LabelsTest, PrometheusEmitsOneTypeLinePerFamily) {
  Registry reg;
  reg.counter("tbd_x_total", {{"stream", "server0"}}).add(1);
  reg.counter("tbd_x_total", {{"stream", "server1"}}).add(2);
  const std::string prom = reg.to_prometheus();
  // Exactly one TYPE comment for the family, then one line per series.
  EXPECT_EQ(prom.find("# TYPE tbd_x_total counter"),
            prom.rfind("# TYPE tbd_x_total counter"));
  EXPECT_NE(prom.find("tbd_x_total{stream=\"server0\"} 1\n"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("tbd_x_total{stream=\"server1\"} 2\n"),
            std::string::npos)
      << prom;
}

TEST(LabelsTest, LabeledHistogramSplicesLeIntoTheBlock) {
  Registry reg;
  auto& h = reg.histogram("lat", {{"stream", "s0"}}, {1.0});
  h.observe(0.5);
  const std::string prom = reg.to_prometheus();
  EXPECT_NE(prom.find("lat_bucket{stream=\"s0\",le=\"1\"} 1\n"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("lat_bucket{stream=\"s0\",le=\"+Inf\"} 1\n"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("lat_sum{stream=\"s0\"} 0.5\n"), std::string::npos)
      << prom;
  EXPECT_NE(prom.find("lat_count{stream=\"s0\"} 1\n"), std::string::npos)
      << prom;
}

TEST(LabelsTest, JsonKeysCarryEscapedLabelBlocks) {
  Registry reg;
  reg.counter("tbd_x_total", {{"stream", "server0"}}).add(5);
  const std::string json = reg.to_json();
  // The rendered block's quotes are JSON-escaped inside the key.
  EXPECT_NE(json.find("\"tbd_x_total{stream=\\\"server0\\\"}\": 5"),
            std::string::npos)
      << json;
}

// ---- exposition edge cases (satellite: escaping + sanitization) -------------

TEST(ExpositionEscapingTest, LabelValuesEscapeBackslashQuoteNewline) {
  EXPECT_EQ(escape_label_value(R"(a\b)"), R"(a\\b)");
  EXPECT_EQ(escape_label_value("say \"hi\""), R"(say \"hi\")");
  EXPECT_EQ(escape_label_value("line1\nline2"), R"(line1\nline2)");
  EXPECT_EQ(escape_label_value("plain"), "plain");
}

TEST(ExpositionEscapingTest, HostileLabelValueCannotBreakScrapeText) {
  Registry reg;
  reg.counter("tbd_x_total", {{"stream", "evil\"} 999\nfake_metric 1"}})
      .add(1);
  const std::string prom = reg.to_prometheus();
  EXPECT_NE(
      prom.find(
          "tbd_x_total{stream=\"evil\\\"} 999\\nfake_metric 1\"} 1\n"),
      std::string::npos)
      << prom;
  // The injected line must NOT appear unescaped at line start.
  EXPECT_EQ(prom.find("\nfake_metric 1\n"), std::string::npos) << prom;
}

TEST(SanitizeTest, MetricNames) {
  EXPECT_EQ(sanitize_metric_name("tbd_ok_total"), "tbd_ok_total");
  EXPECT_EQ(sanitize_metric_name("ns:sub_total"), "ns:sub_total");
  EXPECT_EQ(sanitize_metric_name("bad-name.with spaces"),
            "bad_name_with_spaces");
  EXPECT_EQ(sanitize_metric_name("9starts_with_digit"),
            "_9starts_with_digit");
  EXPECT_EQ(sanitize_metric_name(""), "_");
}

TEST(SanitizeTest, LabelNamesDisallowColon) {
  EXPECT_EQ(sanitize_label_name("stream"), "stream");
  EXPECT_EQ(sanitize_label_name("ns:label"), "ns_label");
  EXPECT_EQ(sanitize_label_name("0digit"), "_0digit");
  EXPECT_EQ(sanitize_label_name(""), "_");
}

TEST(SanitizeTest, RegistrySanitizesOnLookup) {
  Registry reg;
  reg.counter("bad name!", {{"bad label", "v"}}).add(1);
  const std::string prom = reg.to_prometheus();
  EXPECT_NE(prom.find("bad_name_{bad_label=\"v\"} 1\n"), std::string::npos)
      << prom;
}

TEST(SanitizeTest, RenderLabelsSortsAndEscapes) {
  EXPECT_EQ(render_labels({}), "");
  EXPECT_EQ(render_labels({{"b", "2"}, {"a", "1"}}), "{a=\"1\",b=\"2\"}");
  EXPECT_EQ(render_labels({{"k", "a\"b"}}), "{k=\"a\\\"b\"}");
}

TEST(SnapshotQuantileTest, EmptySnapshotIsZero) {
  Histogram h{{1.0, 2.0}};
  EXPECT_DOUBLE_EQ(snapshot_quantile(h.snapshot(), 0.5), 0.0);
}

TEST(SnapshotQuantileTest, InterpolatesWithinBucket) {
  // 10 observations in the (10, 20] bucket: the median sits mid-bucket.
  Histogram h{{10.0, 20.0, 30.0}};
  for (int i = 0; i < 10; ++i) h.observe(15.0);
  EXPECT_NEAR(snapshot_quantile(h.snapshot(), 0.5), 15.0, 1e-9);
  EXPECT_NEAR(snapshot_quantile(h.snapshot(), 1.0), 20.0, 1e-9);
}

TEST(SnapshotQuantileTest, FirstBucketAnchorsAtZero) {
  Histogram h{{100.0, 200.0}};
  h.observe(50.0);
  h.observe(80.0);
  // Both observations in (0, 100]; q = 0.5 interpolates from the 0 anchor.
  EXPECT_NEAR(snapshot_quantile(h.snapshot(), 0.5), 50.0, 1e-9);
}

TEST(SnapshotQuantileTest, OverflowResolvesToLastFiniteBound) {
  Histogram h{{1.0, 2.0}};
  h.observe(0.5);
  h.observe(100.0);  // overflow bucket
  EXPECT_DOUBLE_EQ(snapshot_quantile(h.snapshot(), 1.0), 2.0);
}

TEST(SnapshotQuantileTest, ClampsQuantile) {
  Histogram h{{10.0}};
  h.observe(5.0);
  EXPECT_GE(snapshot_quantile(h.snapshot(), -1.0), 0.0);
  EXPECT_DOUBLE_EQ(snapshot_quantile(h.snapshot(), 2.0),
                   snapshot_quantile(h.snapshot(), 1.0));
}

TEST(SnapshotQuantileTest, SpreadAcrossBucketsIsMonotone) {
  Histogram h{{10.0, 20.0, 30.0, 40.0}};
  for (int i = 0; i < 100; ++i) h.observe(5.0 + (i % 4) * 10.0);
  double prev = 0.0;
  for (const double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double v = snapshot_quantile(h.snapshot(), q);
    EXPECT_GE(v, prev) << "q=" << q;
    prev = v;
  }
}

}  // namespace
}  // namespace tbd::obs
