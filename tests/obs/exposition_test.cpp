#include "obs/exposition.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>

#include "obs/metrics.h"

namespace tbd::obs {
namespace {

// Minimal HTTP client: one request, reads until the server closes.
std::string http_get(std::uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof addr),
            0);
  EXPECT_GT(::send(fd, request.data(), request.size(), 0), 0);
  std::string response;
  char buf[4096];
  for (;;) {
    const auto n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(ExpositionServer, ServesRegisteredRoutes) {
  ExpositionServer server;  // 127.0.0.1, OS-assigned port
  server.handle("/healthz", "text/plain", [] { return std::string("ok\n"); });
  server.handle("/metrics", "text/plain; version=0.0.4",
                [] { return std::string("tbd_up 1\n"); });
  ASSERT_TRUE(server.start()) << server.error();
  ASSERT_NE(server.port(), 0);

  const auto health =
      http_get(server.port(), "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(health.find("HTTP/1.1 200 OK"), std::string::npos) << health;
  EXPECT_NE(health.find("Content-Length: 3"), std::string::npos) << health;
  EXPECT_NE(health.find("\r\n\r\nok\n"), std::string::npos) << health;

  // Query strings are ignored for routing (Prometheus adds none, humans do).
  const auto metrics = http_get(
      server.port(), "GET /metrics?debug=1 HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(metrics.find("tbd_up 1"), std::string::npos) << metrics;
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);

  const auto missing =
      http_get(server.port(), "GET /nope HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(missing.find("404 Not Found"), std::string::npos) << missing;

  const auto post =
      http_get(server.port(), "POST /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(post.find("405 Method Not Allowed"), std::string::npos) << post;

  server.stop();
}

TEST(ExpositionServer, HandlersSeeLiveState) {
  Registry registry;
  ExpositionServer server;
  server.handle("/metrics", "text/plain",
                [&registry] { return registry.to_prometheus(); });
  ASSERT_TRUE(server.start()) << server.error();

  registry.counter("tbd_live_total", {{"stream", "server0"}}).add(3);
  const auto scrape =
      http_get(server.port(), "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(scrape.find("tbd_live_total{stream=\"server0\"} 3"),
            std::string::npos)
      << scrape;
  server.stop();
}

TEST(ExpositionServer, StopIsIdempotentAndRestartable) {
  {
    ExpositionServer server;
    server.handle("/healthz", "text/plain", [] { return std::string("ok"); });
    ASSERT_TRUE(server.start());
    server.stop();
    server.stop();
  }
  // A second server can bind immediately (SO_REUSEADDR, ephemeral port).
  ExpositionServer server2;
  server2.handle("/healthz", "text/plain", [] { return std::string("ok"); });
  ASSERT_TRUE(server2.start());
  server2.stop();
}

// Hardening clients: each sends raw bytes in a controlled way and reads
// whatever the server answers (empty string = the server just closed).

int hardening_connect(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof addr),
            0);
  return fd;
}

std::string hardening_read_all(int fd) {
  std::string response;
  char buf[4096];
  for (;;) {
    const auto n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

void hardening_send(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const auto n = ::send(fd, data.data() + off, data.size() - off, 0);
    ASSERT_GT(n, 0);
    off += static_cast<std::size_t>(n);
  }
}

ExpositionServer::Options loopback() { return {}; }

TEST(ExpositionServer, PartialSendsStillParseToTheRoute) {
  ExpositionServer server{loopback()};
  server.handle("/healthz", "text/plain", [] { return std::string("ok\n"); });
  ASSERT_TRUE(server.start());
  const int fd = hardening_connect(server.port());
  // The request trickles in across three sends; the read loop must keep
  // collecting until the head terminator arrives.
  hardening_send(fd, "GET /hea");
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  hardening_send(fd, "lthz HTTP/1.1\r\nHost");
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  hardening_send(fd, ": x\r\n\r\n");
  const std::string response = hardening_read_all(fd);
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos) << response;
  EXPECT_NE(response.find("ok\n"), std::string::npos);
  server.stop();
}

TEST(ExpositionServer, TruncatedRequestGets400NotSilence) {
  ExpositionServer server{loopback()};
  server.handle("/healthz", "text/plain", [] { return std::string("ok\n"); });
  ASSERT_TRUE(server.start());
  const int fd = hardening_connect(server.port());
  hardening_send(fd, "GET /healthz HTTP/1.1\r\nHost: x");  // no terminator
  ::shutdown(fd, SHUT_WR);                                 // client gives up
  const std::string response = hardening_read_all(fd);
  EXPECT_NE(response.find("HTTP/1.1 400 Bad Request"), std::string::npos)
      << response;
  EXPECT_NE(response.find("incomplete request"), std::string::npos);
  server.stop();
}

TEST(ExpositionServer, GarbageRequestLineGets400) {
  ExpositionServer server{loopback()};
  server.handle("/healthz", "text/plain", [] { return std::string("ok\n"); });
  ASSERT_TRUE(server.start());
  const int fd = hardening_connect(server.port());
  hardening_send(fd, "\x01\x02garbage without structure\r\n\r\n");
  const std::string response = hardening_read_all(fd);
  EXPECT_NE(response.find("HTTP/1.1 400 Bad Request"), std::string::npos)
      << response;
  server.stop();
}

TEST(ExpositionServer, NonHttpVersionGets400) {
  ExpositionServer server{loopback()};
  server.handle("/healthz", "text/plain", [] { return std::string("ok\n"); });
  ASSERT_TRUE(server.start());
  const int fd = hardening_connect(server.port());
  hardening_send(fd, "GET /healthz SPDY/3\r\n\r\n");
  const std::string response = hardening_read_all(fd);
  EXPECT_NE(response.find("HTTP/1.1 400 Bad Request"), std::string::npos)
      << response;
  server.stop();
}

TEST(ExpositionServer, OversizedRequestLineGets431) {
  ExpositionServer server{loopback()};
  server.handle("/healthz", "text/plain", [] { return std::string("ok\n"); });
  ASSERT_TRUE(server.start());
  const int fd = hardening_connect(server.port());
  hardening_send(fd,
                 "GET /" + std::string(9000, 'a') + " HTTP/1.1\r\n\r\n");
  const std::string response = hardening_read_all(fd);
  EXPECT_NE(response.find("431 Request Header Fields Too Large"),
            std::string::npos)
      << response;
  EXPECT_NE(response.find("request line too long"), std::string::npos);
  server.stop();
}

TEST(ExpositionServer, OversizedHeadGets431) {
  ExpositionServer server{loopback()};
  server.handle("/healthz", "text/plain", [] { return std::string("ok\n"); });
  ASSERT_TRUE(server.start());
  const int fd = hardening_connect(server.port());
  // A valid request line followed by 20KB of headers with no terminator:
  // the 16KB head cap must answer 431, never hang or silently close.
  std::string request = "GET /healthz HTTP/1.1\r\n";
  while (request.size() < 20 * 1024) {
    request += "X-Padding: " + std::string(1000, 'p') + "\r\n";
  }
  hardening_send(fd, request);
  const std::string response = hardening_read_all(fd);
  EXPECT_NE(response.find("431 Request Header Fields Too Large"),
            std::string::npos)
      << response;
  EXPECT_NE(response.find("request head too large"), std::string::npos);
  server.stop();
}

TEST(ExpositionServer, EmptyConnectionClosesSilently) {
  ExpositionServer server{loopback()};
  server.handle("/healthz", "text/plain", [] { return std::string("ok\n"); });
  ASSERT_TRUE(server.start());
  const int fd = hardening_connect(server.port());
  ::shutdown(fd, SHUT_WR);  // connect-only probe: no bytes sent
  const std::string response = hardening_read_all(fd);
  EXPECT_TRUE(response.empty()) << response;
  server.stop();
}

TEST(ExpositionServer, RejectsBadHost) {
  ExpositionServer::Options options;
  options.host = "not-an-ip";
  ExpositionServer server{options};
  EXPECT_FALSE(server.start());
  EXPECT_FALSE(server.error().empty());
}

}  // namespace
}  // namespace tbd::obs
