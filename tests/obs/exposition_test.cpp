#include "obs/exposition.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <string>

#include "obs/metrics.h"

namespace tbd::obs {
namespace {

// Minimal HTTP client: one request, reads until the server closes.
std::string http_get(std::uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof addr),
            0);
  EXPECT_GT(::send(fd, request.data(), request.size(), 0), 0);
  std::string response;
  char buf[4096];
  for (;;) {
    const auto n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(ExpositionServer, ServesRegisteredRoutes) {
  ExpositionServer server;  // 127.0.0.1, OS-assigned port
  server.handle("/healthz", "text/plain", [] { return std::string("ok\n"); });
  server.handle("/metrics", "text/plain; version=0.0.4",
                [] { return std::string("tbd_up 1\n"); });
  ASSERT_TRUE(server.start()) << server.error();
  ASSERT_NE(server.port(), 0);

  const auto health =
      http_get(server.port(), "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(health.find("HTTP/1.1 200 OK"), std::string::npos) << health;
  EXPECT_NE(health.find("Content-Length: 3"), std::string::npos) << health;
  EXPECT_NE(health.find("\r\n\r\nok\n"), std::string::npos) << health;

  // Query strings are ignored for routing (Prometheus adds none, humans do).
  const auto metrics = http_get(
      server.port(), "GET /metrics?debug=1 HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(metrics.find("tbd_up 1"), std::string::npos) << metrics;
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);

  const auto missing =
      http_get(server.port(), "GET /nope HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(missing.find("404 Not Found"), std::string::npos) << missing;

  const auto post =
      http_get(server.port(), "POST /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(post.find("405 Method Not Allowed"), std::string::npos) << post;

  server.stop();
}

TEST(ExpositionServer, HandlersSeeLiveState) {
  Registry registry;
  ExpositionServer server;
  server.handle("/metrics", "text/plain",
                [&registry] { return registry.to_prometheus(); });
  ASSERT_TRUE(server.start()) << server.error();

  registry.counter("tbd_live_total", {{"stream", "server0"}}).add(3);
  const auto scrape =
      http_get(server.port(), "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(scrape.find("tbd_live_total{stream=\"server0\"} 3"),
            std::string::npos)
      << scrape;
  server.stop();
}

TEST(ExpositionServer, StopIsIdempotentAndRestartable) {
  {
    ExpositionServer server;
    server.handle("/healthz", "text/plain", [] { return std::string("ok"); });
    ASSERT_TRUE(server.start());
    server.stop();
    server.stop();
  }
  // A second server can bind immediately (SO_REUSEADDR, ephemeral port).
  ExpositionServer server2;
  server2.handle("/healthz", "text/plain", [] { return std::string("ok"); });
  ASSERT_TRUE(server2.start());
  server2.stop();
}

TEST(ExpositionServer, RejectsBadHost) {
  ExpositionServer::Options options;
  options.host = "not-an-ip";
  ExpositionServer server{options};
  EXPECT_FALSE(server.start());
  EXPECT_FALSE(server.error().empty());
}

}  // namespace
}  // namespace tbd::obs
