#include "obs/span.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace tbd::obs {
namespace {

// TBD_SPAN records into Tracer::global(), which is shared across every test
// in this binary: each test starts from a disabled tracer with cleared
// rings. Note rings keep the capacity they were created with — the wrap
// test below runs first so the main thread's ring is small (capacity 8) for
// the whole binary, which the other tests are written to tolerate.
class SpanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::global().disable();
    Tracer::global().clear();
  }
  void TearDown() override {
    Tracer::global().disable();
    Tracer::global().clear();
  }
};

TEST_F(SpanTest, RingWrapKeepsNewestAndCountsDropped) {
  auto& tracer = Tracer::global();
  tracer.enable(4);  // clamped up to the minimum capacity of 8
  for (int i = 0; i < 20; ++i) {
    TBD_SPAN("wrap");
  }
  const auto spans = tracer.collect();
  EXPECT_EQ(spans.size(), 8u);
  EXPECT_EQ(tracer.dropped(), 12u);
  // Newest survive: timestamps are non-decreasing across the kept window.
  for (std::size_t i = 1; i < spans.size(); ++i) {
    EXPECT_GE(spans[i].start_us, spans[i - 1].start_us);
  }
  tracer.clear();
  EXPECT_EQ(tracer.dropped(), 0u);
  EXPECT_TRUE(tracer.collect().empty());
}

TEST_F(SpanTest, DisabledTracerRecordsNothing) {
  {
    TBD_SPAN("ignored");
  }
  EXPECT_TRUE(Tracer::global().collect().empty());
}

TEST_F(SpanTest, NestedSpansTrackDepthAndRollup) {
  auto& tracer = Tracer::global();
  tracer.enable();
  {
    TBD_SPAN("outer");
    { TBD_SPAN("inner"); }
    { TBD_SPAN("inner"); }
  }
  const auto spans = tracer.collect();
  ASSERT_EQ(spans.size(), 3u);
  std::uint64_t inner = 0;
  for (const auto& s : spans) {
    if (std::string{s.name} == "inner") {
      ++inner;
      EXPECT_EQ(s.depth, 1u);
    } else {
      EXPECT_STREQ(s.name, "outer");
      EXPECT_EQ(s.depth, 0u);
    }
  }
  EXPECT_EQ(inner, 2u);

  const auto by_name = Tracer::rollup(spans);
  ASSERT_EQ(by_name.count("inner"), 1u);
  ASSERT_EQ(by_name.count("outer"), 1u);
  EXPECT_EQ(by_name.at("inner").count, 2u);
  EXPECT_EQ(by_name.at("outer").count, 1u);
  EXPECT_GE(by_name.at("inner").total_us, by_name.at("inner").max_us);
}

TEST_F(SpanTest, CollectSortsByStartTime) {
  auto& tracer = Tracer::global();
  tracer.enable();
  { TBD_SPAN("a"); }
  { TBD_SPAN("b"); }
  const auto spans = tracer.collect();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_LE(spans[0].start_us, spans[1].start_us);
}

TEST_F(SpanTest, ThreadsGetDistinctRings) {
  auto& tracer = Tracer::global();
  tracer.enable();
  {
    TBD_SPAN("main_thread");
  }
  std::thread worker([] {
    TBD_SPAN("worker_thread");
  });
  worker.join();
  const auto spans = tracer.collect();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_NE(spans[0].tid, spans[1].tid);
}

TEST_F(SpanTest, DisableMidSpanDropsIt) {
  auto& tracer = Tracer::global();
  tracer.enable();
  {
    TBD_SPAN("doomed");
    tracer.disable();
  }
  EXPECT_TRUE(tracer.collect().empty());
}

TEST_F(SpanTest, ChromeTraceJsonShape) {
  auto& tracer = Tracer::global();
  tracer.enable();
  { TBD_SPAN("stage.one"); }
  const std::string json = tracer.chrome_trace_json();
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // Complete event for the span, with ts/dur/args.depth fields.
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\": \"stage.one\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ts\": "), std::string::npos);
  EXPECT_NE(json.find("\"dur\": "), std::string::npos);
  EXPECT_NE(json.find("\"depth\": 0"), std::string::npos);
  // Thread-name metadata row so Perfetto labels the track.
  EXPECT_NE(json.find("\"ph\": \"M\""), std::string::npos) << json;
  EXPECT_NE(json.find("thread_name"), std::string::npos);
}

TEST_F(SpanTest, EmptyTraceHasNoEvents) {
  auto& tracer = Tracer::global();
  tracer.enable();
  const std::string json = tracer.chrome_trace_json();
  EXPECT_EQ(json.find("\"ph\": \"X\""), std::string::npos) << json;
  EXPECT_EQ(json.find("\"ph\": \"M\""), std::string::npos) << json;
}

}  // namespace
}  // namespace tbd::obs
