// Profiler tests: the fold format is pinned by a golden on synthetic input
// (deterministic structure — counts from a live run are inherently noisy,
// so live tests assert invariants, never exact stacks).
#include "obs/profiler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

namespace tbd::obs {
namespace {

TEST(FoldStacksTest, GoldenStructure) {
  std::vector<ProfileStack> stacks;
  stacks.push_back({"worker-1", {"main", "pool", "sweep"}, 7});
  stacks.push_back({"main", {"main", "parse"}, 3});
  stacks.push_back({"worker-1", {"main", "pool", "idle"}, 2});
  // Duplicate thread+frames must merge.
  stacks.push_back({"worker-1", {"main", "pool", "sweep"}, 5});
  EXPECT_EQ(fold_stacks(stacks),
            "main;main;parse 3\n"
            "worker-1;main;pool;idle 2\n"
            "worker-1;main;pool;sweep 12\n");
}

TEST(FoldStacksTest, SanitizesSeparatorsOutOfFrames) {
  std::vector<ProfileStack> stacks;
  stacks.push_back({"thr;a", {" lead", "semi;colon", "line\nbreak"}, 1});
  const std::string folded = fold_stacks(stacks);
  EXPECT_EQ(folded, "thr,a;lead;semi,colon;line,break 1\n");
  // Every folded line must rsplit cleanly on its final space.
  const auto sep = folded.rfind(' ');
  ASSERT_NE(sep, std::string::npos);
  EXPECT_EQ(folded.substr(sep + 1), "1\n");
}

TEST(FoldStacksTest, EmptyInputFoldsToEmpty) {
  EXPECT_EQ(fold_stacks({}), "");
}

#ifndef TBD_OBS_DISABLED

// Burns CPU so ITIMER_PROF has something to charge against. Marked noinline
// so the busy loop stays an identifiable frame.
__attribute__((noinline)) double spin_for_ms(int ms) {
  const auto until =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  double acc = 0.0;
  while (std::chrono::steady_clock::now() < until) {
    for (int i = 1; i < 1000; ++i) acc += 1.0 / static_cast<double>(i);
  }
  return acc;
}

TEST(ProfilerTest, CpuModeCapturesBusyThread) {
  auto& profiler = Profiler::global();
  ProfilerOptions options;
  options.mode = ProfilerOptions::Mode::kCpu;
  options.hz = 997;  // fast so the test stays short
  ASSERT_TRUE(profiler.start(options)) << profiler.error();
  EXPECT_TRUE(profiler.running());
  EXPECT_FALSE(profiler.start(options));  // double start rejected
  EXPECT_EQ(profiler.error(), "profiler already running");

  volatile double sink = spin_for_ms(400);
  (void)sink;
  profiler.stop();
  EXPECT_FALSE(profiler.running());

  EXPECT_GT(profiler.samples(), 0u);
  EXPECT_GT(profiler.duration_us(), 300'000u);

  const std::string folded = profiler.folded();
  ASSERT_FALSE(folded.empty());
  // Structural invariants of every folded line: "thread;f;...;f N".
  std::size_t at = 0;
  while (at < folded.size()) {
    const std::size_t eol = folded.find('\n', at);
    ASSERT_NE(eol, std::string::npos);
    const std::string line = folded.substr(at, eol - at);
    at = eol + 1;
    const std::size_t sep = line.rfind(' ');
    ASSERT_NE(sep, std::string::npos) << line;
    EXPECT_GT(std::stoull(line.substr(sep + 1)), 0u) << line;
    EXPECT_NE(line.find(';'), std::string::npos) << line;
  }

  const std::string json = profiler.json();
  EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(json.find("\"mode\":\"cpu\""), std::string::npos);
  EXPECT_NE(json.find("\"running\":false"), std::string::npos);
  EXPECT_NE(json.find("\"stacks\":["), std::string::npos);
}

TEST(ProfilerTest, WallModeSamplesSleepingThreads) {
  std::atomic<bool> done{false};
  std::thread sleeper([&done] {
    while (!done.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });
  pthread_setname_np(sleeper.native_handle(), "tbd-sleeper");

  auto& profiler = Profiler::global();
  ProfilerOptions options;
  options.mode = ProfilerOptions::Mode::kWall;
  options.hz = 251;
  ASSERT_TRUE(profiler.start(options)) << profiler.error();
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  profiler.stop();
  done.store(true);
  sleeper.join();

  // Wall mode signals every thread per tick: the blocked-in-sleep helper
  // and this (mostly sleeping) main thread must both appear, and CPU-time
  // sampling could never have caught either.
  const auto threads = profiler.thread_samples();
  EXPECT_GE(threads.size(), 2u) << profiler.folded();
  std::uint64_t total = 0;
  std::uint64_t sleeper_samples = 0;
  for (const auto& t : threads) {
    total += t.samples;
    if (t.thread == "tbd-sleeper") sleeper_samples = t.samples;
  }
  EXPECT_GT(total, 20u);
  EXPECT_GT(sleeper_samples, 10u) << profiler.folded();
  // The handler/trampoline frames are stripped from rendered stacks.
  EXPECT_EQ(profiler.folded().find("signal_handler"), std::string::npos)
      << profiler.folded();
  EXPECT_EQ(profiler.folded().find("handle_signal"), std::string::npos)
      << profiler.folded();
}

TEST(ProfilerTest, RestartStartsAFreshSession) {
  auto& profiler = Profiler::global();
  ProfilerOptions options;
  options.mode = ProfilerOptions::Mode::kCpu;
  options.hz = 997;
  ASSERT_TRUE(profiler.start(options)) << profiler.error();
  volatile double sink = spin_for_ms(150);
  profiler.stop();
  const std::uint64_t first = profiler.samples();

  ASSERT_TRUE(profiler.start(options)) << profiler.error();
  sink = spin_for_ms(50);
  (void)sink;
  profiler.stop();
  // A restart clears the aggregate rather than accumulating forever.
  EXPECT_LT(profiler.samples(), first + 200);
  EXPECT_GT(profiler.samples(), 0u);
}

#else  // TBD_OBS_DISABLED

TEST(ProfilerTest, CompiledOutStubNeverStarts) {
  auto& profiler = Profiler::global();
  EXPECT_FALSE(profiler.start());
  EXPECT_FALSE(profiler.running());
  EXPECT_EQ(profiler.error(), "profiler compiled out (TBD_OBS=OFF)");
  EXPECT_EQ(profiler.samples(), 0u);
  EXPECT_EQ(profiler.folded(), "");
  EXPECT_NE(profiler.json().find("\"status\":\"disabled\""),
            std::string::npos);
}

#endif  // TBD_OBS_DISABLED

}  // namespace
}  // namespace tbd::obs
