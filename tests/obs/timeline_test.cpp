// Unit tests of the deterministic timeline builder: lane assignment keeps
// every tid's B/E stream properly nested, overlays render as colored "X"
// bands, flows bind to their slices' lanes, and the output is byte-stable.
#include "obs/timeline.h"

#include <gtest/gtest.h>

#include <string>

namespace tbd::obs {
namespace {

std::size_t count_of(const std::string& hay, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

TEST(TimelineBuilderTest, NestedSlicesShareOneLane) {
  TimelineBuilder tl;
  const auto track = tl.add_track("server 0");
  tl.add_slice(track, 0, 10000, "outer", "visit");
  tl.add_slice(track, 2000, 7000, "inner", "visit");
  const std::string json = tl.to_json();
  // One lane -> exactly one thread_name metadata entry for the track.
  EXPECT_EQ(count_of(json, "\"name\":\"server 0\""), 1u);
  EXPECT_EQ(json.find("server 0 \xc2\xb7"), std::string::npos);
  EXPECT_EQ(count_of(json, "\"ph\":\"B\""), 2u);
  EXPECT_EQ(count_of(json, "\"ph\":\"E\""), 2u);
  // Inner closes before outer: first E at ts 7000, second at 10000.
  const auto first_e = json.find("\"ph\":\"E\",\"ts\":7000");
  const auto second_e = json.find("\"ph\":\"E\",\"ts\":10000");
  EXPECT_NE(first_e, std::string::npos);
  EXPECT_NE(second_e, std::string::npos);
  EXPECT_LT(first_e, second_e);
}

TEST(TimelineBuilderTest, OverlappingSlicesSpreadAcrossLanes) {
  TimelineBuilder tl;
  const auto track = tl.add_track("server 0");
  tl.add_slice(track, 0, 5000, "a", "visit");
  tl.add_slice(track, 3000, 8000, "b", "visit");  // overlaps, no nesting
  const std::string json = tl.to_json();
  EXPECT_NE(json.find("server 0 \xc2\xb7"
                      "2"),
            std::string::npos);
}

TEST(TimelineBuilderTest, OverlayRendersAsColoredBand) {
  TimelineBuilder tl;
  const auto track = tl.add_overlay_track("server 0 episodes");
  tl.add_overlay(track, 1000, 4000, "congested", "bad",
                 {{"peak_load", TimelineBuilder::num(7.5)}});
  const std::string json = tl.to_json();
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"cname\":\"bad\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":3000"), std::string::npos);
  EXPECT_NE(json.find("\"peak_load\":7.500"), std::string::npos);
}

TEST(TimelineBuilderTest, FlowBindsToSliceLanes) {
  TimelineBuilder tl;
  const auto web = tl.add_track("server 0");
  const auto db = tl.add_track("server 1");
  const auto s0 = tl.add_slice(web, 0, 10000, "visit c1", "visit");
  const auto s1 = tl.add_slice(db, 2000, 7000, "visit c2", "visit");
  tl.add_flow(42, "txn 42", {{s0, 0}, {s1, 2000}});
  const std::string json = tl.to_json();
  EXPECT_NE(json.find("\"ph\":\"s\",\"id\":42"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\",\"id\":42"), std::string::npos);
  EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);
}

TEST(TimelineBuilderTest, SinglePointFlowIsDropped) {
  TimelineBuilder tl;
  const auto track = tl.add_track("server 0");
  const auto s = tl.add_slice(track, 0, 1000, "visit", "visit");
  tl.add_flow(1, "txn 1", {{s, 0}});
  EXPECT_EQ(tl.to_json().find("\"cat\":\"flow\""), std::string::npos);
}

TEST(TimelineBuilderTest, OutputIsByteStable) {
  const auto build = [] {
    TimelineBuilder tl;
    const auto t0 = tl.add_track("server 0");
    const auto ep = tl.add_overlay_track("server 0 episodes");
    const auto a = tl.add_slice(t0, 0, 9000, "a", "visit");
    const auto b = tl.add_slice(t0, 1000, 4000, "b", "visit");
    tl.add_overlay(ep, 0, 5000, "congested", "bad");
    tl.add_flow(1, "txn 1", {{a, 0}, {b, 1000}});
    return tl.to_json();
  };
  EXPECT_EQ(build(), build());
}

// --- Zero-duration spans (arrival == departure visits render as empty
// slices) must not corrupt lane nesting. ---

TEST(TimelineBuilderTest, ZeroDurationSliceNestsInsideEnclosingSlice) {
  TimelineBuilder tl;
  const auto track = tl.add_track("server 0");
  tl.add_slice(track, 0, 10000, "outer", "visit");
  tl.add_slice(track, 2000, 2000, "instant", "visit");
  const std::string json = tl.to_json();
  // Both fit on one lane: no "server 0 ·2" spill.
  EXPECT_EQ(json.find("server 0 \xc2\xb7"), std::string::npos);
  EXPECT_EQ(count_of(json, "\"ph\":\"B\""), 2u);
  EXPECT_EQ(count_of(json, "\"ph\":\"E\""), 2u);
}

TEST(TimelineBuilderTest, ZeroDurationSliceAtEnclosingEndSharesLane) {
  // The instant sits exactly where the first slice closes; the half-open
  // pop rule ([start, end) slices) frees the lane, so no spill either.
  TimelineBuilder tl;
  const auto track = tl.add_track("server 0");
  tl.add_slice(track, 0, 5000, "a", "visit");
  tl.add_slice(track, 5000, 5000, "instant", "visit");
  const std::string json = tl.to_json();
  EXPECT_EQ(json.find("server 0 \xc2\xb7"), std::string::npos);
}

TEST(TimelineBuilderTest, CoincidentZeroDurationSlicesStayNested) {
  // Two instants at the same timestamp inside an open slice: each nests
  // (the previous instant is popped as already closed), one lane total,
  // and the B/E stream stays balanced.
  TimelineBuilder tl;
  const auto track = tl.add_track("server 0");
  tl.add_slice(track, 0, 10000, "outer", "visit");
  tl.add_slice(track, 4000, 4000, "first", "visit");
  tl.add_slice(track, 4000, 4000, "second", "visit");
  const std::string json = tl.to_json();
  EXPECT_EQ(json.find("server 0 \xc2\xb7"), std::string::npos);
  EXPECT_EQ(count_of(json, "\"ph\":\"B\""), 3u);
  EXPECT_EQ(count_of(json, "\"ph\":\"E\""), 3u);
}

TEST(TimelineBuilderTest, FormattersAreFixedPrecision) {
  EXPECT_EQ(TimelineBuilder::num(1.0), "1.000");
  EXPECT_EQ(TimelineBuilder::num(0.12349), "0.123");
  EXPECT_EQ(TimelineBuilder::num(std::int64_t{-7}), "-7");
  EXPECT_EQ(TimelineBuilder::str("a\"b"), "\"a\\\"b\"");
}

}  // namespace
}  // namespace tbd::obs
