#include "obs/event_log.h"

#include <gtest/gtest.h>

#include "obs/metrics.h"

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

namespace tbd::obs {
namespace {

TEST(EventLog, MetaRecordLeadsTheStream) {
  std::ostringstream out;
  EventLog log{&out, {}, {{"tool", "test"}, {"width_ms", "50"}}};
  EXPECT_EQ(out.str(),
            "{\"type\":\"meta\",\"seq\":0,\"schema_version\":1,"
            "\"tool\":\"test\",\"width_ms\":\"50\"}\n");
  EXPECT_EQ(log.events_emitted(), 0u);
}

TEST(EventLog, EmitsGoldenLinesWithMonotonicSeq) {
  std::ostringstream out;
  EventLog log{&out};
  EXPECT_EQ(log.interval_sealed("server0", 3, 150000, 0.25, 40.0, "normal"),
            1u);
  EXPECT_EQ(log.episode_open("server0", 4, 200000), 2u);
  EXPECT_EQ(log.episode_close("server0", 200000, 100000, 9.5, true), 3u);
  EXPECT_EQ(log.events_emitted(), 3u);

  const std::string text = out.str();
  EXPECT_NE(text.find("{\"type\":\"interval_sealed\",\"seq\":1,"
                      "\"stream\":\"server0\",\"index\":3,\"t_us\":150000,"
                      "\"load\":0.25,\"tput\":40,\"state\":\"normal\"}\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("{\"type\":\"episode_open\",\"seq\":2,"
                      "\"stream\":\"server0\",\"index\":4,\"t_us\":200000}\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("{\"type\":\"episode_close\",\"seq\":3,"
                      "\"stream\":\"server0\",\"start_us\":200000,"
                      "\"duration_us\":100000,\"peak_load\":9.5,"
                      "\"freeze\":true}\n"),
            std::string::npos)
      << text;
}

TEST(EventLog, NullStreamStillFillsRings) {
  EventLog log{nullptr};
  log.interval_sealed("s", 0, 0, 1.0, 2.0, "normal");
  log.episode_close("s", 0, 50000, 4.0, false);
  EXPECT_EQ(log.events_emitted(), 2u);
  EXPECT_EQ(log.recent().size(), 2u);
  EXPECT_EQ(log.episodes_json(),
            "{\"schema_version\":1,\"episodes\":[{\"stream\":\"s\","
            "\"start_us\":0,\"duration_us\":50000,\"peak_load\":4,"
            "\"freeze\":false}]}");
}

TEST(EventLog, RingsAreBounded) {
  EventLog::Options options;
  options.ring_capacity = 4;
  options.episode_ring_capacity = 2;
  EventLog log{nullptr, options};
  for (int i = 0; i < 10; ++i) {
    log.episode_close("s", i * 1000, 1000, static_cast<double>(i), false);
  }
  EXPECT_EQ(log.events_emitted(), 10u);
  const auto recent = log.recent();
  ASSERT_EQ(recent.size(), 4u);
  // Oldest-first; the newest event (seq 10) is last.
  EXPECT_NE(recent.back().find("\"seq\":10"), std::string::npos);
  EXPECT_NE(recent.front().find("\"seq\":7"), std::string::npos);
  // Episode ring keeps only the last 2 closes.
  const auto episodes = log.episodes_json();
  EXPECT_EQ(episodes.find("\"start_us\":7000"), std::string::npos);
  EXPECT_NE(episodes.find("\"start_us\":8000"), std::string::npos);
  EXPECT_NE(episodes.find("\"start_us\":9000"), std::string::npos);
}

TEST(EventLog, StreamNamesAreJsonEscaped) {
  std::ostringstream out;
  EventLog log{&out};
  log.episode_open("we\"ird\\name\n", 0, 0);
  EXPECT_NE(out.str().find("\"stream\":\"we\\\"ird\\\\name\\n\""),
            std::string::npos)
      << out.str();
}

TEST(EventLog, RegistryOptInReportsFlushLatencyAndBytes) {
  Registry registry;
  std::ostringstream out;
  EventLogOptions options;
  options.registry = &registry;
  EventLog log{&out, options, {{"tool", "test"}}};
  log.interval_sealed("s", 0, 0, 1.0, 2.0, "normal");
  log.episode_open("s", 0, 0);

  // Every written line (meta included) is timed and its bytes counted.
  const auto flushes =
      registry.histogram("tbd_event_log_flush_us", {1.0}).snapshot();
  EXPECT_EQ(flushes.count, 3u);
  EXPECT_EQ(registry.counter("tbd_event_log_bytes_total").value(),
            out.str().size());
}

TEST(EventLog, NoRegistryKeepsTheBytesIdentical) {
  std::ostringstream plain;
  std::ostringstream timed;
  Registry registry;
  EventLogOptions options;
  options.registry = &registry;
  EventLog a{&plain};
  EventLog b{&timed, options};
  a.interval_sealed("s", 1, 50, 0.5, 9.0, "idle");
  b.interval_sealed("s", 1, 50, 0.5, 9.0, "idle");
  EXPECT_EQ(plain.str(), timed.str());
}

TEST(EventLog, DoublesRoundTripThroughTheText) {
  std::ostringstream out;
  EventLog log{&out};
  const double load = 0.1 + 0.2;  // classic non-representable sum
  log.interval_sealed("s", 0, 0, load, 1e-17, "normal");
  const std::string text = out.str();
  const auto pos = text.find("\"load\":");
  ASSERT_NE(pos, std::string::npos);
  EXPECT_EQ(std::strtod(text.c_str() + pos + 7, nullptr), load);
}

}  // namespace
}  // namespace tbd::obs
