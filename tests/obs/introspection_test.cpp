// Introspection surface tests: the documents themselves (statusz/threadz
// field presence, custom status sources) and the wired endpoints over a
// real socket.
#include "obs/introspection.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <string>

#include "obs/exposition.h"
#include "util/thread_pool.h"

namespace tbd::obs {
namespace {

std::string introspection_http_get(std::uint16_t port,
                                   const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof addr),
            0);
  EXPECT_GT(::send(fd, request.data(), request.size(), 0), 0);
  std::string response;
  char buf[4096];
  for (;;) {
    const auto n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(IntrospectionTest, StatuszCarriesIdentityProcessAndProfiler) {
  Introspection intro{{"test_tool", {{"mode", "replay"}}}};
  const std::string json = intro.statusz_json();
  EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"tool\":\"test_tool\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"git\":\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":"), std::string::npos);
  EXPECT_NE(json.find("\"uptime_seconds\":"), std::string::npos);
  EXPECT_NE(json.find("\"mode\":\"replay\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"process\":{\"rss_bytes\":"), std::string::npos);
  EXPECT_NE(json.find("\"open_fds\":"), std::string::npos);
  EXPECT_NE(json.find("\"profiler\":{\"running\":"), std::string::npos);
}

TEST(IntrospectionTest, StatusSourcesEmitInRegistrationOrder) {
  Introspection intro{{"test_tool", {}}};
  intro.add_status_source("streams", [] {
    return std::string("[{\"stream\":\"s0\",\"seal_lag_us\":0}]");
  });
  intro.add_status_source("extra", [] { return std::string("42"); });
  const std::string json = intro.statusz_json();
  const auto streams_at = json.find("\"streams\":[{\"stream\":\"s0\"");
  const auto extra_at = json.find("\"extra\":42");
  ASSERT_NE(streams_at, std::string::npos) << json;
  ASSERT_NE(extra_at, std::string::npos) << json;
  EXPECT_LT(streams_at, extra_at);
}

TEST(IntrospectionTest, ThreadzListsEveryPoolSlot) {
  // Touch the shared pool so its slots exist regardless of test order.
  shared_pool().parallel_for_indexed(4, [](std::size_t) {});
  Introspection intro{{"test_tool", {}}};
  const std::string json = intro.threadz_json();
  EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(json.find("\"watchdog_running\":"), std::string::npos);
  EXPECT_NE(json.find("\"stalls_detected\":"), std::string::npos);
  EXPECT_NE(json.find("\"pool\":{\"threads\":" +
                      std::to_string(shared_pool().size())),
            std::string::npos)
      << json;
  // One worker object per execution slot, slot 0 first.
  EXPECT_NE(json.find("{\"slot\":0,\"name\":\"caller\""), std::string::npos)
      << json;
  std::size_t entries = 0;
  for (std::size_t at = json.find("{\"slot\":"); at != std::string::npos;
       at = json.find("{\"slot\":", at + 1)) {
    ++entries;
  }
  EXPECT_EQ(entries, static_cast<std::size_t>(shared_pool().size()));
  EXPECT_NE(json.find("\"slow_tasks\":["), std::string::npos);
}

TEST(IntrospectionTest, WiredEndpointsServeOverHttp) {
  Introspection intro{{"test_tool", {}}};
  ExpositionServer server;
  intro.wire(server);
  ASSERT_TRUE(server.start()) << server.error();

  const auto statusz = introspection_http_get(
      server.port(), "GET /statusz HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(statusz.find("HTTP/1.1 200 OK"), std::string::npos) << statusz;
  EXPECT_NE(statusz.find("application/json"), std::string::npos);
  EXPECT_NE(statusz.find("\"tool\":\"test_tool\""), std::string::npos);

  const auto threadz = introspection_http_get(
      server.port(), "GET /threadz HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(threadz.find("\"pool\":{"), std::string::npos) << threadz;

  const auto profilez = introspection_http_get(
      server.port(), "GET /profilez HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(profilez.find("\"schema_version\":1"), std::string::npos)
      << profilez;
  server.stop();
}

}  // namespace
}  // namespace tbd::obs
