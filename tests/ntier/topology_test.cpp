#include "ntier/topology.h"

#include <gtest/gtest.h>

namespace tbd::ntier {
namespace {

TEST(TopologyTest, PaperTopologyIs1L2S1L2S) {
  sim::Engine engine;
  Topology topo{engine, paper_topology()};
  EXPECT_EQ(topo.tier_size(TierKind::kWeb), 1);
  EXPECT_EQ(topo.tier_size(TierKind::kApp), 2);
  EXPECT_EQ(topo.tier_size(TierKind::kMw), 1);
  EXPECT_EQ(topo.tier_size(TierKind::kDb), 2);
  EXPECT_EQ(topo.total_servers(), 6u);
  // L = 2 cores, S = 1 core.
  EXPECT_EQ(topo.server(TierKind::kWeb, 0).cores(), 2);
  EXPECT_EQ(topo.server(TierKind::kApp, 0).cores(), 1);
  EXPECT_EQ(topo.server(TierKind::kMw, 0).cores(), 2);
  EXPECT_EQ(topo.server(TierKind::kDb, 1).cores(), 1);
}

TEST(TopologyTest, ServerIndicesAreDenseAndOrdered) {
  sim::Engine engine;
  Topology topo{engine, paper_topology()};
  EXPECT_EQ(topo.server_index(TierKind::kWeb, 0), 0u);
  EXPECT_EQ(topo.server_index(TierKind::kApp, 0), 1u);
  EXPECT_EQ(topo.server_index(TierKind::kApp, 1), 2u);
  EXPECT_EQ(topo.server_index(TierKind::kMw, 0), 3u);
  EXPECT_EQ(topo.server_index(TierKind::kDb, 0), 4u);
  EXPECT_EQ(topo.server_index(TierKind::kDb, 1), 5u);
  // Node ids offset by one (client = 0).
  EXPECT_EQ(topo.node_id(TierKind::kWeb, 0), 1u);
  EXPECT_EQ(topo.node_id(TierKind::kDb, 1), 6u);
}

TEST(TopologyTest, ReplicatedServersGetNumberedNames) {
  sim::Engine engine;
  Topology topo{engine, paper_topology()};
  EXPECT_EQ(topo.server(TierKind::kWeb, 0).name(), "web");
  EXPECT_EQ(topo.server(TierKind::kApp, 0).name(), "app1");
  EXPECT_EQ(topo.server(TierKind::kApp, 1).name(), "app2");
  EXPECT_EQ(topo.server(TierKind::kDb, 1).name(), "db2");
}

TEST(TopologyTest, PoolConnIdsAreDisjointAcrossServers) {
  sim::Engine engine;
  Topology topo{engine, paper_topology()};
  const auto a0 = topo.pool_conn_id(TierKind::kApp, 0, 0);
  const auto a1 = topo.pool_conn_id(TierKind::kApp, 1, 0);
  const auto d0 = topo.pool_conn_id(TierKind::kDb, 0, 0);
  EXPECT_NE(a0, a1);
  EXPECT_NE(a0, d0);
  // All pool ids live above the ephemeral client-connection region.
  EXPECT_GE(a0, 1u << 16);
  // Token offsets stay within a server's block.
  EXPECT_EQ(topo.pool_conn_id(TierKind::kApp, 0, 5), a0 + 5);
}

TEST(TopologyTest, RoundRobinCyclesThroughTier) {
  sim::Engine engine;
  Topology topo{engine, paper_topology()};
  EXPECT_EQ(topo.pick_round_robin(TierKind::kApp), 0);
  EXPECT_EQ(topo.pick_round_robin(TierKind::kApp), 1);
  EXPECT_EQ(topo.pick_round_robin(TierKind::kApp), 0);
  // Single-server tier always picks 0.
  EXPECT_EQ(topo.pick_round_robin(TierKind::kWeb), 0);
  EXPECT_EQ(topo.pick_round_robin(TierKind::kWeb), 0);
}

TEST(TopologyTest, LeastConnectionsPrefersIdleReplica) {
  sim::Engine engine;
  Topology topo{engine, paper_topology()};
  // Check out a connection on db1; the next least-conn pick must be db2.
  topo.inbound_pool(TierKind::kDb, 0).acquire([](int) {});
  engine.run_all();
  EXPECT_EQ(topo.pick_least_connections(TierKind::kDb), 1);
}

TEST(TopologyTest, LeastConnectionsTieBreaksLowestIndex) {
  sim::Engine engine;
  Topology topo{engine, paper_topology()};
  EXPECT_EQ(topo.pick_least_connections(TierKind::kDb), 0);
}

}  // namespace
}  // namespace tbd::ntier
