// Physics of the processor-sharing server model: completion timing under
// sharing, pauses (GC), clock scaling (SpeedStep), background load, thread
// admission, and utilization accounting.
#include "ntier/server.h"

#include <gtest/gtest.h>

#include <vector>

namespace tbd::ntier {
namespace {

using namespace tbd::literals;
using sim::Engine;

Server::Config one_core(int threads = 10, int backlog = -1) {
  Server::Config cfg;
  cfg.name = "s";
  cfg.cores = 1;
  cfg.worker_threads = threads;
  cfg.accept_backlog = backlog;
  return cfg;
}

TEST(ServerTest, SingleJobTakesItsDemand) {
  Engine engine;
  Server server{engine, one_core()};
  TimePoint done;
  server.compute(1000.0, [&] { done = engine.now(); });
  engine.run_all();
  EXPECT_EQ(done.micros(), 1000);
}

TEST(ServerTest, TwoJobsShareOneCore) {
  Engine engine;
  Server server{engine, one_core()};
  TimePoint d1, d2;
  server.compute(1000.0, [&] { d1 = engine.now(); });
  server.compute(1000.0, [&] { d2 = engine.now(); });
  engine.run_all();
  // Equal demands, equal shares: both complete at ~2000us.
  EXPECT_NEAR(d1.micros(), 2000, 2);
  EXPECT_NEAR(d2.micros(), 2000, 2);
}

TEST(ServerTest, TwoJobsOnTwoCoresRunInParallel) {
  Engine engine;
  auto cfg = one_core();
  cfg.cores = 2;
  Server server{engine, cfg};
  TimePoint d1, d2;
  server.compute(1000.0, [&] { d1 = engine.now(); });
  server.compute(1000.0, [&] { d2 = engine.now(); });
  engine.run_all();
  EXPECT_NEAR(d1.micros(), 1000, 2);
  EXPECT_NEAR(d2.micros(), 1000, 2);
}

TEST(ServerTest, ShortJobFinishesFirstUnderSharing) {
  Engine engine;
  Server server{engine, one_core()};
  TimePoint d_short, d_long;
  server.compute(300.0, [&] { d_short = engine.now(); });
  server.compute(1000.0, [&] { d_long = engine.now(); });
  engine.run_all();
  // Short job: shares until it has 300 done => 600us wall. Long job then
  // runs alone: 300 done at 600, 700 remaining => 1300us wall.
  EXPECT_NEAR(d_short.micros(), 600, 2);
  EXPECT_NEAR(d_long.micros(), 1300, 3);
}

TEST(ServerTest, LateArrivalSharesRemainder) {
  Engine engine;
  Server server{engine, one_core()};
  TimePoint d1, d2;
  server.compute(1000.0, [&] { d1 = engine.now(); });
  engine.schedule_at(TimePoint::from_micros(500), [&] {
    server.compute(1000.0, [&] { d2 = engine.now(); });
  });
  engine.run_all();
  // Job1: 500 done alone, 500 left shared (x2) => done at 1500.
  // Job2: 500 shared (arrives 500, runs x2 until 1500) then alone 500 => 2000.
  EXPECT_NEAR(d1.micros(), 1500, 3);
  EXPECT_NEAR(d2.micros(), 2000, 3);
}

TEST(ServerTest, PauseFreezesProgress) {
  Engine engine;
  Server server{engine, one_core()};
  TimePoint done;
  server.compute(1000.0, [&] { done = engine.now(); });
  engine.schedule_at(TimePoint::from_micros(400), [&] { server.pause(); });
  engine.schedule_at(TimePoint::from_micros(700), [&] { server.resume(); });
  engine.run_all();
  EXPECT_NEAR(done.micros(), 1300, 2);  // 1000 of work + 300 frozen
}

TEST(ServerTest, ArrivalsDuringPauseWaitForResume) {
  Engine engine;
  Server server{engine, one_core()};
  server.pause();
  TimePoint done;
  server.compute(500.0, [&] { done = engine.now(); });
  engine.schedule_at(TimePoint::from_micros(2000), [&] { server.resume(); });
  engine.run_all();
  EXPECT_NEAR(done.micros(), 2500, 2);
}

TEST(ServerTest, HalfClockDoublesServiceTime) {
  Engine engine;
  Server server{engine, one_core()};
  server.set_clock_ratio(0.5);
  TimePoint done;
  server.compute(1000.0, [&] { done = engine.now(); });
  engine.run_all();
  EXPECT_NEAR(done.micros(), 2000, 2);
}

TEST(ServerTest, MidFlightClockChangeSplitsLinearly) {
  Engine engine;
  Server server{engine, one_core()};
  TimePoint done;
  server.compute(1000.0, [&] { done = engine.now(); });
  // 600us at full clock (600 done), then half clock: 400 left => 800us more.
  engine.schedule_at(TimePoint::from_micros(600),
                     [&] { server.set_clock_ratio(0.5); });
  engine.run_all();
  EXPECT_NEAR(done.micros(), 1400, 3);
}

TEST(ServerTest, BackgroundCoresStealCapacity) {
  Engine engine;
  auto cfg = one_core();
  cfg.cores = 2;
  Server server{engine, cfg};
  server.set_background_cores(1.0);  // one of two cores gone
  TimePoint d1, d2;
  server.compute(1000.0, [&] { d1 = engine.now(); });
  server.compute(1000.0, [&] { d2 = engine.now(); });
  engine.run_all();
  // Two jobs share the single remaining core.
  EXPECT_NEAR(d1.micros(), 2000, 3);
  EXPECT_NEAR(d2.micros(), 2000, 3);
}

TEST(ServerTest, BusyTimeTracksWork) {
  Engine engine;
  Server server{engine, one_core()};
  server.compute(1000.0, [] {});
  engine.run_until(TimePoint::from_micros(5000));
  EXPECT_NEAR(server.busy_core_micros(), 1000.0, 2.0);
}

TEST(ServerTest, BusyTimeDuringPauseCountsPauseBusyCores) {
  Engine engine;
  auto cfg = one_core();
  cfg.pause_busy_cores = 1.0;
  Server server{engine, cfg};
  server.pause();
  engine.run_until(TimePoint::from_micros(1000));
  engine.schedule_at(TimePoint::from_micros(1000), [&] { server.resume(); });
  engine.run_until(TimePoint::from_micros(2000));
  EXPECT_NEAR(server.busy_core_micros(), 1000.0, 2.0);  // the GC burn
}

TEST(ServerTest, MultiCoreBusyTimeCapsAtCores) {
  Engine engine;
  auto cfg = one_core();
  cfg.cores = 2;
  Server server{engine, cfg};
  for (int i = 0; i < 4; ++i) server.compute(1000.0, [] {});
  engine.run_until(TimePoint::from_micros(10'000));
  // 4000us of work on 2 cores: busy 2 cores for 2000us.
  EXPECT_NEAR(server.busy_core_micros(), 4000.0, 4.0);
  EXPECT_EQ(server.jobs_completed(), 4u);
}

TEST(ServerTest, AdmitRunsWhenThreadFree) {
  Engine engine;
  Server server{engine, one_core(1)};
  bool ran = false;
  EXPECT_TRUE(server.admit([&] { ran = true; }));
  engine.run_all();
  EXPECT_TRUE(ran);
  EXPECT_EQ(server.threads_in_use(), 1);
}

TEST(ServerTest, AdmitQueuesWhenThreadsBusy) {
  Engine engine;
  Server server{engine, one_core(1)};
  int order = 0;
  int first = 0, second = 0;
  server.admit([&] { first = ++order; });
  server.admit([&] { second = ++order; });
  engine.run_all();
  EXPECT_EQ(first, 1);
  EXPECT_EQ(second, 0);  // still queued
  EXPECT_EQ(server.admission_queue(), 1);
  server.release_thread();
  engine.run_all();
  EXPECT_EQ(second, 2);
}

TEST(ServerTest, AdmitRejectsWhenBacklogFull) {
  Engine engine;
  Server server{engine, one_core(1, /*backlog=*/1)};
  server.admit([] {});
  EXPECT_TRUE(server.admit([] {}));   // fills the backlog
  EXPECT_FALSE(server.admit([] {}));  // dropped (SYN drop)
  engine.run_all();
  EXPECT_EQ(server.admissions_rejected(), 1u);
}

TEST(ServerTest, EqualDemandsCompleteFifo) {
  Engine engine;
  Server server{engine, one_core()};
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    server.compute(100.0, [&order, i] { order.push_back(i); });
  }
  engine.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(ServerTest, ZeroDemandCompletesImmediately) {
  Engine engine;
  Server server{engine, one_core()};
  TimePoint done = TimePoint::max();
  engine.schedule_at(TimePoint::from_micros(50), [&] {
    server.compute(0.0, [&] { done = engine.now(); });
  });
  engine.run_all();
  EXPECT_EQ(done.micros(), 50);
}

TEST(ServerTest, CallbackCanChainCompute) {
  Engine engine;
  Server server{engine, one_core()};
  TimePoint done;
  server.compute(100.0, [&] {
    server.compute(200.0, [&] { done = engine.now(); });
  });
  engine.run_all();
  EXPECT_NEAR(done.micros(), 300, 2);
}

}  // namespace
}  // namespace tbd::ntier
