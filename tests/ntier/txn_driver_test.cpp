// Transaction-flow correctness: message sequences on the wire, per-server
// visit records, retransmission behaviour, and ground-truth ids.
#include "ntier/txn_driver.h"

#include <gtest/gtest.h>

#include "trace/sink.h"

namespace tbd::ntier {
namespace {

using namespace tbd::literals;
using trace::MessageKind;

struct World {
  sim::Engine engine;
  TopologyConfig topo_cfg;
  std::unique_ptr<Topology> topology;
  std::unique_ptr<trace::TraceSink> sink;
  std::unique_ptr<TxnDriver> driver;

  explicit World(RequestClassList classes, int web_threads = 10,
                 int web_backlog = -1) {
    topo_cfg = paper_topology();
    topo_cfg.web.server.worker_threads = web_threads;
    topo_cfg.web.server.accept_backlog = web_backlog;
    topology = std::make_unique<Topology>(engine, topo_cfg);
    sink = std::make_unique<trace::TraceSink>(topology->total_servers(),
                                              /*record_messages=*/true);
    TxnDriver::Config driver_cfg;
    driver_cfg.demand_cv = 0.0;  // deterministic service demands
    driver = std::make_unique<TxnDriver>(engine, *topology, std::move(classes),
                                         *sink, Rng{1}, driver_cfg);
  }
};

RequestClassList one_class(int queries) {
  RequestClass c;
  c.name = "test";
  c.weight = 1.0;
  c.web_demand_us = 100.0;
  c.app_demand_us = 300.0;
  c.db_queries = queries;
  c.mw_demand_us = 50.0;
  c.db_demand_us = 80.0;
  return {c};
}

TEST(TxnDriverTest, CompletesWithExpectedResponseTime) {
  World w{one_class(2)};
  TxnDriver::PageResult result;
  bool done = false;
  w.driver->start(0, [&](const TxnDriver::PageResult& r) {
    result = r;
    done = true;
  });
  w.engine.run_all();
  ASSERT_TRUE(done);
  // Compute: web 100 + app 300 + 2*(mw 50 + db 80) = 660us.
  // Network: client->web->app + 2*(app->mw->db->mw->app) + app->web->client
  //        = 2 + 2*4 + 2 = 12 hops * 150us = 1800us.
  EXPECT_NEAR(result.response_time.micros(), 660 + 1800, 20);
  EXPECT_EQ(result.retransmissions, 0);
}

TEST(TxnDriverTest, MessageSequenceMatchesFigure4) {
  World w{one_class(1)};
  w.driver->start(0, [](const TxnDriver::PageResult&) {});
  w.engine.run_all();
  const auto& msgs = w.sink->messages();
  // client->web, web->app, app->mw, mw->db, db->mw, mw->app, app->web,
  // web->client: 8 messages for a single-query page.
  ASSERT_EQ(msgs.size(), 8u);
  const std::pair<trace::NodeId, trace::NodeId> expected[] = {
      {0, 1}, {1, 2}, {2, 4}, {4, 5}, {5, 4}, {4, 2}, {2, 1}, {1, 0}};
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(msgs[i].src, expected[i].first) << "message " << i;
    EXPECT_EQ(msgs[i].dst, expected[i].second) << "message " << i;
    EXPECT_EQ(msgs[i].kind,
              i < 4 ? MessageKind::kRequest : MessageKind::kResponse)
        << "message " << i;
  }
  // Timestamps strictly ordered along the chain.
  for (std::size_t i = 1; i < 8; ++i) {
    EXPECT_GT(msgs[i].at.micros(), msgs[i - 1].at.micros());
  }
}

TEST(TxnDriverTest, VisitRecordsOnEveryTier) {
  World w{one_class(3)};
  w.driver->start(0, [](const TxnDriver::PageResult&) {});
  w.engine.run_all();
  EXPECT_EQ(w.sink->server_log(0).size(), 1u);  // web
  // Round robin sends the single page to app1.
  EXPECT_EQ(w.sink->server_log(1).size(), 1u);
  EXPECT_EQ(w.sink->server_log(2).size(), 0u);
  EXPECT_EQ(w.sink->server_log(3).size(), 3u);  // mw: one visit per query
  // 3 queries across 2 db replicas.
  EXPECT_EQ(w.sink->server_log(4).size() + w.sink->server_log(5).size(), 3u);
}

TEST(TxnDriverTest, VisitNestingIsRecordedInGroundTruth) {
  World w{one_class(1)};
  w.driver->start(0, [](const TxnDriver::PageResult&) {});
  w.engine.run_all();
  const auto& msgs = w.sink->messages();
  const auto& web_req = msgs[0];
  const auto& app_req = msgs[1];
  const auto& mw_req = msgs[2];
  const auto& db_req = msgs[3];
  EXPECT_EQ(web_req.parent_visit, 0u);
  EXPECT_EQ(app_req.parent_visit, web_req.visit);
  EXPECT_EQ(mw_req.parent_visit, app_req.visit);
  EXPECT_EQ(db_req.parent_visit, mw_req.visit);
}

TEST(TxnDriverTest, ArrivalDepartureBracketServerWork) {
  World w{one_class(1)};
  w.driver->start(0, [](const TxnDriver::PageResult&) {});
  w.engine.run_all();
  for (trace::ServerIndex s = 0; s < 6; ++s) {
    for (const auto& r : w.sink->server_log(s)) {
      EXPECT_GT(r.departure.micros(), r.arrival.micros());
    }
  }
  // The app visit contains the mw visit which contains the db visit.
  const auto& app_rec = w.sink->server_log(1)[0];
  const auto& mw_rec = w.sink->server_log(3)[0];
  EXPECT_LT(app_rec.arrival.micros(), mw_rec.arrival.micros());
  EXPECT_GT(app_rec.departure.micros(), mw_rec.departure.micros());
}

TEST(TxnDriverTest, ZeroQueryClassSkipsDbTiers) {
  World w{one_class(0)};
  w.driver->start(0, [](const TxnDriver::PageResult&) {});
  w.engine.run_all();
  EXPECT_EQ(w.sink->server_log(3).size(), 0u);
  EXPECT_EQ(w.sink->server_log(4).size(), 0u);
  EXPECT_EQ(w.sink->messages().size(), 4u);  // client<->web, web<->app
}

TEST(TxnDriverTest, RetransmissionAfterBacklogOverflow) {
  // 1 thread, 0 backlog: the second concurrent page is dropped and retries
  // after the 3s TCP timeout.
  World w{one_class(0), /*web_threads=*/1, /*web_backlog=*/0};
  std::vector<Duration> rts;
  w.driver->start(0, [&](const TxnDriver::PageResult& r) {
    rts.push_back(r.response_time);
  });
  w.driver->start(0, [&](const TxnDriver::PageResult& r) {
    rts.push_back(r.response_time);
  });
  w.engine.run_all();
  ASSERT_EQ(rts.size(), 2u);
  EXPECT_LT(rts[0].millis_f(), 10.0);
  EXPECT_GT(rts[1].seconds_f(), 3.0);  // one retransmission cycle
  EXPECT_EQ(w.driver->retransmissions(), 1u);
}

TEST(TxnDriverTest, DroppedSynIsInvisibleToTracing) {
  World w{one_class(0), 1, 0};
  w.driver->start(0, [](const TxnDriver::PageResult&) {});
  w.driver->start(0, [](const TxnDriver::PageResult&) {});
  w.engine.run_all();
  // Both pages completed => 8 messages; the dropped SYN added nothing.
  EXPECT_EQ(w.sink->messages().size(), 8u);
  EXPECT_EQ(w.sink->server_log(0).size(), 2u);
}

TEST(TxnDriverTest, RoundRobinAlternatesAppServers) {
  World w{one_class(0)};
  w.driver->start(0, [](const TxnDriver::PageResult&) {});
  w.driver->start(0, [](const TxnDriver::PageResult&) {});
  w.engine.run_all();
  EXPECT_EQ(w.sink->server_log(1).size(), 1u);
  EXPECT_EQ(w.sink->server_log(2).size(), 1u);
}

RequestClassList one_write_class(int reads, int writes) {
  auto classes = one_class(reads);
  classes[0].db_write_queries = writes;
  classes[0].db_write_demand_us = 200.0;
  classes[0].db_write_disk_us = 50.0;
  return classes;
}

TEST(TxnDriverTest, WriteQueryBroadcastsToEveryReplica) {
  World w{one_write_class(0, 1)};
  w.driver->start(0, [](const TxnDriver::PageResult&) {});
  w.engine.run_all();
  // One write query = one visit on EACH of the two db replicas.
  EXPECT_EQ(w.sink->server_log(4).size(), 1u);
  EXPECT_EQ(w.sink->server_log(5).size(), 1u);
  // And one mw visit for the broadcast.
  EXPECT_EQ(w.sink->server_log(3).size(), 1u);
}

TEST(TxnDriverTest, WritesFollowReads) {
  World w{one_write_class(2, 1)};
  w.driver->start(0, [](const TxnDriver::PageResult&) {});
  w.engine.run_all();
  // 2 reads (one per replica via least-conn) + 1 write broadcast (2 visits):
  EXPECT_EQ(w.sink->server_log(4).size() + w.sink->server_log(5).size(), 4u);
  EXPECT_EQ(w.sink->server_log(3).size(), 3u);  // 2 reads + 1 write at mw
  // The write visits are the LAST db visits of the transaction.
  TimePoint last_read;
  for (trace::ServerIndex s : {4u, 5u}) {
    const auto& log = w.sink->server_log(s);
    for (std::size_t i = 0; i + 1 < log.size(); ++i) {
      last_read = std::max(last_read, log[i].arrival);
    }
  }
  EXPECT_GT(w.sink->server_log(4).back().arrival.micros(), last_read.micros());
}

TEST(TxnDriverTest, WriteBroadcastIsSequentialAcrossReplicas) {
  World w{one_write_class(0, 1)};
  w.driver->start(0, [](const TxnDriver::PageResult&) {});
  w.engine.run_all();
  const auto& db1 = w.sink->server_log(4);
  const auto& db2 = w.sink->server_log(5);
  ASSERT_EQ(db1.size(), 1u);
  ASSERT_EQ(db2.size(), 1u);
  // Replica 2's write starts only after replica 1's completed (C-JDBC
  // sequential broadcast keeps the one-outstanding-call-per-parent
  // invariant that black-box reconstruction relies on).
  EXPECT_GE(db2[0].arrival.micros(), db1[0].departure.micros());
}

TEST(TxnDriverTest, WriteResponseTimeIncludesBroadcast) {
  World w{one_write_class(0, 2)};
  TxnDriver::PageResult result;
  w.driver->start(0, [&](const TxnDriver::PageResult& r) { result = r; });
  w.engine.run_all();
  // Compute: web 100 + app 300 + 2 writes * (mw 50 + 2 replicas * db 200).
  // Hops: client->web->app (2) + per write (app->mw + 2*(mw->db + db->mw)
  // + mw->app = 6) * 2 + app->web->client (2) = 16 messages * 150us.
  EXPECT_NEAR(result.response_time.micros(), 100 + 300 + 2 * (50 + 400) + 16 * 150,
              30);
}

TEST(TxnDriverTest, TxnIdsDistinctAndCarriedThrough) {
  World w{one_class(2)};
  w.driver->start(0, [](const TxnDriver::PageResult&) {});
  w.driver->start(0, [](const TxnDriver::PageResult&) {});
  w.engine.run_all();
  const auto& web_log = w.sink->server_log(0);
  ASSERT_EQ(web_log.size(), 2u);
  EXPECT_NE(web_log[0].txn, web_log[1].txn);
  for (const auto& m : w.sink->messages()) {
    EXPECT_TRUE(m.txn == web_log[0].txn || m.txn == web_log[1].txn);
  }
}

}  // namespace
}  // namespace tbd::ntier
