// Property-based tests (parameterized sweeps) of the analysis pipeline's
// invariants on randomized inputs:
//
//  P1  Load conservation: sum(load_i) * width == total clipped residence.
//  P2  Throughput conservation: straightforward counts sum to the number of
//      departures inside the grid, for every interval width.
//  P3  Grid refinement: halving the interval width preserves both totals.
//  P4  Work-unit invariance: total normalized units are independent of the
//      interval width.
//  P5  N* position tracks a known knee across knee positions and noise.
//  P6  Classification monotonicity: raising N* can only reduce the number
//      of congested intervals.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/detector.h"
#include "core/streaming_detector.h"
#include "util/rng.h"

namespace tbd::core {
namespace {

using namespace tbd::literals;

std::vector<trace::RequestRecord> random_log(Rng& rng, std::size_t n,
                                             double horizon_us) {
  std::vector<trace::RequestRecord> log;
  log.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double at = rng.uniform(-0.1 * horizon_us, horizon_us);
    const double service = rng.exponential(800.0);
    trace::RequestRecord r;
    r.server = 0;
    r.class_id = static_cast<trace::ClassId>(rng.uniform_index(5));
    r.arrival = TimePoint::from_micros(static_cast<std::int64_t>(at));
    r.departure =
        TimePoint::from_micros(static_cast<std::int64_t>(at + service));
    log.push_back(r);
  }
  return log;
}

ServiceTimeTable table5() {
  return ServiceTimeTable{{200.0, 400.0, 600.0, 800.0, 1000.0}};
}

// ---------------------------------------------------------------------------

class GridWidthProperty : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(GridWidthProperty, LoadConservation) {
  Rng rng{static_cast<std::uint64_t>(GetParam() * 17 + 1)};
  const double horizon = 2e6;
  const auto log = random_log(rng, 2000, horizon);
  const auto spec = IntervalSpec::over(
      TimePoint::origin(), TimePoint::from_micros(static_cast<std::int64_t>(horizon)),
      Duration::micros(GetParam()));

  const auto load = compute_load(log, spec);
  double integral = 0.0;
  for (double l : load) integral += l * static_cast<double>(spec.width.micros());

  double residence = 0.0;
  const auto grid_end = spec.end();
  for (const auto& r : log) {
    const auto a = std::max(r.arrival, spec.start);
    const auto d = std::min(r.departure, grid_end);
    if (d > a) residence += static_cast<double>((d - a).micros());
  }
  EXPECT_NEAR(integral, residence, residence * 1e-9 + 1e-6);
}

TEST_P(GridWidthProperty, ThroughputConservation) {
  Rng rng{static_cast<std::uint64_t>(GetParam() * 31 + 2)};
  const auto log = random_log(rng, 3000, 2e6);
  const auto spec =
      IntervalSpec::over(TimePoint::origin(), TimePoint::from_micros(2'000'000),
                         Duration::micros(GetParam()));
  ThroughputOptions opts;
  opts.mode = ThroughputMode::kRequestsCompleted;
  opts.per_second = false;
  const auto tput = compute_throughput(log, spec, table5(), opts);
  double total = 0.0;
  for (double t : tput) total += t;

  std::size_t departures = 0;
  for (const auto& r : log) {
    if (spec.contains(r.departure)) ++departures;
  }
  EXPECT_DOUBLE_EQ(total, static_cast<double>(departures));
}

TEST_P(GridWidthProperty, WorkUnitTotalIndependentOfWidth) {
  Rng rng{static_cast<std::uint64_t>(GetParam() * 13 + 3)};
  const auto log = random_log(rng, 3000, 2e6);
  ThroughputOptions opts;
  opts.work_unit_us = 200.0;
  opts.per_second = false;

  auto total_units = [&](Duration width) {
    const auto spec = IntervalSpec::over(TimePoint::origin(),
                                         TimePoint::from_micros(2'000'000), width);
    const auto tput = compute_throughput(log, spec, table5(), opts);
    double total = 0.0;
    for (double t : tput) total += t;
    return total;
  };
  // Both grids cover [0, 2s) exactly (widths divide the horizon).
  EXPECT_DOUBLE_EQ(total_units(Duration::micros(GetParam())),
                   total_units(Duration::micros(GetParam() / 2)));
}

INSTANTIATE_TEST_SUITE_P(Widths, GridWidthProperty,
                         ::testing::Values<std::int64_t>(20'000, 50'000,
                                                         100'000, 250'000,
                                                         500'000));

// ---------------------------------------------------------------------------

struct KneeCase {
  double knee;
  double noise_cv;
};

class NStarProperty : public ::testing::TestWithParam<KneeCase> {};

TEST_P(NStarProperty, EstimateTracksTrueKnee) {
  const auto [knee, noise] = GetParam();
  Rng rng{static_cast<std::uint64_t>(knee * 100 + noise * 1000)};
  std::vector<double> load, tput;
  for (int i = 0; i < 6000; ++i) {
    const double l = rng.uniform(0.0, knee * 4.0);
    double t = std::min(l, knee) * 70.0;
    if (noise > 0.0) t *= rng.gamma(1.0 / (noise * noise), noise * noise);
    load.push_back(l);
    tput.push_back(t);
  }
  const auto result = estimate_congestion_point(load, tput);
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(result.n_star, knee, std::max(1.5, knee * 0.35));
  EXPECT_NEAR(result.tp_max, knee * 70.0, knee * 70.0 * (0.05 + noise));
}

INSTANTIATE_TEST_SUITE_P(
    Knees, NStarProperty,
    ::testing::Values(KneeCase{4.0, 0.0}, KneeCase{4.0, 0.1},
                      KneeCase{10.0, 0.0}, KneeCase{10.0, 0.15},
                      KneeCase{25.0, 0.1}, KneeCase{60.0, 0.2}));

// ---------------------------------------------------------------------------

class ClassifierProperty : public ::testing::TestWithParam<double> {};

TEST_P(ClassifierProperty, CongestionMonotoneInNStar) {
  Rng rng{99};
  std::vector<double> load, tput;
  for (int i = 0; i < 2000; ++i) {
    load.push_back(rng.uniform(0.0, 50.0));
    tput.push_back(rng.uniform(0.0, 1000.0));
  }
  NStarResult low;
  low.n_star = GetParam();
  low.tp_max = 1000.0;
  NStarResult high = low;
  high.n_star = GetParam() * 1.5;

  auto count = [&](const NStarResult& n) {
    const auto states = classify_intervals(load, tput, n);
    std::size_t c = 0;
    for (auto s : states) {
      if (s == IntervalState::kCongested || s == IntervalState::kFrozen) ++c;
    }
    return c;
  };
  EXPECT_GE(count(low), count(high));
}

INSTANTIATE_TEST_SUITE_P(NStars, ClassifierProperty,
                         ::testing::Values(5.0, 10.0, 20.0, 30.0));

// ---------------------------------------------------------------------------

class EpisodeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EpisodeProperty, EpisodesPartitionCongestedIntervals) {
  Rng rng{GetParam()};
  IntervalSpec spec;
  spec.start = TimePoint::origin();
  spec.width = 50_ms;
  spec.count = 500;
  std::vector<IntervalState> states;
  std::vector<double> load;
  std::size_t congested = 0;
  for (std::size_t i = 0; i < spec.count; ++i) {
    const double u = rng.uniform01();
    if (u < 0.15) {
      states.push_back(IntervalState::kCongested);
      ++congested;
    } else if (u < 0.2) {
      states.push_back(IntervalState::kFrozen);
      ++congested;
    } else if (u < 0.3) {
      states.push_back(IntervalState::kIdle);
    } else {
      states.push_back(IntervalState::kNormal);
    }
    load.push_back(rng.uniform(0.0, 40.0));
  }
  const auto episodes = extract_episodes(states, load, spec);
  // Total episode time equals congested interval count; episodes disjoint
  // and ordered.
  std::int64_t covered = 0;
  for (std::size_t e = 0; e < episodes.size(); ++e) {
    covered += episodes[e].duration.micros() / spec.width.micros();
    if (e > 0) {
      EXPECT_GE(episodes[e].start.micros(),
                (episodes[e - 1].start + episodes[e - 1].duration).micros() +
                    spec.width.micros());
    }
  }
  EXPECT_EQ(covered, static_cast<std::int64_t>(congested));
}

INSTANTIATE_TEST_SUITE_P(Seeds, EpisodeProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

// ---------------------------------------------------------------------------

class StreamBatchParity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StreamBatchParity, StreamingMatchesBatchOnRandomLogs) {
  // P7: the online detector, fed departure-ordered records with ample lag,
  // must seal exactly the loads, throughputs, and states the batch pipeline
  // computes.
  Rng rng{GetParam() * 7919 + 13};
  const double horizon_us = 5e6;
  auto log = random_log(rng, 4000, horizon_us);
  std::sort(log.begin(), log.end(),
            [](const trace::RequestRecord& a, const trace::RequestRecord& b) {
              return a.departure < b.departure;
            });
  // Keep only records inside the grid (the streaming detector drops
  // pre-start arrivals' head residence by design).
  std::vector<trace::RequestRecord> in_range;
  for (const auto& r : log) {
    if (r.arrival >= TimePoint::origin() &&
        r.departure < TimePoint::from_micros(static_cast<std::int64_t>(horizon_us))) {
      in_range.push_back(r);
    }
  }

  const auto spec = IntervalSpec::over(
      TimePoint::origin(), TimePoint::from_micros(static_cast<std::int64_t>(horizon_us)),
      50_ms);
  const auto table = table5();
  const auto batch = detect_bottlenecks(in_range, spec, table);

  StreamingDetector::Config cfg;
  cfg.width = 50_ms;
  cfg.lag = Duration::seconds(60);  // never seals early
  StreamingDetector stream{TimePoint::origin(), cfg, batch.nstar, table};
  std::vector<double> s_load, s_tput;
  std::vector<IntervalState> s_states;
  stream.on_interval([&](std::size_t, double l, double t, IntervalState s) {
    s_load.push_back(l);
    s_tput.push_back(t);
    s_states.push_back(s);
  });
  for (const auto& r : in_range) stream.push(r);
  stream.finish();

  ASSERT_GE(s_load.size(), batch.load.size());
  for (std::size_t i = 0; i < batch.load.size(); ++i) {
    EXPECT_NEAR(s_load[i], batch.load[i], 1e-9) << "interval " << i;
    EXPECT_NEAR(s_tput[i], batch.throughput[i], 1e-9) << "interval " << i;
    EXPECT_EQ(s_states[i], batch.states[i]) << "interval " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamBatchParity,
                         ::testing::Values(1u, 2u, 3u));

}  // namespace
}  // namespace tbd::core
