// Property-based tests of the simulation substrate:
//
//  P1  Work conservation in the PS server: total busy core-time equals total
//      demand, for random job sets, any core count and clock.
//  P2  Completion-order sanity: under pure PS with simultaneous arrivals,
//      jobs complete in demand order.
//  P3  Closed-loop flow balance: pages started == pages completed + in
//      flight at any stopping point of a full experiment.
//  P4  Trace well-formedness over random workloads: every visit nests
//      strictly inside its parent window (one-way latency accounted).
//  P5  Reconstruction accuracy stays high across concurrency levels.
#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>

#include "app/experiment.h"
#include "ntier/server.h"
#include "trace/reconstructor.h"
#include "util/rng.h"

namespace tbd {
namespace {

using namespace tbd::literals;

struct PsCase {
  int cores;
  double clock;
  int jobs;
};

class PsWorkConservation : public ::testing::TestWithParam<PsCase> {};

TEST_P(PsWorkConservation, BusyTimeEqualsDemand) {
  const auto [cores, clock, jobs] = GetParam();
  sim::Engine engine;
  ntier::Server::Config cfg;
  cfg.name = "s";
  cfg.cores = cores;
  cfg.worker_threads = jobs + 1;
  ntier::Server server{engine, cfg};
  server.set_clock_ratio(clock);

  Rng rng{static_cast<std::uint64_t>(cores * 1000 + jobs)};
  double total_demand = 0.0;
  int completed = 0;
  for (int i = 0; i < jobs; ++i) {
    const double demand = rng.exponential(700.0);
    total_demand += demand;
    const auto at = Duration::micros(
        static_cast<std::int64_t>(rng.uniform(0.0, 50'000.0)));
    engine.schedule_after(at, [&server, &completed, demand] {
      server.compute(demand, [&completed] { ++completed; });
    });
  }
  engine.run_all();
  EXPECT_EQ(completed, jobs);
  // Busy core-time is measured in wall time; at clock c it takes 1/c wall
  // microseconds per unit of demand.
  EXPECT_NEAR(server.busy_core_micros(), total_demand / clock,
              total_demand / clock * 1e-6 + jobs * 2.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PsWorkConservation,
    ::testing::Values(PsCase{1, 1.0, 20}, PsCase{1, 0.53, 20},
                      PsCase{2, 1.0, 40}, PsCase{2, 0.7, 40},
                      PsCase{4, 1.0, 80}, PsCase{8, 0.9, 100}));

class PsOrdering : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PsOrdering, SimultaneousJobsCompleteInDemandOrder) {
  sim::Engine engine;
  ntier::Server::Config cfg;
  cfg.name = "s";
  cfg.cores = 1;
  cfg.worker_threads = 64;
  ntier::Server server{engine, cfg};

  Rng rng{GetParam()};
  std::vector<double> demands;
  std::vector<std::pair<double, TimePoint>> finish;  // (demand, time)
  for (int i = 0; i < 30; ++i) {
    demands.push_back(rng.uniform(10.0, 5000.0));
  }
  for (double d : demands) {
    server.compute(d, [&finish, d, &engine] {
      finish.emplace_back(d, engine.now());
    });
  }
  engine.run_all();
  ASSERT_EQ(finish.size(), demands.size());
  for (std::size_t i = 1; i < finish.size(); ++i) {
    EXPECT_LE(finish[i - 1].first, finish[i].first + 1e-9);
    EXPECT_LE(finish[i - 1].second.micros(), finish[i].second.micros());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PsOrdering,
                         ::testing::Values(11u, 22u, 33u, 44u));

struct WorkloadCase {
  int workload;
  bool gc;
  bool speedstep;
  /// Floor for black-box reconstruction edge accuracy; decays with
  /// concurrency (greedy matching gets genuinely ambiguous near
  /// saturation — see bench_trace_reconstruction).
  double min_edge_accuracy;
};

class ExperimentInvariants : public ::testing::TestWithParam<WorkloadCase> {};

TEST_P(ExperimentInvariants, FlowBalanceAndTraceNesting) {
  const auto [workload, gc, speedstep, min_edge_accuracy] = GetParam();
  app::ExperimentConfig cfg;
  cfg.workload = workload;
  cfg.warmup = 2_s;
  cfg.duration = 8_s;
  cfg.seed = 90210;
  cfg.gc_on_app = gc;
  cfg.gc = transient::jdk15_config();
  cfg.speedstep_on_db = speedstep;
  cfg.record_messages = true;
  const auto result = app::run_experiment(cfg);

  // P3: flow balance.
  EXPECT_GE(result.pages_started, result.pages_completed);
  EXPECT_LE(result.pages_started - result.pages_completed,
            static_cast<std::uint64_t>(workload));
  EXPECT_GT(result.pages_completed, 0u);

  // P4: per-transaction nesting from ground truth: each child's visit
  // window sits inside [parent.arrival, parent.departure].
  // Index visits by id from the message stream.
  struct Window {
    TimePoint arr = TimePoint::max();
    TimePoint dep;
    std::uint64_t parent = 0;
  };
  std::unordered_map<std::uint64_t, Window> visits;
  for (const auto& m : result.messages) {
    auto& w = visits[m.visit];
    if (m.kind == trace::MessageKind::kRequest) {
      w.arr = m.at;
      w.parent = m.parent_visit;
    } else {
      w.dep = m.at;
    }
  }
  std::size_t checked = 0;
  for (const auto& [id, w] : visits) {
    if (w.parent == 0 || w.dep == TimePoint()) continue;
    const auto it = visits.find(w.parent);
    if (it == visits.end() || it->second.dep == TimePoint()) continue;
    EXPECT_GE(w.arr.micros(), it->second.arr.micros());
    EXPECT_LE(w.dep.micros(), it->second.dep.micros());
    ++checked;
  }
  EXPECT_GT(checked, 100u);

  // P5: black-box reconstruction accuracy floor for this load level.
  trace::TraceReconstructor rec;
  rec.process(result.messages);
  EXPECT_GT(rec.score_against_truth().edge_accuracy(), min_edge_accuracy);
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, ExperimentInvariants,
    ::testing::Values(WorkloadCase{500, false, false, 0.97},
                      WorkloadCase{2000, true, false, 0.90},
                      WorkloadCase{4000, false, true, 0.82},
                      WorkloadCase{6000, true, true, 0.70}));

}  // namespace
}  // namespace tbd
