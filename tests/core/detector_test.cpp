// Interval classification, POI (frozen) detection, and episode extraction.
#include "core/detector.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace tbd::core {
namespace {

using namespace tbd::literals;

NStarResult nstar(double n, double tp_max) {
  NStarResult r;
  r.n_star = n;
  r.tp_max = tp_max;
  r.converged = true;
  return r;
}

IntervalSpec grid50(std::size_t count) {
  IntervalSpec spec;
  spec.start = TimePoint::origin();
  spec.width = 50_ms;
  spec.count = count;
  return spec;
}

TEST(ClassifyTest, FourStates) {
  const std::vector<double> load{0.0, 3.0, 12.0, 15.0};
  const std::vector<double> tput{0.0, 300.0, 800.0, 10.0};
  const auto states = classify_intervals(load, tput, nstar(10.0, 1000.0));
  ASSERT_EQ(states.size(), 4u);
  EXPECT_EQ(states[0], IntervalState::kIdle);
  EXPECT_EQ(states[1], IntervalState::kNormal);
  EXPECT_EQ(states[2], IntervalState::kCongested);
  EXPECT_EQ(states[3], IntervalState::kFrozen);  // high load, ~zero output
}

TEST(ClassifyTest, LoadExactlyAtNStarIsNormal) {
  const std::vector<double> load{10.0};
  const std::vector<double> tput{900.0};
  const auto states = classify_intervals(load, tput, nstar(10.0, 1000.0));
  EXPECT_EQ(states[0], IntervalState::kNormal);
}

TEST(ClassifyTest, FreezeThresholdScalesWithTpMax) {
  DetectorConfig cfg;
  cfg.poi_tput_frac = 0.10;
  const std::vector<double> load{20.0, 20.0};
  const std::vector<double> tput{99.0, 101.0};
  const auto states = classify_intervals(load, tput, nstar(10.0, 1000.0), cfg);
  EXPECT_EQ(states[0], IntervalState::kFrozen);
  EXPECT_EQ(states[1], IntervalState::kCongested);
}

TEST(EpisodeTest, ExtractsMaximalRuns) {
  const std::vector<IntervalState> states{
      IntervalState::kNormal,   IntervalState::kCongested,
      IntervalState::kCongested, IntervalState::kNormal,
      IntervalState::kFrozen,   IntervalState::kCongested,
      IntervalState::kIdle};
  const std::vector<double> load{1, 12, 15, 2, 30, 14, 0};
  const auto episodes = extract_episodes(states, load, grid50(7));
  ASSERT_EQ(episodes.size(), 2u);
  EXPECT_EQ(episodes[0].start.micros(), 50'000);
  EXPECT_EQ(episodes[0].duration.millis_f(), 100.0);
  EXPECT_DOUBLE_EQ(episodes[0].peak_load, 15.0);
  EXPECT_FALSE(episodes[0].contains_freeze);
  EXPECT_EQ(episodes[1].duration.millis_f(), 100.0);
  EXPECT_TRUE(episodes[1].contains_freeze);
  EXPECT_DOUBLE_EQ(episodes[1].peak_load, 30.0);
}

TEST(EpisodeTest, RunReachingEndOfGridCloses) {
  const std::vector<IntervalState> states{IntervalState::kNormal,
                                          IntervalState::kCongested,
                                          IntervalState::kCongested};
  const std::vector<double> load{1, 11, 12};
  const auto episodes = extract_episodes(states, load, grid50(3));
  ASSERT_EQ(episodes.size(), 1u);
  EXPECT_EQ(episodes[0].duration.millis_f(), 100.0);
}

TEST(EpisodeTest, NoCongestionNoEpisodes) {
  const std::vector<IntervalState> states(5, IntervalState::kNormal);
  const std::vector<double> load(5, 1.0);
  EXPECT_TRUE(extract_episodes(states, load, grid50(5)).empty());
}

TEST(DetectionResultTest, AggregateCounters) {
  DetectionResult r;
  r.spec = grid50(6);
  r.states = {IntervalState::kNormal,    IntervalState::kCongested,
              IntervalState::kFrozen,    IntervalState::kCongested,
              IntervalState::kIdle,      IntervalState::kNormal};
  r.load = {1, 12, 30, 14, 0, 2};
  r.episodes = extract_episodes(r.states, r.load, r.spec);
  EXPECT_EQ(r.congested_intervals(), 3u);
  EXPECT_EQ(r.frozen_intervals(), 1u);
  EXPECT_DOUBLE_EQ(r.congested_fraction(), 0.5);
  EXPECT_EQ(r.total_congested_time().millis_f(), 150.0);
  EXPECT_EQ(r.longest_episode().millis_f(), 150.0);
}

TEST(DetectorEndToEndTest, SyntheticFreezeIsFlaggedFrozen) {
  // A single FIFO server (1ms service) fed alternating under/over-capacity
  // arrival phases, frozen for 300ms in the middle. The overload phases
  // populate the flat part of the main sequence (so N* converges); the
  // freeze shows up as POIs: high load, zero throughput.
  std::vector<trace::RequestRecord> records;
  Rng rng{41};
  const std::int64_t freeze_start = 4'000'000;
  const std::int64_t freeze_end = 4'300'000;
  const double service_us = 1000.0;
  double server_free = 0.0;
  std::int64_t t = 0;
  while (t < 10'000'000) {
    // 300ms at 0.6x capacity, then 200ms at 1.6x capacity.
    const bool overload = (t / 100'000) % 5 >= 3;
    const double rate = (overload ? 1.6 : 0.6) / service_us;
    t += static_cast<std::int64_t>(rng.exponential(1.0 / rate)) + 1;
    double start = std::max(static_cast<double>(t), server_free);
    if (start >= freeze_start && start < freeze_end) {
      start = freeze_end;  // the server is stopped; work resumes after
    }
    const double service = service_us * rng.gamma(16.0, 1.0 / 16.0);
    server_free = start + service;
    trace::RequestRecord r;
    r.server = 0;
    r.class_id = 0;
    r.arrival = TimePoint::from_micros(t);
    r.departure = TimePoint::from_micros(static_cast<std::int64_t>(server_free));
    records.push_back(r);
  }
  ServiceTimeTable table{{service_us}};
  const auto spec = IntervalSpec::over(
      TimePoint::origin(), TimePoint::from_micros(10'000'000), 50_ms);
  const auto result = detect_bottlenecks(records, spec, table);
  ASSERT_TRUE(result.nstar.converged);
  EXPECT_GT(result.frozen_intervals(), 2u);
  ASSERT_FALSE(result.episodes.empty());
  bool freeze_episode = false;
  for (const auto& e : result.episodes) {
    const std::int64_t e_end = (e.start + e.duration).micros();
    if (e.contains_freeze && e.start.micros() <= freeze_end &&
        e_end >= freeze_start) {
      freeze_episode = true;
    }
  }
  EXPECT_TRUE(freeze_episode);
}

TEST(StateToStringTest, AllNames) {
  EXPECT_STREQ(to_string(IntervalState::kIdle), "idle");
  EXPECT_STREQ(to_string(IntervalState::kNormal), "normal");
  EXPECT_STREQ(to_string(IntervalState::kCongested), "congested");
  EXPECT_STREQ(to_string(IntervalState::kFrozen), "frozen");
}

}  // namespace
}  // namespace tbd::core
