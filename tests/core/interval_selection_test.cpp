// Automatic interval-length selection (the paper's future-work extension):
// the chosen width must avoid both failure modes of Section III-D.
#include "core/interval_selection.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace tbd::core {
namespace {

using namespace tbd::literals;

// A server alternating between ~idle and saturated in `burst_ms` episodes;
// request service time `service_us`.
std::vector<trace::RequestRecord> bursty_log(double service_us,
                                             std::int64_t burst_ms,
                                             std::uint64_t seed) {
  Rng rng{seed};
  std::vector<trace::RequestRecord> log;
  const std::int64_t horizon_us = 30'000'000;
  std::int64_t t = 0;
  bool burst = false;
  std::int64_t phase_end = 0;
  double backlog_done = 0.0;
  while (t < horizon_us) {
    if (t >= phase_end) {
      burst = !burst;
      phase_end = t + (burst ? burst_ms * 1000 : 5 * burst_ms * 1000);
    }
    // Arrival rate: 3x capacity during bursts, 0.3x otherwise.
    const double rate = (burst ? 3.0 : 0.3) / service_us;
    t += static_cast<std::int64_t>(rng.exponential(1.0 / rate));
    // Service: FIFO single server, deterministic-ish service.
    const double service = service_us * rng.gamma(9.0, 1.0 / 9.0);
    const double start = std::max(static_cast<double>(t), backlog_done);
    backlog_done = start + service;
    trace::RequestRecord r;
    r.server = 0;
    r.class_id = static_cast<trace::ClassId>(rng.uniform_index(3));
    r.arrival = TimePoint::from_micros(t);
    r.departure = TimePoint::from_micros(static_cast<std::int64_t>(backlog_done));
    log.push_back(r);
  }
  return log;
}

ServiceTimeTable table3(double base_us) {
  return ServiceTimeTable{{base_us, base_us, base_us}};
}

TEST(IntervalSelectionTest, PrefersFineWidthWhenTrafficIsDense) {
  // 0.5ms services, 200ms bursts: plenty of completions even at 20ms.
  const auto log = bursty_log(500.0, 200, 1);
  const std::vector<Duration> candidates{20_ms, 50_ms, 100_ms, 500_ms, 1_s};
  const auto sel = choose_interval_length(
      log, TimePoint::origin(), TimePoint::from_micros(30'000'000),
      table3(500.0), candidates);
  EXPECT_LE(sel.chosen.micros(), (100_ms).micros());
}

TEST(IntervalSelectionTest, RejectsWidthsWithTooFewCompletions) {
  // 30ms services: a 20ms interval sees < 1 completion on average; the
  // selector must skip past it.
  const auto log = bursty_log(30'000.0, 500, 2);
  const std::vector<Duration> candidates{20_ms, 50_ms, 200_ms, 1_s};
  IntervalSelectionConfig cfg;
  cfg.min_mean_completions = 4.0;
  const auto sel = choose_interval_length(
      log, TimePoint::origin(), TimePoint::from_micros(30'000'000),
      table3(30'000.0), candidates, cfg);
  EXPECT_GT(sel.chosen.micros(), (20_ms).micros());
}

TEST(IntervalSelectionTest, CandidatesScoredFineToCoarse) {
  const auto log = bursty_log(500.0, 200, 3);
  const std::vector<Duration> candidates{20_ms, 100_ms, 1_s};
  const auto sel = choose_interval_length(
      log, TimePoint::origin(), TimePoint::from_micros(30'000'000),
      table3(500.0), candidates);
  ASSERT_EQ(sel.candidates.size(), 3u);
  // Retention is measured against the finest width and decays with width
  // (coarser = load peaks averaged away).
  EXPECT_DOUBLE_EQ(sel.candidates[0].retention, 1.0);
  EXPECT_LT(sel.candidates[2].retention, sel.candidates[0].retention);
  // Completions per interval grow with width.
  EXPECT_GT(sel.candidates[2].mean_completions,
            sel.candidates[0].mean_completions);
}

TEST(IntervalSelectionTest, FallsBackToCoarsestWhenNothingAcceptable) {
  const auto log = bursty_log(30'000.0, 500, 4);
  const std::vector<Duration> candidates{5_ms, 10_ms};
  IntervalSelectionConfig cfg;
  cfg.min_mean_completions = 100.0;  // unattainable
  const auto sel = choose_interval_length(
      log, TimePoint::origin(), TimePoint::from_micros(30'000'000),
      table3(30'000.0), candidates, cfg);
  EXPECT_EQ(sel.chosen.micros(), (10_ms).micros());
}

TEST(MainSequenceBlurTest, NoiseRaisesBlur) {
  Rng rng{5};
  std::vector<double> load, clean, noisy;
  for (int i = 0; i < 4000; ++i) {
    const double l = rng.uniform(0.0, 20.0);
    load.push_back(l);
    const double t = std::min(l, 8.0) * 100.0;
    clean.push_back(t);
    noisy.push_back(t * rng.gamma(4.0, 0.25));  // CV 0.5
  }
  // "Clean" still shows ~0.05 residual CV from bin-edge mixing (a bin mixes
  // loads just below/at the knee); what matters is the noise separation.
  EXPECT_LT(main_sequence_blur(load, clean, 25), 0.08);
  EXPECT_GT(main_sequence_blur(load, noisy, 25),
            main_sequence_blur(load, clean, 25) + 0.2);
}

TEST(MainSequenceBlurTest, DegenerateInputsSafe) {
  EXPECT_DOUBLE_EQ(main_sequence_blur({}, {}, 25), 0.0);
  const std::vector<double> zeros(10, 0.0);
  EXPECT_DOUBLE_EQ(main_sequence_blur(zeros, zeros, 25), 0.0);
}

}  // namespace
}  // namespace tbd::core
