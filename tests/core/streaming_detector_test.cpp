#include "core/streaming_detector.h"

#include <gtest/gtest.h>

#include "core/load_calculator.h"

namespace tbd::core {
namespace {

using namespace tbd::literals;

trace::RequestRecord rec(std::int64_t a, std::int64_t d, trace::ClassId c = 0) {
  trace::RequestRecord r;
  r.server = 0;
  r.class_id = c;
  r.arrival = TimePoint::from_micros(a);
  r.departure = TimePoint::from_micros(d);
  return r;
}

NStarResult nstar(double n, double tp) {
  NStarResult r;
  r.n_star = n;
  r.tp_max = tp;
  r.converged = true;
  return r;
}

StreamingDetector::Config config50() {
  StreamingDetector::Config cfg;
  cfg.width = 50_ms;
  cfg.lag = 200_ms;
  return cfg;
}

TEST(StreamingDetectorTest, MatchesBatchPipelineOnSameRecords) {
  // A stream of steady 1ms requests; compare sealed loads with the batch
  // load calculator.
  std::vector<trace::RequestRecord> records;
  for (std::int64_t t = 0; t < 1'000'000; t += 500) {
    records.push_back(rec(t, t + 1000));
  }
  ServiceTimeTable table{{1000.0}};

  StreamingDetector stream{TimePoint::origin(), config50(), nstar(10, 2000),
                           table};
  std::vector<double> stream_load;
  stream.on_interval([&](std::size_t, double load, double, IntervalState) {
    stream_load.push_back(load);
  });
  for (const auto& r : records) stream.push(r);
  stream.finish();

  const auto spec = IntervalSpec::over(TimePoint::origin(),
                                       TimePoint::from_micros(1'000'000), 50_ms);
  const auto batch_load = compute_load(records, spec);
  ASSERT_GE(stream_load.size(), batch_load.size());
  for (std::size_t i = 0; i < batch_load.size(); ++i) {
    EXPECT_NEAR(stream_load[i], batch_load[i], 1e-9) << "interval " << i;
  }
}

TEST(StreamingDetectorTest, EmitsEpisodeWhenLoadExceedsNStar) {
  // 20 concurrent long requests create a 100ms burst above N*=5.
  StreamingDetector stream{TimePoint::origin(), config50(), nstar(5, 1e6),
                           ServiceTimeTable{{1000.0}}};
  std::vector<Episode> episodes;
  stream.on_episode([&](const Episode& e) { episodes.push_back(e); });

  for (int i = 0; i < 20; ++i) {
    stream.push(rec(100'000, 200'000 + i));  // all inside [100,200)ms
  }
  // Keep the stream alive past the lag so the burst seals.
  for (std::int64_t t = 200'000; t < 800'000; t += 10'000) {
    stream.push(rec(t, t + 1000));
  }
  stream.finish();
  ASSERT_EQ(episodes.size(), 1u);
  EXPECT_EQ(episodes[0].start.micros(), 100'000);
  EXPECT_EQ(episodes[0].duration.millis_f(), 100.0);
  EXPECT_NEAR(episodes[0].peak_load, 20.0, 0.1);
}

TEST(StreamingDetectorTest, FreezeClassifiedFrozen) {
  // High residence, zero completions in [100,150)ms: requests span the
  // window and depart much later. The lag must exceed the 300ms residence
  // of the frozen requests or their residence seals away prematurely.
  auto cfg = config50();
  cfg.lag = 500_ms;
  StreamingDetector stream{TimePoint::origin(), cfg, nstar(5, 1000),
                           ServiceTimeTable{{1000.0}}};
  std::vector<IntervalState> states;
  stream.on_interval([&](std::size_t, double, double, IntervalState s) {
    states.push_back(s);
  });
  for (int i = 0; i < 20; ++i) {
    stream.push(rec(100'000 + i, 400'000 + i));
  }
  for (std::int64_t t = 400'000; t < 1'000'000; t += 10'000) {
    stream.push(rec(t, t + 1000));
  }
  stream.finish();
  ASSERT_GE(states.size(), 4u);
  EXPECT_EQ(states[2], IntervalState::kFrozen);  // [100,150): load, no output
}

TEST(StreamingDetectorTest, PushBatchMatchesPushLoop) {
  std::vector<trace::RequestRecord> records;
  for (std::int64_t t = 0; t < 500'000; t += 700) {
    records.push_back(rec(t, t + 1500));
  }
  ServiceTimeTable table{{1000.0}};

  StreamingDetector one_by_one{TimePoint::origin(), config50(), nstar(5, 2000),
                               table};
  std::vector<double> loads_loop;
  one_by_one.on_interval([&](std::size_t, double load, double, IntervalState) {
    loads_loop.push_back(load);
  });
  for (const auto& r : records) one_by_one.push(r);
  one_by_one.finish();

  StreamingDetector batched{TimePoint::origin(), config50(), nstar(5, 2000),
                            table};
  std::vector<double> loads_batch;
  batched.on_interval([&](std::size_t, double load, double, IntervalState) {
    loads_batch.push_back(load);
  });
  batched.push_batch(records);
  batched.finish();

  EXPECT_TRUE(loads_batch == loads_loop);
  EXPECT_EQ(batched.intervals_emitted(), one_by_one.intervals_emitted());
  EXPECT_EQ(batched.dropped_records(), one_by_one.dropped_records());
}

TEST(StreamingDetectorTest, LateRecordsAreDroppedNotCrashing) {
  StreamingDetector stream{TimePoint::origin(), config50(), nstar(5, 1000),
                           ServiceTimeTable{{1000.0}}};
  // Advance far, then push something ancient.
  stream.push(rec(2'000'000, 2'001'000));
  stream.push(rec(100, 1100));  // seals long past
  EXPECT_EQ(stream.dropped_records(), 1u);
}

TEST(StreamingDetectorTest, CountersConsistent) {
  StreamingDetector stream{TimePoint::origin(), config50(), nstar(5, 1000),
                           ServiceTimeTable{{1000.0}}};
  std::size_t cb_count = 0;
  stream.on_interval([&](std::size_t, double, double, IntervalState) {
    ++cb_count;
  });
  for (std::int64_t t = 0; t < 500'000; t += 1000) {
    stream.push(rec(t, t + 800));
  }
  stream.finish();
  EXPECT_EQ(stream.intervals_emitted(), cb_count);
  EXPECT_EQ(stream.congested_intervals(), 0u);  // load ~0.8 < N*
}

// --- reset(): a detector rewound mid-stream must be indistinguishable from
// a freshly constructed one fed the same second stream. ---

struct Emitted {
  std::vector<double> loads;
  std::vector<IntervalState> states;
  std::vector<Episode> episodes;
};

void record_into(StreamingDetector& stream, Emitted& out) {
  stream.on_interval([&out](std::size_t, double load, double, IntervalState s) {
    out.loads.push_back(load);
    out.states.push_back(s);
  });
  stream.on_episode([&out](const Episode& e) { out.episodes.push_back(e); });
}

std::vector<trace::RequestRecord> burst_stream(std::int64_t origin) {
  // A congested burst in [100,200)ms followed by a quiet tail, relative to
  // `origin` — the same shape the episode test above uses.
  std::vector<trace::RequestRecord> records;
  for (int i = 0; i < 20; ++i) {
    records.push_back(rec(origin + 100'000, origin + 200'000 + i));
  }
  for (std::int64_t t = 200'000; t < 800'000; t += 10'000) {
    records.push_back(rec(origin + t, origin + t + 1000));
  }
  return records;
}

TEST(StreamingDetectorTest, ResetMidStreamMatchesFreshDetector) {
  const ServiceTimeTable table{{1000.0}};
  const auto second = burst_stream(5'000'000);

  // Reset victim: fed half of an unrelated first stream, then rewound
  // mid-flight (open cells, a partially built episode, and non-zero
  // counters all pending) onto the second stream.
  StreamingDetector reused{TimePoint::origin(), config50(), nstar(5, 1e6),
                           table};
  Emitted reused_out;
  record_into(reused, reused_out);
  reused.push_batch(burst_stream(0));
  reused.push(rec(100, 1100));  // ancient -> bumps dropped_records()
  ASSERT_GT(reused.intervals_emitted(), 0u);
  ASSERT_EQ(reused.dropped_records(), 1u);

  reused.reset(TimePoint::from_micros(5'000'000));
  reused_out = Emitted{};
  EXPECT_EQ(reused.intervals_emitted(), 0u);
  EXPECT_EQ(reused.congested_intervals(), 0u);
  EXPECT_EQ(reused.dropped_records(), 0u);
  EXPECT_TRUE(reused.episodes().empty());
  reused.push_batch(second);
  reused.finish();

  StreamingDetector fresh{TimePoint::from_micros(5'000'000), config50(),
                          nstar(5, 1e6), table};
  Emitted fresh_out;
  record_into(fresh, fresh_out);
  fresh.push_batch(second);
  fresh.finish();

  EXPECT_TRUE(reused_out.loads == fresh_out.loads);
  EXPECT_EQ(reused_out.states, fresh_out.states);
  EXPECT_EQ(reused.intervals_emitted(), fresh.intervals_emitted());
  EXPECT_EQ(reused.congested_intervals(), fresh.congested_intervals());
  EXPECT_EQ(reused.dropped_records(), fresh.dropped_records());
  ASSERT_EQ(reused_out.episodes.size(), fresh_out.episodes.size());
  ASSERT_EQ(reused.episodes().size(), fresh.episodes().size());
  for (std::size_t i = 0; i < fresh.episodes().size(); ++i) {
    EXPECT_EQ(reused.episodes()[i].start.micros(),
              fresh.episodes()[i].start.micros());
    EXPECT_EQ(reused.episodes()[i].duration.micros(),
              fresh.episodes()[i].duration.micros());
    EXPECT_EQ(reused.episodes()[i].peak_load, fresh.episodes()[i].peak_load);
  }
}

TEST(StreamingDetectorTest, ResetKeepsCallbacksAndCalibration) {
  // Callbacks registered before reset() must keep firing after it, and the
  // frozen N* must still classify the post-reset burst as congested.
  StreamingDetector stream{TimePoint::origin(), config50(), nstar(5, 1e6),
                           ServiceTimeTable{{1000.0}}};
  Emitted out;
  record_into(stream, out);
  stream.push_batch(burst_stream(0));
  stream.finish();
  ASSERT_EQ(out.episodes.size(), 1u);

  stream.reset(TimePoint::origin());
  out = Emitted{};
  stream.push_batch(burst_stream(0));
  stream.finish();
  ASSERT_EQ(out.episodes.size(), 1u);
  EXPECT_EQ(out.episodes[0].start.micros(), 100'000);
  EXPECT_EQ(stream.congested_intervals(), 2u);
  EXPECT_GT(out.loads.size(), 0u);
}

TEST(StreamingDetectorTest, ResetAllowsRewindingTime) {
  // After reset the clock may move backwards: records older than the old
  // stream but inside the new window must be accepted, not dropped.
  StreamingDetector stream{TimePoint::from_micros(10'000'000), config50(),
                           nstar(5, 1000), ServiceTimeTable{{1000.0}}};
  stream.push(rec(12'000'000, 12'001'000));
  stream.finish();
  ASSERT_GT(stream.intervals_emitted(), 0u);

  stream.reset(TimePoint::origin());
  stream.push(rec(1000, 2000));
  stream.finish();
  EXPECT_EQ(stream.dropped_records(), 0u);
  EXPECT_GT(stream.intervals_emitted(), 0u);
}

// --- seal_idle(): the daemon's idle-seal deadline uses this to release a
// silent stream's open cells without splitting an in-progress episode. ---

TEST(StreamingDetectorTest, SealIdleSealsToWatermarkAndReleasesCells) {
  StreamingDetector stream{TimePoint::origin(), config50(), nstar(5, 2000),
                           ServiceTimeTable{{1000.0}}};
  for (std::int64_t t = 0; t < 500'000; t += 1000) {
    stream.push(rec(t, t + 800));
  }
  // lag = 200ms holds the last four 50ms intervals open.
  ASSERT_GT(stream.open_intervals(), 0u);
  const std::size_t sealed = stream.seal_idle();
  EXPECT_GT(sealed, 0u);
  EXPECT_EQ(stream.open_intervals(), 0u);
  // Watermark interval inclusive: the sealed horizon passed the last
  // departure.
  EXPECT_GE(stream.sealed_through().micros(), stream.high_water().micros());
  EXPECT_EQ(stream.seal_idle(), 0u);  // idempotent once drained
}

TEST(StreamingDetectorTest, SealIdleKeepsEpisodeOpenAcrossGap) {
  // A congested burst, an idle-seal mid-silence, then the burst resumes:
  // the episode must close once, spanning the gap, exactly as if the
  // records had streamed without the idle-seal.
  // The resumed records arrive at 200ms — past the horizon the idle-seal
  // froze (watermark 199.019ms -> intervals [0,200) sealed) — so their
  // residence lands only in still-open cells and the two runs stay
  // comparable interval by interval.
  const ServiceTimeTable table{{1000.0}};
  auto feed = [&](StreamingDetector& stream, bool idle_seal_between) {
    for (int i = 0; i < 20; ++i) {
      stream.push(rec(100'000, 199'000 + i));
    }
    if (idle_seal_between) {
      stream.seal_idle();
      EXPECT_EQ(stream.open_intervals(), 0u);
    }
    for (int i = 0; i < 20; ++i) {
      stream.push(rec(200'000, 299'000 + i));
    }
    for (std::int64_t t = 300'000; t < 900'000; t += 10'000) {
      stream.push(rec(t, t + 1000));
    }
    stream.finish();
  };

  StreamingDetector plain{TimePoint::origin(), config50(), nstar(5, 1e6),
                          table};
  Emitted plain_out;
  record_into(plain, plain_out);
  feed(plain, false);

  StreamingDetector sealed{TimePoint::origin(), config50(), nstar(5, 1e6),
                           table};
  Emitted sealed_out;
  record_into(sealed, sealed_out);
  feed(sealed, true);

  ASSERT_EQ(plain_out.episodes.size(), 1u);
  ASSERT_EQ(sealed_out.episodes.size(), 1u);
  EXPECT_EQ(sealed_out.episodes[0].start.micros(),
            plain_out.episodes[0].start.micros());
  EXPECT_EQ(sealed_out.episodes[0].duration.micros(),
            plain_out.episodes[0].duration.micros());
  EXPECT_TRUE(sealed_out.loads == plain_out.loads);
  EXPECT_EQ(sealed_out.states, plain_out.states);
}

TEST(StreamingDetectorTest, SealIdleThenFinishMatchesFinishAlone) {
  const ServiceTimeTable table{{1000.0}};
  const auto records = burst_stream(0);

  StreamingDetector direct{TimePoint::origin(), config50(), nstar(5, 1e6),
                           table};
  Emitted direct_out;
  record_into(direct, direct_out);
  direct.push_batch(records);
  direct.finish();

  StreamingDetector pre_sealed{TimePoint::origin(), config50(), nstar(5, 1e6),
                               table};
  Emitted pre_out;
  record_into(pre_sealed, pre_out);
  pre_sealed.push_batch(records);
  pre_sealed.seal_idle();
  pre_sealed.finish();

  EXPECT_TRUE(pre_out.loads == direct_out.loads);
  EXPECT_EQ(pre_out.states, direct_out.states);
  ASSERT_EQ(pre_out.episodes.size(), direct_out.episodes.size());
  EXPECT_EQ(pre_sealed.intervals_emitted(), direct.intervals_emitted());
  EXPECT_EQ(pre_sealed.sealed_by_state(), direct.sealed_by_state());
}

TEST(StreamingDetectorTest, SealIdleOnEmptyDetectorIsNoOp) {
  StreamingDetector stream{TimePoint::origin(), config50(), nstar(5, 1000),
                           ServiceTimeTable{{1000.0}}};
  EXPECT_EQ(stream.seal_idle(), 0u);
  EXPECT_EQ(stream.intervals_emitted(), 0u);
  EXPECT_EQ(stream.open_intervals(), 0u);
}

}  // namespace
}  // namespace tbd::core
