#include "core/intervals.h"

#include <gtest/gtest.h>

namespace tbd::core {
namespace {

using namespace tbd::literals;

TEST(IntervalSpecTest, OverComputesCount) {
  const auto spec = IntervalSpec::over(TimePoint::origin(),
                                       TimePoint::origin() + 1_s, 50_ms);
  EXPECT_EQ(spec.count, 20u);
  EXPECT_EQ(spec.end().micros(), 1'000'000);
}

TEST(IntervalSpecTest, PartialTrailingIntervalDropped) {
  const auto spec = IntervalSpec::over(TimePoint::origin(),
                                       TimePoint::origin() + 130_ms, 50_ms);
  EXPECT_EQ(spec.count, 2u);  // [0,50) and [50,100); the tail 30ms is dropped
}

TEST(IntervalSpecTest, IndexOfAndContains) {
  const auto spec = IntervalSpec::over(TimePoint::from_micros(1000),
                                       TimePoint::from_micros(4000),
                                       Duration::micros(1000));
  EXPECT_TRUE(spec.contains(TimePoint::from_micros(1000)));
  EXPECT_TRUE(spec.contains(TimePoint::from_micros(3999)));
  EXPECT_FALSE(spec.contains(TimePoint::from_micros(4000)));
  EXPECT_FALSE(spec.contains(TimePoint::from_micros(999)));
  EXPECT_EQ(spec.index_of(TimePoint::from_micros(1000)), 0u);
  EXPECT_EQ(spec.index_of(TimePoint::from_micros(2500)), 1u);
  EXPECT_EQ(spec.index_of(TimePoint::from_micros(3999)), 2u);
}

TEST(IntervalSpecTest, MidpointsSeconds) {
  const auto spec = IntervalSpec::over(TimePoint::origin(),
                                       TimePoint::origin() + 100_ms, 50_ms);
  const auto mids = spec.midpoints_seconds();
  ASSERT_EQ(mids.size(), 2u);
  EXPECT_DOUBLE_EQ(mids[0], 0.025);
  EXPECT_DOUBLE_EQ(mids[1], 0.075);
}

TEST(IntervalCoverageTest, SingleWindowPartialCoverage) {
  const auto spec = IntervalSpec::over(TimePoint::origin(),
                                       TimePoint::origin() + 200_ms, 100_ms);
  const std::vector<TimeWindow> windows{
      {TimePoint::from_micros(50'000), TimePoint::from_micros(150'000)}};
  const auto cov = interval_coverage(windows, spec);
  EXPECT_DOUBLE_EQ(cov[0], 0.5);
  EXPECT_DOUBLE_EQ(cov[1], 0.5);
}

TEST(IntervalCoverageTest, OverlappingWindowsMerge) {
  const auto spec = IntervalSpec::over(TimePoint::origin(),
                                       TimePoint::origin() + 100_ms, 100_ms);
  const std::vector<TimeWindow> windows{
      {TimePoint::from_micros(0), TimePoint::from_micros(60'000)},
      {TimePoint::from_micros(40'000), TimePoint::from_micros(80'000)}};
  const auto cov = interval_coverage(windows, spec);
  EXPECT_DOUBLE_EQ(cov[0], 0.8);  // union [0,80), not 0.6 + 0.4
}

TEST(IntervalCoverageTest, WindowOutsideGridIgnored) {
  const auto spec = IntervalSpec::over(TimePoint::origin(),
                                       TimePoint::origin() + 100_ms, 100_ms);
  const std::vector<TimeWindow> windows{
      {TimePoint::from_micros(500'000), TimePoint::from_micros(600'000)}};
  const auto cov = interval_coverage(windows, spec);
  EXPECT_DOUBLE_EQ(cov[0], 0.0);
}

TEST(IntervalCoverageTest, FullCoverage) {
  const auto spec = IntervalSpec::over(TimePoint::origin(),
                                       TimePoint::origin() + 150_ms, 50_ms);
  const std::vector<TimeWindow> windows{
      {TimePoint::from_micros(-10'000), TimePoint::from_micros(500'000)}};
  const auto cov = interval_coverage(windows, spec);
  for (double c : cov) EXPECT_DOUBLE_EQ(c, 1.0);
}

TEST(IntervalCoverageTest, GcRatioScenario) {
  // Three 40ms "GC pauses" over a 1s grid at 50ms: each pause covers most of
  // one interval and part of the next.
  const auto spec = IntervalSpec::over(TimePoint::origin(),
                                       TimePoint::origin() + 1_s, 50_ms);
  std::vector<TimeWindow> gcs;
  for (int i = 0; i < 3; ++i) {
    const std::int64_t start = 100'000 + i * 300'000;
    gcs.push_back({TimePoint::from_micros(start),
                   TimePoint::from_micros(start + 40'000)});
  }
  const auto cov = interval_coverage(gcs, spec);
  double total = 0.0;
  for (double c : cov) total += c * 0.05;
  EXPECT_NEAR(total, 0.120, 1e-9);  // 3 x 40ms of GC time
  EXPECT_DOUBLE_EQ(cov[2], 0.8);    // [100,140) covers 40/50 of [100,150)
}

TEST(IntervalCoverageTest, EmptyInputs) {
  const auto spec = IntervalSpec::over(TimePoint::origin(),
                                       TimePoint::origin() + 100_ms, 50_ms);
  EXPECT_EQ(interval_coverage({}, spec).size(), 2u);
  IntervalSpec empty;
  empty.count = 0;
  const std::vector<TimeWindow> windows{{TimePoint::origin(), TimePoint::origin() + 1_s}};
  EXPECT_TRUE(interval_coverage(windows, empty).empty());
}

}  // namespace
}  // namespace tbd::core
