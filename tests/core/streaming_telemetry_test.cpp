#include "core/streaming_telemetry.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/streaming_detector.h"
#include "obs/event_log.h"
#include "obs/metrics.h"

namespace tbd::core {
namespace {

using namespace tbd::literals;

trace::RequestRecord rec(std::int64_t a, std::int64_t d, trace::ClassId c = 0) {
  trace::RequestRecord r;
  r.server = 0;
  r.class_id = c;
  r.arrival = TimePoint::from_micros(a);
  r.departure = TimePoint::from_micros(d);
  return r;
}

NStarResult nstar(double n, double tp) {
  NStarResult r;
  r.n_star = n;
  r.tp_max = tp;
  r.converged = true;
  return r;
}

StreamingDetector::Config config50() {
  StreamingDetector::Config cfg;
  cfg.width = 50_ms;
  cfg.lag = 200_ms;
  return cfg;
}

// One burst above N* inside an otherwise steady stream (same shape as the
// detector tests): 20 concurrent requests in [100, 200)ms, then trickle.
void feed_burst(StreamingDetector& stream) {
  for (int i = 0; i < 20; ++i) stream.push(rec(100'000, 200'000 + i));
  for (std::int64_t t = 200'000; t < 800'000; t += 10'000) {
    stream.push(rec(t, t + 1000));
  }
  stream.finish();
}

TEST(StreamingTelemetryTest, PopulatesLabeledMetrics) {
  obs::Registry registry;
  StreamingDetector stream{TimePoint::origin(), config50(), nstar(5, 1e6),
                           ServiceTimeTable{{1000.0}}};
  StreamingTelemetry telemetry{stream, {"server0"}, registry, nullptr};
  feed_burst(stream);
  telemetry.add_records(80);
  telemetry.sync();

  const obs::Labels labels{{"stream", "server0"}};
  EXPECT_EQ(registry.counter("tbd_stream_records_total", labels).value(), 80u);
  EXPECT_EQ(registry.counter("tbd_stream_episode_opens_total", labels).value(),
            1u);
  EXPECT_EQ(
      registry.counter("tbd_stream_episode_closes_total", labels).value(), 1u);
  // Per-state sealed counters mirror the detector's own tallies.
  const auto& by_state = stream.sealed_by_state();
  const char* states[] = {"idle", "normal", "congested", "frozen"};
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < 4; ++s) {
    obs::Labels sl = labels;
    sl.emplace_back("state", states[s]);
    const auto count =
        registry.counter("tbd_stream_intervals_total", sl).value();
    EXPECT_EQ(count, by_state[s]) << states[s];
    total += count;
  }
  EXPECT_EQ(total, stream.intervals_emitted());
  // The burst's intervals hold 20 requests but complete none (departures
  // land after them), so they classify frozen, not congested.
  EXPECT_EQ(by_state[static_cast<std::size_t>(IntervalState::kFrozen)], 2u);

  // Calibration gauges carry the frozen N*/TPmax.
  EXPECT_DOUBLE_EQ(registry.gauge("tbd_stream_nstar", labels).value(), 5.0);
  EXPECT_DOUBLE_EQ(registry.gauge("tbd_stream_tpmax", labels).value(), 1e6);
  // Episode histograms saw the one close: 100ms duration, peak ~20.
  const auto dur = registry
                       .histogram("tbd_stream_episode_duration_ms", labels,
                                  {1.0})  // bounds ignored on reuse
                       .snapshot();
  EXPECT_EQ(dur.count, 1u);
  EXPECT_NEAR(dur.sum, 100.0, 1e-9);
  const auto peak =
      registry.histogram("tbd_stream_episode_peak_load", labels, {1.0})
          .snapshot();
  EXPECT_EQ(peak.count, 1u);
  EXPECT_NEAR(peak.sum, 20.0, 0.1);
}

TEST(StreamingTelemetryTest, EmitsEventsInSealOrder) {
  obs::Registry registry;
  std::ostringstream out;
  obs::EventLog events{&out};
  StreamingDetector stream{TimePoint::origin(), config50(), nstar(5, 1e6),
                           ServiceTimeTable{{1000.0}}};
  StreamingTelemetry telemetry{stream, {"server0"}, registry, &events};
  feed_burst(stream);

  const std::string text = out.str();
  // The burst occupies intervals 2-3 ([100,200)ms): open at index 2, close
  // with the episode's absolute start and 100ms duration.
  EXPECT_NE(text.find("\"type\":\"episode_open\",\"seq\":"),
            std::string::npos);
  EXPECT_NE(text.find("\"stream\":\"server0\",\"index\":2,\"t_us\":100000}"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("\"start_us\":100000,\"duration_us\":100000"),
            std::string::npos)
      << text;
  // interval_sealed t_us advances on the 50ms grid.
  EXPECT_NE(text.find("\"index\":0,\"t_us\":0,"), std::string::npos) << text;
  EXPECT_NE(text.find("\"index\":1,\"t_us\":50000,"), std::string::npos)
      << text;
  EXPECT_EQ(events.events_emitted(),
            static_cast<std::uint64_t>(stream.intervals_emitted()) + 2);
}

TEST(StreamingTelemetryTest, ChainsPreviouslyInstalledCallbacks) {
  obs::Registry registry;
  StreamingDetector stream{TimePoint::origin(), config50(), nstar(5, 1e6),
                           ServiceTimeTable{{1000.0}}};
  std::size_t user_intervals = 0;
  std::vector<Episode> user_episodes;
  std::size_t user_opens = 0;
  stream.on_interval(
      [&](std::size_t, double, double, IntervalState) { ++user_intervals; });
  stream.on_episode([&](const Episode& e) { user_episodes.push_back(e); });
  stream.on_episode_open([&](std::size_t, TimePoint) { ++user_opens; });

  StreamingTelemetry telemetry{stream, {"server0"}, registry, nullptr};
  feed_burst(stream);

  EXPECT_EQ(user_intervals, stream.intervals_emitted());
  EXPECT_EQ(user_episodes.size(), 1u);
  EXPECT_EQ(user_opens, 1u);
}

TEST(StreamingTelemetryTest, SyncFoldsDroppedDelta) {
  obs::Registry registry;
  StreamingDetector stream{TimePoint::origin(), config50(), nstar(5, 1e6),
                           ServiceTimeTable{{1000.0}}};
  StreamingTelemetry telemetry{stream, {"server0"}, registry, nullptr};
  stream.push(rec(0, 500'000));
  stream.push(rec(0, 100, 0));        // fine
  stream.push(rec(600'000, 599'000)); // departure < arrival: dropped
  telemetry.sync();
  const obs::Labels labels{{"stream", "server0"}};
  EXPECT_EQ(
      registry.counter("tbd_stream_dropped_records_total", labels).value(),
      stream.dropped_records());
  EXPECT_GE(stream.dropped_records(), 1u);
  telemetry.sync();  // idempotent: no double count
  EXPECT_EQ(
      registry.counter("tbd_stream_dropped_records_total", labels).value(),
      stream.dropped_records());
}

TEST(StreamingTelemetryTest, FreshnessGaugesTrackWatermarkAndSealLag) {
  obs::Registry registry;
  StreamingDetector stream{TimePoint::origin(), config50(), nstar(5, 1e6),
                           ServiceTimeTable{{1000.0}}};
  StreamingTelemetry telemetry{stream, {"server0"}, registry, nullptr};
  const obs::Labels labels{{"stream", "server0"}};

  // Watermark at 430ms with lag 200ms / width 50ms: intervals seal once
  // end + lag <= watermark, so [0,200)ms is sealed and the rest is open.
  stream.push(rec(0, 1000));
  stream.push(rec(400'000, 430'000));
  telemetry.sync();
  EXPECT_DOUBLE_EQ(
      registry.gauge("tbd_stream_ingest_watermark_us", labels).value(),
      430'000.0);
  EXPECT_DOUBLE_EQ(
      registry.gauge("tbd_stream_sealed_through_us", labels).value(),
      200'000.0);
  EXPECT_DOUBLE_EQ(registry.gauge("tbd_stream_seal_lag_us", labels).value(),
                   230'000.0);
  EXPECT_DOUBLE_EQ(
      registry.gauge("tbd_stream_open_intervals", labels).value(),
      static_cast<double>(stream.open_intervals()));
  EXPECT_GT(stream.open_intervals(), 0u);

  // finish() seals the tail whole: lag clamps to 0, nothing stays open.
  stream.finish();
  telemetry.sync();
  EXPECT_DOUBLE_EQ(registry.gauge("tbd_stream_seal_lag_us", labels).value(),
                   0.0);
  EXPECT_DOUBLE_EQ(
      registry.gauge("tbd_stream_open_intervals", labels).value(), 0.0);
  EXPECT_GE(stream.sealed_through().micros(), stream.high_water().micros());
}

TEST(StreamingTelemetryTest, StatusJsonCarriesTheFreshnessTable) {
  obs::Registry registry;
  StreamingDetector stream{TimePoint::origin(), config50(), nstar(5, 1e6),
                           ServiceTimeTable{{1000.0}}};
  StreamingTelemetry telemetry{stream, {"server0"}, registry, nullptr};
  feed_burst(stream);
  telemetry.add_records(80);
  telemetry.sync();

  const std::string json = telemetry.status_json();
  EXPECT_NE(json.find("\"stream\":\"server0\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"records\":80"), std::string::npos) << json;
  EXPECT_NE(json.find("\"episodes\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"seal_lag_us\":0"), std::string::npos) << json;
  EXPECT_NE(json.find("\"ingest_watermark_us\":"), std::string::npos);
  EXPECT_NE(json.find("\"open_intervals\":0"), std::string::npos) << json;
  EXPECT_NE(json.find("\"nstar\":5"), std::string::npos) << json;
}

TEST(StreamingTelemetryTest, MirrorReceivesEveryEventWithItsOwnSequence) {
  // The daemon points `events` at the shared journal and `mirror` at the
  // stream's private log: same events in both, but the mirror numbers them
  // from its own seq 0 — deterministic however other streams interleave.
  obs::Registry registry;
  std::ostringstream shared_out;
  std::ostringstream mirror_out;
  obs::EventLog shared{&shared_out};
  // Unrelated traffic bumps the shared journal's sequence before our
  // stream says anything.
  shared.interval_sealed("other", 0, 0, 1.0, 2.0, "normal");
  obs::EventLog mirror{&mirror_out};

  StreamingDetector stream{TimePoint::origin(), config50(), nstar(5, 1e6),
                           ServiceTimeTable{{1000.0}}};
  StreamingTelemetry telemetry{stream, {"server0"}, registry, &shared,
                               &mirror};
  feed_burst(stream);

  const std::string shared_text = shared_out.str();
  const std::string mirror_text = mirror_out.str();
  // Both sinks saw the full event stream for server0...
  for (const char* needle :
       {"\"type\":\"episode_open\"", "\"type\":\"episode_close\"",
        "\"stream\":\"server0\",\"index\":2,\"t_us\":100000}",
        "\"start_us\":100000,\"duration_us\":100000"}) {
    EXPECT_NE(shared_text.find(needle), std::string::npos) << needle;
    EXPECT_NE(mirror_text.find(needle), std::string::npos) << needle;
  }
  // ...and the mirror's numbering starts at seq 1 even though the shared
  // journal is already past it.
  EXPECT_NE(mirror_text.find("\"type\":\"interval_sealed\",\"seq\":1,"),
            std::string::npos)
      << mirror_text;
  EXPECT_EQ(shared_text.find("\"type\":\"interval_sealed\",\"seq\":1,"
                             "\"stream\":\"server0\""),
            std::string::npos)
      << "shared seq 1 should belong to the other stream";
  EXPECT_EQ(mirror.events_emitted(), shared.events_emitted() - 1);

  // A null mirror stays a no-op (the tbd_watch configuration).
  StreamingDetector plain{TimePoint::origin(), config50(), nstar(5, 1e6),
                          ServiceTimeTable{{1000.0}}};
  StreamingTelemetry no_mirror{plain, {"server1"}, registry, nullptr, nullptr};
  feed_burst(plain);
  EXPECT_EQ(plain.intervals_emitted(), stream.intervals_emitted());
}

}  // namespace
}  // namespace tbd::core
