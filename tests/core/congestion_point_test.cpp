// Congestion-point (N*) estimation, Section III-C: synthetic main-sequence
// curves with known knees.
#include "core/congestion_point.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace tbd::core {
namespace {

// Builds (load, tput) samples from tput = min(load, knee) * slope with
// optional multiplicative noise.
struct Curve {
  std::vector<double> load;
  std::vector<double> tput;
};

Curve saturating_curve(double knee, double slope, double load_max,
                       int samples, double noise_cv, std::uint64_t seed) {
  Curve c;
  Rng rng{seed};
  for (int i = 0; i < samples; ++i) {
    const double l = rng.uniform(0.0, load_max);
    double t = std::min(l, knee) * slope;
    if (noise_cv > 0.0) t *= rng.gamma(1.0 / (noise_cv * noise_cv),
                                       noise_cv * noise_cv);
    c.load.push_back(l);
    c.tput.push_back(t);
  }
  return c;
}

TEST(NStarTest, CleanKneeDetected) {
  const auto c = saturating_curve(10.0, 100.0, 40.0, 4000, 0.0, 1);
  const auto result = estimate_congestion_point(c.load, c.tput);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.n_star, 10.0, 1.5);
  EXPECT_NEAR(result.tp_max, 1000.0, 20.0);
}

TEST(NStarTest, NoisyKneeDetected) {
  const auto c = saturating_curve(20.0, 50.0, 80.0, 6000, 0.15, 2);
  const auto result = estimate_congestion_point(c.load, c.tput);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.n_star, 20.0, 4.0);
}

TEST(NStarTest, UnsaturatedServerDoesNotConverge) {
  // Pure linear curve: the server never saturates in the observed range.
  const auto c = saturating_curve(1e9, 100.0, 30.0, 3000, 0.05, 3);
  const auto result = estimate_congestion_point(c.load, c.tput);
  EXPECT_FALSE(result.converged);
  // N* parked at the top of the range => nothing classified congested.
  EXPECT_GT(result.n_star, 25.0);
}

TEST(NStarTest, EmptyInput) {
  const auto result = estimate_congestion_point({}, {});
  EXPECT_FALSE(result.converged);
  EXPECT_DOUBLE_EQ(result.n_star, 0.0);
}

TEST(NStarTest, ConstantLoadDegenerate) {
  const std::vector<double> load(100, 5.0);
  const std::vector<double> tput(100, 400.0);
  const auto result = estimate_congestion_point(load, tput);
  EXPECT_FALSE(result.converged);
  EXPECT_DOUBLE_EQ(result.n_star, 5.0);
}

TEST(NStarTest, BinsAreOrderedAndPopulated) {
  const auto c = saturating_curve(10.0, 100.0, 40.0, 4000, 0.1, 4);
  NStarConfig cfg;
  cfg.min_samples_per_bin = 5;
  const auto result = estimate_congestion_point(c.load, c.tput, cfg);
  ASSERT_GT(result.bins.size(), 5u);
  for (std::size_t i = 1; i < result.bins.size(); ++i) {
    EXPECT_GT(result.bins[i].load, result.bins[i - 1].load);
    EXPECT_GE(result.bins[i].samples, cfg.min_samples_per_bin);
  }
  EXPECT_EQ(result.slopes.size(), result.bins.size());
}

TEST(NStarTest, KneePositionTracksTrueKnee) {
  // Property-style check across a range of knees.
  for (double knee : {5.0, 12.0, 25.0}) {
    const auto c = saturating_curve(knee, 80.0, knee * 4.0, 6000, 0.1,
                                    static_cast<std::uint64_t>(knee));
    const auto result = estimate_congestion_point(c.load, c.tput);
    EXPECT_TRUE(result.converged) << "knee=" << knee;
    EXPECT_NEAR(result.n_star, knee, knee * 0.3) << "knee=" << knee;
  }
}

TEST(NStarTest, InterventionWalkFindsCleanKnee) {
  // The paper's Equations 1-2 (with our flat-tail hardening) on a clean
  // saturating curve.
  const auto c = saturating_curve(10.0, 100.0, 40.0, 4000, 0.0, 21);
  NStarConfig cfg;
  cfg.method = NStarMethod::kInterventionWalk;
  const auto result = estimate_congestion_point(c.load, c.tput, cfg);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.n_star, 10.0, 2.5);
}

TEST(NStarTest, InterventionWalkRejectsLinearCurve) {
  // On a pure linear curve the hardened walk must not place a knee in the
  // bulk of the range; a noise trip surviving at the extreme top (where the
  // flat-window checks see only 2-3 bins) is tolerable.
  const auto c = saturating_curve(1e9, 100.0, 30.0, 3000, 0.05, 22);
  NStarConfig cfg;
  cfg.method = NStarMethod::kInterventionWalk;
  const auto result = estimate_congestion_point(c.load, c.tput, cfg);
  EXPECT_GT(result.n_star, 25.0);
}

TEST(NStarTest, MethodsAgreeOnWellBehavedCurves) {
  const auto c = saturating_curve(15.0, 60.0, 60.0, 6000, 0.1, 23);
  NStarConfig walk;
  walk.method = NStarMethod::kInterventionWalk;
  const auto robust = estimate_congestion_point(c.load, c.tput);
  const auto faithful = estimate_congestion_point(c.load, c.tput, walk);
  ASSERT_TRUE(robust.converged);
  ASSERT_TRUE(faithful.converged);
  EXPECT_NEAR(robust.n_star, faithful.n_star, 6.0);
}

TEST(NStarTest, NoiseTripsAreRejectedByFlatTailCheck) {
  // A linear curve with strong noise: the prefix bound alone would trip
  // early, but the tail keeps climbing, so the estimator must not converge
  // to a tiny N*.
  const auto c = saturating_curve(1e9, 100.0, 50.0, 5000, 0.25, 7);
  const auto result = estimate_congestion_point(c.load, c.tput);
  if (result.converged) {
    EXPECT_GT(result.n_star, 25.0);  // certainly not in the linear bulk
  }
}

}  // namespace
}  // namespace tbd::core
