// The fused sweep's contract is bit-identical equivalence with the two
// separate calculators, so every comparison here is exact (operator== on the
// double vectors), not approximate.
#include "core/fused_sweep.h"

#include <gtest/gtest.h>

#include "core/load_calculator.h"
#include "core/throughput_calculator.h"
#include "util/rng.h"

namespace tbd::core {
namespace {

using namespace tbd::literals;

trace::RequestRecord rec(std::int64_t a, std::int64_t d, trace::ClassId c = 0) {
  trace::RequestRecord r;
  r.server = 0;
  r.class_id = c;
  r.arrival = TimePoint::from_micros(a);
  r.departure = TimePoint::from_micros(d);
  return r;
}

std::vector<trace::RequestRecord> random_log(std::size_t n, double horizon_us,
                                             std::uint64_t seed) {
  Rng rng{seed};
  std::vector<trace::RequestRecord> log;
  log.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double at = rng.uniform(-0.05 * horizon_us, horizon_us);
    const double service = rng.exponential(700.0);
    log.push_back(rec(static_cast<std::int64_t>(at),
                      static_cast<std::int64_t>(at + service),
                      static_cast<trace::ClassId>(rng.uniform_index(8))));
  }
  return log;
}

ServiceTimeTable table8() {
  std::vector<double> us;
  for (int c = 0; c < 8; ++c) us.push_back(150.0 + 80.0 * c);
  return ServiceTimeTable{us};
}

void expect_bit_identical(std::span<const trace::RequestRecord> records,
                          const IntervalSpec& spec,
                          const ServiceTimeTable& table,
                          const ThroughputOptions& options) {
  const auto fused = compute_load_throughput(records, spec, table, options);
  EXPECT_TRUE(fused.load == compute_load(records, spec));
  EXPECT_TRUE(fused.throughput ==
              compute_throughput(records, spec, table, options));
  EXPECT_EQ(fused.load.size(), spec.count);
  EXPECT_EQ(fused.throughput.size(), spec.count);
}

TEST(FusedSweepTest, MatchesSeparateCalculatorsOnRandomLogs) {
  const auto table = table8();
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    SCOPED_TRACE(seed);
    const auto log = random_log(5'000, 2e6, seed);
    for (const auto width : {20_ms, 50_ms, 1_s}) {
      const auto spec = IntervalSpec::over(TimePoint::origin(),
                                           TimePoint::from_micros(2'000'000),
                                           width);
      expect_bit_identical(log, spec, table, ThroughputOptions{});
    }
  }
}

TEST(FusedSweepTest, MatchesAcrossThroughputModesAndUnits) {
  const auto table = table8();
  const auto log = random_log(3'000, 1e6, 7);
  const auto spec = IntervalSpec::over(TimePoint::origin(),
                                       TimePoint::from_micros(1'000'000), 50_ms);
  for (const auto mode : {ThroughputMode::kRequestsCompleted,
                          ThroughputMode::kNormalizedWorkUnits}) {
    for (const bool per_second : {true, false}) {
      for (const double unit : {0.0, 333.0}) {
        SCOPED_TRACE(static_cast<int>(mode));
        ThroughputOptions options;
        options.mode = mode;
        options.per_second = per_second;
        options.work_unit_us = unit;
        expect_bit_identical(log, spec, table, options);
      }
    }
  }
}

TEST(FusedSweepTest, MatchesOnGridEdgeCases) {
  const auto table = table8();
  const auto spec = IntervalSpec::over(TimePoint::origin(),
                                       TimePoint::from_micros(200'000), 50_ms);
  const std::vector<trace::RequestRecord> log{
      rec(0, 0),                    // zero-length at the grid start
      rec(-10'000, 300'000),        // spans the whole grid
      rec(-5'000, -1),              // entirely before
      rec(200'000, 250'000),        // departs at/after the grid end
      rec(49'999, 50'000),          // straddles an interval edge
      rec(150'000, 150'000, 3),     // zero-length on an interior edge
      rec(199'999, 200'000),        // departure == spec.end()
  };
  expect_bit_identical(log, spec, table, ThroughputOptions{});
}

TEST(FusedSweepTest, MatchesOnEmptyInputs) {
  const auto table = table8();
  const auto spec = IntervalSpec::over(TimePoint::origin(),
                                       TimePoint::from_micros(100'000), 50_ms);
  expect_bit_identical({}, spec, table, ThroughputOptions{});

  IntervalSpec empty;
  empty.count = 0;
  const auto log = random_log(100, 1e5, 9);
  expect_bit_identical(log, empty, table, ThroughputOptions{});
}

// --- Interval-math edge regressions: the cases below pin EXACT output
// values (not just fused == separate), so an off-by-one in the clipping or
// binning arithmetic cannot slip in as a consistent bug on both sides. ---

TEST(FusedSweepTest, EmptyLogYieldsExactZeroSeries) {
  const auto spec = IntervalSpec::over(TimePoint::origin(),
                                       TimePoint::from_micros(200'000), 50_ms);
  const auto fused =
      compute_load_throughput(trace::RequestLog{}, spec, table8());
  ASSERT_EQ(fused.load.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(fused.load[i], 0.0) << i;
    EXPECT_EQ(fused.throughput[i], 0.0) << i;
  }
}

TEST(FusedSweepTest, SingleRecordExactValues) {
  // [10ms, 35ms) on a 50ms grid: 25ms of residence in interval 0, one work
  // unit (class 0 IS the minimum service time) departing in interval 0.
  const auto spec = IntervalSpec::over(TimePoint::origin(),
                                       TimePoint::from_micros(200'000), 50_ms);
  const std::vector<trace::RequestRecord> log{rec(10'000, 35'000)};
  const auto fused = compute_load_throughput(log, spec, table8());
  EXPECT_EQ(fused.load[0], 25'000.0 / 50'000.0);
  EXPECT_EQ(fused.load[1], 0.0);
  EXPECT_EQ(fused.throughput[0], 1.0 / 0.05);  // 1 unit per 50ms, per second
  EXPECT_EQ(fused.throughput[1], 0.0);
}

TEST(FusedSweepTest, ZeroDurationRecordOnBoundaryCountsInLaterInterval) {
  // Zero residence everywhere; the departure sits exactly on the 50ms edge,
  // which belongs to interval 1 (intervals are half-open [start, end)).
  const auto spec = IntervalSpec::over(TimePoint::origin(),
                                       TimePoint::from_micros(200'000), 50_ms);
  const std::vector<trace::RequestRecord> log{rec(50'000, 50'000)};
  const auto fused = compute_load_throughput(log, spec, table8());
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(fused.load[i], 0.0) << i;
  EXPECT_EQ(fused.throughput[0], 0.0);
  EXPECT_EQ(fused.throughput[1], 1.0 / 0.05);
}

TEST(FusedSweepTest, DepartureAtGridEndIsClippedOutOfThroughput) {
  // departure == spec.end(): the final microsecond of residence lands in the
  // last interval, but the completion itself falls outside the half-open
  // grid and must not be counted anywhere.
  const auto spec = IntervalSpec::over(TimePoint::origin(),
                                       TimePoint::from_micros(200'000), 50_ms);
  const std::vector<trace::RequestRecord> log{rec(199'999, 200'000)};
  const auto fused = compute_load_throughput(log, spec, table8());
  EXPECT_EQ(fused.load[3], 1.0 / 50'000.0);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(fused.throughput[i], 0.0) << i;
  }
}

TEST(FusedSweepTest, RecordSpanningWholeGridLoadsEveryIntervalExactlyOnce) {
  const auto spec = IntervalSpec::over(TimePoint::origin(),
                                       TimePoint::from_micros(200'000), 50_ms);
  const std::vector<trace::RequestRecord> log{rec(-10'000, 500'000)};
  const auto fused = compute_load_throughput(log, spec, table8());
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(fused.load[i], 1.0) << i;
    EXPECT_EQ(fused.throughput[i], 0.0) << i;  // departs past the grid
  }
}

}  // namespace
}  // namespace tbd::core
