// Unit tests of critical-path latency attribution: episode windows from
// detection states, band assignment via the histogram cutoffs, writer
// schemas, and the paper's GC story — tail-band requests attribute the
// majority of their queue-wait to the frozen server's in-episode intervals.
#include "core/attribution.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/detector.h"
#include "trace/txn_tree.h"

namespace tbd::core {
namespace {

trace::RequestRecord rec(trace::ServerIndex server, std::int64_t arrival,
                         std::int64_t departure, trace::TxnId txn,
                         trace::ClassId cls = 1) {
  return trace::RequestRecord{.server = server,
                              .class_id = cls,
                              .arrival = TimePoint::from_micros(arrival),
                              .departure = TimePoint::from_micros(departure),
                              .txn = txn};
}

/// A detection whose states are hand-set: `congested` interval indices on a
/// 50 ms grid over [0, horizon_us).
DetectionResult fake_detection(std::int64_t horizon_us,
                               const std::vector<std::size_t>& congested) {
  DetectionResult d;
  d.spec = IntervalSpec::over(TimePoint::origin(),
                              TimePoint::from_micros(horizon_us),
                              Duration::millis(50));
  d.states.assign(d.spec.count, IntervalState::kNormal);
  for (const std::size_t i : congested) d.states[i] = IntervalState::kCongested;
  return d;
}

TEST(CongestedWindowsTest, MergesAdjacentCongestedAndFrozen) {
  DetectionResult d = fake_detection(500000, {2, 3});
  d.states[4] = IntervalState::kFrozen;  // run continues through a freeze
  const auto windows = congested_windows(d);
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0].start.micros(), 100000);
  EXPECT_EQ(windows[0].end.micros(), 250000);
}

TEST(CongestedWindowsTest, EmptyWhenNothingCongested) {
  EXPECT_TRUE(congested_windows(fake_detection(500000, {})).empty());
}

TEST(AttributionTest, BandsPartitionTransactions) {
  // 4 fast + 1 slow single-visit transactions.
  std::vector<trace::RequestRecord> log;
  for (int i = 0; i < 4; ++i) {
    log.push_back(rec(0, i * 10000, i * 10000 + 1000, i + 1));
  }
  log.push_back(rec(0, 50000, 150000, 5));
  const auto profiles = trace::build_profiles(log);
  const auto assembly = trace::assemble_transactions(log, &profiles);
  const std::vector<trace::ServerIndex> servers{0};
  const std::vector<DetectionResult> detections{fake_detection(200000, {})};
  const auto report =
      attribute_latency(assembly.txns, servers, detections, profiles, {});
  ASSERT_EQ(report.bands.size(), 5u);  // p50 p90 p95 p99 pmax
  EXPECT_EQ(report.txns, 5u);
  std::uint64_t total = 0;
  double latency = 0.0;
  for (const auto& band : report.bands) {
    total += band.txns;
    latency += band.latency_us;
  }
  EXPECT_EQ(total, 5u);
  EXPECT_NEAR(latency, 4 * 1000.0 + 100000.0, 1e-6);
  // With no episodes, every microsecond lands in the out-of-episode buckets.
  for (const auto& band : report.bands) {
    for (const auto& s : band.servers) {
      EXPECT_DOUBLE_EQ(s.queue_in_us, 0.0);
      EXPECT_DOUBLE_EQ(s.service_in_us, 0.0);
    }
  }
}

TEST(AttributionTest, ServerSharesSumToBandLatency) {
  // One two-tier transaction; the critical path tiles the latency, so the
  // per-server totals must sum to it exactly.
  const std::vector<trace::RequestRecord> log{rec(0, 0, 10000, 1, 1),
                                              rec(1, 2000, 7000, 1, 2)};
  const auto profiles = trace::build_profiles(log);
  const auto assembly = trace::assemble_transactions(log, &profiles);
  const std::vector<trace::ServerIndex> servers{0, 1};
  const std::vector<DetectionResult> detections{fake_detection(10000, {}),
                                                fake_detection(10000, {})};
  const auto report =
      attribute_latency(assembly.txns, servers, detections, profiles, {});
  double attributed = 0.0;
  for (const auto& band : report.bands) {
    for (const auto& s : band.servers) attributed += s.total_us();
  }
  EXPECT_NEAR(attributed, 10000.0, 1e-6);
}

TEST(AttributionTest, GcFreezeAttributesTailQueueingToDbEpisode) {
  // The paper's JVM-GC scenario in miniature: steady web->db transactions,
  // plus a db freeze at [500 ms, 700 ms) where arrivals pile up and drain
  // FIFO afterwards. The tail bands' queue-wait must sit overwhelmingly at
  // the db server inside its congestion episode.
  // Steady txns are dense enough that the frozen ones sit past the p95
  // cutoff but inside p99's (which interpolates into their histogram
  // bucket), so the whole freeze cohort lands in the p99 band.
  std::vector<trace::RequestRecord> log;
  trace::TxnId txn = 0;
  for (std::int64_t t = 0; t < 1000000; t += 2500) {
    if (t >= 500000 && t < 700000) continue;  // freeze window handled below
    ++txn;
    log.push_back(rec(0, t, t + 4000, txn, 1));
    log.push_back(rec(1, t + 500, t + 2500, txn, 2));
  }
  const std::size_t steady = txn;
  for (int i = 0; i < 10; ++i) {  // arrivals during the freeze
    ++txn;
    const std::int64_t t = 500000 + i * 1000;
    const std::int64_t db_out = 700000 + (i + 1) * 2000;  // FIFO drain
    log.push_back(rec(0, t, db_out + 1000, txn, 1));
    log.push_back(rec(1, t + 500, db_out, txn, 2));
  }
  ASSERT_GT(steady, 100u);

  const auto profiles = trace::build_profiles(log);
  const auto assembly = trace::assemble_transactions(log, &profiles);
  const std::vector<trace::ServerIndex> servers{0, 1};
  // Web stays healthy; the db is congested over the freeze + drain.
  const std::vector<DetectionResult> detections{
      fake_detection(1000000, {}),
      fake_detection(1000000, {10, 11, 12, 13, 14})};  // [500 ms, 750 ms)
  const auto report =
      attribute_latency(assembly.txns, servers, detections, profiles, {});

  double tail_db_queue_in = 0.0;
  double tail_queue_total = 0.0;
  bool tail_seen = false;
  for (const auto& band : report.bands) {
    if (band.band != "p99" && band.band != "pmax") continue;
    if (band.txns == 0) continue;
    tail_seen = true;
    for (const auto& s : band.servers) {
      tail_queue_total += s.queue_in_us + s.queue_out_us;
      if (s.server == 1) tail_db_queue_in += s.queue_in_us;
    }
  }
  ASSERT_TRUE(tail_seen);
  EXPECT_GT(tail_queue_total, 0.0);
  EXPECT_GT(tail_db_queue_in / tail_queue_total, 0.5)
      << "tail queue-wait should concentrate inside the db episode";
}

TEST(AttributionWritersTest, NdjsonAndCsvCarryEveryBand) {
  const std::vector<trace::RequestRecord> log{rec(0, 0, 10000, 1, 1),
                                              rec(1, 2000, 7000, 1, 2)};
  const auto profiles = trace::build_profiles(log);
  const auto assembly = trace::assemble_transactions(log, &profiles);
  const std::vector<trace::ServerIndex> servers{0, 1};
  const std::vector<DetectionResult> detections{fake_detection(10000, {}),
                                                fake_detection(10000, {})};
  const auto report =
      attribute_latency(assembly.txns, servers, detections, profiles, {});

  const std::string ndjson = attribution_ndjson(report);
  EXPECT_NE(ndjson.find("\"type\":\"meta\""), std::string::npos);
  EXPECT_NE(ndjson.find("\"schema_version\":1"), std::string::npos);
  for (const char* band : {"p50", "p90", "p95", "p99", "pmax"}) {
    EXPECT_NE(ndjson.find("\"band\":\"" + std::string(band) + "\""),
              std::string::npos)
        << band;
  }
  const std::string csv = attribution_csv(report);
  EXPECT_EQ(csv.find("band,server,txns,latency_us,queue_in_episode_us"), 0u);
  EXPECT_NE(csv.find("\npmax,"), std::string::npos);

  // Byte-stable: the writers must render identically on repeat calls.
  EXPECT_EQ(ndjson, attribution_ndjson(report));
  EXPECT_EQ(csv, attribution_csv(report));
}

}  // namespace
}  // namespace tbd::core
