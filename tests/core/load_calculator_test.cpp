// Load calculation (Section III-A): exact integration of concurrency over
// fine intervals, including the Figure 6 style of interleaved requests.
#include "core/load_calculator.h"

#include <gtest/gtest.h>

namespace tbd::core {
namespace {

using namespace tbd::literals;
using trace::RequestRecord;

RequestRecord rec(std::int64_t arrive_us, std::int64_t depart_us,
                  trace::ClassId cls = 0) {
  RequestRecord r;
  r.server = 0;
  r.class_id = cls;
  r.arrival = TimePoint::from_micros(arrive_us);
  r.departure = TimePoint::from_micros(depart_us);
  r.txn = 1;
  return r;
}

IntervalSpec grid(std::int64_t start_us, std::int64_t width_us,
                  std::size_t count) {
  IntervalSpec spec;
  spec.start = TimePoint::from_micros(start_us);
  spec.width = Duration::micros(width_us);
  spec.count = count;
  return spec;
}

TEST(LoadCalculatorTest, EmptyInput) {
  const auto load = compute_load(trace::RequestLog{}, grid(0, 1000, 3));
  EXPECT_EQ(load, (std::vector<double>{0.0, 0.0, 0.0}));
}

TEST(LoadCalculatorTest, RequestFillingOneInterval) {
  const std::vector<RequestRecord> records{rec(0, 1000)};
  const auto load = compute_load(records, grid(0, 1000, 2));
  EXPECT_DOUBLE_EQ(load[0], 1.0);
  EXPECT_DOUBLE_EQ(load[1], 0.0);
}

TEST(LoadCalculatorTest, HalfIntervalIsHalfLoad) {
  const std::vector<RequestRecord> records{rec(250, 750)};
  const auto load = compute_load(records, grid(0, 1000, 1));
  EXPECT_DOUBLE_EQ(load[0], 0.5);
}

TEST(LoadCalculatorTest, OverlappingRequestsAdd) {
  // Two requests overlap for half the interval.
  const std::vector<RequestRecord> records{rec(0, 1000), rec(500, 1000)};
  const auto load = compute_load(records, grid(0, 1000, 1));
  EXPECT_DOUBLE_EQ(load[0], 1.5);
}

TEST(LoadCalculatorTest, RequestSpanningBoundarySplitsAcrossIntervals) {
  const std::vector<RequestRecord> records{rec(500, 1500)};
  const auto load = compute_load(records, grid(0, 1000, 2));
  EXPECT_DOUBLE_EQ(load[0], 0.5);
  EXPECT_DOUBLE_EQ(load[1], 0.5);
}

TEST(LoadCalculatorTest, RequestSpanningWholeGrid) {
  const std::vector<RequestRecord> records{rec(-5000, 9000)};
  const auto load = compute_load(records, grid(0, 1000, 3));
  EXPECT_DOUBLE_EQ(load[0], 1.0);
  EXPECT_DOUBLE_EQ(load[1], 1.0);
  EXPECT_DOUBLE_EQ(load[2], 1.0);
}

TEST(LoadCalculatorTest, RequestsOutsideGridIgnored) {
  const std::vector<RequestRecord> records{rec(-100, 0), rec(3000, 4000)};
  const auto load = compute_load(records, grid(0, 1000, 3));
  EXPECT_EQ(load, (std::vector<double>{0.0, 0.0, 0.0}));
}

TEST(LoadCalculatorTest, Figure6InterleavedRequests) {
  // Figure 6's shape: interleaved arrivals/departures across two 100ms
  // windows. Window averages computed by hand.
  const std::vector<RequestRecord> records{
      rec(0, 60'000),        // covers [0,60) of TW0
      rec(20'000, 120'000),  // covers [20,100) of TW0 and [100,120) of TW1
      rec(80'000, 180'000),  // [80,100) of TW0, [100,180) of TW1
      rec(140'000, 160'000)  // [140,160) of TW1
  };
  const auto load = compute_load(records, grid(0, 100'000, 2));
  // TW0: 60 + 80 + 20 = 160ms of presence / 100ms = 1.6
  EXPECT_DOUBLE_EQ(load[0], 1.6);
  // TW1: 20 + 80 + 20 = 120ms / 100ms = 1.2
  EXPECT_DOUBLE_EQ(load[1], 1.2);
}

TEST(LoadCalculatorTest, UnsortedRecordsHandled) {
  const std::vector<RequestRecord> records{rec(500, 1500), rec(0, 250)};
  const auto load = compute_load(records, grid(0, 1000, 2));
  EXPECT_DOUBLE_EQ(load[0], 0.75);
  EXPECT_DOUBLE_EQ(load[1], 0.5);
}

TEST(LoadCalculatorTest, ZeroLengthRequestContributesNothing) {
  const std::vector<RequestRecord> records{rec(500, 500)};
  const auto load = compute_load(records, grid(0, 1000, 1));
  EXPECT_DOUBLE_EQ(load[0], 0.0);
}

TEST(LoadCalculatorTest, ConcurrencyAtProbesInstantaneousState) {
  const std::vector<RequestRecord> records{rec(0, 1000), rec(500, 2000)};
  EXPECT_EQ(concurrency_at(records, TimePoint::from_micros(250)), 1);
  EXPECT_EQ(concurrency_at(records, TimePoint::from_micros(750)), 2);
  EXPECT_EQ(concurrency_at(records, TimePoint::from_micros(1500)), 1);
  EXPECT_EQ(concurrency_at(records, TimePoint::from_micros(3000)), 0);
}

TEST(LoadCalculatorTest, ManySmallRequestsAverageCorrectly) {
  // 10 back-to-back requests of 100us each in a 1ms interval: the server is
  // continuously busy with exactly one request => load 1.
  std::vector<RequestRecord> records;
  for (int i = 0; i < 10; ++i) records.push_back(rec(i * 100, (i + 1) * 100));
  const auto load = compute_load(records, grid(0, 1000, 1));
  EXPECT_DOUBLE_EQ(load[0], 1.0);
}

}  // namespace
}  // namespace tbd::core
