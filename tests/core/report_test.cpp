#include "core/report.h"

#include <gtest/gtest.h>

namespace tbd::core {
namespace {

using namespace tbd::literals;

DetectionResult sample_result() {
  DetectionResult r;
  r.spec.start = TimePoint::origin();
  r.spec.width = 50_ms;
  r.spec.count = 4;
  r.load = {1.0, 12.0, 30.0, 2.0};
  r.throughput = {100.0, 900.0, 10.0, 150.0};
  r.nstar.n_star = 10.0;
  r.nstar.tp_max = 1000.0;
  r.nstar.converged = true;
  r.states = {IntervalState::kNormal, IntervalState::kCongested,
              IntervalState::kFrozen, IntervalState::kNormal};
  r.episodes = extract_episodes(r.states, r.load, r.spec);
  return r;
}

TEST(ReportTest, SummaryMentionsKeyNumbers) {
  const auto s = summarize(sample_result(), "db1");
  EXPECT_NE(s.find("db1"), std::string::npos);
  EXPECT_NE(s.find("N*=10.0"), std::string::npos);
  EXPECT_NE(s.find("congested=2"), std::string::npos);
  EXPECT_NE(s.find("frozen=1"), std::string::npos);
  EXPECT_NE(s.find("episodes=1"), std::string::npos);
}

TEST(ReportTest, UnsaturatedMarker) {
  auto r = sample_result();
  r.nstar.converged = false;
  EXPECT_NE(summarize(r, "mw").find("unsaturated"), std::string::npos);
}

TEST(AsciiScatterTest, RendersGridWithNStarBar) {
  const std::vector<double> load{1, 2, 3, 4, 5, 6, 7, 8};
  const std::vector<double> tput{10, 20, 30, 40, 50, 50, 50, 50};
  const auto art = ascii_scatter(load, tput, 5.0, 40, 10);
  EXPECT_NE(art.find('|'), std::string::npos);
  EXPECT_NE(art.find('.'), std::string::npos);
  EXPECT_NE(art.find("N*=5.0"), std::string::npos);
}

TEST(AsciiScatterTest, DegenerateInputsAreSafe) {
  EXPECT_TRUE(ascii_scatter({}, {}, 1.0).empty());
  const std::vector<double> zeros{0.0, 0.0};
  EXPECT_TRUE(ascii_scatter(zeros, zeros, 1.0).empty());
  const std::vector<double> load{1.0};
  const std::vector<double> tput{1.0};
  EXPECT_TRUE(ascii_scatter(load, tput, 0.5, 4, 2).empty());  // too small
}

}  // namespace
}  // namespace tbd::core
