#include "core/system_report.h"

#include <gtest/gtest.h>

namespace tbd::core {
namespace {

using namespace tbd::literals;

DetectionResult result_with(double congested_fraction, bool converged = true) {
  DetectionResult r;
  r.spec.start = TimePoint::origin();
  r.spec.width = 50_ms;
  r.spec.count = 100;
  r.nstar.n_star = 10.0;
  r.nstar.tp_max = 1000.0;
  r.nstar.converged = converged;
  const auto hot = static_cast<std::size_t>(congested_fraction * 100.0);
  r.states.assign(100, IntervalState::kNormal);
  r.load.assign(100, 1.0);
  for (std::size_t i = 0; i < hot; ++i) {
    r.states[i * 2 % 100] = IntervalState::kCongested;
    r.load[i * 2 % 100] = 20.0;
  }
  r.episodes = extract_episodes(r.states, r.load, r.spec);
  return r;
}

TEST(SystemReportTest, RanksMostCongestedFirst) {
  const std::vector<DetectionResult> results{
      result_with(0.05), result_with(0.30), result_with(0.0)};
  const std::vector<std::string> names{"web", "db1", "mw"};
  const auto report = rank_bottlenecks(results, names);
  ASSERT_EQ(report.verdicts.size(), 3u);
  EXPECT_EQ(report.verdicts[0].server, "db1");
  EXPECT_EQ(report.verdicts[1].server, "web");
  EXPECT_EQ(report.verdicts[2].server, "mw");
  EXPECT_EQ(report.primary_suspect, 0);
}

TEST(SystemReportTest, NoSuspectBelowThreshold) {
  const std::vector<DetectionResult> results{result_with(0.0),
                                             result_with(0.005)};
  const std::vector<std::string> names{"a", "b"};
  const auto report = rank_bottlenecks(results, names, 0.01);
  EXPECT_EQ(report.primary_suspect, -1);
  EXPECT_NE(to_string(report).find("no server shows noteworthy"),
            std::string::npos);
}

TEST(SystemReportTest, TiesBreakByName) {
  const std::vector<DetectionResult> results{result_with(0.1),
                                             result_with(0.1)};
  const std::vector<std::string> names{"zeta", "alpha"};
  const auto report = rank_bottlenecks(results, names);
  EXPECT_EQ(report.verdicts[0].server, "alpha");
}

TEST(SystemReportTest, RenderingNamesSuspect) {
  const std::vector<DetectionResult> results{result_with(0.2),
                                             result_with(0.01)};
  const std::vector<std::string> names{"db1", "web"};
  const auto text = to_string(rank_bottlenecks(results, names));
  EXPECT_NE(text.find("db1"), std::string::npos);
  EXPECT_NE(text.find("primary suspect"), std::string::npos);
}

TEST(SystemReportTest, UnsaturatedMarkerCarriedThrough) {
  const std::vector<DetectionResult> results{result_with(0.0, false)};
  const std::vector<std::string> names{"mw"};
  const auto report = rank_bottlenecks(results, names);
  EXPECT_FALSE(report.verdicts[0].saturated);
  EXPECT_NE(to_string(report).find("unsaturated"), std::string::npos);
}

}  // namespace
}  // namespace tbd::core
