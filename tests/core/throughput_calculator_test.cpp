// Throughput normalization (Section III-B), including the exact Figure 7
// example: Req1 = 30ms, Req2 = 10ms, 10ms work unit, 100ms intervals.
#include "core/throughput_calculator.h"

#include <gtest/gtest.h>

namespace tbd::core {
namespace {

using trace::RequestRecord;

RequestRecord departing(std::int64_t depart_us, trace::ClassId cls,
                        std::int64_t service_us = 0) {
  RequestRecord r;
  r.server = 0;
  r.class_id = cls;
  r.arrival = TimePoint::from_micros(depart_us - service_us);
  r.departure = TimePoint::from_micros(depart_us);
  return r;
}

IntervalSpec grid(std::int64_t width_us, std::size_t count) {
  IntervalSpec spec;
  spec.start = TimePoint::origin();
  spec.width = Duration::micros(width_us);
  spec.count = count;
  return spec;
}

ServiceTimeTable figure7_table() {
  // Class 0 = Req1 (30ms), class 1 = Req2 (10ms).
  return ServiceTimeTable{{30'000.0, 10'000.0}};
}

TEST(ThroughputTest, StraightforwardCountsDepartures) {
  const std::vector<RequestRecord> records{
      departing(50'000, 0), departing(80'000, 1), departing(150'000, 1)};
  ThroughputOptions opts;
  opts.mode = ThroughputMode::kRequestsCompleted;
  opts.per_second = false;
  const auto tput =
      compute_throughput(records, grid(100'000, 2), figure7_table(), opts);
  EXPECT_EQ(tput, (std::vector<double>{2.0, 1.0}));
}

TEST(ThroughputTest, Figure7NormalizedWorkUnits) {
  // TW0: two Req1 -> 6 units; TW1: one Req1 + one Req2 -> 4; TW2: four Req2
  // -> 4. Straightforward throughput would read 2/2/4 and mislead.
  std::vector<RequestRecord> records;
  records.push_back(departing(40'000, 0));
  records.push_back(departing(90'000, 0));
  records.push_back(departing(130'000, 0));
  records.push_back(departing(170'000, 1));
  for (int i = 0; i < 4; ++i) records.push_back(departing(210'000 + i * 20'000, 1));

  ThroughputOptions norm;
  norm.mode = ThroughputMode::kNormalizedWorkUnits;
  norm.work_unit_us = 10'000.0;
  norm.per_second = false;
  const auto units =
      compute_throughput(records, grid(100'000, 3), figure7_table(), norm);
  EXPECT_EQ(units, (std::vector<double>{6.0, 4.0, 4.0}));

  ThroughputOptions plain;
  plain.mode = ThroughputMode::kRequestsCompleted;
  plain.per_second = false;
  const auto raw =
      compute_throughput(records, grid(100'000, 3), figure7_table(), plain);
  EXPECT_EQ(raw, (std::vector<double>{2.0, 2.0, 4.0}));
}

TEST(ThroughputTest, DefaultWorkUnitIsSmallestServiceTime) {
  const std::vector<RequestRecord> records{departing(50'000, 0)};
  ThroughputOptions opts;
  opts.per_second = false;  // work_unit_us unset => min service = 10ms
  const auto tput =
      compute_throughput(records, grid(100'000, 1), figure7_table(), opts);
  EXPECT_EQ(tput[0], 3.0);  // 30ms / 10ms
}

TEST(ThroughputTest, PerSecondScaling) {
  const std::vector<RequestRecord> records{departing(20'000, 1)};
  ThroughputOptions opts;
  opts.work_unit_us = 10'000.0;
  opts.per_second = true;
  const auto tput =
      compute_throughput(records, grid(50'000, 1), figure7_table(), opts);
  EXPECT_DOUBLE_EQ(tput[0], 1.0 / 0.05);  // 1 unit per 50ms = 20/s
}

TEST(ThroughputTest, UnknownClassStillCountsOneUnit) {
  const std::vector<RequestRecord> records{departing(10'000, 9)};
  ThroughputOptions opts;
  opts.work_unit_us = 10'000.0;
  opts.per_second = false;
  const auto tput =
      compute_throughput(records, grid(100'000, 1), figure7_table(), opts);
  EXPECT_EQ(tput[0], 1.0);
}

TEST(ThroughputTest, DeparturesOutsideGridIgnored) {
  const std::vector<RequestRecord> records{departing(-1, 0),
                                           departing(200'000, 0)};
  ThroughputOptions opts;
  opts.mode = ThroughputMode::kRequestsCompleted;
  opts.per_second = false;
  const auto tput =
      compute_throughput(records, grid(100'000, 2), figure7_table(), opts);
  EXPECT_EQ(tput, (std::vector<double>{0.0, 0.0}));
}

TEST(ServiceTimeTableTest, MinServiceSkipsZeroEntries) {
  ServiceTimeTable table{{0.0, 500.0, 200.0}};
  EXPECT_DOUBLE_EQ(table.min_service_us(), 200.0);
}

TEST(ServiceTimeTableTest, SetGrowsTable) {
  ServiceTimeTable table;
  table.set(3, 750.0);
  EXPECT_DOUBLE_EQ(table.service_us(3), 750.0);
  EXPECT_DOUBLE_EQ(table.service_us(0), 0.0);
  EXPECT_DOUBLE_EQ(table.service_us(99), 0.0);
}

TEST(EstimateServiceTimesTest, LowQuantileMasksQueueing) {
  // Class 0: true service 1000us, but half the samples queued (inflated).
  std::vector<RequestRecord> records;
  for (int i = 0; i < 50; ++i) records.push_back(departing(1000 * i, 0, 1000));
  for (int i = 0; i < 50; ++i) {
    records.push_back(departing(100'000 + 1000 * i, 0, 5000));
  }
  const auto table = estimate_service_times(records, /*mask_quantile=*/0.2);
  EXPECT_NEAR(table.service_us(0), 1000.0, 50.0);
}

TEST(EstimateServiceTimesTest, PerClassSeparation) {
  std::vector<RequestRecord> records;
  for (int i = 0; i < 20; ++i) {
    records.push_back(departing(1000 * i, 0, 300));
    records.push_back(departing(1000 * i + 500, 1, 900));
  }
  const auto table = estimate_service_times(records, 0.5);
  EXPECT_NEAR(table.service_us(0), 300.0, 1.0);
  EXPECT_NEAR(table.service_us(1), 900.0, 1.0);
}

}  // namespace
}  // namespace tbd::core
