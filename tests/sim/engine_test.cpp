#include "sim/engine.h"

#include <gtest/gtest.h>

#include <vector>

namespace tbd::sim {
namespace {

using namespace tbd::literals;

TEST(EngineTest, RunsEventsInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(TimePoint::from_micros(300), [&] { order.push_back(3); });
  engine.schedule_at(TimePoint::from_micros(100), [&] { order.push_back(1); });
  engine.schedule_at(TimePoint::from_micros(200), [&] { order.push_back(2); });
  engine.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EngineTest, TiesBreakInScheduleOrder) {
  Engine engine;
  std::vector<int> order;
  const TimePoint t = TimePoint::from_micros(50);
  engine.schedule_at(t, [&] { order.push_back(1); });
  engine.schedule_at(t, [&] { order.push_back(2); });
  engine.schedule_at(t, [&] { order.push_back(3); });
  engine.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EngineTest, ClockAdvancesToEventTime) {
  Engine engine;
  TimePoint seen;
  engine.schedule_after(250_us, [&] { seen = engine.now(); });
  engine.run_all();
  EXPECT_EQ(seen.micros(), 250);
}

TEST(EngineTest, RunUntilStopsAtLimit) {
  Engine engine;
  int ran = 0;
  engine.schedule_at(TimePoint::from_micros(100), [&] { ++ran; });
  engine.schedule_at(TimePoint::from_micros(900), [&] { ++ran; });
  engine.run_until(TimePoint::from_micros(500));
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(engine.now().micros(), 500);
  engine.run_until(TimePoint::from_micros(1000));
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(engine.now().micros(), 1000);
}

TEST(EngineTest, RunUntilLeavesClockAtLimitWhenQueueDrainsEarly) {
  // The clock-advance contract: run_until(t) ALWAYS leaves now() == t, even
  // when the last event fired long before t (or no event fired at all).
  Engine engine;
  engine.schedule_at(TimePoint::from_micros(100), [] {});
  engine.run_until(TimePoint::from_micros(1000));
  EXPECT_EQ(engine.now().micros(), 1000);
  // Empty queue: the clock still advances to the requested limit.
  engine.run_until(TimePoint::from_micros(2500));
  EXPECT_EQ(engine.now().micros(), 2500);
}

TEST(EngineTest, EventsScheduledDuringEventsRun) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_after(10_us, [&] {
    order.push_back(1);
    engine.schedule_after(5_us, [&] { order.push_back(2); });
  });
  engine.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(engine.now().micros(), 15);
}

TEST(EngineTest, ZeroDelayEventRunsAtSameTime) {
  Engine engine;
  TimePoint inner;
  engine.schedule_after(42_us, [&] {
    engine.schedule_after(0_us, [&] { inner = engine.now(); });
  });
  engine.run_all();
  EXPECT_EQ(inner.micros(), 42);
}

TEST(EngineTest, CancelPreventsExecution) {
  Engine engine;
  int ran = 0;
  const EventHandle h = engine.schedule_after(10_us, [&] { ++ran; });
  EXPECT_TRUE(engine.cancel(h));
  engine.run_all();
  EXPECT_EQ(ran, 0);
}

TEST(EngineTest, CancelEmptyHandleIsFalse) {
  Engine engine;
  EventHandle empty;
  EXPECT_FALSE(engine.cancel(empty));
}

TEST(EngineTest, CancelAfterEventRanReturnsFalse) {
  Engine engine;
  int ran = 0;
  const EventHandle h = engine.schedule_after(10_us, [&] { ++ran; });
  engine.run_all();
  EXPECT_EQ(ran, 1);
  EXPECT_FALSE(engine.cancel(h));
}

TEST(EngineTest, CancelTwiceSecondReturnsFalse) {
  Engine engine;
  const EventHandle h = engine.schedule_after(10_us, [] {});
  EXPECT_TRUE(engine.cancel(h));
  EXPECT_FALSE(engine.cancel(h));
  engine.run_all();
  EXPECT_EQ(engine.events_executed(), 0u);
}

TEST(EngineTest, StaleHandleCannotCancelLaterEvent) {
  // After an event runs, its storage slot is recycled for new events; the
  // old handle must stay inert rather than cancelling the newcomer.
  Engine engine;
  const EventHandle stale = engine.schedule_after(10_us, [] {});
  engine.run_all();
  int ran = 0;
  engine.schedule_after(10_us, [&] { ++ran; });
  EXPECT_FALSE(engine.cancel(stale));
  engine.run_all();
  EXPECT_EQ(ran, 1);
}

TEST(EngineTest, CancelledEventsAreNotCountedAsExecuted) {
  Engine engine;
  for (int i = 0; i < 8; ++i) {
    const EventHandle h = engine.schedule_after(Duration::micros(i + 1), [] {});
    if (i % 2 == 0) engine.cancel(h);
  }
  engine.run_all();
  EXPECT_EQ(engine.events_executed(), 4u);
}

TEST(EngineTest, CountsExecutedEvents) {
  Engine engine;
  for (int i = 0; i < 5; ++i) {
    engine.schedule_after(Duration::micros(i), [] {});
  }
  const EventHandle h = engine.schedule_after(100_us, [] {});
  engine.cancel(h);
  engine.run_all();
  EXPECT_EQ(engine.events_executed(), 5u);
}

TEST(EngineTest, StatsTrackSchedulingExecutionAndCancellation) {
  Engine engine;
  int ran = 0;
  engine.schedule_at(TimePoint::from_micros(10), [&] { ++ran; });
  engine.schedule_at(TimePoint::from_micros(20), [&] { ++ran; });
  const EventHandle h =
      engine.schedule_at(TimePoint::from_micros(30), [&] { ++ran; });
  engine.cancel(h);
  engine.run_all();
  const auto& st = engine.stats();
  EXPECT_EQ(st.scheduled, 3u);
  EXPECT_EQ(st.executed, 2u);
  EXPECT_EQ(st.cancelled, 1u);
  EXPECT_EQ(st.heap_high_water, 3u);  // all three pending before the run
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(engine.events_executed(), st.executed);
}

TEST(PeriodicTaskTest, FiresAtPeriod) {
  Engine engine;
  std::vector<std::int64_t> fired;
  PeriodicTask task{engine, TimePoint::from_micros(100), 100_us,
                    [&](TimePoint at) { fired.push_back(at.micros()); }};
  engine.run_until(TimePoint::from_micros(550));
  EXPECT_EQ(fired, (std::vector<std::int64_t>{100, 200, 300, 400, 500}));
}

TEST(PeriodicTaskTest, StopCeasesFiring) {
  Engine engine;
  int fired = 0;
  PeriodicTask task{engine, TimePoint::from_micros(100), 100_us,
                    [&](TimePoint) { ++fired; }};
  engine.run_until(TimePoint::from_micros(250));
  task.stop();
  engine.run_until(TimePoint::from_micros(1000));
  EXPECT_EQ(fired, 2);
}

TEST(PeriodicTaskTest, StopFromWithinCallback) {
  Engine engine;
  int fired = 0;
  PeriodicTask* self = nullptr;
  PeriodicTask task{engine, TimePoint::from_micros(10), 10_us, [&](TimePoint) {
                      if (++fired == 3) self->stop();
                    }};
  self = &task;
  engine.run_until(TimePoint::from_micros(1000));
  EXPECT_EQ(fired, 3);
}

}  // namespace
}  // namespace tbd::sim
