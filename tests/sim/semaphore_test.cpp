#include "sim/semaphore.h"

#include <gtest/gtest.h>

#include <vector>

namespace tbd::sim {
namespace {

using namespace tbd::literals;

TEST(FifoSemaphoreTest, GrantsImmediatelyWhenFree) {
  Engine engine;
  FifoSemaphore sem{engine, "s", 2};
  std::vector<int> tokens;
  EXPECT_TRUE(sem.acquire([&](int t) { tokens.push_back(t); }));
  EXPECT_TRUE(sem.acquire([&](int t) { tokens.push_back(t); }));
  engine.run_all();
  EXPECT_EQ(tokens.size(), 2u);
  EXPECT_NE(tokens[0], tokens[1]);
  EXPECT_EQ(sem.in_use(), 2);
}

TEST(FifoSemaphoreTest, WaitersServedFifo) {
  Engine engine;
  FifoSemaphore sem{engine, "s", 1};
  std::vector<int> order;
  int held = -1;
  sem.acquire([&](int t) { held = t; });
  sem.acquire([&](int) { order.push_back(1); });
  sem.acquire([&](int) { order.push_back(2); });
  engine.run_all();
  EXPECT_EQ(sem.waiting(), 2);
  ASSERT_GE(held, 0);

  sem.release(held);
  engine.run_all();
  EXPECT_EQ(order, (std::vector<int>{1}));
  sem.release(0);
  engine.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(FifoSemaphoreTest, RejectsWhenBacklogFull) {
  Engine engine;
  FifoSemaphore sem{engine, "s", 1, /*max_waiters=*/1};
  sem.acquire([](int) {});
  EXPECT_TRUE(sem.acquire([](int) {}));   // becomes the single waiter
  EXPECT_FALSE(sem.acquire([](int) {}));  // backlog full
  engine.run_all();
  EXPECT_EQ(sem.rejected(), 1u);
  EXPECT_EQ(sem.granted(), 1u);
}

TEST(FifoSemaphoreTest, TokenIdsStayInRange) {
  Engine engine;
  FifoSemaphore sem{engine, "s", 3};
  std::vector<int> seen;
  for (int i = 0; i < 3; ++i) {
    sem.acquire([&](int t) { seen.push_back(t); });
  }
  engine.run_all();
  for (int t : seen) {
    EXPECT_GE(t, 0);
    EXPECT_LT(t, 3);
  }
}

TEST(FifoSemaphoreTest, GrantIsNotReentrant) {
  Engine engine;
  FifoSemaphore sem{engine, "s", 1};
  bool granted = false;
  sem.acquire([&](int) { granted = true; });
  // The callback must not have run synchronously inside acquire().
  EXPECT_FALSE(granted);
  engine.run_all();
  EXPECT_TRUE(granted);
}

TEST(FifoSemaphoreTest, ReleasedTokenReusedByWaiter) {
  Engine engine;
  FifoSemaphore sem{engine, "s", 1};
  int first_token = -1;
  int second_token = -2;
  sem.acquire([&](int t) { first_token = t; });
  sem.acquire([&](int t) { second_token = t; });
  engine.run_all();
  sem.release(first_token);
  engine.run_all();
  EXPECT_EQ(second_token, first_token);
  EXPECT_EQ(sem.in_use(), 1);
}

}  // namespace
}  // namespace tbd::sim
