#include "app/analysis.h"

#include <gtest/gtest.h>

namespace tbd::app {
namespace {

using namespace tbd::literals;

TEST(AnalyzeSystemTest, CoversEveryServer) {
  ExperimentConfig cfg;
  cfg.workload = 1500;
  cfg.warmup = 2_s;
  cfg.duration = 10_s;
  cfg.seed = 77;
  cfg.gc = transient::jdk15_config();
  const auto tables = calibrate_service_times(cfg);
  const auto result = run_experiment(cfg);

  const auto analysis = analyze_system(result, tables);
  ASSERT_EQ(analysis.detections.size(), 6u);
  ASSERT_EQ(analysis.names.size(), 6u);
  EXPECT_EQ(analysis.report.verdicts.size(), 6u);
  EXPECT_EQ(analysis.spec.width.micros(), 50'000);
  for (const auto& d : analysis.detections) {
    EXPECT_EQ(d.states.size(), analysis.spec.count);
  }
}

TEST(AnalyzeSystemTest, RankingOrderedByCongestion) {
  ExperimentConfig cfg;
  cfg.workload = 1500;
  cfg.warmup = 2_s;
  cfg.duration = 10_s;
  cfg.seed = 77;
  const auto tables = calibrate_service_times(cfg);
  const auto result = run_experiment(cfg);
  const auto analysis = analyze_system(result, tables);
  for (std::size_t i = 1; i < analysis.report.verdicts.size(); ++i) {
    EXPECT_GE(analysis.report.verdicts[i - 1].congested_fraction,
              analysis.report.verdicts[i].congested_fraction);
  }
}

TEST(AnalyzeSystemTest, RenderingIncludesEveryServerName) {
  ExperimentConfig cfg;
  cfg.workload = 800;
  cfg.warmup = 2_s;
  cfg.duration = 8_s;
  cfg.seed = 78;
  const auto tables = calibrate_service_times(cfg);
  const auto result = run_experiment(cfg);
  const auto text = to_string(analyze_system(result, tables));
  for (const auto& server : result.servers) {
    EXPECT_NE(text.find(server.name), std::string::npos) << server.name;
  }
  EXPECT_NE(text.find("ranking"), std::string::npos);
}

TEST(AnalyzeSystemTest, CustomWidthHonored) {
  ExperimentConfig cfg;
  cfg.workload = 800;
  cfg.warmup = 2_s;
  cfg.duration = 8_s;
  cfg.seed = 79;
  const auto tables = calibrate_service_times(cfg);
  const auto result = run_experiment(cfg);
  const auto analysis = analyze_system(result, tables, 100_ms);
  EXPECT_EQ(analysis.spec.width.micros(), 100'000);
  EXPECT_EQ(analysis.spec.count, 80u);  // 8s / 100ms
}

}  // namespace
}  // namespace tbd::app
