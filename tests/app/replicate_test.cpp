#include "app/replicate.h"

#include <gtest/gtest.h>

namespace tbd::app {
namespace {

using namespace tbd::literals;

ExperimentConfig tiny(int workload) {
  ExperimentConfig cfg;
  cfg.workload = workload;
  cfg.warmup = 2_s;
  cfg.duration = 6_s;
  return cfg;
}

TEST(ReplicateTest, GoodputIntervalCoversTruth) {
  const auto rep = replicate(
      tiny(700), 4, [](const ExperimentResult& r) { return r.goodput(); });
  ASSERT_EQ(rep.samples.size(), 4u);
  // True mean ~ 700/7s plus the burst uplift; the CI must bracket a value
  // in that vicinity and be reasonably tight.
  EXPECT_GT(rep.mean, 90.0);
  EXPECT_LT(rep.mean, 125.0);
  EXPECT_LT(rep.half_width, rep.mean * 0.2);
  EXPECT_LT(rep.lo(), rep.mean);
  EXPECT_GT(rep.hi(), rep.mean);
}

TEST(ReplicateTest, DistinctSeedsProduceDistinctSamples) {
  const auto rep = replicate(
      tiny(500), 3, [](const ExperimentResult& r) { return r.goodput(); });
  EXPECT_FALSE(rep.samples[0] == rep.samples[1] &&
               rep.samples[1] == rep.samples[2]);
}

TEST(ReplicateTest, ClearSeparationDetected) {
  const auto low = replicate(
      tiny(500), 3, [](const ExperimentResult& r) { return r.goodput(); });
  const auto high = replicate(
      tiny(2000), 3, [](const ExperimentResult& r) { return r.goodput(); });
  EXPECT_TRUE(high.clearly_above(low));
  EXPECT_FALSE(low.clearly_above(high));
}

}  // namespace
}  // namespace tbd::app
