// Tests of the end-to-end flight recorder: thread-count invariance of the
// artifacts (the acceptance bar for golden-testing them), the N* override
// path, and behaviour on degenerate inputs.
#include "app/flight_recorder.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/attribution.h"

namespace tbd::app {
namespace {

trace::RequestRecord rec(trace::ServerIndex server, std::int64_t arrival,
                         std::int64_t departure, trace::TxnId txn,
                         trace::ClassId cls = 1) {
  return trace::RequestRecord{.server = server,
                              .class_id = cls,
                              .arrival = TimePoint::from_micros(arrival),
                              .departure = TimePoint::from_micros(departure),
                              .txn = txn};
}

/// Two-tier workload with a burst on server 0 around t = 0.5 s.
trace::RequestLog burst_log() {
  trace::RequestLog log;
  trace::TxnId txn = 0;
  for (std::int64_t t = 0; t < 1000000; t += 20000) {
    ++txn;
    log.push_back(rec(0, t, t + 8000, txn, 1));
    log.push_back(rec(1, t + 2000, t + 7000, txn, 2));
  }
  for (int i = 0; i < 12; ++i) {
    ++txn;
    log.push_back(rec(0, 500000 + i * 2000, 560000 + i * 2000, txn, 1));
  }
  return log;
}

TEST(FlightRecorderTest, AttributionIsThreadCountInvariant) {
  FlightConfig config;
  config.nstar_override = 3.0;
  ThreadPool serial{1};
  ThreadPool wide{4};
  const auto a = flight_record(burst_log(), config, serial);
  const auto b = flight_record(burst_log(), config, wide);
  EXPECT_EQ(core::attribution_ndjson(a.attribution),
            core::attribution_ndjson(b.attribution));
  EXPECT_EQ(timeline_json(a), timeline_json(b));
}

TEST(FlightRecorderTest, NstarOverrideForcesClassification) {
  FlightConfig config;
  config.nstar_override = 3.0;
  ThreadPool pool{2};
  const auto rec = flight_record(burst_log(), config, pool);
  ASSERT_EQ(rec.servers.size(), 2u);
  EXPECT_DOUBLE_EQ(rec.servers[0].detection.nstar.n_star, 3.0);
  EXPECT_TRUE(rec.servers[0].detection.nstar.converged);
  EXPECT_FALSE(rec.servers[0].detection.episodes.empty())
      << "the burst must classify as a congestion episode under N*=3";
}

TEST(FlightRecorderTest, AssemblyAndAttributionCoverAllTransactions) {
  FlightConfig config;
  config.nstar_override = 3.0;
  ThreadPool pool{2};
  const auto rec = flight_record(burst_log(), config, pool);
  EXPECT_EQ(rec.assembly.txns.size(), 62u);  // 50 steady + 12 burst
  std::uint64_t banded = 0;
  for (const auto& band : rec.attribution.bands) banded += band.txns;
  EXPECT_EQ(banded, rec.assembly.txns.size());
}

TEST(FlightRecorderTest, TimelineCarriesTracksEpisodesAndFlows) {
  FlightConfig config;
  config.nstar_override = 3.0;
  ThreadPool pool{2};
  const auto rec = flight_record(burst_log(), config, pool);
  const std::string json = timeline_json(rec);
  EXPECT_NE(json.find("\"name\":\"server 0\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"server 1\""), std::string::npos);
  EXPECT_NE(json.find("server 0 episodes"), std::string::npos);
  EXPECT_NE(json.find("\"cname\":\"bad\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"flow\""), std::string::npos);
}

TEST(FlightRecorderTest, EmptyLogYieldsEmptyRecord) {
  FlightConfig config;
  ThreadPool pool{1};
  const auto rec = flight_record({}, config, pool);
  EXPECT_TRUE(rec.servers.empty());
  EXPECT_TRUE(rec.assembly.txns.empty());
}

}  // namespace
}  // namespace tbd::app
