#include "app/experiment.h"

#include <gtest/gtest.h>

namespace tbd::app {
namespace {

using namespace tbd::literals;

ExperimentConfig tiny() {
  ExperimentConfig cfg;
  cfg.workload = 400;
  cfg.warmup = 2_s;
  cfg.duration = 8_s;
  cfg.seed = 5150;
  return cfg;
}

TEST(ExperimentTest, ResultShapeMatchesTopology) {
  const auto r = run_experiment(tiny());
  ASSERT_EQ(r.servers.size(), 6u);
  EXPECT_EQ(r.logs.size(), 6u);
  EXPECT_EQ(r.util.size(), 6u);
  EXPECT_EQ(r.net.size(), 6u);
  EXPECT_EQ(r.disk_busy_us.size(), 6u);
  EXPECT_EQ(r.window_start.micros(), 2'000'000);
  EXPECT_EQ(r.window_end.micros(), 10'000'000);
  // 10 one-second samples over the run.
  EXPECT_EQ(r.util[0].size(), 10u);
}

TEST(ExperimentTest, ServerIndexOfFindsEachTier) {
  const auto r = run_experiment(tiny());
  EXPECT_EQ(r.server_index_of(ntier::TierKind::kWeb, 0), 0);
  EXPECT_EQ(r.server_index_of(ntier::TierKind::kApp, 1), 2);
  EXPECT_EQ(r.server_index_of(ntier::TierKind::kMw, 0), 3);
  EXPECT_EQ(r.server_index_of(ntier::TierKind::kDb, 1), 5);
  EXPECT_EQ(r.server_index_of(ntier::TierKind::kDb, 2), -1);
  EXPECT_EQ(r.servers[3].name, "mw");
}

TEST(ExperimentTest, HelpersConsistentWithSamples) {
  const auto r = run_experiment(tiny());
  std::size_t in_window = 0;
  std::size_t above = 0;
  double sum_rt = 0.0;
  for (const auto& p : r.pages) {
    if (p.completed >= r.window_start && p.completed < r.window_end) {
      ++in_window;
      sum_rt += p.response_time.seconds_f();
      if (p.response_time > 100_ms) ++above;
    }
  }
  EXPECT_NEAR(r.goodput(), in_window / 8.0, 1e-9);
  EXPECT_NEAR(r.mean_rt_s(), sum_rt / in_window, 1e-12);
  EXPECT_NEAR(r.fraction_rt_above(100_ms),
              static_cast<double>(above) / in_window, 1e-12);
}

TEST(ExperimentTest, InjectorLogsOnlyWhenEnabled) {
  auto cfg = tiny();
  cfg.gc_on_app = false;
  cfg.speedstep_on_db = false;
  const auto off = run_experiment(cfg);
  EXPECT_TRUE(off.gc_logs.empty());
  EXPECT_TRUE(off.pstate_logs.empty());

  cfg.gc_on_app = true;
  cfg.gc = transient::jdk15_config();
  cfg.speedstep_on_db = true;
  const auto on = run_experiment(cfg);
  ASSERT_EQ(on.gc_logs.size(), 2u);      // one per app server
  ASSERT_EQ(on.pstate_logs.size(), 2u);  // one per db replica
  EXPECT_FALSE(on.pstate_logs[0].empty());
  ASSERT_EQ(on.pstate_residency.size(), 2u);
  double total = 0.0;
  for (double f : on.pstate_residency[0]) total += f;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ExperimentTest, MessagesOnlyWhenRequested) {
  auto cfg = tiny();
  EXPECT_TRUE(run_experiment(cfg).messages.empty());
  cfg.record_messages = true;
  EXPECT_FALSE(run_experiment(cfg).messages.empty());
}

TEST(ExperimentTest, CalibrationTablesCoverAllClassesPerServer) {
  auto cfg = tiny();
  const auto tables = calibrate_service_times(cfg);
  ASSERT_EQ(tables.size(), 6u);
  const auto db1 = static_cast<std::size_t>(4);
  // Every class with db work must have a positive estimate at the db tier,
  // roughly near its configured demand (low-load intra-node delay).
  for (std::size_t c = 0; c < cfg.classes.size(); ++c) {
    if (cfg.classes[c].db_queries == 0) continue;
    const double est = tables[db1].service_us(static_cast<trace::ClassId>(c));
    EXPECT_GT(est, 0.3 * cfg.classes[c].db_demand_us) << cfg.classes[c].name;
    EXPECT_LT(est, 3.0 * cfg.classes[c].db_demand_us) << cfg.classes[c].name;
  }
  // App-tier table: per-class intra-node delay includes downstream time, so
  // it must exceed the app CPU demand alone.
  const auto app1 = static_cast<std::size_t>(1);
  for (std::size_t c = 0; c < cfg.classes.size(); ++c) {
    if (cfg.classes[c].weight <= 0.0) continue;
    EXPECT_GT(tables[app1].service_us(static_cast<trace::ClassId>(c)), 0.0);
  }
}

TEST(ExperimentTest, ReadWriteMixRunsEndToEnd) {
  auto cfg = tiny();
  cfg.classes = workload::rubbos_read_write_mix();
  const auto r = run_experiment(cfg);
  EXPECT_GT(r.pages_completed, 100u);
  // Write broadcasts hit both replicas: the db logs must contain more
  // visits than reads alone would produce.
  const auto db_visits = r.logs[4].size() + r.logs[5].size();
  const double reads = workload::mean_queries_per_page(cfg.classes);
  const double writes = workload::mean_writes_per_page(cfg.classes);
  const double expected =
      static_cast<double>(r.pages_completed) * (reads + 2.0 * writes);
  EXPECT_NEAR(static_cast<double>(db_visits), expected, expected * 0.1);
}

}  // namespace
}  // namespace tbd::app
