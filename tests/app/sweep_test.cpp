// Determinism contract of the parallel sweep runner: the same configs give
// bit-identical results no matter how many threads execute them. Every
// figure bench relies on this — the CSVs under bench_out/ must regenerate
// exactly regardless of TBD_THREADS.
#include "app/sweep.h"

#include <gtest/gtest.h>

#include "app/replicate.h"

namespace tbd::app {
namespace {

std::vector<ExperimentConfig> small_sweep() {
  std::vector<ExperimentConfig> configs;
  for (int i = 0; i < 4; ++i) {
    ExperimentConfig cfg;
    cfg.workload = 300 + 150 * i;
    cfg.warmup = Duration::seconds(1);
    cfg.duration = Duration::seconds(4);
    cfg.seed = 9000 + static_cast<std::uint64_t>(i);
    cfg.speedstep_on_db = (i % 2 == 1);
    configs.push_back(cfg);
  }
  return configs;
}

TEST(SweepTest, ParallelMatchesSerialBitExactly) {
  const auto configs = small_sweep();
  const auto serial = run_sweep(configs, SweepOptions{.threads = 1});
  const auto parallel = run_sweep(configs, SweepOptions{.threads = 4});
  ASSERT_EQ(serial.size(), configs.size());
  ASSERT_EQ(parallel.size(), configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    // Exact equality, not near-equality: each task owns a private Engine and
    // RNG, so scheduling must not perturb a single bit of the results.
    EXPECT_EQ(serial[i].goodput(), parallel[i].goodput()) << "config " << i;
    EXPECT_EQ(serial[i].mean_rt_s(), parallel[i].mean_rt_s()) << "config " << i;
    EXPECT_EQ(serial[i].engine_events, parallel[i].engine_events)
        << "config " << i;
    EXPECT_EQ(serial[i].pages_started, parallel[i].pages_started)
        << "config " << i;
    EXPECT_EQ(serial[i].pages_completed, parallel[i].pages_completed)
        << "config " << i;
    EXPECT_EQ(serial[i].retransmissions, parallel[i].retransmissions)
        << "config " << i;
  }
}

TEST(SweepTest, ResultsLandInInputOrder) {
  auto configs = small_sweep();
  const auto results = run_sweep(configs, SweepOptions{.threads = 4});
  ASSERT_EQ(results.size(), configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    // Workload is monotone across the sweep, so goodput identifies the slot.
    EXPECT_EQ(static_cast<int>(results[i].servers.size()), 6);
    EXPECT_GT(results[i].pages_completed, 0u);
  }
  // Higher workload (at these sub-saturation levels) completes more pages.
  EXPECT_GT(results.back().pages_completed, results.front().pages_completed);
}

TEST(SweepTest, MetricSweepMatchesFullSweep) {
  const auto configs = small_sweep();
  const auto full = run_sweep(configs, SweepOptions{.threads = 2});
  const auto metrics =
      run_sweep_metric(configs, [](const ExperimentResult& r) { return r.goodput(); },
                       SweepOptions{.threads = 4});
  ASSERT_EQ(metrics.size(), full.size());
  for (std::size_t i = 0; i < full.size(); ++i) {
    EXPECT_EQ(metrics[i], full[i].goodput());
  }
}

TEST(SweepTest, ReplicateIsThreadCountInvariant) {
  ExperimentConfig cfg;
  cfg.workload = 400;
  cfg.warmup = Duration::seconds(1);
  cfg.duration = Duration::seconds(3);
  const auto goodput = [](const ExperimentResult& r) { return r.goodput(); };
  // replicate() rides the sweep runner through the shared pool; samples are
  // keyed by seed, so mean/CI cannot depend on completion order.
  const auto a = replicate(cfg, 4, goodput, 7000);
  const auto b = replicate(cfg, 4, goodput, 7000);
  EXPECT_EQ(a.samples, b.samples);
  EXPECT_EQ(a.mean, b.mean);
  EXPECT_EQ(a.half_width, b.half_width);
}

}  // namespace
}  // namespace tbd::app
