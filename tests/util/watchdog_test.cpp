// Watchdog tests: a deliberately-stalled pool task must trip the stall
// latch within one deadline period of becoming reportable, thread_info()
// must show the offending slot, and — just as important — a disarmed
// watchdog must leave the pool's historic clock-free paths untouched.
//
// Registered via tbd_add_threaded_suite, so every test runs at
// TBD_THREADS=1 (watched serial inline path, caller slot 0) and
// TBD_THREADS=4 (watched worker path).
#include "util/thread_pool.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/exposition.h"
#include "obs/introspection.h"

namespace tbd {
namespace {

using Clock = std::chrono::steady_clock;

void sleep_ms(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

TEST(WatchdogTest, StalledTaskDetectedWithinDeadlinePeriod) {
  ThreadPool pool;
  constexpr std::uint64_t kDeadlineUs = 250'000;

  std::mutex mutex;
  std::condition_variable cv;
  std::vector<ThreadPool::StallInfo> stalls;
  const auto t_start = Clock::now();
  std::atomic<std::int64_t> first_fire_us{-1};

  ThreadPool::WatchdogOptions options;
  options.deadline_us = kDeadlineUs;
  options.on_stall = [&](const ThreadPool::StallInfo& info) {
    const auto latency = std::chrono::duration_cast<std::chrono::microseconds>(
                             Clock::now() - t_start)
                             .count();
    std::int64_t expected = -1;
    first_fire_us.compare_exchange_strong(expected, latency);
    const std::scoped_lock lock(mutex);
    stalls.push_back(info);
    cv.notify_all();
  };
  pool.start_watchdog(options);

  std::atomic<bool> fired_while_running{false};
  pool.parallel_for_indexed(1, [&](std::size_t) {
    std::unique_lock lock(mutex);
    // The stall must fire while the task is still in flight.
    fired_while_running = cv.wait_for(lock, std::chrono::milliseconds(1500),
                                      [&] { return !stalls.empty(); });
  });
  pool.stop_watchdog();

  ASSERT_TRUE(fired_while_running.load());
  EXPECT_GE(pool.stalls_detected(), 1u);
  // Reportable at t_start + deadline; the monitor polls at deadline/4, so
  // 3x deadline is a generous bound for "within one deadline period".
  EXPECT_LE(first_fire_us.load(),
            static_cast<std::int64_t>(3 * kDeadlineUs));
  const std::scoped_lock lock(mutex);
  ASSERT_FALSE(stalls.empty());
  EXPECT_GE(stalls[0].elapsed_us, kDeadlineUs);
  EXPECT_EQ(stalls[0].deadline_us, kDeadlineUs);
  EXPECT_EQ(stalls[0].task_index, 0u);
  EXPECT_FALSE(stalls[0].thread_name.empty());
}

TEST(WatchdogTest, ThreadInfoShowsTheOffendingSlot) {
  ThreadPool pool;
  ThreadPool::WatchdogOptions options;
  options.deadline_us = 100'000;
  pool.start_watchdog(options);

  std::atomic<bool> release{false};
  std::atomic<bool> saw_stalled_slot{false};
  std::thread prober([&] {
    // Poll thread_info() until the stuck task shows up as stalled.
    for (int tries = 0; tries < 200 && !saw_stalled_slot; ++tries) {
      for (const auto& info : pool.thread_info()) {
        if (info.running && info.stalled) {
          EXPECT_GE(info.task_elapsed_us, 100'000u);
          EXPECT_FALSE(info.name.empty());
          saw_stalled_slot = true;
        }
      }
      sleep_ms(10);
    }
    release = true;
  });
  pool.parallel_for_indexed(1, [&](std::size_t) {
    while (!release) sleep_ms(5);
  });
  prober.join();
  pool.stop_watchdog();

  EXPECT_TRUE(saw_stalled_slot.load());
  // Quiesced: nothing running, and the completed task was counted.
  std::uint64_t done = 0;
  for (const auto& info : pool.thread_info()) {
    EXPECT_FALSE(info.running);
    EXPECT_FALSE(info.stalled);
    done += info.tasks;
  }
  EXPECT_EQ(done, 1u);
}

TEST(WatchdogTest, SlowTasksKeepsLongestFirstTopK) {
  ThreadPool pool;
  ThreadPool::WatchdogOptions options;
  options.deadline_us = 60'000'000;  // nothing stalls; we want durations only
  pool.start_watchdog(options);

  // 12 tasks, duration growing with index: the top-8 must be the longest 8.
  pool.parallel_for_indexed(12, [&](std::size_t i) {
    sleep_ms(static_cast<int>(1 + i * 2));
  });
  pool.stop_watchdog();

  const auto slow = pool.slow_tasks();
  ASSERT_EQ(slow.size(), 8u);
  for (std::size_t i = 1; i < slow.size(); ++i) {
    EXPECT_GE(slow[i - 1].duration_us, slow[i].duration_us);
  }
  // The longest task (index 11, ~23ms) must have made the board.
  EXPECT_EQ(slow[0].task_index, 11u);
  EXPECT_EQ(pool.stalls_detected(), 0u);
}

TEST(WatchdogTest, FastTasksNeverFalseStall) {
  ThreadPool pool;
  std::atomic<std::uint64_t> fired{0};
  ThreadPool::WatchdogOptions options;
  options.deadline_us = 500'000;
  options.on_stall = [&](const ThreadPool::StallInfo&) { ++fired; };
  pool.start_watchdog(options);

  std::atomic<std::uint64_t> sum{0};
  for (int round = 0; round < 5; ++round) {
    pool.parallel_for_indexed(64, [&](std::size_t i) { sum += i; });
  }
  sleep_ms(200);  // give the monitor a few polls over idle heartbeats
  pool.stop_watchdog();

  EXPECT_EQ(pool.stalls_detected(), 0u);
  EXPECT_EQ(fired.load(), 0u);
  EXPECT_EQ(sum.load(), 5u * (64u * 63u) / 2u);
}

TEST(WatchdogTest, DisarmedPoolStampsNoHeartbeats) {
  ThreadPool pool;
  pool.parallel_for_indexed(16, [](std::size_t) {});
  // Without the watchdog armed the task path must not touch heartbeats —
  // that pins the clock-free serial fast path staying on its historic code.
  for (const auto& info : pool.thread_info()) {
    EXPECT_FALSE(info.running);
    EXPECT_EQ(info.tasks, 0u);
  }
  EXPECT_EQ(pool.stalls_detected(), 0u);
  EXPECT_TRUE(pool.slow_tasks().empty());
  EXPECT_FALSE(pool.watchdog_running());
}

std::string watchdog_http_get(std::uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof addr),
            0);
  EXPECT_GT(::send(fd, request.data(), request.size(), 0), 0);
  std::string response;
  char buf[8192];
  for (;;) {
    const auto n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(WatchdogTest, ThreadzShowsTheStalledThreadOverHttp) {
  // End to end: a hung task on the *shared* pool (what /threadz reports)
  // must surface as "stalled":true in a live scrape, at any TBD_THREADS.
  obs::Introspection intro{{"watchdog_test", {}}};
  obs::ExpositionServer server;
  intro.wire(server);
  ASSERT_TRUE(server.start()) << server.error();

  ThreadPool::WatchdogOptions options;
  options.deadline_us = 100'000;
  shared_pool().start_watchdog(options);

  std::atomic<bool> release{false};
  std::thread stuck([&] {
    shared_pool().parallel_for_indexed(1, [&](std::size_t) {
      while (!release) sleep_ms(5);
    });
  });

  bool saw_stalled = false;
  std::string last;
  for (int tries = 0; tries < 200 && !saw_stalled; ++tries) {
    last = watchdog_http_get(server.port(),
                             "GET /threadz HTTP/1.1\r\nHost: x\r\n\r\n");
    saw_stalled = last.find("\"stalled\":true") != std::string::npos;
    if (!saw_stalled) sleep_ms(10);
  }
  release = true;
  stuck.join();
  shared_pool().stop_watchdog();
  server.stop();

  EXPECT_TRUE(saw_stalled) << last;
  EXPECT_NE(last.find("\"running\":true"), std::string::npos) << last;
  EXPECT_GE(shared_pool().stalls_detected(), 1u);
}

TEST(WatchdogTest, RearmReplacesOptionsAndKeepsCounting) {
  ThreadPool pool;
  ThreadPool::WatchdogOptions options;
  options.deadline_us = 100'000;
  pool.start_watchdog(options);
  EXPECT_TRUE(pool.watchdog_running());
  pool.parallel_for_indexed(1, [&](std::size_t) { sleep_ms(250); });
  const std::uint64_t first = pool.stalls_detected();
  EXPECT_GE(first, 1u);

  options.deadline_us = 50'000;
  pool.start_watchdog(options);  // re-arm with a tighter deadline
  pool.parallel_for_indexed(1, [&](std::size_t) { sleep_ms(150); });
  pool.stop_watchdog();
  EXPECT_GT(pool.stalls_detected(), first);
}

}  // namespace
}  // namespace tbd
