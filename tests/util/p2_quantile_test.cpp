#include "util/p2_quantile.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/rng.h"
#include "util/stats.h"

namespace tbd {
namespace {

double exact_quantile(std::vector<double> xs, double q) {
  return quantile(xs, q);
}

TEST(P2QuantileTest, ExactBelowFiveSamples) {
  P2Quantile p50{0.5};
  p50.add(3.0);
  EXPECT_DOUBLE_EQ(p50.value(), 3.0);
  p50.add(1.0);
  EXPECT_DOUBLE_EQ(p50.value(), 2.0);
  p50.add(2.0);
  EXPECT_DOUBLE_EQ(p50.value(), 2.0);
}

TEST(P2QuantileTest, MedianOfUniform) {
  Rng rng{1};
  P2Quantile p50{0.5};
  for (int i = 0; i < 100'000; ++i) p50.add(rng.uniform(0.0, 10.0));
  EXPECT_NEAR(p50.value(), 5.0, 0.1);
}

TEST(P2QuantileTest, TailQuantileOfExponential) {
  Rng rng{2};
  P2Quantile p99{0.99};
  std::vector<double> all;
  for (int i = 0; i < 200'000; ++i) {
    const double x = rng.exponential(1.0);
    p99.add(x);
    all.push_back(x);
  }
  const double exact = exact_quantile(all, 0.99);
  EXPECT_NEAR(p99.value(), exact, exact * 0.05);
}

TEST(P2QuantileTest, BimodalDistribution) {
  // Like the response-time distribution of Figure 2(c): a fast mode and a
  // 3s retransmission mode. The p90 must land between the modes' masses.
  Rng rng{3};
  P2Quantile p90{0.9};
  std::vector<double> all;
  for (int i = 0; i < 100'000; ++i) {
    const double x = rng.bernoulli(0.95) ? rng.exponential(0.05)
                                         : 3.0 + rng.exponential(0.2);
    p90.add(x);
    all.push_back(x);
  }
  const double exact = exact_quantile(all, 0.9);
  EXPECT_NEAR(p90.value(), exact, std::max(0.05, exact * 0.25));
}

TEST(P2QuantileTest, MonotoneInQ) {
  Rng rng{4};
  P2Quantile p50{0.5};
  P2Quantile p90{0.9};
  P2Quantile p99{0.99};
  for (int i = 0; i < 50'000; ++i) {
    const double x = rng.gamma(2.0, 1.0);
    p50.add(x);
    p90.add(x);
    p99.add(x);
  }
  EXPECT_LT(p50.value(), p90.value());
  EXPECT_LT(p90.value(), p99.value());
}

TEST(P2QuantileTest, ConstantStream) {
  P2Quantile p95{0.95};
  for (int i = 0; i < 1000; ++i) p95.add(7.0);
  EXPECT_DOUBLE_EQ(p95.value(), 7.0);
}

TEST(P2QuantileTest, CountTracksAdds) {
  P2Quantile p{0.5};
  EXPECT_EQ(p.count(), 0u);
  EXPECT_DOUBLE_EQ(p.value(), 0.0);
  for (int i = 0; i < 17; ++i) p.add(i);
  EXPECT_EQ(p.count(), 17u);
}

}  // namespace
}  // namespace tbd
