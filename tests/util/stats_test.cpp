#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace tbd {
namespace {

TEST(RunningStatsTest, Empty) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, MergeMatchesCombined) {
  RunningStats a;
  RunningStats b;
  RunningStats all;
  for (int i = 0; i < 50; ++i) {
    const double x = 0.1 * i * i - 3.0 * i;
    if (i % 2 == 0) a.add(x); else b.add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(PearsonTest, PerfectPositive) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  const std::vector<double> y{2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson_correlation(x, y), 1.0, 1e-12);
}

TEST(PearsonTest, PerfectNegative) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  const std::vector<double> y{10, 8, 6, 4, 2};
  EXPECT_NEAR(pearson_correlation(x, y), -1.0, 1e-12);
}

TEST(PearsonTest, ConstantSeriesIsZero) {
  const std::vector<double> x{1, 2, 3};
  const std::vector<double> y{5, 5, 5};
  EXPECT_DOUBLE_EQ(pearson_correlation(x, y), 0.0);
}

TEST(PearsonTest, UncorrelatedNearZero) {
  std::vector<double> x;
  std::vector<double> y;
  // Deterministic pseudo-random-ish pattern with no linear relation.
  for (int i = 0; i < 1000; ++i) {
    x.push_back(std::sin(i * 0.7));
    y.push_back(std::cos(i * 1.3 + 0.5));
  }
  EXPECT_LT(std::abs(pearson_correlation(x, y)), 0.1);
}

TEST(QuantileTest, InterpolatesLinearly) {
  const std::vector<double> xs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0 / 3.0), 2.0);
}

TEST(QuantileTest, UnsortedInput) {
  const std::vector<double> xs{4, 1, 3, 2};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
}

TEST(QuantileTest, EmptyAndClamped) {
  EXPECT_DOUBLE_EQ(quantile({}, 0.5), 0.0);
  const std::vector<double> xs{1, 2};
  EXPECT_DOUBLE_EQ(quantile(xs, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 2.0), 2.0);
}

TEST(MeanStdTest, Basics) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(mean_of(xs), 3.0);
  EXPECT_NEAR(stddev_of(xs), std::sqrt(2.5), 1e-12);
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
  EXPECT_DOUBLE_EQ(stddev_of(std::vector<double>{1.0}), 0.0);
}

// Reference values from standard t tables.
TEST(StudentTTest, MatchesTableAt95) {
  EXPECT_NEAR(student_t_quantile(0.95, 1), 6.314, 0.02);
  EXPECT_NEAR(student_t_quantile(0.95, 2), 2.920, 0.02);
  EXPECT_NEAR(student_t_quantile(0.95, 5), 2.015, 0.01);
  EXPECT_NEAR(student_t_quantile(0.95, 10), 1.812, 0.01);
  EXPECT_NEAR(student_t_quantile(0.95, 30), 1.697, 0.005);
  EXPECT_NEAR(student_t_quantile(0.95, 120), 1.658, 0.005);
}

TEST(StudentTTest, ApproachesNormalForLargeDf) {
  EXPECT_NEAR(student_t_quantile(0.95, 100000), 1.6449, 1e-3);
  EXPECT_NEAR(student_t_quantile(0.975, 100000), 1.9600, 1e-3);
}

TEST(StudentTTest, MedianIsZero) {
  EXPECT_NEAR(student_t_quantile(0.5, 7), 0.0, 1e-9);
}

TEST(BinCountsTest, ClampsOutOfRange) {
  const std::vector<double> edges{0.0, 1.0, 2.0};
  const std::vector<double> sample{-5.0, 0.5, 1.5, 99.0};
  const auto counts = bin_counts(sample, edges);
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0], 2u);  // -5 clamped into first bin
  EXPECT_EQ(counts[1], 2u);  // 99 clamped into last bin
}

TEST(BinCountsTest, EdgeValuesGoRight) {
  const std::vector<double> edges{0.0, 1.0, 2.0};
  const std::vector<double> sample{1.0};
  const auto counts = bin_counts(sample, edges);
  EXPECT_EQ(counts[0], 0u);
  EXPECT_EQ(counts[1], 1u);
}

}  // namespace
}  // namespace tbd
