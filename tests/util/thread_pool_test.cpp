#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace tbd {
namespace {

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool{4};
  EXPECT_EQ(pool.size(), 4);
  std::vector<int> hits(1000, 0);
  pool.parallel_for_indexed(hits.size(), [&](std::size_t i) { ++hits[i]; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 1000);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, SingleThreadRunsInlineOnCaller) {
  ThreadPool pool{1};
  EXPECT_EQ(pool.size(), 1);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> ran(8);
  pool.parallel_for_indexed(ran.size(),
                            [&](std::size_t i) { ran[i] = std::this_thread::get_id(); });
  for (const auto& id : ran) EXPECT_EQ(id, caller);
}

TEST(ThreadPoolTest, SlotWritesGiveOrderIndependentOutput) {
  // The pattern every consumer uses: fn(i) derives its output from i alone.
  const auto run = [](int threads) {
    ThreadPool pool{threads};
    std::vector<double> out(257, 0.0);
    pool.parallel_for_indexed(out.size(), [&](std::size_t i) {
      out[i] = static_cast<double>(i * i) + 0.5;
    });
    return out;
  };
  EXPECT_EQ(run(1), run(5));
}

TEST(ThreadPoolTest, NestedFanOutFromWorkerRunsInline) {
  ThreadPool pool{3};
  std::vector<int> inner_total(4, 0);
  pool.parallel_for_indexed(inner_total.size(), [&](std::size_t outer) {
    int local = 0;
    pool.parallel_for_indexed(16, [&](std::size_t) { ++local; });
    inner_total[outer] = local;
  });
  for (int t : inner_total) EXPECT_EQ(t, 16);
}

TEST(ThreadPoolTest, FirstExceptionPropagates) {
  ThreadPool pool{4};
  EXPECT_THROW(
      pool.parallel_for_indexed(
          64,
          [](std::size_t i) {
            if (i == 13) throw std::runtime_error{"boom"};
          }),
      std::runtime_error);
  // The pool must still be usable after a failed job.
  std::atomic<int> ok{0};
  pool.parallel_for_indexed(8, [&](std::size_t) { ++ok; });
  EXPECT_EQ(ok.load(), 8);
}

TEST(ThreadPoolTest, ZeroIterationsIsANoOp) {
  ThreadPool pool{2};
  pool.parallel_for_indexed(0, [](std::size_t) { FAIL(); });
}

TEST(ThreadPoolTest, StatsCountInlineTasksOnSerialPath) {
  ThreadPool pool{1};
  pool.parallel_for_indexed(5, [](std::size_t) {});
  const auto st = pool.stats();
  EXPECT_EQ(st.tasks_inline, 5u);
  EXPECT_EQ(st.tasks, 0u);
  EXPECT_EQ(st.jobs, 0u);
  // The serial path is deliberately untimed (no clock reads).
  EXPECT_EQ(st.busy_us, 0u);
  ASSERT_EQ(st.worker_busy_us.size(), 1u);
  EXPECT_EQ(st.worker_busy_us[0], 0u);
}

TEST(ThreadPoolTest, StatsAccumulateAcrossPooledJobs) {
  ThreadPool pool{3};
  pool.parallel_for_indexed(4, [](std::size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  });
  pool.parallel_for_indexed(4, [](std::size_t) {});
  const auto st = pool.stats();
  EXPECT_EQ(st.jobs, 2u);
  EXPECT_EQ(st.tasks, 8u);
  EXPECT_EQ(st.tasks_inline, 0u);
  // 4 tasks slept >= 2ms each; allow generous slack for clock granularity.
  EXPECT_GE(st.busy_us, 4000u);
  ASSERT_EQ(st.worker_busy_us.size(), 3u);
  std::uint64_t per_slot = 0;
  for (const auto b : st.worker_busy_us) per_slot += b;
  EXPECT_EQ(per_slot, st.busy_us);
}

TEST(ThreadPoolTest, DefaultThreadCountHonorsEnv) {
  ASSERT_EQ(setenv("TBD_THREADS", "3", 1), 0);
  EXPECT_EQ(ThreadPool::default_thread_count(), 3);
  ASSERT_EQ(setenv("TBD_THREADS", "garbage", 1), 0);
  EXPECT_EQ(ThreadPool::default_thread_count(), 1);
  ASSERT_EQ(unsetenv("TBD_THREADS"), 0);
  EXPECT_GE(ThreadPool::default_thread_count(), 1);
}

}  // namespace
}  // namespace tbd
