#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace tbd {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a{123};
  Rng b{123};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a{1};
  Rng b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, ForkedStreamsAreIndependent) {
  Rng root{7};
  Rng a = root.fork(0);
  Rng b = root.fork(1);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, Uniform01Bounds) {
  Rng rng{5};
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIndexCoversRange) {
  Rng rng{5};
  std::vector<int> hits(10, 0);
  for (int i = 0; i < 10'000; ++i) ++hits[rng.uniform_index(10)];
  for (int h : hits) EXPECT_GT(h, 700);  // ~1000 expected each
}

TEST(RngTest, ExponentialMean) {
  Rng rng{11};
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(7.0);
  EXPECT_NEAR(sum / n, 7.0, 0.15);
}

TEST(RngTest, GammaMeanAndCv) {
  Rng rng{13};
  const double shape = 9.0;
  const double scale = 1.0 / 9.0;  // mean 1, CV 1/3
  double sum = 0.0;
  double sum2 = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.gamma(shape, scale);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 1.0, 0.02);
  EXPECT_NEAR(std::sqrt(var) / mean, 1.0 / 3.0, 0.02);
}

TEST(RngTest, GammaShapeBelowOne) {
  Rng rng{17};
  double sum = 0.0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) sum += rng.gamma(0.5, 2.0);  // mean 1
  EXPECT_NEAR(sum / n, 1.0, 0.05);
}

TEST(RngTest, NormalMoments) {
  Rng rng{19};
  double sum = 0.0;
  double sum2 = 0.0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(3.0, 2.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 3.0, 0.05);
  EXPECT_NEAR(sum2 / n - mean * mean, 4.0, 0.1);
}

TEST(RngTest, PoissonSmallMean) {
  Rng rng{23};
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(3.0));
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(RngTest, PoissonLargeMean) {
  Rng rng{29};
  double sum = 0.0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(200.0));
  EXPECT_NEAR(sum / n, 200.0, 2.0);
}

TEST(RngTest, BernoulliRate) {
  Rng rng{31};
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(DiscreteSamplerTest, MatchesWeights) {
  const std::vector<double> weights{1.0, 3.0, 6.0};
  DiscreteSampler sampler{weights};
  Rng rng{37};
  std::vector<int> hits(3, 0);
  const int n = 100'000;
  for (int i = 0; i < n; ++i) ++hits[sampler.sample(rng)];
  EXPECT_NEAR(hits[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(hits[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(hits[2] / static_cast<double>(n), 0.6, 0.01);
}

TEST(DiscreteSamplerTest, SingleBucket) {
  const std::vector<double> weights{2.0};
  DiscreteSampler sampler{weights};
  Rng rng{41};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sampler.sample(rng), 0u);
}

TEST(RngTest, WeightedIndexZeroWeightNeverPicked) {
  Rng rng{43};
  const std::vector<double> weights{0.0, 1.0, 0.0};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(rng.weighted_index(weights), 1u);
  }
}

}  // namespace
}  // namespace tbd
