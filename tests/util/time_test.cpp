#include "util/time.h"

#include <gtest/gtest.h>

namespace tbd {
namespace {

using namespace tbd::literals;

TEST(DurationTest, Construction) {
  EXPECT_EQ(Duration::micros(1500).micros(), 1500);
  EXPECT_EQ(Duration::millis(2).micros(), 2000);
  EXPECT_EQ(Duration::seconds(3).micros(), 3'000'000);
  EXPECT_EQ(Duration::from_seconds_f(0.05).micros(), 50'000);
  EXPECT_EQ(Duration::from_millis_f(1.5).micros(), 1500);
  EXPECT_EQ((50_ms).micros(), 50'000);
  EXPECT_EQ((2_s).micros(), 2'000'000);
  EXPECT_EQ((7_us).micros(), 7);
}

TEST(DurationTest, RoundsFractionalSecondsToNearestMicro) {
  EXPECT_EQ(Duration::from_seconds_f(1e-6 * 0.4).micros(), 0);
  EXPECT_EQ(Duration::from_seconds_f(1e-6 * 0.6).micros(), 1);
  EXPECT_EQ(Duration::from_seconds_f(-1e-6 * 0.6).micros(), -1);
}

TEST(DurationTest, Arithmetic) {
  EXPECT_EQ((10_ms + 5_ms).micros(), 15'000);
  EXPECT_EQ((10_ms - 5_ms).micros(), 5'000);
  EXPECT_EQ((10_ms * 3).micros(), 30'000);
  EXPECT_EQ((10_ms / 2).micros(), 5'000);
  EXPECT_DOUBLE_EQ((50_ms).ratio(100_ms), 0.5);
}

TEST(DurationTest, Comparisons) {
  EXPECT_LT(1_ms, 2_ms);
  EXPECT_EQ(1000_us, 1_ms);
  EXPECT_TRUE((0_us).is_zero());
  EXPECT_TRUE((1_us).is_positive());
  EXPECT_FALSE((0_us).is_positive());
}

TEST(DurationTest, Conversions) {
  EXPECT_DOUBLE_EQ((1500_us).millis_f(), 1.5);
  EXPECT_DOUBLE_EQ((2500_ms).seconds_f(), 2.5);
}

TEST(DurationTest, ToString) {
  EXPECT_EQ((2_s).to_string(), "2s");
  EXPECT_EQ((50_ms).to_string(), "50ms");
  EXPECT_EQ((7_us).to_string(), "7us");
}

TEST(TimePointTest, Arithmetic) {
  const TimePoint t0 = TimePoint::origin();
  const TimePoint t1 = t0 + 100_ms;
  EXPECT_EQ(t1.micros(), 100'000);
  EXPECT_EQ((t1 - t0).micros(), 100'000);
  EXPECT_EQ((t1 - 40_ms).micros(), 60'000);
  EXPECT_LT(t0, t1);
  EXPECT_GT(TimePoint::max(), t1);
}

TEST(TimePointTest, SecondsConversion) {
  EXPECT_DOUBLE_EQ((TimePoint::origin() + 1500_ms).seconds_f(), 1.5);
  EXPECT_DOUBLE_EQ((TimePoint::origin() + 1500_us).millis_f(), 1.5);
}

}  // namespace
}  // namespace tbd
