#include "util/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

namespace tbd {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in{path};
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

class CsvTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "/tbd_csv_test.csv";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(CsvTest, HeaderAndRows) {
  {
    CsvWriter w{path_};
    ASSERT_TRUE(w.is_open());
    w.write_header({"a", "b"});
    w.write_row({1.5, 2.0});
  }
  EXPECT_EQ(read_file(path_), "a,b\n1.5,2\n");
}

TEST_F(CsvTest, QuotesSpecialCharacters) {
  {
    CsvWriter w{path_};
    w.write_raw_row({"plain", "with,comma", "with\"quote"});
  }
  EXPECT_EQ(read_file(path_), "plain,\"with,comma\",\"with\"\"quote\"\n");
}

TEST_F(CsvTest, ColumnsOfUnequalLength) {
  CsvWriter::write_columns(path_, {"x", "y"}, {{1.0, 2.0, 3.0}, {10.0}});
  EXPECT_EQ(read_file(path_), "x,y\n1,10\n2,\n3,\n");
}

TEST(EnsureDirectoryTest, CreatesNested) {
  const std::string dir = ::testing::TempDir() + "/tbd_csv_dir/a/b";
  EXPECT_TRUE(ensure_directory(dir));
  std::ofstream probe{dir + "/probe.txt"};
  EXPECT_TRUE(probe.is_open());
}

}  // namespace
}  // namespace tbd
