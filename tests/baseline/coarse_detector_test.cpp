// The coarse (1s utilization) baseline and detector scoring: the core claim
// is that second-granularity sampling misses sub-second bottlenecks that the
// fine-grained method catches.
#include "baseline/coarse_detector.h"

#include <gtest/gtest.h>

namespace tbd::baseline {
namespace {

using namespace tbd::literals;

TEST(CoarseDetectorTest, FlagsSaturatedSamples) {
  const std::vector<double> util{0.5, 0.97, 0.99, 0.6};
  const auto out = detect_from_utilization(util, TimePoint::origin(), 1_s, 0.95);
  EXPECT_EQ(out.flagged,
            (std::vector<bool>{false, true, true, false}));
  EXPECT_EQ(out.spec.count, 4u);
  EXPECT_EQ(out.spec.width.micros(), 1'000'000);
}

TEST(CoarseDetectorTest, AveragingHidesTransientBottleneck) {
  // A 100ms full-saturation episode inside an otherwise 70%-busy second
  // reads as 0.7*0.9 + 1.0*0.1 = 73% -- far under any sane threshold. This
  // is the paper's core argument in miniature.
  const double second_avg = 0.7 * 0.9 + 1.0 * 0.1;
  const std::vector<double> util{second_avg};
  const auto out = detect_from_utilization(util, TimePoint::origin(), 1_s, 0.95);
  EXPECT_FALSE(out.flagged[0]);

  // Ground truth: a 100ms bottleneck at 400-500ms.
  const std::vector<core::TimeWindow> truth{
      {TimePoint::from_micros(400'000), TimePoint::from_micros(500'000)}};
  const auto report = score_detector(out, truth, 0_ms);
  EXPECT_EQ(report.detected_episodes, 0u);
  EXPECT_DOUBLE_EQ(report.recall(), 0.0);
}

TEST(ScoreDetectorTest, OverlapWithSlack) {
  core::IntervalSpec spec;
  spec.start = TimePoint::origin();
  spec.width = 50_ms;
  spec.count = 4;
  DetectorOutput out{spec, {false, true, false, false}};  // flag [50,100)ms
  const std::vector<core::TimeWindow> truth{
      {TimePoint::from_micros(120'000), TimePoint::from_micros(130'000)}};
  // Without slack the flag misses the episode; 30ms slack bridges it.
  EXPECT_EQ(score_detector(out, truth, 0_ms).detected_episodes, 0u);
  EXPECT_EQ(score_detector(out, truth, 30_ms).detected_episodes, 1u);
}

TEST(ScoreDetectorTest, PrecisionCountsFalsePositives) {
  core::IntervalSpec spec;
  spec.start = TimePoint::origin();
  spec.width = 50_ms;
  spec.count = 4;
  DetectorOutput out{spec, {true, true, false, true}};
  const std::vector<core::TimeWindow> truth{
      {TimePoint::from_micros(0), TimePoint::from_micros(60'000)}};
  const auto report = score_detector(out, truth, 0_ms);
  EXPECT_EQ(report.flagged_intervals, 3u);
  // Flags 0 and 1 overlap the truth window; flag 3 ([150,200)ms) does not.
  EXPECT_EQ(report.false_positive_intervals, 1u);
  EXPECT_NEAR(report.precision(), 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(report.recall(), 1.0);
}

TEST(ScoreDetectorTest, EmptyTruthGivesPerfectRecall) {
  core::IntervalSpec spec;
  spec.start = TimePoint::origin();
  spec.width = 1_s;
  spec.count = 1;
  DetectorOutput out{spec, {false}};
  const auto report = score_detector(out, {}, 0_ms);
  EXPECT_DOUBLE_EQ(report.recall(), 1.0);
  EXPECT_DOUBLE_EQ(report.precision(), 1.0);
}

TEST(SamplingOverheadTest, MatchesPaperQuotes) {
  // "about 6% CPU utilization overhead at 100ms interval and 12% at 20ms".
  EXPECT_NEAR(sampling_overhead_fraction(100_ms), 0.06, 0.005);
  EXPECT_NEAR(sampling_overhead_fraction(20_ms), 0.12, 0.005);
  // Monotone: finer sampling costs more.
  EXPECT_GT(sampling_overhead_fraction(10_ms), sampling_overhead_fraction(50_ms));
  EXPECT_LT(sampling_overhead_fraction(1_s), 0.04);
}

TEST(FineGrainedAdapterTest, CongestedAndFrozenAreFlagged) {
  core::DetectionResult result;
  result.spec.start = TimePoint::origin();
  result.spec.width = 50_ms;
  result.spec.count = 4;
  result.states = {core::IntervalState::kIdle, core::IntervalState::kNormal,
                   core::IntervalState::kCongested,
                   core::IntervalState::kFrozen};
  const auto out = detect_from_fine_grained(result);
  EXPECT_EQ(out.flagged, (std::vector<bool>{false, false, true, true}));
}

}  // namespace
}  // namespace tbd::baseline
