// Exact MVA sanity: asymptotes, bottleneck law, monotonicity.
#include "baseline/mva.h"

#include <gtest/gtest.h>

namespace tbd::baseline {
namespace {

MvaModel simple_model() {
  MvaModel m;
  m.stations = {{"app", 0.002}, {"db", 0.001}};  // demands in seconds
  m.delay_s = 0.001;
  m.think_s = 1.0;
  return m;
}

TEST(MvaTest, SingleCustomerHasNoQueueing) {
  const auto p = solve_mva(simple_model(), 1);
  EXPECT_NEAR(p.response_time_s, 0.004, 1e-12);  // sum of demands + delay
  EXPECT_NEAR(p.throughput, 1.0 / 1.004, 1e-9);
}

TEST(MvaTest, ThroughputSaturatesAtBottleneckRate) {
  const auto p = solve_mva(simple_model(), 5000);
  // X_max = 1 / max demand = 500/s.
  EXPECT_NEAR(p.throughput, 500.0, 1.0);
  EXPECT_NEAR(p.utilization[0], 1.0, 0.01);  // app saturated
  EXPECT_NEAR(p.utilization[1], 0.5, 0.01);
}

TEST(MvaTest, LowPopulationFollowsLittlesLaw) {
  const auto p = solve_mva(simple_model(), 50);
  EXPECT_NEAR(p.throughput, 50.0 / (1.0 + p.response_time_s), 1e-9);
}

TEST(MvaTest, ThroughputMonotoneInPopulation) {
  const auto sweep = solve_mva_sweep(simple_model(), {1, 10, 100, 1000});
  ASSERT_EQ(sweep.size(), 4u);
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    EXPECT_GE(sweep[i].throughput, sweep[i - 1].throughput - 1e-12);
  }
}

TEST(MvaTest, ResponseTimeGrowsLinearlyBeyondSaturation) {
  // Asymptotically R ~ N/X_max - Z.
  const auto p = solve_mva(simple_model(), 2000);
  EXPECT_NEAR(p.response_time_s, 2000.0 / 500.0 - 1.0, 0.05);
}

TEST(MvaTest, SweepMatchesIndividualSolves) {
  const auto sweep = solve_mva_sweep(simple_model(), {7, 40});
  EXPECT_NEAR(sweep[0].throughput, solve_mva(simple_model(), 7).throughput, 1e-12);
  EXPECT_NEAR(sweep[1].throughput, solve_mva(simple_model(), 40).throughput, 1e-12);
}

TEST(MvaTest, QueueLengthsSumToPopulationMinusThinkers) {
  const auto p = solve_mva(simple_model(), 100);
  double in_system = 0.0;
  for (double q : p.queue_len) in_system += q;
  const double thinking = p.throughput * simple_model().think_s;
  const double in_delay = p.throughput * simple_model().delay_s;
  EXPECT_NEAR(in_system + thinking + in_delay, 100.0, 0.01);
}

}  // namespace
}  // namespace tbd::baseline
