#include "metrics/response_collector.h"

#include <gtest/gtest.h>

namespace tbd::metrics {
namespace {

using namespace tbd::literals;

PageSample page(std::int64_t completed_ms, double rt_s,
                std::uint32_t cls = 0) {
  PageSample p;
  p.completed = TimePoint::origin() + Duration::millis(completed_ms);
  p.response_time = Duration::from_seconds_f(rt_s);
  p.class_id = cls;
  return p;
}

TEST(ResponseCollectorTest, WindowFiltersByCompletionTime) {
  ResponseCollector c;
  c.record(page(500, 0.1));
  c.record(page(1500, 0.2));
  c.record(page(2500, 0.3));
  const auto w = c.window(TimePoint::origin() + 1_s, TimePoint::origin() + 2_s);
  ASSERT_EQ(w.size(), 1u);
  EXPECT_DOUBLE_EQ(w[0].response_time.seconds_f(), 0.2);
}

TEST(ResponseCollectorTest, MeanAndThroughput) {
  ResponseCollector c;
  c.record(page(100, 0.1));
  c.record(page(200, 0.3));
  c.record(page(5000, 9.0));  // outside window
  const auto t0 = TimePoint::origin();
  const auto t1 = t0 + 1_s;
  EXPECT_DOUBLE_EQ(c.mean_rt_seconds(t0, t1), 0.2);
  EXPECT_DOUBLE_EQ(c.throughput(t0, t1), 2.0);
}

TEST(ResponseCollectorTest, FractionAbove) {
  ResponseCollector c;
  for (int i = 0; i < 8; ++i) c.record(page(i * 10, 0.5));
  c.record(page(100, 2.5));
  c.record(page(110, 3.5));
  EXPECT_DOUBLE_EQ(
      c.fraction_above(TimePoint::origin(), TimePoint::origin() + 1_s, 2_s),
      0.2);
}

TEST(ResponseCollectorTest, QuantileOverWindow) {
  ResponseCollector c;
  for (int i = 1; i <= 100; ++i) c.record(page(i, 0.01 * i));
  const double p99 =
      c.rt_quantile(TimePoint::origin(), TimePoint::origin() + 1_s, 0.99);
  EXPECT_NEAR(p99, 0.99, 0.011);
}

TEST(ResponseCollectorTest, IntervalMeanRtLeavesGapsAtZero) {
  ResponseCollector c;
  c.record(page(25, 0.2));
  c.record(page(30, 0.4));
  c.record(page(125, 1.0));
  const auto series = c.interval_mean_rt(TimePoint::origin(),
                                         TimePoint::origin() + 150_ms, 50_ms);
  ASSERT_EQ(series.size(), 3u);
  EXPECT_DOUBLE_EQ(series[0], 0.3);
  EXPECT_DOUBLE_EQ(series[1], 0.0);  // no completions in [50,100)
  EXPECT_DOUBLE_EQ(series[2], 1.0);
}

TEST(ResponseCollectorTest, HistogramUsesProvidedEdges) {
  ResponseCollector c;
  c.record(page(10, 0.05));
  c.record(page(20, 0.3));
  c.record(page(30, 3.6));
  const std::vector<double> edges{0.0, 0.1, 0.5, 3.5, 100.0};
  const auto counts =
      c.rt_histogram(TimePoint::origin(), TimePoint::origin() + 1_s, edges);
  EXPECT_EQ(counts, (std::vector<std::size_t>{1, 1, 0, 1}));
}

TEST(ResponseCollectorTest, EmptyWindowsAreSafe) {
  ResponseCollector c;
  EXPECT_DOUBLE_EQ(c.mean_rt_seconds(TimePoint::origin(), TimePoint::origin() + 1_s), 0.0);
  EXPECT_DOUBLE_EQ(c.throughput(TimePoint::origin(), TimePoint::origin()), 0.0);
  EXPECT_DOUBLE_EQ(
      c.fraction_above(TimePoint::origin(), TimePoint::origin() + 1_s, 1_s), 0.0);
}

}  // namespace
}  // namespace tbd::metrics
