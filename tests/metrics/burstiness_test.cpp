#include "metrics/burstiness.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace tbd::metrics {
namespace {

using namespace tbd::literals;

std::vector<TimePoint> poisson_arrivals(double rate_per_s, double horizon_s,
                                        std::uint64_t seed) {
  Rng rng{seed};
  std::vector<TimePoint> arrivals;
  double t = 0.0;
  while (t < horizon_s * 1e6) {
    t += rng.exponential(1e6 / rate_per_s);
    arrivals.push_back(TimePoint::from_micros(static_cast<std::int64_t>(t)));
  }
  return arrivals;
}

TEST(BurstinessTest, PoissonHasUnitDispersion) {
  const auto arrivals = poisson_arrivals(500.0, 60.0, 1);
  for (const Duration w : {50_ms, 200_ms, 1_s}) {
    const double idc = index_of_dispersion(arrivals, TimePoint::origin(),
                                           TimePoint::origin() + 60_s, w);
    EXPECT_NEAR(idc, 1.0, 0.35) << w.to_string();
  }
}

TEST(BurstinessTest, OnOffProcessIsOverdispersed) {
  // 500ms ON at 1000/s, 500ms OFF: batchy at scales >= the phase length.
  Rng rng{2};
  std::vector<TimePoint> arrivals;
  for (int cycle = 0; cycle < 60; ++cycle) {
    const double base = cycle * 1e6;
    double t = 0.0;
    while (t < 0.5e6) {
      t += rng.exponential(1000.0);
      arrivals.push_back(
          TimePoint::from_micros(static_cast<std::int64_t>(base + t)));
    }
  }
  const double idc_small = index_of_dispersion(
      arrivals, TimePoint::origin(), TimePoint::origin() + 60_s, 10_ms);
  const double idc_large = index_of_dispersion(
      arrivals, TimePoint::origin(), TimePoint::origin() + 60_s, 500_ms);
  EXPECT_GT(idc_large, 20.0);
  EXPECT_GT(idc_large, idc_small * 3.0);  // dispersion grows with scale
}

TEST(BurstinessTest, DeterministicArrivalsAreUnderdispersed) {
  std::vector<TimePoint> arrivals;
  for (int i = 0; i < 30'000; ++i) {
    arrivals.push_back(TimePoint::from_micros(i * 2000));  // exactly 500/s
  }
  const double idc = index_of_dispersion(arrivals, TimePoint::origin(),
                                         TimePoint::origin() + 60_s, 100_ms);
  EXPECT_LT(idc, 0.1);
}

TEST(BurstinessTest, DispersionCurveMatchesPointQueries) {
  const auto arrivals = poisson_arrivals(200.0, 30.0, 3);
  const std::vector<Duration> windows{20_ms, 100_ms, 1_s};
  const auto curve = dispersion_curve(arrivals, TimePoint::origin(),
                                      TimePoint::origin() + 30_s, windows);
  ASSERT_EQ(curve.size(), 3u);
  for (const auto& point : curve) {
    EXPECT_DOUBLE_EQ(point.idc,
                     index_of_dispersion(arrivals, TimePoint::origin(),
                                         TimePoint::origin() + 30_s,
                                         point.window));
  }
}

TEST(BurstinessTest, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(index_of_dispersion({}, TimePoint::origin(),
                                       TimePoint::origin() + 1_s, 100_ms),
                   0.0);
  const std::vector<TimePoint> one{TimePoint::from_micros(10)};
  // Window longer than the range: fewer than two windows.
  EXPECT_DOUBLE_EQ(index_of_dispersion(one, TimePoint::origin(),
                                       TimePoint::origin() + 1_s, 1_s),
                   0.0);
}

TEST(InterarrivalScvTest, ExponentialIsOne) {
  const auto arrivals = poisson_arrivals(1000.0, 30.0, 4);
  EXPECT_NEAR(interarrival_scv(arrivals, TimePoint::origin(),
                               TimePoint::origin() + 30_s),
              1.0, 0.15);
}

TEST(InterarrivalScvTest, DeterministicIsZero) {
  std::vector<TimePoint> arrivals;
  for (int i = 0; i < 1000; ++i) {
    arrivals.push_back(TimePoint::from_micros(i * 1000));
  }
  EXPECT_NEAR(interarrival_scv(arrivals, TimePoint::origin(),
                               TimePoint::origin() + 1_s),
              0.0, 1e-9);
}

TEST(InterarrivalScvTest, UnsortedInputHandled) {
  std::vector<TimePoint> arrivals{TimePoint::from_micros(3000),
                                  TimePoint::from_micros(1000),
                                  TimePoint::from_micros(2000),
                                  TimePoint::from_micros(4000)};
  EXPECT_NEAR(interarrival_scv(arrivals, TimePoint::origin(),
                               TimePoint::origin() + 1_s),
              0.0, 1e-9);
}

}  // namespace
}  // namespace tbd::metrics
