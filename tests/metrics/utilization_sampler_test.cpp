#include "metrics/utilization_sampler.h"

#include <gtest/gtest.h>

namespace tbd::metrics {
namespace {

using namespace tbd::literals;

TEST(UtilizationSamplerTest, TracksBusyFraction) {
  sim::Engine engine;
  ntier::Topology topo{engine, ntier::paper_topology()};
  UtilizationSampler sampler{engine, topo, 1_s};
  // Keep app1 (1 core) busy 30% of each second: 300ms of work per second.
  auto& app1 = topo.server(ntier::TierKind::kApp, 0);
  for (int s = 0; s < 3; ++s) {
    engine.schedule_at(TimePoint::origin() + Duration::seconds(s),
                       [&app1] { app1.compute(300'000.0, [] {}); });
  }
  engine.run_until(TimePoint::origin() + 3_s);
  const auto idx = topo.server_index(ntier::TierKind::kApp, 0);
  const auto& series = sampler.series(idx);
  ASSERT_EQ(series.size(), 3u);
  for (double u : series) EXPECT_NEAR(u, 0.3, 0.01);
  // Idle server reads zero.
  const auto web = topo.server_index(ntier::TierKind::kWeb, 0);
  for (double u : sampler.series(web)) EXPECT_DOUBLE_EQ(u, 0.0);
}

TEST(UtilizationSamplerTest, MultiCoreNormalization) {
  sim::Engine engine;
  ntier::Topology topo{engine, ntier::paper_topology()};
  UtilizationSampler sampler{engine, topo, 1_s};
  // web has 2 cores; one job of 1s of work => 50% utilization.
  topo.server(ntier::TierKind::kWeb, 0).compute(1'000'000.0, [] {});
  engine.run_until(TimePoint::origin() + 1_s);
  const auto web = topo.server_index(ntier::TierKind::kWeb, 0);
  ASSERT_EQ(sampler.series(web).size(), 1u);
  EXPECT_NEAR(sampler.series(web)[0], 0.5, 0.01);
}

TEST(UtilizationSamplerTest, MeanUtilOverWindow) {
  sim::Engine engine;
  ntier::Topology topo{engine, ntier::paper_topology()};
  UtilizationSampler sampler{engine, topo, 1_s};
  auto& db = topo.server(ntier::TierKind::kDb, 0);
  // 100% busy in second 0, idle in seconds 1-2.
  db.compute(1'000'000.0, [] {});
  engine.run_until(TimePoint::origin() + 3_s);
  const auto idx = topo.server_index(ntier::TierKind::kDb, 0);
  EXPECT_NEAR(sampler.mean_util(idx, TimePoint::origin(),
                                TimePoint::origin() + 3_s),
              1.0 / 3.0, 0.01);
  EXPECT_NEAR(sampler.mean_util(idx, TimePoint::origin() + 1_s,
                                TimePoint::origin() + 3_s),
              0.0, 0.01);
}

TEST(UtilizationSamplerTest, EsxtopGranularity) {
  sim::Engine engine;
  ntier::Topology topo{engine, ntier::paper_topology()};
  UtilizationSampler sampler{engine, topo, 2_s};  // esxtop samples at 2s
  topo.server(ntier::TierKind::kMw, 0).compute(800'000.0, [] {});
  engine.run_until(TimePoint::origin() + 4_s);
  const auto idx = topo.server_index(ntier::TierKind::kMw, 0);
  ASSERT_EQ(sampler.series(idx).size(), 2u);
  EXPECT_NEAR(sampler.series(idx)[0], 0.2, 0.01);  // 0.8s / (2s * 2 cores)
}

}  // namespace
}  // namespace tbd::metrics
