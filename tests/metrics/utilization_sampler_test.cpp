#include "metrics/utilization_sampler.h"

#include <gtest/gtest.h>

namespace tbd::metrics {
namespace {

using namespace tbd::literals;

TEST(UtilizationSamplerTest, TracksBusyFraction) {
  sim::Engine engine;
  ntier::Topology topo{engine, ntier::paper_topology()};
  UtilizationSampler sampler{engine, topo, 1_s};
  // Keep app1 (1 core) busy 30% of each second: 300ms of work per second.
  auto& app1 = topo.server(ntier::TierKind::kApp, 0);
  for (int s = 0; s < 3; ++s) {
    engine.schedule_at(TimePoint::origin() + Duration::seconds(s),
                       [&app1] { app1.compute(300'000.0, [] {}); });
  }
  engine.run_until(TimePoint::origin() + 3_s);
  const auto idx = topo.server_index(ntier::TierKind::kApp, 0);
  const auto& series = sampler.series(idx);
  ASSERT_EQ(series.size(), 3u);
  for (double u : series) EXPECT_NEAR(u, 0.3, 0.01);
  // Idle server reads zero.
  const auto web = topo.server_index(ntier::TierKind::kWeb, 0);
  for (double u : sampler.series(web)) EXPECT_DOUBLE_EQ(u, 0.0);
}

TEST(UtilizationSamplerTest, MultiCoreNormalization) {
  sim::Engine engine;
  ntier::Topology topo{engine, ntier::paper_topology()};
  UtilizationSampler sampler{engine, topo, 1_s};
  // web has 2 cores; one job of 1s of work => 50% utilization.
  topo.server(ntier::TierKind::kWeb, 0).compute(1'000'000.0, [] {});
  engine.run_until(TimePoint::origin() + 1_s);
  const auto web = topo.server_index(ntier::TierKind::kWeb, 0);
  ASSERT_EQ(sampler.series(web).size(), 1u);
  EXPECT_NEAR(sampler.series(web)[0], 0.5, 0.01);
}

TEST(UtilizationSamplerTest, MeanUtilOverWindow) {
  sim::Engine engine;
  ntier::Topology topo{engine, ntier::paper_topology()};
  UtilizationSampler sampler{engine, topo, 1_s};
  auto& db = topo.server(ntier::TierKind::kDb, 0);
  // 100% busy in second 0, idle in seconds 1-2.
  db.compute(1'000'000.0, [] {});
  engine.run_until(TimePoint::origin() + 3_s);
  const auto idx = topo.server_index(ntier::TierKind::kDb, 0);
  EXPECT_NEAR(sampler.mean_util(idx, TimePoint::origin(),
                                TimePoint::origin() + 3_s),
              1.0 / 3.0, 0.01);
  EXPECT_NEAR(sampler.mean_util(idx, TimePoint::origin() + 1_s,
                                TimePoint::origin() + 3_s),
              0.0, 0.01);
}

// Boundary contract of mean_util: only samples FULLY contained in [t0, t1)
// count; any window with no complete sample returns 0.0.
TEST(UtilizationSamplerTest, MeanUtilBoundaryCases) {
  sim::Engine engine;
  ntier::Topology topo{engine, ntier::paper_topology()};
  UtilizationSampler sampler{engine, topo, 1_s};
  auto& db = topo.server(ntier::TierKind::kDb, 0);
  db.compute(1'000'000.0, [] {});  // 100% busy in second 0
  engine.run_until(TimePoint::origin() + 2_s);
  const auto idx = topo.server_index(ntier::TierKind::kDb, 0);
  ASSERT_EQ(sampler.series(idx).size(), 2u);
  EXPECT_EQ(sampler.samples_taken(), 2u);

  const TimePoint t0 = TimePoint::origin();
  // Empty range (t0 == t1) contains no sample.
  EXPECT_DOUBLE_EQ(sampler.mean_util(idx, t0 + 1_s, t0 + 1_s), 0.0);
  // Inverted range.
  EXPECT_DOUBLE_EQ(sampler.mean_util(idx, t0 + 2_s, t0 + 1_s), 0.0);
  // Range entirely past the last sample.
  EXPECT_DOUBLE_EQ(sampler.mean_util(idx, t0 + 10_s, t0 + 20_s), 0.0);
  // Sub-period window: overlaps sample 0 but doesn't contain it.
  EXPECT_DOUBLE_EQ(
      sampler.mean_util(idx, t0, t0 + Duration::from_millis_f(500.0)), 0.0);
  // Partially covered samples are excluded: [0.5s, 2s) fully contains only
  // sample 1 (idle), not the busy sample 0 it half-overlaps.
  EXPECT_DOUBLE_EQ(
      sampler.mean_util(idx, t0 + Duration::from_millis_f(500.0), t0 + 2_s),
      0.0);
  // Exact cover of sample 0 alone.
  EXPECT_NEAR(sampler.mean_util(idx, t0, t0 + 1_s), 1.0, 0.01);
}

TEST(UtilizationSamplerTest, NoTicksBeforeFirstPeriod) {
  sim::Engine engine;
  ntier::Topology topo{engine, ntier::paper_topology()};
  UtilizationSampler sampler{engine, topo, 1_s};
  engine.run_until(TimePoint::origin() + Duration::from_millis_f(500.0));
  EXPECT_EQ(sampler.samples_taken(), 0u);
  const auto idx = topo.server_index(ntier::TierKind::kDb, 0);
  EXPECT_TRUE(sampler.series(idx).empty());
  EXPECT_DOUBLE_EQ(sampler.mean_util(idx, TimePoint::origin(),
                                     TimePoint::origin() + 1_s),
                   0.0);
}

TEST(UtilizationSamplerTest, EsxtopGranularity) {
  sim::Engine engine;
  ntier::Topology topo{engine, ntier::paper_topology()};
  UtilizationSampler sampler{engine, topo, 2_s};  // esxtop samples at 2s
  topo.server(ntier::TierKind::kMw, 0).compute(800'000.0, [] {});
  engine.run_until(TimePoint::origin() + 4_s);
  const auto idx = topo.server_index(ntier::TierKind::kMw, 0);
  ASSERT_EQ(sampler.series(idx).size(), 2u);
  EXPECT_NEAR(sampler.series(idx)[0], 0.2, 0.01);  // 0.8s / (2s * 2 cores)
}

}  // namespace
}  // namespace tbd::metrics
