#include "workload/session_model.h"

#include <gtest/gtest.h>

#include "trace/sink.h"
#include "workload/browse_mix.h"
#include "workload/client_population.h"

namespace tbd::workload {
namespace {

using namespace tbd::literals;

TEST(SessionModelTest, RowsAreValidDistributions) {
  const auto model = rubbos_browse_sessions();
  EXPECT_EQ(model.classes(), rubbos_browse_mix().size());
  // Sampling never returns an out-of-range class.
  Rng rng{1};
  for (int i = 0; i < 1000; ++i) {
    const auto f = model.first(rng);
    ASSERT_LT(f, model.classes());
    ASSERT_LT(model.next(f, rng), model.classes());
  }
}

TEST(SessionModelTest, StationaryNearMixWeights) {
  const auto model = rubbos_browse_sessions();
  const auto pi = model.stationary();
  const auto mix = rubbos_browse_mix();
  ASSERT_EQ(pi.size(), mix.size());
  double total = 0.0;
  for (std::size_t c = 0; c < pi.size(); ++c) {
    EXPECT_NEAR(pi[c], mix[c].weight, 0.05) << mix[c].name;
    total += pi[c];
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(SessionModelTest, IndependentModelReproducesWeights) {
  const std::vector<double> weights{0.2, 0.5, 0.3};
  const auto model = SessionModel::independent(weights);
  const auto pi = model.stationary();
  for (std::size_t c = 0; c < weights.size(); ++c) {
    EXPECT_NEAR(pi[c], weights[c], 1e-9);
  }
  // next() ignores the previous state.
  Rng rng{2};
  std::vector<int> hits(3, 0);
  for (int i = 0; i < 30'000; ++i) ++hits[model.next(0, rng)];
  EXPECT_NEAR(hits[1] / 30'000.0, 0.5, 0.02);
}

TEST(SessionModelTest, TransitionsAreCorrelated) {
  // ViewStory (1) must lead to ViewComment (2) far more often than the
  // stationary share of ViewComment: that correlation is the point.
  const auto model = rubbos_browse_sessions();
  Rng rng{3};
  int after_story = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    if (model.next(1, rng) == 2) ++after_story;
  }
  EXPECT_GT(after_story / static_cast<double>(n), 0.3);
}

TEST(SessionModelTest, DrivesClientPopulation) {
  sim::Engine engine;
  ntier::Topology topology{engine, ntier::paper_topology()};
  trace::TraceSink sink{topology.total_servers()};
  ntier::TxnDriver driver{engine, topology, rubbos_browse_mix(),
                          sink,   Rng{4},   ntier::TxnDriver::Config{}};
  ClientConfig cfg;
  cfg.num_clients = 300;
  cfg.mean_think = 500_ms;
  cfg.bursts_enabled = false;
  std::vector<int> class_counts(rubbos_browse_mix().size(), 0);
  ClientPopulation pop{engine, driver, cfg, Rng{5},
                       [&](const ntier::TxnDriver::PageResult& r) {
                         ++class_counts[r.class_id];
                       }};
  pop.use_sessions(rubbos_browse_sessions());
  pop.start();
  engine.run_until(TimePoint::origin() + 30_s);

  int total = 0;
  for (int c : class_counts) total += c;
  ASSERT_GT(total, 5000);
  // Long-run class shares follow the stationary distribution.
  const auto pi = rubbos_browse_sessions().stationary();
  for (std::size_t c = 0; c < class_counts.size(); ++c) {
    EXPECT_NEAR(class_counts[c] / static_cast<double>(total), pi[c], 0.04)
        << "class " << c;
  }
}

}  // namespace
}  // namespace tbd::workload
