#include "workload/arrival_replay.h"

#include <gtest/gtest.h>

#include "metrics/burstiness.h"
#include "trace/sink.h"
#include "workload/browse_mix.h"

namespace tbd::workload {
namespace {

using namespace tbd::literals;

const std::vector<double> kOneClass{1.0};

TEST(PoissonScheduleTest, RateMatches) {
  Rng rng{1};
  const auto schedule = poisson_schedule(800.0, 30_s, kOneClass, rng);
  EXPECT_NEAR(static_cast<double>(schedule.size()), 800.0 * 30.0, 800.0);
  for (std::size_t i = 1; i < schedule.size(); ++i) {
    EXPECT_GE(schedule[i].at.micros(), schedule[i - 1].at.micros());
  }
  EXPECT_LT(schedule.back().at.micros(), 30'000'000);
}

TEST(PoissonScheduleTest, ClassMixRespected) {
  Rng rng{2};
  const std::vector<double> weights{0.25, 0.75};
  const auto schedule = poisson_schedule(1000.0, 20_s, weights, rng);
  std::size_t class1 = 0;
  for (const auto& a : schedule) {
    if (a.class_id == 1) ++class1;
  }
  EXPECT_NEAR(static_cast<double>(class1) / schedule.size(), 0.75, 0.03);
}

TEST(MmppScheduleTest, MeanRateBetweenPhases) {
  Rng rng{3};
  MmppConfig cfg;
  cfg.base_rate_per_s = 400.0;
  cfg.burst_rate_per_s = 4000.0;
  cfg.mean_base = 900_ms;
  cfg.mean_burst = 100_ms;
  const auto schedule = mmpp_schedule(cfg, 60_s, kOneClass, rng);
  // Expected rate: (400*0.9 + 4000*0.1) / 1.0 = 760/s.
  EXPECT_NEAR(static_cast<double>(schedule.size()) / 60.0, 760.0, 80.0);
}

TEST(MmppScheduleTest, OverdispersedVsPoisson) {
  Rng rng{4};
  MmppConfig cfg;
  const auto bursty = mmpp_schedule(cfg, 60_s, kOneClass, rng);
  const auto smooth = poisson_schedule(
      static_cast<double>(bursty.size()) / 60.0, 60_s, kOneClass, rng);

  auto arrivals = [](const ArrivalSchedule& s) {
    std::vector<TimePoint> ts;
    for (const auto& a : s) ts.push_back(a.at);
    return ts;
  };
  const double idc_bursty = metrics::index_of_dispersion(
      arrivals(bursty), TimePoint::origin(), TimePoint::origin() + 60_s, 500_ms);
  const double idc_smooth = metrics::index_of_dispersion(
      arrivals(smooth), TimePoint::origin(), TimePoint::origin() + 60_s, 500_ms);
  EXPECT_GT(idc_bursty, 5.0 * std::max(1.0, idc_smooth));
}

TEST(ArrivalReplayTest, DrivesTransactionsThroughTheStack) {
  sim::Engine engine;
  ntier::Topology topology{engine, ntier::paper_topology()};
  trace::TraceSink sink{topology.total_servers()};
  ntier::TxnDriver driver{engine, topology, rubbos_browse_mix(),
                          sink,   Rng{5},   ntier::TxnDriver::Config{}};

  std::vector<double> weights;
  for (const auto& c : rubbos_browse_mix()) weights.push_back(c.weight);
  Rng rng{6};
  auto schedule = poisson_schedule(300.0, 10_s, weights, rng);
  const auto expected = schedule.size();

  std::uint64_t pages = 0;
  ArrivalReplay replay{engine, driver, std::move(schedule),
                       [&pages](const auto&) { ++pages; }};
  replay.start();
  engine.run_until(TimePoint::origin() + 15_s);
  EXPECT_EQ(replay.pages_started(), expected);
  EXPECT_EQ(replay.pages_completed(), expected);
  EXPECT_EQ(pages, expected);
  EXPECT_FALSE(sink.server_log(0).empty());
}

TEST(ArrivalReplayTest, OpenLoopDoesNotThrottleUnderOverload) {
  // Open loop keeps arriving even when the system is saturated — unlike the
  // closed loop, offered load is independent of response times.
  sim::Engine engine;
  ntier::Topology topology{engine, ntier::paper_topology()};
  trace::TraceSink sink{topology.total_servers()};
  ntier::TxnDriver driver{engine, topology, rubbos_browse_mix(),
                          sink,   Rng{7},   ntier::TxnDriver::Config{}};
  std::vector<double> weights;
  for (const auto& c : rubbos_browse_mix()) weights.push_back(c.weight);
  Rng rng{8};
  // 3000 pages/s >> the ~1500/s capacity.
  auto schedule = poisson_schedule(3000.0, 5_s, weights, rng);
  const auto offered = schedule.size();
  ArrivalReplay replay{engine, driver, std::move(schedule), nullptr};
  replay.start();
  engine.run_until(TimePoint::origin() + 5_s);
  EXPECT_EQ(replay.pages_started(), offered);      // arrivals undeterred
  EXPECT_LT(replay.pages_completed(), offered);    // system cannot keep up
}

}  // namespace
}  // namespace tbd::workload
