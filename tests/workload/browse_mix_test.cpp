#include "workload/browse_mix.h"

#include <gtest/gtest.h>

namespace tbd::workload {
namespace {

TEST(BrowseMixTest, WeightsSumToOne) {
  const auto mix = rubbos_browse_mix();
  double total = 0.0;
  for (const auto& c : mix) total += c.weight;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(BrowseMixTest, EightClassesWithDistinctNames) {
  const auto mix = rubbos_browse_mix();
  ASSERT_EQ(mix.size(), 8u);
  for (std::size_t i = 0; i < mix.size(); ++i) {
    for (std::size_t j = i + 1; j < mix.size(); ++j) {
      EXPECT_NE(mix[i].name, mix[j].name);
    }
  }
}

TEST(BrowseMixTest, MixedQueryFanout) {
  const auto mix = rubbos_browse_mix();
  int min_q = 99;
  int max_q = 0;
  for (const auto& c : mix) {
    min_q = std::min(min_q, c.db_queries);
    max_q = std::max(max_q, c.db_queries);
  }
  EXPECT_EQ(min_q, 0);  // static content never touches the DB
  EXPECT_GE(max_q, 4);  // search fans out widely
  const double mean_q = mean_queries_per_page(mix);
  EXPECT_GT(mean_q, 2.0);
  EXPECT_LT(mean_q, 3.5);
}

TEST(BrowseMixTest, CalibratedDemandsMatchDesignTargets) {
  // DESIGN.md section 2: demands chosen so Table I utilizations emerge at
  // WL 8,000 on 1L/2S/1L/2S (DB sits at ~41% of full-clock capacity so the
  // demand-based governor parks it in P8 at ~78% busy). Guard the
  // calibration against accidental drift.
  const auto mix = rubbos_browse_mix();
  EXPECT_NEAR(mean_web_demand(mix), 522.0, 35.0);
  EXPECT_NEAR(mean_app_demand(mix), 1210.0, 80.0);
  EXPECT_NEAR(mean_db_demand_per_page(mix) / mean_queries_per_page(mix), 224.0,
              25.0);
  EXPECT_NEAR(mean_mw_demand_per_page(mix) / mean_queries_per_page(mix), 153.0,
              18.0);
}

TEST(ReadWriteMixTest, WeightsSumToOne) {
  const auto mix = rubbos_read_write_mix();
  double total = 0.0;
  for (const auto& c : mix) total += c.weight;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ReadWriteMixTest, WriteClassesCarryWriteQueries) {
  const auto mix = rubbos_read_write_mix();
  ASSERT_EQ(mix.size(), 12u);  // 8 browse + 4 update classes
  double write_weight = 0.0;
  for (const auto& c : mix) {
    if (c.db_write_queries > 0) {
      write_weight += c.weight;
      EXPECT_GT(c.db_write_demand_us, 0.0);
      EXPECT_GT(c.db_write_disk_us, 0.0);
    }
  }
  EXPECT_NEAR(write_weight, 0.15, 1e-9);
}

TEST(ReadWriteMixTest, BrowseMixHasNoWrites) {
  EXPECT_DOUBLE_EQ(mean_writes_per_page(rubbos_browse_mix()), 0.0);
  const double w = mean_writes_per_page(rubbos_read_write_mix());
  EXPECT_GT(w, 0.1);
  EXPECT_LT(w, 0.5);
}

TEST(BrowseMixTest, ServiceTimesDifferAcrossClasses) {
  // The work-unit normalization only matters because classes differ; make
  // sure the mix keeps a wide demand spread at the DB.
  const auto mix = rubbos_browse_mix();
  double min_db = 1e9;
  double max_db = 0.0;
  for (const auto& c : mix) {
    if (c.db_queries == 0) continue;
    min_db = std::min(min_db, c.db_demand_us);
    max_db = std::max(max_db, c.db_demand_us);
  }
  EXPECT_GT(max_db / min_db, 2.5);
}

}  // namespace
}  // namespace tbd::workload
