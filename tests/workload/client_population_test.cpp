#include "workload/client_population.h"

#include <gtest/gtest.h>

#include "trace/sink.h"
#include "workload/browse_mix.h"

namespace tbd::workload {
namespace {

using namespace tbd::literals;

struct World {
  sim::Engine engine;
  std::unique_ptr<ntier::Topology> topology;
  std::unique_ptr<trace::TraceSink> sink;
  std::unique_ptr<ntier::TxnDriver> driver;

  World() {
    topology = std::make_unique<ntier::Topology>(engine, ntier::paper_topology());
    sink = std::make_unique<trace::TraceSink>(topology->total_servers());
    driver = std::make_unique<ntier::TxnDriver>(
        engine, *topology, rubbos_browse_mix(), *sink, Rng{3},
        ntier::TxnDriver::Config{});
  }
};

TEST(ClientPopulationTest, ClosedLoopCompletesPages) {
  World w;
  ClientConfig cfg;
  cfg.num_clients = 100;
  cfg.mean_think = 1_s;  // fast loop for testing
  cfg.bursts_enabled = false;
  std::uint64_t pages = 0;
  ClientPopulation pop{w.engine, *w.driver, cfg, Rng{5},
                       [&pages](const auto&) { ++pages; }};
  pop.start();
  w.engine.run_until(TimePoint::origin() + 20_s);
  // X ~ N/Z = 100 pages/s over 20s ~ 2000 (first think consumes ~1s each).
  EXPECT_GT(pages, 1600u);
  EXPECT_LT(pages, 2400u);
  EXPECT_EQ(pop.pages_completed(), pages);
}

TEST(ClientPopulationTest, ThroughputScalesWithPopulation) {
  auto run = [](int n) {
    World w;
    ClientConfig cfg;
    cfg.num_clients = n;
    cfg.mean_think = 1_s;
    cfg.bursts_enabled = false;
    std::uint64_t pages = 0;
    ClientPopulation pop{w.engine, *w.driver, cfg, Rng{5},
                         [&pages](const auto&) { ++pages; }};
    pop.start();
    w.engine.run_until(TimePoint::origin() + 10_s);
    return pages;
  };
  const auto x100 = run(100);
  const auto x200 = run(200);
  EXPECT_NEAR(static_cast<double>(x200) / static_cast<double>(x100), 2.0, 0.2);
}

TEST(ClientPopulationTest, BurstsFireAtConfiguredRate) {
  World w;
  ClientConfig cfg;
  cfg.num_clients = 200;
  cfg.mean_think = 5_s;
  cfg.bursts_enabled = true;
  cfg.mean_burst_gap = 500_ms;
  ClientPopulation pop{w.engine, *w.driver, cfg, Rng{5}, nullptr};
  pop.start();
  w.engine.run_until(TimePoint::origin() + 30_s);
  // ~60 bursts expected over 30s at a 500ms mean gap (sd ~ 8).
  EXPECT_GT(pop.bursts_fired(), 35u);
  EXPECT_LT(pop.bursts_fired(), 90u);
}

TEST(ClientPopulationTest, BurstsCreateArrivalSpikes) {
  // Compare the max pages completed in any 100ms window with/without bursts.
  auto max_window = [](bool bursts) {
    World w;
    ClientConfig cfg;
    cfg.num_clients = 2000;
    cfg.mean_think = 5_s;
    cfg.bursts_enabled = bursts;
    cfg.burst_fraction = 0.05;
    cfg.mean_burst_gap = 1_s;
    std::vector<int> windows(400, 0);
    ClientPopulation pop{w.engine, *w.driver, cfg, Rng{5},
                         [&](const ntier::TxnDriver::PageResult& r) {
                           const auto idx = static_cast<std::size_t>(
                               (r.started + r.response_time).micros() / 100'000);
                           if (idx < windows.size()) ++windows[idx];
                         }};
    pop.start();
    w.engine.run_until(TimePoint::origin() + 40_s);
    int best = 0;
    for (int v : windows) best = std::max(best, v);
    return best;
  };
  EXPECT_GT(max_window(true), max_window(false) * 2);
}

TEST(ClientPopulationTest, DeterministicGivenSeed) {
  auto run = [] {
    World w;
    ClientConfig cfg;
    cfg.num_clients = 50;
    cfg.mean_think = 1_s;
    std::uint64_t pages = 0;
    ClientPopulation pop{w.engine, *w.driver, cfg, Rng{11},
                         [&pages](const auto&) { ++pages; }};
    pop.start();
    w.engine.run_until(TimePoint::origin() + 10_s);
    return pages;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace tbd::workload
