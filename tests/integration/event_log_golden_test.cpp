// Golden-file test pinning the live-telemetry event log on the checked-in
// tier-1 smoke log, plus the load-bearing equivalence behind it: the
// streaming detector's episode stream must equal batch detect_bottlenecks
// on the same calibration, bit for bit. The NDJSON is fully deterministic
// (fixed grid, %.17g doubles, monotonic seq, single replay thread), so any
// byte drift is a schema change — regenerate with:
//
//   ./build/tools/tbd_watch --width 50 --nstar 3 --speed max
//     --events-out scripts/testdata/tiny_log_events.golden.ndjson
//     scripts/testdata/tiny_log.csv        (one command line)
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/detector.h"
#include "core/streaming_detector.h"
#include "core/streaming_telemetry.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "trace/log_io.h"

namespace tbd {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in{path};
  EXPECT_TRUE(in) << "cannot open " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

constexpr const char* kTestData = TBD_SOURCE_DIR "/scripts/testdata/";
constexpr double kNStarOverride = 3.0;  // same knobs as the tier-1 smoke

struct WatchRun {
  std::string events;                        // full NDJSON, meta included
  std::vector<std::vector<core::Episode>> streaming_episodes;  // per server
  std::vector<std::vector<core::Episode>> batch_episodes;
};

// The tbd_watch pipeline, in-process: merge, departure-order replay, one
// calibrated StreamingDetector + StreamingTelemetry per server, shared
// EventLog. Mirrors tools/tbd_watch.cpp so the golden pins the tool too.
WatchRun run_watch() {
  const auto loaded =
      trace::load_request_log(std::string(kTestData) + "tiny_log.csv");
  EXPECT_TRUE(loaded.ok);
  EXPECT_EQ(loaded.records.size(), 72u);

  std::map<trace::ServerIndex, trace::RequestLog> by_server;
  trace::RequestLog merged = loaded.records;
  TimePoint t_min = TimePoint::max();
  TimePoint t_max;
  for (const auto& r : merged) {
    by_server[r.server].push_back(r);
    t_min = std::min(t_min, r.arrival);
    t_max = std::max(t_max, r.departure);
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const trace::RequestRecord& a,
                      const trace::RequestRecord& b) {
                     return a.departure < b.departure;
                   });

  WatchRun run;
  std::ostringstream out;
  obs::EventLog events{&out,
                       obs::EventLog::Options(),
                       {{"tool", "tbd_watch"},
                        {"width_ms", "50"},
                        {"lag_ms", "5000"},
                        {"speed", "max"}}};
  obs::Registry registry;

  const Duration width = Duration::millis(50);
  const auto spec = core::IntervalSpec::over(t_min, t_max, width);
  struct Stream {
    std::unique_ptr<core::StreamingDetector> detector;
    std::unique_ptr<core::StreamingTelemetry> telemetry;
  };
  std::map<trace::ServerIndex, Stream> streams;
  for (const auto& [server, log] : by_server) {
    const auto table = core::estimate_service_times(log);
    auto detection = core::detect_bottlenecks(log, spec, table);
    detection.nstar.n_star = kNStarOverride;
    detection.nstar.converged = true;

    // Batch truth on the same calibration: reclassify against the frozen
    // N*/TPmax and re-extract episodes (the flight recorder's carry-over
    // convention).
    const auto states = core::classify_intervals(
        detection.load, detection.throughput, detection.nstar, {});
    run.batch_episodes.push_back(
        core::extract_episodes(states, detection.load, spec));

    Stream s;
    core::StreamingDetector::Config config;
    config.width = width;
    config.lag = Duration::millis(5000);
    s.detector = std::make_unique<core::StreamingDetector>(
        t_min, config, detection.nstar, table);
    s.telemetry = std::make_unique<core::StreamingTelemetry>(
        *s.detector,
        core::StreamingTelemetry::Options{"server" + std::to_string(server)},
        registry, &events);
    streams.emplace(server, std::move(s));
  }

  for (const auto& r : merged) streams.at(r.server).detector->push(r);
  for (auto& [server, s] : streams) {
    s.detector->finish();
    s.telemetry->sync();
    run.streaming_episodes.push_back(s.detector->episodes());
  }
  run.events = out.str();
  return run;
}

bool episodes_bitwise_equal(const std::vector<core::Episode>& a,
                            const std::vector<core::Episode>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].start.micros() != b[i].start.micros()) return false;
    if (a[i].duration.micros() != b[i].duration.micros()) return false;
    if (std::bit_cast<std::uint64_t>(a[i].peak_load) !=
        std::bit_cast<std::uint64_t>(b[i].peak_load)) {
      return false;
    }
    if (a[i].contains_freeze != b[i].contains_freeze) return false;
  }
  return true;
}

TEST(EventLogGoldenTest, EventLogMatchesGolden) {
  const std::string golden =
      slurp(std::string(kTestData) + "tiny_log_events.golden.ndjson");
  EXPECT_EQ(run_watch().events, golden);
}

TEST(EventLogGoldenTest, StreamingEpisodesEqualBatchBitwise) {
  const auto run = run_watch();
  ASSERT_EQ(run.streaming_episodes.size(), run.batch_episodes.size());
  std::size_t total = 0;
  for (std::size_t s = 0; s < run.streaming_episodes.size(); ++s) {
    EXPECT_TRUE(episodes_bitwise_equal(run.streaming_episodes[s],
                                       run.batch_episodes[s]))
        << "server " << s;
    total += run.streaming_episodes[s].size();
  }
  EXPECT_GE(total, 1u);  // the tiny log's burst must register
}

TEST(EventLogGoldenTest, EpisodeCloseEventsMatchBatchEpisodes) {
  // Every batch episode appears as an episode_close line with the same
  // microsecond fields — the acceptance criterion's byte-level contract.
  const auto run = run_watch();
  for (std::size_t s = 0; s < run.batch_episodes.size(); ++s) {
    for (const auto& e : run.batch_episodes[s]) {
      char expect[256];
      std::snprintf(expect, sizeof expect,
                    "\"stream\":\"server%zu\",\"start_us\":%lld,"
                    "\"duration_us\":%lld",
                    s, static_cast<long long>(e.start.micros()),
                    static_cast<long long>(e.duration.micros()));
      EXPECT_NE(run.events.find(expect), std::string::npos) << expect;
    }
  }
}

}  // namespace
}  // namespace tbd
