// End-to-end smoke: run a small experiment through the full stack and check
// the basic physics (throughput ~ N/Z at low load, utilizations ordered as
// calibrated, traces well-formed).
#include <gtest/gtest.h>

#include "app/experiment.h"
#include "core/detector.h"

namespace tbd {
namespace {

using namespace tbd::literals;

app::ExperimentConfig small_config() {
  app::ExperimentConfig cfg;
  cfg.workload = 500;
  cfg.warmup = 5_s;
  cfg.duration = 20_s;
  cfg.seed = 7;
  return cfg;
}

TEST(SmokeTest, LowLoadThroughputMatchesLittlesLaw) {
  auto cfg = small_config();
  cfg.clients.bursts_enabled = false;  // plain closed loop: X = N/(Z+R)
  const auto result = app::run_experiment(cfg);
  const double expected = 500.0 / 7.05;  // R is a few ms, Z = 7 s
  EXPECT_NEAR(result.goodput(), expected, expected * 0.08);
  EXPECT_LT(result.mean_rt_s(), 0.1);
  EXPECT_EQ(result.retransmissions, 0u);
}

TEST(SmokeTest, BurstsRaiseEffectiveRequestRate) {
  // Waking thinking clients early cuts their (memoryless) residual think
  // time, so burst-modulated traffic completes more pages.
  auto quiet = small_config();
  quiet.workload = 2000;  // enough pages that the effect dominates noise
  quiet.clients.bursts_enabled = false;
  auto bursty = quiet;
  bursty.clients.bursts_enabled = true;
  const double x_quiet = app::run_experiment(quiet).goodput();
  const double x_bursty = app::run_experiment(bursty).goodput();
  EXPECT_GT(x_bursty, x_quiet * 1.05);
}

TEST(SmokeTest, TraceLogsAreWellFormed) {
  const auto result = app::run_experiment(small_config());
  ASSERT_EQ(result.servers.size(), 6u);  // 1 web + 2 app + 1 mw + 2 db
  for (const auto& log : result.logs) {
    EXPECT_FALSE(log.empty());
    for (const auto& r : log) {
      EXPECT_GE(r.departure.micros(), r.arrival.micros());
      EXPECT_GT(r.txn, 0u);
    }
  }
}

TEST(SmokeTest, UtilizationOrderingMatchesCalibration) {
  auto cfg = small_config();
  cfg.workload = 2000;
  const auto result = app::run_experiment(cfg);
  const int web = result.server_index_of(ntier::TierKind::kWeb, 0);
  const int app0 = result.server_index_of(ntier::TierKind::kApp, 0);
  const int mw = result.server_index_of(ntier::TierKind::kMw, 0);
  const int db0 = result.server_index_of(ntier::TierKind::kDb, 0);
  // App tier is the hot tier; mw the coolest of the busy ones.
  EXPECT_GT(result.mean_util(app0), result.mean_util(web));
  EXPECT_GT(result.mean_util(app0), result.mean_util(mw));
  EXPECT_GT(result.mean_util(app0), result.mean_util(db0));
  EXPECT_GT(result.mean_util(db0), 0.0);
}

TEST(SmokeTest, DeterministicAcrossRuns) {
  const auto a = app::run_experiment(small_config());
  const auto b = app::run_experiment(small_config());
  EXPECT_EQ(a.pages_completed, b.pages_completed);
  EXPECT_EQ(a.engine_events, b.engine_events);
  ASSERT_EQ(a.pages.size(), b.pages.size());
  for (std::size_t i = 0; i < a.pages.size(); ++i) {
    EXPECT_EQ(a.pages[i].completed.micros(), b.pages[i].completed.micros());
    EXPECT_EQ(a.pages[i].response_time.micros(), b.pages[i].response_time.micros());
  }
}

TEST(SmokeTest, DetectionPipelineRunsOnTraces) {
  auto cfg = small_config();
  const auto tables = app::calibrate_service_times(cfg);
  const auto result = app::run_experiment(cfg);
  const int db0 = result.server_index_of(ntier::TierKind::kDb, 0);
  const auto spec = core::IntervalSpec::over(result.window_start,
                                             result.window_end, 50_ms);
  const auto detection = core::detect_bottlenecks(
      result.logs[static_cast<std::size_t>(db0)], spec,
      tables[static_cast<std::size_t>(db0)]);
  EXPECT_EQ(detection.states.size(), spec.count);
  EXPECT_GT(detection.nstar.tp_max, 0.0);
}

}  // namespace
}  // namespace tbd
