// Golden-file test pinning the flight-recorder artifacts on the checked-in
// tier-1 smoke log. The timeline JSON and attribution NDJSON are fully
// deterministic (no wall clock, fixed-precision formatting, slot-indexed
// fan-out), so any byte drift here is a schema change — regenerate with:
//
//   ./build/tools/tbd_timeline --width 50 --nstar 3 \
//     --timeline-out scripts/testdata/tiny_log_timeline.golden.json \
//     --attribution-out scripts/testdata/tiny_log_attribution.golden.ndjson \
//     scripts/testdata/tiny_log.csv
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "app/flight_recorder.h"
#include "core/attribution.h"
#include "trace/log_io.h"

namespace tbd {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in{path};
  EXPECT_TRUE(in) << "cannot open " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

class FlightRecorderGoldenTest : public ::testing::Test {
 protected:
  static constexpr const char* kTestData = TBD_SOURCE_DIR "/scripts/testdata/";

  app::FlightRecord record() {
    const auto loaded =
        trace::load_request_log_csv(std::string(kTestData) + "tiny_log.csv");
    EXPECT_TRUE(loaded.ok);
    EXPECT_EQ(loaded.records.size(), 72u);
    app::FlightConfig config;  // same knobs as the tier-1 smoke
    config.width = Duration::millis(50);
    config.nstar_override = 3.0;
    ThreadPool pool{2};
    return app::flight_record(loaded.records, config, pool);
  }
};

TEST_F(FlightRecorderGoldenTest, TimelineMatchesGolden) {
  const std::string golden =
      slurp(std::string(kTestData) + "tiny_log_timeline.golden.json");
  EXPECT_EQ(app::timeline_json(record()), golden);
}

TEST_F(FlightRecorderGoldenTest, AttributionMatchesGolden) {
  const std::string golden =
      slurp(std::string(kTestData) + "tiny_log_attribution.golden.ndjson");
  EXPECT_EQ(core::attribution_ndjson(record().attribution), golden);
}

}  // namespace
}  // namespace tbd
