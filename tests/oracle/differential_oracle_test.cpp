// Differential tests: the optimized analysis pipeline against the naive
// oracles (testing/oracles.h), BIT-FOR-BIT, across thousands of seeded
// generated cases (testing/generators.h).
//
// "Bit-for-bit" is literal: doubles are compared as their u64 bit patterns,
// so even a -0.0 vs +0.0 divergence or a reassociated sum fails. The same
// binary is registered twice in ctest — TBD_THREADS=1 and TBD_THREADS=4 —
// because the optimized side shards work across the pool and its results
// must not depend on the thread count.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "core/attribution.h"
#include "core/congestion_point.h"
#include "core/detector.h"
#include "core/fused_sweep.h"
#include "core/load_calculator.h"
#include "core/throughput_calculator.h"
#include "testing/generators.h"
#include "testing/oracles.h"
#include "trace/log_io.h"
#include "trace/request_columns.h"
#include "trace/request_log_file.h"
#include "trace/segment_log.h"
#include "trace/txn_tree.h"
#include "util/rng.h"

namespace tbd {
namespace {

/// The number of generated cases per oracle. Each case is a fresh random
/// log/config; the acceptance bar for this harness is >= 1000 per oracle.
constexpr std::uint64_t kCases = 1000;

::testing::AssertionResult bits_equal(double a, double b) {
  if (std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b)) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << a << " != " << b << " (bits 0x" << std::hex
         << std::bit_cast<std::uint64_t>(a) << " vs 0x"
         << std::bit_cast<std::uint64_t>(b) << ")";
}

::testing::AssertionResult series_equal(std::span<const double> a,
                                        std::span<const double> b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << "size " << a.size() << " vs " << b.size();
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto r = bits_equal(a[i], b[i]);
    if (!r) return ::testing::AssertionFailure() << "[" << i << "] " << r.message();
  }
  return ::testing::AssertionSuccess();
}

/// Per-seed variation of the log shape so the case set spans grid widths,
/// server counts, negative origins, and burst-heavy vs sparse logs.
pt::LogGenConfig log_config_for(Rng& rng) {
  pt::LogGenConfig config;
  config.max_records = 20 + rng.uniform_index(180);
  config.origin_us = rng.bernoulli(0.2) ? -1'000'000 : 0;
  config.width_us = std::int64_t{10'000} << rng.uniform_index(4);  // 10..80ms
  config.horizon_us = config.width_us * (10 + rng.uniform_index(40));
  config.servers = 1;
  config.classes = 1 + static_cast<std::uint32_t>(rng.uniform_index(8));
  return config;
}

TEST(DifferentialOracle, LoadBitExact) {
  for (std::uint64_t seed = 0; seed < kCases; ++seed) {
    Rng rng{seed};
    const auto config = log_config_for(rng);
    const auto spec = pt::grid_for(config);
    const auto log = pt::generate_request_log(rng, config);
    EXPECT_TRUE(series_equal(core::compute_load(log, spec),
                             pt::oracle_load(log, spec)))
        << "seed " << seed;
  }
}

TEST(DifferentialOracle, ThroughputBitExact) {
  for (std::uint64_t seed = 0; seed < kCases; ++seed) {
    Rng rng{seed + 1'000'000};
    const auto config = log_config_for(rng);
    const auto spec = pt::grid_for(config);
    const auto log = pt::generate_request_log(rng, config);
    const auto table = pt::generate_service_table(rng, config.classes);
    const auto options = pt::generate_throughput_options(rng);
    EXPECT_TRUE(
        series_equal(core::compute_throughput(log, spec, table, options),
                     pt::oracle_throughput(log, spec, table, options)))
        << "seed " << seed;
  }
}

TEST(DifferentialOracle, FusedSweepBitExact) {
  for (std::uint64_t seed = 0; seed < kCases; ++seed) {
    Rng rng{seed + 2'000'000};
    const auto config = log_config_for(rng);
    const auto spec = pt::grid_for(config);
    const auto log = pt::generate_request_log(rng, config);
    const auto table = pt::generate_service_table(rng, config.classes);
    const auto options = pt::generate_throughput_options(rng);
    const auto fused = core::compute_load_throughput(log, spec, table, options);
    EXPECT_TRUE(series_equal(fused.load, pt::oracle_load(log, spec)))
        << "seed " << seed;
    EXPECT_TRUE(series_equal(fused.throughput,
                             pt::oracle_throughput(log, spec, table, options)))
        << "seed " << seed;
  }
}

void expect_nstar_equal(const core::NStarResult& a, const core::NStarResult& b,
                        std::uint64_t seed) {
  EXPECT_TRUE(bits_equal(a.n_star, b.n_star)) << "seed " << seed;
  EXPECT_TRUE(bits_equal(a.tp_max, b.tp_max)) << "seed " << seed;
  EXPECT_EQ(a.converged, b.converged) << "seed " << seed;
  ASSERT_EQ(a.bins.size(), b.bins.size()) << "seed " << seed;
  for (std::size_t i = 0; i < a.bins.size(); ++i) {
    EXPECT_TRUE(bits_equal(a.bins[i].load, b.bins[i].load)) << "seed " << seed;
    EXPECT_TRUE(bits_equal(a.bins[i].mean_tput, b.bins[i].mean_tput))
        << "seed " << seed;
    EXPECT_EQ(a.bins[i].samples, b.bins[i].samples) << "seed " << seed;
  }
  EXPECT_TRUE(series_equal(a.slopes, b.slopes)) << "seed " << seed;
}

TEST(DifferentialOracle, CongestionPointBitExact) {
  for (std::uint64_t seed = 0; seed < kCases; ++seed) {
    Rng rng{seed + 3'000'000};
    const auto config = log_config_for(rng);
    const auto spec = pt::grid_for(config);
    const auto log = pt::generate_request_log(rng, config);
    const auto table = pt::generate_service_table(rng, config.classes);
    const auto series = core::compute_load_throughput(log, spec, table);
    core::NStarConfig nstar;
    nstar.bins = 4 + static_cast<int>(rng.uniform_index(120));
    nstar.min_samples_per_bin = 1 + static_cast<int>(rng.uniform_index(6));
    expect_nstar_equal(
        core::estimate_congestion_point(series.load, series.throughput, nstar),
        pt::oracle_congestion_point(series.load, series.throughput, nstar),
        seed);
  }
}

void expect_episodes_equal(std::span<const core::Episode> a,
                           std::span<const core::Episode> b,
                           std::uint64_t seed) {
  ASSERT_EQ(a.size(), b.size()) << "seed " << seed;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].start.micros(), b[i].start.micros()) << "seed " << seed;
    EXPECT_EQ(a[i].duration.micros(), b[i].duration.micros()) << "seed " << seed;
    EXPECT_TRUE(bits_equal(a[i].peak_load, b[i].peak_load)) << "seed " << seed;
    EXPECT_EQ(a[i].contains_freeze, b[i].contains_freeze) << "seed " << seed;
  }
}

TEST(DifferentialOracle, ClassifyAndEpisodesBitExact) {
  for (std::uint64_t seed = 0; seed < kCases; ++seed) {
    Rng rng{seed + 4'000'000};
    const auto config = log_config_for(rng);
    const auto spec = pt::grid_for(config);
    const auto log = pt::generate_request_log(rng, config);
    const auto table = pt::generate_service_table(rng, config.classes);
    const auto series = core::compute_load_throughput(log, spec, table);
    const auto nstar =
        core::estimate_congestion_point(series.load, series.throughput);
    const auto states =
        core::classify_intervals(series.load, series.throughput, nstar);
    const auto oracle_states =
        pt::oracle_classify(series.load, series.throughput, nstar);
    ASSERT_EQ(states, oracle_states) << "seed " << seed;
    expect_episodes_equal(core::extract_episodes(states, series.load, spec),
                          pt::oracle_episodes(states, series.load, spec),
                          seed);
  }
}

void expect_detection_equal(const core::DetectionResult& a,
                            const core::DetectionResult& b,
                            std::uint64_t seed) {
  EXPECT_EQ(a.spec.start.micros(), b.spec.start.micros()) << "seed " << seed;
  EXPECT_EQ(a.spec.width.micros(), b.spec.width.micros()) << "seed " << seed;
  EXPECT_EQ(a.spec.count, b.spec.count) << "seed " << seed;
  EXPECT_TRUE(series_equal(a.load, b.load)) << "seed " << seed;
  EXPECT_TRUE(series_equal(a.throughput, b.throughput)) << "seed " << seed;
  expect_nstar_equal(a.nstar, b.nstar, seed);
  EXPECT_EQ(a.states, b.states) << "seed " << seed;
  expect_episodes_equal(a.episodes, b.episodes, seed);
}

TEST(DifferentialOracle, DetectBottlenecksBitExact) {
  for (std::uint64_t seed = 0; seed < kCases; ++seed) {
    Rng rng{seed + 5'000'000};
    const auto config = log_config_for(rng);
    const auto spec = pt::grid_for(config);
    const auto log = pt::generate_request_log(rng, config);
    const auto table = pt::generate_service_table(rng, config.classes);
    expect_detection_equal(core::detect_bottlenecks(log, spec, table),
                           pt::oracle_detect(log, spec, table), seed);
  }
}

TEST(DifferentialOracle, AttributionBitExact) {
  for (std::uint64_t seed = 0; seed < kCases; ++seed) {
    Rng rng{seed + 6'000'000};
    pt::TxnGenConfig config;
    config.max_txns = 3 + rng.uniform_index(12);
    config.servers = 2 + static_cast<std::uint32_t>(rng.uniform_index(3));
    const auto log = pt::generate_txn_log(rng, config);
    const auto assembly = trace::assemble_transactions(log);
    const auto profiles = trace::build_profiles(log);

    // One detection per server over a shared grid, as the flight recorder
    // builds them.
    const auto spec = core::IntervalSpec::over(
        TimePoint::from_micros(config.origin_us),
        TimePoint::from_micros(config.origin_us + config.horizon_us),
        Duration::millis(20));
    const auto table = pt::generate_service_table(rng, 8);
    std::vector<trace::ServerIndex> servers;
    std::vector<core::DetectionResult> detections;
    for (std::uint32_t s = 0; s < config.servers; ++s) {
      trace::RequestLog mine;
      for (const auto& r : log) {
        if (r.server == s) mine.push_back(r);
      }
      servers.push_back(s);
      detections.push_back(core::detect_bottlenecks(mine, spec, table));
    }

    const auto got = core::attribute_latency(assembly.txns, servers,
                                             detections, profiles);
    const auto want =
        pt::oracle_attribution(assembly.txns, servers, detections, log);

    EXPECT_EQ(got.txns, want.txns) << "seed " << seed;
    EXPECT_TRUE(series_equal(got.band_quantiles, want.band_quantiles))
        << "seed " << seed;
    EXPECT_TRUE(series_equal(got.cutoffs_us, want.cutoffs_us))
        << "seed " << seed;
    ASSERT_EQ(got.bands.size(), want.bands.size()) << "seed " << seed;
    for (std::size_t b = 0; b < got.bands.size(); ++b) {
      const auto& gb = got.bands[b];
      const auto& wb = want.bands[b];
      EXPECT_EQ(gb.band, wb.band) << "seed " << seed;
      EXPECT_TRUE(bits_equal(gb.cutoff_us, wb.cutoff_us)) << "seed " << seed;
      EXPECT_EQ(gb.txns, wb.txns) << "seed " << seed;
      EXPECT_TRUE(bits_equal(gb.latency_us, wb.latency_us)) << "seed " << seed;
      ASSERT_EQ(gb.servers.size(), wb.servers.size()) << "seed " << seed;
      for (std::size_t s = 0; s < gb.servers.size(); ++s) {
        EXPECT_EQ(gb.servers[s].server, wb.servers[s].server) << "seed " << seed;
        EXPECT_TRUE(bits_equal(gb.servers[s].queue_in_us,
                               wb.servers[s].queue_in_us))
            << "seed " << seed;
        EXPECT_TRUE(bits_equal(gb.servers[s].queue_out_us,
                               wb.servers[s].queue_out_us))
            << "seed " << seed;
        EXPECT_TRUE(bits_equal(gb.servers[s].service_in_us,
                               wb.servers[s].service_in_us))
            << "seed " << seed;
        EXPECT_TRUE(bits_equal(gb.servers[s].service_out_us,
                               wb.servers[s].service_out_us))
            << "seed " << seed;
      }
    }
  }
}

void expect_parse_equal(const trace::LogIoResult& a, const trace::LogIoResult& b,
                        std::uint64_t seed) {
  EXPECT_EQ(a.ok, b.ok) << "seed " << seed;
  ASSERT_EQ(a.records.size(), b.records.size()) << "seed " << seed;
  if (!a.records.empty()) {
    EXPECT_EQ(std::memcmp(a.records.data(), b.records.data(),
                          a.records.size() * sizeof(trace::RequestRecord)),
              0)
        << "seed " << seed;
  }
  EXPECT_EQ(a.skipped_lines, b.skipped_lines) << "seed " << seed;
  EXPECT_EQ(a.first_bad_line, b.first_bad_line) << "seed " << seed;
  EXPECT_EQ(a.first_bad_text, b.first_bad_text) << "seed " << seed;
}

TEST(DifferentialOracle, CsvParserBitExact) {
  for (std::uint64_t seed = 0; seed < kCases; ++seed) {
    Rng rng{seed + 7'000'000};
    const auto text = pt::generate_csv_text(rng);
    const auto want = pt::oracle_parse_csv(text);
    expect_parse_equal(trace::parse_request_log_csv(text, 1), want, seed);
    const int shards = 2 + static_cast<int>(rng.uniform_index(7));
    expect_parse_equal(trace::parse_request_log_csv(text, shards), want, seed);
  }
}

TEST(DifferentialOracle, TbdrDecodeBitExact) {
  for (std::uint64_t seed = 0; seed < kCases; ++seed) {
    Rng rng{seed + 8'000'000};
    const auto config = log_config_for(rng);
    const auto log = pt::generate_request_log(rng, config);
    std::string bytes = trace::encode_request_log_bin(log);
    // Half the cases are corrupted: truncate, flip a byte, or append junk,
    // hitting every header-validation branch and the diagnostics fields.
    if (rng.bernoulli(0.5) && !bytes.empty()) {
      switch (rng.uniform_index(3)) {
        case 0:
          bytes.resize(rng.uniform_index(bytes.size()));
          break;
        case 1:
          bytes[rng.uniform_index(bytes.size())] ^=
              static_cast<char>(1 + rng.uniform_index(255));
          break;
        default:
          bytes.append("extra");
          break;
      }
    }
    const auto got = trace::decode_request_log_bin(bytes);
    const auto want = pt::oracle_decode_request_log_bin(bytes);
    EXPECT_EQ(got.ok, want.ok) << "seed " << seed;
    EXPECT_EQ(got.error, want.error) << "seed " << seed;
    EXPECT_EQ(got.error_offset, want.error_offset) << "seed " << seed;
    EXPECT_EQ(got.error_record, want.error_record) << "seed " << seed;
    EXPECT_EQ(got.header_count, want.header_count) << "seed " << seed;
    EXPECT_EQ(got.input_size, want.input_size) << "seed " << seed;
    ASSERT_EQ(got.records.size(), want.records.size()) << "seed " << seed;
    if (!got.records.empty()) {
      EXPECT_EQ(std::memcmp(got.records.data(), want.records.data(),
                            got.records.size() * sizeof(trace::RequestRecord)),
                0)
          << "seed " << seed;
    }
  }
}

// ---- columnar (SoA) layout --------------------------------------------------
// Same oracles, same generators; the pipeline input is RequestColumns. Every
// SoA entry point must match the naive AoS oracle bit-for-bit, and the
// AoS<->SoA converters must round-trip losslessly.

TEST(DifferentialOracle, ColumnsRoundTripBitExact) {
  for (std::uint64_t seed = 0; seed < kCases; ++seed) {
    Rng rng{seed + 9'000'000};
    const auto config = log_config_for(rng);
    const auto log = pt::generate_request_log(rng, config);
    const auto columns = trace::RequestColumns::from_records(log);
    ASSERT_EQ(columns.size(), log.size()) << "seed " << seed;
    const auto back = columns.to_records();
    ASSERT_EQ(back.size(), log.size()) << "seed " << seed;
    if (!log.empty()) {
      EXPECT_EQ(std::memcmp(back.data(), log.data(),
                            log.size() * sizeof(trace::RequestRecord)),
                0)
          << "seed " << seed;
    }
    // view()/record() agree with the owning container row-for-row.
    const auto view = columns.view();
    ASSERT_EQ(view.size(), log.size()) << "seed " << seed;
    for (std::size_t i = 0; i < log.size(); ++i) {
      EXPECT_EQ(view.arrival_us[i], log[i].arrival.micros()) << "seed " << seed;
      EXPECT_EQ(view.departure_us[i], log[i].departure.micros())
          << "seed " << seed;
      EXPECT_EQ(view.server[i], log[i].server) << "seed " << seed;
      EXPECT_EQ(view.class_id[i], log[i].class_id) << "seed " << seed;
      EXPECT_EQ(view.txn[i], log[i].txn) << "seed " << seed;
    }
  }
}

TEST(DifferentialOracle, LoadColumnsBitExact) {
  for (std::uint64_t seed = 0; seed < kCases; ++seed) {
    Rng rng{seed + 10'000'000};
    const auto config = log_config_for(rng);
    const auto spec = pt::grid_for(config);
    const auto log = pt::generate_request_log(rng, config);
    const auto columns = trace::RequestColumns::from_records(log);
    EXPECT_TRUE(series_equal(core::compute_load(columns.view(), spec),
                             pt::oracle_load(log, spec)))
        << "seed " << seed;
  }
}

TEST(DifferentialOracle, ThroughputColumnsBitExact) {
  for (std::uint64_t seed = 0; seed < kCases; ++seed) {
    Rng rng{seed + 11'000'000};
    const auto config = log_config_for(rng);
    const auto spec = pt::grid_for(config);
    const auto log = pt::generate_request_log(rng, config);
    const auto columns = trace::RequestColumns::from_records(log);
    const auto table = pt::generate_service_table(rng, config.classes);
    const auto options = pt::generate_throughput_options(rng);
    EXPECT_TRUE(series_equal(
        core::compute_throughput(columns.view(), spec, table, options),
        pt::oracle_throughput(log, spec, table, options)))
        << "seed " << seed;
  }
}

TEST(DifferentialOracle, FusedSweepColumnsBitExact) {
  for (std::uint64_t seed = 0; seed < kCases; ++seed) {
    Rng rng{seed + 12'000'000};
    const auto config = log_config_for(rng);
    const auto spec = pt::grid_for(config);
    const auto log = pt::generate_request_log(rng, config);
    const auto columns = trace::RequestColumns::from_records(log);
    const auto table = pt::generate_service_table(rng, config.classes);
    const auto options = pt::generate_throughput_options(rng);
    const auto fused =
        core::compute_load_throughput(columns.view(), spec, table, options);
    EXPECT_TRUE(series_equal(fused.load, pt::oracle_load(log, spec)))
        << "seed " << seed;
    EXPECT_TRUE(series_equal(fused.throughput,
                             pt::oracle_throughput(log, spec, table, options)))
        << "seed " << seed;
    // Convert -> sweep must equal sweeping the rows directly (the AoS<->SoA
    // round-trip property over the same adversarial generators).
    const auto aos = core::compute_load_throughput(log, spec, table, options);
    EXPECT_TRUE(series_equal(fused.load, aos.load)) << "seed " << seed;
    EXPECT_TRUE(series_equal(fused.throughput, aos.throughput))
        << "seed " << seed;
  }
}

TEST(DifferentialOracle, DetectBottlenecksColumnsBitExact) {
  for (std::uint64_t seed = 0; seed < kCases; ++seed) {
    Rng rng{seed + 13'000'000};
    const auto config = log_config_for(rng);
    const auto spec = pt::grid_for(config);
    const auto log = pt::generate_request_log(rng, config);
    const auto columns = trace::RequestColumns::from_records(log);
    const auto table = pt::generate_service_table(rng, config.classes);
    expect_detection_equal(core::detect_bottlenecks(columns.view(), spec, table),
                           pt::oracle_detect(log, spec, table), seed);
  }
}

TEST(DifferentialOracle, CsvParserColumnsBitExact) {
  for (std::uint64_t seed = 0; seed < kCases; ++seed) {
    Rng rng{seed + 14'000'000};
    const auto text = pt::generate_csv_text(rng);
    const auto want = pt::oracle_parse_csv(text);
    const int shards = 1 + static_cast<int>(rng.uniform_index(8));
    const auto got = trace::parse_request_log_csv_columns(text, shards);
    EXPECT_EQ(got.ok, want.ok) << "seed " << seed;
    EXPECT_EQ(got.skipped_lines, want.skipped_lines) << "seed " << seed;
    EXPECT_EQ(got.first_bad_line, want.first_bad_line) << "seed " << seed;
    EXPECT_EQ(got.first_bad_text, want.first_bad_text) << "seed " << seed;
    const auto rows = got.records.to_records();
    ASSERT_EQ(rows.size(), want.records.size()) << "seed " << seed;
    if (!rows.empty()) {
      EXPECT_EQ(std::memcmp(rows.data(), want.records.data(),
                            rows.size() * sizeof(trace::RequestRecord)),
                0)
          << "seed " << seed;
    }
  }
}

TEST(DifferentialOracle, TbdrDecodeColumnsBitExact) {
  for (std::uint64_t seed = 0; seed < kCases; ++seed) {
    Rng rng{seed + 15'000'000};
    const auto config = log_config_for(rng);
    const auto log = pt::generate_request_log(rng, config);
    std::string bytes = trace::encode_request_log_bin(log);
    // Same corruption mix as the row-decoder cases: the columnar decoder
    // validates through the identical header check and must report the
    // identical diagnostics.
    if (rng.bernoulli(0.5) && !bytes.empty()) {
      switch (rng.uniform_index(3)) {
        case 0:
          bytes.resize(rng.uniform_index(bytes.size()));
          break;
        case 1:
          bytes[rng.uniform_index(bytes.size())] ^=
              static_cast<char>(1 + rng.uniform_index(255));
          break;
        default:
          bytes.append("extra");
          break;
      }
    }
    const auto got = trace::decode_request_log_bin_columns(bytes);
    const auto want = pt::oracle_decode_request_log_bin(bytes);
    EXPECT_EQ(got.ok, want.ok) << "seed " << seed;
    EXPECT_EQ(got.error, want.error) << "seed " << seed;
    EXPECT_EQ(got.error_offset, want.error_offset) << "seed " << seed;
    EXPECT_EQ(got.error_record, want.error_record) << "seed " << seed;
    EXPECT_EQ(got.header_count, want.header_count) << "seed " << seed;
    EXPECT_EQ(got.input_size, want.input_size) << "seed " << seed;
    const auto rows = got.records.to_records();
    ASSERT_EQ(rows.size(), want.records.size()) << "seed " << seed;
    if (!rows.empty()) {
      EXPECT_EQ(std::memcmp(rows.data(), want.records.data(),
                            rows.size() * sizeof(trace::RequestRecord)),
                0)
          << "seed " << seed;
    }
  }
}

// ---- TBDR v2 (segmented, delta-compressed) ----------------------------------
// The parallel segment decoder against the sequential naive oracle: full
// result contract (records, ok, error/warning strings, error_offset,
// error_segment, segments, input_size) in BOTH decode modes, over valid and
// corrupted inputs. Segment capacity varies per case so single-segment,
// multi-segment, and exact-boundary files all occur.

void expect_v2_equal(const trace::SegmentLogReadResult& got,
                     const trace::SegmentLogReadResult& want,
                     std::uint64_t seed, const char* mode) {
  EXPECT_EQ(got.ok, want.ok) << "seed " << seed << " " << mode;
  EXPECT_EQ(got.error, want.error) << "seed " << seed << " " << mode;
  EXPECT_EQ(got.warning, want.warning) << "seed " << seed << " " << mode;
  EXPECT_EQ(got.error_offset, want.error_offset) << "seed " << seed << " "
                                                 << mode;
  EXPECT_EQ(got.error_segment, want.error_segment)
      << "seed " << seed << " " << mode;
  EXPECT_EQ(got.segments, want.segments) << "seed " << seed << " " << mode;
  EXPECT_EQ(got.input_size, want.input_size) << "seed " << seed << " " << mode;
  const auto rows = got.records.to_records();
  const auto want_rows = want.records.to_records();
  ASSERT_EQ(rows.size(), want_rows.size()) << "seed " << seed << " " << mode;
  if (!rows.empty()) {
    EXPECT_EQ(std::memcmp(rows.data(), want_rows.data(),
                          rows.size() * sizeof(trace::RequestRecord)),
              0)
        << "seed " << seed << " " << mode;
  }
}

TEST(DifferentialOracle, Tbdr2DecodeBitExact) {
  for (std::uint64_t seed = 0; seed < kCases; ++seed) {
    Rng rng{seed + 16'000'000};
    const auto config = log_config_for(rng);
    const auto log = pt::generate_request_log(rng, config);
    trace::SegmentLogOptions options;
    options.segment_records = 1 + rng.uniform_index(64);
    std::string bytes = trace::encode_request_log_v2(log, options);
    // Half the cases are corrupted: truncate (the crash-recovery shape),
    // flip a byte (CRC and structural-validation branches), or append junk
    // (trailing garbage after the last sealed segment).
    if (rng.bernoulli(0.5) && !bytes.empty()) {
      switch (rng.uniform_index(3)) {
        case 0:
          bytes.resize(rng.uniform_index(bytes.size()));
          break;
        case 1:
          bytes[rng.uniform_index(bytes.size())] ^=
              static_cast<char>(1 + rng.uniform_index(255));
          break;
        default:
          bytes.append("extra");
          break;
      }
    }
    expect_v2_equal(
        trace::decode_request_log_v2(bytes, trace::DecodeMode::kStrict),
        pt::oracle_decode_request_log_v2(bytes, trace::DecodeMode::kStrict),
        seed, "strict");
    expect_v2_equal(
        trace::decode_request_log_v2(bytes, trace::DecodeMode::kRecoverTail),
        pt::oracle_decode_request_log_v2(bytes,
                                         trace::DecodeMode::kRecoverTail),
        seed, "recover");
  }
}

}  // namespace
}  // namespace tbd
