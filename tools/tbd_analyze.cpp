// tbd_analyze: command-line transient-bottleneck analysis of request logs
// (the operator-facing entry point; no simulator involved).
//
// Usage:
//   tbd_analyze [options] LOG.csv [LOG2.tbdr ...]
//
// Each input holds per-server request records — CSV (trace/log_io.h:
// server,class,arrival_us,departure_us,txn) or the "TBDR" binary format
// (trace/request_log_file.h); the encoding is auto-detected per file, CSVs
// take the sharded zero-copy parse path. Records from multiple files are
// merged; analysis runs per server index found in the data.
//
// Options:
//   --layout L        record layout for the analysis core: "soa" (columnar,
//                     default — loaders decode straight into RequestColumns
//                     and every sweep streams columns) or "aos" (row
//                     records). Reports are byte-identical either way; the
//                     flag exists for the equivalence gate in
//                     scripts/tier1.sh and for benchmarking.
//   --width MS        analysis interval in milliseconds (default 50)
//   --auto-width      pick the interval length automatically (Sec III-D
//                     future work; overrides --width)
//   --calib-seconds S estimate per-class service times from the first S
//                     seconds of each server's records (default: whole log,
//                     masked at the 20th percentile)
//   --scatter         print the ASCII main-sequence scatter per server
//   --episodes N      print the N longest congestion episodes per server
//   --csv PREFIX      dump per-server load/throughput series to
//                     PREFIX_<server>.csv
//   --trace-out FILE  record pipeline spans and write Chrome trace_event
//                     JSON (open in chrome://tracing or ui.perfetto.dev)
//   --metrics-out FILE  write the run manifest: config, seed inputs, git
//                     describe, thread count, metrics snapshot, span rollup
//   --prom-out FILE   write the metrics snapshot as Prometheus text
//   --timeline-out FILE  run the transaction flight recorder and write the
//                     combined Perfetto timeline (per-server visit tracks,
//                     congestion-episode overlay, per-transaction flows)
//   --attribution-out FILE  write per-band critical-path attribution NDJSON
//   --nstar N         classify flight-recorder intervals against this
//                     congestion point instead of the per-server estimate
//   --profile-out FILE  sample the analysis (CPU mode) and write folded
//                     stacks (flamegraph-ready) to FILE at exit
//   --profile-hz N    sampling frequency for --profile-out (default 97)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "app/flight_recorder.h"
#include "core/attribution.h"
#include "core/detector.h"
#include "core/interval_selection.h"
#include "core/report.h"
#include "core/system_report.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/span.h"
#include "trace/log_io.h"
#include "util/csv.h"
#include "util/thread_pool.h"

using namespace tbd;

namespace {

struct Options {
  bool layout_soa = true;  // --layout soa|aos
  double width_ms = 50.0;
  bool auto_width = false;
  double calib_seconds = 0.0;  // 0 = whole log
  bool scatter = false;
  int episodes = 0;
  std::string csv_prefix;
  std::string trace_out;
  std::string metrics_out;
  std::string prom_out;
  std::string timeline_out;
  std::string attribution_out;
  double nstar = 0.0;  // 0 = per-server estimate
  std::string profile_out;
  int profile_hz = 97;
  std::vector<std::string> files;
};

void usage() {
  std::fprintf(stderr,
               "usage: tbd_analyze [--layout soa|aos] [--width MS] "
               "[--auto-width] [--calib-seconds S]\n"
               "                   [--scatter] [--episodes N] [--csv PREFIX]\n"
               "                   [--trace-out FILE] [--metrics-out FILE] "
               "[--prom-out FILE]\n"
               "                   [--timeline-out FILE] "
               "[--attribution-out FILE] [--nstar N]\n"
               "                   [--profile-out FILE] [--profile-hz N] "
               "LOG.csv [...]\n");
}

bool parse(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--layout") {
      const char* v = next();
      if (!v) return false;
      if (std::strcmp(v, "soa") == 0) {
        opt.layout_soa = true;
      } else if (std::strcmp(v, "aos") == 0) {
        opt.layout_soa = false;
      } else {
        std::fprintf(stderr, "unknown layout: %s\n", v);
        return false;
      }
    } else if (arg == "--width") {
      const char* v = next();
      if (!v) return false;
      opt.width_ms = std::atof(v);
    } else if (arg == "--auto-width") {
      opt.auto_width = true;
    } else if (arg == "--calib-seconds") {
      const char* v = next();
      if (!v) return false;
      opt.calib_seconds = std::atof(v);
    } else if (arg == "--scatter") {
      opt.scatter = true;
    } else if (arg == "--episodes") {
      const char* v = next();
      if (!v) return false;
      opt.episodes = std::atoi(v);
    } else if (arg == "--csv") {
      const char* v = next();
      if (!v) return false;
      opt.csv_prefix = v;
    } else if (arg == "--trace-out") {
      const char* v = next();
      if (!v) return false;
      opt.trace_out = v;
    } else if (arg == "--metrics-out") {
      const char* v = next();
      if (!v) return false;
      opt.metrics_out = v;
    } else if (arg == "--prom-out") {
      const char* v = next();
      if (!v) return false;
      opt.prom_out = v;
    } else if (arg == "--timeline-out") {
      const char* v = next();
      if (!v) return false;
      opt.timeline_out = v;
    } else if (arg == "--attribution-out") {
      const char* v = next();
      if (!v) return false;
      opt.attribution_out = v;
    } else if (arg == "--nstar") {
      const char* v = next();
      if (!v) return false;
      opt.nstar = std::atof(v);
    } else if (arg == "--profile-out") {
      const char* v = next();
      if (!v) return false;
      opt.profile_out = v;
    } else if (arg == "--profile-hz") {
      const char* v = next();
      if (!v) return false;
      opt.profile_hz = std::atoi(v);
    } else if (arg == "--help" || arg == "-h") {
      return false;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return false;
    } else {
      opt.files.push_back(arg);
    }
  }
  return !opt.files.empty() && opt.width_ms > 0.0;
}

struct ServerAnalysis {
  core::IntervalSpec spec;
  core::DetectionResult detection;
  std::string auto_width_note;
};

// ---- layout adapters --------------------------------------------------------
// The AoS and SoA pipelines differ only in how records are iterated and
// filtered; everything downstream of these helpers is shared, and the
// analysis entry points they feed are bit-identical across layouts
// (src/core/sweep_detail.h), so both --layout values print the same report.

void append_by_server(const trace::RequestLog& records,
                      std::map<trace::ServerIndex, trace::RequestLog>& by_server,
                      TimePoint& t_min, TimePoint& t_max) {
  for (const auto& r : records) {
    by_server[r.server].push_back(r);
    t_min = std::min(t_min, r.arrival);
    t_max = std::max(t_max, r.departure);
  }
}

void append_by_server(
    const trace::RequestColumns& columns,
    std::map<trace::ServerIndex, trace::RequestColumns>& by_server,
    TimePoint& t_min, TimePoint& t_max) {
  for (std::size_t i = 0; i < columns.size(); ++i) {
    const auto r = columns.record(i);
    by_server[r.server].push_back(r);
    t_min = std::min(t_min, r.arrival);
    t_max = std::max(t_max, r.departure);
  }
}

void append_merged(trace::RequestLog& merged, const trace::RequestLog& records) {
  merged.insert(merged.end(), records.begin(), records.end());
}

void append_merged(trace::RequestLog& merged,
                   const trace::RequestColumns& columns) {
  const auto rows = columns.to_records();
  merged.insert(merged.end(), rows.begin(), rows.end());
}

// Records departing before `cutoff`, in log order (the calibration prefix).
trace::RequestLog filter_calibration(const trace::RequestLog& log,
                                     TimePoint cutoff) {
  trace::RequestLog calib = log;
  calib.erase(std::remove_if(calib.begin(), calib.end(),
                             [&](const trace::RequestRecord& r) {
                               return r.departure >= cutoff;
                             }),
              calib.end());
  return calib;
}

trace::RequestColumns filter_calibration(const trace::RequestColumns& log,
                                         TimePoint cutoff) {
  trace::RequestColumns calib;
  for (std::size_t i = 0; i < log.size(); ++i) {
    if (log.departure_us[i] < cutoff.micros()) calib.push_back(log.record(i));
  }
  return calib;
}

// Per-server calibration + (optional) width selection + detection, fanned out
// across the pool. `Log` is trace::RequestLog or trace::RequestColumns; the
// core entry points take either via their span/view overloads.
template <typename Log>
std::vector<ServerAnalysis> analyze_servers(
    const std::vector<const Log*>& logs, const std::vector<std::string>& names,
    const Options& opt, TimePoint t_min, TimePoint t_max) {
  std::vector<ServerAnalysis> analyses(logs.size());
  shared_pool().parallel_for_indexed(logs.size(), [&](std::size_t s) {
    TBD_SPAN("analyze.server");
    const Log& log = *logs[s];
    // Service times from the calibration prefix (low quantile masks
    // queueing); an empty prefix falls back to the whole log.
    const Log* calib = &log;
    Log filtered;
    if (opt.calib_seconds > 0.0) {
      const TimePoint cutoff =
          t_min + Duration::from_seconds_f(opt.calib_seconds);
      filtered = filter_calibration(log, cutoff);
      if (!filtered.empty()) calib = &filtered;
    }
    core::ServiceTimeTable table;
    {
      TBD_SPAN("analyze.calibrate");
      table = core::estimate_service_times(*calib);
    }

    Duration width = Duration::from_millis_f(opt.width_ms);
    if (opt.auto_width) {
      TBD_SPAN("analyze.width_select");
      const std::vector<Duration> candidates{
          Duration::millis(20), Duration::millis(50), Duration::millis(100),
          Duration::millis(250), Duration::seconds(1)};
      const auto sel =
          core::choose_interval_length(log, t_min, t_max, table, candidates);
      width = sel.chosen;
      analyses[s].auto_width_note = names[s] + ": auto-selected interval " +
                                    width.to_string() + "\n";
    }

    analyses[s].spec = core::IntervalSpec::over(t_min, t_max, width);
    analyses[s].detection =
        core::detect_bottlenecks(log, analyses[s].spec, table);
  });
  return analyses;
}

// Load + split + analyze for one layout. Returns false on a fatal input
// error (the caller exits 1).
template <typename Log, typename LoadFn>
bool load_and_analyze(const Options& opt, bool flight, LoadFn load_fn,
                      trace::RequestLog& merged,
                      std::vector<std::string>& names,
                      std::vector<ServerAnalysis>& analyses,
                      obs::Registry& registry) {
  std::map<trace::ServerIndex, Log> by_server;
  TimePoint t_min = TimePoint::max();
  TimePoint t_max;
  {
    TBD_SPAN("analyze.load_logs");
    for (const auto& path : opt.files) {
      const auto loaded = load_fn(path);
      if (!loaded.ok) {
        std::fprintf(stderr, "error: cannot read %s: %s\n", path.c_str(),
                     loaded.error.c_str());
        return false;
      }
      if (!loaded.warning.empty()) {
        std::fprintf(stderr, "warning: %s: %s\n", path.c_str(),
                     loaded.warning.c_str());
      }
      if (loaded.first_bad_line != 0) {
        std::fprintf(stderr, "warning: %s:%zu: first malformed line: %s\n",
                     path.c_str(), loaded.first_bad_line,
                     loaded.first_bad_text.c_str());
      }
      std::printf("loaded %zu records from %s (%zu lines skipped)\n",
                  loaded.records.size(), path.c_str(), loaded.skipped_lines);
      registry.counter("tbd_analyze_records_total").add(loaded.records.size());
      registry.counter("tbd_analyze_skipped_lines_total")
          .add(loaded.skipped_lines);
      registry.counter("tbd_analyze_files_total").inc();
      append_by_server(loaded.records, by_server, t_min, t_max);
      if (flight) append_merged(merged, loaded.records);
    }
  }
  if (by_server.empty()) {
    std::fprintf(stderr, "error: no records\n");
    return false;
  }
  registry.gauge("tbd_analyze_servers")
      .set(static_cast<double>(by_server.size()));

  std::vector<const Log*> logs;
  for (const auto& [server, log] : by_server) {
    logs.push_back(&log);
    names.push_back("server" + std::to_string(server));
  }
  analyses = analyze_servers(logs, names, opt, t_min, t_max);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse(argc, argv, opt)) {
    usage();
    return 2;
  }
  if (!opt.trace_out.empty()) obs::Tracer::global().enable();
  auto& registry = obs::Registry::global();

  // The analysis is CPU-bound end to end, so CPU mode is the right default;
  // a failed start (e.g. the TBD_OBS=OFF stub) degrades to a warning.
  auto& profiler = obs::Profiler::global();
  if (!opt.profile_out.empty()) {
    obs::ProfilerOptions po;
    po.hz = opt.profile_hz;
    if (!profiler.start(po)) {
      std::fprintf(stderr, "warning: profiler not started: %s\n",
                   profiler.error().c_str());
    }
  }

  // ---- load, split by server, analyze ---------------------------------------
  // Auto-width notices are collected as strings inside analyze_servers so
  // the output stays deterministic; reporting below runs serially in server
  // order either way.
  const bool flight =
      !opt.timeline_out.empty() || !opt.attribution_out.empty();
  trace::RequestLog merged;  // kept only for the flight recorder
  std::vector<std::string> names;
  std::vector<ServerAnalysis> analyses;
  const bool loaded_ok =
      opt.layout_soa
          ? load_and_analyze<trace::RequestColumns>(
                opt, flight,
                [](const std::string& p) {
                  return trace::load_request_log_columns(p);
                },
                merged, names, analyses, registry)
          : load_and_analyze<trace::RequestLog>(
                opt, flight,
                [](const std::string& p) { return trace::load_request_log(p); },
                merged, names, analyses, registry);
  if (!loaded_ok) return 1;

  // Report block is braced so its span closes before the trace is exported.
  {
  TBD_SPAN("analyze.report");
  std::vector<core::DetectionResult> detections;
  for (std::size_t s = 0; s < analyses.size(); ++s) {
    const auto& name = names[s];
    const auto& spec = analyses[s].spec;
    auto& detection = analyses[s].detection;
    if (!analyses[s].auto_width_note.empty()) {
      std::printf("%s", analyses[s].auto_width_note.c_str());
    }
    std::printf("\n%s", core::summarize(detection, name).c_str());
    if (opt.scatter) {
      std::printf("%s", core::ascii_scatter(detection.load,
                                            detection.throughput,
                                            detection.nstar.n_star)
                            .c_str());
    }
    if (opt.episodes > 0) {
      auto episodes = detection.episodes;
      std::sort(episodes.begin(), episodes.end(),
                [](const core::Episode& a, const core::Episode& b) {
                  return a.duration > b.duration;
                });
      const auto n = std::min<std::size_t>(episodes.size(),
                                           static_cast<std::size_t>(opt.episodes));
      for (std::size_t e = 0; e < n; ++e) {
        std::printf("  episode t=%.2fs %s peak-load=%.0f%s\n",
                    episodes[e].start.seconds_f(),
                    episodes[e].duration.to_string().c_str(),
                    episodes[e].peak_load,
                    episodes[e].contains_freeze ? " FROZEN" : "");
      }
    }
    if (!opt.csv_prefix.empty()) {
      CsvWriter::write_columns(
          opt.csv_prefix + "_" + name + ".csv",
          {"t_s", "load", "norm_tput_per_s"},
          {spec.midpoints_seconds(), detection.load, detection.throughput});
    }
    detections.push_back(std::move(detection));
  }

  std::printf("\n%s", core::to_string(
                          core::rank_bottlenecks(detections, names))
                          .c_str());
  }

  // ---- flight recorder --------------------------------------------------------
  if (flight) {
    app::FlightConfig fc;
    fc.width = Duration::from_millis_f(opt.width_ms);
    fc.calib_seconds = opt.calib_seconds;
    fc.nstar_override = opt.nstar;
    const auto rec = app::flight_record(merged, fc, shared_pool());
    std::printf(
        "\nflight recorder: %zu transaction(s), %llu visit(s), "
        "%llu orphan(s)\n",
        rec.assembly.txns.size(),
        static_cast<unsigned long long>(rec.assembly.visits),
        static_cast<unsigned long long>(rec.assembly.orphan_visits));
    if (!opt.timeline_out.empty() &&
        !app::write_timeline(opt.timeline_out, rec)) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   opt.timeline_out.c_str());
      return 1;
    }
    if (!opt.attribution_out.empty() &&
        !core::write_attribution_ndjson(opt.attribution_out,
                                        rec.attribution)) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   opt.attribution_out.c_str());
      return 1;
    }
  }

  // ---- observability export ---------------------------------------------------
  if (!opt.trace_out.empty() || !opt.metrics_out.empty() ||
      !opt.prom_out.empty()) {
    obs::publish_pool_stats(registry);
    const auto& tracer = obs::Tracer::global();
    if (!opt.trace_out.empty() && !tracer.write_chrome_trace(opt.trace_out)) {
      std::fprintf(stderr, "error: cannot write %s\n", opt.trace_out.c_str());
      return 1;
    }
    if (!opt.metrics_out.empty()) {
      obs::RunInfo info;
      info.tool = "tbd_analyze";
      info.config.emplace_back("layout", opt.layout_soa ? "soa" : "aos");
      info.config.emplace_back("width_ms", std::to_string(opt.width_ms));
      info.config.emplace_back("auto_width", opt.auto_width ? "true" : "false");
      info.config.emplace_back("calib_seconds",
                               std::to_string(opt.calib_seconds));
      if (flight) {
        info.config.emplace_back("nstar_override", std::to_string(opt.nstar));
      }
      std::string files;
      for (const auto& f : opt.files) {
        if (!files.empty()) files += " ";
        files += f;
      }
      info.config.emplace_back("files", files);
      if (!obs::write_run_manifest(opt.metrics_out, info, registry, tracer)) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     opt.metrics_out.c_str());
        return 1;
      }
    }
    if (!opt.prom_out.empty()) {
      std::ofstream prom{opt.prom_out, std::ios::trunc};
      prom << registry.to_prometheus();
      if (!prom) {
        std::fprintf(stderr, "error: cannot write %s\n", opt.prom_out.c_str());
        return 1;
      }
    }
  }

  if (!opt.profile_out.empty() && profiler.running()) {
    profiler.stop();
    std::ofstream pf{opt.profile_out, std::ios::trunc};
    pf << profiler.folded();
    if (!pf) {
      std::fprintf(stderr, "error: cannot write %s\n", opt.profile_out.c_str());
      return 1;
    }
    std::printf("profile: %llu samples, %llu dropped -> %s\n",
                static_cast<unsigned long long>(profiler.samples()),
                static_cast<unsigned long long>(profiler.dropped()),
                opt.profile_out.c_str());
  }
  return 0;
}
