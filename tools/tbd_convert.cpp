// tbd_convert: request-log format conversion (CSV <-> "TBDR" v1 <-> v2).
//
// Usage:
//   tbd_convert [--strict] IN OUT
//
// The input encoding is auto-detected (TBDR magic + version, else CSV via
// the sharded zero-copy parser). The output encoding follows OUT's
// extension: `.tbdr` writes TBDR v1, `.tbd2` writes the segmented v2 format
// (segment_log.h), anything else writes canonical CSV (header + one line
// per record). Converting CSV -> CSV canonicalizes the file: comments,
// malformed lines, and extra columns are dropped, numbers are re-rendered —
// so csv -> tbdr -> tbd2 -> csv round-trips byte-identically with a
// canonical source.
//
// A truncated v2 input (writer killed mid-segment) recovers its sealed
// prefix by default, with the dropped tail reported on stderr; --strict
// instead fails the conversion on any invalid byte, which is the right mode
// when the input is supposed to be complete.
#include <cstdio>
#include <cstring>
#include <string>

#include "trace/log_io.h"
#include "trace/request_log_file.h"
#include "trace/segment_log.h"

using namespace tbd;

namespace {

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool strict = false;
  int arg = 1;
  if (arg < argc && std::strcmp(argv[arg], "--strict") == 0) {
    strict = true;
    ++arg;
  }
  if (argc - arg != 2) {
    std::fprintf(stderr,
                 "usage: tbd_convert [--strict] IN OUT\n"
                 "  OUT ending in .tbdr selects TBDR v1, .tbd2 the segmented"
                 " v2 format; anything else CSV\n"
                 "  --strict: fail on a truncated/corrupt v2 input instead of"
                 " recovering the sealed prefix\n");
    return 2;
  }
  const std::string in_path = argv[arg];
  const std::string out_path = argv[arg + 1];

  trace::LogIoResult loaded;
  if (strict && trace::sniff_request_log_version(in_path) ==
                    trace::kRequestLogV2Version) {
    auto v2 = trace::load_request_log_v2(in_path, trace::DecodeMode::kStrict);
    loaded.ok = v2.ok;
    loaded.error = std::move(v2.error);
    if (!loaded.ok && v2.input_size > 0) {
      loaded.error += " at byte offset " + std::to_string(v2.error_offset) +
                      ", segment " + std::to_string(v2.error_segment);
    }
    loaded.records = v2.records.to_records();
  } else {
    loaded = trace::load_request_log(in_path);
  }
  if (!loaded.ok) {
    std::fprintf(stderr, "error: cannot read %s: %s\n", in_path.c_str(),
                 loaded.error.c_str());
    return 1;
  }
  if (!loaded.warning.empty()) {
    std::fprintf(stderr, "warning: %s: %s\n", in_path.c_str(),
                 loaded.warning.c_str());
  }
  if (loaded.first_bad_line != 0) {
    std::fprintf(stderr, "warning: %s:%zu: first malformed line: %s\n",
                 in_path.c_str(), loaded.first_bad_line,
                 loaded.first_bad_text.c_str());
  }

  const char* format = "CSV";
  bool ok;
  if (ends_with(out_path, ".tbd2")) {
    format = "TBDR v2";
    ok = trace::save_request_log_v2(out_path, loaded.records);
  } else if (ends_with(out_path, ".tbdr")) {
    format = "TBDR v1";
    ok = trace::save_request_log_bin(out_path, loaded.records);
  } else {
    ok = trace::save_request_log_csv(out_path, loaded.records);
  }
  if (!ok) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("converted %zu records to %s %s (%zu input lines skipped)\n",
              loaded.records.size(), format, out_path.c_str(),
              loaded.skipped_lines);
  return 0;
}
