// tbd_convert: request-log format conversion (CSV <-> "TBDR" binary).
//
// Usage:
//   tbd_convert IN OUT
//
// The input encoding is auto-detected (TBDR magic, else CSV via the sharded
// zero-copy parser). The output encoding follows OUT's extension: `.tbdr`
// writes the binary format, anything else writes canonical CSV (header +
// one line per record). Converting CSV -> CSV canonicalizes the file:
// comments, malformed lines, and extra columns are dropped, numbers are
// re-rendered — so csv -> tbdr -> csv round-trips byte-identically with a
// canonical source.
#include <cstdio>
#include <string>

#include "trace/log_io.h"
#include "trace/request_log_file.h"

using namespace tbd;

namespace {

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr, "usage: tbd_convert IN OUT\n"
                         "  OUT ending in .tbdr selects the binary request-log"
                         " format; anything else CSV\n");
    return 2;
  }
  const std::string in_path = argv[1];
  const std::string out_path = argv[2];

  const auto loaded = trace::load_request_log(in_path);
  if (!loaded.ok) {
    std::fprintf(stderr, "error: cannot read %s: %s\n", in_path.c_str(),
                 loaded.error.c_str());
    return 1;
  }
  if (loaded.first_bad_line != 0) {
    std::fprintf(stderr, "warning: %s:%zu: first malformed line: %s\n",
                 in_path.c_str(), loaded.first_bad_line,
                 loaded.first_bad_text.c_str());
  }

  const bool binary = ends_with(out_path, ".tbdr");
  const bool ok = binary
                      ? trace::save_request_log_bin(out_path, loaded.records)
                      : trace::save_request_log_csv(out_path, loaded.records);
  if (!ok) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("converted %zu records to %s %s (%zu input lines skipped)\n",
              loaded.records.size(), binary ? "binary" : "CSV",
              out_path.c_str(), loaded.skipped_lines);
  return 0;
}
