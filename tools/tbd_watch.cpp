// tbd_watch: live transient-bottleneck monitor over a replayed request log.
//
// Where tbd_analyze is the batch analyzer (load everything, sweep, report),
// tbd_watch behaves like the production monitor ROADMAP item 1 calls for:
// it calibrates N*/TPmax and per-class service times per server, then
// replays the log in departure order through one core::StreamingDetector
// per server, emitting telemetry *as intervals seal*:
//
//   * labeled metrics ({stream="serverN"}) in the global obs registry,
//   * an NDJSON event log (interval_sealed / episode_open / episode_close),
//   * a live HTTP endpoint (/metrics, /healthz, /episodes) while replaying,
//   * self-observability: /statusz (identity + process stats + per-stream
//     freshness), /threadz (pool slots + stalls), /profilez (sampling
//     profiler), tbd_process_*/tbd_pool_* gauges refreshed per scrape, a
//     pool stall watchdog, and --profile-out folded-stack capture.
//
// Usage:
//   tbd_watch [options] LOG.csv [LOG2.tbdr ...]
//
// Options:
//   --width MS        analysis interval in milliseconds (default 50)
//   --lag MS          sealing lag: an interval is sealed once a departure
//                     lands this far past its end (default 5000; must
//                     exceed the longest request residence or stragglers
//                     are dropped — see docs/observability.md)
//   --calib-seconds S estimate service times from the first S seconds
//                     (default: whole log, masked at the 20th percentile)
//   --nstar N         classify against this congestion point instead of the
//                     per-server estimate (TPmax stays estimated)
//   --speed S         replay pacing: "max" (as fast as possible, default),
//                     "trace" (wall-clock speed of the trace), or "Nx"
//                     (e.g. "4x", "0.25x")
//   --events-out FILE write the NDJSON event log to FILE
//   --record-out FILE mirror the replayed records (departure order) into a
//                     TBDR v2 segment log as they stream — the flight-
//                     recorder capture path. Segments flush as they seal,
//                     so killing the process mid-segment loses at most one
//                     unsealed segment (segment_log.h)
//   --record-segment N  records per sealed segment (default 65536)
//   --listen H:P      serve /metrics, /healthz, /episodes during the replay
//                     (port 0 = OS-assigned; the bound port is printed as
//                     "listening http://H:P/")
//   --linger S        keep serving S seconds after the replay ends
//   --prom-out FILE   write a final Prometheus snapshot (headless runs)
//   --profile-out F   sample this process while it runs and write folded
//                     stacks (flamegraph-ready) to F at exit
//   --profile-hz N    sampling frequency (default 97 — prime, so it never
//                     phase-locks with periodic work)
//   --profile-mode M  "cpu" (time on-CPU code) or "wall" (every thread each
//                     tick, so blocked threads show too; default cpu)
//   --stall-ms MS     pool watchdog deadline: a task running longer is
//                     reported (log + tbd_pool_stalls_total metric;
//                     default 30000, 0 disables)
//
// Exit summary (stdout) reports per-stream record/drop/interval/episode
// counts; a nonzero drop count means --lag is too small for this trace.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/detector.h"
#include "core/streaming_detector.h"
#include "core/streaming_telemetry.h"
#include "obs/event_log.h"
#include "obs/exposition.h"
#include "obs/introspection.h"
#include "obs/metrics.h"
#include "obs/process_stats.h"
#include "obs/profiler.h"
#include "obs/manifest.h"
#include "trace/log_io.h"
#include "trace/segment_log.h"
#include "util/thread_pool.h"

using namespace tbd;

namespace {

struct Options {
  double width_ms = 50.0;
  double lag_ms = 5000.0;
  double calib_seconds = 0.0;  // 0 = whole log
  double nstar = 0.0;          // 0 = per-server estimate
  double speed = 0.0;          // 0 = max
  std::string speed_text = "max";
  std::string events_out;
  std::string record_out;
  std::size_t record_segment = trace::kDefaultSegmentRecords;
  std::string listen;  // host:port, empty = no server
  double linger_seconds = 0.0;
  std::string prom_out;
  std::string profile_out;
  int profile_hz = 97;
  std::string profile_mode = "cpu";
  double stall_ms = 30'000.0;
  std::vector<std::string> files;
};

void usage() {
  std::fprintf(stderr,
               "usage: tbd_watch [--width MS] [--lag MS] [--calib-seconds S] "
               "[--nstar N]\n"
               "                 [--speed max|trace|Nx] [--events-out FILE]\n"
               "                 [--record-out FILE.tbd2] [--record-segment N]\n"
               "                 [--listen HOST:PORT] [--linger S] "
               "[--prom-out FILE]\n"
               "                 [--profile-out FILE] [--profile-hz N] "
               "[--profile-mode cpu|wall]\n"
               "                 [--stall-ms MS] LOG.csv [...]\n");
}

bool parse_speed(const std::string& text, double& speed) {
  if (text == "max") {
    speed = 0.0;
    return true;
  }
  if (text == "trace") {
    speed = 1.0;
    return true;
  }
  if (text.size() > 1 && text.back() == 'x') {
    char* end = nullptr;
    speed = std::strtod(text.c_str(), &end);
    return end == text.c_str() + text.size() - 1 && speed > 0.0;
  }
  return false;
}

bool parse(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--width") {
      const char* v = next();
      if (!v) return false;
      opt.width_ms = std::atof(v);
    } else if (arg == "--lag") {
      const char* v = next();
      if (!v) return false;
      opt.lag_ms = std::atof(v);
    } else if (arg == "--calib-seconds") {
      const char* v = next();
      if (!v) return false;
      opt.calib_seconds = std::atof(v);
    } else if (arg == "--nstar") {
      const char* v = next();
      if (!v) return false;
      opt.nstar = std::atof(v);
    } else if (arg == "--speed") {
      const char* v = next();
      if (!v) return false;
      opt.speed_text = v;
      if (!parse_speed(opt.speed_text, opt.speed)) {
        std::fprintf(stderr, "bad --speed (want max, trace, or Nx): %s\n", v);
        return false;
      }
    } else if (arg == "--events-out") {
      const char* v = next();
      if (!v) return false;
      opt.events_out = v;
    } else if (arg == "--record-out") {
      const char* v = next();
      if (!v) return false;
      opt.record_out = v;
    } else if (arg == "--record-segment") {
      const char* v = next();
      if (!v) return false;
      opt.record_segment = static_cast<std::size_t>(std::atoll(v));
      if (opt.record_segment == 0) {
        std::fprintf(stderr, "bad --record-segment (want >= 1): %s\n", v);
        return false;
      }
    } else if (arg == "--listen") {
      const char* v = next();
      if (!v) return false;
      opt.listen = v;
    } else if (arg == "--linger") {
      const char* v = next();
      if (!v) return false;
      opt.linger_seconds = std::atof(v);
    } else if (arg == "--prom-out") {
      const char* v = next();
      if (!v) return false;
      opt.prom_out = v;
    } else if (arg == "--profile-out") {
      const char* v = next();
      if (!v) return false;
      opt.profile_out = v;
    } else if (arg == "--profile-hz") {
      const char* v = next();
      if (!v) return false;
      opt.profile_hz = std::atoi(v);
    } else if (arg == "--profile-mode") {
      const char* v = next();
      if (!v) return false;
      opt.profile_mode = v;
      if (opt.profile_mode != "cpu" && opt.profile_mode != "wall") {
        std::fprintf(stderr, "bad --profile-mode (want cpu or wall): %s\n", v);
        return false;
      }
    } else if (arg == "--stall-ms") {
      const char* v = next();
      if (!v) return false;
      opt.stall_ms = std::atof(v);
    } else if (arg == "--help" || arg == "-h") {
      return false;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return false;
    } else {
      opt.files.push_back(arg);
    }
  }
  return !opt.files.empty() && opt.width_ms > 0.0 && opt.lag_ms > 0.0;
}

/// One monitored stream: a server's detector plus its telemetry binding.
struct Stream {
  std::string name;
  std::unique_ptr<core::StreamingDetector> detector;
  std::unique_ptr<core::StreamingTelemetry> telemetry;
};

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse(argc, argv, opt)) {
    usage();
    return 2;
  }

  // ---- self-observability ---------------------------------------------------
  // Profiler and watchdog arm before any heavy work, so calibration and the
  // batch detection pass show up in the profile and are stall-covered too.
  // A failed profiler start (e.g. TBD_OBS=OFF stub) degrades to a warning.
  auto& profiler = obs::Profiler::global();
  if (!opt.profile_out.empty()) {
    obs::ProfilerOptions po;
    po.mode = opt.profile_mode == "wall" ? obs::ProfilerOptions::Mode::kWall
                                         : obs::ProfilerOptions::Mode::kCpu;
    po.hz = opt.profile_hz;
    if (!profiler.start(po)) {
      std::fprintf(stderr, "warning: profiler not started: %s\n",
                   profiler.error().c_str());
    }
  }
  if (opt.stall_ms > 0.0) {
    ThreadPool::WatchdogOptions wd;
    wd.deadline_us = static_cast<std::uint64_t>(opt.stall_ms * 1000.0);
    wd.on_stall = [](const ThreadPool::StallInfo& info) {
      std::fprintf(stderr,
                   "warning: pool task stalled: slot=%zu (%s) task=%llu "
                   "running %.1fs (deadline %.1fs)\n",
                   info.slot, info.thread_name.c_str(),
                   static_cast<unsigned long long>(info.task_index),
                   static_cast<double>(info.elapsed_us) / 1e6,
                   static_cast<double>(info.deadline_us) / 1e6);
      obs::Registry::global().counter("tbd_pool_stalls_total").add(1);
    };
    shared_pool().start_watchdog(wd);
  }

  // ---- load & merge ---------------------------------------------------------
  std::map<trace::ServerIndex, trace::RequestLog> by_server;
  trace::RequestLog merged;
  TimePoint t_min = TimePoint::max();
  TimePoint t_max;
  for (const auto& path : opt.files) {
    const auto loaded = trace::load_request_log(path);
    if (!loaded.ok) {
      std::fprintf(stderr, "error: cannot read %s: %s\n", path.c_str(),
                   loaded.error.c_str());
      return 1;
    }
    if (!loaded.warning.empty()) {
      std::fprintf(stderr, "warning: %s: %s\n", path.c_str(),
                   loaded.warning.c_str());
    }
    std::printf("loaded %zu records from %s (%zu lines skipped)\n",
                loaded.records.size(), path.c_str(), loaded.skipped_lines);
    for (const auto& r : loaded.records) {
      by_server[r.server].push_back(r);
      merged.push_back(r);
      t_min = std::min(t_min, r.arrival);
      t_max = std::max(t_max, r.departure);
    }
  }
  if (merged.empty()) {
    std::fprintf(stderr, "error: no records\n");
    return 1;
  }

  // The replay is a passive tap: records arrive in departure order across
  // all streams. Stable sort keeps file order for equal departures, so the
  // event log is deterministic for a given input set.
  std::stable_sort(merged.begin(), merged.end(),
                   [](const trace::RequestRecord& a,
                      const trace::RequestRecord& b) {
                     return a.departure < b.departure;
                   });

  // ---- event sink -----------------------------------------------------------
  std::ofstream events_file;
  if (!opt.events_out.empty()) {
    events_file.open(opt.events_out, std::ios::trunc);
    if (!events_file) {
      std::fprintf(stderr, "error: cannot write %s\n", opt.events_out.c_str());
      return 1;
    }
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%g", opt.width_ms);
  const std::string width_text = buf;
  std::snprintf(buf, sizeof buf, "%g", opt.lag_ms);
  const std::string lag_text = buf;
  obs::EventLog::Options event_options;
  // Self-timed flushes: tbd_event_log_flush_us / tbd_event_log_bytes_total
  // land in the same registry the scrape endpoint serves.
  event_options.registry = &obs::Registry::global();
  obs::EventLog events{
      events_file.is_open() ? &events_file : nullptr,
      event_options,
      {{"tool", "tbd_watch"},
       {"width_ms", width_text},
       {"lag_ms", lag_text},
       {"speed", opt.speed_text}}};

  // ---- calibration-then-classify -------------------------------------------
  // Same flow as the batch tools: per-class service times from the
  // calibration prefix, then one batch detection pass to freeze N*/TPmax
  // (with --nstar, the estimate's congestion point is overridden but TPmax
  // is kept — the flight recorder's carry-over convention). The streaming
  // grid starts at the batch grid's origin, so sealed intervals line up
  // bit-for-bit with the batch sweep.
  auto& registry = obs::Registry::global();
  const Duration width = Duration::from_millis_f(opt.width_ms);
  std::vector<Stream> streams;
  for (auto& [server, log] : by_server) {
    trace::RequestLog calib = log;
    if (opt.calib_seconds > 0.0) {
      const TimePoint cutoff =
          t_min + Duration::from_seconds_f(opt.calib_seconds);
      calib.erase(std::remove_if(calib.begin(), calib.end(),
                                 [&](const trace::RequestRecord& r) {
                                   return r.departure >= cutoff;
                                 }),
                  calib.end());
      if (calib.empty()) calib = log;
    }
    const auto table = core::estimate_service_times(calib);
    const auto spec = core::IntervalSpec::over(t_min, t_max, width);
    auto detection = core::detect_bottlenecks(log, spec, table);
    if (opt.nstar > 0.0) {
      detection.nstar.n_star = opt.nstar;
      detection.nstar.converged = true;
    }

    Stream s;
    s.name = "server" + std::to_string(server);
    core::StreamingDetector::Config config;
    config.width = width;
    config.lag = Duration::from_millis_f(opt.lag_ms);
    s.detector = std::make_unique<core::StreamingDetector>(
        t_min, config, detection.nstar, table);
    s.telemetry = std::make_unique<core::StreamingTelemetry>(
        *s.detector, core::StreamingTelemetry::Options{s.name}, registry,
        &events);
    std::printf("%s: %zu records, N*=%.3f TPmax=%.3f%s\n", s.name.c_str(),
                log.size(), detection.nstar.n_star, detection.nstar.tp_max,
                opt.nstar > 0.0 ? " (N* overridden)" : "");
    streams.push_back(std::move(s));
  }

  std::map<trace::ServerIndex, std::size_t> stream_index;
  {
    std::size_t i = 0;
    for (const auto& [server, log] : by_server) stream_index[server] = i++;
  }

  // ---- scrape endpoint ------------------------------------------------------
  // Introspection outlives the server (declared first): its handlers are
  // invoked from the serving thread until server->stop() returns.
  obs::Introspection intro{{"tbd_watch",
                            {{"width_ms", width_text},
                             {"lag_ms", lag_text},
                             {"speed", opt.speed_text}}}};
  intro.add_status_source("streams", [&streams] {
    // Best-effort snapshot: the replay thread is mutating the detectors
    // while this reads their counters, which is fine for a status page.
    std::string out = "[";
    for (std::size_t i = 0; i < streams.size(); ++i) {
      if (i > 0) out += ',';
      out += streams[i].telemetry->status_json();
    }
    out += ']';
    return out;
  });
  std::unique_ptr<obs::ExpositionServer> server;
  if (!opt.listen.empty()) {
    const auto colon = opt.listen.rfind(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "bad --listen (want HOST:PORT): %s\n",
                   opt.listen.c_str());
      return 2;
    }
    obs::ExpositionServer::Options so;
    so.host = opt.listen.substr(0, colon);
    so.port = static_cast<std::uint16_t>(
        std::atoi(opt.listen.c_str() + colon + 1));
    server = std::make_unique<obs::ExpositionServer>(so);
    const double open_streams = static_cast<double>(streams.size());
    server->handle("/metrics", "text/plain; version=0.0.4",
                   [&registry, open_streams] {
                     // Process and pool gauges refresh per scrape — set
                     // semantics, so repeating is safe (publish_pool_stats'
                     // counters are not; see obs/manifest.h).
                     obs::publish_process_stats(registry);
                     obs::publish_pool_gauges(registry);
                     registry.gauge("tbd_process_open_streams")
                         .set(open_streams);
                     return registry.to_prometheus();
                   });
    intro.wire(*server);
    server->handle("/healthz", "text/plain", [] { return std::string("ok\n"); });
    server->handle("/episodes", "application/json",
                   [&events] { return events.episodes_json(); });
    if (!server->start()) {
      std::fprintf(stderr, "error: %s\n", server->error().c_str());
      return 1;
    }
    std::printf("listening http://%s:%u/\n", so.host.c_str(),
                static_cast<unsigned>(server->port()));
    std::fflush(stdout);
  }

  // ---- record log -----------------------------------------------------------
  // The capture mirror writes each record as it is replayed, exactly like a
  // live tap would: segments seal and flush incrementally, so the file on
  // disk is always recoverable up to the last seal.
  trace::SegmentLogWriter recorder;
  if (!opt.record_out.empty()) {
    trace::SegmentLogOptions rec_options;
    rec_options.segment_records = opt.record_segment;
    if (!recorder.open(opt.record_out, rec_options)) {
      std::fprintf(stderr, "error: cannot write %s\n", opt.record_out.c_str());
      return 1;
    }
  }

  // ---- replay ---------------------------------------------------------------
  const auto wall_start = std::chrono::steady_clock::now();
  constexpr std::size_t kChunk = 256;
  for (std::size_t base = 0; base < merged.size(); base += kChunk) {
    const std::size_t end = std::min(merged.size(), base + kChunk);
    if (opt.speed > 0.0) {
      // Pace on the chunk's first departure: sleep until the trace clock,
      // scaled by --speed, catches up with the wall clock.
      const double trace_s =
          (merged[base].departure - t_min).seconds_f() / opt.speed;
      const auto target =
          wall_start + std::chrono::duration_cast<
                           std::chrono::steady_clock::duration>(
                           std::chrono::duration<double>(trace_s));
      std::this_thread::sleep_until(target);
    }
    for (std::size_t i = base; i < end; ++i) {
      if (recorder.is_open()) recorder.append(merged[i]);
      Stream& s = streams[stream_index[merged[i].server]];
      s.detector->push(merged[i]);
      s.telemetry->add_records(1);
    }
    for (auto& s : streams) s.telemetry->sync();
  }
  for (auto& s : streams) {
    s.detector->finish();
    s.telemetry->sync();
  }
  events.flush();
  if (!opt.record_out.empty()) {
    const bool rec_ok = recorder.close();
    std::printf("recorded %llu records in %llu segments -> %s\n",
                static_cast<unsigned long long>(recorder.records_written()),
                static_cast<unsigned long long>(recorder.segments_sealed()),
                opt.record_out.c_str());
    if (!rec_ok) {
      std::fprintf(stderr, "error: write failed on %s\n",
                   opt.record_out.c_str());
      return 1;
    }
  }

  // ---- exit summary ---------------------------------------------------------
  std::size_t total_dropped = 0;
  for (const auto& s : streams) {
    const auto& by_state = s.detector->sealed_by_state();
    std::printf(
        "%s: intervals=%zu (idle=%zu normal=%zu congested=%zu frozen=%zu) "
        "episodes=%zu dropped=%zu\n",
        s.name.c_str(), s.detector->intervals_emitted(), by_state[0],
        by_state[1], by_state[2], by_state[3], s.detector->episodes().size(),
        s.detector->dropped_records());
    total_dropped += s.detector->dropped_records();
  }
  std::printf("events=%llu\n",
              static_cast<unsigned long long>(events.events_emitted()));
  if (total_dropped > 0) {
    std::fprintf(stderr,
                 "warning: %zu record(s) dropped as too old — increase --lag "
                 "beyond the longest request residence\n",
                 total_dropped);
  }
  std::fflush(stdout);

  if (!opt.prom_out.empty()) {
    obs::publish_process_stats(registry);
    obs::publish_pool_gauges(registry);
    registry.gauge("tbd_process_open_streams")
        .set(static_cast<double>(streams.size()));
    std::ofstream prom{opt.prom_out, std::ios::trunc};
    prom << registry.to_prometheus();
    if (!prom) {
      std::fprintf(stderr, "error: cannot write %s\n", opt.prom_out.c_str());
      return 1;
    }
  }

  if (server && opt.linger_seconds > 0.0) {
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(opt.linger_seconds));
    while (std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  }
  // The profile covers the linger window too (in wall mode that is where
  // the idle serving thread shows up), so stop and write only now.
  if (!opt.profile_out.empty() && profiler.running()) {
    profiler.stop();
    std::ofstream pf{opt.profile_out, std::ios::trunc};
    pf << profiler.folded();
    if (!pf) {
      std::fprintf(stderr, "error: cannot write %s\n", opt.profile_out.c_str());
      return 1;
    }
    std::printf("profile: %llu samples, %llu dropped -> %s\n",
                static_cast<unsigned long long>(profiler.samples()),
                static_cast<unsigned long long>(profiler.dropped()),
                opt.profile_out.c_str());
    std::fflush(stdout);
  }
  shared_pool().stop_watchdog();
  if (server) server->stop();
  return total_dropped > 0 ? 3 : 0;
}
