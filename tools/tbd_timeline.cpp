// tbd_timeline: transaction flight recorder for request-log CSVs and binary
// captures — per-request causal timelines, congestion-episode overlay, and
// critical-path attribution.
//
// Usage:
//   tbd_timeline [options] LOG.csv [LOG2.csv ...]
//   tbd_timeline [options] --capture FILE.tbdc
//
// CSV inputs are per-server request records (trace/log_io.h); transactions
// are assembled from shared txn ids (ground-truth trees). A --capture input
// is a raw message stream (trace/capture_file.h): it is replayed through the
// black-box reconstructor first, and trees follow either the reconstructor's
// guessed parent edges (--view blackbox, default) or the ground-truth ids
// carried in the capture (--view truth).
//
// Options:
//   --width MS            analysis interval in milliseconds (default 50)
//   --calib-seconds S     estimate service times from the first S seconds
//   --nstar N             classify against this congestion point instead of
//                         estimating N* per server (calibration carry-over;
//                         required for captures too short to saturate)
//   --view truth|blackbox parent edges to trust for --capture input
//   --timeline-out FILE   write the combined Perfetto/Chrome timeline JSON
//   --attribution-out FILE  write per-band critical-path attribution NDJSON
//   --attribution-csv FILE  same attribution as CSV
//   --record-out FILE     write the analyzed records as a TBDR v2 segment
//                         log (trace/segment_log.h) — the compact archival
//                         form of the flight record's input
//   --trace-out FILE      write the pipeline's own span trace (wall clock)
//   --metrics-out FILE    write the run manifest (config, metrics, spans)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "app/flight_recorder.h"
#include "core/attribution.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "trace/capture_file.h"
#include "trace/log_io.h"
#include "trace/reconstructor.h"
#include "trace/txn_tree.h"
#include "util/thread_pool.h"

using namespace tbd;

namespace {

struct Options {
  double width_ms = 50.0;
  double calib_seconds = 0.0;
  double nstar = 0.0;  // 0 = estimate per server
  std::string capture;
  trace::VisitView view = trace::VisitView::kBlackBox;
  std::string timeline_out;
  std::string attribution_out;
  std::string attribution_csv;
  std::string record_out;
  std::string trace_out;
  std::string metrics_out;
  std::vector<std::string> files;
};

void usage() {
  std::fprintf(stderr,
               "usage: tbd_timeline [--width MS] [--calib-seconds S] "
               "[--nstar N]\n"
               "                    [--capture FILE.tbdc] "
               "[--view truth|blackbox]\n"
               "                    [--timeline-out FILE] "
               "[--attribution-out FILE]\n"
               "                    [--attribution-csv FILE] "
               "[--record-out FILE.tbd2]\n"
               "                    [--trace-out FILE]\n"
               "                    [--metrics-out FILE] [LOG.csv ...]\n");
}

bool parse(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--width") {
      const char* v = next();
      if (!v) return false;
      opt.width_ms = std::atof(v);
    } else if (arg == "--calib-seconds") {
      const char* v = next();
      if (!v) return false;
      opt.calib_seconds = std::atof(v);
    } else if (arg == "--nstar") {
      const char* v = next();
      if (!v) return false;
      opt.nstar = std::atof(v);
    } else if (arg == "--capture") {
      const char* v = next();
      if (!v) return false;
      opt.capture = v;
    } else if (arg == "--view") {
      const char* v = next();
      if (!v) return false;
      if (std::strcmp(v, "truth") == 0) {
        opt.view = trace::VisitView::kGroundTruth;
      } else if (std::strcmp(v, "blackbox") == 0) {
        opt.view = trace::VisitView::kBlackBox;
      } else {
        std::fprintf(stderr, "unknown view: %s\n", v);
        return false;
      }
    } else if (arg == "--timeline-out") {
      const char* v = next();
      if (!v) return false;
      opt.timeline_out = v;
    } else if (arg == "--attribution-out") {
      const char* v = next();
      if (!v) return false;
      opt.attribution_out = v;
    } else if (arg == "--attribution-csv") {
      const char* v = next();
      if (!v) return false;
      opt.attribution_csv = v;
    } else if (arg == "--record-out") {
      const char* v = next();
      if (!v) return false;
      opt.record_out = v;
    } else if (arg == "--trace-out") {
      const char* v = next();
      if (!v) return false;
      opt.trace_out = v;
    } else if (arg == "--metrics-out") {
      const char* v = next();
      if (!v) return false;
      opt.metrics_out = v;
    } else if (arg == "--help" || arg == "-h") {
      return false;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return false;
    } else {
      opt.files.push_back(arg);
    }
  }
  const bool has_input = !opt.files.empty() || !opt.capture.empty();
  return has_input && opt.width_ms > 0.0;
}

app::FlightOutputs outputs_of(const Options& opt) {
  app::FlightOutputs out;
  out.timeline = opt.timeline_out;
  out.attribution = opt.attribution_out;
  out.attribution_csv = opt.attribution_csv;
  out.record_log = opt.record_out;
  out.trace = opt.trace_out;
  out.manifest = opt.metrics_out;
  return out;
}

obs::RunInfo run_info_of(const Options& opt) {
  obs::RunInfo info;
  info.tool = "tbd_timeline";
  info.config.emplace_back("width_ms", std::to_string(opt.width_ms));
  info.config.emplace_back("calib_seconds", std::to_string(opt.calib_seconds));
  info.config.emplace_back("nstar_override", std::to_string(opt.nstar));
  if (!opt.capture.empty()) {
    info.config.emplace_back("capture", opt.capture);
    info.config.emplace_back(
        "view",
        opt.view == trace::VisitView::kGroundTruth ? "truth" : "blackbox");
  }
  std::string files;
  for (const auto& f : opt.files) {
    if (!files.empty()) files += " ";
    files += f;
  }
  info.config.emplace_back("files", files);
  return info;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse(argc, argv, opt)) {
    usage();
    return 2;
  }
  if (!opt.trace_out.empty()) obs::Tracer::global().enable();
  auto& registry = obs::Registry::global();

  // ---- load -----------------------------------------------------------------
  trace::RequestLog records;
  {
    TBD_SPAN("timeline.load");
    for (const auto& path : opt.files) {
      const auto loaded = trace::load_request_log(path);
      if (!loaded.ok) {
        std::fprintf(stderr, "error: cannot read %s: %s\n", path.c_str(),
                     loaded.error.c_str());
        return 1;
      }
      if (!loaded.warning.empty()) {
        std::fprintf(stderr, "warning: %s: %s\n", path.c_str(),
                     loaded.warning.c_str());
      }
      if (loaded.first_bad_line != 0) {
        std::fprintf(stderr, "warning: %s:%zu: first malformed line: %s\n",
                     path.c_str(), loaded.first_bad_line,
                     loaded.first_bad_text.c_str());
      }
      std::printf("loaded %zu records from %s (%zu lines skipped)\n",
                  loaded.records.size(), path.c_str(), loaded.skipped_lines);
      registry.counter("tbd_timeline_records_total")
          .add(loaded.records.size());
      records.insert(records.end(), loaded.records.begin(),
                     loaded.records.end());
    }
    if (!opt.capture.empty()) {
      const auto cap = trace::load_capture(opt.capture);
      if (!cap.ok) {
        std::fprintf(stderr, "error: cannot read %s: %s\n",
                     opt.capture.c_str(), cap.error.c_str());
        return 1;
      }
      trace::TraceReconstructor recon;
      recon.process(cap.messages);
      std::printf("reconstructed %zu visits from %zu messages (%s view)\n",
                  recon.visits().size(), cap.messages.size(),
                  opt.view == trace::VisitView::kGroundTruth ? "truth"
                                                             : "blackbox");
      registry.counter("tbd_timeline_capture_visits_total")
          .add(recon.visits().size());
      // Detection runs on per-server logs derived from the closed visits;
      // the trees are then re-assembled from the visits themselves so the
      // parent edges follow the selected view.
      for (const auto& [server, log] : trace::logs_from_visits(recon.visits())) {
        records.insert(records.end(), log.begin(), log.end());
      }
      if (records.empty()) {
        std::fprintf(stderr, "error: no closed visits in capture\n");
        return 1;
      }
      app::FlightConfig config;
      config.width = Duration::from_millis_f(opt.width_ms);
      config.calib_seconds = opt.calib_seconds;
      config.nstar_override = opt.nstar;
      auto rec = app::flight_record(records, config, shared_pool());
      // Replace the ground-truth trees (derived txn ids) with trees that
      // follow the capture's parent edges under the requested view.
      trace::ProfileMap profiles;
      for (const auto& sf : rec.servers) profiles.emplace(sf.server, sf.profile);
      rec.assembly =
          trace::assemble_transactions(recon.visits(), opt.view, &profiles);
      std::vector<trace::ServerIndex> servers;
      std::vector<core::DetectionResult> detections;
      for (const auto& sf : rec.servers) {
        servers.push_back(sf.server);
        detections.push_back(sf.detection);
      }
      rec.attribution = core::attribute_latency(rec.assembly.txns, servers,
                                                detections, profiles, {});
      return app::emit_flight_outputs(rec, outputs_of(opt), run_info_of(opt));
    }
  }
  if (records.empty()) {
    std::fprintf(stderr, "error: no records\n");
    return 1;
  }

  app::FlightConfig config;
  config.width = Duration::from_millis_f(opt.width_ms);
  config.calib_seconds = opt.calib_seconds;
  config.nstar_override = opt.nstar;
  const auto rec = app::flight_record(records, config, shared_pool());
  return app::emit_flight_outputs(rec, outputs_of(opt), run_info_of(opt));
}
