// tbd_serve: the online multi-tenant bottleneck-detection daemon.
//
// Where tbd_watch replays one recorded log in-process, tbd_serve accepts
// request streams over TCP — any number of senders, each multiplexing any
// number of monitored servers over one connection (see serve/frame.h for
// the wire protocol and docs/serving.md for the full spec) — and runs one
// StreamingDetector + StreamingTelemetry pair per stream, sharded onto the
// shared thread pool. Episodes and labeled metrics are live on the same
// exposition surface tbd_watch serves: /metrics, /healthz, /episodes,
// /statusz (with per-stream freshness and queue depths), /threadz,
// /profilez.
//
// Usage:
//   tbd_serve [options]
//
// Options:
//   --listen H:P      ingest listener (default 127.0.0.1:0; the bound port
//                     is printed as "ingest tcp://H:P/")
//   --http H:P        exposition endpoint (default 127.0.0.1:0, printed as
//                     "listening http://H:P/"); --no-http disables it
//   --events-out FILE shared NDJSON journal, all streams interleaved by
//                     arrival
//   --events-dir DIR  per-stream NDJSON journals, DIR/<stream>.ndjson each
//                     (deterministic per stream regardless of interleaving)
//   --events-meta K=V override the shared journal's meta record (repeat
//                     for several pairs; default {tool: tbd_serve})
//   --record-dir DIR  mirror each stream's records into a durable TBDR v2
//                     segment log DIR/<stream>.tbd2 as they arrive
//   --record-segment N  records per sealed mirror segment (default 65536)
//   --queue-hwm BYTES back-pressure high-water mark per stream: above this
//                     many queued bytes the owning connection is not read
//                     until the pump drains it (default 8388608)
//   --idle-seal-ms MS default idle-seal deadline: a stream silent this long
//                     is sealed to its watermark, capping open-interval
//                     memory (0 = never; HELLO can override per stream)
//   --evict-idle-s S  finish + evict a stream with no data and no heartbeat
//                     for S seconds (0 = never)
//   --grace-s S       how long SIGTERM waits for connections to finish
//                     sending before force-closing (default 5)
//   --stall-ms MS     pool watchdog deadline (default 30000, 0 disables)
//
// SIGTERM/SIGINT shut down cleanly: stop accepting, drain what was sent,
// finish every stream, flush the event logs, close the mirrors.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "serve/daemon.h"
#include "util/thread_pool.h"

using namespace tbd;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

struct Options {
  std::string listen = "127.0.0.1:0";
  std::string http = "127.0.0.1:0";
  bool no_http = false;
  std::string events_out;
  std::string events_dir;
  std::vector<std::pair<std::string, std::string>> events_meta;
  std::string record_dir;
  std::size_t record_segment = trace::kDefaultSegmentRecords;
  std::size_t queue_hwm = 8u << 20;
  double idle_seal_ms = 0.0;
  double evict_idle_s = 0.0;
  double grace_s = 5.0;
  double stall_ms = 30'000.0;
};

void usage() {
  std::fprintf(
      stderr,
      "usage: tbd_serve [--listen HOST:PORT] [--http HOST:PORT | --no-http]\n"
      "                 [--events-out FILE] [--events-dir DIR] "
      "[--events-meta K=V ...]\n"
      "                 [--record-dir DIR] [--record-segment N]\n"
      "                 [--queue-hwm BYTES] [--idle-seal-ms MS] "
      "[--evict-idle-s S]\n"
      "                 [--grace-s S] [--stall-ms MS]\n");
}

bool parse(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--listen") {
      const char* v = next();
      if (!v) return false;
      opt.listen = v;
    } else if (arg == "--http") {
      const char* v = next();
      if (!v) return false;
      opt.http = v;
    } else if (arg == "--no-http") {
      opt.no_http = true;
    } else if (arg == "--events-out") {
      const char* v = next();
      if (!v) return false;
      opt.events_out = v;
    } else if (arg == "--events-dir") {
      const char* v = next();
      if (!v) return false;
      opt.events_dir = v;
    } else if (arg == "--events-meta") {
      const char* v = next();
      if (!v) return false;
      const char* eq = std::strchr(v, '=');
      if (!eq) {
        std::fprintf(stderr, "bad --events-meta (want KEY=VALUE): %s\n", v);
        return false;
      }
      opt.events_meta.emplace_back(std::string(v, eq), std::string(eq + 1));
    } else if (arg == "--record-dir") {
      const char* v = next();
      if (!v) return false;
      opt.record_dir = v;
    } else if (arg == "--record-segment") {
      const char* v = next();
      if (!v) return false;
      opt.record_segment = static_cast<std::size_t>(std::atoll(v));
      if (opt.record_segment == 0) return false;
    } else if (arg == "--queue-hwm") {
      const char* v = next();
      if (!v) return false;
      opt.queue_hwm = static_cast<std::size_t>(std::atoll(v));
      if (opt.queue_hwm == 0) return false;
    } else if (arg == "--idle-seal-ms") {
      const char* v = next();
      if (!v) return false;
      opt.idle_seal_ms = std::atof(v);
    } else if (arg == "--evict-idle-s") {
      const char* v = next();
      if (!v) return false;
      opt.evict_idle_s = std::atof(v);
    } else if (arg == "--grace-s") {
      const char* v = next();
      if (!v) return false;
      opt.grace_s = std::atof(v);
    } else if (arg == "--stall-ms") {
      const char* v = next();
      if (!v) return false;
      opt.stall_ms = std::atof(v);
    } else if (arg == "--help" || arg == "-h") {
      return false;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

bool split_host_port(const std::string& text, std::string& host,
                     std::uint16_t& port) {
  const auto colon = text.rfind(':');
  if (colon == std::string::npos) return false;
  host = text.substr(0, colon);
  port = static_cast<std::uint16_t>(std::atoi(text.c_str() + colon + 1));
  return !host.empty();
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse(argc, argv, opt)) {
    usage();
    return 2;
  }

  serve::DaemonOptions dopt;
  if (!split_host_port(opt.listen, dopt.host, dopt.port)) {
    std::fprintf(stderr, "bad --listen (want HOST:PORT): %s\n",
                 opt.listen.c_str());
    return 2;
  }
  dopt.expose_http = !opt.no_http;
  if (dopt.expose_http &&
      !split_host_port(opt.http, dopt.http_host, dopt.http_port)) {
    std::fprintf(stderr, "bad --http (want HOST:PORT): %s\n",
                 opt.http.c_str());
    return 2;
  }
  dopt.events_path = opt.events_out;
  dopt.events_dir = opt.events_dir;
  dopt.events_meta = opt.events_meta;
  dopt.record_dir = opt.record_dir;
  dopt.record_segment_records = opt.record_segment;
  dopt.queue_high_water_bytes = opt.queue_hwm;
  dopt.default_idle_seal_us =
      static_cast<std::int64_t>(opt.idle_seal_ms * 1000.0);
  dopt.evict_idle_us = static_cast<std::int64_t>(opt.evict_idle_s * 1e6);
  dopt.drain_grace_s = opt.grace_s;

  if (opt.stall_ms > 0.0) {
    ThreadPool::WatchdogOptions wd;
    wd.deadline_us = static_cast<std::uint64_t>(opt.stall_ms * 1000.0);
    wd.on_stall = [](const ThreadPool::StallInfo& info) {
      std::fprintf(stderr,
                   "warning: pool task stalled: slot=%zu (%s) task=%llu "
                   "running %.1fs (deadline %.1fs)\n",
                   info.slot, info.thread_name.c_str(),
                   static_cast<unsigned long long>(info.task_index),
                   static_cast<double>(info.elapsed_us) / 1e6,
                   static_cast<double>(info.deadline_us) / 1e6);
      obs::Registry::global().counter("tbd_pool_stalls_total").add(1);
    };
    shared_pool().start_watchdog(wd);
  }

  serve::ServeDaemon daemon{std::move(dopt)};
  if (!daemon.start()) {
    std::fprintf(stderr, "error: %s\n", daemon.error().c_str());
    return 1;
  }
  std::printf("ingest tcp://%s:%u/\n",
              opt.listen.substr(0, opt.listen.rfind(':')).c_str(),
              static_cast<unsigned>(daemon.ingest_port()));
  if (!opt.no_http) {
    std::printf("listening http://%s:%u/\n",
                opt.http.substr(0, opt.http.rfind(':')).c_str(),
                static_cast<unsigned>(daemon.http_port()));
  }
  std::fflush(stdout);

  struct sigaction sa{};
  sa.sa_handler = on_signal;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::printf("shutting down (grace %.1fs)\n", opt.grace_s);
  std::fflush(stdout);
  daemon.stop();

  // ---- exit summary (same shape as tbd_watch's) -----------------------------
  std::size_t total_dropped = 0;
  for (const auto& s : daemon.stream_summaries()) {
    std::printf(
        "%s: records=%llu intervals=%llu (idle=%zu normal=%zu congested=%zu "
        "frozen=%zu) episodes=%zu dropped=%llu deferred_reads=%llu\n",
        s.name.c_str(), static_cast<unsigned long long>(s.records),
        static_cast<unsigned long long>(s.intervals), s.sealed_by_state[0],
        s.sealed_by_state[1], s.sealed_by_state[2], s.sealed_by_state[3],
        s.episodes.size(), static_cast<unsigned long long>(s.dropped),
        static_cast<unsigned long long>(s.pauses));
    total_dropped += s.dropped;
  }
  std::printf(
      "connections=%llu frames=%llu protocol_errors=%llu "
      "backpressure_pauses=%llu idle_seals=%llu evicted=%llu\n",
      static_cast<unsigned long long>(daemon.connections_accepted()),
      static_cast<unsigned long long>(daemon.frames_received()),
      static_cast<unsigned long long>(daemon.protocol_errors()),
      static_cast<unsigned long long>(daemon.backpressure_pauses()),
      static_cast<unsigned long long>(daemon.idle_seals()),
      static_cast<unsigned long long>(daemon.evicted_streams()));
  if (total_dropped > 0) {
    std::fprintf(stderr,
                 "warning: %zu record(s) dropped as too old — senders should "
                 "increase --lag beyond the longest request residence\n",
                 total_dropped);
  }
  shared_pool().stop_watchdog();
  return 0;
}
