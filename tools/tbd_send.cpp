// tbd_send: replay a recorded request log into a tbd_serve daemon.
//
// The sender owns calibration, exactly like tbd_watch: it estimates
// per-class service times from a calibration prefix, runs one batch
// detection pass per server to freeze N*/TPmax, then opens one stream per
// server over a single connection and ships the merged log in departure
// order as DATA frames. Because one connection is one ordered strand on
// the daemon side, a tbd_send replay produces the same event log bytes as
// tbd_watch over the same input — the tier-1 gate compares them.
//
// Usage:
//   tbd_send --connect HOST:PORT [options] LOG.csv [LOG2.tbdr ...]
//
// Options:
//   --connect H:P     the daemon's ingest listener (required)
//   --width MS        analysis interval in milliseconds (default 50)
//   --lag MS          sealing lag in milliseconds (default 5000)
//   --calib-seconds S estimate service times from the first S seconds
//                     (default: whole log)
//   --nstar N         override the estimated congestion point (TPmax kept)
//   --speed S         pacing: "max" (default), "trace", or "Nx"
//   --batch N         max records per DATA frame (default 256)
//   --format F        "raw" packed rows (default), "v1" TBDR blobs, or
//                     "v2" TBDR segment logs per frame
//   --stream-prefix P stream names are P + server index (default "server")
//   --idle-seal-ms MS ask the daemon to idle-seal this stream after MS of
//                     silence (0 = daemon default)
//   --heartbeat-s S   send a heartbeat when S seconds pass between frames
//                     while pacing (0 = off)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/detector.h"
#include "serve/client.h"
#include "serve/frame.h"
#include "trace/log_io.h"
#include "trace/request_log_file.h"
#include "trace/segment_log.h"

using namespace tbd;

namespace {

struct Options {
  std::string connect;
  double width_ms = 50.0;
  double lag_ms = 5000.0;
  double calib_seconds = 0.0;
  double nstar = 0.0;
  double speed = 0.0;  // 0 = max
  std::size_t batch = 256;
  std::string format = "raw";
  std::string stream_prefix = "server";
  double idle_seal_ms = 0.0;
  double heartbeat_s = 0.0;
  std::vector<std::string> files;
};

void usage() {
  std::fprintf(stderr,
               "usage: tbd_send --connect HOST:PORT [--width MS] [--lag MS]\n"
               "                [--calib-seconds S] [--nstar N] "
               "[--speed max|trace|Nx]\n"
               "                [--batch N] [--format raw|v1|v2]\n"
               "                [--stream-prefix P] [--idle-seal-ms MS]\n"
               "                [--heartbeat-s S] LOG.csv [...]\n");
}

bool parse_speed(const std::string& text, double& speed) {
  if (text == "max") {
    speed = 0.0;
    return true;
  }
  if (text == "trace") {
    speed = 1.0;
    return true;
  }
  if (text.size() > 1 && text.back() == 'x') {
    char* end = nullptr;
    speed = std::strtod(text.c_str(), &end);
    return end == text.c_str() + text.size() - 1 && speed > 0.0;
  }
  return false;
}

bool parse(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--connect") {
      const char* v = next();
      if (!v) return false;
      opt.connect = v;
    } else if (arg == "--width") {
      const char* v = next();
      if (!v) return false;
      opt.width_ms = std::atof(v);
    } else if (arg == "--lag") {
      const char* v = next();
      if (!v) return false;
      opt.lag_ms = std::atof(v);
    } else if (arg == "--calib-seconds") {
      const char* v = next();
      if (!v) return false;
      opt.calib_seconds = std::atof(v);
    } else if (arg == "--nstar") {
      const char* v = next();
      if (!v) return false;
      opt.nstar = std::atof(v);
    } else if (arg == "--speed") {
      const char* v = next();
      if (!v) return false;
      if (!parse_speed(v, opt.speed)) {
        std::fprintf(stderr, "bad --speed (want max, trace, or Nx): %s\n", v);
        return false;
      }
    } else if (arg == "--batch") {
      const char* v = next();
      if (!v) return false;
      opt.batch = static_cast<std::size_t>(std::atoll(v));
      if (opt.batch == 0) return false;
    } else if (arg == "--format") {
      const char* v = next();
      if (!v) return false;
      opt.format = v;
      if (opt.format != "raw" && opt.format != "v1" && opt.format != "v2") {
        std::fprintf(stderr, "bad --format (want raw, v1, or v2): %s\n", v);
        return false;
      }
    } else if (arg == "--stream-prefix") {
      const char* v = next();
      if (!v) return false;
      opt.stream_prefix = v;
    } else if (arg == "--idle-seal-ms") {
      const char* v = next();
      if (!v) return false;
      opt.idle_seal_ms = std::atof(v);
    } else if (arg == "--heartbeat-s") {
      const char* v = next();
      if (!v) return false;
      opt.heartbeat_s = std::atof(v);
    } else if (arg == "--help" || arg == "-h") {
      return false;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return false;
    } else {
      opt.files.push_back(arg);
    }
  }
  return !opt.connect.empty() && !opt.files.empty() && opt.width_ms > 0.0 &&
         opt.lag_ms > 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse(argc, argv, opt)) {
    usage();
    return 2;
  }
  const auto colon = opt.connect.rfind(':');
  if (colon == std::string::npos) {
    std::fprintf(stderr, "bad --connect (want HOST:PORT): %s\n",
                 opt.connect.c_str());
    return 2;
  }
  const std::string host = opt.connect.substr(0, colon);
  const auto port =
      static_cast<std::uint16_t>(std::atoi(opt.connect.c_str() + colon + 1));

  // ---- load & merge (same flow as tbd_watch) --------------------------------
  std::map<trace::ServerIndex, trace::RequestLog> by_server;
  trace::RequestLog merged;
  TimePoint t_min = TimePoint::max();
  TimePoint t_max;
  for (const auto& path : opt.files) {
    const auto loaded = trace::load_request_log(path);
    if (!loaded.ok) {
      std::fprintf(stderr, "error: cannot read %s: %s\n", path.c_str(),
                   loaded.error.c_str());
      return 1;
    }
    if (!loaded.warning.empty()) {
      std::fprintf(stderr, "warning: %s: %s\n", path.c_str(),
                   loaded.warning.c_str());
    }
    std::printf("loaded %zu records from %s (%zu lines skipped)\n",
                loaded.records.size(), path.c_str(), loaded.skipped_lines);
    for (const auto& r : loaded.records) {
      by_server[r.server].push_back(r);
      merged.push_back(r);
      t_min = std::min(t_min, r.arrival);
      t_max = std::max(t_max, r.departure);
    }
  }
  if (merged.empty()) {
    std::fprintf(stderr, "error: no records\n");
    return 1;
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const trace::RequestRecord& a,
                      const trace::RequestRecord& b) {
                     return a.departure < b.departure;
                   });

  // ---- calibrate, then HELLO per server -------------------------------------
  const Duration width = Duration::from_millis_f(opt.width_ms);
  serve::SendClient client;
  if (!client.connect(host, port)) {
    std::fprintf(stderr, "error: %s\n", client.error().c_str());
    return 1;
  }
  std::map<trace::ServerIndex, std::uint16_t> handle_of;
  std::uint16_t next_handle = 0;
  for (auto& [server, log] : by_server) {
    trace::RequestLog calib = log;
    if (opt.calib_seconds > 0.0) {
      const TimePoint cutoff =
          t_min + Duration::from_seconds_f(opt.calib_seconds);
      calib.erase(std::remove_if(calib.begin(), calib.end(),
                                 [&](const trace::RequestRecord& r) {
                                   return r.departure >= cutoff;
                                 }),
                  calib.end());
      if (calib.empty()) calib = log;
    }
    const auto table = core::estimate_service_times(calib);
    const auto spec = core::IntervalSpec::over(t_min, t_max, width);
    auto detection = core::detect_bottlenecks(log, spec, table);
    if (opt.nstar > 0.0) {
      detection.nstar.n_star = opt.nstar;
      detection.nstar.converged = true;
    }
    if (table.classes() > serve::kMaxServiceClasses) {
      std::fprintf(stderr, "error: %zu service classes exceeds protocol cap\n",
                   table.classes());
      return 1;
    }

    serve::HelloConfig hello;
    hello.name = opt.stream_prefix + std::to_string(server);
    hello.start_us = t_min.micros();
    hello.width_us = width.micros();
    hello.lag_us = Duration::from_millis_f(opt.lag_ms).micros();
    hello.idle_seal_us =
        static_cast<std::int64_t>(opt.idle_seal_ms * 1000.0);
    hello.nstar = detection.nstar.n_star;
    hello.tpmax = detection.nstar.tp_max;
    // Ship the whole table (zeros included) so the daemon's detector derives
    // the identical work unit from the same smallest positive service time.
    const core::DetectorConfig defaults;
    hello.work_unit_us = 0.0;
    hello.idle_load = defaults.idle_load;
    hello.poi_tput_frac = defaults.poi_tput_frac;
    for (std::size_t c = 0; c < table.classes(); ++c) {
      hello.service_us.emplace_back(static_cast<trace::ClassId>(c),
                                    table.service_us(c));
    }
    const std::uint16_t handle = next_handle++;
    handle_of[server] = handle;
    if (!client.send_hello(handle, hello)) {
      std::fprintf(stderr, "error: %s\n", client.error().c_str());
      return 1;
    }
    std::printf("%s: %zu records, N*=%.3f TPmax=%.3f%s\n", hello.name.c_str(),
                log.size(), detection.nstar.n_star, detection.nstar.tp_max,
                opt.nstar > 0.0 ? " (N* overridden)" : "");
  }

  // ---- replay: departure-order runs of one server, capped at --batch --------
  const auto wall_start = std::chrono::steady_clock::now();
  auto last_heartbeat = wall_start;
  std::uint64_t frames = 0;
  for (std::size_t base = 0; base < merged.size();) {
    std::size_t end = base + 1;
    while (end < merged.size() && end - base < opt.batch &&
           merged[end].server == merged[base].server) {
      ++end;
    }
    if (opt.speed > 0.0) {
      const double trace_s =
          (merged[base].departure - t_min).seconds_f() / opt.speed;
      const auto target =
          wall_start + std::chrono::duration_cast<
                           std::chrono::steady_clock::duration>(
                           std::chrono::duration<double>(trace_s));
      std::this_thread::sleep_until(target);
      if (opt.heartbeat_s > 0.0) {
        const auto now = std::chrono::steady_clock::now();
        if (std::chrono::duration<double>(now - last_heartbeat).count() >=
            opt.heartbeat_s) {
          if (!client.send_heartbeat()) {
            std::fprintf(stderr, "error: %s\n", client.error().c_str());
            return 1;
          }
          last_heartbeat = now;
        }
      }
    }
    const std::uint16_t handle = handle_of[merged[base].server];
    bool sent;
    if (opt.format == "raw") {
      sent = client.send_records(
          handle, std::span<const trace::RequestRecord>(&merged[base],
                                                        end - base));
    } else {
      const trace::RequestLog chunk(merged.begin() + base,
                                    merged.begin() + end);
      const std::string bytes = opt.format == "v1"
                                    ? trace::encode_request_log_bin(chunk)
                                    : trace::encode_request_log_v2(chunk);
      sent = client.send_encoded(handle, bytes);
    }
    if (!sent) {
      std::fprintf(stderr, "error: %s\n", client.error().c_str());
      return 1;
    }
    ++frames;
    base = end;
  }

  // BYE each stream in HELLO order, then half-close and wait for the daemon
  // to process everything (it closes once our queues are drained).
  for (const auto& [server, handle] : handle_of) {
    if (!client.send_bye(handle)) {
      std::fprintf(stderr, "error: %s\n", client.error().c_str());
      return 1;
    }
  }
  if (!client.finish()) {
    std::fprintf(stderr, "error: server rejected the replay: %s\n",
                 client.error().c_str());
    return 1;
  }
  std::printf("sent %zu records in %llu frames across %zu streams to %s\n",
              merged.size(), static_cast<unsigned long long>(frames),
              by_server.size(), opt.connect.c_str());
  return 0;
}
