// Microbenchmarks of the analysis pipeline itself (google-benchmark): the
// paper's method must keep up with production trace volumes, so measure the
// per-record cost of load integration, throughput normalization, N*
// estimation, and the full detector.
#include <benchmark/benchmark.h>

#include "core/detector.h"
#include "core/fused_sweep.h"
#include "trace/reconstructor.h"
#include "trace/request_columns.h"
#include "util/rng.h"

namespace {

using namespace tbd;
using namespace tbd::literals;

// Synthetic request log: `n` requests with exponential service around 500us
// and Poisson-ish arrivals over `horizon_s` seconds.
std::vector<trace::RequestRecord> synth_log(std::size_t n, double horizon_s,
                                            std::uint64_t seed) {
  Rng rng{seed};
  std::vector<trace::RequestRecord> log;
  log.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double at = rng.uniform(0.0, horizon_s * 1e6);
    const double service = rng.exponential(500.0);
    trace::RequestRecord r;
    r.server = 0;
    r.class_id = static_cast<trace::ClassId>(rng.uniform_index(8));
    r.arrival = TimePoint::from_micros(static_cast<std::int64_t>(at));
    r.departure =
        TimePoint::from_micros(static_cast<std::int64_t>(at + service));
    log.push_back(r);
  }
  return log;
}

core::ServiceTimeTable synth_table() {
  std::vector<double> us;
  for (int c = 0; c < 8; ++c) us.push_back(200.0 + 100.0 * c);
  return core::ServiceTimeTable{us};
}

void BM_LoadCalculation(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto log = synth_log(n, 60.0, 1);
  const auto spec = core::IntervalSpec::over(
      TimePoint::origin(), TimePoint::origin() + 60_s, 50_ms);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::compute_load(log, spec));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_LoadCalculation)->Arg(10'000)->Arg(100'000)->Arg(1'000'000);

void BM_ThroughputNormalization(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto log = synth_log(n, 60.0, 2);
  const auto table = synth_table();
  const auto spec = core::IntervalSpec::over(
      TimePoint::origin(), TimePoint::origin() + 60_s, 50_ms);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::compute_throughput(log, spec, table, core::ThroughputOptions{}));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ThroughputNormalization)->Arg(100'000)->Arg(1'000'000);

// The fused single pass must beat BM_LoadCalculation + BM_ThroughputNormalization
// at the same record count (it traverses the record array once).
void BM_FusedLoadThroughput(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto log = synth_log(n, 60.0, 2);
  const auto table = synth_table();
  const auto spec = core::IntervalSpec::over(
      TimePoint::origin(), TimePoint::origin() + 60_s, 50_ms);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::compute_load_throughput(
        log, spec, table, core::ThroughputOptions{}));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FusedLoadThroughput)->Arg(100'000)->Arg(1'000'000);

// Same fused sweep over the columnar (SoA) layout: only the two timestamp
// columns and the class column stream through cache, so the per-record cost
// should sit well below the AoS row above.
void BM_FusedLoadThroughputColumns(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto columns =
      trace::RequestColumns::from_records(synth_log(n, 60.0, 2));
  const auto table = synth_table();
  const auto spec = core::IntervalSpec::over(
      TimePoint::origin(), TimePoint::origin() + 60_s, 50_ms);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::compute_load_throughput(
        columns.view(), spec, table, core::ThroughputOptions{}));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FusedLoadThroughputColumns)->Arg(100'000)->Arg(1'000'000);

void BM_CongestionPointEstimation(benchmark::State& state) {
  const auto samples = static_cast<std::size_t>(state.range(0));
  Rng rng{3};
  std::vector<double> load, tput;
  for (std::size_t i = 0; i < samples; ++i) {
    const double l = rng.uniform(0.0, 40.0);
    load.push_back(l);
    tput.push_back(std::min(l, 10.0) * 100.0 * rng.gamma(25.0, 0.04));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::estimate_congestion_point(load, tput));
  }
}
BENCHMARK(BM_CongestionPointEstimation)->Arg(3600)->Arg(36'000);

void BM_FullDetector(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto log = synth_log(n, 60.0, 4);
  const auto table = synth_table();
  const auto spec = core::IntervalSpec::over(
      TimePoint::origin(), TimePoint::origin() + 60_s, 50_ms);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::detect_bottlenecks(log, spec, table));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FullDetector)->Arg(100'000)->Arg(1'000'000);

void BM_ServiceTimeEstimation(benchmark::State& state) {
  const auto log = synth_log(static_cast<std::size_t>(state.range(0)), 60.0, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::estimate_service_times(log));
  }
}
BENCHMARK(BM_ServiceTimeEstimation)->Arg(100'000);

void BM_TraceReconstruction(benchmark::State& state) {
  // Synthetic two-hop transactions: client->A->B, sequential, pooled conns.
  const auto txns = static_cast<std::size_t>(state.range(0));
  std::vector<trace::Message> msgs;
  std::uint64_t visit = 1;
  for (std::size_t i = 0; i < txns; ++i) {
    const auto base = static_cast<std::int64_t>(i * 1000);
    const std::uint32_t conn_a = 100 + static_cast<std::uint32_t>(i % 64);
    const std::uint32_t conn_b = 200 + static_cast<std::uint32_t>(i % 64);
    const std::uint64_t va = visit++;
    const std::uint64_t vb = visit++;
    msgs.push_back({TimePoint::from_micros(base), 0, 1, conn_a,
                    trace::MessageKind::kRequest, 0, 0, i + 1, va, 0});
    msgs.push_back({TimePoint::from_micros(base + 100), 1, 2, conn_b,
                    trace::MessageKind::kRequest, 0, 0, i + 1, vb, va});
    msgs.push_back({TimePoint::from_micros(base + 300), 2, 1, conn_b,
                    trace::MessageKind::kResponse, 0, 0, i + 1, vb, va});
    msgs.push_back({TimePoint::from_micros(base + 400), 1, 0, conn_a,
                    trace::MessageKind::kResponse, 0, 0, i + 1, va, 0});
  }
  for (auto _ : state) {
    trace::TraceReconstructor rec;
    rec.process(msgs);
    benchmark::DoNotOptimize(rec.visits().size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(msgs.size()));
}
BENCHMARK(BM_TraceReconstruction)->Arg(10'000)->Arg(100'000);

}  // namespace

BENCHMARK_MAIN();
