// Engine hot-path microbenchmark: raw events/second through sim::Engine
// under the three patterns the simulator actually produces, recorded into
// bench_out/bench_summary.json so successive PRs can track the trajectory.
//
//   chain    an event schedules its successor (txn flow, think timers)
//   churn    schedule + cancel + reschedule (PS servers re-arming their
//            "next completion" on every arrival/departure/clock change)
//   periodic PeriodicTask re-arming (samplers, SpeedStep governor loop)
//
// All three are single-Engine, single-thread by construction — this is the
// per-run cost the sweep parallelism multiplies, so the number reported is
// events/sec on ONE core.
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "sim/engine.h"

using namespace tbd;
using namespace tbd::literals;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// An event that keeps rescheduling itself until `remaining` hits zero.
std::uint64_t run_chain(sim::Engine& engine, std::uint64_t events) {
  std::uint64_t remaining = events;
  std::function<void()> step = [&] {
    if (--remaining > 0) engine.schedule_after(1_us, step);
  };
  engine.schedule_after(1_us, step);
  engine.run_all();
  return engine.events_executed();
}

// The PS-server pattern: each "arrival" cancels the pending completion and
// schedules a fresh one, so half the scheduled events die cancelled.
std::uint64_t run_churn(sim::Engine& engine, std::uint64_t rounds) {
  std::uint64_t remaining = rounds;
  sim::EventHandle completion;
  std::function<void()> arrive = [&] {
    engine.cancel(completion);
    completion = engine.schedule_after(10_us, [] {});
    if (--remaining > 0) engine.schedule_after(1_us, arrive);
  };
  engine.schedule_after(1_us, arrive);
  engine.run_all();
  return engine.events_executed();
}

std::uint64_t run_periodic(sim::Engine& engine, int tasks,
                           Duration horizon) {
  std::vector<std::unique_ptr<sim::PeriodicTask>> running;
  running.reserve(static_cast<std::size_t>(tasks));
  for (int t = 0; t < tasks; ++t) {
    running.push_back(std::make_unique<sim::PeriodicTask>(
        engine, TimePoint::origin() + Duration::micros(t + 1), 100_us,
        [](TimePoint) {}));
  }
  engine.run_until(TimePoint::origin() + horizon);
  return engine.events_executed();
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = benchx::BenchArgs::parse(argc, argv);
  const std::uint64_t scale = args.full ? 5'000'000 : 1'000'000;

  benchx::print_header("Engine microbenchmark: events/second, single run");
  benchx::BenchSummary summary{"engine_micro"};

  double total_events = 0.0;
  double total_wall = 0.0;
  struct Case {
    const char* name;
    std::uint64_t events;
    double wall_s;
  };
  std::vector<Case> cases;

  auto publish_engine = [](const sim::Engine& engine) {
    auto& reg = obs::Registry::global();
    const auto& st = engine.stats();
    reg.counter("tbd_engine_events_total").add(st.executed);
    reg.counter("tbd_engine_events_scheduled_total").add(st.scheduled);
    reg.counter("tbd_engine_events_cancelled_total").add(st.cancelled);
    reg.gauge("tbd_engine_heap_high_water")
        .update_max(static_cast<double>(st.heap_high_water));
  };
  {
    TBD_SPAN("engine_micro.chain");
    sim::Engine engine;
    const auto t0 = std::chrono::steady_clock::now();
    const auto n = run_chain(engine, scale);
    cases.push_back({"chain", n, seconds_since(t0)});
    publish_engine(engine);
  }
  {
    TBD_SPAN("engine_micro.churn");
    sim::Engine engine;
    const auto t0 = std::chrono::steady_clock::now();
    const auto n = run_churn(engine, scale / 2);
    cases.push_back({"churn", n, seconds_since(t0)});
    publish_engine(engine);
  }
  {
    TBD_SPAN("engine_micro.periodic");
    sim::Engine engine;
    const auto t0 = std::chrono::steady_clock::now();
    const auto n = run_periodic(engine, 64,
                                Duration::micros(static_cast<std::int64_t>(
                                    scale / 64 * 100)));
    cases.push_back({"periodic", n, seconds_since(t0)});
    publish_engine(engine);
  }

  std::printf("  %-10s %-14s %-10s %-14s\n", "pattern", "events", "wall[s]",
              "events/sec");
  for (const auto& c : cases) {
    const double rate = static_cast<double>(c.events) / c.wall_s;
    std::printf("  %-10s %-14llu %-10.3f %-14.3g\n", c.name,
                static_cast<unsigned long long>(c.events), c.wall_s, rate);
    summary.set(std::string{"events_per_s_"} + c.name, rate);
    total_events += static_cast<double>(c.events);
    total_wall += c.wall_s;
  }
  const double overall = total_events / total_wall;
  std::printf("  %-10s %-14.0f %-10.3f %-14.3g\n", "ALL", total_events,
              total_wall, overall);
  summary.set("engine_events", total_events);
  summary.set("engine_events_per_s", overall);
  summary.finish();
  benchx::finish_observability(args, "bench_engine_micro",
                               {{"scale", std::to_string(scale)}});
  return 0;
}
