// Baseline comparison (Sections I, II-B, V):
//
//  1. Detection: fine-grained 50 ms load/throughput analysis vs the
//     1 s utilization-threshold detector (sysstat-style), scored against the
//     ground-truth stop-the-world GC log. The coarse detector misses the
//     sub-second freezes; the fine-grained detector catches them.
//  2. Monitoring cost: the sampling-overhead model at the paper's quoted
//     points vs passive network tracing (~0 server overhead).
//  3. Prediction: exact MVA (Urgaonkar-style) tracks mean throughput but is
//     blind to the response-time tail the transient bottlenecks create.
#include <cstdio>

#include "app/sweep.h"
#include "baseline/coarse_detector.h"
#include "baseline/mva.h"
#include "bench_util.h"
#include "core/detector.h"
#include "util/csv.h"
#include "util/thread_pool.h"
#include "workload/browse_mix.h"

using namespace tbd;
using namespace tbd::literals;

int main(int argc, char** argv) {
  const auto args = benchx::BenchArgs::parse(argc, argv);
  const Duration duration = args.run_duration(60_s);

  benchx::print_header("Baselines: coarse sampling, sampler overhead, MVA");
  benchx::BenchSummary summary{"baseline_comparison"};

  // ---- 1. detection recall ---------------------------------------------------
  // WL well below the knee, client bursts off: GC freezes are TRANSIENT
  // events against a calm sub-saturated baseline — exactly the regime where
  // 1s averages hide them. (Near or past the knee even a coarse detector
  // trivially fires every second.)
  app::ExperimentConfig cfg;
  cfg.workload = 8000;
  cfg.warmup = 10_s;
  cfg.duration = duration;
  cfg.seed = 2023;
  cfg.clients.bursts_enabled = false;
  cfg.gc = transient::jdk15_config();  // serial GC = ground-truth bottlenecks
  // Calibration and the measurement run are independent simulations —
  // overlap them on the pool.
  std::vector<core::ServiceTimeTable> tables;
  app::ExperimentResult result;
  shared_pool().parallel_for_indexed(2, [&](std::size_t task) {
    if (task == 0) {
      tables = app::calibrate_service_times(cfg);
    } else {
      result = app::run_experiment(cfg);
    }
  });
  const int app1 = result.server_index_of(ntier::TierKind::kApp, 0);

  // Ground truth: the stop-the-world windows of app1 (major pauses freeze the
  // server long enough to congest it; minors likewise at WL 14,000).
  std::vector<core::TimeWindow> truth;
  for (const auto& e : result.gc_logs[0]) {
    if (e.start >= result.window_start && e.end <= result.window_end) {
      truth.push_back(core::TimeWindow{e.start, e.end});
    }
  }

  const auto spec =
      core::IntervalSpec::over(result.window_start, result.window_end, 50_ms);
  const auto fine = core::detect_bottlenecks(
      result.logs[static_cast<std::size_t>(app1)], spec,
      tables[static_cast<std::size_t>(app1)]);
  const auto fine_report = baseline::score_detector(
      baseline::detect_from_fine_grained(fine), truth);

  const auto& util = result.util[static_cast<std::size_t>(app1)];
  const auto coarse = baseline::detect_from_utilization(
      util, TimePoint::origin(), result.util_period, 0.95);
  // Clip the coarse verdicts to the measurement window for a fair fight.
  baseline::DetectorOutput coarse_window;
  coarse_window.spec = core::IntervalSpec::over(result.window_start,
                                                result.window_end, 1_s);
  for (std::size_t i = 0; i < coarse_window.spec.count; ++i) {
    const auto global = static_cast<std::size_t>(
        (coarse_window.spec.interval_start(i).micros()) / 1'000'000);
    coarse_window.flagged.push_back(global < coarse.flagged.size() &&
                                    coarse.flagged[global]);
  }
  const auto coarse_report = baseline::score_detector(coarse_window, truth);

  std::printf("  ground-truth GC freezes in window: %zu\n", truth.size());
  std::printf("  %-26s %-10s %-10s\n", "detector", "recall", "precision");
  std::printf("  %-26s %-10.2f %-10.2f\n", "fine-grained 50ms (ours)",
              fine_report.recall(), fine_report.precision());
  std::printf("  %-26s %-10.2f %-10.2f\n", "1s utilization >= 95%",
              coarse_report.recall(), coarse_report.precision());

  // ---- 2. monitoring overhead -------------------------------------------------
  std::printf("\n  sampling-overhead model (paper: 6%% @100ms, 12%% @20ms):\n");
  std::printf("  %-12s %-10s\n", "interval", "overhead");
  for (const Duration t : {20_ms, 50_ms, 100_ms, 500_ms, 1_s}) {
    std::printf("  %-12s %.1f%%\n", t.to_string().c_str(),
                100.0 * baseline::sampling_overhead_fraction(t));
  }
  std::printf("  passive network tracing: ~0%% on the monitored servers\n");

  // ---- 3. MVA vs simulation ----------------------------------------------------
  const auto classes = workload::rubbos_browse_mix();
  baseline::MvaModel model;
  const double q = workload::mean_queries_per_page(classes);
  model.stations = {
      {"web", workload::mean_web_demand(classes) / 1e6 / 2.0},
      {"app", workload::mean_app_demand(classes) / 1e6 / 2.0},
      {"mw", workload::mean_mw_demand_per_page(classes) / 1e6 / 2.0},
      {"db", workload::mean_db_demand_per_page(classes) / 1e6 / 2.0},
  };
  model.delay_s = (2.0 + 2.0 + 4.0 * q) * 150e-6;  // wire latencies per page
  model.think_s = 7.0;

  std::printf("\n  MVA vs simulation (SpeedStep on, the Figure 2 config):\n");
  std::printf("  %-8s %-12s %-12s %-12s %-12s %-14s\n", "WL", "X_mva",
              "X_sim", "R_mva[s]", "R_sim[s]", ">2s sim[%]");
  const std::vector<int> workloads{2000, 6000, 10000, 14000};
  std::vector<app::ExperimentConfig> sim_configs;
  for (int wl : workloads) {
    app::ExperimentConfig sim_cfg;
    sim_cfg.workload = wl;
    sim_cfg.warmup = 10_s;
    sim_cfg.duration = args.run_duration(30_s);
    sim_cfg.seed = 2024;
    sim_cfg.speedstep_on_db = true;
    sim_configs.push_back(sim_cfg);
  }
  const auto sims = app::run_sweep(sim_configs);
  std::vector<double> wl_col, xm_col, xs_col, rm_col, rs_col, tail_col;
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    const int wl = workloads[i];
    const auto mva = baseline::solve_mva(model, wl);
    const auto& sim = sims[i];
    const double tail = 100.0 * sim.fraction_rt_above(2_s);
    std::printf("  %-8d %-12.0f %-12.0f %-12.3f %-12.3f %-14.2f\n", wl,
                mva.throughput, sim.goodput(), mva.response_time_s,
                sim.mean_rt_s(), tail);
    wl_col.push_back(wl);
    xm_col.push_back(mva.throughput);
    xs_col.push_back(sim.goodput());
    rm_col.push_back(mva.response_time_s);
    rs_col.push_back(sim.mean_rt_s());
    tail_col.push_back(tail);
  }
  CsvWriter::write_columns(
      benchx::out_dir() + "/baseline_mva.csv",
      {"workload", "x_mva", "x_sim", "r_mva_s", "r_sim_s", "pct_over_2s_sim"},
      {wl_col, xm_col, xs_col, rm_col, rs_col, tail_col});

  char buf[96];
  std::snprintf(buf, sizeof buf, "fine %.2f vs coarse %.2f",
                fine_report.recall(), coarse_report.recall());
  benchx::print_expectation("transient-bottleneck recall",
                            "coarse sampling cannot see them", buf);
  std::snprintf(buf, sizeof buf, "MVA predicts 0%%, sim shows %.1f%% at WL14k",
                tail_col.back());
  benchx::print_expectation("response-time tail",
                            "MVA blind to transient-bottleneck tail", buf);
  summary.set("sweep_points", static_cast<double>(sims.size()));
  summary.set("engine_events", static_cast<double>(result.engine_events));
  return 0;
}
