#include "bench_util.h"

#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <sstream>

#include "util/csv.h"
#include "util/thread_pool.h"

namespace tbd::benchx {

BenchArgs BenchArgs::parse(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) args.full = true;
  }
  return args;
}

std::string out_dir() {
  static const std::string dir = [] {
    const std::string d = "bench_out";
    ensure_directory(d);
    return d;
  }();
  return dir;
}

void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("  %s\n", title.c_str());
  std::printf("================================================================\n");
}

void print_expectation(const std::string& what, const std::string& paper,
                       const std::string& measured) {
  std::printf("  %-46s paper: %-22s measured: %s\n", what.c_str(),
              paper.c_str(), measured.c_str());
}

namespace {

// Splits a JSON object's top level into name -> raw value text. Only needs
// to survive what this file writes (string keys, flat object values with
// numeric fields), but tracks strings and nesting so hand edits don't break
// the merge; on any malformed input the file is simply rewritten fresh.
std::map<std::string, std::string> parse_top_level(const std::string& text) {
  std::map<std::string, std::string> entries;
  std::size_t i = text.find('{');
  if (i == std::string::npos) return entries;
  ++i;
  while (i < text.size()) {
    const std::size_t key_open = text.find('"', i);
    if (key_open == std::string::npos) break;
    const std::size_t key_close = text.find('"', key_open + 1);
    if (key_close == std::string::npos) break;
    const std::string key = text.substr(key_open + 1, key_close - key_open - 1);
    const std::size_t colon = text.find(':', key_close);
    if (colon == std::string::npos) break;
    std::size_t v = colon + 1;
    while (v < text.size() && std::isspace(static_cast<unsigned char>(text[v]))) ++v;
    if (v >= text.size() || text[v] != '{') break;
    int depth = 0;
    bool in_string = false;
    std::size_t end = v;
    for (; end < text.size(); ++end) {
      const char c = text[end];
      if (in_string) {
        if (c == '\\') ++end;
        else if (c == '"') in_string = false;
      } else if (c == '"') {
        in_string = true;
      } else if (c == '{') {
        ++depth;
      } else if (c == '}') {
        if (--depth == 0) break;
      }
    }
    if (end >= text.size()) break;
    entries[key] = text.substr(v, end - v + 1);
    i = end + 1;
  }
  return entries;
}

std::string format_number(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace

BenchSummary::BenchSummary(std::string bench_name)
    : name_{std::move(bench_name)},
      started_{std::chrono::steady_clock::now()} {}

void BenchSummary::set(const std::string& key, double value) {
  metrics_[key] = value;
}

void BenchSummary::finish() {
  if (finished_) return;
  finished_ = true;
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started_)
          .count();

  const std::string path = out_dir() + "/bench_summary.json";
  std::map<std::string, std::string> entries;
  if (std::ifstream in{path}) {
    std::ostringstream buf;
    buf << in.rdbuf();
    entries = parse_top_level(buf.str());
  }

  std::map<std::string, double> fields = metrics_;
  fields["wall_s"] = wall_s;
  fields["threads"] = ThreadPool::default_thread_count();
  std::string entry = "{";
  for (auto it = fields.begin(); it != fields.end(); ++it) {
    if (it != fields.begin()) entry += ", ";
    entry += "\"" + it->first + "\": " + format_number(it->second);
  }
  entry += "}";
  entries[name_] = entry;

  std::ofstream out{path, std::ios::trunc};
  out << "{\n";
  for (auto it = entries.begin(); it != entries.end(); ++it) {
    out << "  \"" << it->first << "\": " << it->second;
    out << (std::next(it) == entries.end() ? "\n" : ",\n");
  }
  out << "}\n";
}

BenchSummary::~BenchSummary() { finish(); }

}  // namespace tbd::benchx
