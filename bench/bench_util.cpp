#include "bench_util.h"

#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <sstream>

#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "util/csv.h"
#include "util/thread_pool.h"

namespace tbd::benchx {

BenchArgs BenchArgs::parse(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) {
      args.full = true;
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      args.trace_out = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      args.metrics_out = argv[++i];
    }
  }
  if (!args.trace_out.empty()) obs::Tracer::global().enable();
  return args;
}

void finish_observability(
    const BenchArgs& args, const std::string& tool,
    const std::vector<std::pair<std::string, std::string>>& config) {
  if (args.trace_out.empty() && args.metrics_out.empty()) return;
  auto& registry = obs::Registry::global();
  obs::publish_pool_stats(registry);
  const auto& tracer = obs::Tracer::global();
  if (!args.trace_out.empty() && !tracer.write_chrome_trace(args.trace_out)) {
    std::fprintf(stderr, "warning: cannot write %s\n", args.trace_out.c_str());
  }
  if (!args.metrics_out.empty()) {
    obs::RunInfo info;
    info.tool = tool;
    info.config.emplace_back("full", args.full ? "true" : "false");
    for (const auto& kv : config) info.config.push_back(kv);
    if (!obs::write_run_manifest(args.metrics_out, info, registry, tracer)) {
      std::fprintf(stderr, "warning: cannot write %s\n",
                   args.metrics_out.c_str());
    }
  }
}

std::string out_dir() {
  static const std::string dir = [] {
    const std::string d = "bench_out";
    ensure_directory(d);
    return d;
  }();
  return dir;
}

void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("  %s\n", title.c_str());
  std::printf("================================================================\n");
}

void print_expectation(const std::string& what, const std::string& paper,
                       const std::string& measured) {
  std::printf("  %-46s paper: %-22s measured: %s\n", what.c_str(),
              paper.c_str(), measured.c_str());
}

namespace {

// Splits a JSON object's top level into name -> raw value text. Values may
// be nested objects (bench entries) or scalars (schema_version, git). Only
// needs to survive what this file writes, but tracks strings and nesting so
// hand edits don't break the merge; on any malformed input the file is
// simply rewritten fresh.
std::map<std::string, std::string> parse_top_level(const std::string& text) {
  std::map<std::string, std::string> entries;
  std::size_t i = text.find('{');
  if (i == std::string::npos) return entries;
  ++i;
  while (i < text.size()) {
    const std::size_t key_open = text.find('"', i);
    if (key_open == std::string::npos) break;
    const std::size_t key_close = text.find('"', key_open + 1);
    if (key_close == std::string::npos) break;
    const std::string key = text.substr(key_open + 1, key_close - key_open - 1);
    const std::size_t colon = text.find(':', key_close);
    if (colon == std::string::npos) break;
    std::size_t v = colon + 1;
    while (v < text.size() && std::isspace(static_cast<unsigned char>(text[v]))) ++v;
    if (v >= text.size()) break;
    // Scan the value: a braced object (depth-tracked) or a scalar (up to the
    // next top-level comma / closing brace).
    int depth = 0;
    bool in_string = false;
    std::size_t end = v;
    for (; end < text.size(); ++end) {
      const char c = text[end];
      if (in_string) {
        if (c == '\\') ++end;
        else if (c == '"') in_string = false;
      } else if (c == '"') {
        in_string = true;
      } else if (c == '{' || c == '[') {
        ++depth;
      } else if (c == '}' || c == ']') {
        if (depth == 0) break;  // the object's closing brace after a scalar
        if (--depth == 0 && text[v] == '{') {
          ++end;  // include the object's own closing brace
          break;
        }
      } else if (c == ',' && depth == 0) {
        break;
      }
    }
    std::size_t value_end = end;
    while (value_end > v &&
           std::isspace(static_cast<unsigned char>(text[value_end - 1]))) {
      --value_end;
    }
    if (value_end == v) break;
    entries[key] = text.substr(v, value_end - v);
    i = end + (end < text.size() && text[end] == ',' ? 1 : 0);
    if (end >= text.size() || text[end] == '}') break;
  }
  return entries;
}

std::string format_number(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace

BenchSummary::BenchSummary(std::string bench_name)
    : name_{std::move(bench_name)},
      started_{std::chrono::steady_clock::now()} {}

void BenchSummary::set(const std::string& key, double value) {
  metrics_[key] = value;
}

void BenchSummary::finish() {
  if (finished_) return;
  finished_ = true;
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started_)
          .count();

  const std::string path = out_dir() + "/bench_summary.json";
  std::map<std::string, std::string> entries;
  if (std::ifstream in{path}) {
    std::ostringstream buf;
    buf << in.rdbuf();
    entries = parse_top_level(buf.str());
  }

  std::map<std::string, double> fields = metrics_;
  fields["wall_s"] = wall_s;
  fields["threads"] = ThreadPool::default_thread_count();
  std::string entry = "{";
  for (auto it = fields.begin(); it != fields.end(); ++it) {
    if (it != fields.begin()) entry += ", ";
    entry += "\"" + it->first + "\": " + format_number(it->second);
  }
  entry += "}";
  entries[name_] = entry;

  // Header scalars are rewritten fresh on every merge: the file documents
  // the LAST build that touched it, which is what cross-PR trajectory
  // comparison keys on (schema_version 2 introduced the header; 3 added the
  // "ingest" stage; 4 added the "correctness" harness wall-times; 5 added
  // the columnar SoA ingest and sweep metrics; 6 added the "streaming"
  // live-telemetry overhead stage; 7 added the streaming profiler arm —
  // push_profiled_records_per_s / profiler_overhead_pct / profiler_samples;
  // 8 added the TBDR v2 segment-log arms — v2 size/compression ratio plus
  // warm and cold load throughput for v1 and v2).
  entries.erase("schema_version");
  entries.erase("git");

  std::ofstream out{path, std::ios::trunc};
  out << "{\n";
  out << "  \"schema_version\": 8,\n";
  out << "  \"git\": \"" << obs::git_describe() << "\",\n";
  for (auto it = entries.begin(); it != entries.end(); ++it) {
    out << "  \"" << it->first << "\": " << it->second;
    out << (std::next(it) == entries.end() ? "\n" : ",\n");
  }
  out << "}\n";
}

BenchSummary::~BenchSummary() { finish(); }

}  // namespace tbd::benchx
