#include "bench_util.h"

#include <cstdio>
#include <cstring>

#include "util/csv.h"

namespace tbd::benchx {

BenchArgs BenchArgs::parse(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) args.full = true;
  }
  return args;
}

std::string out_dir() {
  static const std::string dir = [] {
    const std::string d = "bench_out";
    ensure_directory(d);
    return d;
  }();
  return dir;
}

void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("  %s\n", title.c_str());
  std::printf("================================================================\n");
}

void print_expectation(const std::string& what, const std::string& paper,
                       const std::string& measured) {
  std::printf("  %-46s paper: %-22s measured: %s\n", what.c_str(),
              paper.c_str(), measured.c_str());
}

}  // namespace tbd::benchx
