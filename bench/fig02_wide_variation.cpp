// Figure 2 (a,b,c): wide-range response time variation far below the
// system's maximum throughput, on 1L/2S/1L/2S with SpeedStep enabled on the
// MySQL hosts (the configuration Section IV-C later diagnoses).
//
//  (a) throughput and mean response time vs workload 1,000..16,000:
//      throughput grows ~linearly to a knee around WL 11,000 then flattens;
//      mean RT starts climbing well before the knee.
//  (b) percentage of requests with RT > 2 s vs workload: grows from ~WL 6,000.
//  (c) response-time histogram at WL 8,000: long-tail, bi-modal (the second
//      mode above 3 s comes from TCP retransmissions at the web tier).
#include <cstdio>
#include <vector>

#include "app/sweep.h"
#include "bench_util.h"
#include "util/csv.h"

using namespace tbd;
using namespace tbd::literals;

namespace {

app::ExperimentConfig fig2_config(int workload, Duration duration) {
  app::ExperimentConfig cfg;
  cfg.workload = workload;
  cfg.warmup = 10_s;
  cfg.duration = duration;
  cfg.seed = 20130613;
  cfg.speedstep_on_db = true;  // the root cause of this figure's behaviour
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = benchx::BenchArgs::parse(argc, argv);
  const Duration duration = args.run_duration(40_s);

  benchx::print_header(
      "Figure 2: response time variation below max throughput (SpeedStep on)");
  benchx::BenchSummary summary{"fig02_wide_variation"};

  // The whole WL axis runs as one parallel sweep; results come back in
  // input order, so the printed rows and the CSV are identical to the
  // serial (TBD_THREADS=1) run.
  std::vector<int> workloads;
  std::vector<app::ExperimentConfig> configs;
  for (int wl = 1000; wl <= 16000; wl += 1000) {
    workloads.push_back(wl);
    configs.push_back(fig2_config(wl, duration));
  }
  const auto results = app::run_sweep(configs);

  std::vector<double> wl_col, tput_col, rt_col, over2s_col;
  std::printf("  %-8s %-12s %-12s %-10s %-8s\n", "WL", "tput[p/s]",
              "mean RT[s]", ">2s[%]", "retrans");
  double knee_tput = 0.0;
  double engine_events = 0.0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const int wl = workloads[i];
    const auto& result = results[i];
    const double tput = result.goodput();
    const double rt = result.mean_rt_s();
    const double over2 = 100.0 * result.fraction_rt_above(2_s);
    std::printf("  %-8d %-12.1f %-12.3f %-10.2f %-8llu\n", wl, tput, rt, over2,
                static_cast<unsigned long long>(result.retransmissions));
    wl_col.push_back(wl);
    tput_col.push_back(tput);
    rt_col.push_back(rt);
    over2s_col.push_back(over2);
    knee_tput = std::max(knee_tput, tput);
    engine_events += static_cast<double>(result.engine_events);
  }
  CsvWriter::write_columns(benchx::out_dir() + "/fig02ab_sweep.csv",
                           {"workload", "throughput_pps", "mean_rt_s",
                            "pct_over_2s"},
                           {wl_col, tput_col, rt_col, over2s_col});

  // ---- (c): RT distribution at WL 8,000 ------------------------------------
  // Identical config + seed to the sweep's WL 8,000 point, so its result is
  // reused instead of re-simulated.
  const auto& result = results[7];
  const std::vector<double> edges{0.0, 0.1, 0.5, 1.0, 1.5,
                                  2.0, 2.5, 3.0, 3.5, 4.0, 1e9};
  metrics::ResponseCollector collector;
  for (const auto& p : result.pages) collector.record(p);
  const auto counts = collector.rt_histogram(result.window_start,
                                             result.window_end, edges);
  std::printf("\n  RT distribution at WL 8,000 (Figure 2c):\n");
  std::vector<double> edge_col, count_col;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    const char* label = b + 1 < counts.size() ? "<" : ">";
    std::printf("    %s%.1fs: %zu\n", label,
                b + 1 < counts.size() ? edges[b + 1] : edges[b], counts[b]);
    edge_col.push_back(edges[b]);
    count_col.push_back(static_cast<double>(counts[b]));
  }
  CsvWriter::write_columns(benchx::out_dir() + "/fig02c_rt_histogram.csv",
                           {"bin_lower_s", "count"}, {edge_col, count_col});

  // Bi-modal: a fast mode under 0.5 s plus a retransmission mode above 3 s.
  std::size_t slow_mass = 0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    if (edges[b] >= 3.0) slow_mass += counts[b];
  }
  const bool bimodal = counts.front() > 0 && slow_mass > 0;
  benchx::print_expectation("knee location",
                            "linear to ~WL 11,000 then flat", "see sweep");
  benchx::print_expectation(">2s requests grow before knee", "from ~WL 6,000",
                            "see sweep");
  benchx::print_expectation("WL 8,000 distribution", "long-tail, bi-modal",
                            bimodal ? "bi-modal (mass in first and >3.5s bins)"
                                    : "NOT bi-modal");
  summary.set("sweep_points", static_cast<double>(results.size()));
  summary.set("engine_events", engine_events);
  return 0;
}
