// Ablations of the design choices DESIGN.md calls out:
//
//  A1  Work-unit throughput normalization (Section III-B) vs straightforward
//      request counting: under the mixed-class workload the normalized main
//      sequence is tighter (lower residual CV), which is what makes the N*
//      walk stable.
//  A2  Trace-reconstruction parent pick: LIFO (most recently ready) vs FIFO
//      (least recently ready). The LIFO heuristic encodes "the request that
//      just got its result issues the next query" and should win.
//  A3  Automatic interval-length selection (our implementation of the
//      paper's future work) across workloads: the chosen width shrinks as
//      traffic density grows.
#include <cstdio>

#include "app/experiment.h"
#include "bench_util.h"
#include "core/detector.h"
#include "core/interval_selection.h"
#include "trace/reconstructor.h"
#include "util/csv.h"
#include "util/thread_pool.h"

using namespace tbd;
using namespace tbd::literals;

int main(int argc, char** argv) {
  const auto args = benchx::BenchArgs::parse(argc, argv);
  const Duration duration = args.run_duration(30_s);

  benchx::print_header("Ablations: normalization, parent-pick, auto interval");
  benchx::BenchSummary summary{"ablations"};

  // Shared run: WL 10,000 with SpeedStep (rich congestion structure).
  app::ExperimentConfig cfg;
  cfg.workload = 10000;
  cfg.warmup = 10_s;
  cfg.duration = duration;
  cfg.seed = 777;
  cfg.speedstep_on_db = true;
  cfg.record_messages = true;
  // Calibration and the instrumented run are independent simulations —
  // overlap them on the pool.
  std::vector<core::ServiceTimeTable> tables;
  app::ExperimentResult result;
  shared_pool().parallel_for_indexed(2, [&](std::size_t task) {
    if (task == 0) {
      tables = app::calibrate_service_times(cfg);
    } else {
      result = app::run_experiment(cfg);
    }
  });
  const int db1 = result.server_index_of(ntier::TierKind::kDb, 0);
  const auto& log = result.logs[static_cast<std::size_t>(db1)];
  const auto& table = tables[static_cast<std::size_t>(db1)];
  const auto spec =
      core::IntervalSpec::over(result.window_start, result.window_end, 50_ms);

  // ---- A1: normalization --------------------------------------------------
  // (a) On the production mix, where per-class DB demands span ~6x: the
  // composition bias that normalization removes competes with the variance
  // it adds (long requests carry quadratic weight), so the net effect on
  // main-sequence tightness is an empirical finding, not a foregone win.
  const auto load = core::compute_load(log, spec);
  core::ThroughputOptions norm;
  core::ThroughputOptions raw;
  raw.mode = core::ThroughputMode::kRequestsCompleted;
  const auto tput_norm = core::compute_throughput(log, spec, table, norm);
  const auto tput_raw = core::compute_throughput(log, spec, table, raw);
  const double blur_norm = core::main_sequence_blur(load, tput_norm, 25);
  const double blur_raw = core::main_sequence_blur(load, tput_raw, 25);
  std::printf("\n  A1a RUBBoS mix residual CV: normalized=%.3f  "
              "straightforward=%.3f\n",
              blur_norm, blur_raw);

  // (b) The Figure 7 regime — two classes with a 10x demand spread and a
  // composition that drifts between intervals — is where normalization is
  // indispensable: straightforward counting decorrelates from load.
  {
    Rng rng{4242};
    std::vector<trace::RequestRecord> synth;
    const double horizon = 60e6;
    double server_free = 0.0;
    std::int64_t t = 0;
    while (t < static_cast<std::int64_t>(horizon)) {
      // Composition drifts: alternating 400ms phases favour one class.
      const bool heavy_phase = (t / 400'000) % 2 == 0;
      const bool heavy = rng.bernoulli(heavy_phase ? 0.75 : 0.1);
      const double mean_service = heavy ? 30'000.0 : 3'000.0;
      t += static_cast<std::int64_t>(rng.exponential(12'000.0)) + 1;
      const double service = mean_service * rng.gamma(16.0, 1.0 / 16.0);
      const double start = std::max(static_cast<double>(t), server_free);
      server_free = start + service;
      trace::RequestRecord r;
      r.server = 0;
      r.class_id = heavy ? 0 : 1;
      r.arrival = TimePoint::from_micros(t);
      r.departure =
          TimePoint::from_micros(static_cast<std::int64_t>(server_free));
      synth.push_back(r);
    }
    core::ServiceTimeTable synth_table{{30'000.0, 3'000.0}};
    const auto synth_spec = core::IntervalSpec::over(
        TimePoint::origin(), TimePoint::from_micros(60'000'000), 100_ms);
    const auto synth_load = core::compute_load(synth, synth_spec);
    const auto s_norm =
        core::compute_throughput(synth, synth_spec, synth_table, norm);
    const auto s_raw =
        core::compute_throughput(synth, synth_spec, synth_table, raw);
    const double sblur_norm = core::main_sequence_blur(synth_load, s_norm, 25);
    const double sblur_raw = core::main_sequence_blur(synth_load, s_raw, 25);
    std::printf("  A1b Figure-7 regime (10x spread, drifting mix) residual "
                "CV: normalized=%.3f  straightforward=%.3f\n",
                sblur_norm, sblur_raw);
    benchx::print_expectation("normalization in the Figure-7 regime",
                              "normalized much tighter",
                              sblur_norm < 0.7 * sblur_raw ? "yes" : "NO");
  }

  // ---- A2: reconstruction parent pick ---------------------------------------
  // The three policies replay the same immutable message stream — fan them
  // out across the pool.
  const trace::ParentPick picks[] = {trace::ParentPick::kMostRecentlyReady,
                                     trace::ParentPick::kLeastRecentlyReady,
                                     trace::ParentPick::kExpectedElapsed};
  std::vector<double> accuracy(std::size(picks));
  shared_pool().parallel_for_indexed(accuracy.size(), [&](std::size_t p) {
    trace::TraceReconstructor reconstructor{0, picks[p]};
    reconstructor.process(result.messages);
    accuracy[p] = reconstructor.score_against_truth().edge_accuracy();
  });
  const double acc_lifo = accuracy[0];
  const double acc_fifo = accuracy[1];
  const double acc_learned = accuracy[2];
  std::printf("\n  A2 reconstruction edge accuracy: LIFO=%.4f  FIFO=%.4f  "
              "learned=%.4f\n",
              acc_lifo, acc_fifo, acc_learned);
  benchx::print_expectation(
      "parent-pick policy (PS order)", "FIFO (default) beats LIFO",
      acc_fifo >= acc_lifo ? "yes" : "NO");

  // ---- A3: automatic interval-length selection ------------------------------
  const std::vector<Duration> candidates{20_ms, 50_ms, 100_ms, 250_ms, 1_s};
  std::printf("\n  A3 auto interval selection (db1):\n");
  std::printf("  %-10s %-10s %-12s %-12s %-14s\n", "width", "blur",
              "retention", "intervals", "compl/interval");
  const auto sel = core::choose_interval_length(
      log, result.window_start, result.window_end, table, candidates);
  std::vector<double> w_col, blur_col, ret_col;
  for (const auto& c : sel.candidates) {
    std::printf("  %-10s %-10.3f %-12.2f %-12zu %-14.1f\n",
                c.width.to_string().c_str(), c.blur, c.retention, c.intervals,
                c.mean_completions);
    w_col.push_back(c.width.millis_f());
    blur_col.push_back(c.blur);
    ret_col.push_back(c.retention);
  }
  std::printf("  chosen: %s\n", sel.chosen.to_string().c_str());
  CsvWriter::write_columns(benchx::out_dir() + "/ablation_interval_select.csv",
                           {"width_ms", "blur", "retention"},
                           {w_col, blur_col, ret_col});
  benchx::print_expectation("auto-chosen width", "around the paper's 50ms",
                            sel.chosen.to_string());
  summary.set("engine_events", static_cast<double>(result.engine_events));
  return 0;
}
