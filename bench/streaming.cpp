// bench_streaming: live-detection throughput — the price of watching.
//
// tbd_watch attaches StreamingTelemetry (labeled metrics + NDJSON events)
// to every StreamingDetector it replays into. That adapter must be close to
// free: its callbacks fire per sealed 50 ms interval, not per record, so
// push_batch throughput with telemetry attached should sit within 5% of the
// bare detector. The bare arm is also what a TBD_OBS=OFF build pays —
// that flag only compiles out span scopes, and a detector with no telemetry
// attached touches nothing else in the obs layer.
//
// Four arms over the same synthetic single-server stream:
//
//   * bare       — StreamingDetector alone (the TBD_OBS=OFF equivalent)
//   * metrics    — + StreamingTelemetry into a labeled Registry
//   * events     — + the NDJSON EventLog sink on top of the metrics
//   * profiled   — bare detector with the sampling profiler live at 97 Hz
//                  (CPU mode), the self-observability tax; gated in-binary
//                  at < 1% so a handler regression fails the bench
//
// Every arm is gated on bitwise-identical episodes and per-state seal
// counts against the bare reference before any number is reported. Results
// land in bench_out/bench_summary.json under "streaming".
#include <algorithm>
#include <array>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <span>
#include <sstream>
#include <vector>

#include "bench_util.h"
#include "core/detector.h"
#include "core/streaming_detector.h"
#include "core/streaming_telemetry.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "trace/records.h"
#include "util/rng.h"
#include "util/time.h"

namespace {

using namespace tbd;
using namespace tbd::literals;

// Single-server request stream at ~20k requests/s with exponential service
// around 300us, plus a 100ms stall every 5s of trace time where service
// inflates 50x — enough concurrent residence to push load past N* and
// exercise the episode open/close path, not just interval sealing.
trace::RequestLog synth_stream(std::size_t n, std::uint64_t seed) {
  Rng rng{seed};
  trace::RequestLog log;
  log.reserve(n);
  double t = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    t += rng.exponential(50.0);  // mean inter-arrival 50us = 20k/s
    double service = rng.exponential(300.0);
    if (std::fmod(t, 5e6) < 100'000.0) service *= 50.0;
    trace::RequestRecord r;
    r.server = 0;
    r.class_id = static_cast<trace::ClassId>(rng.uniform_index(8));
    r.arrival = TimePoint::from_micros(static_cast<std::int64_t>(t));
    r.departure =
        TimePoint::from_micros(static_cast<std::int64_t>(t + service));
    r.txn = i + 1;
    log.push_back(r);
  }
  // The streaming contract: departures arrive in order (tbd_watch replays
  // a departure-sorted merge).
  std::stable_sort(log.begin(), log.end(),
                   [](const trace::RequestRecord& a,
                      const trace::RequestRecord& b) {
                     return a.departure < b.departure;
                   });
  return log;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// Best-of-N wall time; scheduling noise on a shared machine is one-sided.
template <typename F>
double best_of(int reps, F&& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (int i = 0; i < reps; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    best = std::min(best, seconds_since(t0));
  }
  return best;
}

struct StreamResult {
  std::vector<core::Episode> episodes;
  std::array<std::size_t, 4> sealed_by_state{};
  std::size_t intervals = 0;
};

bool results_equal(const StreamResult& a, const StreamResult& b) {
  if (a.intervals != b.intervals || a.sealed_by_state != b.sealed_by_state ||
      a.episodes.size() != b.episodes.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.episodes.size(); ++i) {
    if (a.episodes[i].start.micros() != b.episodes[i].start.micros() ||
        a.episodes[i].duration.micros() != b.episodes[i].duration.micros() ||
        std::bit_cast<std::uint64_t>(a.episodes[i].peak_load) !=
            std::bit_cast<std::uint64_t>(b.episodes[i].peak_load) ||
        a.episodes[i].contains_freeze != b.episodes[i].contains_freeze) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = benchx::BenchArgs::parse(argc, argv);
  const std::size_t n = args.full ? 20'000'000 : 5'000'000;
  constexpr std::size_t kChunk = 4096;  // one ingest shard's worth per call

  benchx::print_header("Streaming detection: telemetry overhead on push_batch");
  std::printf("  records: %zu, chunk: %zu\n", n, kChunk);

  benchx::BenchSummary summary{"streaming"};
  summary.set("records", static_cast<double>(n));

  const auto log = synth_stream(n, 42);
  TimePoint t_min = TimePoint::max();
  for (const auto& r : log) t_min = std::min(t_min, r.arrival);

  // Frozen calibration, the tbd_watch way: batch detection fixes N*/TPmax
  // once, then every streaming arm replays against the same result.
  const auto table = core::estimate_service_times(log);
  TimePoint t_max;
  for (const auto& r : log) t_max = std::max(t_max, r.departure);
  const auto spec = core::IntervalSpec::over(t_min, t_max, 50_ms);
  const auto nstar = core::detect_bottlenecks(log, spec, table).nstar;

  core::StreamingDetector::Config config;
  config.width = 50_ms;
  config.lag = 500_ms;

  const std::span<const trace::RequestRecord> records{log};
  const auto replay = [&](core::StreamingDetector& stream) {
    for (std::size_t at = 0; at < records.size(); at += kChunk) {
      stream.push_batch(records.subspan(at, std::min(kChunk,
                                                     records.size() - at)));
    }
    stream.finish();
  };
  const auto harvest = [](const core::StreamingDetector& stream) {
    StreamResult r;
    r.episodes = stream.episodes();
    r.sealed_by_state = stream.sealed_by_state();
    r.intervals = stream.intervals_emitted();
    return r;
  };

  // The arms are interleaved round-robin — a background-load spike then
  // lands on all three, and the per-arm minima stay comparable. A split
  // best_of per arm proved ~10% noisy on a shared machine at these ~0.1s
  // run lengths.
  const int kReps = args.full ? 15 : 9;
  StreamResult bare_result;
  StreamResult metrics_result;
  StreamResult events_result;
  StreamResult profiled_result;
  std::size_t events_emitted = 0;
  std::uint64_t profiler_samples = 0;
  bool profiler_available = true;
  double t_bare = std::numeric_limits<double>::infinity();
  double t_metrics = t_bare;
  double t_events = t_bare;
  double t_profiled = t_bare;
  for (int rep = 0; rep < kReps; ++rep) {
    t_bare = std::min(t_bare, best_of(1, [&] {
      core::StreamingDetector stream{t_min, config, nstar, table};
      replay(stream);
      bare_result = harvest(stream);
    }));
    t_metrics = std::min(t_metrics, best_of(1, [&] {
      obs::Registry registry;
      core::StreamingDetector stream{t_min, config, nstar, table};
      core::StreamingTelemetry telemetry{stream, {"server0"}, registry,
                                         nullptr};
      replay(stream);
      telemetry.add_records(records.size());
      telemetry.sync();
      metrics_result = harvest(stream);
    }));
    t_events = std::min(t_events, best_of(1, [&] {
      obs::Registry registry;
      std::ostringstream sink;
      obs::EventLog events{&sink};
      core::StreamingDetector stream{t_min, config, nstar, table};
      core::StreamingTelemetry telemetry{stream, {"server0"}, registry,
                                         &events};
      replay(stream);
      telemetry.add_records(records.size());
      telemetry.sync();
      events_result = harvest(stream);
      events_emitted = events.events_emitted();
    }));
    // Profiler arm: arm/disarm sit outside the timed region — the cost
    // being measured is the 97 Hz signal + ring-write tax on the hot loop.
    // Under TBD_OBS=OFF start() fails and the arm degrades to re-measuring
    // bare (the gate then passes trivially, which is also the truth).
    {
      auto& profiler = obs::Profiler::global();
      if (!profiler.start(obs::ProfilerOptions())) profiler_available = false;
      t_profiled = std::min(t_profiled, best_of(1, [&] {
        core::StreamingDetector stream{t_min, config, nstar, table};
        replay(stream);
        profiled_result = harvest(stream);
      }));
      if (profiler.running()) {
        profiler.stop();
        profiler_samples += profiler.samples();
      }
    }
  }

  if (!results_equal(bare_result, metrics_result) ||
      !results_equal(bare_result, events_result) ||
      !results_equal(bare_result, profiled_result)) {
    std::fprintf(stderr, "error: telemetry changed the detection — not "
                         "benchmarking a correct implementation\n");
    return 1;
  }
  if (bare_result.episodes.empty()) {
    std::fprintf(stderr, "error: synthetic stream produced no episodes — the "
                         "episode path went unmeasured\n");
    return 1;
  }

  const double nn = static_cast<double>(n);
  const double metrics_pct = (t_metrics / t_bare - 1.0) * 100.0;
  const double events_pct = (t_events / t_bare - 1.0) * 100.0;
  const double profiled_pct = (t_profiled / t_bare - 1.0) * 100.0;
  std::printf("  bare:    %.3fs (%.2fM rec/s, %.1f ns/record)\n", t_bare,
              nn / t_bare / 1e6, t_bare / nn * 1e9);
  std::printf("  metrics: %.3fs (%.2fM rec/s)  %+.2f%%\n", t_metrics,
              nn / t_metrics / 1e6, metrics_pct);
  std::printf("  events:  %.3fs (%.2fM rec/s)  %+.2f%%  (%zu events, "
              "%zu intervals, %zu episodes)\n",
              t_events, nn / t_events / 1e6, events_pct, events_emitted,
              bare_result.intervals, bare_result.episodes.size());
  std::printf("  profiled: %.3fs (%.2fM rec/s)  %+.2f%%  (%llu samples%s)\n",
              t_profiled, nn / t_profiled / 1e6, profiled_pct,
              static_cast<unsigned long long>(profiler_samples),
              profiler_available ? "" : ", profiler unavailable");
  benchx::print_expectation("telemetry overhead on push_batch", "< 5%",
                            std::to_string(metrics_pct) + "%");
  benchx::print_expectation("telemetry + event log overhead", "< 5%",
                            std::to_string(events_pct) + "%");
  benchx::print_expectation("profiler overhead at 97 Hz", "< 1%",
                            std::to_string(profiled_pct) + "%");

  // In-binary gate: the self-observability budget from the start. Minima
  // over interleaved reps make this robust to one-sided scheduling noise.
  if (profiler_available && profiled_pct >= 1.0) {
    std::fprintf(stderr,
                 "error: profiler overhead %.2f%% breaks the 1%% budget\n",
                 profiled_pct);
    return 1;
  }

  summary.set("push_bare_records_per_s", nn / t_bare);
  summary.set("push_bare_ns_per_record", t_bare / nn * 1e9);
  summary.set("push_metrics_records_per_s", nn / t_metrics);
  summary.set("push_events_records_per_s", nn / t_events);
  summary.set("push_profiled_records_per_s", nn / t_profiled);
  summary.set("telemetry_overhead_pct", metrics_pct);
  summary.set("telemetry_events_overhead_pct", events_pct);
  summary.set("profiler_overhead_pct", profiled_pct);
  summary.set("profiler_samples", static_cast<double>(profiler_samples));
  summary.set("intervals", static_cast<double>(bare_result.intervals));
  summary.set("episodes", static_cast<double>(bare_result.episodes.size()));

  summary.finish();
  benchx::finish_observability(args, "bench_streaming");
  return 0;
}
