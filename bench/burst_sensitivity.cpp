// Burstiness sensitivity (the paper's workload premise).
//
// The paper attributes transient bottlenecks to transient events (GC,
// SpeedStep) INTERACTING with "normal bursty workloads" [Mi et al.]. This
// bench quantifies that interaction: at fixed WL 8,000 with SpeedStep
// enabled, sweep the micro-burst intensity from none to strong and report
//   * transient congestion at the DB tier (50 ms detection),
//   * the SLA tail (>2 s pages),
//   * mean throughput (barely moves — bursts are a variance phenomenon).
//
// The same sweep with SpeedStep disabled separates the two factors: without
// the clock-speed mismatch, even strong bursts drain quickly.
#include <cstdio>

#include "app/experiment.h"
#include "bench_util.h"
#include "core/detector.h"
#include "metrics/burstiness.h"
#include "util/csv.h"

using namespace tbd;
using namespace tbd::literals;

int main(int argc, char** argv) {
  const auto args = benchx::BenchArgs::parse(argc, argv);
  const Duration duration = args.run_duration(30_s);

  benchx::print_header(
      "Burstiness sensitivity: bursts x SpeedStep => transient bottlenecks");

  app::ExperimentConfig base;
  base.workload = 8000;
  base.duration = duration;
  base.seed = 616;
  const auto tables = app::calibrate_service_times(base);

  std::printf("  %-12s %-10s %-10s %-9s %-10s %-12s %-10s\n", "burst[%pop]",
              "speedstep", "X[p/s]", "IDC(1s)", ">2s[%]", "dbCong[%]",
              "episodes");
  std::vector<double> frac_col, ss_col, idc_col, tail_col, cong_col;
  for (const bool speedstep : {true, false}) {
    for (const double frac : {0.0, 0.015, 0.03, 0.06}) {
      app::ExperimentConfig cfg = base;
      cfg.speedstep_on_db = speedstep;
      cfg.clients.bursts_enabled = frac > 0.0;
      cfg.clients.burst_fraction = frac;
      const auto result = app::run_experiment(cfg);
      const int db1 = result.server_index_of(ntier::TierKind::kDb, 0);
      const auto spec = core::IntervalSpec::over(result.window_start,
                                                 result.window_end, 50_ms);
      const auto detection = core::detect_bottlenecks(
          result.logs[static_cast<std::size_t>(db1)], spec,
          tables[static_cast<std::size_t>(db1)]);
      const double tail = 100.0 * result.fraction_rt_above(2_s);
      const double cong = 100.0 * detection.congested_fraction();

      // Burstiness of the page-arrival process at the web tier, quantified
      // with the index of dispersion for counts [Mi et al.]: the modulator
      // must raise IDC well above the Poisson baseline of 1.
      std::vector<TimePoint> arrivals;
      const int web = result.server_index_of(ntier::TierKind::kWeb, 0);
      for (const auto& r : result.logs[static_cast<std::size_t>(web)]) {
        arrivals.push_back(r.arrival);
      }
      const double idc = metrics::index_of_dispersion(
          arrivals, result.window_start, result.window_end, 1_s);

      std::printf("  %-12.1f %-10s %-10.0f %-9.1f %-10.2f %-12.1f %-10zu\n",
                  100.0 * frac, speedstep ? "on" : "off", result.goodput(),
                  idc, tail, cong, detection.episodes.size());
      frac_col.push_back(100.0 * frac);
      ss_col.push_back(speedstep ? 1.0 : 0.0);
      idc_col.push_back(idc);
      tail_col.push_back(tail);
      cong_col.push_back(cong);
    }
  }
  CsvWriter::write_columns(
      benchx::out_dir() + "/burst_sensitivity.csv",
      {"burst_pct", "speedstep", "idc_1s", "pct_over_2s", "db_congested_pct"},
      {frac_col, ss_col, idc_col, tail_col, cong_col});

  benchx::print_expectation("bursts without SpeedStep",
                            "drain quickly, small tail", "see table");
  benchx::print_expectation("bursts with SpeedStep",
                            "congestion and tail grow with burst size",
                            "see table");
  return 0;
}
