// Burstiness sensitivity (the paper's workload premise).
//
// The paper attributes transient bottlenecks to transient events (GC,
// SpeedStep) INTERACTING with "normal bursty workloads" [Mi et al.]. This
// bench quantifies that interaction: at fixed WL 8,000 with SpeedStep
// enabled, sweep the micro-burst intensity from none to strong and report
//   * transient congestion at the DB tier (50 ms detection),
//   * the SLA tail (>2 s pages),
//   * mean throughput (barely moves — bursts are a variance phenomenon).
//
// The same sweep with SpeedStep disabled separates the two factors: without
// the clock-speed mismatch, even strong bursts drain quickly.
#include <cstdio>

#include "app/sweep.h"
#include "bench_util.h"
#include "core/detector.h"
#include "metrics/burstiness.h"
#include "util/csv.h"
#include "util/thread_pool.h"

using namespace tbd;
using namespace tbd::literals;

int main(int argc, char** argv) {
  const auto args = benchx::BenchArgs::parse(argc, argv);
  const Duration duration = args.run_duration(30_s);

  benchx::print_header(
      "Burstiness sensitivity: bursts x SpeedStep => transient bottlenecks");
  benchx::BenchSummary summary{"burst_sensitivity"};

  app::ExperimentConfig base;
  base.workload = 8000;
  base.duration = duration;
  base.seed = 616;
  const auto tables = app::calibrate_service_times(base);

  // The 2x4 grid (SpeedStep x burst intensity) runs as one parallel sweep;
  // the per-cell detection + IDC analysis then fans out over the results.
  struct Cell {
    bool speedstep = false;
    double frac = 0.0;
  };
  std::vector<Cell> cells;
  std::vector<app::ExperimentConfig> configs;
  for (const bool speedstep : {true, false}) {
    for (const double frac : {0.0, 0.015, 0.03, 0.06}) {
      app::ExperimentConfig cfg = base;
      cfg.speedstep_on_db = speedstep;
      cfg.clients.bursts_enabled = frac > 0.0;
      cfg.clients.burst_fraction = frac;
      cells.push_back(Cell{speedstep, frac});
      configs.push_back(cfg);
    }
  }
  const auto results = app::run_sweep(configs);

  struct CellAnalysis {
    double goodput = 0.0;
    double idc = 0.0;
    double tail = 0.0;
    double cong = 0.0;
    std::size_t episodes = 0;
  };
  std::vector<CellAnalysis> analyses(results.size());
  shared_pool().parallel_for_indexed(results.size(), [&](std::size_t i) {
    const auto& result = results[i];
    const int db1 = result.server_index_of(ntier::TierKind::kDb, 0);
    const auto spec = core::IntervalSpec::over(result.window_start,
                                               result.window_end, 50_ms);
    const auto detection = core::detect_bottlenecks(
        result.logs[static_cast<std::size_t>(db1)], spec,
        tables[static_cast<std::size_t>(db1)]);

    // Burstiness of the page-arrival process at the web tier, quantified
    // with the index of dispersion for counts [Mi et al.]: the modulator
    // must raise IDC well above the Poisson baseline of 1.
    std::vector<TimePoint> arrivals;
    const int web = result.server_index_of(ntier::TierKind::kWeb, 0);
    for (const auto& r : result.logs[static_cast<std::size_t>(web)]) {
      arrivals.push_back(r.arrival);
    }
    analyses[i] = CellAnalysis{
        result.goodput(),
        metrics::index_of_dispersion(arrivals, result.window_start,
                                     result.window_end, 1_s),
        100.0 * result.fraction_rt_above(2_s),
        100.0 * detection.congested_fraction(),
        detection.episodes.size(),
    };
  });

  std::printf("  %-12s %-10s %-10s %-9s %-10s %-12s %-10s\n", "burst[%pop]",
              "speedstep", "X[p/s]", "IDC(1s)", ">2s[%]", "dbCong[%]",
              "episodes");
  std::vector<double> frac_col, ss_col, idc_col, tail_col, cong_col;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto& [speedstep, frac] = cells[i];
    const auto& a = analyses[i];
    std::printf("  %-12.1f %-10s %-10.0f %-9.1f %-10.2f %-12.1f %-10zu\n",
                100.0 * frac, speedstep ? "on" : "off", a.goodput, a.idc,
                a.tail, a.cong, a.episodes);
    frac_col.push_back(100.0 * frac);
    ss_col.push_back(speedstep ? 1.0 : 0.0);
    idc_col.push_back(a.idc);
    tail_col.push_back(a.tail);
    cong_col.push_back(a.cong);
  }
  summary.set("sweep_points", static_cast<double>(results.size()));
  CsvWriter::write_columns(
      benchx::out_dir() + "/burst_sensitivity.csv",
      {"burst_pct", "speedstep", "idc_1s", "pct_over_2s", "db_congested_pct"},
      {frac_col, ss_col, idc_col, tail_col, cong_col});

  benchx::print_expectation("bursts without SpeedStep",
                            "drain quickly, small tail", "see table");
  benchx::print_expectation("bursts with SpeedStep",
                            "congestion and tail grow with burst size",
                            "see table");
  return 0;
}
