// Solution experiments (Sections IV-B and IV-D closing remarks) plus the
// read/write extension:
//
//  S1  JVM-GC bottleneck at WL 12,000 (JDK 1.5): compare
//        (a) baseline 1L/2S/1L/2S,
//        (b) scale-OUT the app tier to three servers ("low utilization of
//            Tomcat can reduce the negative impact of JVM GC"),
//        (c) the economical fix — upgrade the collector (JDK 1.6).
//  S2  SpeedStep bottleneck at WL 10,000: compare
//        (a) SpeedStep on, (b) disabled (pin P0), (c) scale-out the DB tier
//            ("further reduction ... needs to either scale-out the MySQL
//            tier or scale-up").
//  S3  Read/write mix: scaling the DB tier from 2 to 4 replicas helps reads
//      but write broadcasts cost EVERY replica, so the per-replica write
//      work is irreducible — the scale-out win shrinks vs browse-only.
#include <cstdio>
#include <iterator>
#include <vector>

#include "app/experiment.h"
#include "bench_util.h"
#include "core/detector.h"
#include "util/thread_pool.h"
#include "workload/browse_mix.h"

using namespace tbd;
using namespace tbd::literals;

namespace {

struct CellResult {
  double goodput = 0.0;
  double p99_s = 0.0;
  double over2s = 0.0;
  double app_congested = 0.0;
  double db_congested = 0.0;
  std::size_t app_frozen = 0;
};

CellResult run_cell(app::ExperimentConfig cfg,
                    const std::vector<core::ServiceTimeTable>* tables) {
  const auto result = app::run_experiment(cfg);
  CellResult cell;
  cell.goodput = result.goodput();
  cell.over2s = 100.0 * result.fraction_rt_above(2_s);
  metrics::ResponseCollector rc;
  for (const auto& p : result.pages) rc.record(p);
  cell.p99_s = rc.rt_quantile(result.window_start, result.window_end, 0.99);

  if (tables) {
    const auto spec = core::IntervalSpec::over(result.window_start,
                                               result.window_end, 50_ms);
    const int app1 = result.server_index_of(ntier::TierKind::kApp, 0);
    const int db1 = result.server_index_of(ntier::TierKind::kDb, 0);
    const auto app_d = core::detect_bottlenecks(
        result.logs[static_cast<std::size_t>(app1)], spec,
        (*tables)[static_cast<std::size_t>(app1)]);
    const auto db_d = core::detect_bottlenecks(
        result.logs[static_cast<std::size_t>(db1)], spec,
        (*tables)[static_cast<std::size_t>(db1)]);
    cell.app_congested = 100.0 * app_d.congested_fraction();
    cell.db_congested = 100.0 * db_d.congested_fraction();
    cell.app_frozen = app_d.frozen_intervals();
  }
  return cell;
}

void print_row(const char* label, const CellResult& c) {
  std::printf("  %-26s %-10.0f %-9.2f %-9.2f %-10.1f %-10.1f %-8zu\n", label,
              c.goodput, c.p99_s, c.over2s, c.app_congested, c.db_congested,
              c.app_frozen);
}

void print_head() {
  std::printf("  %-26s %-10s %-9s %-9s %-10s %-10s %-8s\n", "configuration",
              "X[p/s]", "p99[s]", ">2s[%]", "appCong%", "dbCong%", "appPOI");
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = benchx::BenchArgs::parse(argc, argv);
  const Duration duration = args.run_duration(30_s);

  benchx::print_header("Solutions: scale-out vs the economical fixes");
  benchx::BenchSummary summary{"scaleout_solutions"};

  // Calibration on the baseline topology plus the two scaled topologies
  // (a grown tier needs its own service-time table — tier growth shifts the
  // mw/db indices, so reusing the baseline table would mislabel servers).
  app::ExperimentConfig base;
  base.duration = duration;
  base.seed = 404;

  app::ExperimentConfig s1_base = base;
  s1_base.workload = 10000;
  s1_base.gc = transient::jdk15_config();
  app::ExperimentConfig s1_scaled = s1_base;
  s1_scaled.topology.app.count = 3;
  app::ExperimentConfig s1_upgraded = s1_base;
  s1_upgraded.gc = transient::jdk16_config();

  app::ExperimentConfig s2_base = base;
  s2_base.workload = 10000;
  s2_base.speedstep_on_db = true;
  app::ExperimentConfig s2_pinned = s2_base;
  s2_pinned.speedstep_on_db = false;
  app::ExperimentConfig s2_scaled = s2_base;
  s2_scaled.topology.db.count = 3;

  // The three calibration passes are independent — run them together.
  std::vector<core::ServiceTimeTable> tables, tables3_app, tables3_db;
  shared_pool().parallel_for_indexed(3, [&](std::size_t task) {
    if (task == 0) tables = app::calibrate_service_times(base);
    if (task == 1) tables3_app = app::calibrate_service_times(s1_scaled);
    if (task == 2) tables3_db = app::calibrate_service_times(s2_scaled);
  });

  // All six S1/S2 cells are independent experiments — fan them out and
  // print the rows afterwards in their fixed order.
  struct Cell {
    const app::ExperimentConfig* cfg;
    const std::vector<core::ServiceTimeTable>* tables;
    const char* label;
  };
  const Cell cells[] = {
      {&s1_base, &tables, "baseline (JDK 1.5, 2 app)"},
      {&s1_scaled, &tables3_app, "scale-out app tier (3)"},
      {&s1_upgraded, &tables, "upgrade JDK 1.6"},
      {&s2_base, &tables, "baseline (SpeedStep on)"},
      {&s2_pinned, &tables, "disable SpeedStep (P0)"},
      {&s2_scaled, &tables3_db, "scale-out db tier (3)"},
  };
  std::vector<CellResult> rows(std::size(cells));
  shared_pool().parallel_for_indexed(rows.size(), [&](std::size_t c) {
    rows[c] = run_cell(*cells[c].cfg, cells[c].tables);
  });

  // ---- S1: the GC bottleneck -------------------------------------------------
  // Just below the knee: GC freezes (not raw capacity) are what hurts here,
  // so the collector upgrade competes fairly with adding hardware.
  std::printf("\nS1: JDK 1.5 GC bottleneck at WL 10,000\n");
  print_head();
  for (std::size_t c = 0; c < 3; ++c) print_row(cells[c].label, rows[c]);
  benchx::print_expectation("GC fix effectiveness",
                            "both resolve POIs; upgrade is free",
                            "see appPOI column");

  // ---- S2: the SpeedStep bottleneck -------------------------------------------
  std::printf("\nS2: SpeedStep bottleneck at WL 10,000\n");
  print_head();
  for (std::size_t c = 3; c < 6; ++c) print_row(cells[c].label, rows[c]);
  // Per-run N* makes the congested%% columns comparable only within a run;
  // across configurations the client-side tail is the fair yardstick.
  benchx::print_expectation("SpeedStep fix effectiveness",
                            "disabling (free) rivals scale-out",
                            "see p99 / >2s columns");

  // ---- S3: write broadcasts resist DB scale-out --------------------------------
  // Deep-saturation capacity probe: every other tier is oversized so the DB
  // tier is the only limiter; compare browse-only against a write-heavy mix
  // (the update classes' weight tripled). Reads split across replicas;
  // writes cost EVERY replica, so their per-replica work is irreducible.
  std::printf("\nS3: read/write mix — write broadcasts resist DB scale-out\n");
  auto write_heavy = [] {
    auto mix = workload::rubbos_read_write_mix();
    for (auto& c : mix) {
      c.weight *= c.db_write_queries > 0 ? 3.0 : (1.0 - 3.0 * 0.15) / 0.85;
    }
    return mix;
  }();

  std::printf("  %-26s %-14s %-16s\n", "db replicas", "browse X[p/s]",
              "write-heavy X[p/s]");
  const int replica_counts[] = {2, 4};
  // 2 replica counts x {browse, write-heavy} = 4 independent capacity probes.
  std::vector<app::ExperimentConfig> probes;
  for (int replicas : replica_counts) {
    app::ExperimentConfig browse = base;
    browse.workload = 40000;  // enough client demand to expose the capacity
    browse.topology.web.server.cores = 4;  // oversize every non-DB tier
    browse.topology.web.server.worker_threads = 1200;
    browse.topology.web.server.accept_backlog = 600;
    browse.topology.app.count = 6;
    browse.topology.mw.server.cores = 4;
    browse.topology.db.count = replicas;
    app::ExperimentConfig rw = browse;
    rw.classes = write_heavy;
    probes.push_back(browse);
    probes.push_back(rw);
  }
  std::vector<double> goodputs(probes.size());
  shared_pool().parallel_for_indexed(probes.size(), [&](std::size_t p) {
    goodputs[p] = run_cell(probes[p], nullptr).goodput;
  });
  double browse_gain = 0.0;
  double rw_gain = 0.0;
  double browse_prev = 0.0;
  double rw_prev = 0.0;
  for (std::size_t r = 0; r < std::size(replica_counts); ++r) {
    const double x_browse = goodputs[2 * r];
    const double x_rw = goodputs[2 * r + 1];
    std::printf("  %-26d %-14.0f %-16.0f\n", replica_counts[r], x_browse,
                x_rw);
    if (browse_prev > 0.0) {
      browse_gain = x_browse / browse_prev;
      rw_gain = x_rw / rw_prev;
    }
    browse_prev = x_browse;
    rw_prev = x_rw;
  }
  char buf[96];
  std::snprintf(buf, sizeof buf, "browse x%.2f vs write-heavy x%.2f",
                browse_gain, rw_gain);
  benchx::print_expectation("2->4 replica scaling gain",
                            "write-heavy gains less (broadcast writes)", buf);
  summary.set("cells", static_cast<double>(std::size(cells) + probes.size()));
  return 0;
}
