// Flight-recorder throughput and the paper's GC attribution story in one
// run: a JDK 1.5 Tomcat experiment (Section IV-A's transient-bottleneck
// scenario) feeds the full records -> trees -> critical path -> attribution
// -> timeline pipeline, and the summary records an `attribution` stage —
// wall seconds and transactions/second through app::flight_record — in
// bench_out/bench_summary.json so successive PRs can track the pipeline's
// cost next to the detector's.
#include <chrono>
#include <cstdio>
#include <string>

#include "app/experiment.h"
#include "app/flight_recorder.h"
#include "bench_util.h"
#include "core/attribution.h"
#include "util/thread_pool.h"

using namespace tbd;
using namespace tbd::literals;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = benchx::BenchArgs::parse(argc, argv);
  const Duration duration = args.run_duration(20_s);

  benchx::print_header("Flight recorder: records -> trees -> attribution");
  benchx::BenchSummary summary{"flight_recorder"};

  // The Fig 9(b) arm: JDK 1.5 GC at high workload produces the congestion
  // episodes the attribution report is supposed to explain.
  app::ExperimentConfig cfg;
  cfg.workload = 12000;
  cfg.warmup = 10_s;
  cfg.duration = duration;
  cfg.seed = 415;
  cfg.gc_on_app = true;
  cfg.gc = transient::jdk15_config();
  const auto result = app::run_experiment(cfg);

  // Merge the per-server logs (dense index = flight-recorder server id).
  trace::RequestLog merged;
  for (std::size_t s = 0; s < result.logs.size(); ++s) {
    for (trace::RequestRecord r : result.logs[s]) {
      r.server = static_cast<trace::ServerIndex>(s);
      merged.push_back(r);
    }
  }

  app::FlightConfig config;
  config.width = 50_ms;
  const auto t0 = std::chrono::steady_clock::now();
  const auto rec = app::flight_record(merged, config, shared_pool());
  const double record_s = seconds_since(t0);

  const auto t1 = std::chrono::steady_clock::now();
  const std::string timeline = app::timeline_json(rec);
  const std::string ndjson = core::attribution_ndjson(rec.attribution);
  const double render_s = seconds_since(t1);

  std::size_t visits = 0;
  for (const auto& t : rec.assembly.txns) visits += t.visits.size();
  const double txns = static_cast<double>(rec.assembly.txns.size());

  std::printf("  %-22s %-12s %-10s %-14s\n", "stage", "size", "wall[s]",
              "rate");
  std::printf("  %-22s %-12.0f %-10.3f %-14.3g txn/s\n", "flight_record",
              txns, record_s, txns / record_s);
  std::printf("  %-22s %-12zu %-10.3f %-14.3g B/s\n", "render artifacts",
              timeline.size() + ndjson.size(), render_s,
              static_cast<double>(timeline.size() + ndjson.size()) / render_s);

  // The acceptance story: tail-band queueing should concentrate inside the
  // congested (app) server's episodes when GC freezes are active.
  double tail_queue_in = 0.0, tail_queue = 0.0;
  for (const auto& band : rec.attribution.bands) {
    if (band.band != "p99" && band.band != "pmax") continue;
    for (const auto& s : band.servers) {
      tail_queue_in += s.queue_in_us;
      tail_queue += s.queue_in_us + s.queue_out_us;
    }
  }
  const double in_frac = tail_queue > 0.0 ? tail_queue_in / tail_queue : 0.0;
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.1f%% of tail queue-wait in-episode",
                100.0 * in_frac);
  benchx::print_expectation("tail attribution",
                            "majority in congested intervals", buf);

  summary.set("attribution_txns", txns);
  summary.set("attribution_visits", static_cast<double>(visits));
  summary.set("attribution_wall_s", record_s);
  summary.set("attribution_txns_per_s", record_s > 0.0 ? txns / record_s : 0.0);
  summary.set("attribution_tail_in_episode_frac", in_frac);

  benchx::finish_observability(args, "bench_flight_recorder",
                               {{"workload", std::to_string(cfg.workload)},
                                {"width_ms", "50"}});
  return 0;
}
