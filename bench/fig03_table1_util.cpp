// Figure 3 + Table I: coarse-grained resource monitoring at WL 8,000.
//
//  Figure 3 — Tomcat and MySQL CPU utilization timelines at 1 s granularity;
//  the paper measures averages of 79.9% (Tomcat) and 78.1% (MySQL) with no
//  resource saturated, which is exactly why second-level monitoring cannot
//  explain the response-time variation.
//  Table I  — per-tier CPU %, disk I/O %, network receive/send MB/s.
//
// Run with SpeedStep enabled on MySQL (the Figure 2 configuration): note
// that sysstat reports busy fraction at the *current* clock, so MySQL reads
// ~78% while spending most of its time in a low P-state.
#include <cstdio>

#include "app/experiment.h"
#include "bench_util.h"
#include "util/csv.h"
#include "util/stats.h"

using namespace tbd;
using namespace tbd::literals;

int main(int argc, char** argv) {
  const auto args = benchx::BenchArgs::parse(argc, argv);

  app::ExperimentConfig cfg;
  cfg.workload = 8000;
  cfg.warmup = 10_s;
  cfg.duration = args.run_duration(60_s);
  cfg.seed = 20130613;
  cfg.speedstep_on_db = true;

  benchx::print_header("Figure 3 / Table I: resource utilization at WL 8,000");
  const auto result = app::run_experiment(cfg);
  const double window_s = (result.window_end - result.window_start).seconds_f();

  // ---- Table I ---------------------------------------------------------------
  std::printf("  %-8s %-10s %-10s %-22s\n", "server", "CPU[%]", "disk[%]",
              "net recv/send [MB/s]");
  struct Row {
    const char* name;
    ntier::TierKind tier;
    double paper_cpu;
  };
  const Row rows[] = {{"Apache", ntier::TierKind::kWeb, 34.6},
                      {"Tomcat", ntier::TierKind::kApp, 79.9},
                      {"CJDBC", ntier::TierKind::kMw, 26.7},
                      {"MySQL", ntier::TierKind::kDb, 78.1}};
  for (const auto& row : rows) {
    // Tier averages over replicas (the paper reports one number per tier).
    double cpu = 0.0, disk = 0.0, rx = 0.0, tx = 0.0;
    int count = 0;
    for (std::size_t s = 0; s < result.servers.size(); ++s) {
      if (result.servers[s].tier != row.tier) continue;
      ++count;
      cpu += result.mean_util(static_cast<int>(s));
      disk += result.disk_busy_us[s] /
              (window_s * 1e6 * result.servers[s].cores);
      rx += static_cast<double>(result.net[s].bytes_received) / window_s / 1e6;
      tx += static_cast<double>(result.net[s].bytes_sent) / window_s / 1e6;
    }
    cpu /= count;
    disk /= count;
    rx /= count;
    tx /= count;
    std::printf("  %-8s %-10.1f %-10.2f %.1f / %.1f\n", row.name, cpu * 100.0,
                disk * 100.0, rx, tx);
    char measured[64];
    std::snprintf(measured, sizeof measured, "%.1f%%", cpu * 100.0);
    char paper[64];
    std::snprintf(paper, sizeof paper, "%.1f%% CPU", row.paper_cpu);
    benchx::print_expectation(std::string{row.name} + " CPU", paper, measured);
  }

  // ---- Figure 3 timelines ----------------------------------------------------
  const int app1 = result.server_index_of(ntier::TierKind::kApp, 0);
  const int db1 = result.server_index_of(ntier::TierKind::kDb, 0);
  std::vector<double> t_col, app_col, db_col;
  const auto& app_series = result.util[static_cast<std::size_t>(app1)];
  const auto& db_series = result.util[static_cast<std::size_t>(db1)];
  for (std::size_t i = 0; i < app_series.size() && i < db_series.size(); ++i) {
    t_col.push_back(static_cast<double>(i + 1));
    app_col.push_back(app_series[i] * 100.0);
    db_col.push_back(db_series[i] * 100.0);
  }
  CsvWriter::write_columns(benchx::out_dir() + "/fig03_cpu_timeline.csv",
                           {"t_s", "tomcat_cpu_pct", "mysql_cpu_pct"},
                           {t_col, app_col, db_col});

  // The paper's point: coarse sampling shows no sustained saturation, so
  // nothing explains the response-time tail. Momentary 100% seconds can
  // occur under bursts; what matters is that the bulk of samples sit well
  // below 100% on both hot tiers.
  const double app_p90 = quantile(app_col, 0.90);
  const double db_p90 = quantile(db_col, 0.90);
  std::printf("\n  Tomcat CPU p90 over 1s samples: %.1f%%\n", app_p90);
  std::printf("  MySQL  CPU p90 over 1s samples: %.1f%%\n", db_p90);
  benchx::print_expectation("1s samples show sustained saturation?",
                            "no (that is the problem)",
                            (app_p90 < 99.0 && db_p90 < 99.0) ? "no" : "yes");
  return 0;
}
