// bench_ingest: trace-ingestion throughput — the analysis front door.
//
// The paper's method only matters if the analysis side keeps up with the
// trace volume (SysViz captures every message of every request). This bench
// measures, on a multi-million-record request log:
//
//   * CSV sequential  — the reference getline loader (load_request_log_csv)
//   * CSV sharded     — the block-read zero-copy parser on the shared pool
//   * TBDR binary     — the compact binary interchange format
//   * TBDR v2         — the delta-compressed segment log (trace/segment_log)
//
// each also into the columnar RequestColumns layout, plus the fused
// load/throughput sweep against the two separate calculator passes and
// against the SoA view (ns/record AoS vs SoA). The v1-vs-v2 comparison runs
// twice: warm (page cache holds the file) and cold (pages evicted before
// every rep), because the compressed format's win is proportional to how
// much of the wall time is spent reading bytes. Every optimized path is
// gated on bit-equality with its reference before any number is reported.
// Results land in bench_out/bench_summary.json under "ingest" so PR-to-PR
// trajectories are visible.
#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <vector>

#include "bench_util.h"
#include "core/fused_sweep.h"
#include "core/load_calculator.h"
#include "core/throughput_calculator.h"
#include "trace/log_io.h"
#include "trace/request_columns.h"
#include "trace/request_log_file.h"
#include "trace/segment_log.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace {

using namespace tbd;
using namespace tbd::literals;

// Synthetic multi-server request log: ~20k requests/s across 4 servers with
// exponential service around 500us, the shape tbd_analyze sees in practice.
trace::RequestLog synth_log(std::size_t n, std::uint64_t seed) {
  Rng rng{seed};
  const double horizon_us = static_cast<double>(n) / 20'000.0 * 1e6;
  trace::RequestLog log;
  log.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double at = rng.uniform(0.0, horizon_us);
    const double service = rng.exponential(500.0);
    trace::RequestRecord r;
    r.server = static_cast<trace::ServerIndex>(rng.uniform_index(4));
    r.class_id = static_cast<trace::ClassId>(rng.uniform_index(8));
    r.arrival = TimePoint::from_micros(static_cast<std::int64_t>(at));
    r.departure =
        TimePoint::from_micros(static_cast<std::int64_t>(at + service));
    r.txn = i + 1;
    log.push_back(r);
  }
  // Departure order is the invariant every real log upholds (records.h) and
  // the one the v2 delta encoder exploits; stable_sort keeps equal-departure
  // ties in txn order so the log stays deterministic.
  std::stable_sort(log.begin(), log.end(),
                   [](const trace::RequestRecord& a,
                      const trace::RequestRecord& b) {
                     return a.departure < b.departure;
                   });
  return log;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// Best-of-N wall time for a repeatable operation; the shared machine's
// scheduling noise is one-sided (it only ever adds time), so the minimum is
// the stable estimate worth comparing across formats.
template <typename F>
double best_of(int reps, F&& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (int i = 0; i < reps; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    best = std::min(best, seconds_since(t0));
  }
  return best;
}

std::size_t file_bytes(const std::string& path) {
  std::ifstream in{path, std::ios::binary | std::ios::ate};
  return in.is_open() ? static_cast<std::size_t>(in.tellg()) : 0;
}

/// Drops the file's pages from the page cache so the next read pays real
/// I/O. fsync first: POSIX_FADV_DONTNEED cannot evict dirty pages, and the
/// bench wrote these files moments ago.
void evict_page_cache(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return;
  ::fsync(fd);
  ::posix_fadvise(fd, 0, 0, POSIX_FADV_DONTNEED);
  ::close(fd);
}

/// best_of with the page cache evicted before every rep — the un-timed
/// eviction makes each rep a cold read instead of a memcpy from cache.
template <typename F>
double best_of_cold(int reps, const std::string& path, F&& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (int i = 0; i < reps; ++i) {
    evict_page_cache(path);
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    best = std::min(best, seconds_since(t0));
  }
  return best;
}

bool same_records(const trace::RequestLog& a, const trace::RequestLog& b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(),
                                   a.size() * sizeof(trace::RequestRecord)) == 0);
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = benchx::BenchArgs::parse(argc, argv);
  const std::size_t n = args.full ? 20'000'000 : 5'000'000;

  benchx::print_header("Trace ingestion: CSV sequential vs sharded vs binary");
  std::printf("  threads: %d, records: %zu\n",
              ThreadPool::default_thread_count(), n);

  benchx::BenchSummary summary{"ingest"};
  summary.set("records", static_cast<double>(n));

  const auto log = synth_log(n, 42);
  const std::string csv_path = benchx::out_dir() + "/ingest_bench_log.csv";
  const std::string bin_path = benchx::out_dir() + "/ingest_bench_log.tbdr";
  const std::string v2_path = benchx::out_dir() + "/ingest_bench_log.tbd2";

  // ---- save -----------------------------------------------------------------
  auto t0 = std::chrono::steady_clock::now();
  if (!trace::save_request_log_csv(csv_path, log)) {
    std::fprintf(stderr, "error: cannot write %s\n", csv_path.c_str());
    return 1;
  }
  const double t_save_csv = seconds_since(t0);
  t0 = std::chrono::steady_clock::now();
  if (!trace::save_request_log_bin(bin_path, log)) {
    std::fprintf(stderr, "error: cannot write %s\n", bin_path.c_str());
    return 1;
  }
  const double t_save_bin = seconds_since(t0);
  t0 = std::chrono::steady_clock::now();
  if (!trace::save_request_log_v2(v2_path, log)) {
    std::fprintf(stderr, "error: cannot write %s\n", v2_path.c_str());
    return 1;
  }
  const double t_save_v2 = seconds_since(t0);
  const double csv_mb = static_cast<double>(file_bytes(csv_path)) / 1e6;
  const double bin_mb = static_cast<double>(file_bytes(bin_path)) / 1e6;
  const double v2_mb = static_cast<double>(file_bytes(v2_path)) / 1e6;
  std::printf("  save: csv %.2fs (%.0f MB, %.0f MB/s)  binary %.2fs "
              "(%.0f MB, %.0f MB/s)\n",
              t_save_csv, csv_mb, csv_mb / t_save_csv, t_save_bin, bin_mb,
              bin_mb / t_save_bin);
  std::printf("        v2 %.2fs (%.1f MB, %.0f MB/s, %.2fx smaller than "
              "v1)\n",
              t_save_v2, v2_mb, v2_mb / t_save_v2, bin_mb / v2_mb);
  benchx::print_expectation("v2 file size vs TBDR v1", ">= 2.5x smaller",
                            std::to_string(bin_mb / v2_mb) + "x");
  summary.set("csv_save_mb_per_s", csv_mb / t_save_csv);
  summary.set("bin_save_mb_per_s", bin_mb / t_save_bin);
  summary.set("v2_save_mb_per_s", v2_mb / t_save_v2);
  summary.set("v2_file_mb", v2_mb);
  summary.set("v2_compression_vs_v1", bin_mb / v2_mb);

  // ---- load -----------------------------------------------------------------
  // Each rep parks its result in a fresh slot so the timed region never pays
  // to tear down the previous rep's 160 MB of records; resize(1) right after
  // each measurement then frees the spare slots (outside any timed region),
  // keeping only the front() sample the equality gates need. Without the
  // trim the parked results accumulate to ~4 GB by the cold arms, and under
  // this container's proactive memory reclaim that pressure collapses
  // page-fault throughput — the later arms measured 40x slower than the
  // same loads run standalone.
  const int kLoadReps = 3;
  std::vector<trace::LogIoResult> seq_runs(kLoadReps);
  int rep = 0;
  const double t_seq = best_of(
      kLoadReps, [&] { seq_runs[rep++] = trace::load_request_log_csv(csv_path); });
  seq_runs.resize(1);
  const auto& seq = seq_runs.front();
  std::vector<trace::LogIoResult> sharded_runs(kLoadReps);
  rep = 0;
  const double t_sharded = best_of(kLoadReps, [&] {
    sharded_runs[rep++] = trace::load_request_log_csv_sharded(csv_path);
  });
  sharded_runs.resize(1);
  const auto& sharded = sharded_runs.front();
  std::vector<trace::RequestLogReadResult> bin_runs(kLoadReps);
  rep = 0;
  const double t_bin = best_of(
      kLoadReps, [&] { bin_runs[rep++] = trace::load_request_log_bin(bin_path); });
  bin_runs.resize(1);
  const auto& bin = bin_runs.front();

  // Columnar twins of the two fast loaders: decode straight into
  // RequestColumns with no intermediate row vector.
  std::vector<trace::ColumnarLogIoResult> sharded_cols_runs(kLoadReps);
  rep = 0;
  const double t_sharded_cols = best_of(kLoadReps, [&] {
    sharded_cols_runs[rep++] =
        trace::load_request_log_csv_sharded_columns(csv_path);
  });
  sharded_cols_runs.resize(1);
  std::vector<trace::RequestColumnsReadResult> bin_cols_runs(kLoadReps);
  rep = 0;
  const double t_bin_cols = best_of(kLoadReps, [&] {
    bin_cols_runs[rep++] = trace::load_request_log_bin_columns(bin_path);
  });
  bin_cols_runs.resize(1);

  // The v2 segment decoder is column-native — RequestColumns is its only
  // output layout — so it races the binary->soa twin, warm and cold. Warm
  // measures pure decode (the file is a page-cache memcpy); cold evicts the
  // pages first, which is where the 3x-smaller file pays off: the decoder
  // reads a third of the bytes off the device.
  std::vector<trace::SegmentLogReadResult> v2_runs(kLoadReps);
  rep = 0;
  const double t_v2_cols = best_of(
      kLoadReps, [&] { v2_runs[rep++] = trace::load_request_log_v2(v2_path); });
  v2_runs.resize(1);
  std::vector<trace::RequestColumnsReadResult> bin_cold_runs(kLoadReps);
  rep = 0;
  const double t_bin_cold = best_of_cold(kLoadReps, bin_path, [&] {
    bin_cold_runs[rep++] = trace::load_request_log_bin_columns(bin_path);
  });
  bin_cold_runs.resize(1);
  std::vector<trace::SegmentLogReadResult> v2_cold_runs(kLoadReps);
  rep = 0;
  const double t_v2_cold = best_of_cold(kLoadReps, v2_path, [&] {
    v2_cold_runs[rep++] = trace::load_request_log_v2(v2_path);
  });
  v2_cold_runs.resize(1);

  std::remove(csv_path.c_str());
  std::remove(bin_path.c_str());
  std::remove(v2_path.c_str());

  const auto columns = trace::RequestColumns::from_records(log);
  if (!seq.ok || !sharded.ok || !bin.ok ||
      !same_records(seq.records, log) ||
      !same_records(sharded.records, seq.records) ||
      !same_records(bin.records, seq.records) ||
      !sharded_cols_runs.front().ok || !bin_cols_runs.front().ok ||
      sharded_cols_runs.front().records != columns ||
      bin_cols_runs.front().records != columns ||
      !v2_runs.front().ok || v2_runs.front().records != columns ||
      !bin_cold_runs.front().ok || bin_cold_runs.front().records != columns ||
      !v2_cold_runs.front().ok || v2_cold_runs.front().records != columns) {
    std::fprintf(stderr, "error: loaders disagree — not benchmarking a "
                         "correct implementation\n");
    return 1;
  }

  const double nn = static_cast<double>(n);
  std::printf("  load: csv-seq %.2fs (%.2fM rec/s, %.0f MB/s)\n", t_seq,
              nn / t_seq / 1e6, csv_mb / t_seq);
  std::printf("        csv-sharded %.2fs (%.2fM rec/s, %.0f MB/s)  %.2fx\n",
              t_sharded, nn / t_sharded / 1e6, csv_mb / t_sharded,
              t_seq / t_sharded);
  std::printf("        binary %.2fs (%.2fM rec/s, %.0f MB/s)  %.2fx\n", t_bin,
              nn / t_bin / 1e6, bin_mb / t_bin, t_seq / t_bin);
  std::printf("        csv-sharded->soa %.2fs (%.2fM rec/s)  binary->soa %.2fs "
              "(%.2fM rec/s)\n",
              t_sharded_cols, nn / t_sharded_cols / 1e6, t_bin_cols,
              nn / t_bin_cols / 1e6);
  std::printf("        v2->soa %.2fs (%.2fM rec/s, %.0f MB/s)  %.2fx vs "
              "binary->soa\n",
              t_v2_cols, nn / t_v2_cols / 1e6, v2_mb / t_v2_cols,
              t_bin_cols / t_v2_cols);
  std::printf("  cold: binary->soa %.2fs (%.2fM rec/s, %.0f MB/s)  "
              "v2->soa %.2fs (%.2fM rec/s, %.0f MB/s)  %.2fx\n",
              t_bin_cold, nn / t_bin_cold / 1e6, bin_mb / t_bin_cold,
              t_v2_cold, nn / t_v2_cold / 1e6, v2_mb / t_v2_cold,
              t_bin_cold / t_v2_cold);
  benchx::print_expectation("sharded CSV speedup over sequential", ">= 3x",
                            std::to_string(t_seq / t_sharded) + "x");
  benchx::print_expectation("binary speedup over sequential CSV", ">= 8x",
                            std::to_string(t_seq / t_bin) + "x");
  benchx::print_expectation("v2 cold-load speedup over v1 (rec/s)", ">= 1.5x",
                            std::to_string(t_bin_cold / t_v2_cold) + "x");
  summary.set("csv_seq_records_per_s", nn / t_seq);
  summary.set("csv_seq_mb_per_s", csv_mb / t_seq);
  summary.set("csv_sharded_records_per_s", nn / t_sharded);
  summary.set("csv_sharded_mb_per_s", csv_mb / t_sharded);
  summary.set("csv_sharded_speedup", t_seq / t_sharded);
  summary.set("bin_records_per_s", nn / t_bin);
  summary.set("bin_mb_per_s", bin_mb / t_bin);
  summary.set("bin_speedup", t_seq / t_bin);
  summary.set("csv_sharded_soa_records_per_s", nn / t_sharded_cols);
  summary.set("bin_soa_records_per_s", nn / t_bin_cols);
  summary.set("v2_soa_records_per_s", nn / t_v2_cols);
  summary.set("v2_warm_speedup_vs_v1_soa", t_bin_cols / t_v2_cols);
  summary.set("bin_soa_cold_records_per_s", nn / t_bin_cold);
  summary.set("v2_soa_cold_records_per_s", nn / t_v2_cold);
  summary.set("v2_cold_speedup_vs_v1_soa", t_bin_cold / t_v2_cold);

  // The sweep stage needs only `log` and `columns`; drop the ~1.4 GB of
  // parked loader results before measuring cache-sensitive kernels.
  seq_runs.clear();
  sharded_runs.clear();
  bin_runs.clear();
  sharded_cols_runs.clear();
  bin_cols_runs.clear();
  v2_runs.clear();
  bin_cold_runs.clear();
  v2_cold_runs.clear();

  // ---- fused load/throughput sweep -----------------------------------------
  TimePoint t_min = TimePoint::max();
  TimePoint t_max;
  for (const auto& r : log) {
    t_min = std::min(t_min, r.arrival);
    t_max = std::max(t_max, r.departure);
  }
  const auto spec = core::IntervalSpec::over(t_min, t_max, 50_ms);
  const auto table = core::estimate_service_times(log);
  const core::ThroughputOptions options;

  const int kSweepReps = 2;
  std::vector<double> load_only;
  const double t_load =
      best_of(kSweepReps, [&] { load_only = core::compute_load(log, spec); });
  std::vector<double> tput_only;
  const double t_tput = best_of(kSweepReps, [&] {
    tput_only = core::compute_throughput(log, spec, table, options);
  });
  core::LoadThroughput fused;
  const double t_fused = best_of(kSweepReps, [&] {
    fused = core::compute_load_throughput(log, spec, table, options);
  });
  core::LoadThroughput fused_soa;
  const double t_fused_soa = best_of(kSweepReps, [&] {
    fused_soa = core::compute_load_throughput(columns.view(), spec, table,
                                              options);
  });

  if (fused.load != load_only || fused.throughput != tput_only) {
    std::fprintf(stderr, "error: fused sweep diverged from the separate "
                         "calculators\n");
    return 1;
  }
  if (fused_soa.load != fused.load ||
      fused_soa.throughput != fused.throughput) {
    std::fprintf(stderr, "error: SoA fused sweep diverged from the AoS "
                         "sweep\n");
    return 1;
  }
  const double aos_ns = t_fused / nn * 1e9;
  const double soa_ns = t_fused_soa / nn * 1e9;
  std::printf("  sweep: load %.2fs + throughput %.2fs = %.2fs separate, "
              "fused %.2fs (%.2fx)\n",
              t_load, t_tput, t_load + t_tput, t_fused,
              (t_load + t_tput) / t_fused);
  std::printf("         fused aos %.1f ns/record, soa %.1f ns/record "
              "(%.2fx, %d threads)\n",
              aos_ns, soa_ns, t_fused / t_fused_soa,
              ThreadPool::default_thread_count());
  benchx::print_expectation("fused sweep vs separate passes", "< 1x time",
                            std::to_string((t_load + t_tput) / t_fused) + "x");
  benchx::print_expectation("SoA fused sweep ns/record", "<= 84 (3x over PR5)",
                            std::to_string(soa_ns));
  summary.set("fused_sweep_s", t_fused);
  summary.set("separate_sweep_s", t_load + t_tput);
  summary.set("fused_speedup", (t_load + t_tput) / t_fused);
  summary.set("fused_sweep_aos_ns_per_record", aos_ns);
  summary.set("fused_sweep_soa_ns_per_record", soa_ns);
  summary.set("soa_sweep_speedup_vs_aos", t_fused / t_fused_soa);

  summary.finish();
  benchx::finish_observability(args, "bench_ingest");
  return 0;
}
