// bench_ingest: trace-ingestion throughput — the analysis front door.
//
// The paper's method only matters if the analysis side keeps up with the
// trace volume (SysViz captures every message of every request). This bench
// measures, on a multi-million-record request log:
//
//   * CSV sequential  — the reference getline loader (load_request_log_csv)
//   * CSV sharded     — the block-read zero-copy parser on the shared pool
//   * TBDR binary     — the compact binary interchange format
//
// each also into the columnar RequestColumns layout, plus the fused
// load/throughput sweep against the two separate calculator passes and
// against the SoA view (ns/record AoS vs SoA). Every optimized path is
// gated on bit-equality with its reference before any number is reported.
// Results land in bench_out/bench_summary.json under "ingest" so PR-to-PR
// trajectories are visible.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <vector>

#include "bench_util.h"
#include "core/fused_sweep.h"
#include "core/load_calculator.h"
#include "core/throughput_calculator.h"
#include "trace/log_io.h"
#include "trace/request_columns.h"
#include "trace/request_log_file.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace {

using namespace tbd;
using namespace tbd::literals;

// Synthetic multi-server request log: ~20k requests/s across 4 servers with
// exponential service around 500us, the shape tbd_analyze sees in practice.
trace::RequestLog synth_log(std::size_t n, std::uint64_t seed) {
  Rng rng{seed};
  const double horizon_us = static_cast<double>(n) / 20'000.0 * 1e6;
  trace::RequestLog log;
  log.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double at = rng.uniform(0.0, horizon_us);
    const double service = rng.exponential(500.0);
    trace::RequestRecord r;
    r.server = static_cast<trace::ServerIndex>(rng.uniform_index(4));
    r.class_id = static_cast<trace::ClassId>(rng.uniform_index(8));
    r.arrival = TimePoint::from_micros(static_cast<std::int64_t>(at));
    r.departure =
        TimePoint::from_micros(static_cast<std::int64_t>(at + service));
    r.txn = i + 1;
    log.push_back(r);
  }
  return log;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// Best-of-N wall time for a repeatable operation; the shared machine's
// scheduling noise is one-sided (it only ever adds time), so the minimum is
// the stable estimate worth comparing across formats.
template <typename F>
double best_of(int reps, F&& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (int i = 0; i < reps; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    best = std::min(best, seconds_since(t0));
  }
  return best;
}

std::size_t file_bytes(const std::string& path) {
  std::ifstream in{path, std::ios::binary | std::ios::ate};
  return in.is_open() ? static_cast<std::size_t>(in.tellg()) : 0;
}

bool same_records(const trace::RequestLog& a, const trace::RequestLog& b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(),
                                   a.size() * sizeof(trace::RequestRecord)) == 0);
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = benchx::BenchArgs::parse(argc, argv);
  const std::size_t n = args.full ? 20'000'000 : 5'000'000;

  benchx::print_header("Trace ingestion: CSV sequential vs sharded vs binary");
  std::printf("  threads: %d, records: %zu\n",
              ThreadPool::default_thread_count(), n);

  benchx::BenchSummary summary{"ingest"};
  summary.set("records", static_cast<double>(n));

  const auto log = synth_log(n, 42);
  const std::string csv_path = benchx::out_dir() + "/ingest_bench_log.csv";
  const std::string bin_path = benchx::out_dir() + "/ingest_bench_log.tbdr";

  // ---- save -----------------------------------------------------------------
  auto t0 = std::chrono::steady_clock::now();
  if (!trace::save_request_log_csv(csv_path, log)) {
    std::fprintf(stderr, "error: cannot write %s\n", csv_path.c_str());
    return 1;
  }
  const double t_save_csv = seconds_since(t0);
  t0 = std::chrono::steady_clock::now();
  if (!trace::save_request_log_bin(bin_path, log)) {
    std::fprintf(stderr, "error: cannot write %s\n", bin_path.c_str());
    return 1;
  }
  const double t_save_bin = seconds_since(t0);
  const double csv_mb = static_cast<double>(file_bytes(csv_path)) / 1e6;
  const double bin_mb = static_cast<double>(file_bytes(bin_path)) / 1e6;
  std::printf("  save: csv %.2fs (%.0f MB, %.0f MB/s)  binary %.2fs "
              "(%.0f MB, %.0f MB/s)\n",
              t_save_csv, csv_mb, csv_mb / t_save_csv, t_save_bin, bin_mb,
              bin_mb / t_save_bin);
  summary.set("csv_save_mb_per_s", csv_mb / t_save_csv);
  summary.set("bin_save_mb_per_s", bin_mb / t_save_bin);

  // ---- load -----------------------------------------------------------------
  // Each rep parks its result in a fresh slot so the timed region never pays
  // to tear down the previous rep's 160 MB of records.
  const int kLoadReps = 3;
  std::vector<trace::LogIoResult> seq_runs(kLoadReps);
  int rep = 0;
  const double t_seq = best_of(
      kLoadReps, [&] { seq_runs[rep++] = trace::load_request_log_csv(csv_path); });
  const auto& seq = seq_runs.front();
  std::vector<trace::LogIoResult> sharded_runs(kLoadReps);
  rep = 0;
  const double t_sharded = best_of(kLoadReps, [&] {
    sharded_runs[rep++] = trace::load_request_log_csv_sharded(csv_path);
  });
  const auto& sharded = sharded_runs.front();
  std::vector<trace::RequestLogReadResult> bin_runs(kLoadReps);
  rep = 0;
  const double t_bin = best_of(
      kLoadReps, [&] { bin_runs[rep++] = trace::load_request_log_bin(bin_path); });
  const auto& bin = bin_runs.front();

  // Columnar twins of the two fast loaders: decode straight into
  // RequestColumns with no intermediate row vector.
  std::vector<trace::ColumnarLogIoResult> sharded_cols_runs(kLoadReps);
  rep = 0;
  const double t_sharded_cols = best_of(kLoadReps, [&] {
    sharded_cols_runs[rep++] =
        trace::load_request_log_csv_sharded_columns(csv_path);
  });
  std::vector<trace::RequestColumnsReadResult> bin_cols_runs(kLoadReps);
  rep = 0;
  const double t_bin_cols = best_of(kLoadReps, [&] {
    bin_cols_runs[rep++] = trace::load_request_log_bin_columns(bin_path);
  });

  std::remove(csv_path.c_str());
  std::remove(bin_path.c_str());

  const auto columns = trace::RequestColumns::from_records(log);
  if (!seq.ok || !sharded.ok || !bin.ok ||
      !same_records(seq.records, log) ||
      !same_records(sharded.records, seq.records) ||
      !same_records(bin.records, seq.records) ||
      !sharded_cols_runs.front().ok || !bin_cols_runs.front().ok ||
      sharded_cols_runs.front().records != columns ||
      bin_cols_runs.front().records != columns) {
    std::fprintf(stderr, "error: loaders disagree — not benchmarking a "
                         "correct implementation\n");
    return 1;
  }

  const double nn = static_cast<double>(n);
  std::printf("  load: csv-seq %.2fs (%.2fM rec/s, %.0f MB/s)\n", t_seq,
              nn / t_seq / 1e6, csv_mb / t_seq);
  std::printf("        csv-sharded %.2fs (%.2fM rec/s, %.0f MB/s)  %.2fx\n",
              t_sharded, nn / t_sharded / 1e6, csv_mb / t_sharded,
              t_seq / t_sharded);
  std::printf("        binary %.2fs (%.2fM rec/s, %.0f MB/s)  %.2fx\n", t_bin,
              nn / t_bin / 1e6, bin_mb / t_bin, t_seq / t_bin);
  std::printf("        csv-sharded->soa %.2fs (%.2fM rec/s)  binary->soa %.2fs "
              "(%.2fM rec/s)\n",
              t_sharded_cols, nn / t_sharded_cols / 1e6, t_bin_cols,
              nn / t_bin_cols / 1e6);
  benchx::print_expectation("sharded CSV speedup over sequential", ">= 3x",
                            std::to_string(t_seq / t_sharded) + "x");
  benchx::print_expectation("binary speedup over sequential CSV", ">= 8x",
                            std::to_string(t_seq / t_bin) + "x");
  summary.set("csv_seq_records_per_s", nn / t_seq);
  summary.set("csv_seq_mb_per_s", csv_mb / t_seq);
  summary.set("csv_sharded_records_per_s", nn / t_sharded);
  summary.set("csv_sharded_mb_per_s", csv_mb / t_sharded);
  summary.set("csv_sharded_speedup", t_seq / t_sharded);
  summary.set("bin_records_per_s", nn / t_bin);
  summary.set("bin_mb_per_s", bin_mb / t_bin);
  summary.set("bin_speedup", t_seq / t_bin);
  summary.set("csv_sharded_soa_records_per_s", nn / t_sharded_cols);
  summary.set("bin_soa_records_per_s", nn / t_bin_cols);

  // The sweep stage needs only `log` and `columns`; drop the ~1.4 GB of
  // parked loader results before measuring cache-sensitive kernels.
  seq_runs.clear();
  sharded_runs.clear();
  bin_runs.clear();
  sharded_cols_runs.clear();
  bin_cols_runs.clear();

  // ---- fused load/throughput sweep -----------------------------------------
  TimePoint t_min = TimePoint::max();
  TimePoint t_max;
  for (const auto& r : log) {
    t_min = std::min(t_min, r.arrival);
    t_max = std::max(t_max, r.departure);
  }
  const auto spec = core::IntervalSpec::over(t_min, t_max, 50_ms);
  const auto table = core::estimate_service_times(log);
  const core::ThroughputOptions options;

  const int kSweepReps = 2;
  std::vector<double> load_only;
  const double t_load =
      best_of(kSweepReps, [&] { load_only = core::compute_load(log, spec); });
  std::vector<double> tput_only;
  const double t_tput = best_of(kSweepReps, [&] {
    tput_only = core::compute_throughput(log, spec, table, options);
  });
  core::LoadThroughput fused;
  const double t_fused = best_of(kSweepReps, [&] {
    fused = core::compute_load_throughput(log, spec, table, options);
  });
  core::LoadThroughput fused_soa;
  const double t_fused_soa = best_of(kSweepReps, [&] {
    fused_soa = core::compute_load_throughput(columns.view(), spec, table,
                                              options);
  });

  if (fused.load != load_only || fused.throughput != tput_only) {
    std::fprintf(stderr, "error: fused sweep diverged from the separate "
                         "calculators\n");
    return 1;
  }
  if (fused_soa.load != fused.load ||
      fused_soa.throughput != fused.throughput) {
    std::fprintf(stderr, "error: SoA fused sweep diverged from the AoS "
                         "sweep\n");
    return 1;
  }
  const double aos_ns = t_fused / nn * 1e9;
  const double soa_ns = t_fused_soa / nn * 1e9;
  std::printf("  sweep: load %.2fs + throughput %.2fs = %.2fs separate, "
              "fused %.2fs (%.2fx)\n",
              t_load, t_tput, t_load + t_tput, t_fused,
              (t_load + t_tput) / t_fused);
  std::printf("         fused aos %.1f ns/record, soa %.1f ns/record "
              "(%.2fx, %d threads)\n",
              aos_ns, soa_ns, t_fused / t_fused_soa,
              ThreadPool::default_thread_count());
  benchx::print_expectation("fused sweep vs separate passes", "< 1x time",
                            std::to_string((t_load + t_tput) / t_fused) + "x");
  benchx::print_expectation("SoA fused sweep ns/record", "<= 84 (3x over PR5)",
                            std::to_string(soa_ns));
  summary.set("fused_sweep_s", t_fused);
  summary.set("separate_sweep_s", t_load + t_tput);
  summary.set("fused_speedup", (t_load + t_tput) / t_fused);
  summary.set("fused_sweep_aos_ns_per_record", aos_ns);
  summary.set("fused_sweep_soa_ns_per_record", soa_ns);
  summary.set("soa_sweep_speedup_vs_aos", t_fused / t_fused_soa);

  summary.finish();
  benchx::finish_observability(args, "bench_ingest");
  return 0;
}
