// Section II-C claim: black-box transaction trace reconstruction (SysViz)
// achieves >99% accuracy for a 4-tier application even under high
// concurrent workload.
//
// We capture the full wire-level message stream (no ground-truth ids used by
// the algorithm), reconstruct every transaction tree with the per-connection
// FIFO + time-containment + LIFO-readiness algorithm, and score parent
// attribution against the simulator's ground truth across workloads.
#include <cstdio>

#include "app/experiment.h"
#include "bench_util.h"
#include "trace/reconstructor.h"
#include "util/csv.h"

using namespace tbd;
using namespace tbd::literals;

int main(int argc, char** argv) {
  const auto args = benchx::BenchArgs::parse(argc, argv);
  const Duration duration = args.run_duration(20_s);

  benchx::print_header(
      "SysViz substitute: black-box trace reconstruction accuracy");

  std::printf("  %-8s %-12s %-12s %-12s %-10s %-10s\n", "WL", "messages",
              "visits", "edge-acc", "txn-acc", "orphans");
  std::vector<double> wl_col, edge_col, txn_col;
  double moderate_edge = 1.0;  // accuracy up to WL 4,000
  double worst_edge = 1.0;
  for (int wl : {1000, 2000, 4000, 8000, 12000}) {
    app::ExperimentConfig cfg;
    cfg.workload = wl;
    cfg.warmup = 5_s;
    cfg.duration = duration;
    cfg.seed = 7777;
    cfg.record_messages = true;
    const auto result = app::run_experiment(cfg);

    trace::TraceReconstructor rec;
    rec.process(result.messages);
    const auto acc = rec.score_against_truth();
    std::printf("  %-8d %-12zu %-12llu %-12.4f %-12.4f %-10llu\n", wl,
                result.messages.size(),
                static_cast<unsigned long long>(rec.stats().visits),
                acc.edge_accuracy(), acc.transaction_accuracy(),
                static_cast<unsigned long long>(rec.stats().orphan_children));
    wl_col.push_back(wl);
    edge_col.push_back(acc.edge_accuracy());
    txn_col.push_back(acc.transaction_accuracy());
    if (wl <= 4000) moderate_edge = std::min(moderate_edge, acc.edge_accuracy());
    worst_edge = std::min(worst_edge, acc.edge_accuracy());
  }
  CsvWriter::write_columns(benchx::out_dir() + "/trace_reconstruction.csv",
                           {"workload", "edge_accuracy", "txn_accuracy"},
                           {wl_col, edge_col, txn_col});

  char buf[96];
  std::snprintf(buf, sizeof buf, "%.2f%% at WL<=4,000; %.2f%% worst overall",
                100.0 * moderate_edge, 100.0 * worst_edge);
  benchx::print_expectation("reconstruction accuracy",
                            ">99% (4-tier, high concurrency)", buf);
  std::printf(
      "\n  note: greedy black-box matching degrades near saturation when\n"
      "  per-segment service jitter (CV 1/3 here) exceeds inter-ready gaps;\n"
      "  see bench_ablations for the policy comparison and EXPERIMENTS.md\n"
      "  for the discussion of this gap vs the paper's SysViz claim.\n");
  return 0;
}
