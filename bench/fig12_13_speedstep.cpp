// Figures 12-13 + Table II: transient bottlenecks caused by Intel SpeedStep
// on the MySQL hosts (Section IV-C) and their resolution by pinning P0
// (Section IV-D).
//
//  Table II  — the P-state table (printed for reference).
//  Fig 12(a) — WL 8,000, SpeedStep on: ONE throughput trend among congested
//              intervals (MySQL prefers P8 at low average load).
//  Fig 12(b) — WL 10,000: THREE trends (P8, P4/P5 band, P0) as the governor
//              chases bursts; labeled points 5/6/7 sit on the three bands.
//  Fig 12(c) — 10 s timeline showing the clock lag.
//  Fig 13    — SpeedStep disabled: single trend, far fewer congested
//              intervals at both workloads.
#include <algorithm>
#include <cstdio>

#include "app/experiment.h"
#include "bench_util.h"
#include "core/detector.h"
#include "core/report.h"
#include "util/csv.h"
#include "util/stats.h"

using namespace tbd;
using namespace tbd::literals;

namespace {

app::ExperimentConfig ss_config(int workload, bool speedstep,
                                Duration duration) {
  app::ExperimentConfig cfg;
  cfg.workload = workload;
  cfg.warmup = 10_s;
  cfg.duration = duration;
  cfg.seed = 1213;
  cfg.speedstep_on_db = speedstep;
  return cfg;
}

struct DbAnalysis {
  app::ExperimentResult result;
  core::DetectionResult detection;
  int db1 = 0;
};

DbAnalysis analyze_db(const app::ExperimentConfig& cfg,
                      const std::vector<core::ServiceTimeTable>& tables) {
  DbAnalysis a{app::run_experiment(cfg), {}, 0};
  a.db1 = a.result.server_index_of(ntier::TierKind::kDb, 0);
  const auto spec = core::IntervalSpec::over(a.result.window_start,
                                             a.result.window_end, 50_ms);
  a.detection = core::detect_bottlenecks(
      a.result.logs[static_cast<std::size_t>(a.db1)], spec,
      tables[static_cast<std::size_t>(a.db1)]);
  return a;
}

// Clusters the throughput of congested intervals around the P-state
// capacity levels (P0/P1 and P4/P5 merged, as the paper reads them) and
// reports each band's share of the congested mass. A band is a "trend" in
// the paper's sense when it carries a dominant share (>= 25%) — the paper's
// Figure 12(a) has one trend plus "many points above the main throughput
// trend" that it does not count as trends.
struct BandShares {
  double p01 = 0.0;
  double p45 = 0.0;
  double p8 = 0.0;
  [[nodiscard]] int trends() const {
    return (p01 >= 0.25 ? 1 : 0) + (p45 >= 0.25 ? 1 : 0) + (p8 >= 0.25 ? 1 : 0);
  }
};

BandShares throughput_bands(const core::DetectionResult& d, double p0_capacity,
                            const std::vector<transient::PState>& states) {
  std::vector<int> hits(states.size(), 0);
  int congested = 0;
  for (std::size_t i = 0; i < d.states.size(); ++i) {
    if (d.states[i] != core::IntervalState::kCongested &&
        d.states[i] != core::IntervalState::kFrozen) {
      continue;
    }
    ++congested;
    int best = 0;
    double best_err = 1e300;
    for (std::size_t s = 0; s < states.size(); ++s) {
      const double level = p0_capacity * states[s].mhz / states[0].mhz;
      const double err = std::abs(d.throughput[i] - level);
      if (err < best_err) {
        best_err = err;
        best = static_cast<int>(s);
      }
    }
    ++hits[static_cast<std::size_t>(best)];
  }
  BandShares shares;
  if (congested == 0) return shares;
  shares.p01 = static_cast<double>(hits[0] + hits[1]) / congested;
  shares.p45 = static_cast<double>(hits[2] + hits[3]) / congested;
  shares.p8 = static_cast<double>(hits[4]) / congested;
  return shares;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = benchx::BenchArgs::parse(argc, argv);
  const Duration duration = args.run_duration(60_s);

  benchx::print_header(
      "Figures 12-13 / Table II: SpeedStep transient bottlenecks in MySQL");

  // ---- Table II ---------------------------------------------------------------
  std::printf("  Table II (P-states):");
  for (const auto& p : transient::xeon_pstates()) {
    std::printf("  %s=%.0fMHz", p.name.c_str(), p.mhz);
  }
  std::printf("\n");

  const auto tables = app::calibrate_service_times(ss_config(8000, false, duration));
  const auto states = transient::xeon_pstates();

  // Cross-configuration comparisons need ONE yardstick: N* and TPmax are
  // properties of the server at its reference clock, so both come from the
  // SpeedStep-off run of each workload and the enabled run is classified
  // against them. (A per-run N* on the enabled run's multi-band curve lands
  // on the P0 band and under-counts the P8-bound congestion.)
  double congested_on[2] = {0, 0};
  double congested_off[2] = {0, 0};
  int trends_on[2] = {0, 0};
  std::printf("\n  %-8s %-10s %-8s %-12s %-9s %-22s %-14s\n", "WL",
              "SpeedStep", "N*", "congested%", "trends",
              "band shares P01/P45/P8", "P8 residency");
  for (const int wl : {8000, 10000}) {
    const int idx = wl == 8000 ? 0 : 1;
    const auto off = analyze_db(ss_config(wl, false, duration), tables);
    const auto on = analyze_db(ss_config(wl, true, duration), tables);

    // Re-classify the enabled run against the off-run's N*/TPmax.
    core::DetectionResult on_shared = on.detection;
    on_shared.nstar = off.detection.nstar;
    on_shared.states = core::classify_intervals(
        on_shared.load, on_shared.throughput, on_shared.nstar);
    on_shared.episodes = core::extract_episodes(on_shared.states,
                                                on_shared.load, on_shared.spec);

    congested_off[idx] = off.detection.congested_fraction();
    congested_on[idx] = on_shared.congested_fraction();
    // P0 capacity anchor from the pinned-P0 run: its top-percentile interval
    // throughput. (Anchoring on the enabled run is circular — when the
    // governor parks in P8, that run's own maximum IS the P8 ceiling.)
    const double p0_capacity = quantile(off.detection.throughput, 0.995);
    const BandShares bands = throughput_bands(on_shared, p0_capacity, states);
    trends_on[idx] = bands.trends();

    double p8_res = 0.0;
    if (!on.result.pstate_residency.empty()) {
      p8_res = on.result.pstate_residency[0].back();
    }
    char share_buf[32];
    std::snprintf(share_buf, sizeof share_buf, "%.2f/%.2f/%.2f", bands.p01,
                  bands.p45, bands.p8);
    std::printf("  %-8d %-10s %-8.1f %-12.1f %-9d %-22s %-14.2f\n", wl, "on",
                on_shared.nstar.n_star, 100.0 * congested_on[idx],
                trends_on[idx], share_buf, p8_res);
    std::printf("  %-8d %-10s %-8.1f %-12.1f %-9s %-22s %-14s\n", wl, "off",
                off.detection.nstar.n_star, 100.0 * congested_off[idx], "1",
                "-", "-");
    CsvWriter::write_columns(
        benchx::out_dir() + std::string{wl == 8000 ? "/fig12a" : "/fig12b"} +
            "_scatter.csv",
        {"load", "norm_tput_per_s"}, {on.detection.load, on.detection.throughput});
    CsvWriter::write_columns(
        benchx::out_dir() + std::string{wl == 8000 ? "/fig13a" : "/fig13b"} +
            "_scatter.csv",
        {"load", "norm_tput_per_s"},
        {off.detection.load, off.detection.throughput});

    // Figure 12(c)/13(c): 10s timelines for the WL 10,000 cells.
    if (wl == 10000) {
      for (const auto* a : {&on, &off}) {
        const auto slice = core::IntervalSpec::over(
            a->result.window_start, a->result.window_start + 10_s, 50_ms);
        const auto& log = a->result.logs[static_cast<std::size_t>(a->db1)];
        const auto load10 = core::compute_load(log, slice);
        const auto tput10 = core::compute_throughput(
            log, slice, tables[static_cast<std::size_t>(a->db1)],
            core::ThroughputOptions{});
        CsvWriter::write_columns(
            benchx::out_dir() +
                (a == &on ? "/fig12c_timeline.csv" : "/fig13c_timeline.csv"),
            {"t_s", "load", "norm_tput_per_s"},
            {slice.midpoints_seconds(), load10, tput10});
      }
      std::printf("%s\n",
                  core::ascii_scatter(on.detection.load,
                                      on.detection.throughput,
                                      off.detection.nstar.n_star)
                      .c_str());
    }
  }

  // ---- paper-vs-measured -------------------------------------------------------
  char buf[96];
  std::snprintf(buf, sizeof buf, "%d trend(s)", trends_on[0]);
  benchx::print_expectation("WL 8,000 + SpeedStep congested bands",
                            "one trend (P8)", buf);
  std::snprintf(buf, sizeof buf, "%d trend(s) (%s than WL 8,000)",
                trends_on[1], trends_on[1] > trends_on[0] ? "more" : "not more");
  benchx::print_expectation("WL 10,000 + SpeedStep congested bands",
                            "three trends (P8, P4/P5, P0)", buf);
  std::snprintf(buf, sizeof buf, "%.1f%% -> %.1f%%", 100.0 * congested_on[0],
                100.0 * congested_off[0]);
  benchx::print_expectation("WL 8,000 congestion after disabling",
                            "much less frequent", buf);
  std::snprintf(buf, sizeof buf, "%.1f%% -> %.1f%%", 100.0 * congested_on[1],
                100.0 * congested_off[1]);
  benchx::print_expectation("WL 10,000 congestion after disabling",
                            "much less frequent", buf);
  return 0;
}
