// Shared plumbing for the figure-reproduction binaries: output directory,
// section headers, and the --full flag that switches from quick (CI-sized)
// runs to the paper's full 3-minute runs.
#pragma once

#include <string>

#include "util/time.h"

namespace tbd::benchx {

struct BenchArgs {
  /// Paper-length runs (3 min measurement) instead of the quick default.
  bool full = false;

  static BenchArgs parse(int argc, char** argv);

  /// Measurement duration: paper length when --full, else `quick`.
  [[nodiscard]] Duration run_duration(Duration quick) const {
    return full ? Duration::seconds(180) : quick;
  }
};

/// Directory for CSV dumps (created on first use), "bench_out".
[[nodiscard]] std::string out_dir();

/// Prints a boxed section header.
void print_header(const std::string& title);

/// Prints a "paper vs measured" line for EXPERIMENTS.md cross-checking.
void print_expectation(const std::string& what, const std::string& paper,
                       const std::string& measured);

}  // namespace tbd::benchx
