// Shared plumbing for the figure-reproduction binaries: output directory,
// section headers, the --full flag that switches from quick (CI-sized)
// runs to the paper's full 3-minute runs, and the machine-readable
// bench_summary.json perf record that gives successive PRs a wall-clock /
// events-per-second trajectory to compare against.
#pragma once

#include <chrono>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "util/time.h"

namespace tbd::benchx {

struct BenchArgs {
  /// Paper-length runs (3 min measurement) instead of the quick default.
  bool full = false;
  /// --trace-out FILE: record pipeline spans, write Chrome trace JSON here.
  /// parse() enables the global tracer when set.
  std::string trace_out;
  /// --metrics-out FILE: write the run manifest (config, git, metrics
  /// snapshot, span rollup) here.
  std::string metrics_out;

  static BenchArgs parse(int argc, char** argv);

  /// Measurement duration: paper length when --full, else `quick`.
  [[nodiscard]] Duration run_duration(Duration quick) const {
    return full ? Duration::seconds(180) : quick;
  }
};

/// Writes the observability outputs requested by `args` (no-op when neither
/// flag was given): the Chrome trace to args.trace_out and the run manifest
/// — stamped with `tool` and `config` key/values — to args.metrics_out.
/// Call once at the end of main(), after the measured work.
void finish_observability(
    const BenchArgs& args, const std::string& tool,
    const std::vector<std::pair<std::string, std::string>>& config = {});

/// Directory for CSV dumps (created on first use), "bench_out".
[[nodiscard]] std::string out_dir();

/// Prints a boxed section header.
void print_header(const std::string& title);

/// Prints a "paper vs measured" line for EXPERIMENTS.md cross-checking.
void print_expectation(const std::string& what, const std::string& paper,
                       const std::string& measured);

/// Perf record for one bench run. Construction starts the wall-clock timer;
/// destruction (or finish()) writes/merges the entry — wall seconds, thread
/// count, plus any set() metrics — into bench_out/bench_summary.json keyed
/// by `bench_name`. Entries of other benches in the file are preserved, so
/// running the whole suite accumulates one summary object. The file carries
/// a "schema_version" (currently 8) and the "git" describe of the writing
/// build, so trajectories across PRs are attributable to commits.
class BenchSummary {
 public:
  explicit BenchSummary(std::string bench_name);
  ~BenchSummary();
  BenchSummary(const BenchSummary&) = delete;
  BenchSummary& operator=(const BenchSummary&) = delete;

  /// Records a numeric metric (e.g. "engine_events_per_s").
  void set(const std::string& key, double value);

  /// Writes the entry now (idempotent; the destructor then does nothing).
  void finish();

 private:
  std::string name_;
  std::map<std::string, double> metrics_;
  std::chrono::steady_clock::time_point started_;
  bool finished_ = false;
};

}  // namespace tbd::benchx
