// Figures 9-11: transient bottlenecks caused by JVM GC in Tomcat
// (Section IV-A) and their resolution by upgrading JDK 1.5 -> 1.6
// (Section IV-B).
//
//  Fig 9(a) Tomcat load/throughput at WL 7,000, JDK 1.5: only a few points
//           past N*.
//  Fig 9(b) Same at WL 14,000: frequent transient bottlenecks, including
//           POIs — high load with ~zero throughput (stop-the-world freezes).
//  Fig 9(c) 10 s timeline: load peaks with zero-throughput intervals.
//  Fig 10(a) GC running ratio correlates with Tomcat load peaks.
//  Fig 10(b) Tomcat load correlates with system response time.
//  Fig 11(a) JDK 1.6 at WL 14,000: POIs gone.
//  Fig 11(b/c) 50 ms response-time timeline after/before the upgrade.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iterator>
#include <span>

#include "app/experiment.h"
#include "bench_util.h"
#include "core/detector.h"
#include "core/report.h"
#include "metrics/response_collector.h"
#include "util/csv.h"
#include "util/stats.h"
#include "util/thread_pool.h"

using namespace tbd;
using namespace tbd::literals;

namespace {

app::ExperimentConfig gc_config(int workload, transient::GcConfig gc,
                                Duration duration) {
  app::ExperimentConfig cfg;
  cfg.workload = workload;
  cfg.warmup = 10_s;
  cfg.duration = duration;
  cfg.seed = 415;
  cfg.gc_on_app = true;
  cfg.gc = gc;
  return cfg;
}

struct TomcatAnalysis {
  app::ExperimentResult result;
  core::DetectionResult detection;
  int app1 = 0;
};

TomcatAnalysis analyze_tomcat(const app::ExperimentConfig& cfg,
                              const std::vector<core::ServiceTimeTable>& tables) {
  TomcatAnalysis a{app::run_experiment(cfg), {}, 0};
  a.app1 = a.result.server_index_of(ntier::TierKind::kApp, 0);
  const auto spec = core::IntervalSpec::over(a.result.window_start,
                                             a.result.window_end, 50_ms);
  a.detection = core::detect_bottlenecks(
      a.result.logs[static_cast<std::size_t>(a.app1)], spec,
      tables[static_cast<std::size_t>(a.app1)]);
  return a;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = benchx::BenchArgs::parse(argc, argv);
  const Duration duration = args.run_duration(60_s);

  benchx::print_header("Figures 9-11: JVM GC transient bottlenecks in Tomcat");
  benchx::BenchSummary summary{"fig09_11_jvm_gc"};
  const auto tables = app::calibrate_service_times(
      gc_config(7000, transient::jdk15_config(), duration));

  // The four figure arms (9a, 9b, 10, 11a) are independent experiments
  // sharing one calibration — run them together, then report in order.
  auto corr_cfg = gc_config(8000, transient::jdk15_config(), duration);
  corr_cfg.clients.bursts_enabled = false;
  const app::ExperimentConfig arm_cfgs[] = {
      gc_config(7000, transient::jdk15_config(), duration),
      gc_config(14000, transient::jdk15_config(), duration),
      corr_cfg,
      gc_config(14000, transient::jdk16_config(), duration),
  };
  std::vector<TomcatAnalysis> arms(std::size(arm_cfgs));
  shared_pool().parallel_for_indexed(arms.size(), [&](std::size_t a) {
    arms[a] = analyze_tomcat(arm_cfgs[a], tables);
  });
  const auto& low = arms[0];
  const auto& high = arms[1];
  const auto& mid = arms[2];
  const auto& fixed = arms[3];

  // ---- Figure 9(a): JDK 1.5 at WL 7,000 -------------------------------------
  std::printf("\nJDK 1.5, WL 7,000 (Figure 9a):\n%s",
              core::summarize(low.detection, "Tomcat (app1)").c_str());

  // ---- Figure 9(b,c): JDK 1.5 at WL 14,000 ----------------------------------
  std::printf("\nJDK 1.5, WL 14,000 (Figure 9b):\n%s",
              core::summarize(high.detection, "Tomcat (app1)").c_str());
  std::printf("%s\n",
              core::ascii_scatter(high.detection.load,
                                  high.detection.throughput,
                                  high.detection.nstar.n_star)
                  .c_str());
  CsvWriter::write_columns(benchx::out_dir() + "/fig09a_wl7000_scatter.csv",
                           {"load", "norm_tput_per_s"},
                           {low.detection.load, low.detection.throughput});
  CsvWriter::write_columns(benchx::out_dir() + "/fig09b_wl14000_scatter.csv",
                           {"load", "norm_tput_per_s"},
                           {high.detection.load, high.detection.throughput});

  const auto slice10 = core::IntervalSpec::over(
      high.result.window_start, high.result.window_start + 10_s, 50_ms);
  const auto load10 = core::compute_load(
      high.result.logs[static_cast<std::size_t>(high.app1)], slice10);
  const auto tput10 = core::compute_throughput(
      high.result.logs[static_cast<std::size_t>(high.app1)], slice10,
      tables[static_cast<std::size_t>(high.app1)], core::ThroughputOptions{});
  CsvWriter::write_columns(benchx::out_dir() + "/fig09c_timeline.csv",
                           {"t_s", "load", "norm_tput_per_s"},
                           {slice10.midpoints_seconds(), load10, tput10});

  // ---- Figure 10: GC ratio vs load, load vs system RT ------------------------
  // Run slightly below the knee with the client burst modulator off, so GC
  // is the only transient factor and queues drain between collections (in
  // our calibration, beyond the knee the Tomcat queue is noise-dominated —
  // see EXPERIMENTS.md). The load response LAGS the stop-the-world window
  // (the queue peaks at pause end and drains after), so we report the
  // peak lagged correlation alongside a first-order queue-response kernel.
  const auto spec = core::IntervalSpec::over(mid.result.window_start,
                                             mid.result.window_end, 50_ms);
  std::vector<core::TimeWindow> gc_windows;
  for (const auto& e : mid.result.gc_logs[0]) {
    gc_windows.push_back(core::TimeWindow{e.start, e.end});
  }
  const auto gc_ratio = core::interval_coverage(gc_windows, spec);

  double corr_gc_load = 0.0;  // best lag in 0..250ms
  for (std::size_t lag = 0; lag <= 5; ++lag) {
    const std::span<const double> a{mid.detection.load.data() + lag,
                                    mid.detection.load.size() - lag};
    const std::span<const double> b{gc_ratio.data(), gc_ratio.size() - lag};
    corr_gc_load = std::max(corr_gc_load, pearson_correlation(b, a));
  }
  // First-order queue response: exponential kernel over the GC coverage.
  std::vector<double> gc_response(gc_ratio.size(), 0.0);
  double acc = 0.0;
  const double decay = std::exp(-50.0 / 250.0);
  for (std::size_t i = 0; i < gc_ratio.size(); ++i) {
    acc = acc * decay + gc_ratio[i];
    gc_response[i] = acc;
  }
  const double corr_gc_kernel =
      pearson_correlation(gc_response, mid.detection.load);

  metrics::ResponseCollector responses;
  for (const auto& p : mid.result.pages) responses.record(p);
  const auto rt_series = responses.interval_mean_rt(
      mid.result.window_start, mid.result.window_end, 50_ms);
  const double corr_load_rt =
      pearson_correlation(mid.detection.load, rt_series);
  std::printf(
      "\nFig 10 (WL 8,000, bursts off): GC/load r=%.2f (best lag), "
      "queue-kernel r=%.2f, load/RT r=%.2f\n",
      corr_gc_load, corr_gc_kernel, corr_load_rt);
  CsvWriter::write_columns(benchx::out_dir() + "/fig10_correlations.csv",
                           {"t_s", "gc_ratio", "tomcat_load", "system_rt_s"},
                           {spec.midpoints_seconds(), gc_ratio,
                            mid.detection.load, rt_series});

  // ---- Figure 11: upgrade to JDK 1.6 ----------------------------------------
  std::printf("\nJDK 1.6, WL 14,000 (Figure 11a):\n%s",
              core::summarize(fixed.detection, "Tomcat (app1)").c_str());
  CsvWriter::write_columns(benchx::out_dir() + "/fig11a_wl14000_scatter.csv",
                           {"load", "norm_tput_per_s"},
                           {fixed.detection.load, fixed.detection.throughput});

  auto rt_50ms = [](const app::ExperimentResult& res) {
    metrics::ResponseCollector collector;
    for (const auto& p : res.pages) collector.record(p);
    return collector.interval_mean_rt(res.window_start, res.window_end, 50_ms);
  };
  const auto rt_jdk15 = rt_50ms(high.result);
  const auto rt_jdk16 = rt_50ms(fixed.result);
  CsvWriter::write_columns(benchx::out_dir() + "/fig11bc_rt_timeline.csv",
                           {"t_s", "rt_jdk16_s", "rt_jdk15_s"},
                           {spec.midpoints_seconds(), rt_jdk16, rt_jdk15});

  // Spike metric: 50ms windows whose mean RT exceeds 5s (single-window
  // peaks are retransmission-storm noise at this workload in both arms).
  std::size_t rt15_spikes = 0, rt16_spikes = 0;
  double rt15_mean = 0.0, rt16_mean = 0.0;
  for (double r : rt_jdk15) {
    rt15_mean += r / static_cast<double>(rt_jdk15.size());
    if (r > 5.0) ++rt15_spikes;
  }
  for (double r : rt_jdk16) {
    rt16_mean += r / static_cast<double>(rt_jdk16.size());
    if (r > 5.0) ++rt16_spikes;
  }

  // ---- paper-vs-measured ----------------------------------------------------
  char buf[96];
  std::printf("\n");
  std::snprintf(buf, sizeof buf, "%.1f%% congested (vs %.1f%% at WL 14,000)",
                100.0 * low.detection.congested_fraction(),
                100.0 * high.detection.congested_fraction());
  benchx::print_expectation("JDK1.5 WL 7,000",
                            "far less congested than WL 14,000", buf);
  std::snprintf(buf, sizeof buf, "%zu frozen (POIs), %.1f%% congested",
                high.detection.frozen_intervals(),
                100.0 * high.detection.congested_fraction());
  benchx::print_expectation("JDK1.5 WL 14,000", "frequent POIs in the box", buf);
  std::snprintf(buf, sizeof buf, "r=%.2f", corr_gc_load);
  benchx::print_expectation("GC ratio vs load", "strong positive", buf);
  std::snprintf(buf, sizeof buf, "r=%.2f", corr_load_rt);
  benchx::print_expectation("load vs system RT", "strong positive", buf);
  std::snprintf(buf, sizeof buf, "%zu frozen after upgrade",
                fixed.detection.frozen_intervals());
  benchx::print_expectation("JDK1.6 WL 14,000", "POIs disappear", buf);
  std::snprintf(buf, sizeof buf, ">5s windows %zu -> %zu; mean %.2fs -> %.2fs",
                rt15_spikes, rt16_spikes, rt15_mean, rt16_mean);
  benchx::print_expectation("50ms RT fluctuation", "large spikes disappear", buf);
  double engine_events = 0.0;
  for (const auto& arm : arms) {
    engine_events += static_cast<double>(arm.result.engine_events);
  }
  summary.set("engine_events", engine_events);
  return 0;
}
