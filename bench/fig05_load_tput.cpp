// Figure 5: fine-grained load/throughput analysis of MySQL at WL 7,000.
//
//  (a) MySQL load per 50 ms over a 12 s window — frequent high peaks;
//  (b) normalized throughput over the same window;
//  (c) the load-vs-throughput scatter: the "main sequence curve" rising to
//      TPmax with congestion point N*, and the three labeled point kinds —
//      (1) below N* with high throughput (not congested), (2) far above N*
//      (congested), (3) zero load (idle).
#include <cstdio>

#include "app/experiment.h"
#include "bench_util.h"
#include "core/detector.h"
#include "core/report.h"
#include "util/csv.h"

using namespace tbd;
using namespace tbd::literals;

int main(int argc, char** argv) {
  const auto args = benchx::BenchArgs::parse(argc, argv);

  app::ExperimentConfig cfg;
  cfg.workload = 7000;
  cfg.warmup = 10_s;
  cfg.duration = args.run_duration(60_s);
  cfg.seed = 51;
  // Figure 5 is captioned "the case in Figure 2", i.e. the motivating
  // configuration with SpeedStep enabled on the MySQL hosts — which is what
  // gives MySQL its frequent short-term congestions at a workload this far
  // below the knee. (Section IV-C's "previous experiments disable SpeedStep"
  // note contradicts the caption; we follow the caption because the figure's
  // congestion pattern requires it. See EXPERIMENTS.md.)
  cfg.speedstep_on_db = true;

  benchx::print_header(
      "Figure 5: MySQL load/throughput correlation at 50ms, WL 7,000");
  const auto tables = app::calibrate_service_times(cfg);
  const auto result = app::run_experiment(cfg);
  const int db1 = result.server_index_of(ntier::TierKind::kDb, 0);
  const auto& log = result.logs[static_cast<std::size_t>(db1)];
  const auto& table = tables[static_cast<std::size_t>(db1)];

  // Full-window analysis for N* / TPmax (the paper derives N* from the
  // scatter of the whole run).
  const auto spec =
      core::IntervalSpec::over(result.window_start, result.window_end, 50_ms);
  const auto detection = core::detect_bottlenecks(log, spec, table);
  std::printf("%s\n", core::summarize(detection, "MySQL (db1)").c_str());
  std::printf("%s\n", core::ascii_scatter(detection.load, detection.throughput,
                                          detection.nstar.n_star)
                          .c_str());

  // 12-second timeline slice (Figures 5a/5b).
  const auto slice = core::IntervalSpec::over(
      result.window_start, result.window_start + 12_s, 50_ms);
  const auto load12 = core::compute_load(log, slice);
  const auto tput12 =
      core::compute_throughput(log, slice, table, core::ThroughputOptions{});
  CsvWriter::write_columns(benchx::out_dir() + "/fig05ab_timeline.csv",
                           {"t_s", "load", "norm_tput_per_s"},
                           {slice.midpoints_seconds(), load12, tput12});
  CsvWriter::write_columns(benchx::out_dir() + "/fig05c_scatter.csv",
                           {"load", "norm_tput_per_s"},
                           {detection.load, detection.throughput});

  // The three labeled point kinds of Figure 5(c).
  int congested = -1, normal_busy = -1, idle = -1;
  for (std::size_t i = 0; i < detection.states.size(); ++i) {
    switch (detection.states[i]) {
      case core::IntervalState::kCongested:
      case core::IntervalState::kFrozen:
        if (congested < 0 || detection.load[i] >
            detection.load[static_cast<std::size_t>(congested)]) {
          congested = static_cast<int>(i);
        }
        break;
      case core::IntervalState::kNormal:
        if (normal_busy < 0 || detection.throughput[i] >
            detection.throughput[static_cast<std::size_t>(normal_busy)]) {
          normal_busy = static_cast<int>(i);
        }
        break;
      case core::IntervalState::kIdle:
        idle = static_cast<int>(i);
        break;
    }
  }
  auto show = [&](const char* label, int idx) {
    if (idx < 0) {
      std::printf("  point %s: (none found)\n", label);
      return;
    }
    const auto u = static_cast<std::size_t>(idx);
    std::printf("  point %s: t=%.2fs load=%.1f tput=%.0f/s state=%s\n", label,
                spec.interval_start(u).seconds_f(), detection.load[u],
                detection.throughput[u],
                core::to_string(detection.states[u]));
  };
  show("1 (high tput, below N*)", normal_busy);
  show("2 (congested, load >> N*)", congested);
  show("3 (idle)", idle);

  char measured[64];
  std::snprintf(measured, sizeof measured, "N*=%.1f, %.1f%% congested",
                detection.nstar.n_star, 100.0 * detection.congested_fraction());
  benchx::print_expectation("MySQL at WL 7,000",
                            "short-term congestions from time to time",
                            measured);
  return 0;
}
