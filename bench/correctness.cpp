// bench_correctness: wall-time of the correctness harness itself.
//
// The differential-oracle suite and the fuzz-corpus replay are part of the
// tier-1 gate, so their cost is a build-health metric: if the seeded
// property sweep or the corpus replay gets slower PR-over-PR, the gate is
// quietly eroding. This bench runs both in-process —
//
//   * property suite — seeded generate -> optimized sweep/detect vs naive
//     oracle, verified bit-for-bit (the same comparison tests/oracle/ runs);
//   * fuzz replay    — every checked-in corpus input through the optimized
//     parsers, differentially against the CSV/TBDR oracles;
//
// and lands the wall-times in bench_out/bench_summary.json under
// "correctness" (schema_version 4 added this entry).
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/detector.h"
#include "core/fused_sweep.h"
#include "testing/generators.h"
#include "testing/oracles.h"
#include "trace/capture_file.h"
#include "trace/log_io.h"
#include "trace/request_log_file.h"
#include "util/rng.h"

namespace {

using namespace tbd;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

bool bits_equal(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::bit_cast<std::uint64_t>(a[i]) != std::bit_cast<std::uint64_t>(b[i]))
      return false;
  }
  return true;
}

bool same_records(const trace::RequestLog& a, const trace::RequestLog& b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(),
                                   a.size() * sizeof(trace::RequestRecord)) == 0);
}

// One seeded differential case: the same optimized-vs-oracle comparison the
// ctest suite runs, returning false on any bit divergence.
bool property_case(std::uint64_t seed) {
  Rng rng{seed};
  pt::LogGenConfig config;
  config.max_records = 20 + rng.uniform_index(140);
  const auto spec = pt::grid_for(config);
  const auto log = pt::generate_request_log(rng, config);
  const auto table = pt::generate_service_table(rng, config.classes);
  const auto options = pt::generate_throughput_options(rng);

  const auto fused = core::compute_load_throughput(log, spec, table, options);
  if (!bits_equal(fused.load, pt::oracle_load(log, spec))) return false;
  if (!bits_equal(fused.throughput,
                  pt::oracle_throughput(log, spec, table, options)))
    return false;

  const auto fast = core::detect_bottlenecks(log, spec, table);
  const auto slow = pt::oracle_detect(log, spec, table);
  return bits_equal(fast.load, slow.load) &&
         bits_equal(fast.throughput, slow.throughput) &&
         fast.states == slow.states &&
         fast.episodes.size() == slow.episodes.size();
}

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in{path, std::ios::binary};
  return {std::istreambuf_iterator<char>{in}, std::istreambuf_iterator<char>{}};
}

// The replay harnesses' core comparisons (fuzz/), minus the abort-on-fail
// plumbing: optimized parser vs oracle on the exact corpus bytes.
bool replay_input(const std::string& family, const std::string& bytes) {
  if (family == "csv") {
    if (bytes.empty()) return true;
    const int shards = 1 + (static_cast<unsigned char>(bytes[0]) % 8);
    const std::string_view text{bytes.data() + 1, bytes.size() - 1};
    const auto sharded = trace::parse_request_log_csv(text, shards);
    const auto oracle = pt::oracle_parse_csv(text);
    return same_records(sharded.records, oracle.records) &&
           sharded.skipped_lines == oracle.skipped_lines;
  }
  if (family == "tbdr") {
    const auto fast = trace::decode_request_log_bin(bytes);
    const auto slow = pt::oracle_decode_request_log_bin(bytes);
    return fast.ok == slow.ok && fast.error == slow.error &&
           same_records(fast.records, slow.records);
  }
  // capture: decode, and on success the re-encode must reproduce the input.
  const auto decoded = trace::decode_capture(bytes);
  return !decoded.ok || trace::encode_capture(decoded.messages) == bytes;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = benchx::BenchArgs::parse(argc, argv);
  const std::uint64_t cases = args.full ? 5'000 : 1'000;

  benchx::print_header("Correctness harness: property suite + corpus replay");
  benchx::BenchSummary summary{"correctness"};

  // ---- seeded property suite ------------------------------------------------
  auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t seed = 0; seed < cases; ++seed) {
    if (!property_case(seed)) {
      std::fprintf(stderr, "error: differential divergence at seed %llu\n",
                   static_cast<unsigned long long>(seed));
      return 1;
    }
  }
  const double t_property = seconds_since(t0);
  std::printf("  property suite: %llu cases in %.2fs (%.0f cases/s)\n",
              static_cast<unsigned long long>(cases), t_property,
              static_cast<double>(cases) / t_property);
  summary.set("property_cases", static_cast<double>(cases));
  summary.set("property_wall_s", t_property);
  summary.set("property_cases_per_s", static_cast<double>(cases) / t_property);

  // ---- corpus replay --------------------------------------------------------
  // Run from the repo root (as tier1.sh does); from elsewhere the corpus is
  // simply absent and the stage records zero inputs.
  namespace fs = std::filesystem;
  const fs::path root =
      fs::exists("tests/corpus") ? "tests/corpus" : "../tests/corpus";
  std::size_t inputs = 0;
  std::size_t bytes_total = 0;
  double t_replay = 0.0;
  if (fs::exists(root)) {
    struct Input {
      std::string family, bytes;
    };
    std::vector<Input> corpus;
    for (const std::string family : {"csv", "tbdr", "capture"}) {
      const fs::path dir = root / family;
      if (!fs::exists(dir)) continue;
      for (const auto& entry : fs::directory_iterator{dir}) {
        if (!entry.is_regular_file()) continue;
        corpus.push_back({family, read_file(entry.path())});
        bytes_total += corpus.back().bytes.size();
      }
    }
    // Replay the whole corpus several times; tiny inputs make a single pass
    // too short to time on this host.
    const int reps = 50;
    t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r) {
      for (const auto& input : corpus) {
        if (!replay_input(input.family, input.bytes)) {
          std::fprintf(stderr, "error: replay divergence in %s corpus\n",
                       input.family.c_str());
          return 1;
        }
      }
    }
    t_replay = seconds_since(t0) / reps;
    inputs = corpus.size();
    std::printf("  corpus replay: %zu inputs (%zu bytes) in %.4fs/pass\n",
                inputs, bytes_total, t_replay);
  } else {
    std::printf("  corpus replay: tests/corpus not found, skipped\n");
  }
  summary.set("replay_inputs", static_cast<double>(inputs));
  summary.set("replay_wall_s", t_replay);

  summary.finish();
  benchx::finish_observability(args, "bench_correctness");
  return 0;
}
