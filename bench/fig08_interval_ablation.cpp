// Figure 8: impact of the monitoring time-interval length on the
// load/throughput correlation (MySQL at WL 14,000).
//
//  (a) 20 ms — the main-sequence shape blurs (normalized-throughput error
//      per interval grows as fewer requests land in each);
//  (b) 50 ms — the sweet spot the paper uses;
//  (c) 1 s  — variation averages out: load collapses into a narrow band and
//      the transient congestion becomes invisible.
//
// We quantify "blur" with the scatter of throughput within load bins
// (residual CV around the binned main-sequence curve) and "averaging-out"
// with the dynamic range of the measured load.
#include <cmath>
#include <cstdio>
#include <iterator>

#include "app/experiment.h"
#include "bench_util.h"
#include "core/detector.h"
#include "util/csv.h"
#include "util/stats.h"
#include "util/thread_pool.h"

using namespace tbd;
using namespace tbd::literals;

namespace {

// Mean within-bin coefficient of variation of throughput across load bins —
// high = blurred main sequence.
double residual_cv(std::span<const double> load, std::span<const double> tput,
                   int bins) {
  double lmax = 0.0;
  for (double l : load) lmax = std::max(lmax, l);
  if (lmax <= 0.0) return 0.0;
  std::vector<RunningStats> stats(static_cast<std::size_t>(bins));
  for (std::size_t i = 0; i < load.size(); ++i) {
    auto b = static_cast<int>(load[i] / lmax * (bins - 1));
    stats[static_cast<std::size_t>(std::clamp(b, 0, bins - 1))].add(tput[i]);
  }
  RunningStats cv;
  for (const auto& s : stats) {
    if (s.count() >= 5 && s.mean() > 0.0) cv.add(s.stddev() / s.mean());
  }
  return cv.mean();
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = benchx::BenchArgs::parse(argc, argv);

  // The paper runs this ablation on MySQL at WL 14,000. In our calibration
  // the app tier saturates first and smooths the DB's arrival process flat
  // at that workload, leaving nothing fine-grained to ablate; the regime the
  // figure is about — sub-second congestion episodes — is where our MySQL
  // lives at WL 8,000 with SpeedStep enabled (the Figure 2/12 configuration).
  app::ExperimentConfig cfg;
  cfg.workload = 8000;
  cfg.warmup = 10_s;
  cfg.duration = args.run_duration(60_s);
  cfg.seed = 88;
  cfg.speedstep_on_db = true;

  benchx::print_header(
      "Figure 8: interval-length ablation, MySQL at WL 8,000 (SpeedStep on)");
  benchx::BenchSummary summary{"fig08_interval_ablation"};

  // The calibration pass and the measurement run are independent
  // simulations — overlap them on the pool.
  std::vector<core::ServiceTimeTable> tables;
  app::ExperimentResult result;
  shared_pool().parallel_for_indexed(2, [&](std::size_t task) {
    if (task == 0) {
      tables = app::calibrate_service_times(cfg);
    } else {
      result = app::run_experiment(cfg);
    }
  });
  const int db1 = result.server_index_of(ntier::TierKind::kDb, 0);
  const auto& log = result.logs[static_cast<std::size_t>(db1)];
  const auto& table = tables[static_cast<std::size_t>(db1)];

  std::printf("  %-10s %-9s %-11s %-12s %-12s %-10s\n", "interval", "points",
              "load range", "residualCV", "congested%", "N*");
  struct Probe {
    Duration width;
    const char* name;
    const char* csv;
  };
  const Probe probes[] = {{20_ms, "20ms", "fig08a_20ms.csv"},
                          {50_ms, "50ms", "fig08b_50ms.csv"},
                          {1_s, "1s", "fig08c_1s.csv"}};
  // The three interval widths analyze the same immutable log — fan the
  // detections out, then report in probe order.
  std::vector<core::DetectionResult> detections(std::size(probes));
  shared_pool().parallel_for_indexed(detections.size(), [&](std::size_t p) {
    const auto spec = core::IntervalSpec::over(result.window_start,
                                               result.window_end,
                                               probes[p].width);
    detections[p] = core::detect_bottlenecks(log, spec, table);
  });
  double cv20 = 0.0, cv50 = 0.0;
  double range50 = 0.0, range1s = 0.0;
  for (std::size_t p = 0; p < std::size(probes); ++p) {
    const auto& probe = probes[p];
    const auto& detection = detections[p];
    double lmax = 0.0;
    for (double l : detection.load) lmax = std::max(lmax, l);
    const double cv = residual_cv(detection.load, detection.throughput, 25);
    std::printf("  %-10s %-9zu 0..%-8.1f %-12.3f %-12.1f %-10.1f\n", probe.name,
                detection.load.size(), lmax, cv,
                100.0 * detection.congested_fraction(), detection.nstar.n_star);
    CsvWriter::write_columns(benchx::out_dir() + "/" + probe.csv,
                             {"load", "norm_tput_per_s"},
                             {detection.load, detection.throughput});
    if (probe.width == 20_ms) cv20 = cv;
    if (probe.width == 50_ms) {
      cv50 = cv;
      range50 = lmax;
    }
    if (probe.width == 1_s) range1s = lmax;
  }

  benchx::print_expectation("20ms vs 50ms main-sequence blur",
                            "20ms blurred (normalization error)",
                            cv20 > cv50 ? "20ms blurrier" : "NOT blurrier");
  benchx::print_expectation("1s vs 50ms load dynamic range",
                            "1s averages the peaks away",
                            range1s < 0.6 * range50 ? "range collapsed"
                                                    : "range kept");
  summary.set("engine_events", static_cast<double>(result.engine_events));
  return 0;
}
