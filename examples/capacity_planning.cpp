// Capacity planning with the library: sweep workload, find the knee, and
// compare what three lenses report —
//   * MVA (queueing model): where the mean saturates,
//   * coarse utilization: which tier looks hot at 1s granularity,
//   * fine-grained detection: which tier actually congests first, and how
//     far below the knee transient bottlenecks start hurting the tail.
//
// The punchline mirrors the paper: the SLA is violated by transient
// bottlenecks well before any tier's average utilization says "saturated".
#include <cstdio>
#include <vector>

#include "app/experiment.h"
#include "baseline/mva.h"
#include "core/detector.h"
#include "workload/browse_mix.h"

using namespace tbd;
using namespace tbd::literals;

int main() {
  std::printf("=== Capacity planning for 1L/2S/1L/2S, browse-only mix ===\n");

  // MVA knee prediction from the calibrated demands.
  const auto classes = workload::rubbos_browse_mix();
  baseline::MvaModel model;
  model.stations = {
      {"web", workload::mean_web_demand(classes) / 1e6 / 2.0},
      {"app", workload::mean_app_demand(classes) / 1e6 / 2.0},
      {"mw", workload::mean_mw_demand_per_page(classes) / 1e6 / 2.0},
      {"db", workload::mean_db_demand_per_page(classes) / 1e6 / 2.0},
  };
  model.delay_s =
      (4.0 + 4.0 * workload::mean_queries_per_page(classes)) * 150e-6;
  model.think_s = 7.0;
  double x_max = 0.0;
  for (const auto& s : model.stations) {
    x_max = std::max(x_max, s.demand_s);
  }
  x_max = 1.0 / x_max;
  std::printf("MVA bottleneck rate: %.0f pages/s => knee near WL %.0f\n",
              x_max, x_max * model.think_s);

  const auto tables = app::calibrate_service_times([] {
    app::ExperimentConfig cfg;
    cfg.seed = 31337;
    return cfg;
  }());

  std::printf("\n%-8s %-10s %-10s %-12s %-14s %-16s\n", "WL", "X[p/s]",
              ">2s[%]", "app util[%]", "app cong[%]", "db cong[%]");
  for (int wl = 4000; wl <= 14000; wl += 2000) {
    app::ExperimentConfig cfg;
    cfg.workload = wl;
    cfg.warmup = 8_s;
    cfg.duration = 25_s;
    cfg.seed = 31337;
    cfg.speedstep_on_db = true;  // production default before the audit
    const auto r = app::run_experiment(cfg);
    const int app1 = r.server_index_of(ntier::TierKind::kApp, 0);
    const int db1 = r.server_index_of(ntier::TierKind::kDb, 0);
    const auto spec = core::IntervalSpec::over(r.window_start, r.window_end, 50_ms);
    const auto app_d = core::detect_bottlenecks(
        r.logs[static_cast<std::size_t>(app1)], spec,
        tables[static_cast<std::size_t>(app1)]);
    const auto db_d = core::detect_bottlenecks(
        r.logs[static_cast<std::size_t>(db1)], spec,
        tables[static_cast<std::size_t>(db1)]);
    std::printf("%-8d %-10.0f %-10.2f %-12.1f %-14.1f %-16.1f\n", wl,
                r.goodput(), 100.0 * r.fraction_rt_above(2_s),
                100.0 * r.mean_util(app1),
                100.0 * app_d.congested_fraction(),
                100.0 * db_d.congested_fraction());
  }

  std::printf(
      "\nreading: the db tier congests transiently long before the app tier's\n"
      "average utilization reaches saturation; the >2s column (the SLA) tracks\n"
      "the congested%% columns, not the utilization column.\n");
  return 0;
}
