// Quickstart: detect transient bottlenecks in a 4-tier deployment in ~30
// lines of API use.
//
//   1. Configure an experiment (topology + workload + transient factors).
//   2. Calibrate per-class service times from a low-load pass.
//   3. Run, then feed each server's passive-tracing request log through the
//      fine-grained load/throughput detector at 50 ms granularity.
#include <cstdio>

#include "app/experiment.h"
#include "core/detector.h"
#include "core/report.h"

using namespace tbd;
using namespace tbd::literals;

int main() {
  // A 1L/2S/1L/2S RUBBoS-like deployment at WL 3,000 with the legacy
  // stop-the-world collector on the app tier: transient bottlenecks ahead.
  app::ExperimentConfig cfg;
  cfg.workload = 3000;
  cfg.duration = 30_s;
  cfg.gc = transient::jdk15_config();

  std::printf("calibrating per-class service times at low load...\n");
  const auto service_times = app::calibrate_service_times(cfg);

  std::printf("running %d users for %s...\n", cfg.workload,
              cfg.duration.to_string().c_str());
  const auto result = app::run_experiment(cfg);
  std::printf("goodput %.0f pages/s, mean RT %.0f ms\n\n", result.goodput(),
              result.mean_rt_s() * 1e3);

  // Fine-grained analysis, Section III of the paper: 50 ms intervals.
  const auto spec =
      core::IntervalSpec::over(result.window_start, result.window_end, 50_ms);
  for (std::size_t s = 0; s < result.servers.size(); ++s) {
    const auto detection =
        core::detect_bottlenecks(result.logs[s], spec, service_times[s]);
    std::printf("%s", core::summarize(detection, result.servers[s].name).c_str());
  }
  return 0;
}
