// Case study, Section IV-A/B: diagnose JVM-GC transient bottlenecks in the
// app tier and validate the fix (upgrade the collector).
//
// The workflow a performance engineer would follow with this library:
//   1. Run the system at the suspect workload; coarse utilization looks fine.
//   2. Fine-grained analysis shows frequent congested/frozen intervals at
//      the app tier — with points-of-interest: high load, zero throughput.
//   3. Correlate the freeze windows with the GC log: the cause.
//   4. Re-run with the JDK 1.6 parallel collector: POIs disappear and the
//      response-time spikes flatten.
#include <cstdio>

#include "app/experiment.h"
#include "core/detector.h"
#include "core/intervals.h"
#include "core/report.h"
#include "util/stats.h"

using namespace tbd;
using namespace tbd::literals;

namespace {

app::ExperimentConfig scenario(transient::GcConfig gc) {
  app::ExperimentConfig cfg;
  cfg.workload = 14000;
  cfg.warmup = 10_s;
  cfg.duration = 40_s;
  cfg.seed = 1956;
  cfg.gc = gc;
  return cfg;
}

}  // namespace

int main() {
  std::printf("=== Case study: JVM GC transient bottlenecks (Sec. IV-A/B) ===\n");
  const auto tables =
      app::calibrate_service_times(scenario(transient::jdk15_config()));

  // --- step 1+2: diagnose under JDK 1.5 -------------------------------------
  const auto before = app::run_experiment(scenario(transient::jdk15_config()));
  const int app1 = before.server_index_of(ntier::TierKind::kApp, 0);
  std::printf("\ncoarse view: app1 mean CPU %.1f%% (looks 'not saturated')\n",
              100.0 * before.mean_util(app1));

  const auto spec =
      core::IntervalSpec::over(before.window_start, before.window_end, 50_ms);
  const auto diag = core::detect_bottlenecks(
      before.logs[static_cast<std::size_t>(app1)], spec,
      tables[static_cast<std::size_t>(app1)]);
  std::printf("\nfine-grained view (50ms):\n%s",
              core::summarize(diag, "app1").c_str());

  // --- step 3: correlate with the GC log ------------------------------------
  std::vector<core::TimeWindow> gc_windows;
  for (const auto& e : before.gc_logs[0]) {
    gc_windows.push_back(core::TimeWindow{e.start, e.end});
  }
  const auto gc_ratio = core::interval_coverage(gc_windows, spec);
  std::printf("\nGC running ratio vs app1 load: r = %.2f  (%zu collections)\n",
              pearson_correlation(gc_ratio, diag.load), gc_windows.size());
  std::printf("=> stop-the-world collections freeze the server; requests pile "
              "up (POIs)\n");

  // --- step 4: apply and validate the fix ------------------------------------
  const auto after = app::run_experiment(scenario(transient::jdk16_config()));
  const auto spec_after =
      core::IntervalSpec::over(after.window_start, after.window_end, 50_ms);
  const auto fixed = core::detect_bottlenecks(
      after.logs[static_cast<std::size_t>(app1)], spec_after,
      tables[static_cast<std::size_t>(app1)]);

  std::printf("\nafter upgrading the collector (JDK 1.5 -> 1.6):\n%s",
              core::summarize(fixed, "app1").c_str());
  std::printf("\nfrozen intervals: %zu -> %zu\n", diag.frozen_intervals(),
              fixed.frozen_intervals());
  std::printf("p99 response time: %.2fs -> %.2fs\n",
              [&] {
                std::vector<double> rts;
                for (const auto& p : before.pages)
                  rts.push_back(p.response_time.seconds_f());
                return quantile(rts, 0.99);
              }(),
              [&] {
                std::vector<double> rts;
                for (const auto& p : after.pages)
                  rts.push_back(p.response_time.seconds_f());
                return quantile(rts, 0.99);
              }());
  return 0;
}
