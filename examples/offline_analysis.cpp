// Offline / production-style analysis: the detection pipeline without the
// simulator in the loop.
//
//   1. A monitored run exports its per-server request logs as CSV (the same
//      format a pcap-derived matcher would produce; see trace/log_io.h).
//   2. An analyst reloads the logs later, calibrates N* on the first part
//      of the window, and replays the rest through the ONLINE streaming
//      detector — episodes print as they would in a live monitor.
//   3. The system-level report ranks the tiers and names the suspect.
#include <cstdio>
#include <string>

#include "app/experiment.h"
#include "core/streaming_detector.h"
#include "core/system_report.h"
#include "trace/log_io.h"
#include "util/csv.h"

using namespace tbd;
using namespace tbd::literals;

int main() {
  std::printf("=== Offline analysis via CSV logs + streaming detection ===\n");

  // ---- 1. produce and export traces (stand-in for a production capture) ----
  app::ExperimentConfig cfg;
  cfg.workload = 12000;
  cfg.duration = 30_s;
  cfg.seed = 24601;
  cfg.gc = transient::jdk15_config();  // something worth finding
  const auto tables = app::calibrate_service_times(cfg);
  const auto result = app::run_experiment(cfg);

  const std::string dir = "bench_out";
  ensure_directory(dir);
  for (std::size_t s = 0; s < result.servers.size(); ++s) {
    const std::string path = dir + "/trace_" + result.servers[s].name + ".csv";
    trace::save_request_log_csv(path, result.logs[s]);
  }
  std::printf("exported %zu per-server logs to %s/trace_*.csv\n",
              result.servers.size(), dir.c_str());

  // ---- 2. reload + analyze ---------------------------------------------------
  std::vector<core::DetectionResult> detections;
  std::vector<std::string> names;
  const auto calib_end = result.window_start + 10_s;
  for (std::size_t s = 0; s < result.servers.size(); ++s) {
    const auto loaded = trace::load_request_log_csv(
        dir + "/trace_" + result.servers[s].name + ".csv");
    if (!loaded.ok) {
      std::printf("failed to load %s's log\n", result.servers[s].name.c_str());
      return 1;
    }

    // Calibrate N* on the first 10s of the window...
    const auto calib_spec =
        core::IntervalSpec::over(result.window_start, calib_end, 50_ms);
    const auto calib =
        core::detect_bottlenecks(loaded.records, calib_spec, tables[s]);

    // ...then stream the remainder through the online detector.
    core::StreamingDetector::Config stream_cfg;
    stream_cfg.lag = 10_s;  // generous: covers multi-second retransmissions
    core::StreamingDetector stream{calib_end, stream_cfg, calib.nstar,
                                   tables[s]};
    std::size_t episodes_live = 0;
    stream.on_episode([&](const core::Episode& e) {
      ++episodes_live;
      if (episodes_live <= 3 && e.duration >= 200_ms) {
        std::printf("  [live] %-6s episode at t=%.1fs for %s (peak load %.0f%s)\n",
                    result.servers[s].name.c_str(), e.start.seconds_f(),
                    e.duration.to_string().c_str(), e.peak_load,
                    e.contains_freeze ? ", FROZEN" : "");
      }
    });
    for (const auto& r : loaded.records) {
      if (r.departure >= calib_end) stream.push(r);
    }
    stream.finish();

    // Batch view over the full window for the final ranking.
    const auto spec = core::IntervalSpec::over(result.window_start,
                                               result.window_end, 50_ms);
    detections.push_back(
        core::detect_bottlenecks(loaded.records, spec, tables[s]));
    names.push_back(result.servers[s].name);
  }

  // ---- 3. verdict -------------------------------------------------------------
  std::printf("\n%s", core::to_string(core::rank_bottlenecks(detections, names)).c_str());
  return 0;
}
