// Case study, Section IV-C/D: diagnose SpeedStep-induced transient
// bottlenecks in the database tier and validate pinning P0.
//
// The signature that distinguishes this root cause from GC: congested
// intervals land on SEVERAL distinct throughput plateaus — one per CPU
// P-state — because the ceiling the server hits depends on the clock the
// governor happened to leave it at.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "app/experiment.h"
#include "core/detector.h"
#include "core/report.h"

using namespace tbd;
using namespace tbd::literals;

namespace {

app::ExperimentConfig scenario(bool speedstep) {
  app::ExperimentConfig cfg;
  cfg.workload = 10000;
  cfg.warmup = 10_s;
  cfg.duration = 40_s;
  cfg.seed = 1213;
  cfg.speedstep_on_db = speedstep;
  return cfg;
}

}  // namespace

int main() {
  std::printf("=== Case study: Intel SpeedStep mismatch (Sec. IV-C/D) ===\n");
  const auto tables = app::calibrate_service_times(scenario(false));

  // --- diagnose with SpeedStep enabled ---------------------------------------
  const auto on = app::run_experiment(scenario(true));
  const int db1 = on.server_index_of(ntier::TierKind::kDb, 0);
  const auto spec = core::IntervalSpec::over(on.window_start, on.window_end, 50_ms);
  const auto diag = core::detect_bottlenecks(
      on.logs[static_cast<std::size_t>(db1)], spec,
      tables[static_cast<std::size_t>(db1)]);
  std::printf("\nSpeedStep ON:\n%s", core::summarize(diag, "db1").c_str());

  // Where did the governor leave the clock?
  std::printf("\nP-state residency (db1): ");
  const auto states = transient::xeon_pstates();
  for (std::size_t s = 0; s < states.size(); ++s) {
    std::printf("%s=%.0f%% ", states[s].name.c_str(),
                100.0 * on.pstate_residency[0][s]);
  }
  std::printf("\n%zu P-state transitions during the run\n",
              on.pstate_logs[0].size());

  // Throughput plateaus among congested intervals.
  std::vector<double> congested_tput;
  for (std::size_t i = 0; i < diag.states.size(); ++i) {
    if (diag.states[i] == core::IntervalState::kCongested) {
      congested_tput.push_back(diag.throughput[i]);
    }
  }
  std::sort(congested_tput.begin(), congested_tput.end());
  if (!congested_tput.empty()) {
    std::printf("congested-interval throughput range: %.0f .. %.0f units/s\n"
                "=> multiple ceilings = multiple clock speeds (Fig 12b)\n",
                congested_tput.front(), congested_tput.back());
  }

  // --- fix: disable SpeedStep (pin P0) ----------------------------------------
  const auto off = app::run_experiment(scenario(false));
  const auto spec_off =
      core::IntervalSpec::over(off.window_start, off.window_end, 50_ms);
  const auto fixed = core::detect_bottlenecks(
      off.logs[static_cast<std::size_t>(db1)], spec_off,
      tables[static_cast<std::size_t>(db1)]);
  std::printf("\nSpeedStep OFF (P0 pinned):\n%s",
              core::summarize(fixed, "db1").c_str());
  std::printf("\ncongested fraction: %.1f%% -> %.1f%%\n",
              100.0 * diag.congested_fraction(),
              100.0 * fixed.congested_fraction());
  std::printf(">2s pages: %.2f%% -> %.2f%%\n",
              100.0 * on.fraction_rt_above(2_s),
              100.0 * off.fraction_rt_above(2_s));
  return 0;
}
