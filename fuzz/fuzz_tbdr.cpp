// Structure-aware fuzz target for the TBDR binary request-log decoder.
//
// The format is bijective: every byte of a valid file is meaningful, so a
// successful decode must re-encode to exactly the input bytes. On top of
// that, the optimized decoder (memcpy fast path + pooled portable path) is
// checked against the byte-wise naive oracle on every input, accepted or
// rejected — including the error code and its offset/record diagnostics —
// and the columnar decoder must agree with the row decoder on everything.
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string_view>

#include "fuzz_check.h"
#include "testing/oracles.h"
#include "trace/request_columns.h"
#include "trace/request_log_file.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view bytes{reinterpret_cast<const char*>(data), size};

  const auto decoded = tbd::trace::decode_request_log_bin(bytes);
  const auto oracle = tbd::pt::oracle_decode_request_log_bin(bytes);

  TBD_FUZZ_CHECK(decoded.ok == oracle.ok);
  TBD_FUZZ_CHECK(decoded.error == oracle.error);
  TBD_FUZZ_CHECK(decoded.error_offset == oracle.error_offset);
  TBD_FUZZ_CHECK(decoded.error_record == oracle.error_record);
  TBD_FUZZ_CHECK(decoded.header_count == oracle.header_count);
  TBD_FUZZ_CHECK(decoded.input_size == oracle.input_size);
  TBD_FUZZ_CHECK(decoded.records.size() == oracle.records.size());
  TBD_FUZZ_CHECK(tbd::fuzz::bytes_equal(decoded.records.data(), oracle.records.data(),
                             decoded.records.size() *
                                 sizeof(tbd::trace::RequestRecord)));

  const auto columnar = tbd::trace::decode_request_log_bin_columns(bytes);
  TBD_FUZZ_CHECK(columnar.ok == decoded.ok);
  TBD_FUZZ_CHECK(columnar.error == decoded.error);
  TBD_FUZZ_CHECK(columnar.error_offset == decoded.error_offset);
  TBD_FUZZ_CHECK(columnar.error_record == decoded.error_record);
  TBD_FUZZ_CHECK(columnar.header_count == decoded.header_count);
  TBD_FUZZ_CHECK(columnar.input_size == decoded.input_size);
  const auto gathered = columnar.records.to_records();
  TBD_FUZZ_CHECK(gathered.size() == decoded.records.size());
  TBD_FUZZ_CHECK(tbd::fuzz::bytes_equal(gathered.data(), decoded.records.data(),
                             gathered.size() *
                                 sizeof(tbd::trace::RequestRecord)));

  if (decoded.ok) {
    const std::string reencoded =
        tbd::trace::encode_request_log_bin(decoded.records);
    TBD_FUZZ_CHECK(reencoded.size() == bytes.size());
    TBD_FUZZ_CHECK(tbd::fuzz::bytes_equal(reencoded.data(), bytes.data(),
                               bytes.size()));
  }
  return 0;
}
