// Structure-aware fuzz target for the CSV request-log parser.
//
// Input layout: byte 0 selects the shard count (1..8); the rest is the CSV
// buffer. Three properties are checked on every input:
//   1. Sharded parse == sequential parse (records, counters, first-bad-line)
//      for the selected shard count — the core invariant of the fast path.
//   2. The optimized parser agrees with the naive differential oracle
//      (tbd::pt::oracle_parse_csv) field for field.
//   3. Round-trip: re-serializing the parsed records and parsing again is
//      the identity on records — checked only when every parsed timestamp is
//      non-negative, because a u64 field like 18446744073709551615 parses to
//      a negative int64 microsecond value that the writer prints signed and
//      the reader then (correctly) rejects.
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string_view>

#include "fuzz_check.h"
#include "testing/oracles.h"
#include "trace/log_io.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size == 0) return 0;
  const int shards = 1 + data[0] % 8;
  const std::string_view text{reinterpret_cast<const char*>(data) + 1,
                              size - 1};

  const auto sharded = tbd::trace::parse_request_log_csv(text, shards);
  const auto sequential = tbd::trace::parse_request_log_csv(text, 1);

  TBD_FUZZ_CHECK(sharded.ok && sequential.ok);
  TBD_FUZZ_CHECK(sharded.records.size() == sequential.records.size());
  TBD_FUZZ_CHECK(tbd::fuzz::bytes_equal(sharded.records.data(), sequential.records.data(),
                             sharded.records.size() *
                                 sizeof(tbd::trace::RequestRecord)));
  TBD_FUZZ_CHECK(sharded.skipped_lines == sequential.skipped_lines);
  TBD_FUZZ_CHECK(sharded.first_bad_line == sequential.first_bad_line);
  TBD_FUZZ_CHECK(sharded.first_bad_text == sequential.first_bad_text);

  const auto oracle = tbd::pt::oracle_parse_csv(text);
  TBD_FUZZ_CHECK(sequential.records.size() == oracle.records.size());
  TBD_FUZZ_CHECK(tbd::fuzz::bytes_equal(sequential.records.data(), oracle.records.data(),
                             oracle.records.size() *
                                 sizeof(tbd::trace::RequestRecord)));
  TBD_FUZZ_CHECK(sequential.skipped_lines == oracle.skipped_lines);
  TBD_FUZZ_CHECK(sequential.first_bad_line == oracle.first_bad_line);
  TBD_FUZZ_CHECK(sequential.first_bad_text == oracle.first_bad_text);

  const bool printable = std::all_of(
      sharded.records.begin(), sharded.records.end(),
      [](const tbd::trace::RequestRecord& r) { return r.arrival.micros() >= 0; });
  if (printable) {
    const auto again = tbd::trace::parse_request_log_csv(
        tbd::trace::request_log_to_csv(sharded.records), shards);
    TBD_FUZZ_CHECK(again.records.size() == sharded.records.size());
    TBD_FUZZ_CHECK(tbd::fuzz::bytes_equal(again.records.data(), sharded.records.data(),
                               sharded.records.size() *
                                   sizeof(tbd::trace::RequestRecord)));
  }
  return 0;
}
