// Structure-aware fuzz target for the TBDR v2 segmented decoder.
//
// Unlike v1 the format is not bijective (a non-canonical but well-formed
// tag choice still decodes), so the invariants are differential and
// metamorphic instead of re-encode-equals-input:
//
//  * the parallel segment decoder must match the sequential naive oracle
//    (testing/oracles.h) on the FULL result contract — records, ok,
//    error/warning strings, error_offset, error_segment, segments,
//    input_size — in both strict and recover-tail modes;
//  * recover-tail may only ever extend a strict failure into an ok prefix,
//    never change an ok strict decode;
//  * whatever decodes must survive a canonical re-encode round trip.
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "fuzz_check.h"
#include "testing/oracles.h"
#include "trace/request_columns.h"
#include "trace/segment_log.h"

namespace {

void check_against_oracle(std::string_view bytes, tbd::trace::DecodeMode mode) {
  const auto got = tbd::trace::decode_request_log_v2(bytes, mode);
  const auto want = tbd::pt::oracle_decode_request_log_v2(bytes, mode);
  TBD_FUZZ_CHECK(got.ok == want.ok);
  TBD_FUZZ_CHECK(got.error == want.error);
  TBD_FUZZ_CHECK(got.warning == want.warning);
  TBD_FUZZ_CHECK(got.error_offset == want.error_offset);
  TBD_FUZZ_CHECK(got.error_segment == want.error_segment);
  TBD_FUZZ_CHECK(got.segments == want.segments);
  TBD_FUZZ_CHECK(got.input_size == want.input_size);
  const auto rows = got.records.to_records();
  const auto want_rows = want.records.to_records();
  TBD_FUZZ_CHECK(rows.size() == want_rows.size());
  TBD_FUZZ_CHECK(tbd::fuzz::bytes_equal(
      rows.data(), want_rows.data(),
      rows.size() * sizeof(tbd::trace::RequestRecord)));

  if (got.ok) {
    // Canonical re-encode of whatever decoded must round-trip bit for bit.
    const std::string reencoded =
        tbd::trace::encode_request_log_v2(got.records.view());
    const auto again = tbd::trace::decode_request_log_v2(
        reencoded, tbd::trace::DecodeMode::kStrict);
    TBD_FUZZ_CHECK(again.ok);
    const auto again_rows = again.records.to_records();
    TBD_FUZZ_CHECK(again_rows.size() == rows.size());
    TBD_FUZZ_CHECK(tbd::fuzz::bytes_equal(
        again_rows.data(), rows.data(),
        rows.size() * sizeof(tbd::trace::RequestRecord)));
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view bytes{reinterpret_cast<const char*>(data), size};

  check_against_oracle(bytes, tbd::trace::DecodeMode::kStrict);
  check_against_oracle(bytes, tbd::trace::DecodeMode::kRecoverTail);

  // Mode relation: strict ok implies recover-tail returns the identical
  // records; a strict failure may at most become a recovered prefix.
  const auto strict = tbd::trace::decode_request_log_v2(
      bytes, tbd::trace::DecodeMode::kStrict);
  const auto recover = tbd::trace::decode_request_log_v2(
      bytes, tbd::trace::DecodeMode::kRecoverTail);
  if (strict.ok) {
    TBD_FUZZ_CHECK(recover.ok);
    TBD_FUZZ_CHECK(recover.warning.empty());
    TBD_FUZZ_CHECK(recover.records.size() == strict.records.size());
  } else if (recover.ok) {
    // A recovered decode always names the dropped tail.
    TBD_FUZZ_CHECK(!recover.warning.empty());
    TBD_FUZZ_CHECK(strict.records.empty());
  }
  return 0;
}
