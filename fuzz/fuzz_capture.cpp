// Structure-aware fuzz target for the TBDC capture-stream decoder.
//
// Like TBDR, the capture format is bijective: MessageKind has a fixed
// uint8_t underlying type, so the kind byte round-trips raw even when it
// names no enumerator, and a successful decode must re-encode to exactly
// the input bytes. Also exercises the header-validation order and the
// offset/record diagnostics on rejected inputs.
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string_view>

#include "fuzz_check.h"
#include "trace/capture_file.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view bytes{reinterpret_cast<const char*>(data), size};

  const auto decoded = tbd::trace::decode_capture(bytes);
  TBD_FUZZ_CHECK(decoded.input_size == bytes.size());

  if (!decoded.ok) {
    // Rejections must carry a stable code and an offset inside the input
    // (equal to input size only for end-of-data truncation).
    TBD_FUZZ_CHECK(!decoded.error.empty());
    TBD_FUZZ_CHECK(decoded.error_offset <= bytes.size());
    return 0;
  }

  TBD_FUZZ_CHECK(decoded.messages.size() == decoded.header_count);
  const std::string reencoded = tbd::trace::encode_capture(decoded.messages);
  TBD_FUZZ_CHECK(reencoded.size() == bytes.size());
  TBD_FUZZ_CHECK(tbd::fuzz::bytes_equal(reencoded.data(), bytes.data(),
                             bytes.size()));
  return 0;
}
