// Always-on invariant check for fuzz targets: plain assert() vanishes under
// NDEBUG (the default RelWithDebInfo build), which would turn every harness
// into a no-op. Abort so both libFuzzer and the replay driver flag the input.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace tbd::fuzz {

/// memcmp with the n==0 case short-circuited: empty vectors hand out null
/// data() pointers, and passing those to memcmp is UB that UBSan rejects.
inline bool bytes_equal(const void* a, const void* b, std::size_t n) {
  return n == 0 || std::memcmp(a, b, n) == 0;
}

}  // namespace tbd::fuzz

#define TBD_FUZZ_CHECK(cond)                                          \
  do {                                                                \
    if (!(cond)) {                                                    \
      std::fprintf(stderr, "fuzz invariant failed: %s (%s:%d)\n",     \
                   #cond, __FILE__, __LINE__);                        \
      std::abort();                                                   \
    }                                                                 \
  } while (0)
