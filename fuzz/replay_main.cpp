// Deterministic corpus replay driver: feeds every file named on the command
// line (directories are walked non-recursively) through the linked harness's
// LLVMFuzzerTestOneInput, exactly like libFuzzer's own replay mode, but built
// with any compiler. A failing invariant aborts, so ctest sees the failure;
// a clean run prints the input count for the log.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

std::vector<std::string> collect_inputs(int argc, char** argv) {
  namespace fs = std::filesystem;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const fs::path p{argv[i]};
    if (fs::is_directory(p)) {
      for (const auto& entry : fs::directory_iterator{p}) {
        if (entry.is_regular_file()) paths.push_back(entry.path().string());
      }
    } else {
      paths.push_back(p.string());
    }
  }
  std::sort(paths.begin(), paths.end());  // stable replay order
  return paths;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <corpus-dir-or-file>...\n", argv[0]);
    return 2;
  }
  const auto paths = collect_inputs(argc, argv);
  for (const auto& path : paths) {
    std::ifstream in{path, std::ios::binary};
    if (!in.is_open()) {
      std::fprintf(stderr, "cannot open corpus input: %s\n", path.c_str());
      return 2;
    }
    const std::string bytes{std::istreambuf_iterator<char>{in}, {}};
    LLVMFuzzerTestOneInput(reinterpret_cast<const std::uint8_t*>(bytes.data()),
                           bytes.size());
  }
  std::printf("replayed %zu corpus inputs cleanly\n", paths.size());
  return 0;
}
