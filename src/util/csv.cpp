#include "util/csv.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <filesystem>

namespace tbd {

CsvWriter::CsvWriter(const std::string& path) : out_{path, std::ios::trunc} {}

void CsvWriter::put_field(std::string_view field, bool first) {
  if (!first) out_ << ',';
  const bool needs_quote =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quote) {
    out_ << field;
    return;
  }
  out_ << '"';
  for (char c : field) {
    if (c == '"') out_ << '"';
    out_ << c;
  }
  out_ << '"';
}

void CsvWriter::write_header(std::initializer_list<std::string_view> names) {
  bool first = true;
  for (auto n : names) {
    put_field(n, first);
    first = false;
  }
  out_ << '\n';
}

void CsvWriter::write_row(std::initializer_list<double> values) {
  bool first = true;
  char buf[64];
  for (double v : values) {
    std::snprintf(buf, sizeof buf, "%.6g", v);
    put_field(buf, first);
    first = false;
  }
  out_ << '\n';
}

void CsvWriter::write_raw_row(std::initializer_list<std::string_view> fields) {
  bool first = true;
  for (auto f : fields) {
    put_field(f, first);
    first = false;
  }
  out_ << '\n';
}

void CsvWriter::write_columns(const std::string& path,
                              const std::vector<std::string>& names,
                              const std::vector<std::vector<double>>& columns) {
  assert(names.size() == columns.size());
  CsvWriter w{path};
  if (!w.is_open()) return;
  bool first = true;
  for (const auto& n : names) {
    w.put_field(n, first);
    first = false;
  }
  w.out_ << '\n';
  std::size_t rows = 0;
  for (const auto& c : columns) rows = std::max(rows, c.size());
  char buf[64];
  for (std::size_t r = 0; r < rows; ++r) {
    first = true;
    for (const auto& c : columns) {
      if (r < c.size()) {
        std::snprintf(buf, sizeof buf, "%.6g", c[r]);
        w.put_field(buf, first);
      } else {
        w.put_field("", first);
      }
      first = false;
    }
    w.out_ << '\n';
  }
}

bool ensure_directory(const std::string& path) {
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
  return !ec;
}

}  // namespace tbd
