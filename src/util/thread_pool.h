// Fixed-size worker pool for deterministic fan-out.
//
// The pool exists for one pattern: run N independent tasks and write each
// task's result into a pre-sized slot indexed by the task's position, so the
// OUTPUT is identical no matter how the scheduler interleaves the workers.
// Every consumer (sweep runner, per-server analysis fan-out, the figure
// benches) owns its inputs per index and never shares mutable state across
// indices; the pool itself adds no ordering of its own.
//
// Thread count resolution: an explicit count wins; otherwise the TBD_THREADS
// environment variable; otherwise std::thread::hardware_concurrency().
// A count of 1 runs everything inline on the calling thread — byte-for-byte
// the pre-pool serial path, with no worker threads started at all.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tbd {

class ThreadPool {
 public:
  /// `threads` <= 0 resolves via TBD_THREADS / hardware concurrency.
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution width (workers + the participating caller).
  [[nodiscard]] int size() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs `fn(i)` for every i in [0, n), using the workers plus the calling
  /// thread, and blocks until all indices completed. Indices are claimed
  /// dynamically, so callers must make fn(i) independent of execution order
  /// (write results into slot i of a pre-sized container). The first
  /// exception thrown by any fn is rethrown here after the loop drains.
  ///
  /// Re-entrant calls from inside a worker of the same pool run inline on
  /// that worker (no deadlock, still deterministic).
  void parallel_for_indexed(std::size_t n,
                            const std::function<void(std::size_t)>& fn);

  /// TBD_THREADS if set (clamped to >= 1), else hardware_concurrency().
  [[nodiscard]] static int default_thread_count();

  /// Self-instrumentation counters, accumulated since construction. All
  /// bookkeeping happens under the per-index claim lock the pool already
  /// takes, so observing costs nothing extra on the task path beyond two
  /// steady_clock reads per task.
  struct Stats {
    std::uint64_t jobs = 0;           // parallel_for_indexed calls fanned out
    std::uint64_t tasks = 0;          // fn(i) invocations run via the pool
    std::uint64_t tasks_inline = 0;   // fn(i) run on the serial fast path
    std::uint64_t busy_us = 0;        // summed task execution wall time
    std::uint64_t queue_wait_us = 0;  // callers blocked waiting for the pool
    /// Per-slot busy time: slot 0 = participating callers, 1.. = workers.
    std::vector<std::uint64_t> worker_busy_us;
  };
  [[nodiscard]] Stats stats() const;

 private:
  struct Job {
    std::size_t n = 0;
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t next = 0;  // next index to claim (guarded by mutex_)
    std::size_t done = 0;  // indices finished (guarded by mutex_)
    std::exception_ptr error;
  };

  void worker_loop(std::size_t slot);
  void run_job_share(Job& job, std::unique_lock<std::mutex>& lock,
                     std::size_t slot);

  std::vector<std::thread> workers_;
  Stats stats_;  // guarded by mutex_
  mutable std::mutex mutex_;  // also guards stats_ in const stats()
  std::condition_variable work_cv_;  // workers wait for a new job
  std::condition_variable done_cv_;  // caller waits for job completion
  Job* job_ = nullptr;               // current job, null when idle
  std::uint64_t job_gen_ = 0;        // bumped per job so workers never miss one
  bool stop_ = false;
};

/// Process-wide pool sized by default_thread_count(); created on first use.
/// Shared by the sweep runner, analysis fan-out, and the benches so the
/// process never oversubscribes with nested pools.
[[nodiscard]] ThreadPool& shared_pool();

}  // namespace tbd
