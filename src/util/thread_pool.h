// Fixed-size worker pool for deterministic fan-out.
//
// The pool exists for one pattern: run N independent tasks and write each
// task's result into a pre-sized slot indexed by the task's position, so the
// OUTPUT is identical no matter how the scheduler interleaves the workers.
// Every consumer (sweep runner, per-server analysis fan-out, the figure
// benches) owns its inputs per index and never shares mutable state across
// indices; the pool itself adds no ordering of its own.
//
// Thread count resolution: an explicit count wins; otherwise the TBD_THREADS
// environment variable; otherwise std::thread::hardware_concurrency().
// A count of 1 runs everything inline on the calling thread — byte-for-byte
// the pre-pool serial path, with no worker threads started at all.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace tbd {

class ThreadPool {
 public:
  /// `threads` <= 0 resolves via TBD_THREADS / hardware concurrency.
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution width (workers + the participating caller).
  [[nodiscard]] int size() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs `fn(i)` for every i in [0, n), using the workers plus the calling
  /// thread, and blocks until all indices completed. Indices are claimed
  /// dynamically, so callers must make fn(i) independent of execution order
  /// (write results into slot i of a pre-sized container). The first
  /// exception thrown by any fn is rethrown here after the loop drains.
  ///
  /// Re-entrant calls from inside a worker of the same pool run inline on
  /// that worker (no deadlock, still deterministic).
  void parallel_for_indexed(std::size_t n,
                            const std::function<void(std::size_t)>& fn);

  /// TBD_THREADS if set (clamped to >= 1), else hardware_concurrency().
  [[nodiscard]] static int default_thread_count();

  /// Self-instrumentation counters, accumulated since construction. All
  /// bookkeeping happens under the per-index claim lock the pool already
  /// takes, so observing costs nothing extra on the task path beyond two
  /// steady_clock reads per task.
  struct Stats {
    std::uint64_t jobs = 0;           // parallel_for_indexed calls fanned out
    std::uint64_t tasks = 0;          // fn(i) invocations run via the pool
    std::uint64_t tasks_inline = 0;   // fn(i) run on the serial fast path
    std::uint64_t busy_us = 0;        // summed task execution wall time
    std::uint64_t queue_wait_us = 0;  // callers blocked waiting for the pool
    /// Per-slot busy time: slot 0 = participating callers, 1.. = workers.
    std::vector<std::uint64_t> worker_busy_us;
  };
  [[nodiscard]] Stats stats() const;

  // --- Watchdog: liveness monitoring for the execution slots. -------------
  //
  // When armed, every task start/finish stamps a per-slot heartbeat (two
  // relaxed atomic stores next to the clock reads the pool already does),
  // and a monitor thread wakes at deadline/4 to flag any slot whose current
  // task has run past the deadline. Each stalled task fires on_stall exactly
  // once (latched on the task's start stamp, so a *new* stalled task on the
  // same slot fires again). When the watchdog is off the pool runs the
  // historic code paths untouched — the serial inline path in particular
  // stays clock-free.

  /// A slot whose current task exceeded the deadline. Passed to on_stall
  /// from the monitor thread; the callback must not re-enter the pool.
  struct StallInfo {
    std::size_t slot = 0;        ///< 0 = participating caller, 1.. = workers
    std::string thread_name;     ///< "caller" or "tbd-pool-<slot>"
    std::size_t task_index = 0;  ///< fn(i) index the slot is stuck in
    std::uint64_t elapsed_us = 0;
    std::uint64_t deadline_us = 0;
  };

  struct WatchdogOptions {
    /// A task running longer than this is reported as stalled.
    std::uint64_t deadline_us = 30'000'000;
    /// Invoked once per stalled task from the monitor thread (never under
    /// the pool lock). Typical action: log + bump a metric + profile burst.
    std::function<void(const StallInfo&)> on_stall;
  };

  /// Point-in-time view of one execution slot (the /threadz table).
  struct ThreadInfo {
    std::size_t slot = 0;
    std::string name;
    bool running = false;             ///< currently inside fn(i)
    bool stalled = false;             ///< running && past the deadline
    std::size_t task_index = 0;       ///< meaningful when running
    std::uint64_t task_elapsed_us = 0;  ///< 0 when idle
    std::uint64_t tasks = 0;            ///< completed on this slot
    std::uint64_t busy_us = 0;          ///< summed task wall time
  };

  /// Longest tasks observed while the watchdog was armed (top-8, longest
  /// first) — the "what was slow recently" complement to live stalls.
  struct SlowTask {
    std::uint64_t duration_us = 0;
    std::size_t slot = 0;
    std::size_t task_index = 0;
  };

  /// Arms the watchdog (idempotent: re-arming replaces the options).
  void start_watchdog(WatchdogOptions options);
  /// Disarms and joins the monitor thread. Also called by the destructor.
  void stop_watchdog();
  [[nodiscard]] bool watchdog_running() const;
  /// Stalled tasks detected since the watchdog was first armed.
  [[nodiscard]] std::uint64_t stalls_detected() const;
  /// One entry per execution slot, slot order. Callable any time; heartbeat
  /// fields are live only while the watchdog is armed.
  [[nodiscard]] std::vector<ThreadInfo> thread_info() const;
  [[nodiscard]] std::vector<SlowTask> slow_tasks() const;

 private:
  struct Job {
    std::size_t n = 0;
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t next = 0;  // next index to claim (guarded by mutex_)
    std::size_t done = 0;  // indices finished (guarded by mutex_)
    std::exception_ptr error;
  };

  /// Per-slot liveness stamp, written lock-free from the task path and read
  /// by the monitor/thread_info. task_start_us is 1 + microseconds since
  /// epoch_ (0 means idle) so "idle" needs no separate flag.
  struct alignas(64) Heartbeat {
    std::atomic<std::uint64_t> task_start_us{0};
    std::atomic<std::size_t> task_index{0};
    std::atomic<std::uint64_t> tasks_done{0};
  };

  void worker_loop(std::size_t slot);
  void run_job_share(Job& job, std::unique_lock<std::mutex>& lock,
                     std::size_t slot);
  void watchdog_loop();
  void record_slow_task_locked(std::uint64_t duration_us, std::size_t slot,
                               std::size_t task_index);
  [[nodiscard]] std::uint64_t now_us() const;

  std::vector<std::thread> workers_;
  Stats stats_;  // guarded by mutex_
  mutable std::mutex mutex_;  // also guards stats_ in const stats()
  std::condition_variable work_cv_;  // workers wait for a new job
  std::condition_variable done_cv_;  // caller waits for job completion
  Job* job_ = nullptr;               // current job, null when idle
  std::uint64_t job_gen_ = 0;        // bumped per job so workers never miss one
  bool stop_ = false;

  // Watchdog state. Heartbeats are sized in the constructor and never
  // resized; watchdog_on_ gates all heartbeat stamping so the disarmed pool
  // is bit-identical to the pre-watchdog pool.
  const std::chrono::steady_clock::time_point epoch_ =
      std::chrono::steady_clock::now();
  std::vector<std::unique_ptr<Heartbeat>> heartbeats_;
  std::atomic<bool> watchdog_on_{false};
  std::atomic<std::uint64_t> stalls_detected_{0};
  WatchdogOptions watchdog_options_;  // guarded by wd_mutex_
  std::vector<SlowTask> slow_tasks_;  // guarded by mutex_, longest first
  std::thread watchdog_thread_;
  mutable std::mutex wd_mutex_;
  std::condition_variable wd_cv_;
  bool wd_stop_ = false;
};

/// Process-wide pool sized by default_thread_count(); created on first use.
/// Shared by the sweep runner, analysis fan-out, and the benches so the
/// process never oversubscribes with nested pools.
[[nodiscard]] ThreadPool& shared_pool();

}  // namespace tbd
