#include "util/rng.h"

#include <algorithm>
#include <cassert>

namespace tbd {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  has_spare_normal_ = false;
}

Rng Rng::fork(std::uint64_t stream_index) {
  // Mix a fresh 64-bit state from this stream plus the index; children of
  // different indices land in unrelated splitmix sequences.
  std::uint64_t mix = next_u64() ^ (stream_index * 0xd1342543de82ef95ULL + 0x2545f4914f6cdd1dULL);
  return Rng{mix};
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform01() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform01();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  assert(n > 0);
  // Lemire's multiply-shift with rejection for exact uniformity.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = -n % n;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

bool Rng::bernoulli(double p) { return uniform01() < p; }

double Rng::exponential(double mean) {
  assert(mean > 0.0);
  double u;
  do {
    u = uniform01();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::gamma(double shape, double scale) {
  assert(shape > 0.0 && scale > 0.0);
  if (shape < 1.0) {
    // Boost shape above 1 and correct with the standard power-of-uniform trick.
    const double u = std::max(uniform01(), 1e-300);
    return gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  // Marsaglia & Tsang squeeze method.
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x;
    double v;
    do {
      x = normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = uniform01();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) return d * v * scale;
  }
}

double Rng::normal(double mean, double stddev) {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return mean + stddev * spare_normal_;
  }
  double u;
  double v;
  double s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  has_spare_normal_ = true;
  return mean + stddev * u * factor;
}

std::uint64_t Rng::poisson(double mean) {
  assert(mean >= 0.0);
  if (mean < 30.0) {
    const double limit = std::exp(-mean);
    std::uint64_t k = 0;
    double prod = uniform01();
    while (prod > limit) {
      ++k;
      prod *= uniform01();
    }
    return k;
  }
  // Normal approximation with continuity correction is adequate for the large
  // means we use (arrival batching), and keeps the engine branch-light.
  const double sample = normal(mean, std::sqrt(mean));
  return sample <= 0.0 ? 0 : static_cast<std::uint64_t>(sample + 0.5);
}

std::size_t Rng::weighted_index(std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  assert(total > 0.0);
  double target = uniform01() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;
}

DiscreteSampler::DiscreteSampler(std::span<const double> weights) {
  cdf_.reserve(weights.size());
  double running = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    running += w;
    cdf_.push_back(running);
  }
  assert(running > 0.0);
  for (double& c : cdf_) c /= running;
  cdf_.back() = 1.0;  // guard against rounding leaving the last bucket short
}

std::size_t DiscreteSampler::sample(Rng& rng) const {
  assert(!cdf_.empty());
  const double u = rng.uniform01();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it == cdf_.end() ? cdf_.size() - 1 : it - cdf_.begin());
}

}  // namespace tbd
