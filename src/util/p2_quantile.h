// P² (piecewise-parabolic) online quantile estimation (Jain & Chlamtac 1985).
//
// Production monitoring companions to the streaming detector need running
// response-time percentiles without storing samples; P² keeps five markers
// and adjusts them with parabolic interpolation, giving O(1) memory and
// update cost with ~1% accuracy on smooth distributions.
#pragma once

#include <array>
#include <cstddef>

namespace tbd {

class P2Quantile {
 public:
  /// `q` in (0, 1), e.g. 0.99 for the p99.
  explicit P2Quantile(double q);

  void add(double x);

  /// Current estimate; exact while fewer than 5 samples were seen.
  [[nodiscard]] double value() const;
  [[nodiscard]] std::size_t count() const { return count_; }

 private:
  double q_;
  std::size_t count_ = 0;
  std::array<double, 5> heights_{};   // marker heights
  std::array<double, 5> positions_{}; // actual marker positions (1-based)
  std::array<double, 5> desired_{};   // desired positions
  std::array<double, 5> increment_{}; // desired-position increments
};

}  // namespace tbd
