#include "util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace tbd {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const {
  return n_ >= 2 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double pearson_correlation(std::span<const double> x, std::span<const double> y) {
  assert(x.size() == y.size());
  const std::size_t n = x.size();
  if (n < 2) return 0.0;
  double mx = 0.0;
  double my = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double quantile(std::span<const double> sample, double q) {
  if (sample.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double mean_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev_of(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean_of(xs);
  double s2 = 0.0;
  for (double x : xs) s2 += (x - m) * (x - m);
  return std::sqrt(s2 / static_cast<double>(xs.size() - 1));
}

namespace {

/// Inverse standard-normal CDF (Acklam's rational approximation,
/// |relative error| < 1.15e-9).
double normal_quantile(double p) {
  assert(p > 0.0 && p < 1.0);
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > 1.0 - p_low) {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

}  // namespace

double student_t_quantile(double p, int df) {
  assert(df >= 1);
  assert(p > 0.0 && p < 1.0);
  // Exact small-df values for the p=0.95 workhorse would not cover other p,
  // so use the Cornish-Fisher style expansion of the t quantile in terms of
  // the normal quantile (Abramowitz & Stegun 26.7.5). Accurate to ~1e-4 for
  // df >= 3 and within ~1e-3 at df = 1..2, sufficient for Equation 2's
  // confidence bound.
  const double z = normal_quantile(p);
  const double z3 = z * z * z;
  const double z5 = z3 * z * z;
  const double z7 = z5 * z * z;
  const double n = df;
  double t = z + (z3 + z) / (4.0 * n) + (5.0 * z5 + 16.0 * z3 + 3.0 * z) / (96.0 * n * n) +
             (3.0 * z7 + 19.0 * z5 + 17.0 * z3 - 15.0 * z) / (384.0 * n * n * n);
  // The expansion under-corrects for df <= 2 where the t tails are very
  // heavy; patch with the closed forms t_{p,1} = tan(pi*(p-1/2)) and
  // t_{p,2} = (2p-1)*sqrt(2/(4p(1-p))).
  if (df == 1) t = std::tan(3.14159265358979323846 * (p - 0.5));
  if (df == 2) t = (2.0 * p - 1.0) * std::sqrt(2.0 / (4.0 * p * (1.0 - p)));
  return t;
}

std::vector<std::size_t> bin_counts(std::span<const double> sample,
                                    std::span<const double> edges) {
  assert(edges.size() >= 2);
  std::vector<std::size_t> counts(edges.size() - 1, 0);
  for (double v : sample) {
    const auto it = std::upper_bound(edges.begin(), edges.end(), v);
    std::size_t idx;
    if (it == edges.begin()) {
      idx = 0;
    } else {
      idx = static_cast<std::size_t>(it - edges.begin()) - 1;
      if (idx >= counts.size()) idx = counts.size() - 1;
    }
    ++counts[idx];
  }
  return counts;
}

}  // namespace tbd
