// Minimal CSV writer used by the benchmark harness to dump every figure's
// data series next to the printed tables (bench_out/*.csv).
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

namespace tbd {

/// Writes rows of comma-separated values. Fields containing commas, quotes,
/// or newlines are quoted per RFC 4180.
class CsvWriter {
 public:
  /// Opens (truncates) the file; check is_open() before writing.
  explicit CsvWriter(const std::string& path);

  [[nodiscard]] bool is_open() const { return out_.is_open(); }

  void write_header(std::initializer_list<std::string_view> names);
  void write_row(std::initializer_list<double> values);
  void write_raw_row(std::initializer_list<std::string_view> fields);

  /// Convenience: column-oriented dump of equal-length series.
  static void write_columns(const std::string& path,
                            const std::vector<std::string>& names,
                            const std::vector<std::vector<double>>& columns);

 private:
  void put_field(std::string_view field, bool first);
  std::ofstream out_;
};

/// Creates the directory (and parents) if missing; returns false on failure.
bool ensure_directory(const std::string& path);

}  // namespace tbd
