// Small statistics toolkit used throughout the analysis pipeline:
// single-pass running moments, Pearson correlation (used to correlate load
// with GC ratio / response time, Section IV), quantiles, and the Student-t
// upper quantile needed by the congestion-point confidence bound
// (Section III-C, Equation 2).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace tbd {

/// Welford single-pass accumulator for mean/variance/min/max.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] bool empty() const { return n_ == 0; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Pearson correlation coefficient of two equal-length series.
/// Returns 0 when either series is constant or the series are empty.
[[nodiscard]] double pearson_correlation(std::span<const double> x, std::span<const double> y);

/// Linear interpolated quantile (q in [0,1]) of an unsorted sample.
/// Copies and sorts internally; returns 0 for an empty sample.
[[nodiscard]] double quantile(std::span<const double> sample, double q);

/// Arithmetic mean; 0 for an empty span.
[[nodiscard]] double mean_of(std::span<const double> xs);

/// Sample standard deviation (n-1); 0 for fewer than two values.
[[nodiscard]] double stddev_of(std::span<const double> xs);

/// Upper quantile t_{p, df} of Student's t distribution (one-sided), i.e. the
/// value t with CDF(t) = p. Exact enough for the paper's use (p = 0.95):
/// relative error < 1e-3 across df >= 1. df must be >= 1.
[[nodiscard]] double student_t_quantile(double p, int df);

/// Histogram of a sample over explicit bin edges; values outside the range
/// are clamped into the first/last bin. Returns per-bin counts.
[[nodiscard]] std::vector<std::size_t> bin_counts(std::span<const double> sample,
                                                  std::span<const double> edges);

}  // namespace tbd
