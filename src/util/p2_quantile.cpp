#include "util/p2_quantile.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace tbd {

P2Quantile::P2Quantile(double q) : q_{q} {
  assert(q > 0.0 && q < 1.0);
  desired_ = {1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0};
  increment_ = {0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0};
}

void P2Quantile::add(double x) {
  if (count_ < 5) {
    heights_[count_++] = x;
    if (count_ == 5) {
      std::sort(heights_.begin(), heights_.end());
      for (int i = 0; i < 5; ++i) positions_[i] = i + 1;
    }
    return;
  }
  ++count_;

  // 1. find the cell and update extreme markers.
  int k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[k + 1]) ++k;
  }

  // 2. shift positions right of the cell; advance desired positions.
  for (int i = k + 1; i < 5; ++i) positions_[i] += 1.0;
  for (int i = 0; i < 5; ++i) desired_[i] += increment_[i];

  // 3. adjust interior markers toward their desired positions.
  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    const double right_gap = positions_[i + 1] - positions_[i];
    const double left_gap = positions_[i - 1] - positions_[i];
    if ((d >= 1.0 && right_gap > 1.0) || (d <= -1.0 && left_gap < -1.0)) {
      const double sign = d >= 0.0 ? 1.0 : -1.0;
      // Piecewise-parabolic prediction.
      const double np = positions_[i] + sign;
      const double h =
          heights_[i] +
          sign / (positions_[i + 1] - positions_[i - 1]) *
              ((positions_[i] - positions_[i - 1] + sign) *
                   (heights_[i + 1] - heights_[i]) /
                   (positions_[i + 1] - positions_[i]) +
               (positions_[i + 1] - positions_[i] - sign) *
                   (heights_[i] - heights_[i - 1]) /
                   (positions_[i] - positions_[i - 1]));
      if (heights_[i - 1] < h && h < heights_[i + 1]) {
        heights_[i] = h;
      } else {
        // Parabolic step would break ordering: take a linear step.
        const int j = i + static_cast<int>(sign);
        heights_[i] += sign * (heights_[j] - heights_[i]) /
                       (positions_[j] - positions_[i]);
      }
      positions_[i] = np;
    }
  }
}

double P2Quantile::value() const {
  if (count_ == 0) return 0.0;
  if (count_ < 5) {
    // Exact small-sample quantile on the buffered values.
    std::array<double, 5> sorted = heights_;
    std::sort(sorted.begin(), sorted.begin() + static_cast<long>(count_));
    const double pos = q_ * static_cast<double>(count_ - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, count_ - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
  }
  return heights_[2];
}

}  // namespace tbd
