// Deterministic pseudo-random number generation for the simulator.
//
// We use xoshiro256++ seeded through splitmix64: fast, high quality, and —
// unlike std::mt19937 + std:: distributions — bit-for-bit reproducible across
// standard-library implementations, so every figure in EXPERIMENTS.md
// regenerates exactly from its seed.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

namespace tbd {

/// xoshiro256++ engine with splitmix64 seeding.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed);

  /// Derives an independent child stream; children of distinct indices (or of
  /// distinct parents) do not overlap in practice.
  [[nodiscard]] Rng fork(std::uint64_t stream_index);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n); n must be positive.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p);

  /// Exponential with the given mean (mean > 0).
  double exponential(double mean);

  /// Gamma(shape k, scale theta); mean = k*theta. Used for low-variance
  /// service-time jitter (shape 9 gives CV 1/3).
  double gamma(double shape, double scale);

  /// Standard normal via Marsaglia polar method.
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Poisson with the given mean (Knuth for small means, PTRS otherwise).
  std::uint64_t poisson(double mean);

  /// Index sampled according to non-negative weights (not necessarily
  /// normalized). Weights must sum to a positive value.
  std::size_t weighted_index(std::span<const double> weights);

 private:
  std::array<std::uint64_t, 4> s_{};
  bool has_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

/// Precomputed cumulative table for repeated weighted sampling from a fixed
/// discrete distribution (e.g. the RUBBoS interaction mix).
class DiscreteSampler {
 public:
  DiscreteSampler() = default;
  explicit DiscreteSampler(std::span<const double> weights);

  [[nodiscard]] std::size_t sample(Rng& rng) const;
  [[nodiscard]] std::size_t size() const { return cdf_.size(); }
  [[nodiscard]] bool empty() const { return cdf_.empty(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace tbd
