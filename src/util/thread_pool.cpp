#include "util/thread_pool.h"

#include <chrono>
#include <cstdlib>
#include <string>

namespace tbd {

namespace {

// Set while a thread (worker OR participating caller) executes task bodies,
// so re-entrant fan-out from inside a task runs inline instead of
// deadlocking on its own pool.
thread_local const ThreadPool* tls_active_pool = nullptr;

std::uint64_t elapsed_us(std::chrono::steady_clock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

}  // namespace

int ThreadPool::default_thread_count() {
  if (const char* env = std::getenv("TBD_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && v >= 1) return static_cast<int>(v);
    return 1;  // malformed or <= 0: fall back to the serial path
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int threads) {
  if (threads <= 0) threads = default_thread_count();
  workers_.reserve(static_cast<std::size_t>(threads - 1));
  stats_.worker_busy_us.assign(static_cast<std::size_t>(threads), 0);
  for (int t = 1; t < threads; ++t) {
    workers_.emplace_back(
        [this, t] { worker_loop(static_cast<std::size_t>(t)); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::scoped_lock lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::run_job_share(Job& job, std::unique_lock<std::mutex>& lock,
                               std::size_t slot) {
  const ThreadPool* outer = tls_active_pool;
  tls_active_pool = this;
  while (job.next < job.n) {
    const std::size_t i = job.next++;
    lock.unlock();
    const auto t0 = std::chrono::steady_clock::now();
    std::exception_ptr err;
    try {
      (*job.fn)(i);
    } catch (...) {
      err = std::current_exception();
    }
    const std::uint64_t busy = elapsed_us(t0);
    lock.lock();
    ++stats_.tasks;
    stats_.busy_us += busy;
    stats_.worker_busy_us[slot] += busy;
    if (err && !job.error) job.error = err;
    if (++job.done == job.n) done_cv_.notify_all();
  }
  tls_active_pool = outer;
}

void ThreadPool::worker_loop(std::size_t slot) {
  std::uint64_t seen = 0;
  std::unique_lock lock(mutex_);
  while (true) {
    work_cv_.wait(lock, [&] { return stop_ || (job_ && job_gen_ != seen); });
    if (stop_) return;
    seen = job_gen_;
    run_job_share(*job_, lock, slot);
  }
}

void ThreadPool::parallel_for_indexed(
    std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1 || tls_active_pool == this) {
    // Serial fast path: counted but not timed, so TBD_THREADS=1 stays
    // byte-for-byte the historic serial execution with no clock reads.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    const std::scoped_lock lock(mutex_);
    stats_.tasks_inline += n;
    return;
  }
  Job job;
  job.n = n;
  job.fn = &fn;
  std::unique_lock lock(mutex_);
  // One job at a time; a second outer caller queues here until the pool idles.
  if (job_ != nullptr) {
    const auto t0 = std::chrono::steady_clock::now();
    done_cv_.wait(lock, [&] { return job_ == nullptr; });
    stats_.queue_wait_us += elapsed_us(t0);
  }
  ++stats_.jobs;
  job_ = &job;
  ++job_gen_;
  work_cv_.notify_all();
  run_job_share(job, lock, 0);
  done_cv_.wait(lock, [&] { return job.done == job.n; });
  job_ = nullptr;
  done_cv_.notify_all();
  if (job.error) std::rethrow_exception(job.error);
}

ThreadPool::Stats ThreadPool::stats() const {
  const std::scoped_lock lock(mutex_);
  return stats_;
}

ThreadPool& shared_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace tbd
