#include "util/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <string>

#ifdef __linux__
#include <pthread.h>
#endif

namespace tbd {

namespace {

// Set while a thread (worker OR participating caller) executes task bodies,
// so re-entrant fan-out from inside a task runs inline instead of
// deadlocking on its own pool.
thread_local const ThreadPool* tls_active_pool = nullptr;

std::uint64_t elapsed_us(std::chrono::steady_clock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

}  // namespace

int ThreadPool::default_thread_count() {
  if (const char* env = std::getenv("TBD_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && v >= 1) return static_cast<int>(v);
    return 1;  // malformed or <= 0: fall back to the serial path
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int threads) {
  if (threads <= 0) threads = default_thread_count();
  workers_.reserve(static_cast<std::size_t>(threads - 1));
  stats_.worker_busy_us.assign(static_cast<std::size_t>(threads), 0);
  heartbeats_.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    heartbeats_.push_back(std::make_unique<Heartbeat>());
  }
  for (int t = 1; t < threads; ++t) {
    workers_.emplace_back(
        [this, t] { worker_loop(static_cast<std::size_t>(t)); });
#ifdef __linux__
    const std::string name = "tbd-pool-" + std::to_string(t);
    pthread_setname_np(workers_.back().native_handle(), name.c_str());
#endif
  }
}

ThreadPool::~ThreadPool() {
  stop_watchdog();
  {
    const std::scoped_lock lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::uint64_t ThreadPool::now_us() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void ThreadPool::run_job_share(Job& job, std::unique_lock<std::mutex>& lock,
                               std::size_t slot) {
  const ThreadPool* outer = tls_active_pool;
  tls_active_pool = this;
  while (job.next < job.n) {
    const std::size_t i = job.next++;
    lock.unlock();
    const auto t0 = std::chrono::steady_clock::now();
    const bool watched = watchdog_on_.load(std::memory_order_relaxed);
    if (watched) {
      // Reuses the t0 read the pool already pays for; +1 keeps a task that
      // starts exactly at the epoch distinguishable from "idle".
      Heartbeat& hb = *heartbeats_[slot];
      hb.task_index.store(i, std::memory_order_relaxed);
      hb.task_start_us.store(
          1 + static_cast<std::uint64_t>(
                  std::chrono::duration_cast<std::chrono::microseconds>(
                      t0 - epoch_)
                      .count()),
          std::memory_order_release);
    }
    std::exception_ptr err;
    try {
      (*job.fn)(i);
    } catch (...) {
      err = std::current_exception();
    }
    const std::uint64_t busy = elapsed_us(t0);
    if (watched) {
      Heartbeat& hb = *heartbeats_[slot];
      hb.task_start_us.store(0, std::memory_order_release);
      hb.tasks_done.fetch_add(1, std::memory_order_relaxed);
    }
    lock.lock();
    ++stats_.tasks;
    stats_.busy_us += busy;
    stats_.worker_busy_us[slot] += busy;
    if (watched) record_slow_task_locked(busy, slot, i);
    if (err && !job.error) job.error = err;
    if (++job.done == job.n) done_cv_.notify_all();
  }
  tls_active_pool = outer;
}

void ThreadPool::worker_loop(std::size_t slot) {
  std::uint64_t seen = 0;
  std::unique_lock lock(mutex_);
  while (true) {
    work_cv_.wait(lock, [&] { return stop_ || (job_ && job_gen_ != seen); });
    if (stop_) return;
    seen = job_gen_;
    run_job_share(*job_, lock, slot);
  }
}

void ThreadPool::parallel_for_indexed(
    std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1 || tls_active_pool == this) {
    if (!watchdog_on_.load(std::memory_order_relaxed)) {
      // Serial fast path: counted but not timed, so TBD_THREADS=1 stays
      // byte-for-byte the historic serial execution with no clock reads.
      for (std::size_t i = 0; i < n; ++i) fn(i);
      const std::scoped_lock lock(mutex_);
      stats_.tasks_inline += n;
      return;
    }
    // Watched serial path: same heartbeat protocol as the workers, stamped
    // on the caller slot (0) so a hung inline task is just as visible.
    Heartbeat& hb = *heartbeats_[0];
    for (std::size_t i = 0; i < n; ++i) {
      const auto t0 = std::chrono::steady_clock::now();
      hb.task_index.store(i, std::memory_order_relaxed);
      hb.task_start_us.store(
          1 + static_cast<std::uint64_t>(
                  std::chrono::duration_cast<std::chrono::microseconds>(
                      t0 - epoch_)
                      .count()),
          std::memory_order_release);
      try {
        fn(i);
      } catch (...) {
        hb.task_start_us.store(0, std::memory_order_release);
        const std::scoped_lock lock(mutex_);
        stats_.tasks_inline += i + 1;
        throw;
      }
      const std::uint64_t busy = elapsed_us(t0);
      hb.task_start_us.store(0, std::memory_order_release);
      hb.tasks_done.fetch_add(1, std::memory_order_relaxed);
      const std::scoped_lock lock(mutex_);
      record_slow_task_locked(busy, 0, i);
    }
    const std::scoped_lock lock(mutex_);
    stats_.tasks_inline += n;
    return;
  }
  Job job;
  job.n = n;
  job.fn = &fn;
  std::unique_lock lock(mutex_);
  // One job at a time; a second outer caller queues here until the pool idles.
  if (job_ != nullptr) {
    const auto t0 = std::chrono::steady_clock::now();
    done_cv_.wait(lock, [&] { return job_ == nullptr; });
    stats_.queue_wait_us += elapsed_us(t0);
  }
  ++stats_.jobs;
  job_ = &job;
  ++job_gen_;
  work_cv_.notify_all();
  run_job_share(job, lock, 0);
  done_cv_.wait(lock, [&] { return job.done == job.n; });
  job_ = nullptr;
  done_cv_.notify_all();
  if (job.error) std::rethrow_exception(job.error);
}

ThreadPool::Stats ThreadPool::stats() const {
  const std::scoped_lock lock(mutex_);
  return stats_;
}

void ThreadPool::record_slow_task_locked(std::uint64_t duration_us,
                                         std::size_t slot,
                                         std::size_t task_index) {
  constexpr std::size_t kTopK = 8;
  if (slow_tasks_.size() >= kTopK &&
      duration_us <= slow_tasks_.back().duration_us) {
    return;
  }
  const SlowTask entry{duration_us, slot, task_index};
  const auto at = std::upper_bound(
      slow_tasks_.begin(), slow_tasks_.end(), entry,
      [](const SlowTask& a, const SlowTask& b) {
        return a.duration_us > b.duration_us;
      });
  slow_tasks_.insert(at, entry);
  if (slow_tasks_.size() > kTopK) slow_tasks_.pop_back();
}

void ThreadPool::start_watchdog(WatchdogOptions options) {
  stop_watchdog();  // re-arming replaces the options and restarts cleanly
  {
    const std::scoped_lock lock(wd_mutex_);
    watchdog_options_ = std::move(options);
    if (watchdog_options_.deadline_us == 0) {
      watchdog_options_.deadline_us = 1;
    }
    wd_stop_ = false;
  }
  watchdog_on_.store(true, std::memory_order_release);
  watchdog_thread_ = std::thread([this] { watchdog_loop(); });
#ifdef __linux__
  pthread_setname_np(watchdog_thread_.native_handle(), "tbd-watchdog");
#endif
}

void ThreadPool::stop_watchdog() {
  if (!watchdog_thread_.joinable()) return;
  {
    const std::scoped_lock lock(wd_mutex_);
    wd_stop_ = true;
  }
  wd_cv_.notify_all();
  watchdog_thread_.join();
  watchdog_on_.store(false, std::memory_order_release);
}

bool ThreadPool::watchdog_running() const {
  return watchdog_on_.load(std::memory_order_acquire);
}

std::uint64_t ThreadPool::stalls_detected() const {
  return stalls_detected_.load(std::memory_order_relaxed);
}

void ThreadPool::watchdog_loop() {
  std::uint64_t deadline_us = 0;
  {
    const std::scoped_lock lock(wd_mutex_);
    deadline_us = watchdog_options_.deadline_us;
  }
  // Poll at deadline/4 so a stall is reported within one deadline period of
  // becoming reportable (clamped to keep very short test deadlines honest
  // and very long production deadlines from polling too rarely).
  const auto poll = std::chrono::microseconds(
      std::min<std::uint64_t>(1'000'000,
                              std::max<std::uint64_t>(1'000, deadline_us / 4)));
  // One latch per slot, keyed on the stalled task's start stamp: each
  // stalled task fires once, and a fresh task on the same slot re-arms.
  std::vector<std::uint64_t> latched(heartbeats_.size(), 0);
  std::unique_lock lock(wd_mutex_);
  while (!wd_stop_) {
    if (wd_cv_.wait_for(lock, poll, [this] { return wd_stop_; })) break;
    const std::uint64_t now = now_us();
    for (std::size_t slot = 0; slot < heartbeats_.size(); ++slot) {
      const std::uint64_t start =
          heartbeats_[slot]->task_start_us.load(std::memory_order_acquire);
      if (start == 0 || latched[slot] == start) continue;
      const std::uint64_t elapsed = now > (start - 1) ? now - (start - 1) : 0;
      if (elapsed < deadline_us) continue;
      latched[slot] = start;
      stalls_detected_.fetch_add(1, std::memory_order_relaxed);
      if (watchdog_options_.on_stall) {
        StallInfo info;
        info.slot = slot;
        info.thread_name =
            slot == 0 ? "caller" : "tbd-pool-" + std::to_string(slot);
        info.task_index =
            heartbeats_[slot]->task_index.load(std::memory_order_relaxed);
        info.elapsed_us = elapsed;
        info.deadline_us = deadline_us;
        // The callback may log or start a profile burst; keep the lock so
        // stop_watchdog() can't tear options down underneath it, but the
        // callback must not call back into this pool.
        watchdog_options_.on_stall(info);
      }
    }
  }
}

std::vector<ThreadPool::ThreadInfo> ThreadPool::thread_info() const {
  std::uint64_t deadline_us = 0;
  {
    const std::scoped_lock lock(wd_mutex_);
    deadline_us = watchdog_options_.deadline_us;
  }
  const std::uint64_t now = now_us();
  std::vector<ThreadInfo> out;
  out.reserve(heartbeats_.size());
  std::vector<std::uint64_t> busy;
  {
    const std::scoped_lock lock(mutex_);
    busy = stats_.worker_busy_us;
  }
  for (std::size_t slot = 0; slot < heartbeats_.size(); ++slot) {
    const Heartbeat& hb = *heartbeats_[slot];
    ThreadInfo info;
    info.slot = slot;
    info.name = slot == 0 ? "caller" : "tbd-pool-" + std::to_string(slot);
    const std::uint64_t start =
        hb.task_start_us.load(std::memory_order_acquire);
    info.running = start != 0;
    if (info.running) {
      info.task_elapsed_us = now > (start - 1) ? now - (start - 1) : 0;
      info.task_index = hb.task_index.load(std::memory_order_relaxed);
      info.stalled = deadline_us > 0 && info.task_elapsed_us >= deadline_us;
    }
    info.tasks = hb.tasks_done.load(std::memory_order_relaxed);
    info.busy_us = slot < busy.size() ? busy[slot] : 0;
    out.push_back(std::move(info));
  }
  return out;
}

std::vector<ThreadPool::SlowTask> ThreadPool::slow_tasks() const {
  const std::scoped_lock lock(mutex_);
  return slow_tasks_;
}

ThreadPool& shared_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace tbd
