// Strong time types for the simulation: microsecond-resolution durations and
// time points. All timestamps in the system (wire messages, request records,
// analysis intervals) use these types, mirroring the paper's "microsecond
// ticks" captured by passive network tracing (Section III-A).
#pragma once

#include <cstdint>
#include <compare>
#include <string>

namespace tbd {

/// A span of simulated time with microsecond resolution.
///
/// Negative durations are representable (useful for arithmetic) but the
/// simulator never schedules into the past.
class Duration {
 public:
  constexpr Duration() = default;

  [[nodiscard]] static constexpr Duration micros(std::int64_t us) { return Duration{us}; }
  [[nodiscard]] static constexpr Duration millis(std::int64_t ms) { return Duration{ms * 1000}; }
  [[nodiscard]] static constexpr Duration seconds(std::int64_t s) { return Duration{s * 1'000'000}; }
  /// Converts fractional seconds, rounding to the nearest microsecond.
  [[nodiscard]] static constexpr Duration from_seconds_f(double s) {
    return Duration{static_cast<std::int64_t>(s * 1e6 + (s >= 0 ? 0.5 : -0.5))};
  }
  /// Converts fractional milliseconds, rounding to the nearest microsecond.
  [[nodiscard]] static constexpr Duration from_millis_f(double ms) {
    return from_seconds_f(ms / 1e3);
  }

  [[nodiscard]] constexpr std::int64_t micros() const { return us_; }
  [[nodiscard]] constexpr double millis_f() const { return static_cast<double>(us_) / 1e3; }
  [[nodiscard]] constexpr double seconds_f() const { return static_cast<double>(us_) / 1e6; }

  [[nodiscard]] constexpr bool is_zero() const { return us_ == 0; }
  [[nodiscard]] constexpr bool is_positive() const { return us_ > 0; }

  constexpr auto operator<=>(const Duration&) const = default;

  constexpr Duration& operator+=(Duration d) { us_ += d.us_; return *this; }
  constexpr Duration& operator-=(Duration d) { us_ -= d.us_; return *this; }
  friend constexpr Duration operator+(Duration a, Duration b) { return Duration{a.us_ + b.us_}; }
  friend constexpr Duration operator-(Duration a, Duration b) { return Duration{a.us_ - b.us_}; }
  friend constexpr Duration operator*(Duration a, std::int64_t k) { return Duration{a.us_ * k}; }
  friend constexpr Duration operator*(std::int64_t k, Duration a) { return a * k; }
  friend constexpr Duration operator/(Duration a, std::int64_t k) { return Duration{a.us_ / k}; }
  /// Ratio of two durations as a double; `b` must be nonzero.
  [[nodiscard]] constexpr double ratio(Duration b) const {
    return static_cast<double>(us_) / static_cast<double>(b.us_);
  }

  /// Human-readable rendering, e.g. "50ms", "1.5s", "250us".
  [[nodiscard]] std::string to_string() const;

 private:
  explicit constexpr Duration(std::int64_t us) : us_{us} {}
  std::int64_t us_ = 0;
};

/// An instant on the simulation clock (microseconds since simulation start).
class TimePoint {
 public:
  constexpr TimePoint() = default;

  [[nodiscard]] static constexpr TimePoint from_micros(std::int64_t us) { return TimePoint{us}; }
  [[nodiscard]] static constexpr TimePoint origin() { return TimePoint{0}; }
  /// Sentinel later than any schedulable time.
  [[nodiscard]] static constexpr TimePoint max() {
    return TimePoint{std::int64_t{1} << 62};
  }

  [[nodiscard]] constexpr std::int64_t micros() const { return us_; }
  [[nodiscard]] constexpr double seconds_f() const { return static_cast<double>(us_) / 1e6; }
  [[nodiscard]] constexpr double millis_f() const { return static_cast<double>(us_) / 1e3; }

  constexpr auto operator<=>(const TimePoint&) const = default;

  friend constexpr TimePoint operator+(TimePoint t, Duration d) {
    return TimePoint{t.us_ + d.micros()};
  }
  friend constexpr TimePoint operator-(TimePoint t, Duration d) {
    return TimePoint{t.us_ - d.micros()};
  }
  friend constexpr Duration operator-(TimePoint a, TimePoint b) {
    return Duration::micros(a.us_ - b.us_);
  }

 private:
  explicit constexpr TimePoint(std::int64_t us) : us_{us} {}
  std::int64_t us_ = 0;
};

namespace literals {
constexpr Duration operator""_us(unsigned long long v) {
  return Duration::micros(static_cast<std::int64_t>(v));
}
constexpr Duration operator""_ms(unsigned long long v) {
  return Duration::millis(static_cast<std::int64_t>(v));
}
constexpr Duration operator""_s(unsigned long long v) {
  return Duration::seconds(static_cast<std::int64_t>(v));
}
}  // namespace literals

}  // namespace tbd
