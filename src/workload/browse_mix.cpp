#include "workload/browse_mix.h"

namespace tbd::workload {

namespace {

// Field-explicit builder: RequestClass gained fields over time and silent
// positional aggregate initialization is how calibration bugs are born.
ntier::RequestClass browse_class(std::string name, double weight,
                                 double web_us, double app_us, int queries,
                                 double mw_us, double db_us,
                                 double alloc_kib) {
  ntier::RequestClass c;
  c.name = std::move(name);
  c.weight = weight;
  c.web_demand_us = web_us;
  c.app_demand_us = app_us;
  c.db_queries = queries;
  c.db_write_queries = 0;
  c.mw_demand_us = mw_us;
  c.db_demand_us = db_us;
  c.app_alloc_bytes = alloc_kib * 1024.0;
  return c;
}

ntier::RequestClass write_class(std::string name, double weight,
                                double web_us, double app_us, int reads,
                                int writes, double mw_us, double db_us,
                                double alloc_kib) {
  ntier::RequestClass c =
      browse_class(std::move(name), weight, web_us, app_us, reads, mw_us,
                   db_us, alloc_kib);
  c.db_write_queries = writes;
  return c;
}

}  // namespace

ntier::RequestClassList rubbos_browse_mix() {
  // name, weight, web us, app us, reads, mw us/q, db us/q, alloc KiB
  // DB demands are calibrated so that at WL 8,000 the MySQL replicas sit at
  // ~41% of their full-clock capacity: parked in P8 (53% clock) by the
  // power-saving governor that makes ~78% busy — Table I's reading — while
  // leaving just enough headroom that only bursts congest them.
  return {
      browse_class("StoriesOfTheDay", 0.14, 533, 1100, 2, 143, 172, 420),
      browse_class("ViewStory", 0.25, 550, 1360, 3, 151, 180, 450),
      browse_class("ViewComment", 0.16, 516, 1450, 4, 160, 194, 470),
      browse_class("BrowseCategories", 0.08, 482, 920, 1, 134, 118, 300),
      browse_class("BrowseStoriesByCategory", 0.12, 533, 1280, 3, 155, 180, 430),
      browse_class("SearchInStories", 0.07, 585, 1980, 5, 168, 545, 520),
      browse_class("ViewUserInfo", 0.08, 490, 1010, 2, 139, 94, 320),
      browse_class("StaticContent", 0.10, 447, 560, 0, 0, 0, 120),
  };
}

ntier::RequestClassList rubbos_read_write_mix() {
  auto mix = rubbos_browse_mix();
  for (auto& c : mix) c.weight *= 0.85;

  // name, weight, web us, app us, reads, writes, mw us/q, db us/q, alloc KiB
  mix.push_back(
      write_class("StoreComment", 0.06, 650, 1500, 1, 2, 185, 240, 500));
  mix.push_back(
      write_class("SubmitStory", 0.03, 680, 1750, 1, 2, 190, 260, 560));
  mix.push_back(
      write_class("ModerateComment", 0.04, 600, 1300, 2, 1, 180, 220, 430));
  mix.push_back(
      write_class("RegisterUser", 0.02, 620, 1200, 1, 1, 175, 180, 380));
  return mix;
}

double mean_writes_per_page(const ntier::RequestClassList& classes) {
  double total_w = 0.0;
  double q = 0.0;
  for (const auto& c : classes) {
    total_w += c.weight;
    q += c.weight * c.db_write_queries;
  }
  return total_w > 0.0 ? q / total_w : 0.0;
}

double mean_queries_per_page(const ntier::RequestClassList& classes) {
  double total_w = 0.0;
  double q = 0.0;
  for (const auto& c : classes) {
    total_w += c.weight;
    q += c.weight * c.db_queries;
  }
  return total_w > 0.0 ? q / total_w : 0.0;
}

namespace {
template <typename Fn>
double weighted_mean(const ntier::RequestClassList& classes, Fn per_class) {
  double total_w = 0.0;
  double v = 0.0;
  for (const auto& c : classes) {
    total_w += c.weight;
    v += c.weight * per_class(c);
  }
  return total_w > 0.0 ? v / total_w : 0.0;
}
}  // namespace

double mean_web_demand(const ntier::RequestClassList& classes) {
  return weighted_mean(classes, [](const auto& c) { return c.web_demand_us; });
}

double mean_app_demand(const ntier::RequestClassList& classes) {
  return weighted_mean(classes, [](const auto& c) { return c.app_demand_us; });
}

double mean_mw_demand_per_page(const ntier::RequestClassList& classes) {
  return weighted_mean(classes,
                       [](const auto& c) { return c.mw_demand_us * c.db_queries; });
}

double mean_db_demand_per_page(const ntier::RequestClassList& classes) {
  return weighted_mean(classes,
                       [](const auto& c) { return c.db_demand_us * c.db_queries; });
}

}  // namespace tbd::workload
