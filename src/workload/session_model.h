// Session behaviour: Markov transitions between interactions.
//
// RUBBoS clients do not draw interactions i.i.d. — each emulated browser
// follows a transition matrix (browse the front page, open a story, read
// comments, occasionally post). Sessions matter to fine-grained analysis
// because they correlate consecutive requests of one client: a story view is
// followed by comment views with high probability, which shifts the
// short-term class mix the throughput normalization has to absorb.
//
// SessionModel holds the matrix; ClientPopulation (or any driver) asks it
// for each client's next class given the previous one.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "ntier/request_class.h"
#include "util/rng.h"

namespace tbd::workload {

class SessionModel {
 public:
  /// `transitions[i][j]` = probability of interaction j following i; rows
  /// must be non-negative and sum to ~1. `entry` is the distribution of a
  /// session's first interaction.
  SessionModel(std::vector<std::vector<double>> transitions,
               std::vector<double> entry);

  /// Uniform-mix model (i.i.d. draws) from class weights — the fallback
  /// when no session structure is wanted.
  [[nodiscard]] static SessionModel independent(std::span<const double> weights);

  [[nodiscard]] std::size_t classes() const { return rows_.size(); }

  /// First interaction of a fresh session.
  [[nodiscard]] std::size_t first(Rng& rng) const;
  /// Next interaction after `previous`.
  [[nodiscard]] std::size_t next(std::size_t previous, Rng& rng) const;

  /// Stationary distribution of the chain (power iteration); the long-run
  /// class mix this model induces.
  [[nodiscard]] std::vector<double> stationary(int iterations = 200) const;

 private:
  std::vector<DiscreteSampler> rows_;
  DiscreteSampler entry_;
  std::vector<std::vector<double>> matrix_;
};

/// The session model matching rubbos_browse_mix(): transition structure
/// condensed from the RUBBoS browse-only transition table, with a stationary
/// distribution close to the mix weights (validated in tests).
[[nodiscard]] SessionModel rubbos_browse_sessions();

}  // namespace tbd::workload
