// The RUBBoS browse-only interaction mix.
//
// RUBBoS models a bulletin-board site (Slashdot-like); its browse-only mode
// mixes read interactions with very different per-tier costs. We condense
// the 24 interactions into eight representative classes whose weighted
// demands are calibrated so that the paper's Table I utilizations emerge at
// WL 8,000 on the 1L/2S/1L/2S topology (see DESIGN.md section 2).
#pragma once

#include "ntier/request_class.h"

namespace tbd::workload {

/// Eight-class browse-only mix; weights sum to 1.
[[nodiscard]] ntier::RequestClassList rubbos_browse_mix();

/// Read/write mix: the browse classes at ~85% plus four update interactions
/// (comments, stories, moderation, registration) whose write queries the
/// clustering middleware broadcasts to every database replica. Weights sum
/// to 1.
[[nodiscard]] ntier::RequestClassList rubbos_read_write_mix();

/// Weighted mean number of write queries per page (0 for browse-only).
[[nodiscard]] double mean_writes_per_page(const ntier::RequestClassList& classes);

/// Weighted mean number of DB queries per page of a mix.
[[nodiscard]] double mean_queries_per_page(const ntier::RequestClassList& classes);

/// Weighted mean demand per page at one tier, microseconds.
/// For mw/db tiers this includes the per-query multiplication.
[[nodiscard]] double mean_web_demand(const ntier::RequestClassList& classes);
[[nodiscard]] double mean_app_demand(const ntier::RequestClassList& classes);
[[nodiscard]] double mean_mw_demand_per_page(const ntier::RequestClassList& classes);
[[nodiscard]] double mean_db_demand_per_page(const ntier::RequestClassList& classes);

}  // namespace tbd::workload
