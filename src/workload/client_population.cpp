#include "workload/client_population.h"

#include <cassert>

namespace tbd::workload {

namespace {
std::vector<double> mix_weights(const ntier::RequestClassList& classes) {
  std::vector<double> w;
  w.reserve(classes.size());
  for (const auto& c : classes) w.push_back(c.weight);
  return w;
}
}  // namespace

ClientPopulation::ClientPopulation(sim::Engine& engine,
                                   ntier::TxnDriver& driver,
                                   ClientConfig config, Rng rng,
                                   PageCallback on_page)
    : engine_{engine},
      driver_{driver},
      config_{config},
      rng_{rng},
      on_page_{std::move(on_page)},
      mix_{mix_weights(driver.classes())},
      clients_(static_cast<std::size_t>(config.num_clients)) {
  assert(config.num_clients > 0);
}

void ClientPopulation::start() {
  for (int c = 0; c < config_.num_clients; ++c) {
    auto& client = clients_[static_cast<std::size_t>(c)];
    client.thinking = true;
    // Exponential initial think = the stationary state of the think/request
    // renewal process, so measurement can start without a ramp transient.
    const Duration first = Duration::from_seconds_f(
        rng_.exponential(config_.mean_think.seconds_f()));
    client.think_event =
        engine_.schedule_after(first, [this, c] { issue(c); });
  }
  if (config_.bursts_enabled) schedule_burst();
}

void ClientPopulation::think_then_request(int client) {
  auto& c = clients_[static_cast<std::size_t>(client)];
  c.thinking = true;
  const Duration think = Duration::from_seconds_f(
      rng_.exponential(config_.mean_think.seconds_f()));
  c.think_event = engine_.schedule_after(think, [this, client] { issue(client); });
}

void ClientPopulation::use_sessions(SessionModel model) {
  sessions_.emplace(std::move(model));
}

void ClientPopulation::issue(int client) {
  auto& c = clients_[static_cast<std::size_t>(client)];
  c.thinking = false;
  c.think_event.invalidate();
  std::size_t pick;
  if (sessions_) {
    pick = c.in_session ? sessions_->next(c.last_class, rng_)
                        : sessions_->first(rng_);
    c.in_session = true;
    c.last_class = pick;
  } else {
    pick = mix_.sample(rng_);
  }
  const auto class_id = static_cast<trace::ClassId>(pick);
  driver_.start(class_id, [this, client](const ntier::TxnDriver::PageResult& r) {
    ++pages_;
    if (on_page_) on_page_(r);
    think_then_request(client);
  });
}

void ClientPopulation::schedule_burst() {
  const Duration gap = Duration::from_seconds_f(
      rng_.exponential(config_.mean_burst_gap.seconds_f()));
  engine_.schedule_after(gap, [this] {
    ++bursts_;
    const auto targets = static_cast<int>(
        config_.burst_fraction * static_cast<double>(config_.num_clients));
    for (int i = 0; i < targets; ++i) {
      const auto pick = static_cast<int>(
          rng_.uniform_index(static_cast<std::uint64_t>(config_.num_clients)));
      auto& c = clients_[static_cast<std::size_t>(pick)];
      if (!c.thinking) continue;  // already in flight; burst loses a shot
      // Reschedule this client's next request into the burst window.
      engine_.cancel(c.think_event);
      const Duration wake = Duration::from_seconds_f(
          rng_.uniform(0.0, config_.burst_spread.seconds_f()));
      c.think_event = engine_.schedule_after(wake, [this, pick] { issue(pick); });
    }
    schedule_burst();
  });
}

}  // namespace tbd::workload
