// Closed-loop client population with micro-burst modulation.
//
// Each of the N concurrent users loops: think (exponential, mean 7 s as in
// RUBBoS) -> issue one page -> think again. "Workload" in the paper's WL
// axis is exactly this N.
//
// Real client traffic is bursty at millisecond scale [Mi et al., cited as
// [14]]; at 50 ms granularity plain Poisson arrivals are too smooth to
// congest a sub-saturated server. The burst modulator reproduces the
// phenomenon: at exponential intervals it wakes a small random fraction of
// currently-thinking clients within a short window, creating the transient
// demand spikes that interact with JVM GC and SpeedStep lag to form the
// paper's transient bottlenecks.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "ntier/txn_driver.h"
#include "sim/engine.h"
#include "util/rng.h"
#include "util/time.h"
#include "workload/session_model.h"

namespace tbd::workload {

struct ClientConfig {
  int num_clients = 1000;
  Duration mean_think = Duration::seconds(7);

  // Micro-burst modulator.
  bool bursts_enabled = true;
  Duration mean_burst_gap = Duration::millis(1400);
  /// Fraction of the population targeted per burst.
  double burst_fraction = 0.03;
  /// Woken clients fire within [0, burst_spread) of the burst instant.
  Duration burst_spread = Duration::millis(100);
};

class ClientPopulation {
 public:
  using PageCallback = std::function<void(const ntier::TxnDriver::PageResult&)>;

  /// `on_page` fires for every completed page (response-time collection).
  ClientPopulation(sim::Engine& engine, ntier::TxnDriver& driver,
                   ClientConfig config, Rng rng, PageCallback on_page);
  ClientPopulation(const ClientPopulation&) = delete;
  ClientPopulation& operator=(const ClientPopulation&) = delete;

  /// Navigate via a Markov session model instead of i.i.d. mix draws; call
  /// before start(). The model's class indices must match the driver's
  /// request-class list.
  void use_sessions(SessionModel model);

  /// Kicks off all clients; call once before running the engine.
  void start();

  [[nodiscard]] std::uint64_t pages_completed() const { return pages_; }
  [[nodiscard]] std::uint64_t bursts_fired() const { return bursts_; }

 private:
  struct Client {
    sim::EventHandle think_event;
    bool thinking = false;
    bool in_session = false;        // has a previous interaction
    std::size_t last_class = 0;
  };

  void think_then_request(int client);
  void issue(int client);
  void schedule_burst();

  sim::Engine& engine_;
  ntier::TxnDriver& driver_;
  ClientConfig config_;
  Rng rng_;
  PageCallback on_page_;
  DiscreteSampler mix_;
  std::optional<SessionModel> sessions_;
  std::vector<Client> clients_;
  std::uint64_t pages_ = 0;
  std::uint64_t bursts_ = 0;
};

}  // namespace tbd::workload
