// Open-loop workload: drive the system from an explicit arrival schedule.
//
// The closed-loop population (client_population.h) is RUBBoS's model; an
// open-loop schedule decouples arrivals from responses, which is what you
// want to (a) replay production arrival traces through the simulator and
// (b) generate calibrated bursty processes. The MMPP generator — a Markov-
// modulated Poisson process alternating between a base and a burst rate —
// is the standard bursty-workload model of Mi et al. (the paper's [14]).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "ntier/txn_driver.h"
#include "sim/engine.h"
#include "util/rng.h"

namespace tbd::workload {

struct ScheduledArrival {
  TimePoint at;
  trace::ClassId class_id = 0;
};

using ArrivalSchedule = std::vector<ScheduledArrival>;

/// Homogeneous Poisson arrivals at `rate_per_s` over [0, horizon), classes
/// drawn from `class_weights`.
[[nodiscard]] ArrivalSchedule poisson_schedule(double rate_per_s,
                                               Duration horizon,
                                               std::span<const double> class_weights,
                                               Rng& rng);

struct MmppConfig {
  double base_rate_per_s = 500.0;
  double burst_rate_per_s = 2500.0;
  /// Mean sojourn in the base / burst state.
  Duration mean_base = Duration::millis(1500);
  Duration mean_burst = Duration::millis(200);
};

/// Two-state Markov-modulated Poisson process over [0, horizon).
[[nodiscard]] ArrivalSchedule mmpp_schedule(const MmppConfig& config,
                                            Duration horizon,
                                            std::span<const double> class_weights,
                                            Rng& rng);

/// Feeds a schedule into the transaction driver at the scheduled instants.
class ArrivalReplay {
 public:
  using PageCallback = std::function<void(const ntier::TxnDriver::PageResult&)>;

  /// `schedule` must be sorted by time (the generators above are).
  ArrivalReplay(sim::Engine& engine, ntier::TxnDriver& driver,
                ArrivalSchedule schedule, PageCallback on_page);
  ArrivalReplay(const ArrivalReplay&) = delete;
  ArrivalReplay& operator=(const ArrivalReplay&) = delete;

  /// Schedules every arrival; call once before running the engine.
  void start();

  [[nodiscard]] std::uint64_t pages_started() const { return started_; }
  [[nodiscard]] std::uint64_t pages_completed() const { return completed_; }

 private:
  sim::Engine& engine_;
  ntier::TxnDriver& driver_;
  ArrivalSchedule schedule_;
  PageCallback on_page_;
  std::uint64_t started_ = 0;
  std::uint64_t completed_ = 0;
};

}  // namespace tbd::workload
