#include "workload/session_model.h"

#include <cassert>

namespace tbd::workload {

SessionModel::SessionModel(std::vector<std::vector<double>> transitions,
                           std::vector<double> entry)
    : entry_{entry}, matrix_{std::move(transitions)} {
  assert(matrix_.size() == entry.size());
  rows_.reserve(matrix_.size());
  for (const auto& row : matrix_) {
    assert(row.size() == matrix_.size());
    rows_.emplace_back(std::span<const double>{row});
  }
}

SessionModel SessionModel::independent(std::span<const double> weights) {
  std::vector<std::vector<double>> rows(
      weights.size(), std::vector<double>(weights.begin(), weights.end()));
  return SessionModel{std::move(rows),
                      std::vector<double>(weights.begin(), weights.end())};
}

std::size_t SessionModel::first(Rng& rng) const { return entry_.sample(rng); }

std::size_t SessionModel::next(std::size_t previous, Rng& rng) const {
  assert(previous < rows_.size());
  return rows_[previous].sample(rng);
}

std::vector<double> SessionModel::stationary(int iterations) const {
  const std::size_t n = matrix_.size();
  std::vector<double> pi(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n, 0.0);
  for (int it = 0; it < iterations; ++it) {
    for (std::size_t j = 0; j < n; ++j) next[j] = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) next[j] += pi[i] * matrix_[i][j];
    }
    pi.swap(next);
  }
  return pi;
}

SessionModel rubbos_browse_sessions() {
  // Rows/columns in rubbos_browse_mix() order:
  // 0 StoriesOfTheDay, 1 ViewStory, 2 ViewComment, 3 BrowseCategories,
  // 4 BrowseStoriesByCategory, 5 SearchInStories, 6 ViewUserInfo,
  // 7 StaticContent. Condensed from the RUBBoS browse-only transition
  // table; the stationary distribution stays close to the mix weights
  // (guarded in tests).
  std::vector<std::vector<double>> p{
      // Sto   View  Comm  BrCat ByCat Srch  User  Stat
      {0.10, 0.45, 0.03, 0.12, 0.05, 0.08, 0.02, 0.15},  // StoriesOfTheDay
      {0.18, 0.12, 0.38, 0.04, 0.06, 0.04, 0.08, 0.10},  // ViewStory
      {0.15, 0.30, 0.25, 0.04, 0.05, 0.03, 0.10, 0.08},  // ViewComment
      {0.15, 0.08, 0.02, 0.03, 0.55, 0.07, 0.02, 0.08},  // BrowseCategories
      {0.12, 0.40, 0.08, 0.12, 0.15, 0.04, 0.03, 0.06},  // BrowseByCategory
      {0.15, 0.40, 0.08, 0.06, 0.05, 0.15, 0.03, 0.08},  // SearchInStories
      {0.22, 0.25, 0.15, 0.06, 0.06, 0.06, 0.08, 0.12},  // ViewUserInfo
      {0.30, 0.20, 0.06, 0.12, 0.07, 0.08, 0.05, 0.12},  // StaticContent
  };
  // Sessions open on the front page or a bookmark.
  std::vector<double> entry{0.60, 0.05, 0.02, 0.10, 0.03, 0.05, 0.02, 0.13};
  return SessionModel{std::move(p), std::move(entry)};
}

}  // namespace tbd::workload
