#include "workload/arrival_replay.h"

#include <cassert>

namespace tbd::workload {

ArrivalSchedule poisson_schedule(double rate_per_s, Duration horizon,
                                 std::span<const double> class_weights,
                                 Rng& rng) {
  assert(rate_per_s > 0.0);
  DiscreteSampler mix{class_weights};
  ArrivalSchedule schedule;
  schedule.reserve(static_cast<std::size_t>(rate_per_s * horizon.seconds_f()));
  double t_us = 0.0;
  const double mean_gap_us = 1e6 / rate_per_s;
  for (;;) {
    t_us += rng.exponential(mean_gap_us);
    if (t_us >= static_cast<double>(horizon.micros())) break;
    schedule.push_back(ScheduledArrival{
        TimePoint::from_micros(static_cast<std::int64_t>(t_us)),
        static_cast<trace::ClassId>(mix.sample(rng))});
  }
  return schedule;
}

ArrivalSchedule mmpp_schedule(const MmppConfig& config, Duration horizon,
                              std::span<const double> class_weights, Rng& rng) {
  assert(config.base_rate_per_s > 0.0 && config.burst_rate_per_s > 0.0);
  DiscreteSampler mix{class_weights};
  ArrivalSchedule schedule;
  double t_us = 0.0;
  bool burst = false;
  double phase_end_us = rng.exponential(
      static_cast<double>(config.mean_base.micros()));
  const double horizon_us = static_cast<double>(horizon.micros());
  while (t_us < horizon_us) {
    const double rate = burst ? config.burst_rate_per_s : config.base_rate_per_s;
    const double next = t_us + rng.exponential(1e6 / rate);
    if (next >= phase_end_us) {
      // Phase switch: no arrival consumed; restart sampling from the switch
      // point (memorylessness makes this exact for the embedded process).
      t_us = phase_end_us;
      burst = !burst;
      phase_end_us =
          t_us + rng.exponential(static_cast<double>(
                     (burst ? config.mean_burst : config.mean_base).micros()));
      continue;
    }
    t_us = next;
    if (t_us >= horizon_us) break;
    schedule.push_back(ScheduledArrival{
        TimePoint::from_micros(static_cast<std::int64_t>(t_us)),
        static_cast<trace::ClassId>(mix.sample(rng))});
  }
  return schedule;
}

ArrivalReplay::ArrivalReplay(sim::Engine& engine, ntier::TxnDriver& driver,
                             ArrivalSchedule schedule, PageCallback on_page)
    : engine_{engine},
      driver_{driver},
      schedule_{std::move(schedule)},
      on_page_{std::move(on_page)} {}

void ArrivalReplay::start() {
  for (const auto& arrival : schedule_) {
    engine_.schedule_at(arrival.at, [this, class_id = arrival.class_id] {
      ++started_;
      driver_.start(class_id,
                    [this](const ntier::TxnDriver::PageResult& result) {
                      ++completed_;
                      if (on_page_) on_page_(result);
                    });
    });
  }
}

}  // namespace tbd::workload
