#include "ntier/txn_driver.h"

#include <cassert>
#include <utility>

namespace tbd::ntier {

using trace::MessageKind;

// Per-transaction state threaded through the continuation chain.
struct TxnDriver::Txn {
  trace::TxnId id = 0;
  trace::ClassId class_id = 0;
  const RequestClass* cls = nullptr;
  CompletionFn done;

  TimePoint first_attempt;
  int retransmissions = 0;

  // Chosen servers.
  int web_i = 0;
  int app_i = 0;
  int mw_i = 0;
  int db_i = 0;

  // Ground-truth visit ids and arrival timestamps per tier.
  std::uint64_t web_visit = 0, app_visit = 0, mw_visit = 0, db_visit = 0;
  TimePoint web_arr, app_arr, mw_arr, db_arr;

  // Connection ids / pool tokens currently held.
  std::uint32_t client_conn = 0;
  std::uint32_t app_conn = 0, mw_conn = 0, db_conn = 0;
  int app_token = -1, mw_token = -1, db_token = -1;

  int query_i = 0;
  int write_i = 0;    // write queries issued so far
  int replica_i = 0;  // replica cursor within the current write broadcast
  double app_segment_mean_us = 0.0;  // app demand divided across segments
  double app_alloc_per_segment = 0.0;
};

TxnDriver::TxnDriver(sim::Engine& engine, Topology& topology,
                     RequestClassList classes, trace::TraceSink& sink, Rng rng,
                     Config config)
    : engine_{engine},
      topology_{topology},
      classes_{std::move(classes)},
      sink_{sink},
      rng_{rng},
      config_{std::move(config)},
      gamma_shape_{1.0 / (config_.demand_cv * config_.demand_cv)},
      app_alloc_hooks_(static_cast<std::size_t>(topology.tier_size(TierKind::kApp))) {
  assert(!classes_.empty());
}

void TxnDriver::set_app_alloc_hook(int app_index, std::function<void(double)> hook) {
  app_alloc_hooks_.at(static_cast<std::size_t>(app_index)) = std::move(hook);
}

double TxnDriver::jitter(double mean_us) {
  if (mean_us <= 0.0) return 0.0;
  if (config_.demand_cv <= 0.0) return mean_us;
  return rng_.gamma(gamma_shape_, mean_us / gamma_shape_);
}

void TxnDriver::send(trace::NodeId src, trace::NodeId dst, std::uint32_t conn,
                     MessageKind kind, trace::ClassId cls, std::uint32_t bytes,
                     trace::TxnId txn, std::uint64_t visit, std::uint64_t parent,
                     std::function<void()> at_delivery) {
  engine_.schedule_after(
      topology_.config().net_latency,
      [this, src, dst, conn, kind, cls, bytes, txn, visit, parent,
       cb = std::move(at_delivery)] {
        sink_.capture(trace::Message{
            .at = engine_.now(),
            .src = src,
            .dst = dst,
            .conn = conn,
            .kind = kind,
            .class_id = cls,
            .bytes = bytes,
            .txn = txn,
            .visit = visit,
            .parent_visit = parent,
        });
        cb();
      });
}

void TxnDriver::start(trace::ClassId class_id, CompletionFn on_complete) {
  assert(class_id < classes_.size());
  auto t = std::make_shared<Txn>();
  t->id = next_txn_++;
  t->class_id = class_id;
  t->cls = &classes_[class_id];
  t->done = std::move(on_complete);
  t->first_attempt = engine_.now();
  t->web_i = topology_.pick_round_robin(TierKind::kWeb);
  t->client_conn = next_client_conn_++ & 0xFFFFu;  // ephemeral-port reuse
  const int segments = t->cls->db_queries + t->cls->db_write_queries + 1;
  t->app_segment_mean_us = t->cls->app_demand_us / segments;
  t->app_alloc_per_segment = t->cls->app_alloc_bytes / segments;
  ++started_;
  attempt_connect(t);
}

void TxnDriver::attempt_connect(const TxnPtr& t) {
  // The SYN reaches the web tier after one wire latency; if the accept
  // backlog is full it is dropped there (invisible to passive tracing) and
  // the client retransmits after the TCP timeout.
  engine_.schedule_after(topology_.config().net_latency, [this, t] {
    Server& web = topology_.server(TierKind::kWeb, t->web_i);
    const bool admitted = web.admit([this, t] { on_web_thread(t); });
    if (!admitted) {
      ++retransmissions_;
      ++t->retransmissions;
      engine_.schedule_after(config_.retrans_delay,
                             [this, t] { attempt_connect(t); });
      return;
    }
    t->web_visit = new_visit();
    t->web_arr = engine_.now();
    sink_.capture(trace::Message{
        .at = engine_.now(),
        .src = 0,
        .dst = topology_.node_id(TierKind::kWeb, t->web_i),
        .conn = t->client_conn,
        .kind = MessageKind::kRequest,
        .class_id = t->class_id,
        .bytes = config_.sizes.client_web_req,
        .txn = t->id,
        .visit = t->web_visit,
        .parent_visit = 0,
    });
  });
}

void TxnDriver::on_web_thread(const TxnPtr& t) {
  Server& web = topology_.server(TierKind::kWeb, t->web_i);
  web.add_disk_micros(config_.web_disk_us_per_page);
  web.compute(jitter(t->cls->web_demand_us * 0.5), [this, t] { call_app(t); });
}

void TxnDriver::call_app(const TxnPtr& t) {
  t->app_i = topology_.pick_round_robin(TierKind::kApp);
  auto& pool = topology_.inbound_pool(TierKind::kApp, t->app_i);
  const bool ok = pool.acquire([this, t](int token) {
    t->app_token = token;
    t->app_conn = topology_.pool_conn_id(TierKind::kApp, t->app_i, token);
    t->app_visit = new_visit();
    send(topology_.node_id(TierKind::kWeb, t->web_i),
         topology_.node_id(TierKind::kApp, t->app_i), t->app_conn,
         MessageKind::kRequest, t->class_id, config_.sizes.web_app_req, t->id,
         t->app_visit, t->web_visit, [this, t] {
           t->app_arr = engine_.now();
           Server& app = topology_.server(TierKind::kApp, t->app_i);
           [[maybe_unused]] const bool admitted =
               app.admit([this, t] { on_app_thread(t); });
           assert(admitted);  // internal tiers have unbounded backlogs
         });
  });
  assert(ok);  // inbound pools have unbounded waiting lines
  (void)ok;
}

void TxnDriver::on_app_thread(const TxnPtr& t) {
  Server& app = topology_.server(TierKind::kApp, t->app_i);
  app.add_disk_micros(config_.app_disk_us_per_page);
  t->query_i = 0;
  app_segment(t);
}

void TxnDriver::app_segment(const TxnPtr& t) {
  Server& app = topology_.server(TierKind::kApp, t->app_i);
  app.compute(jitter(t->app_segment_mean_us),
              [this, t] { after_app_segment(t); });
}

void TxnDriver::after_app_segment(const TxnPtr& t) {
  if (auto& hook = app_alloc_hooks_[static_cast<std::size_t>(t->app_i)]; hook) {
    hook(t->app_alloc_per_segment);
  }
  if (t->query_i < t->cls->db_queries) {
    issue_query(t);
  } else if (t->write_i < t->cls->db_write_queries) {
    issue_write_query(t);
  } else {
    app_respond(t);
  }
}

void TxnDriver::issue_query(const TxnPtr& t) {
  t->mw_i = topology_.pick_round_robin(TierKind::kMw);
  auto& pool = topology_.inbound_pool(TierKind::kMw, t->mw_i);
  pool.acquire([this, t](int token) {
    t->mw_token = token;
    t->mw_conn = topology_.pool_conn_id(TierKind::kMw, t->mw_i, token);
    t->mw_visit = new_visit();
    send(topology_.node_id(TierKind::kApp, t->app_i),
         topology_.node_id(TierKind::kMw, t->mw_i), t->mw_conn,
         MessageKind::kRequest, t->class_id, config_.sizes.app_mw_req, t->id,
         t->mw_visit, t->app_visit, [this, t] {
           t->mw_arr = engine_.now();
           Server& mw = topology_.server(TierKind::kMw, t->mw_i);
           [[maybe_unused]] const bool admitted =
               mw.admit([this, t] { on_mw_thread(t); });
           assert(admitted);
         });
  });
}

void TxnDriver::on_mw_thread(const TxnPtr& t) {
  Server& mw = topology_.server(TierKind::kMw, t->mw_i);
  mw.add_disk_micros(config_.mw_disk_us_per_query);
  // Routing + parsing happen before the replica call; response forwarding
  // costs a small tail.
  mw.compute(jitter(t->cls->mw_demand_us * 0.8), [this, t] { call_db(t); });
}

void TxnDriver::call_db(const TxnPtr& t) {
  t->db_i = topology_.config().db_least_connections
                ? topology_.pick_least_connections(TierKind::kDb)
                : topology_.pick_round_robin(TierKind::kDb);
  auto& pool = topology_.inbound_pool(TierKind::kDb, t->db_i);
  pool.acquire([this, t](int token) {
    t->db_token = token;
    t->db_conn = topology_.pool_conn_id(TierKind::kDb, t->db_i, token);
    t->db_visit = new_visit();
    send(topology_.node_id(TierKind::kMw, t->mw_i),
         topology_.node_id(TierKind::kDb, t->db_i), t->db_conn,
         MessageKind::kRequest, t->class_id, config_.sizes.mw_db_req, t->id,
         t->db_visit, t->mw_visit, [this, t] {
           t->db_arr = engine_.now();
           Server& db = topology_.server(TierKind::kDb, t->db_i);
           [[maybe_unused]] const bool admitted =
               db.admit([this, t] { on_db_thread(t); });
           assert(admitted);
         });
  });
}

void TxnDriver::on_db_thread(const TxnPtr& t) {
  Server& db = topology_.server(TierKind::kDb, t->db_i);
  db.add_disk_micros(config_.db_disk_us_per_query);
  db.compute(jitter(t->cls->db_demand_us), [this, t] { db_respond(t); });
}

void TxnDriver::db_respond(const TxnPtr& t) {
  Server& db = topology_.server(TierKind::kDb, t->db_i);
  db.release_thread();
  send(topology_.node_id(TierKind::kDb, t->db_i),
       topology_.node_id(TierKind::kMw, t->mw_i), t->db_conn,
       MessageKind::kResponse, t->class_id, config_.sizes.db_mw_resp, t->id,
       t->db_visit, t->mw_visit, [this, t] {
         // Response observed at the tap: the DB visit closes.
         sink_.record_visit(trace::RequestRecord{
             .server = topology_.server_index(TierKind::kDb, t->db_i),
             .class_id = t->class_id,
             .arrival = t->db_arr,
             .departure = engine_.now(),
             .txn = t->id,
         });
         topology_.inbound_pool(TierKind::kDb, t->db_i).release(t->db_token);
         t->db_token = -1;
         Server& mw = topology_.server(TierKind::kMw, t->mw_i);
         mw.compute(jitter(t->cls->mw_demand_us * 0.2),
                    [this, t] { mw_respond(t); });
       });
}

void TxnDriver::mw_respond(const TxnPtr& t) {
  Server& mw = topology_.server(TierKind::kMw, t->mw_i);
  mw.release_thread();
  send(topology_.node_id(TierKind::kMw, t->mw_i),
       topology_.node_id(TierKind::kApp, t->app_i), t->mw_conn,
       MessageKind::kResponse, t->class_id, config_.sizes.mw_app_resp, t->id,
       t->mw_visit, t->app_visit, [this, t] {
         sink_.record_visit(trace::RequestRecord{
             .server = topology_.server_index(TierKind::kMw, t->mw_i),
             .class_id = t->class_id,
             .arrival = t->mw_arr,
             .departure = engine_.now(),
             .txn = t->id,
         });
         topology_.inbound_pool(TierKind::kMw, t->mw_i).release(t->mw_token);
         t->mw_token = -1;
         ++t->query_i;
         app_segment(t);
       });
}

void TxnDriver::issue_write_query(const TxnPtr& t) {
  t->mw_i = topology_.pick_round_robin(TierKind::kMw);
  auto& pool = topology_.inbound_pool(TierKind::kMw, t->mw_i);
  pool.acquire([this, t](int token) {
    t->mw_token = token;
    t->mw_conn = topology_.pool_conn_id(TierKind::kMw, t->mw_i, token);
    t->mw_visit = new_visit();
    send(topology_.node_id(TierKind::kApp, t->app_i),
         topology_.node_id(TierKind::kMw, t->mw_i), t->mw_conn,
         MessageKind::kRequest, t->class_id, config_.sizes.app_mw_req, t->id,
         t->mw_visit, t->app_visit, [this, t] {
           t->mw_arr = engine_.now();
           Server& mw = topology_.server(TierKind::kMw, t->mw_i);
           [[maybe_unused]] const bool admitted =
               mw.admit([this, t] { on_mw_thread_write(t); });
           assert(admitted);
         });
  });
}

void TxnDriver::on_mw_thread_write(const TxnPtr& t) {
  Server& mw = topology_.server(TierKind::kMw, t->mw_i);
  mw.add_disk_micros(config_.mw_disk_us_per_query);
  t->replica_i = 0;
  mw.compute(jitter(t->cls->mw_demand_us * 0.8),
             [this, t] { write_next_replica(t); });
}

void TxnDriver::write_next_replica(const TxnPtr& t) {
  if (t->replica_i >= topology_.tier_size(TierKind::kDb)) {
    // Broadcast complete: forward the acknowledgement upstream.
    Server& mw = topology_.server(TierKind::kMw, t->mw_i);
    mw.compute(jitter(t->cls->mw_demand_us * 0.2),
               [this, t] { mw_write_respond(t); });
    return;
  }
  t->db_i = t->replica_i;  // writes hit every replica, in order
  auto& pool = topology_.inbound_pool(TierKind::kDb, t->db_i);
  pool.acquire([this, t](int token) {
    t->db_token = token;
    t->db_conn = topology_.pool_conn_id(TierKind::kDb, t->db_i, token);
    t->db_visit = new_visit();
    send(topology_.node_id(TierKind::kMw, t->mw_i),
         topology_.node_id(TierKind::kDb, t->db_i), t->db_conn,
         MessageKind::kRequest, t->class_id, config_.sizes.mw_db_req, t->id,
         t->db_visit, t->mw_visit, [this, t] {
           t->db_arr = engine_.now();
           Server& db = topology_.server(TierKind::kDb, t->db_i);
           [[maybe_unused]] const bool admitted =
               db.admit([this, t] { on_db_thread_write(t); });
           assert(admitted);
         });
  });
}

void TxnDriver::on_db_thread_write(const TxnPtr& t) {
  Server& db = topology_.server(TierKind::kDb, t->db_i);
  db.add_disk_micros(t->cls->db_write_disk_us);
  db.compute(jitter(t->cls->db_write_demand_us),
             [this, t] { db_write_respond(t); });
}

void TxnDriver::db_write_respond(const TxnPtr& t) {
  Server& db = topology_.server(TierKind::kDb, t->db_i);
  db.release_thread();
  send(topology_.node_id(TierKind::kDb, t->db_i),
       topology_.node_id(TierKind::kMw, t->mw_i), t->db_conn,
       MessageKind::kResponse, t->class_id, config_.sizes.db_mw_resp, t->id,
       t->db_visit, t->mw_visit, [this, t] {
         sink_.record_visit(trace::RequestRecord{
             .server = topology_.server_index(TierKind::kDb, t->db_i),
             .class_id = t->class_id,
             .arrival = t->db_arr,
             .departure = engine_.now(),
             .txn = t->id,
         });
         topology_.inbound_pool(TierKind::kDb, t->db_i).release(t->db_token);
         t->db_token = -1;
         ++t->replica_i;
         write_next_replica(t);
       });
}

void TxnDriver::mw_write_respond(const TxnPtr& t) {
  Server& mw = topology_.server(TierKind::kMw, t->mw_i);
  mw.release_thread();
  send(topology_.node_id(TierKind::kMw, t->mw_i),
       topology_.node_id(TierKind::kApp, t->app_i), t->mw_conn,
       MessageKind::kResponse, t->class_id, config_.sizes.mw_app_resp, t->id,
       t->mw_visit, t->app_visit, [this, t] {
         sink_.record_visit(trace::RequestRecord{
             .server = topology_.server_index(TierKind::kMw, t->mw_i),
             .class_id = t->class_id,
             .arrival = t->mw_arr,
             .departure = engine_.now(),
             .txn = t->id,
         });
         topology_.inbound_pool(TierKind::kMw, t->mw_i).release(t->mw_token);
         t->mw_token = -1;
         ++t->write_i;
         app_segment(t);
       });
}

void TxnDriver::app_respond(const TxnPtr& t) {
  Server& app = topology_.server(TierKind::kApp, t->app_i);
  app.release_thread();
  send(topology_.node_id(TierKind::kApp, t->app_i),
       topology_.node_id(TierKind::kWeb, t->web_i), t->app_conn,
       MessageKind::kResponse, t->class_id, config_.sizes.app_web_resp, t->id,
       t->app_visit, t->web_visit, [this, t] {
         sink_.record_visit(trace::RequestRecord{
             .server = topology_.server_index(TierKind::kApp, t->app_i),
             .class_id = t->class_id,
             .arrival = t->app_arr,
             .departure = engine_.now(),
             .txn = t->id,
         });
         topology_.inbound_pool(TierKind::kApp, t->app_i).release(t->app_token);
         t->app_token = -1;
         Server& web = topology_.server(TierKind::kWeb, t->web_i);
         web.compute(jitter(t->cls->web_demand_us * 0.5),
                     [this, t] { web_respond(t); });
       });
}

void TxnDriver::web_respond(const TxnPtr& t) {
  Server& web = topology_.server(TierKind::kWeb, t->web_i);
  web.release_thread();
  send(topology_.node_id(TierKind::kWeb, t->web_i), 0, t->client_conn,
       MessageKind::kResponse, t->class_id, config_.sizes.web_client_resp,
       t->id, t->web_visit, 0, [this, t] {
         sink_.record_visit(trace::RequestRecord{
             .server = topology_.server_index(TierKind::kWeb, t->web_i),
             .class_id = t->class_id,
             .arrival = t->web_arr,
             .departure = engine_.now(),
             .txn = t->id,
         });
         ++completed_;
         if (t->done) {
           t->done(PageResult{
               .started = t->first_attempt,
               .response_time = engine_.now() - t->first_attempt,
               .class_id = t->class_id,
               .retransmissions = t->retransmissions,
           });
         }
       });
}

}  // namespace tbd::ntier
