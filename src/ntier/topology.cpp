#include "ntier/topology.h"

#include <cassert>

namespace tbd::ntier {

namespace {
// Connection ids: 0..kClientConnRegion-1 are ephemeral client connections;
// pool connections are allocated in blocks above it.
constexpr std::uint32_t kClientConnRegion = 1u << 16;
constexpr std::uint32_t kPoolConnBlock = 1u << 12;
}  // namespace

TopologyConfig paper_topology() {
  TopologyConfig cfg;

  // Web tier: 1 "L" VM (2 cores). Thread pool sized like a stock Apache
  // MaxClients; with the bounded accept backlog this is the concurrency
  // limit whose overflow produces TCP retransmissions (footnote 1).
  cfg.web.count = 1;
  cfg.web.server.name = "web";
  cfg.web.server.cores = 2;
  cfg.web.server.worker_threads = 250;
  cfg.web.server.accept_backlog = 150;

  // App tier: 2 "S" VMs (1 core each). Apache keeps more backend
  // connections than Tomcat has worker threads, so during a Tomcat freeze
  // the queue (and hence the load visible to passive tracing) builds at
  // Tomcat rather than stalling upstream.
  cfg.app.count = 2;
  cfg.app.server.name = "app";
  cfg.app.server.cores = 1;
  cfg.app.server.worker_threads = 150;
  cfg.app.inbound_connections = 300;

  // Clustering middleware: 1 "L" VM.
  cfg.mw.count = 1;
  cfg.mw.server.name = "mw";
  cfg.mw.server.cores = 2;
  cfg.mw.server.worker_threads = 300;
  cfg.mw.inbound_connections = 300;

  // DB tier: 2 "S" VMs.
  cfg.db.count = 2;
  cfg.db.server.name = "db";
  cfg.db.server.cores = 1;
  cfg.db.server.worker_threads = 200;
  cfg.db.inbound_connections = 200;

  return cfg;
}

Topology::Topology(sim::Engine& engine, TopologyConfig config)
    : config_{std::move(config)} {
  const TierConfig* tier_cfgs[4] = {&config_.web, &config_.app, &config_.mw,
                                    &config_.db};
  std::uint32_t next_conn_base = kClientConnRegion;
  for (int t = 0; t < 4; ++t) {
    const TierConfig& tc = *tier_cfgs[t];
    assert(tc.count >= 1);
    tiers_[t].first_server = static_cast<int>(servers_.size());
    tiers_[t].count = tc.count;
    for (int i = 0; i < tc.count; ++i) {
      Server::Config sc = tc.server;
      if (tc.count > 1) sc.name += std::to_string(i + 1);
      servers_.push_back(std::make_unique<Server>(engine, sc));
      if (t == 0) {
        // Web tier: clients connect over ephemeral connections, no pool.
        pools_.push_back(nullptr);
        pool_conn_base_.push_back(0);
      } else {
        pools_.push_back(std::make_unique<sim::FifoSemaphore>(
            engine, servers_.back()->name() + ".conns", tc.inbound_connections));
        pool_conn_base_.push_back(next_conn_base);
        next_conn_base += kPoolConnBlock;
        assert(tc.inbound_connections <= static_cast<int>(kPoolConnBlock));
      }
    }
  }
}

int Topology::tier_size(TierKind t) const {
  return tiers_[static_cast<int>(t)].count;
}

Server& Topology::server(TierKind t, int index) {
  const TierState& ts = tiers_[static_cast<int>(t)];
  assert(index >= 0 && index < ts.count);
  return *servers_[static_cast<std::size_t>(ts.first_server + index)];
}

const Server& Topology::server(TierKind t, int index) const {
  const TierState& ts = tiers_[static_cast<int>(t)];
  assert(index >= 0 && index < ts.count);
  return *servers_[static_cast<std::size_t>(ts.first_server + index)];
}

trace::ServerIndex Topology::server_index(TierKind t, int index) const {
  const TierState& ts = tiers_[static_cast<int>(t)];
  assert(index >= 0 && index < ts.count);
  return static_cast<trace::ServerIndex>(ts.first_server + index);
}

trace::NodeId Topology::node_id(TierKind t, int index) const {
  return server_index(t, index) + 1;
}

sim::FifoSemaphore& Topology::inbound_pool(TierKind t, int index) {
  const trace::ServerIndex s = server_index(t, index);
  assert(pools_[s] != nullptr && "web tier has no inbound pool");
  return *pools_[s];
}

std::uint32_t Topology::pool_conn_id(TierKind t, int index, int token) const {
  const trace::ServerIndex s = server_index(t, index);
  return pool_conn_base_[s] + static_cast<std::uint32_t>(token);
}

int Topology::pick_round_robin(TierKind t) {
  TierState& ts = tiers_[static_cast<int>(t)];
  const int pick = ts.rr_next;
  ts.rr_next = (ts.rr_next + 1) % ts.count;
  return pick;
}

int Topology::pick_least_connections(TierKind t) {
  const TierState& ts = tiers_[static_cast<int>(t)];
  int best = 0;
  int best_busy = -1;
  for (int i = 0; i < ts.count; ++i) {
    const auto s = static_cast<std::size_t>(ts.first_server + i);
    assert(pools_[s] != nullptr);
    const int busy = pools_[s]->in_use() + pools_[s]->waiting();
    if (best_busy < 0 || busy < best_busy) {
      best_busy = busy;
      best = i;
    }
  }
  return best;
}

}  // namespace tbd::ntier
