// Request classes: the interaction types of the n-tier workload.
//
// RUBBoS's browse-only mode mixes 24 interaction types; each type exercises
// the tiers differently (number of queries, per-tier CPU demand). The mix
// matters to the paper's method because fine-grained throughput must be
// normalized across classes with different service demands (Section III-B).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tbd::ntier {

struct RequestClass {
  std::string name;
  /// Relative frequency in the workload mix.
  double weight = 1.0;
  /// Web tier (Apache) CPU per page, reference-clock microseconds.
  double web_demand_us = 600.0;
  /// Application tier (Tomcat) CPU per page, split across the segments
  /// between successive queries.
  double app_demand_us = 1400.0;
  /// Number of sequential read queries issued by the app tier; each is
  /// load-balanced to ONE database replica.
  int db_queries = 3;
  /// Number of sequential write queries; the clustering middleware
  /// broadcasts each write to EVERY database replica (C-JDBC full
  /// replication), which is what makes writes expensive to scale out.
  int db_write_queries = 0;
  /// Clustering-middleware (C-JDBC) CPU per query.
  double mw_demand_us = 180.0;
  /// Database (MySQL) CPU per read query at the highest P-state.
  double db_demand_us = 280.0;
  /// Database CPU per write query (per replica).
  double db_write_demand_us = 450.0;
  /// Synchronous disk time per write query per replica (log flush).
  double db_write_disk_us = 120.0;
  /// Heap allocated in the app tier per page (drives JVM GC pressure).
  double app_alloc_bytes = 400.0 * 1024;
};

/// Wire sizes of the inter-tier messages (bytes), used for the Table I
/// network-rate counters. Defaults calibrated to reproduce the paper's
/// per-tier receive/send MB/s at WL 8,000.
struct MessageSizes {
  std::uint32_t client_web_req = 500;
  std::uint32_t web_client_resp = 20'800;
  std::uint32_t web_app_req = 400;
  std::uint32_t app_web_resp = 11'900;
  std::uint32_t app_mw_req = 300;
  std::uint32_t mw_app_resp = 2'000;
  std::uint32_t mw_db_req = 250;
  std::uint32_t db_mw_resp = 1'550;
};

using RequestClassList = std::vector<RequestClass>;

}  // namespace tbd::ntier
