// Component-server model: a multi-core machine running a thread-per-request
// server (Apache / Tomcat / C-JDBC / MySQL all instantiate this with
// different sizing, mirroring the paper's "L" and "S" VM types).
//
// CPU is modelled as egalitarian processor sharing across the jobs currently
// in service: with n runnable jobs on c cores each job progresses at
// clock_ratio * min(c, n) / n reference-microseconds of work per wall
// microsecond. This uses the classic virtual-time formulation: a global
// accumulator V advances at the common per-job rate, a job entering service
// at V0 with demand d completes when V reaches V0 + d, so the completion
// order within the service set is a static min-heap key and every state
// change (arrival, completion, clock change, pause) is O(log n).
//
// Three hooks expose the transient-bottleneck factors from the paper:
//  * pause()/resume()        — stop-the-world JVM GC (Section IV-A)
//  * set_clock_ratio()       — SpeedStep P-state transitions (Section IV-C)
//  * set_background_cores()  — concurrent GC worker overhead (JDK 1.6)
//
// Worker threads bound concurrency: a request must be admitted to a thread
// before it can compute, and it holds the thread across downstream calls
// (synchronous RPC, Figure 4). When the thread pool and the accept backlog
// are both full, admission fails — the "thread limit in the web tier" whose
// TCP retransmissions produce >3s response times (footnote 1).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "sim/engine.h"
#include "sim/semaphore.h"
#include "util/time.h"

namespace tbd::ntier {

class Server {
 public:
  struct Config {
    std::string name = "server";
    int cores = 1;
    /// Worker thread limit (requests processed concurrently, including those
    /// blocked on downstream calls).
    int worker_threads = 150;
    /// Admission queue bound beyond the thread pool; -1 = unbounded.
    int accept_backlog = -1;
    /// CPU cores counted busy during a stop-the-world pause (the collector
    /// itself burns CPU; a serial collector saturates one core).
    double pause_busy_cores = 1.0;
  };

  Server(sim::Engine& engine, Config config);
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // ---- request lifecycle -------------------------------------------------

  /// Admits a request to a worker thread; `on_thread` runs (via an engine
  /// event at the current time) once a thread is available. Returns false —
  /// dropping the callback — when both the pool and the backlog are full.
  bool admit(std::function<void()> on_thread);

  /// Returns the calling request's worker thread to the pool.
  void release_thread();

  /// Executes `demand_us` microseconds of reference-clock CPU work for the
  /// calling request, then invokes `on_done`. A request may compute several
  /// segments (between downstream calls) while holding its thread.
  void compute(double demand_us, std::function<void()> on_done);

  /// Accounts synchronous disk time (utilization bookkeeping only; browse
  /// workloads are CPU-bound so disk never gates progress, Table I).
  void add_disk_micros(double us) { disk_busy_us_ += us; }

  // ---- transient-event hooks ----------------------------------------------

  /// Stop-the-world: all jobs freeze; arrivals still queue (and are counted
  /// in load by passive tracing, which is the point).
  void pause();
  void resume();
  [[nodiscard]] bool paused() const { return paused_; }

  /// Clock-frequency ratio relative to the highest P-state (P0 = 1.0).
  void set_clock_ratio(double ratio);
  [[nodiscard]] double clock_ratio() const { return clock_ratio_; }

  /// Cores consumed by background work (concurrent GC threads); reduces the
  /// cores available to requests.
  void set_background_cores(double cores);

  // ---- monitoring ----------------------------------------------------------

  [[nodiscard]] const std::string& name() const { return config_.name; }
  [[nodiscard]] int cores() const { return config_.cores; }
  /// Jobs currently consuming CPU (excludes threads blocked downstream).
  [[nodiscard]] int running_jobs() const { return static_cast<int>(jobs_.size()); }
  [[nodiscard]] int threads_in_use() const { return threads_.in_use(); }
  [[nodiscard]] int admission_queue() const { return threads_.waiting(); }
  [[nodiscard]] std::uint64_t jobs_completed() const { return jobs_completed_; }
  [[nodiscard]] std::uint64_t admissions_rejected() const { return threads_.rejected(); }

  /// Cumulative busy core-microseconds (the sysstat/esxtop observable).
  /// Includes GC pause burn and background cores.
  [[nodiscard]] double busy_core_micros();
  [[nodiscard]] double disk_busy_micros() const { return disk_busy_us_; }

 private:
  struct Job {
    double finish_v;
    std::uint64_t seq;  // FIFO tie-break => deterministic completion order
    std::function<void()> on_done;
  };
  struct LaterFinish {
    bool operator()(const Job& a, const Job& b) const {
      if (a.finish_v != b.finish_v) return a.finish_v > b.finish_v;
      return a.seq > b.seq;
    }
  };

  /// Cores available to request processing right now.
  [[nodiscard]] double effective_cores() const;
  /// Work rate per running job (reference-us per wall-us); jobs_ non-empty.
  [[nodiscard]] double per_job_rate() const;
  /// Brings V_ and the busy-time accumulator up to the engine clock.
  void advance();
  /// (Re)schedules the completion event for the earliest-finishing job.
  void reschedule_completion();
  void on_completion_event();

  sim::Engine& engine_;
  Config config_;
  sim::FifoSemaphore threads_;

  // Processor-sharing state.
  double v_ = 0.0;  // cumulative per-job virtual service (reference us)
  TimePoint last_advance_;
  double clock_ratio_ = 1.0;
  double background_cores_ = 0.0;
  bool paused_ = false;
  std::priority_queue<Job, std::vector<Job>, LaterFinish> jobs_;
  std::uint64_t next_job_seq_ = 1;
  sim::EventHandle completion_event_;

  // Tokens granted by the thread pool, returned LIFO by release_thread().
  std::vector<int> held_tokens_;

  // Monitoring accumulators.
  double busy_core_us_ = 0.0;
  double disk_busy_us_ = 0.0;
  std::uint64_t jobs_completed_ = 0;
};

}  // namespace tbd::ntier
