// Transaction driver: executes client transactions against the topology.
//
// One transaction is an entire web page (Figure 4): the client request hits
// the web tier; the web tier calls the app tier; the app tier issues a
// per-class number of sequential queries, each routed through the clustering
// middleware to a database replica; responses propagate back synchronously.
// A worker thread is held at each tier for the duration of that tier's
// involvement, including time blocked on downstream calls.
//
// Every message placed on the wire is offered to the TraceSink (the passive
// tracing tap), and each server visit produces a RequestRecord from the
// captured request-arrival and response timestamps — exactly the observables
// the paper's analysis consumes.
//
// Overload behaviour reproduces footnote 1: when the web tier's thread pool
// and accept backlog are both full, the client's connection attempt is
// dropped and retried after a TCP retransmission timeout (3 s), producing
// the >3 s mode of the response-time distribution.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "ntier/request_class.h"
#include "ntier/topology.h"
#include "sim/engine.h"
#include "trace/sink.h"
#include "util/rng.h"

namespace tbd::ntier {

class TxnDriver {
 public:
  struct Config {
    MessageSizes sizes;
    /// TCP retransmission timeout applied when the web tier drops a
    /// connection attempt.
    Duration retrans_delay = Duration::seconds(3);
    /// Coefficient of variation of per-segment CPU demand (gamma jitter).
    double demand_cv = 1.0 / 3.0;
    /// Synchronous disk accounting (Table I bookkeeping only).
    double web_disk_us_per_page = 1.2;
    double app_disk_us_per_page = 0.3;
    double mw_disk_us_per_query = 0.35;
    double db_disk_us_per_query = 0.4;
  };

  /// Outcome delivered to the workload generator when a page completes.
  struct PageResult {
    TimePoint started;        // first connection attempt
    Duration response_time;   // end-to-end, including retransmissions
    std::uint32_t class_id = 0;
    int retransmissions = 0;
  };
  using CompletionFn = std::function<void(const PageResult&)>;

  TxnDriver(sim::Engine& engine, Topology& topology, RequestClassList classes,
            trace::TraceSink& sink, Rng rng, Config config);

  /// Launches one transaction of the given class.
  void start(trace::ClassId class_id, CompletionFn on_complete);

  [[nodiscard]] const RequestClassList& classes() const { return classes_; }

  /// Installs a heap-allocation observer on one app-tier server; called with
  /// the bytes allocated after each app-tier compute segment (feeds GcModel).
  void set_app_alloc_hook(int app_index, std::function<void(double)> hook);

  [[nodiscard]] std::uint64_t transactions_started() const { return started_; }
  [[nodiscard]] std::uint64_t transactions_completed() const { return completed_; }
  [[nodiscard]] std::uint64_t retransmissions() const { return retransmissions_; }

 private:
  struct Txn;
  using TxnPtr = std::shared_ptr<Txn>;

  /// Samples a demand with the configured CV around `mean_us`.
  double jitter(double mean_us);
  std::uint64_t new_visit() { return next_visit_++; }

  void attempt_connect(const TxnPtr& t);
  void on_web_thread(const TxnPtr& t);
  void call_app(const TxnPtr& t);
  void on_app_thread(const TxnPtr& t);
  void app_segment(const TxnPtr& t);
  void after_app_segment(const TxnPtr& t);
  void issue_query(const TxnPtr& t);
  void on_mw_thread(const TxnPtr& t);
  void call_db(const TxnPtr& t);
  void on_db_thread(const TxnPtr& t);
  void db_respond(const TxnPtr& t);
  void mw_respond(const TxnPtr& t);
  // Write path: the middleware broadcasts each write to every DB replica
  // sequentially (C-JDBC full replication).
  void issue_write_query(const TxnPtr& t);
  void on_mw_thread_write(const TxnPtr& t);
  void write_next_replica(const TxnPtr& t);
  void on_db_thread_write(const TxnPtr& t);
  void db_write_respond(const TxnPtr& t);
  void mw_write_respond(const TxnPtr& t);
  void app_respond(const TxnPtr& t);
  void web_respond(const TxnPtr& t);

  /// Captures a message (timestamped at delivery, i.e. at the tap) and then
  /// runs the continuation.
  void send(trace::NodeId src, trace::NodeId dst, std::uint32_t conn,
            trace::MessageKind kind, trace::ClassId cls, std::uint32_t bytes,
            trace::TxnId txn, std::uint64_t visit, std::uint64_t parent,
            std::function<void()> at_delivery);

  sim::Engine& engine_;
  Topology& topology_;
  RequestClassList classes_;
  trace::TraceSink& sink_;
  Rng rng_;
  Config config_;
  double gamma_shape_;

  std::vector<std::function<void(double)>> app_alloc_hooks_;
  trace::TxnId next_txn_ = 1;
  std::uint64_t next_visit_ = 1;
  std::uint32_t next_client_conn_ = 0;
  std::uint64_t started_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t retransmissions_ = 0;
};

}  // namespace tbd::ntier
