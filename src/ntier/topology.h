// Topology: the #W/#A/#C/#D arrangement of component servers.
//
// Mirrors the paper's four-digit notation (Figure 1): e.g. 1L/2S/1L/2S is
// one large web server, two small application servers, one large clustering
// middleware, two small database servers. "L" and "S" map to core counts.
// The topology also owns the inter-tier connection pools, whose token ids
// become the connection ids visible to passive tracing.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ntier/server.h"
#include "sim/engine.h"
#include "sim/semaphore.h"
#include "trace/records.h"

namespace tbd::ntier {

enum class TierKind : std::uint8_t { kWeb = 0, kApp = 1, kMw = 2, kDb = 3 };

[[nodiscard]] constexpr const char* tier_name(TierKind t) {
  switch (t) {
    case TierKind::kWeb: return "web";
    case TierKind::kApp: return "app";
    case TierKind::kMw: return "mw";
    case TierKind::kDb: return "db";
  }
  return "?";
}

struct TierConfig {
  int count = 1;
  Server::Config server;
  /// Capacity of the inbound connection pool of EACH server in this tier
  /// (connections checked out by the upstream tier). Ignored for the web
  /// tier, which clients reach over ephemeral connections.
  int inbound_connections = 150;
};

struct TopologyConfig {
  TierConfig web;
  TierConfig app;
  TierConfig mw;
  TierConfig db;
  /// One-way wire latency per message.
  Duration net_latency = Duration::micros(150);
  /// Balance DB queries to the least-loaded replica (C-JDBC style) instead
  /// of round-robin.
  bool db_least_connections = true;
};

/// The paper's experimental deployment: 1L/2S/1L/2S with L = 2 cores and
/// S = 1 core, calibrated so that per-tier utilization at WL 8,000 matches
/// Table I (web 34.6%, app 79.9%, mw 26.7%, db 78.1%-at-P8).
[[nodiscard]] TopologyConfig paper_topology();

class Topology {
 public:
  Topology(sim::Engine& engine, TopologyConfig config);
  Topology(const Topology&) = delete;
  Topology& operator=(const Topology&) = delete;

  [[nodiscard]] const TopologyConfig& config() const { return config_; }

  [[nodiscard]] int tier_size(TierKind t) const;
  [[nodiscard]] Server& server(TierKind t, int index);
  [[nodiscard]] const Server& server(TierKind t, int index) const;

  /// Dense 0-based index across all servers (web first, then app, mw, db) —
  /// the index used by trace::TraceSink request logs.
  [[nodiscard]] trace::ServerIndex server_index(TierKind t, int index) const;
  /// Network node id (clients are node 0; servers are server_index + 1).
  [[nodiscard]] trace::NodeId node_id(TierKind t, int index) const;
  [[nodiscard]] std::uint32_t total_servers() const {
    return static_cast<std::uint32_t>(servers_.size());
  }
  [[nodiscard]] Server& server_by_index(trace::ServerIndex s) { return *servers_[s]; }
  [[nodiscard]] const std::string& server_name(trace::ServerIndex s) const {
    return servers_[s]->name();
  }

  /// Inbound connection pool of a (non-web) server.
  [[nodiscard]] sim::FifoSemaphore& inbound_pool(TierKind t, int index);
  /// Globally unique connection id for a token of that pool.
  [[nodiscard]] std::uint32_t pool_conn_id(TierKind t, int index, int token) const;

  /// Round-robin pick of a server index within a tier.
  [[nodiscard]] int pick_round_robin(TierKind t);
  /// Server in the tier whose inbound pool has the most free connections
  /// (ties: lowest index).
  [[nodiscard]] int pick_least_connections(TierKind t);

 private:
  struct TierState {
    int first_server = 0;  // dense index of the tier's first server
    int count = 0;
    int rr_next = 0;
  };

  TopologyConfig config_;
  std::vector<std::unique_ptr<Server>> servers_;
  std::vector<std::unique_ptr<sim::FifoSemaphore>> pools_;  // by dense index
  std::vector<std::uint32_t> pool_conn_base_;               // by dense index
  TierState tiers_[4];
};

}  // namespace tbd::ntier
