#include "ntier/server.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

namespace tbd::ntier {

namespace {
// Slack when popping finished jobs: completion times are rounded up to whole
// microseconds, so V_ can overshoot finish_v by up to one event's worth of
// rate; anything within this epsilon of done is done.
constexpr double kFinishEps = 1e-6;
}  // namespace

Server::Server(sim::Engine& engine, Config config)
    : engine_{engine},
      config_{std::move(config)},
      threads_{engine, config_.name + ".threads", config_.worker_threads,
               config_.accept_backlog},
      last_advance_{engine.now()} {
  assert(config_.cores >= 1);
  assert(config_.worker_threads >= 1);
}

bool Server::admit(std::function<void()> on_thread) {
  // Threads are fungible; stash the granted token so release_thread() can
  // return a valid id without threading it through every caller.
  return threads_.acquire([this, cb = std::move(on_thread)](int token) {
    held_tokens_.push_back(token);
    cb();
  });
}

void Server::release_thread() {
  assert(!held_tokens_.empty());
  const int token = held_tokens_.back();
  held_tokens_.pop_back();
  threads_.release(token);
}

double Server::effective_cores() const {
  return std::max(0.05, static_cast<double>(config_.cores) - background_cores_);
}

double Server::per_job_rate() const {
  const auto n = static_cast<double>(jobs_.size());
  assert(n > 0.0);
  return clock_ratio_ * std::min(effective_cores(), n) / n;
}

void Server::advance() {
  const TimePoint now = engine_.now();
  const double dt = static_cast<double>((now - last_advance_).micros());
  if (dt <= 0.0) return;
  last_advance_ = now;

  const auto n = static_cast<double>(jobs_.size());
  if (paused_) {
    busy_core_us_ +=
        dt * std::min(static_cast<double>(config_.cores), config_.pause_busy_cores);
    return;
  }
  double busy_cores = std::min(static_cast<double>(config_.cores), background_cores_);
  if (n > 0.0) {
    v_ += dt * per_job_rate();
    busy_cores = std::min(static_cast<double>(config_.cores),
                          busy_cores + std::min(effective_cores(), n));
  }
  busy_core_us_ += dt * busy_cores;
}

void Server::reschedule_completion() {
  engine_.cancel(completion_event_);
  completion_event_.invalidate();
  if (paused_ || jobs_.empty()) return;
  const double remaining = std::max(0.0, jobs_.top().finish_v - v_);
  // Round up to a whole microsecond so that when the event fires, advance()
  // has pushed V_ past finish_v and the job really pops.
  const auto dt = static_cast<std::int64_t>(std::ceil(remaining / per_job_rate()));
  completion_event_ = engine_.schedule_after(Duration::micros(dt),
                                             [this] { on_completion_event(); });
}

void Server::on_completion_event() {
  completion_event_.invalidate();
  advance();
  // Collect everything that has finished; callbacks run after the server's
  // state (heap + next completion) is consistent, because a callback may
  // re-enter compute() immediately.
  std::vector<std::function<void()>> done;
  while (!jobs_.empty() && jobs_.top().finish_v <= v_ + kFinishEps) {
    done.push_back(std::move(const_cast<Job&>(jobs_.top()).on_done));
    jobs_.pop();
    ++jobs_completed_;
  }
  reschedule_completion();
  for (auto& cb : done) cb();
}

void Server::compute(double demand_us, std::function<void()> on_done) {
  assert(demand_us >= 0.0);
  advance();
  jobs_.push(Job{v_ + demand_us, next_job_seq_++, std::move(on_done)});
  reschedule_completion();
}

void Server::pause() {
  if (paused_) return;
  advance();
  paused_ = true;
  reschedule_completion();  // cancels: nothing completes while frozen
}

void Server::resume() {
  if (!paused_) return;
  advance();
  paused_ = false;
  reschedule_completion();
}

void Server::set_clock_ratio(double ratio) {
  assert(ratio > 0.0);
  if (ratio == clock_ratio_) return;
  advance();
  clock_ratio_ = ratio;
  reschedule_completion();
}

void Server::set_background_cores(double cores) {
  assert(cores >= 0.0);
  if (cores == background_cores_) return;
  advance();
  background_cores_ = cores;
  reschedule_completion();
}

double Server::busy_core_micros() {
  advance();
  return busy_core_us_;
}

}  // namespace tbd::ntier
