// Coarse-grained resource monitoring: the sysstat / esxtop substitute.
//
// Samples every server's cumulative busy-core time on a fixed period
// (1 s for sysstat, 2 s for esxtop in the paper) and stores per-interval
// utilization. This is the monitoring the paper argues is insufficient:
// Figure 3 and Table I come from it, and the baseline detector consumes it.
#pragma once

#include <cstdint>
#include <vector>

#include "ntier/topology.h"
#include "sim/engine.h"
#include "util/time.h"

namespace tbd::metrics {

class UtilizationSampler {
 public:
  /// Starts sampling all servers of `topology` at `period`, first sample at
  /// now + period.
  UtilizationSampler(sim::Engine& engine, ntier::Topology& topology,
                     Duration period);
  UtilizationSampler(const UtilizationSampler&) = delete;
  UtilizationSampler& operator=(const UtilizationSampler&) = delete;

  [[nodiscard]] Duration period() const { return period_; }

  /// Per-interval CPU utilization (0..1) of one server; sample i covers
  /// [i*period, (i+1)*period) from construction time.
  [[nodiscard]] const std::vector<double>& series(trace::ServerIndex s) const {
    return series_[s];
  }

  /// Mean utilization of one server over the samples FULLY contained in
  /// [t0, t1). Partially covered samples are excluded; a window that
  /// contains no complete sample (empty, t0 == t1, t0 > t1, or a range past
  /// the last sample) returns 0.0.
  [[nodiscard]] double mean_util(trace::ServerIndex s, TimePoint t0,
                                 TimePoint t1) const;

  /// Sampling ticks fired so far (each tick appends one sample per server).
  [[nodiscard]] std::uint64_t samples_taken() const { return ticks_; }

 private:
  void on_tick();

  sim::Engine& engine_;
  ntier::Topology& topology_;
  Duration period_;
  TimePoint start_;
  std::vector<std::vector<double>> series_;
  std::vector<double> last_busy_;
  std::uint64_t ticks_ = 0;
  sim::PeriodicTask ticker_;
};

}  // namespace tbd::metrics
