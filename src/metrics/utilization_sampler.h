// Coarse-grained resource monitoring: the sysstat / esxtop substitute.
//
// Samples every server's cumulative busy-core time on a fixed period
// (1 s for sysstat, 2 s for esxtop in the paper) and stores per-interval
// utilization. This is the monitoring the paper argues is insufficient:
// Figure 3 and Table I come from it, and the baseline detector consumes it.
#pragma once

#include <vector>

#include "ntier/topology.h"
#include "sim/engine.h"
#include "util/time.h"

namespace tbd::metrics {

class UtilizationSampler {
 public:
  /// Starts sampling all servers of `topology` at `period`, first sample at
  /// now + period.
  UtilizationSampler(sim::Engine& engine, ntier::Topology& topology,
                     Duration period);
  UtilizationSampler(const UtilizationSampler&) = delete;
  UtilizationSampler& operator=(const UtilizationSampler&) = delete;

  [[nodiscard]] Duration period() const { return period_; }

  /// Per-interval CPU utilization (0..1) of one server; sample i covers
  /// [i*period, (i+1)*period) from construction time.
  [[nodiscard]] const std::vector<double>& series(trace::ServerIndex s) const {
    return series_[s];
  }

  /// Mean utilization of one server over samples in [t0, t1).
  [[nodiscard]] double mean_util(trace::ServerIndex s, TimePoint t0,
                                 TimePoint t1) const;

 private:
  void on_tick();

  sim::Engine& engine_;
  ntier::Topology& topology_;
  Duration period_;
  TimePoint start_;
  std::vector<std::vector<double>> series_;
  std::vector<double> last_busy_;
  sim::PeriodicTask ticker_;
};

}  // namespace tbd::metrics
