#include "metrics/burstiness.h"

#include <algorithm>

#include "util/stats.h"

namespace tbd::metrics {

double index_of_dispersion(std::span<const TimePoint> arrivals, TimePoint t0,
                           TimePoint t1, Duration window) {
  if (!window.is_positive() || t1 <= t0) return 0.0;
  const auto n_windows =
      static_cast<std::size_t>((t1 - t0).micros() / window.micros());
  if (n_windows < 2) return 0.0;

  std::vector<double> counts(n_windows, 0.0);
  const TimePoint grid_end = t0 + window * static_cast<std::int64_t>(n_windows);
  for (const TimePoint a : arrivals) {
    if (a < t0 || a >= grid_end) continue;
    const auto idx =
        static_cast<std::size_t>((a - t0).micros() / window.micros());
    counts[idx] += 1.0;
  }
  RunningStats stats;
  for (double c : counts) stats.add(c);
  return stats.mean() > 0.0 ? stats.variance() / stats.mean() : 0.0;
}

std::vector<DispersionPoint> dispersion_curve(
    std::span<const TimePoint> arrivals, TimePoint t0, TimePoint t1,
    std::span<const Duration> windows) {
  std::vector<DispersionPoint> curve;
  curve.reserve(windows.size());
  for (const Duration w : windows) {
    curve.push_back({w, index_of_dispersion(arrivals, t0, t1, w)});
  }
  return curve;
}

double interarrival_scv(std::span<const TimePoint> arrivals, TimePoint t0,
                        TimePoint t1) {
  std::vector<std::int64_t> in_range;
  for (const TimePoint a : arrivals) {
    if (a >= t0 && a < t1) in_range.push_back(a.micros());
  }
  if (in_range.size() < 3) return 0.0;
  std::sort(in_range.begin(), in_range.end());
  RunningStats gaps;
  for (std::size_t i = 1; i < in_range.size(); ++i) {
    gaps.add(static_cast<double>(in_range[i] - in_range[i - 1]));
  }
  const double mean = gaps.mean();
  return mean > 0.0 ? gaps.variance() / (mean * mean) : 0.0;
}

}  // namespace tbd::metrics
