#include "metrics/utilization_sampler.h"

#include <cassert>

namespace tbd::metrics {

UtilizationSampler::UtilizationSampler(sim::Engine& engine,
                                       ntier::Topology& topology,
                                       Duration period)
    : engine_{engine},
      topology_{topology},
      period_{period},
      start_{engine.now()},
      series_(topology.total_servers()),
      last_busy_(topology.total_servers(), 0.0),
      ticker_{engine, engine.now() + period, period,
              [this](TimePoint) { on_tick(); }} {
  assert(period.is_positive());
  for (trace::ServerIndex s = 0; s < topology_.total_servers(); ++s) {
    last_busy_[s] = topology_.server_by_index(s).busy_core_micros();
  }
}

void UtilizationSampler::on_tick() {
  ++ticks_;
  const double interval_us = static_cast<double>(period_.micros());
  for (trace::ServerIndex s = 0; s < topology_.total_servers(); ++s) {
    auto& server = topology_.server_by_index(s);
    const double busy = server.busy_core_micros();
    series_[s].push_back((busy - last_busy_[s]) /
                         (interval_us * server.cores()));
    last_busy_[s] = busy;
  }
}

double UtilizationSampler::mean_util(trace::ServerIndex s, TimePoint t0,
                                     TimePoint t1) const {
  const auto& samples = series_[s];
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    // Sample i covers [start + i*period, start + (i+1)*period).
    const TimePoint cover_start = start_ + period_ * static_cast<std::int64_t>(i);
    const TimePoint cover_end = cover_start + period_;
    if (cover_start >= t0 && cover_end <= t1) {
      sum += samples[i];
      ++n;
    }
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

}  // namespace tbd::metrics
