#include "metrics/response_collector.h"

#include <algorithm>

#include "util/stats.h"

namespace tbd::metrics {

std::vector<PageSample> ResponseCollector::window(TimePoint t0, TimePoint t1) const {
  std::vector<PageSample> out;
  for (const auto& s : samples_) {
    if (s.completed >= t0 && s.completed < t1) out.push_back(s);
  }
  return out;
}

double ResponseCollector::mean_rt_seconds(TimePoint t0, TimePoint t1) const {
  RunningStats stats;
  for (const auto& s : samples_) {
    if (s.completed >= t0 && s.completed < t1) {
      stats.add(s.response_time.seconds_f());
    }
  }
  return stats.mean();
}

double ResponseCollector::throughput(TimePoint t0, TimePoint t1) const {
  if (t1 <= t0) return 0.0;
  std::size_t n = 0;
  for (const auto& s : samples_) {
    if (s.completed >= t0 && s.completed < t1) ++n;
  }
  return static_cast<double>(n) / (t1 - t0).seconds_f();
}

double ResponseCollector::fraction_above(TimePoint t0, TimePoint t1,
                                         Duration threshold) const {
  std::size_t total = 0;
  std::size_t above = 0;
  for (const auto& s : samples_) {
    if (s.completed >= t0 && s.completed < t1) {
      ++total;
      if (s.response_time > threshold) ++above;
    }
  }
  return total ? static_cast<double>(above) / static_cast<double>(total) : 0.0;
}

double ResponseCollector::rt_quantile(TimePoint t0, TimePoint t1, double q) const {
  std::vector<double> rts;
  for (const auto& s : samples_) {
    if (s.completed >= t0 && s.completed < t1) {
      rts.push_back(s.response_time.seconds_f());
    }
  }
  return quantile(rts, q);
}

std::vector<double> ResponseCollector::interval_mean_rt(TimePoint t0,
                                                        TimePoint t1,
                                                        Duration width) const {
  const auto n = static_cast<std::size_t>((t1 - t0).micros() / width.micros());
  std::vector<double> sums(n, 0.0);
  std::vector<std::size_t> counts(n, 0);
  for (const auto& s : samples_) {
    if (s.completed < t0 || s.completed >= t1) continue;
    const auto idx =
        static_cast<std::size_t>((s.completed - t0).micros() / width.micros());
    if (idx >= n) continue;
    sums[idx] += s.response_time.seconds_f();
    ++counts[idx];
  }
  for (std::size_t i = 0; i < n; ++i) {
    sums[i] = counts[i] ? sums[i] / static_cast<double>(counts[i]) : 0.0;
  }
  return sums;
}

std::vector<std::size_t> ResponseCollector::rt_histogram(
    TimePoint t0, TimePoint t1, std::span<const double> edges_seconds) const {
  std::vector<double> rts;
  for (const auto& s : samples_) {
    if (s.completed >= t0 && s.completed < t1) {
      rts.push_back(s.response_time.seconds_f());
    }
  }
  return bin_counts(rts, edges_seconds);
}

}  // namespace tbd::metrics
