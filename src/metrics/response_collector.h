// End-to-end response-time collection (the client-side observable).
//
// Stores one sample per completed page with its completion timestamp, which
// supports every client-side figure in the paper: mean response time per
// workload (Fig 2a), SLA-violation percentage (Fig 2b), the long-tail
// bi-modal distribution (Fig 2c), and 50 ms-averaged response-time timelines
// (Fig 10b, 11b/c).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/time.h"

namespace tbd::metrics {

struct PageSample {
  TimePoint completed;
  Duration response_time;
  std::uint32_t class_id = 0;
  int retransmissions = 0;
};

class ResponseCollector {
 public:
  void record(const PageSample& sample) { samples_.push_back(sample); }

  [[nodiscard]] const std::vector<PageSample>& samples() const { return samples_; }
  [[nodiscard]] std::size_t count() const { return samples_.size(); }

  /// Samples completing within [t0, t1).
  [[nodiscard]] std::vector<PageSample> window(TimePoint t0, TimePoint t1) const;

  /// Mean response time (seconds) of pages completing in [t0, t1).
  [[nodiscard]] double mean_rt_seconds(TimePoint t0, TimePoint t1) const;

  /// Completed pages per second over [t0, t1).
  [[nodiscard]] double throughput(TimePoint t0, TimePoint t1) const;

  /// Fraction of pages in [t0, t1) with response time above `threshold`.
  [[nodiscard]] double fraction_above(TimePoint t0, TimePoint t1,
                                      Duration threshold) const;

  /// Response-time quantile (seconds) over [t0, t1); q in [0,1].
  [[nodiscard]] double rt_quantile(TimePoint t0, TimePoint t1, double q) const;

  /// Mean response time (seconds) of pages completing in each `width`-long
  /// interval of [t0, t1); intervals with no completions report 0.
  [[nodiscard]] std::vector<double> interval_mean_rt(TimePoint t0, TimePoint t1,
                                                     Duration width) const;

  /// Histogram counts of response times (seconds) over explicit bin edges.
  [[nodiscard]] std::vector<std::size_t> rt_histogram(
      TimePoint t0, TimePoint t1, std::span<const double> edges_seconds) const;

 private:
  std::vector<PageSample> samples_;
};

}  // namespace tbd::metrics
