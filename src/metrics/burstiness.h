// Burstiness quantification: index of dispersion for counts (IDC).
//
// The paper grounds its workload premise in Mi et al.'s burstiness work
// (reference [14]): transient bottlenecks arise when transient events meet
// "normal bursty workloads". The standard burstiness yardstick there is the
// index of dispersion for counts,
//
//     I(t) = Var[N(t)] / E[N(t)],
//
// where N(t) counts arrivals in windows of length t: a Poisson process has
// I(t) = 1 at every scale; bursty traffic has I(t) >> 1 that grows with the
// window until the burst time-scale is covered. bench_burst_sensitivity uses
// this to show the micro-burst modulator produces the multi-scale dispersion
// signature of real traces rather than just inflating the rate.
#pragma once

#include <span>
#include <vector>

#include "util/time.h"

namespace tbd::metrics {

/// Index of dispersion of the point process `arrivals` (any order) over
/// windows of length `window` spanning [t0, t1). Returns 0 when fewer than
/// two full windows fit or no arrivals land in range.
[[nodiscard]] double index_of_dispersion(std::span<const TimePoint> arrivals,
                                         TimePoint t0, TimePoint t1,
                                         Duration window);

/// I(t) evaluated at several window lengths (the dispersion curve).
struct DispersionPoint {
  Duration window;
  double idc = 0.0;
};
[[nodiscard]] std::vector<DispersionPoint> dispersion_curve(
    std::span<const TimePoint> arrivals, TimePoint t0, TimePoint t1,
    std::span<const Duration> windows);

/// Squared coefficient of variation of the inter-arrival times in [t0, t1);
/// 1 for exponential gaps, > 1 for bursty processes.
[[nodiscard]] double interarrival_scv(std::span<const TimePoint> arrivals,
                                      TimePoint t0, TimePoint t1);

}  // namespace tbd::metrics
