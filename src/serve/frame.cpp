#include "serve/frame.h"

#include <cmath>
#include <cstring>

namespace tbd::serve {

namespace {

// Little-endian wire primitives. memcpy-based so they are well-defined on
// any alignment; the build targets little-endian hosts (as do the TBDR
// codecs), so the copies compile to plain loads/stores.
template <typename T>
void put(std::string& out, T v) {
  char bytes[sizeof(T)];
  std::memcpy(bytes, &v, sizeof(T));
  out.append(bytes, sizeof(T));
}

template <typename T>
T get(const char* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}

/// Cursor over a payload; all reads bounds-checked.
struct Reader {
  const char* p;
  std::size_t left;

  template <typename T>
  bool read(T& v) {
    if (left < sizeof(T)) return false;
    v = get<T>(p);
    p += sizeof(T);
    left -= sizeof(T);
    return true;
  }

  bool read_bytes(std::string& out, std::size_t n) {
    if (left < n) return false;
    out.assign(p, n);
    p += n;
    left -= n;
    return true;
  }
};

bool valid_name_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == '.' || c == ':' ||
         c == '-';
}

std::uint32_t max_payload_for(FrameType type) {
  switch (type) {
    case FrameType::kHello:
      return kMaxHelloPayload;
    case FrameType::kData:
      return kMaxDataPayload;
    default:
      return kMaxControlPayload;
  }
}

}  // namespace

void append_frame(std::string& out, const FrameHeader& header,
                  std::string_view payload) {
  put<std::uint16_t>(out, kFrameMagic);
  put<std::uint8_t>(out, static_cast<std::uint8_t>(header.type));
  put<std::uint8_t>(out, header.format);
  put<std::uint16_t>(out, header.stream);
  put<std::uint16_t>(out, 0);  // reserved
  put<std::uint32_t>(out, static_cast<std::uint32_t>(payload.size()));
  out.append(payload);
}

std::string encode_hello(std::uint16_t stream, const HelloConfig& config) {
  std::string payload;
  payload.reserve(96 + config.name.size() + 12 * config.service_us.size());
  put<std::uint32_t>(payload, kProtocolVersion);
  put<std::uint32_t>(payload, 0);  // flags, reserved
  put<std::int64_t>(payload, config.start_us);
  put<std::int64_t>(payload, config.width_us);
  put<std::int64_t>(payload, config.lag_us);
  put<std::int64_t>(payload, config.idle_seal_us);
  put<double>(payload, config.nstar);
  put<double>(payload, config.tpmax);
  put<double>(payload, config.work_unit_us);
  put<double>(payload, config.idle_load);
  put<double>(payload, config.poi_tput_frac);
  put<std::uint16_t>(payload, static_cast<std::uint16_t>(config.name.size()));
  payload.append(config.name);
  put<std::uint16_t>(payload,
                     static_cast<std::uint16_t>(config.service_us.size()));
  for (const auto& [class_id, service] : config.service_us) {
    put<std::uint32_t>(payload, class_id);
    put<double>(payload, service);
  }
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  append_frame(out, FrameHeader{FrameType::kHello, 0, stream, 0}, payload);
  return out;
}

std::string encode_raw_records(std::uint16_t stream,
                               std::span<const trace::RequestRecord> records) {
  std::string payload;
  payload.reserve(records.size() * kRawRecordBytes);
  for (const auto& r : records) {
    put<std::uint32_t>(payload, r.server);
    put<std::uint32_t>(payload, r.class_id);
    put<std::int64_t>(payload, r.arrival.micros());
    put<std::int64_t>(payload, r.departure.micros());
    put<std::uint64_t>(payload, r.txn);
  }
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  append_frame(out,
               FrameHeader{FrameType::kData,
                           static_cast<std::uint8_t>(DataFormat::kRawRecords),
                           stream, 0},
               payload);
  return out;
}

std::string encode_encoded_log(std::uint16_t stream, std::string_view bytes) {
  std::string out;
  out.reserve(kFrameHeaderBytes + bytes.size());
  append_frame(out,
               FrameHeader{FrameType::kData,
                           static_cast<std::uint8_t>(DataFormat::kEncodedLog),
                           stream, 0},
               bytes);
  return out;
}

std::string encode_heartbeat() {
  std::string out;
  append_frame(out, FrameHeader{FrameType::kHeartbeat, 0, 0, 0}, {});
  return out;
}

std::string encode_bye(std::uint16_t stream) {
  std::string out;
  append_frame(out, FrameHeader{FrameType::kBye, 0, stream, 0}, {});
  return out;
}

std::string encode_error(std::string_view message) {
  std::string out;
  if (message.size() > kMaxControlPayload) {
    message = message.substr(0, kMaxControlPayload);
  }
  append_frame(out, FrameHeader{FrameType::kError, 0, 0, 0}, message);
  return out;
}

std::string decode_hello(std::string_view payload, HelloConfig& out) {
  Reader r{payload.data(), payload.size()};
  std::uint32_t version = 0;
  std::uint32_t flags = 0;
  if (!r.read(version)) return "bad hello: truncated payload";
  if (version != kProtocolVersion) {
    return "bad hello: unsupported protocol version";
  }
  if (!r.read(flags)) return "bad hello: truncated payload";
  if (flags != 0) return "bad hello: unsupported flags";
  std::uint16_t name_len = 0;
  std::uint16_t class_count = 0;
  if (!r.read(out.start_us) || !r.read(out.width_us) || !r.read(out.lag_us) ||
      !r.read(out.idle_seal_us) || !r.read(out.nstar) || !r.read(out.tpmax) ||
      !r.read(out.work_unit_us) || !r.read(out.idle_load) ||
      !r.read(out.poi_tput_frac) || !r.read(name_len)) {
    return "bad hello: truncated payload";
  }
  if (name_len == 0 || name_len > kMaxStreamName) {
    return "bad hello: stream name length out of range";
  }
  if (!r.read_bytes(out.name, name_len)) return "bad hello: truncated name";
  for (char c : out.name) {
    if (!valid_name_char(c)) {
      return "bad hello: stream name has characters outside [A-Za-z0-9_.:-]";
    }
  }
  if (!r.read(class_count)) return "bad hello: truncated payload";
  if (class_count > kMaxServiceClasses) {
    return "bad hello: too many service classes";
  }
  out.service_us.clear();
  out.service_us.reserve(class_count);
  for (std::uint16_t i = 0; i < class_count; ++i) {
    std::uint32_t class_id = 0;
    double service = 0.0;
    if (!r.read(class_id) || !r.read(service)) {
      return "bad hello: truncated service table";
    }
    if (class_id >= (1u << 20)) return "bad hello: class id too large";
    if (!std::isfinite(service) || service < 0.0) {
      return "bad hello: service time not finite and non-negative";
    }
    out.service_us.emplace_back(class_id, service);
  }
  if (r.left != 0) return "bad hello: trailing bytes";

  if (out.width_us <= 0) return "bad hello: width_us must be positive";
  if (out.lag_us <= 0) return "bad hello: lag_us must be positive";
  if (out.idle_seal_us < 0) return "bad hello: negative idle_seal_us";
  if (!std::isfinite(out.nstar) || out.nstar <= 0.0) {
    return "bad hello: nstar must be positive";
  }
  if (!std::isfinite(out.tpmax) || out.tpmax < 0.0) {
    return "bad hello: tpmax must be non-negative";
  }
  if (!std::isfinite(out.work_unit_us) || out.work_unit_us < 0.0) {
    return "bad hello: work_unit_us must be non-negative";
  }
  if (!std::isfinite(out.idle_load) || out.idle_load < 0.0) {
    return "bad hello: idle_load must be non-negative";
  }
  if (!std::isfinite(out.poi_tput_frac) || out.poi_tput_frac < 0.0) {
    return "bad hello: poi_tput_frac must be non-negative";
  }
  if (out.work_unit_us == 0.0) {
    // The detector derives its work unit from the smallest positive class
    // service time; without either, it would divide by zero.
    bool any_positive = false;
    for (const auto& [class_id, service] : out.service_us) {
      any_positive |= service > 0.0;
    }
    if (!any_positive) {
      return "bad hello: need work_unit_us or a positive service time";
    }
  }
  return {};
}

std::string decode_raw_records(std::string_view payload,
                               trace::RequestColumns& out) {
  if (payload.size() % kRawRecordBytes != 0) {
    return "bad data: payload not a whole number of 32-byte records";
  }
  const std::size_t n = payload.size() / kRawRecordBytes;
  out.reserve(out.size() + n);
  const char* p = payload.data();
  for (std::size_t i = 0; i < n; ++i) {
    out.server.push_back(get<std::uint32_t>(p));
    out.class_id.push_back(get<std::uint32_t>(p + 4));
    out.arrival_us.push_back(get<std::int64_t>(p + 8));
    out.departure_us.push_back(get<std::int64_t>(p + 16));
    out.txn.push_back(get<std::uint64_t>(p + 24));
    p += kRawRecordBytes;
  }
  return {};
}

void FrameParser::feed(std::string_view bytes) {
  if (failed_) return;
  // Compact the consumed prefix before it can grow without bound.
  if (pos_ > 0 && (pos_ >= buffer_.size() || pos_ > (64u << 10))) {
    buffer_.erase(0, pos_);
    pos_ = 0;
  }
  buffer_.append(bytes);
}

FrameParser::Result FrameParser::next() {
  Result result;
  if (failed_) {
    result.status = Status::kError;
    result.error = "parser already failed";
    return result;
  }
  if (buffer_.size() - pos_ < kFrameHeaderBytes) return result;

  const char* h = buffer_.data() + pos_;
  const auto magic = get<std::uint16_t>(h);
  const auto type_byte = get<std::uint8_t>(h + 2);
  const auto format = get<std::uint8_t>(h + 3);
  const auto stream = get<std::uint16_t>(h + 4);
  const auto reserved = get<std::uint16_t>(h + 6);
  const auto length = get<std::uint32_t>(h + 8);

  auto fail = [&](std::string message) {
    failed_ = true;
    result.status = Status::kError;
    result.error = std::move(message);
    return result;
  };
  if (magic != kFrameMagic) return fail("bad frame magic");
  if (type_byte < static_cast<std::uint8_t>(FrameType::kHello) ||
      type_byte > static_cast<std::uint8_t>(FrameType::kError)) {
    return fail("bad frame type");
  }
  const auto type = static_cast<FrameType>(type_byte);
  if (reserved != 0) return fail("bad frame: nonzero reserved field");
  if (type == FrameType::kData) {
    if (format > static_cast<std::uint8_t>(DataFormat::kEncodedLog)) {
      return fail("bad data format");
    }
  } else if (format != 0) {
    return fail("bad frame: nonzero format on non-DATA frame");
  }
  if (length > max_payload_for(type)) {
    return fail("oversized frame length");
  }
  if (buffer_.size() - pos_ < kFrameHeaderBytes + length) return result;

  result.status = Status::kFrame;
  result.header = FrameHeader{type, format, stream, length};
  result.payload.assign(buffer_, pos_ + kFrameHeaderBytes, length);
  pos_ += kFrameHeaderBytes + length;
  if (pos_ == buffer_.size()) {
    buffer_.clear();
    pos_ = 0;
  }
  return result;
}

}  // namespace tbd::serve
