// tbd_serve wire protocol: length-prefixed frames over one TCP connection.
//
// A connection multiplexes any number of streams (monitored servers). The
// client opens each with a HELLO carrying the stream's identity and its
// frozen calibration — grid start, interval width, sealing lag, N*, TPmax,
// and the per-class service-time table — then ships completed requests in
// DATA frames, in departure order per stream. The daemon never calibrates:
// calibration is the sender's job (tbd_send runs the same batch pass as
// tbd_watch), which keeps the server stateless about history and makes a
// replay bit-reproducible.
//
// Frame layout (all integers little-endian):
//
//   header (12 bytes):
//     u16 magic     0x4654 ("TF" on the wire)
//     u8  type      1 HELLO, 2 DATA, 3 HEARTBEAT, 4 BYE, 5 ERROR
//     u8  format    DATA only: 0 = raw rows, 1 = encoded TBDR log; else 0
//     u16 stream    connection-scoped handle (HELLO binds it, DATA/BYE use
//                   it; 0 for HEARTBEAT/ERROR)
//     u16 reserved  must be 0
//     u32 length    payload bytes that follow
//   payload (length bytes)
//
// Payloads:
//   HELLO   (client->server) see encode_hello below: protocol version, the
//           detector grid + calibration scalars, the stream name, and the
//           per-class service table. Caps: 64 KiB payload, 128-byte name,
//           4096 classes.
//   DATA    (client->server) format 0: packed 32-byte rows exactly as TBDR
//           v1 writes them (u32 server, u32 class_id, i64 arrival_us,
//           i64 departure_us, u64 txn) — no header, count = length / 32.
//           format 1: one complete TBDR byte stream (v1 blob or v2 segment
//           log), decoded strictly. Cap: 16 MiB payload.
//   HEARTBEAT (client->server) empty; refreshes the connection's idle clock
//           so quiet-but-alive streams are not evicted.
//   BYE     (client->server) empty; finishes the stream (seals the tail,
//           closes its episode) and releases its name for reuse.
//   ERROR   (server->client) UTF-8 text; sent once before the server closes
//           a connection it is rejecting. Errors are per-connection: other
//           connections and their streams are untouched.
//
// The parser below is incremental and allocation-bounded: nothing larger
// than one validated frame is ever buffered, and a bogus length prefix is
// rejected from the 12 header bytes alone.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "trace/records.h"
#include "trace/request_columns.h"

namespace tbd::serve {

inline constexpr std::uint16_t kFrameMagic = 0x4654;  // "TF" little-endian
inline constexpr std::size_t kFrameHeaderBytes = 12;
inline constexpr std::uint32_t kProtocolVersion = 1;

/// Per-type payload caps; a length prefix above the cap is a protocol error
/// before any payload is read (no allocation from attacker-chosen lengths).
inline constexpr std::uint32_t kMaxDataPayload = 16u << 20;
inline constexpr std::uint32_t kMaxHelloPayload = 64u << 10;
inline constexpr std::uint32_t kMaxControlPayload = 4u << 10;

inline constexpr std::size_t kMaxStreamName = 128;
inline constexpr std::size_t kMaxServiceClasses = 4096;
/// One packed DATA-format-0 row (mirrors the TBDR v1 record layout).
inline constexpr std::size_t kRawRecordBytes = 32;

enum class FrameType : std::uint8_t {
  kHello = 1,
  kData = 2,
  kHeartbeat = 3,
  kBye = 4,
  kError = 5,
};

enum class DataFormat : std::uint8_t {
  kRawRecords = 0,  ///< packed 32-byte rows, count = length / 32
  kEncodedLog = 1,  ///< a complete TBDR v1 or v2 byte stream
};

struct FrameHeader {
  FrameType type = FrameType::kHello;
  std::uint8_t format = 0;
  std::uint16_t stream = 0;
  std::uint32_t length = 0;
};

/// Everything a HELLO carries: the stream identity plus the frozen
/// calibration a StreamingDetector needs. The name must be 1..128 chars of
/// [A-Za-z0-9_.:-] — safe as a metric label, a JSON string, and a file stem
/// (the daemon derives per-stream event-log and mirror paths from it).
struct HelloConfig {
  std::string name;
  std::int64_t start_us = 0;        ///< detector grid origin (trace clock)
  std::int64_t width_us = 50'000;   ///< interval width, > 0
  std::int64_t lag_us = 5'000'000;  ///< sealing lag, > 0
  /// Idle-seal deadline: with no new data for this long (wall clock), the
  /// daemon seals the stream to its watermark (StreamingDetector::seal_idle)
  /// to cap open-interval memory. 0 = use the daemon default.
  std::int64_t idle_seal_us = 0;
  double nstar = 0.0;          ///< frozen congestion point, > 0
  double tpmax = 0.0;          ///< frozen saturation throughput, >= 0
  double work_unit_us = 0.0;   ///< 0 = smallest positive class service time
  double idle_load = 0.05;     ///< DetectorConfig::idle_load
  double poi_tput_frac = 0.05; ///< DetectorConfig::poi_tput_frac
  /// Per-class service times in microseconds (class id, service). Class ids
  /// must be < 2^20; at least one positive service time is required unless
  /// work_unit_us > 0.
  std::vector<std::pair<trace::ClassId, double>> service_us;
};

/// Appends header + payload to `out` (the encoding primitive everything
/// below and the tests' hand-rolled malformed frames build on).
void append_frame(std::string& out, const FrameHeader& header,
                  std::string_view payload);

[[nodiscard]] std::string encode_hello(std::uint16_t stream,
                                       const HelloConfig& config);
[[nodiscard]] std::string encode_raw_records(
    std::uint16_t stream, std::span<const trace::RequestRecord> records);
/// Wraps an already-encoded TBDR v1/v2 byte stream as a DATA frame.
[[nodiscard]] std::string encode_encoded_log(std::uint16_t stream,
                                             std::string_view bytes);
[[nodiscard]] std::string encode_heartbeat();
[[nodiscard]] std::string encode_bye(std::uint16_t stream);
[[nodiscard]] std::string encode_error(std::string_view message);

/// Decodes a HELLO payload into `out`. Returns an empty string on success,
/// a stable error message ("bad hello: ...") otherwise.
[[nodiscard]] std::string decode_hello(std::string_view payload,
                                       HelloConfig& out);

/// Decodes a DATA-format-0 payload, appending rows to `out` in order.
/// Returns an empty string on success ("bad data: ..." otherwise).
[[nodiscard]] std::string decode_raw_records(std::string_view payload,
                                             trace::RequestColumns& out);

/// Incremental frame scanner: feed() raw socket bytes, then call next()
/// until it reports kNeedMore. Validation (magic, type, reserved field,
/// per-type length cap) happens from the 12 header bytes, so a hostile
/// length prefix can neither over-allocate nor stall the connection. After
/// the first kError the parser stays failed — the caller must drop the
/// connection (the stream cannot be resynchronized).
class FrameParser {
 public:
  enum class Status { kNeedMore, kFrame, kError };

  struct Result {
    Status status = Status::kNeedMore;
    FrameHeader header;
    std::string payload;  ///< valid when status == kFrame
    std::string error;    ///< valid when status == kError
  };

  void feed(std::string_view bytes);
  [[nodiscard]] Result next();

  /// True when a frame prefix (header or partial payload) is buffered — an
  /// EOF now is a mid-frame disconnect, not a clean close.
  [[nodiscard]] bool mid_frame() const { return pos_ < buffer_.size(); }
  [[nodiscard]] std::size_t buffered() const { return buffer_.size() - pos_; }
  [[nodiscard]] bool failed() const { return failed_; }

 private:
  std::string buffer_;
  std::size_t pos_ = 0;  // consumed prefix of buffer_
  bool failed_ = false;
};

}  // namespace tbd::serve
