// ServeDaemon: the multi-tenant online detection service behind tbd_serve.
//
// Architecture (two threads plus the shared pool and the HTTP thread):
//
//   ingest thread   one poll() loop over the listen socket, a self-pipe,
//                   and every connection (the obs/exposition pattern, but
//                   long-lived). It parses frames incrementally, handles
//                   HELLO/BYE/HEARTBEAT inline, and enqueues DATA payloads
//                   onto the owning connection's FIFO. All socket I/O —
//                   accept, read, ERROR replies, close — happens here.
//   pump thread     bulk-synchronous rounds: snapshot every connection
//                   with queued work, fan one task per connection out on
//                   shared_pool() (the per-stream sharding), each task
//                   draining its connection's items IN ORDER into the
//                   stream's StreamingDetector + StreamingTelemetry +
//                   SegmentLogWriter. Between rounds it runs the clocks:
//                   idle-seal deadlines, idle-stream eviction, and
//                   back-pressure resume.
//
// Because one connection's frames are always drained sequentially, a
// single-connection replay produces a byte-identical event log at any
// TBD_THREADS — the equivalence tests and the tier-1 golden rely on this.
// Across connections the shared journal interleaves by arrival (wall
// clock); the per-stream logs under events_dir stay deterministic because
// each stream is owned by exactly one connection.
//
// Back-pressure: every stream accounts the payload bytes queued (and in
// flight) for it; crossing queue_high_water_bytes pauses *reading* the
// owning connection's socket — TCP then pushes back on the sender — until
// the pump drains the stream below half the mark. Memory per connection is
// therefore bounded by HWM + one read chunk + one frame, never by how fast
// the sender can write.
//
// Shutdown (stop(), the SIGTERM path): stop accepting, let live
// connections finish sending (bounded by drain_grace), drain every queue,
// finish every stream, sync telemetry, flush the event logs, close the
// mirrors, then stop the HTTP server. Nothing already acknowledged by the
// kernel is dropped.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <fstream>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/streaming_detector.h"
#include "core/streaming_telemetry.h"
#include "obs/event_log.h"
#include "obs/exposition.h"
#include "obs/introspection.h"
#include "obs/metrics.h"
#include "serve/frame.h"
#include "trace/segment_log.h"

namespace tbd::serve {

struct DaemonOptions {
  /// Ingest listener. Port 0 = OS-assigned (see ingest_port()).
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;

  /// Exposition endpoint (/metrics /healthz /episodes /statusz /threadz
  /// /profilez). Port 0 = OS-assigned; expose_http = false disables it.
  bool expose_http = true;
  std::string http_host = "127.0.0.1";
  std::uint16_t http_port = 0;

  /// Back-pressure high-water mark: queued + in-flight DATA bytes per
  /// stream before its connection stops being read.
  std::size_t queue_high_water_bytes = 8u << 20;
  /// Default idle-seal deadline for streams whose HELLO left it 0: with no
  /// new data for this long, the stream is sealed to its watermark
  /// (StreamingDetector::seal_idle). 0 = never.
  std::int64_t default_idle_seal_us = 0;
  /// Evict (finish + release the name of) a stream with no data AND no
  /// heartbeat for this long. 0 = never.
  std::int64_t evict_idle_us = 0;
  /// How long stop() waits for live connections to reach EOF before
  /// force-closing them.
  double drain_grace_s = 5.0;
  /// Pump wake-up tick (drives idle-seal/eviction clocks).
  double tick_ms = 20.0;

  /// Shared NDJSON journal path ("" = in-memory rings only; /episodes is
  /// served either way).
  std::string events_path;
  /// Per-stream NDJSON journals, one DIR/<stream>.ndjson each ("" = off).
  std::string events_dir;
  /// Per-stream durable TBDR v2 mirrors, one DIR/<stream>.tbd2 each.
  std::string record_dir;
  std::size_t record_segment_records = trace::kDefaultSegmentRecords;
  /// Meta pairs for the shared journal's leading record. Empty = the
  /// default {tool: tbd_serve}. tier1.sh overrides this to reproduce the
  /// tbd_watch golden byte-for-byte.
  std::vector<std::pair<std::string, std::string>> events_meta;

  /// Metrics registry (null = obs::Registry::global()). Tests inject a
  /// fresh one so labeled series don't accumulate across daemons.
  obs::Registry* registry = nullptr;

  /// Test seam: invoked on the drain strand before each DATA payload is
  /// decoded (the back-pressure test throttles one stream with it).
  std::function<void(const std::string& stream)> drain_hook;
};

/// Post-hoc view of one stream for tests and the tool's exit summary.
struct StreamSummary {
  std::string name;
  std::uint64_t records = 0;
  std::uint64_t dropped = 0;
  std::uint64_t intervals = 0;
  std::array<std::size_t, 4> sealed_by_state{};
  std::vector<core::Episode> episodes;
  std::size_t open_intervals = 0;
  std::size_t queued_bytes = 0;
  std::size_t peak_queued_bytes = 0;
  std::uint64_t pauses = 0;
  bool finished = false;
};

class ServeDaemon {
 public:
  explicit ServeDaemon(DaemonOptions options);
  ~ServeDaemon();
  ServeDaemon(const ServeDaemon&) = delete;
  ServeDaemon& operator=(const ServeDaemon&) = delete;

  /// Binds both listeners and spawns the ingest + pump threads. False (and
  /// error()) if a socket can't be bound.
  [[nodiscard]] bool start();
  /// Graceful shutdown; see the header comment. Idempotent.
  void stop();
  [[nodiscard]] const std::string& error() const { return error_; }

  [[nodiscard]] std::uint16_t ingest_port() const { return ingest_port_; }
  [[nodiscard]] std::uint16_t http_port() const;

  // --- observation (tests, exit summary) --------------------------------
  [[nodiscard]] std::vector<StreamSummary> stream_summaries() const;
  [[nodiscard]] std::uint64_t connections_accepted() const;
  [[nodiscard]] std::uint64_t protocol_errors() const;
  [[nodiscard]] std::uint64_t backpressure_pauses() const;
  [[nodiscard]] std::uint64_t idle_seals() const;
  [[nodiscard]] std::uint64_t evicted_streams() const;
  [[nodiscard]] std::uint64_t frames_received() const;
  /// The "serve" /statusz section (connections, queues, error counters).
  [[nodiscard]] std::string serve_status_json() const;
  /// Blocks until no connection is open and every queue is drained, or the
  /// timeout elapses. Tests call this after closing their sockets.
  [[nodiscard]] bool wait_idle(double timeout_s) const;

 private:
  struct Stream;
  struct WorkItem;
  struct Connection;

  // ingest thread
  void ingest_loop();
  void handle_readable(const std::shared_ptr<Connection>& conn);
  void handle_frame(const std::shared_ptr<Connection>& conn,
                    const FrameHeader& header, std::string payload);
  std::string handle_hello(const std::shared_ptr<Connection>& conn,
                           const FrameHeader& header,
                           const std::string& payload);
  void fail_connection(const std::shared_ptr<Connection>& conn,
                       const std::string& message);
  void close_connection(const std::shared_ptr<Connection>& conn);
  void wake_ingest();

  // pump thread
  void pump_loop();
  void drain_connection(Connection& conn, std::deque<WorkItem>& items);
  void finish_stream(Stream& stream);
  void run_clocks();

  [[nodiscard]] std::string make_stream(const HelloConfig& config,
                                        Stream** out);

  DaemonOptions options_;
  obs::Registry* registry_ = nullptr;
  std::string error_;

  std::ofstream events_file_;
  std::unique_ptr<obs::EventLog> events_;
  std::unique_ptr<obs::Introspection> intro_;
  std::unique_ptr<obs::ExpositionServer> http_;

  int listen_fd_ = -1;
  std::uint16_t ingest_port_ = 0;
  int wake_pipe_[2] = {-1, -1};

  std::thread ingest_thread_;
  std::thread pump_thread_;

  mutable std::mutex mutex_;
  std::condition_variable pump_cv_;
  std::atomic<bool> stopping_{false};
  bool ingest_done_ = false;  // guarded by mutex_

  // Streams are created on HELLO and never destroyed before the daemon —
  // WorkItems hold raw Stream*, summaries outlive eviction.
  std::vector<std::unique_ptr<Stream>> streams_;           // guarded by mutex_
  std::unordered_map<std::string, Stream*> active_;        // guarded by mutex_
  std::vector<std::shared_ptr<Connection>> connections_;   // guarded by mutex_

  // Counters (guarded by mutex_; mirrored into registry counters).
  std::uint64_t connections_accepted_ = 0;
  std::uint64_t protocol_errors_ = 0;
  std::uint64_t backpressure_pauses_ = 0;
  std::uint64_t idle_seals_ = 0;
  std::uint64_t evicted_streams_ = 0;
  std::uint64_t frames_received_ = 0;
  std::uint64_t data_bytes_received_ = 0;
};

}  // namespace tbd::serve
