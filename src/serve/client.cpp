#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace tbd::serve {

SendClient::~SendClient() { close(); }

bool SendClient::connect(const std::string& host, std::uint16_t port) {
  close();
  error_.clear();
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    error_ = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    error_ = "bad host: " + host;
    close();
    return false;
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    error_ = "connect " + host + ":" + std::to_string(port) + ": " +
             std::strerror(errno);
    close();
    return false;
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return true;
}

bool SendClient::send_hello(std::uint16_t stream, const HelloConfig& config) {
  return send_all(encode_hello(stream, config));
}

bool SendClient::send_records(std::uint16_t stream,
                              std::span<const trace::RequestRecord> records) {
  return send_all(encode_raw_records(stream, records));
}

bool SendClient::send_encoded(std::uint16_t stream, std::string_view bytes) {
  return send_all(encode_encoded_log(stream, bytes));
}

bool SendClient::send_heartbeat() { return send_all(encode_heartbeat()); }

bool SendClient::send_bye(std::uint16_t stream) {
  return send_all(encode_bye(stream));
}

bool SendClient::send_all(std::string_view bytes) {
  if (fd_ < 0) {
    if (error_.empty()) error_ = "not connected";
    return false;
  }
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    // The daemon closed on us — pick up the ERROR frame it sent first.
    drain_errors(false);
    if (error_.empty()) {
      error_ = std::string("send: ") + std::strerror(errno);
    }
    close();
    return false;
  }
  return true;
}

void SendClient::drain_errors(bool blocking) {
  if (fd_ < 0) return;
  char buf[4096];
  for (;;) {
    if (!blocking) {
      pollfd p{fd_, POLLIN, 0};
      if (::poll(&p, 1, 0) <= 0) return;
    }
    const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return;  // EOF or error: nothing more to learn
    parser_.feed(std::string_view{buf, static_cast<std::size_t>(n)});
    for (;;) {
      auto result = parser_.next();
      if (result.status == FrameParser::Status::kNeedMore) return;
      if (result.status == FrameParser::Status::kError) {
        if (error_.empty()) {
          error_ = "garbled reply from server: " + result.error;
        }
        return;
      }
      if (result.header.type == FrameType::kError && error_.empty()) {
        error_ = std::string(result.payload);
      }
    }
  }
}

bool SendClient::finish() {
  if (fd_ < 0) return error_.empty();
  ::shutdown(fd_, SHUT_WR);
  // Drain until the daemon closes; an ERROR frame anywhere in the tail
  // means some frame was rejected.
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    parser_.feed(std::string_view{buf, static_cast<std::size_t>(n)});
    for (;;) {
      auto result = parser_.next();
      if (result.status == FrameParser::Status::kNeedMore) break;
      if (result.status == FrameParser::Status::kError) {
        if (error_.empty()) {
          error_ = "garbled reply from server: " + result.error;
        }
        break;
      }
      if (result.header.type == FrameType::kError && error_.empty()) {
        error_ = std::string(result.payload);
      }
    }
  }
  close();
  return error_.empty();
}

void SendClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace tbd::serve
