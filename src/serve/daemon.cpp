#include "serve/daemon.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <set>

#include "obs/manifest.h"
#include "obs/process_stats.h"
#include "trace/request_log_file.h"
#include "util/thread_pool.h"

namespace tbd::serve {

namespace {

using Clock = std::chrono::steady_clock;

std::string format_ms(std::int64_t us) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%g", static_cast<double>(us) / 1000.0);
  return buf;
}

/// Best-effort short write on a nonblocking socket (ERROR frames are tiny;
/// if the peer's window is full after 200 ms it was not reading anyway).
void send_best_effort(int fd, std::string_view bytes) {
  std::size_t off = 0;
  int budget_ms = 200;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK) && budget_ms > 0) {
      pollfd p{fd, POLLOUT, 0};
      ::poll(&p, 1, 50);
      budget_ms -= 50;
      continue;
    }
    return;
  }
}

}  // namespace

struct ServeDaemon::Stream {
  std::string name;
  std::unique_ptr<core::StreamingDetector> detector;
  std::unique_ptr<core::StreamingTelemetry> telemetry;
  std::ofstream events_file;
  std::unique_ptr<obs::EventLog> events;  // per-stream journal (events_dir)
  trace::SegmentLogWriter recorder;
  std::int64_t idle_seal_us = 0;

  // Bookkeeping guarded by the daemon mutex unless noted.
  std::uint64_t records = 0;  // written by the pump strand only
  std::size_t queued_bytes = 0;
  std::size_t peak_queued_bytes = 0;
  std::uint64_t pauses = 0;
  bool finished = false;
  Clock::time_point last_data = Clock::now();   // pump strand only
  Clock::time_point last_alive = Clock::now();  // guarded by mutex_
};

struct ServeDaemon::WorkItem {
  enum class Kind { kData, kFinish } kind = Kind::kData;
  Stream* stream = nullptr;
  std::uint8_t format = 0;
  std::string payload;
  std::size_t bytes = 0;
};

struct ServeDaemon::Connection {
  int fd = -1;  // -1 once closed; only the ingest thread touches sockets
  FrameParser parser;
  std::unordered_map<std::uint16_t, Stream*> streams;
  std::set<std::uint16_t> byed;
  std::deque<WorkItem> work;  // guarded by mutex_
  bool in_flight = false;     // a pump round holds this conn's items
  bool paused = false;        // guarded by mutex_
  bool saw_frame = false;
  std::atomic<bool> failed{false};
  std::string pending_error;  // guarded by mutex_; set by pump, sent by ingest
};

ServeDaemon::ServeDaemon(DaemonOptions options)
    : options_{std::move(options)},
      registry_{options_.registry != nullptr ? options_.registry
                                             : &obs::Registry::global()} {
  if (!options_.events_path.empty()) {
    events_file_.open(options_.events_path, std::ios::trunc);
  }
  obs::EventLog::Options event_options;
  event_options.registry = registry_;
  auto meta = options_.events_meta;
  if (meta.empty()) meta = {{"tool", "tbd_serve"}};
  events_ = std::make_unique<obs::EventLog>(
      events_file_.is_open() ? &events_file_ : nullptr, event_options, meta);
}

ServeDaemon::~ServeDaemon() { stop(); }

bool ServeDaemon::start() {
  if (!options_.events_path.empty() && !events_file_.is_open()) {
    error_ = "cannot write " + options_.events_path;
    return false;
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    error_ = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    error_ = "bad ingest host: " + options_.host;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    error_ = std::string("bind/listen ") + options_.host + ":" +
             std::to_string(options_.port) + ": " + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  ingest_port_ = ntohs(bound.sin_port);

  if (::pipe2(wake_pipe_, O_NONBLOCK | O_CLOEXEC) != 0) {
    error_ = std::string("pipe2: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }

  if (options_.expose_http) {
    obs::Introspection::Options io;
    io.tool = "tbd_serve";
    io.info = {{"queue_hwm_bytes",
                std::to_string(options_.queue_high_water_bytes)},
               {"idle_seal_ms", format_ms(options_.default_idle_seal_us)},
               {"evict_idle_ms", format_ms(options_.evict_idle_us)}};
    intro_ = std::make_unique<obs::Introspection>(std::move(io));
    intro_->add_status_source("streams", [this] {
      // Best-effort snapshot, like tbd_watch: the pump strand may be
      // mutating a detector while its counters are read.
      std::lock_guard lock{mutex_};
      std::string out = "[";
      for (std::size_t i = 0; i < streams_.size(); ++i) {
        if (i > 0) out += ',';
        out += streams_[i]->telemetry->status_json();
      }
      out += ']';
      return out;
    });
    intro_->add_status_source("serve",
                              [this] { return serve_status_json(); });

    obs::ExpositionServer::Options ho;
    ho.host = options_.http_host;
    ho.port = options_.http_port;
    http_ = std::make_unique<obs::ExpositionServer>(ho);
    http_->handle("/metrics", "text/plain; version=0.0.4", [this] {
      obs::publish_process_stats(*registry_);
      obs::publish_pool_gauges(*registry_);
      std::size_t active = 0;
      std::size_t open_conns = 0;
      std::size_t queued = 0;
      {
        std::lock_guard lock{mutex_};
        active = active_.size();
        for (const auto& c : connections_) open_conns += c->fd >= 0 ? 1 : 0;
        for (const auto& s : streams_) queued += s->queued_bytes;
      }
      registry_->gauge("tbd_process_open_streams")
          .set(static_cast<double>(active));
      registry_->gauge("tbd_serve_streams_active")
          .set(static_cast<double>(active));
      registry_->gauge("tbd_serve_connections")
          .set(static_cast<double>(open_conns));
      registry_->gauge("tbd_serve_queued_bytes")
          .set(static_cast<double>(queued));
      return registry_->to_prometheus();
    });
    intro_->wire(*http_);
    http_->handle("/healthz", "text/plain",
                  [] { return std::string("ok\n"); });
    http_->handle("/episodes", "application/json",
                  [this] { return events_->episodes_json(); });
    if (!http_->start()) {
      error_ = http_->error();
      ::close(listen_fd_);
      listen_fd_ = -1;
      return false;
    }
  }

  ingest_thread_ = std::thread([this] { ingest_loop(); });
  pump_thread_ = std::thread([this] { pump_loop(); });
  return true;
}

std::uint16_t ServeDaemon::http_port() const {
  return http_ ? http_->port() : 0;
}

void ServeDaemon::wake_ingest() {
  if (wake_pipe_[1] >= 0) {
    const char b = 'w';
    [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &b, 1);
  }
}

// --------------------------------------------------------------------------
// ingest thread
// --------------------------------------------------------------------------

void ServeDaemon::ingest_loop() {
  const auto stop_requested = [this] {
    return stopping_.load(std::memory_order_acquire);
  };
  Clock::time_point grace_deadline{};

  for (;;) {
    // Snapshot pollable connections and act on pump-reported failures.
    std::vector<std::shared_ptr<Connection>> polled;
    std::vector<std::shared_ptr<Connection>> failing;
    {
      std::lock_guard lock{mutex_};
      for (const auto& conn : connections_) {
        if (conn->fd < 0) continue;
        if (!conn->pending_error.empty() || conn->failed.load()) {
          failing.push_back(conn);
        } else if (!conn->paused) {
          polled.push_back(conn);
        }
      }
    }
    for (const auto& conn : failing) {
      std::string message;
      {
        std::lock_guard lock{mutex_};
        message = conn->pending_error;
        conn->pending_error.clear();
        ++protocol_errors_;  // pump-detected decode failures count too
      }
      registry_->counter("tbd_serve_protocol_errors_total").add(1);
      if (!message.empty()) send_best_effort(conn->fd, encode_error(message));
      close_connection(conn);
    }

    const bool stopping_now = stop_requested();
    if (stopping_now && listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      grace_deadline =
          Clock::now() + std::chrono::microseconds(static_cast<std::int64_t>(
                             options_.drain_grace_s * 1e6));
    }
    if (stopping_now) {
      bool any_open = false;
      {
        std::lock_guard lock{mutex_};
        for (const auto& conn : connections_) any_open |= conn->fd >= 0;
      }
      if (!any_open) break;
      if (Clock::now() >= grace_deadline) {
        // Grace expired: force-close what is left (their parsed frames are
        // already queued; unread socket bytes are abandoned).
        std::vector<std::shared_ptr<Connection>> open;
        {
          std::lock_guard lock{mutex_};
          for (const auto& conn : connections_) {
            if (conn->fd >= 0) open.push_back(conn);
          }
        }
        for (const auto& conn : open) close_connection(conn);
        break;
      }
    }

    std::vector<pollfd> fds;
    fds.reserve(polled.size() + 2);
    fds.push_back(pollfd{wake_pipe_[0], POLLIN, 0});
    if (listen_fd_ >= 0) fds.push_back(pollfd{listen_fd_, POLLIN, 0});
    const std::size_t conn_base = fds.size();
    for (const auto& conn : polled) {
      fds.push_back(pollfd{conn->fd, POLLIN, 0});
    }
    ::poll(fds.data(), static_cast<nfds_t>(fds.size()), 100);

    if ((fds[0].revents & POLLIN) != 0) {
      char buf[256];
      while (::read(wake_pipe_[0], buf, sizeof buf) > 0) {
      }
    }
    if (listen_fd_ >= 0 && fds.size() > 1 && fds[1].fd == listen_fd_ &&
        (fds[1].revents & POLLIN) != 0) {
      for (;;) {
        const int fd =
            ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0) break;
        auto conn = std::make_shared<Connection>();
        conn->fd = fd;
        std::lock_guard lock{mutex_};
        connections_.push_back(conn);
        ++connections_accepted_;
        registry_->counter("tbd_serve_connections_total").add(1);
      }
    }
    for (std::size_t i = 0; i < polled.size(); ++i) {
      const auto& conn = polled[i];
      const short revents = fds[conn_base + i].revents;
      if (conn->fd < 0) continue;  // closed earlier this iteration
      if ((revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        handle_readable(conn);
      }
    }
  }

  {
    std::lock_guard lock{mutex_};
    ingest_done_ = true;
  }
  pump_cv_.notify_all();
}

void ServeDaemon::handle_readable(const std::shared_ptr<Connection>& conn) {
  char buf[64 * 1024];
  for (;;) {
    const ssize_t n = ::recv(conn->fd, buf, sizeof buf, 0);
    if (n > 0) {
      conn->parser.feed(std::string_view{buf, static_cast<std::size_t>(n)});
      for (;;) {
        auto result = conn->parser.next();
        if (result.status == FrameParser::Status::kNeedMore) break;
        if (result.status == FrameParser::Status::kError) {
          fail_connection(conn, result.error);
          return;
        }
        handle_frame(conn, result.header, std::move(result.payload));
        if (conn->fd < 0) return;  // a frame-level error closed it
      }
      bool paused_now;
      {
        std::lock_guard lock{mutex_};
        paused_now = conn->paused;
      }
      // Stop reading a paused connection: the kernel buffer fills and TCP
      // pushes back on the sender. The bytes already fed are accounted.
      if (paused_now) return;
      if (static_cast<std::size_t>(n) < sizeof buf) return;  // likely drained
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    // EOF or hard error.
    if (n == 0 && conn->parser.mid_frame()) {
      std::lock_guard lock{mutex_};
      ++protocol_errors_;
      registry_->counter("tbd_serve_protocol_errors_total").add(1);
    }
    close_connection(conn);
    return;
  }
}

void ServeDaemon::handle_frame(const std::shared_ptr<Connection>& conn,
                               const FrameHeader& header,
                               std::string payload) {
  {
    std::lock_guard lock{mutex_};
    ++frames_received_;
  }
  registry_->counter("tbd_serve_frames_total").add(1);
  conn->saw_frame = true;

  switch (header.type) {
    case FrameType::kHello: {
      const std::string err = handle_hello(conn, header, payload);
      if (!err.empty()) fail_connection(conn, err);
      return;
    }
    case FrameType::kData: {
      Stream* stream = nullptr;
      {
        const auto it = conn->streams.find(header.stream);
        if (it == conn->streams.end()) {
          fail_connection(conn,
                          "unknown stream handle (DATA before HELLO?)");
          return;
        }
        stream = it->second;
      }
      if (conn->byed.count(header.stream) != 0) {
        fail_connection(conn, "DATA after BYE on stream " + stream->name);
        return;
      }
      const std::size_t bytes = payload.size();
      bool pause = false;
      {
        std::lock_guard lock{mutex_};
        if (stream->finished) {
          // Evicted (or finished) while the client kept sending.
          ++protocol_errors_;
          registry_->counter("tbd_serve_protocol_errors_total").add(1);
        }
        WorkItem item;
        item.kind = WorkItem::Kind::kData;
        item.stream = stream;
        item.format = header.format;
        item.payload = std::move(payload);
        item.bytes = bytes;
        conn->work.push_back(std::move(item));
        stream->queued_bytes += bytes;
        stream->peak_queued_bytes =
            std::max(stream->peak_queued_bytes, stream->queued_bytes);
        stream->last_alive = Clock::now();
        data_bytes_received_ += bytes;
        if (!conn->paused &&
            stream->queued_bytes > options_.queue_high_water_bytes) {
          conn->paused = true;
          pause = true;
          ++backpressure_pauses_;
          ++stream->pauses;
        }
      }
      registry_->counter("tbd_serve_data_bytes_total").add(bytes);
      if (pause) {
        registry_->counter("tbd_serve_backpressure_pauses_total").add(1);
      }
      pump_cv_.notify_one();
      return;
    }
    case FrameType::kHeartbeat: {
      std::lock_guard lock{mutex_};
      const auto now = Clock::now();
      for (auto& [handle, stream] : conn->streams) stream->last_alive = now;
      return;
    }
    case FrameType::kBye: {
      const auto it = conn->streams.find(header.stream);
      if (it == conn->streams.end()) {
        fail_connection(conn, "BYE for unknown stream handle");
        return;
      }
      if (!conn->byed.insert(header.stream).second) {
        fail_connection(conn, "duplicate BYE on stream " + it->second->name);
        return;
      }
      std::lock_guard lock{mutex_};
      WorkItem item;
      item.kind = WorkItem::Kind::kFinish;
      item.stream = it->second;
      conn->work.push_back(std::move(item));
      pump_cv_.notify_one();
      return;
    }
    case FrameType::kError:
      fail_connection(conn, "unexpected ERROR frame from client");
      return;
  }
}

std::string ServeDaemon::handle_hello(const std::shared_ptr<Connection>& conn,
                                      const FrameHeader& header,
                                      const std::string& payload) {
  HelloConfig config;
  std::string err = decode_hello(payload, config);
  if (!err.empty()) return err;
  if (conn->streams.count(header.stream) != 0) {
    return "duplicate stream handle " + std::to_string(header.stream);
  }
  Stream* stream = nullptr;
  {
    std::lock_guard lock{mutex_};
    if (active_.count(config.name) != 0) {
      ++protocol_errors_;
      registry_->counter("tbd_serve_protocol_errors_total").add(1);
      return "duplicate stream id: " + config.name;
    }
  }
  err = make_stream(config, &stream);
  if (!err.empty()) return err;
  conn->streams.emplace(header.stream, stream);
  return {};
}

std::string ServeDaemon::make_stream(const HelloConfig& config, Stream** out) {
  auto stream = std::make_unique<Stream>();
  stream->name = config.name;
  stream->idle_seal_us = config.idle_seal_us > 0
                             ? config.idle_seal_us
                             : options_.default_idle_seal_us;

  core::StreamingDetector::Config dc;
  dc.width = Duration::micros(config.width_us);
  dc.lag = Duration::micros(config.lag_us);
  dc.detector.idle_load = config.idle_load;
  dc.detector.poi_tput_frac = config.poi_tput_frac;
  dc.detector.throughput.work_unit_us = config.work_unit_us;
  core::NStarResult nstar;
  nstar.n_star = config.nstar;
  nstar.tp_max = config.tpmax;
  nstar.converged = true;
  core::ServiceTimeTable table;
  for (const auto& [class_id, service] : config.service_us) {
    table.set(class_id, service);
  }
  stream->detector = std::make_unique<core::StreamingDetector>(
      TimePoint::from_micros(config.start_us), dc, nstar, table);

  if (!options_.events_dir.empty()) {
    const std::string path =
        options_.events_dir + "/" + config.name + ".ndjson";
    stream->events_file.open(path, std::ios::trunc);
    if (!stream->events_file) return "cannot write stream journal " + path;
    obs::EventLog::Options eo;
    eo.registry = registry_;
    const std::vector<std::pair<std::string, std::string>> meta = {
        {"tool", "tbd_serve"},
        {"stream", config.name},
        {"width_ms", format_ms(config.width_us)},
        {"lag_ms", format_ms(config.lag_us)}};
    stream->events =
        std::make_unique<obs::EventLog>(&stream->events_file, eo, meta);
  }
  if (!options_.record_dir.empty()) {
    const std::string path =
        options_.record_dir + "/" + config.name + ".tbd2";
    trace::SegmentLogOptions ro;
    ro.segment_records = options_.record_segment_records;
    if (!stream->recorder.open(path, ro)) {
      return "cannot write stream mirror " + path;
    }
  }
  stream->telemetry = std::make_unique<core::StreamingTelemetry>(
      *stream->detector, core::StreamingTelemetry::Options{config.name},
      *registry_, events_.get(), stream->events.get());

  std::lock_guard lock{mutex_};
  *out = stream.get();
  active_.emplace(stream->name, stream.get());
  streams_.push_back(std::move(stream));
  return {};
}

void ServeDaemon::fail_connection(const std::shared_ptr<Connection>& conn,
                                  const std::string& message) {
  {
    std::lock_guard lock{mutex_};
    ++protocol_errors_;
  }
  registry_->counter("tbd_serve_protocol_errors_total").add(1);
  if (conn->fd >= 0) send_best_effort(conn->fd, encode_error(message));
  close_connection(conn);
}

void ServeDaemon::close_connection(const std::shared_ptr<Connection>& conn) {
  if (conn->fd >= 0) {
    ::close(conn->fd);
    conn->fd = -1;
  }
  {
    std::lock_guard lock{mutex_};
    // Finish every stream the connection still owns, after any data already
    // queued for it (FIFO order preserves the stream's event sequence).
    for (auto& [handle, stream] : conn->streams) {
      if (conn->byed.count(handle) != 0) continue;
      WorkItem item;
      item.kind = WorkItem::Kind::kFinish;
      item.stream = stream;
      conn->work.push_back(std::move(item));
    }
    conn->streams.clear();
  }
  pump_cv_.notify_one();
}

// --------------------------------------------------------------------------
// pump thread
// --------------------------------------------------------------------------

void ServeDaemon::pump_loop() {
  const auto tick = std::chrono::microseconds(
      static_cast<std::int64_t>(options_.tick_ms * 1000.0));
  std::unique_lock lock{mutex_};
  for (;;) {
    pump_cv_.wait_for(lock, tick, [this] {
      if (ingest_done_) return true;
      for (const auto& conn : connections_) {
        if (!conn->work.empty()) return true;
      }
      return false;
    });

    // Gather the round: move every connection's pending items out. Each
    // connection is one strand — its items run in order on one pool task.
    std::vector<std::shared_ptr<Connection>> round;
    std::vector<std::deque<WorkItem>> batches;
    for (const auto& conn : connections_) {
      if (conn->work.empty()) continue;
      round.push_back(conn);
      batches.push_back(std::move(conn->work));
      conn->work.clear();
      conn->in_flight = true;
    }

    if (!round.empty()) {
      lock.unlock();
      shared_pool().parallel_for_indexed(round.size(), [&](std::size_t i) {
        drain_connection(*round[i], batches[i]);
      });
      lock.lock();
      // Release the processed bytes and resume drained connections.
      for (std::size_t i = 0; i < round.size(); ++i) {
        round[i]->in_flight = false;
        for (const auto& item : batches[i]) {
          if (item.bytes > 0) {
            item.stream->queued_bytes -=
                std::min(item.stream->queued_bytes, item.bytes);
          }
        }
        auto& conn = *round[i];
        if (conn.paused && conn.fd >= 0) {
          std::size_t worst = 0;
          for (const auto& [handle, stream] : conn.streams) {
            worst = std::max(worst, stream->queued_bytes);
          }
          if (worst <= options_.queue_high_water_bytes / 2) {
            conn.paused = false;
            wake_ingest();
          }
        }
      }
    }

    // Clocks: idle-seal and eviction deadlines (outside the round; the pump
    // is the only detector mutator, so no strand can race these).
    if (options_.default_idle_seal_us > 0 || options_.evict_idle_us > 0 ||
        [this] {
          for (const auto& s : streams_) {
            if (s->idle_seal_us > 0) return true;
          }
          return false;
        }()) {
      lock.unlock();
      run_clocks();
      lock.lock();
    }

    // Drop connections that are closed and fully drained.
    connections_.erase(
        std::remove_if(connections_.begin(), connections_.end(),
                       [](const std::shared_ptr<Connection>& c) {
                         return c->fd < 0 && c->work.empty();
                       }),
        connections_.end());

    if (ingest_done_) {
      bool pending = false;
      for (const auto& conn : connections_) pending |= !conn->work.empty();
      if (!pending) break;
    }
  }
  lock.unlock();
  events_->flush();
}

void ServeDaemon::drain_connection(Connection& conn,
                                   std::deque<WorkItem>& items) {
  for (auto& item : items) {
    Stream& stream = *item.stream;
    if (item.kind == WorkItem::Kind::kFinish) {
      finish_stream(stream);
      continue;
    }
    if (conn.failed.load(std::memory_order_relaxed)) continue;
    if (stream.finished) continue;  // evicted with data still queued
    if (options_.drain_hook) options_.drain_hook(stream.name);

    trace::RequestColumns cols;
    std::string err;
    if (item.format == static_cast<std::uint8_t>(DataFormat::kRawRecords)) {
      err = decode_raw_records(item.payload, cols);
    } else if (item.payload.size() >= 8 &&
               std::memcmp(item.payload.data(), "TBDR", 4) == 0) {
      std::uint32_t version = 0;
      std::memcpy(&version, item.payload.data() + 4, 4);
      if (version == trace::kRequestLogV2Version) {
        auto decoded = trace::decode_request_log_v2(item.payload,
                                                    trace::DecodeMode::kStrict);
        if (!decoded.ok) {
          err = "bad data: " + decoded.error;
        } else {
          cols = std::move(decoded.records);
        }
      } else {
        auto decoded = trace::decode_request_log_bin_columns(item.payload);
        if (!decoded.ok) {
          err = "bad data: " + decoded.error;
        } else {
          cols = std::move(decoded.records);
        }
      }
    } else {
      err = "bad data: encoded payload without TBDR magic";
    }
    if (!err.empty()) {
      conn.failed.store(true, std::memory_order_relaxed);
      {
        std::lock_guard lock{mutex_};
        if (conn.pending_error.empty()) conn.pending_error = err;
      }
      wake_ingest();
      continue;
    }

    stream.detector->push_batch(cols.view());
    stream.telemetry->add_records(cols.size());
    stream.records += cols.size();
    if (stream.recorder.is_open()) {
      const auto view = cols.view();
      for (std::size_t i = 0; i < view.size(); ++i) {
        stream.recorder.append(view.record(i));
      }
    }
    stream.last_data = Clock::now();
    stream.telemetry->sync();
  }
}

void ServeDaemon::finish_stream(Stream& stream) {
  if (stream.finished) return;
  stream.detector->finish();
  stream.telemetry->sync();
  if (stream.events) stream.events->flush();
  if (stream.recorder.is_open()) {
    if (!stream.recorder.close()) {
      std::fprintf(stderr, "tbd_serve: write failed on mirror for %s\n",
                   stream.name.c_str());
    }
  }
  std::lock_guard lock{mutex_};
  stream.finished = true;
  active_.erase(stream.name);
}

void ServeDaemon::run_clocks() {
  const auto now = Clock::now();
  std::vector<Stream*> to_seal;
  std::vector<Stream*> to_evict;
  {
    std::lock_guard lock{mutex_};
    for (const auto& s : streams_) {
      if (s->finished || s->queued_bytes > 0) continue;
      const auto data_idle_us =
          std::chrono::duration_cast<std::chrono::microseconds>(
              now - s->last_data)
              .count();
      const auto alive_idle_us =
          std::chrono::duration_cast<std::chrono::microseconds>(
              now - s->last_alive)
              .count();
      if (options_.evict_idle_us > 0 &&
          alive_idle_us >= options_.evict_idle_us &&
          data_idle_us >= options_.evict_idle_us) {
        to_evict.push_back(s.get());
        continue;
      }
      if (s->idle_seal_us > 0 && data_idle_us >= s->idle_seal_us &&
          s->detector->open_intervals() > 0) {
        to_seal.push_back(s.get());
      }
    }
  }
  for (Stream* s : to_seal) {
    const std::size_t sealed = s->detector->seal_idle();
    s->telemetry->sync();
    if (sealed > 0) {
      std::lock_guard lock{mutex_};
      ++idle_seals_;
    }
    registry_->counter("tbd_serve_idle_seals_total").add(1);
  }
  for (Stream* s : to_evict) {
    finish_stream(*s);
    {
      std::lock_guard lock{mutex_};
      ++evicted_streams_;
    }
    registry_->counter("tbd_serve_evicted_streams_total").add(1);
  }
}

// --------------------------------------------------------------------------
// lifecycle + observation
// --------------------------------------------------------------------------

void ServeDaemon::stop() {
  if (!ingest_thread_.joinable() && !pump_thread_.joinable()) {
    if (http_) http_->stop();
    return;
  }
  stopping_.store(true, std::memory_order_release);
  wake_ingest();
  pump_cv_.notify_all();
  if (ingest_thread_.joinable()) ingest_thread_.join();
  pump_cv_.notify_all();
  if (pump_thread_.joinable()) pump_thread_.join();
  if (http_) http_->stop();
  if (wake_pipe_[0] >= 0) ::close(wake_pipe_[0]);
  if (wake_pipe_[1] >= 0) ::close(wake_pipe_[1]);
  wake_pipe_[0] = wake_pipe_[1] = -1;
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (events_file_.is_open()) events_file_.close();
}

std::vector<StreamSummary> ServeDaemon::stream_summaries() const {
  std::lock_guard lock{mutex_};
  std::vector<StreamSummary> out;
  out.reserve(streams_.size());
  for (const auto& s : streams_) {
    StreamSummary summary;
    summary.name = s->name;
    summary.records = s->records;
    summary.dropped = s->detector->dropped_records();
    summary.intervals = s->detector->intervals_emitted();
    summary.sealed_by_state = s->detector->sealed_by_state();
    summary.episodes = s->detector->episodes();
    summary.open_intervals = s->detector->open_intervals();
    summary.queued_bytes = s->queued_bytes;
    summary.peak_queued_bytes = s->peak_queued_bytes;
    summary.pauses = s->pauses;
    summary.finished = s->finished;
    out.push_back(std::move(summary));
  }
  return out;
}

std::uint64_t ServeDaemon::connections_accepted() const {
  std::lock_guard lock{mutex_};
  return connections_accepted_;
}
std::uint64_t ServeDaemon::protocol_errors() const {
  std::lock_guard lock{mutex_};
  return protocol_errors_;
}
std::uint64_t ServeDaemon::backpressure_pauses() const {
  std::lock_guard lock{mutex_};
  return backpressure_pauses_;
}
std::uint64_t ServeDaemon::idle_seals() const {
  std::lock_guard lock{mutex_};
  return idle_seals_;
}
std::uint64_t ServeDaemon::evicted_streams() const {
  std::lock_guard lock{mutex_};
  return evicted_streams_;
}
std::uint64_t ServeDaemon::frames_received() const {
  std::lock_guard lock{mutex_};
  return frames_received_;
}

std::string ServeDaemon::serve_status_json() const {
  std::lock_guard lock{mutex_};
  std::size_t open_conns = 0;
  for (const auto& c : connections_) open_conns += c->fd >= 0 ? 1 : 0;
  std::string out;
  out.reserve(512);
  out += "{\"connections\":" + std::to_string(open_conns);
  out += ",\"connections_total\":" + std::to_string(connections_accepted_);
  out += ",\"streams_active\":" + std::to_string(active_.size());
  out += ",\"streams_total\":" + std::to_string(streams_.size());
  out += ",\"frames_total\":" + std::to_string(frames_received_);
  out += ",\"data_bytes_total\":" + std::to_string(data_bytes_received_);
  out += ",\"protocol_errors\":" + std::to_string(protocol_errors_);
  out += ",\"backpressure_pauses\":" + std::to_string(backpressure_pauses_);
  out += ",\"idle_seals\":" + std::to_string(idle_seals_);
  out += ",\"evicted_streams\":" + std::to_string(evicted_streams_);
  out += ",\"queue_hwm_bytes\":" +
         std::to_string(options_.queue_high_water_bytes);
  out += ",\"queues\":[";
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    const auto& s = *streams_[i];
    if (i > 0) out += ',';
    out += "{\"stream\":\"" + obs::detail::json_escape(s.name) + "\"";
    out += ",\"queued_bytes\":" + std::to_string(s.queued_bytes);
    out += ",\"peak_queued_bytes\":" + std::to_string(s.peak_queued_bytes);
    out += ",\"deferred_reads\":" + std::to_string(s.pauses);
    out += ",\"dropped\":" + std::to_string(s.detector->dropped_records());
    out += std::string(",\"finished\":") + (s.finished ? "true" : "false");
    out += "}";
  }
  out += "]}";
  return out;
}

bool ServeDaemon::wait_idle(double timeout_s) const {
  const auto deadline =
      Clock::now() + std::chrono::microseconds(
                         static_cast<std::int64_t>(timeout_s * 1e6));
  for (;;) {
    {
      std::lock_guard lock{mutex_};
      bool busy = false;
      for (const auto& conn : connections_) {
        busy |= conn->fd >= 0 || !conn->work.empty() || conn->in_flight;
      }
      if (!busy) return true;
    }
    if (Clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

}  // namespace tbd::serve
