// SendClient: the blocking-socket side of the tbd_serve frame protocol.
//
// One client = one TCP connection multiplexing any number of streams (the
// protocol's stream handles are caller-chosen). Sends are plain blocking
// write()s, so TCP flow control is the back-pressure path: when the daemon
// pauses reading a connection whose stream crossed its high-water mark, the
// client's send() naturally stalls until the pump drains it.
//
// finish() half-closes the connection (SHUT_WR) and then reads until EOF —
// if the daemon rejected anything, the ERROR frame it sent before closing
// is captured in error(). tbd_send and the equivalence tests both key off
// that.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "serve/frame.h"
#include "trace/records.h"

namespace tbd::serve {

class SendClient {
 public:
  SendClient() = default;
  ~SendClient();
  SendClient(const SendClient&) = delete;
  SendClient& operator=(const SendClient&) = delete;

  /// Connects to the daemon's ingest listener. False (and error()) on
  /// failure.
  [[nodiscard]] bool connect(const std::string& host, std::uint16_t port);

  /// Frame senders; each returns false (and sets error()) if the daemon
  /// closed the connection — the ERROR frame it sent, if any, is drained
  /// into error().
  [[nodiscard]] bool send_hello(std::uint16_t stream,
                                const HelloConfig& config);
  [[nodiscard]] bool send_records(std::uint16_t stream,
                                  std::span<const trace::RequestRecord> records);
  [[nodiscard]] bool send_encoded(std::uint16_t stream,
                                  std::string_view bytes);
  [[nodiscard]] bool send_heartbeat();
  [[nodiscard]] bool send_bye(std::uint16_t stream);

  /// Half-closes the write side and drains the read side until the daemon
  /// closes too. Returns false if an ERROR frame arrived (message in
  /// error()); the daemon has fully processed every accepted frame — BYE
  /// included — by the time this returns.
  [[nodiscard]] bool finish();

  void close();
  [[nodiscard]] bool connected() const { return fd_ >= 0; }
  [[nodiscard]] const std::string& error() const { return error_; }

 private:
  [[nodiscard]] bool send_all(std::string_view bytes);
  /// Reads whatever the daemon already sent (nonblocking peek) and records
  /// an ERROR frame's message; used to surface rejects promptly.
  void drain_errors(bool blocking);

  int fd_ = -1;
  FrameParser parser_;
  std::string error_;
};

}  // namespace tbd::serve
